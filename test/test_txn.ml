(* Tests for transaction trees, lock modes, the nested-O2PL local lock table
   and undo logs. *)

open Objmodel
open Txn

let oid = Oid.of_int

(* ---------- Txn_tree ---------- *)

let test_tree_roots_and_children () =
  let t = Txn_tree.create () in
  let r = Txn_tree.create_root t ~node:3 in
  Alcotest.(check bool) "root" true (Txn_tree.is_root t r);
  Alcotest.(check int) "node" 3 (Txn_tree.node_of t r);
  Alcotest.(check int) "depth" 0 (Txn_tree.depth t r);
  let c1 = Txn_tree.create_child t ~parent:r in
  let c2 = Txn_tree.create_child t ~parent:r in
  let g = Txn_tree.create_child t ~parent:c1 in
  Alcotest.(check int) "child depth" 1 (Txn_tree.depth t c1);
  Alcotest.(check int) "grandchild depth" 2 (Txn_tree.depth t g);
  Alcotest.(check bool) "same family" true (Txn_tree.same_family t c2 g);
  Alcotest.(check int) "family size" 4 (Txn_tree.family_size t r);
  Alcotest.(check (list int)) "children order"
    [ Txn_id.to_int c1; Txn_id.to_int c2 ]
    (List.map Txn_id.to_int (Txn_tree.children t r));
  Alcotest.(check int) "root_of" (Txn_id.to_int r) (Txn_id.to_int (Txn_tree.root_of t g));
  Alcotest.(check int) "node inherited" 3 (Txn_tree.node_of t g)

let test_tree_ancestry () =
  let t = Txn_tree.create () in
  let r = Txn_tree.create_root t ~node:0 in
  let c = Txn_tree.create_child t ~parent:r in
  let g = Txn_tree.create_child t ~parent:c in
  let other = Txn_tree.create_root t ~node:0 in
  Alcotest.(check bool) "r anc g" true (Txn_tree.is_strict_ancestor t ~ancestor:r g);
  Alcotest.(check bool) "c anc g" true (Txn_tree.is_strict_ancestor t ~ancestor:c g);
  Alcotest.(check bool) "g not anc c" false (Txn_tree.is_strict_ancestor t ~ancestor:g c);
  Alcotest.(check bool) "not self" false (Txn_tree.is_strict_ancestor t ~ancestor:g g);
  Alcotest.(check bool) "self or" true (Txn_tree.is_ancestor_or_self t ~ancestor:g g);
  Alcotest.(check bool) "cross family" false (Txn_tree.is_strict_ancestor t ~ancestor:other g)

let test_tree_status_gate () =
  let t = Txn_tree.create () in
  let r = Txn_tree.create_root t ~node:0 in
  Txn_tree.set_status t r Txn_tree.Committed;
  Alcotest.(check bool) "status" true (Txn_tree.status t r = Txn_tree.Committed);
  Alcotest.check_raises "no child of finished parent"
    (Invalid_argument
       (Format.asprintf "Txn_tree.create_child: parent %a is not active" Txn_id.pp r))
    (fun () -> ignore (Txn_tree.create_child t ~parent:r))

(* ---------- Lock ---------- *)

let test_lock_conflicts () =
  Alcotest.(check bool) "RR" false (Lock.conflicts Lock.Read Lock.Read);
  Alcotest.(check bool) "RW" true (Lock.conflicts Lock.Read Lock.Write);
  Alcotest.(check bool) "WR" true (Lock.conflicts Lock.Write Lock.Read);
  Alcotest.(check bool) "WW" true (Lock.conflicts Lock.Write Lock.Write);
  Alcotest.(check bool) "W subsumes R" true (Lock.stronger_or_equal Lock.Write Lock.Read);
  Alcotest.(check bool) "R not W" false (Lock.stronger_or_equal Lock.Read Lock.Write);
  Alcotest.(check bool) "max" true (Lock.equal Lock.Write (Lock.max Lock.Read Lock.Write))

(* ---------- Local_locks ---------- *)

let no_wake () = Alcotest.fail "unexpected wake"

let setup () =
  let tree = Txn_tree.create () in
  let ll = Local_locks.create tree in
  (tree, ll)

let test_ll_not_cached () =
  let tree, ll = setup () in
  let r = Txn_tree.create_root tree ~node:0 in
  Alcotest.(check bool) "not cached" true
    (Local_locks.acquire ll (oid 1) ~txn:r ~mode:Lock.Write ~wake:no_wake
    = Local_locks.Not_cached)

let test_ll_install_and_retain_flow () =
  let tree, ll = setup () in
  let r = Txn_tree.create_root tree ~node:0 in
  let c1 = Txn_tree.create_child tree ~parent:r in
  (* c1 acquires globally; the grant is installed with c1 as holder. *)
  Local_locks.install_grant ll (oid 1) ~txn:c1 ~mode:Lock.Write;
  Alcotest.(check bool) "family holds W" true
    (Local_locks.family_mode ll (oid 1) ~family:r = Some Lock.Write);
  Alcotest.(check bool) "c1 holds" true
    (Local_locks.held_mode ll (oid 1) ~txn:c1 = Some Lock.Write);
  (* c1 pre-commits: r retains. *)
  Local_locks.precommit ll c1;
  Alcotest.(check bool) "c1 no longer holds" true
    (Local_locks.held_mode ll (oid 1) ~txn:c1 = None);
  Alcotest.(check (list (pair int bool))) "r retains W"
    [ (Txn_id.to_int r, true) ]
    (List.map
       (fun (t, m) -> (Txn_id.to_int t, Lock.equal m Lock.Write))
       (Local_locks.retainers ll (oid 1) ~family:r));
  (* A sibling may acquire a lock retained by its ancestor (rule 1). *)
  let c2 = Txn_tree.create_child tree ~parent:r in
  Alcotest.(check bool) "sibling granted" true
    (Local_locks.acquire ll (oid 1) ~txn:c2 ~mode:Lock.Write ~wake:no_wake
    = Local_locks.Granted)

let test_ll_needs_upgrade () =
  let tree, ll = setup () in
  let r = Txn_tree.create_root tree ~node:0 in
  Local_locks.install_grant ll (oid 1) ~txn:r ~mode:Lock.Read;
  let c = Txn_tree.create_child tree ~parent:r in
  Local_locks.precommit ll c;
  (* family global mode R, request W. *)
  Alcotest.(check bool) "needs upgrade" true
    (Local_locks.acquire ll (oid 1) ~txn:r ~mode:Lock.Write ~wake:no_wake
    = Local_locks.Needs_upgrade);
  Local_locks.upgrade_granted ll (oid 1) ~txn:r;
  Alcotest.(check bool) "now W" true
    (Local_locks.family_mode ll (oid 1) ~family:r = Some Lock.Write)

let test_ll_ancestor_hold_is_permissive () =
  let tree, ll = setup () in
  let r = Txn_tree.create_root tree ~node:0 in
  Local_locks.install_grant ll (oid 1) ~txn:r ~mode:Lock.Write;
  let c = Txn_tree.create_child tree ~parent:r in
  (* r holds; descendant c may acquire (the pre-acquisition rule). *)
  Alcotest.(check bool) "descendant granted under ancestor hold" true
    (Local_locks.acquire ll (oid 1) ~txn:c ~mode:Lock.Write ~wake:no_wake
    = Local_locks.Granted)

let test_ll_sibling_conflict_queues_and_wakes () =
  let tree, ll = setup () in
  let r = Txn_tree.create_root tree ~node:0 in
  let c1 = Txn_tree.create_child tree ~parent:r in
  let c2 = Txn_tree.create_child tree ~parent:r in
  Local_locks.install_grant ll (oid 1) ~txn:c1 ~mode:Lock.Write;
  let woken = ref false in
  Alcotest.(check bool) "sibling queued" true
    (Local_locks.acquire ll (oid 1) ~txn:c2 ~mode:Lock.Write ~wake:(fun () -> woken := true)
    = Local_locks.Queued);
  Alcotest.(check bool) "not yet woken" false !woken;
  (* c1 pre-commits: retention moves to r (ancestor of c2) -> c2 grantable. *)
  Local_locks.precommit ll c1;
  Alcotest.(check bool) "woken" true !woken;
  Alcotest.(check bool) "c2 holds" true
    (Local_locks.held_mode ll (oid 1) ~txn:c2 = Some Lock.Write)

let test_ll_non_ancestor_retainer_blocks () =
  let tree, ll = setup () in
  let r = Txn_tree.create_root tree ~node:0 in
  let c1 = Txn_tree.create_child tree ~parent:r in
  let g1 = Txn_tree.create_child tree ~parent:c1 in
  Local_locks.install_grant ll (oid 1) ~txn:g1 ~mode:Lock.Write;
  (* g1 pre-commits into c1: c1 retains. A sub of a *different* branch must
     wait, because the retainer c1 is not its ancestor. *)
  Local_locks.precommit ll g1;
  let c2 = Txn_tree.create_child tree ~parent:r in
  let woken = ref false in
  Alcotest.(check bool) "queued behind foreign retainer" true
    (Local_locks.acquire ll (oid 1) ~txn:c2 ~mode:Lock.Write ~wake:(fun () -> woken := true)
    = Local_locks.Queued);
  (* When c1 pre-commits, retention moves to r -> now an ancestor of c2. *)
  Local_locks.precommit ll c1;
  Alcotest.(check bool) "woken after retention moved up" true !woken

let test_ll_abort_releases_to_ancestor () =
  let tree, ll = setup () in
  let r = Txn_tree.create_root tree ~node:0 in
  let c1 = Txn_tree.create_child tree ~parent:r in
  Local_locks.install_grant ll (oid 1) ~txn:c1 ~mode:Lock.Write;
  Local_locks.precommit ll c1;
  (* r retains. New child c2 acquires, then aborts: r must keep retaining and
     no global release may happen. *)
  let c2 = Txn_tree.create_child tree ~parent:r in
  Alcotest.(check bool) "granted" true
    (Local_locks.acquire ll (oid 1) ~txn:c2 ~mode:Lock.Write ~wake:no_wake
    = Local_locks.Granted);
  let released = ref [] in
  Local_locks.abort ll c2 ~to_release:(fun o -> released := o :: !released);
  Alcotest.(check (list int)) "no global release" [] (List.map Oid.to_int !released);
  Alcotest.(check bool) "r still retains" true
    (Local_locks.retainers ll (oid 1) ~family:r <> [])

let test_ll_abort_releases_globally_when_last () =
  let tree, ll = setup () in
  let r = Txn_tree.create_root tree ~node:0 in
  let c = Txn_tree.create_child tree ~parent:r in
  Local_locks.install_grant ll (oid 1) ~txn:c ~mode:Lock.Write;
  let released = ref [] in
  Local_locks.abort ll c ~to_release:(fun o -> released := o :: !released);
  Alcotest.(check (list int)) "released globally" [ 1 ] (List.map Oid.to_int !released);
  Alcotest.(check bool) "entry gone" true (Local_locks.family_mode ll (oid 1) ~family:r = None)

let test_ll_root_release () =
  let tree, ll = setup () in
  let r = Txn_tree.create_root tree ~node:0 in
  Local_locks.install_grant ll (oid 1) ~txn:r ~mode:Lock.Write;
  Local_locks.install_grant ll (oid 2) ~txn:r ~mode:Lock.Read;
  Alcotest.(check (list int)) "objects of family" [ 1; 2 ]
    (List.map Oid.to_int (Local_locks.objects_of_family ll ~family:r));
  let released = Local_locks.root_release ll ~root:r in
  Alcotest.(check (list int)) "released all" [ 1; 2 ] (List.map Oid.to_int released);
  Alcotest.(check bool) "entries dropped" true
    (Local_locks.family_mode ll (oid 1) ~family:r = None)

let test_ll_two_colocated_reader_families () =
  let tree, ll = setup () in
  let r1 = Txn_tree.create_root tree ~node:0 in
  let r2 = Txn_tree.create_root tree ~node:0 in
  Local_locks.install_grant ll (oid 1) ~txn:r1 ~mode:Lock.Read;
  Local_locks.install_grant ll (oid 1) ~txn:r2 ~mode:Lock.Read;
  Alcotest.(check bool) "r1 holds" true
    (Local_locks.family_mode ll (oid 1) ~family:r1 = Some Lock.Read);
  Alcotest.(check bool) "r2 holds" true
    (Local_locks.family_mode ll (oid 1) ~family:r2 = Some Lock.Read);
  (* Releasing one family leaves the other untouched. *)
  ignore (Local_locks.root_release ll ~root:r1);
  Alcotest.(check bool) "r2 unaffected" true
    (Local_locks.family_mode ll (oid 1) ~family:r2 = Some Lock.Read)

let test_ll_double_install_rejected () =
  let tree, ll = setup () in
  let r = Txn_tree.create_root tree ~node:0 in
  Local_locks.install_grant ll (oid 1) ~txn:r ~mode:Lock.Read;
  Alcotest.check_raises "double install"
    (Invalid_argument "Local_locks.install_grant: family already caches this object") (fun () ->
      Local_locks.install_grant ll (oid 1) ~txn:r ~mode:Lock.Read)

let test_ll_precommit_root_rejected () =
  let tree, ll = setup () in
  let r = Txn_tree.create_root tree ~node:0 in
  Alcotest.check_raises "root precommit"
    (Invalid_argument "Local_locks.precommit: root transactions use root_release") (fun () ->
      Local_locks.precommit ll r)

(* ---------- Undo_log ---------- *)

let test_undo_record_order () =
  let l = Undo_log.create () in
  Undo_log.record l ~oid:(oid 1) ~page:0 ~prev_version:5;
  Undo_log.record l ~oid:(oid 1) ~page:0 ~prev_version:7;
  let entries = Undo_log.entries_newest_first l in
  Alcotest.(check (list int)) "newest first" [ 7; 5 ]
    (List.map (fun (r : Undo_log.record) -> r.Undo_log.prev_version) entries);
  Alcotest.(check int) "length" 2 (Undo_log.length l)

let test_undo_merge_keeps_child_newer () =
  let parent = Undo_log.create () and child = Undo_log.create () in
  Undo_log.record parent ~oid:(oid 1) ~page:0 ~prev_version:1;
  Undo_log.record child ~oid:(oid 1) ~page:0 ~prev_version:2;
  Undo_log.merge_into_parent ~child ~parent;
  Alcotest.(check bool) "child emptied" true (Undo_log.is_empty child);
  let entries = Undo_log.entries_newest_first parent in
  Alcotest.(check (list int)) "child record newest" [ 2; 1 ]
    (List.map (fun (r : Undo_log.record) -> r.Undo_log.prev_version) entries)

let test_undo_dirty_pages_dedup () =
  let l = Undo_log.create () in
  Undo_log.record l ~oid:(oid 1) ~page:0 ~prev_version:1;
  Undo_log.record l ~oid:(oid 1) ~page:0 ~prev_version:2;
  Undo_log.record l ~oid:(oid 2) ~page:3 ~prev_version:0;
  Alcotest.(check (list (pair int int))) "deduped" [ (1, 0); (2, 3) ]
    (List.map (fun (o, p) -> (Oid.to_int o, p)) (Undo_log.dirty_pages l))

let test_undo_replay_restores_store () =
  (* Applying undo records newest-first over a page store restores the exact
     pre-transaction state, even with repeated writes to one page. *)
  let store = Dsm.Page_store.create ~node:0 in
  Dsm.Page_store.receive store (oid 1) ~page:0 ~version:3;
  let l = Undo_log.create () in
  let write v =
    let prev = Dsm.Page_store.write store (oid 1) ~page:0 ~new_version:v in
    Undo_log.record l ~oid:(oid 1) ~page:0 ~prev_version:prev
  in
  write 10;
  write 11;
  write 12;
  List.iter
    (fun (r : Undo_log.record) ->
      Dsm.Page_store.restore store r.Undo_log.oid ~page:r.Undo_log.page
        ~version:r.Undo_log.prev_version)
    (Undo_log.entries_newest_first l);
  Alcotest.(check int) "restored" 3 (Dsm.Page_store.version store (oid 1) ~page:0)

let tests =
  [
    ( "txn",
      [
        Alcotest.test_case "tree roots and children" `Quick test_tree_roots_and_children;
        Alcotest.test_case "tree ancestry" `Quick test_tree_ancestry;
        Alcotest.test_case "tree status gate" `Quick test_tree_status_gate;
        Alcotest.test_case "lock conflicts" `Quick test_lock_conflicts;
        Alcotest.test_case "ll not cached" `Quick test_ll_not_cached;
        Alcotest.test_case "ll install and retain" `Quick test_ll_install_and_retain_flow;
        Alcotest.test_case "ll needs upgrade" `Quick test_ll_needs_upgrade;
        Alcotest.test_case "ll ancestor hold permissive" `Quick test_ll_ancestor_hold_is_permissive;
        Alcotest.test_case "ll sibling queue and wake" `Quick test_ll_sibling_conflict_queues_and_wakes;
        Alcotest.test_case "ll non-ancestor retainer blocks" `Quick test_ll_non_ancestor_retainer_blocks;
        Alcotest.test_case "ll abort to ancestor" `Quick test_ll_abort_releases_to_ancestor;
        Alcotest.test_case "ll abort releases globally" `Quick test_ll_abort_releases_globally_when_last;
        Alcotest.test_case "ll root release" `Quick test_ll_root_release;
        Alcotest.test_case "ll colocated readers" `Quick test_ll_two_colocated_reader_families;
        Alcotest.test_case "ll double install" `Quick test_ll_double_install_rejected;
        Alcotest.test_case "ll precommit root" `Quick test_ll_precommit_root_rejected;
        Alcotest.test_case "undo record order" `Quick test_undo_record_order;
        Alcotest.test_case "undo merge" `Quick test_undo_merge_keeps_child_newer;
        Alcotest.test_case "undo dirty pages" `Quick test_undo_dirty_pages_dedup;
        Alcotest.test_case "undo replay restores" `Quick test_undo_replay_restores_store;
      ] );
  ]
