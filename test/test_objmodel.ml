(* Tests for the object model: oids, attributes, layout, IR, access
   analysis, classes and the catalog. *)

open Objmodel

let oid = Oid.of_int

(* ---------- Oid ---------- *)

let test_oid_basics () =
  Alcotest.(check int) "roundtrip" 5 (Oid.to_int (oid 5));
  Alcotest.(check bool) "equal" true (Oid.equal (oid 3) (oid 3));
  Alcotest.(check bool) "compare" true (Oid.compare (oid 1) (oid 2) < 0);
  Alcotest.(check string) "pp" "O7" (Format.asprintf "%a" Oid.pp (oid 7));
  Alcotest.check_raises "negative" (Invalid_argument "Oid.of_int: negative id") (fun () ->
      ignore (oid (-1)))

(* ---------- Attribute ---------- *)

let test_attribute () =
  let a = Attribute.make ~name:"x" ~size_bytes:8 in
  Alcotest.(check int) "size" 8 a.Attribute.size_bytes;
  Alcotest.check_raises "zero size" (Invalid_argument "Attribute.make: size must be positive")
    (fun () -> ignore (Attribute.make ~name:"x" ~size_bytes:0))

(* ---------- Layout ---------- *)

let attrs_of_sizes sizes =
  Array.of_list
    (List.mapi (fun i s -> Attribute.make ~name:(Printf.sprintf "a%d" i) ~size_bytes:s) sizes)

let test_layout_sequential_offsets () =
  let l = Layout.create ~page_size:100 (attrs_of_sizes [ 10; 20; 30 ]) in
  Alcotest.(check int) "offset 0" 0 (Layout.offset l 0);
  Alcotest.(check int) "offset 1" 10 (Layout.offset l 1);
  Alcotest.(check int) "offset 2" 30 (Layout.offset l 2);
  Alcotest.(check int) "total" 60 (Layout.total_bytes l);
  Alcotest.(check int) "one page" 1 (Layout.page_count l)

let test_layout_page_spans () =
  let l = Layout.create ~page_size:100 (attrs_of_sizes [ 90; 20; 100; 95 ]) in
  (* a0: [0,90) -> page 0; a1: [90,110) -> pages 0-1; a2: [110,210) -> 1-2;
     a3: [210,305) -> pages 2-3. *)
  Alcotest.(check (list int)) "a0" [ 0 ] (Layout.pages_of_attr l 0);
  Alcotest.(check (list int)) "a1 straddles" [ 0; 1 ] (Layout.pages_of_attr l 1);
  Alcotest.(check (list int)) "a2" [ 1; 2 ] (Layout.pages_of_attr l 2);
  Alcotest.(check (list int)) "a3" [ 2; 3 ] (Layout.pages_of_attr l 3);
  Alcotest.(check int) "page count" 4 (Layout.page_count l)

let test_layout_union () =
  let l = Layout.create ~page_size:100 (attrs_of_sizes [ 90; 20; 100; 95 ]) in
  Alcotest.(check (list int)) "union deduped" [ 0; 1; 2 ] (Layout.pages_of_attrs l [ 0; 1; 2 ]);
  Alcotest.(check (list int)) "empty" [] (Layout.pages_of_attrs l [])

let test_layout_empty_object () =
  let l = Layout.create ~page_size:100 [||] in
  Alcotest.(check int) "empty object still 1 page" 1 (Layout.page_count l)

let test_layout_bad_page_size () =
  Alcotest.check_raises "zero page" (Invalid_argument "Layout.create: page_size must be positive")
    (fun () -> ignore (Layout.create ~page_size:0 [||]))

let test_layout_bad_attr () =
  let l = Layout.create ~page_size:100 (attrs_of_sizes [ 10 ]) in
  Alcotest.check_raises "out of range" (Invalid_argument "Layout: attribute id out of range")
    (fun () -> ignore (Layout.pages_of_attr l 3))

(* ---------- Method IR ---------- *)

let body_abc =
  [
    Method_ir.Read 0;
    Method_ir.If
      {
        prob_then = 0.5;
        then_ = [ Method_ir.Write 1 ];
        else_ = [ Method_ir.Read 2; Method_ir.Invoke { slot = 1; meth = "m0" } ];
      };
    Method_ir.Loop { count = 3; body = [ Method_ir.Write 3 ] };
  ]

let test_ir_max_slot () =
  let m = Method_ir.make ~name:"m" ~body:body_abc in
  Alcotest.(check int) "max slot" 1 (Method_ir.max_slot m);
  let none = Method_ir.make ~name:"n" ~body:[ Method_ir.Read 0 ] in
  Alcotest.(check int) "no slots" (-1) (Method_ir.max_slot none)

let test_ir_statement_count () =
  let m = Method_ir.make ~name:"m" ~body:body_abc in
  (* read + if + write + read + invoke + loop + write = 7 *)
  Alcotest.(check int) "count" 7 (Method_ir.statement_count m)

let run_interp m ~choose =
  let log = ref [] in
  let handler =
    {
      Method_ir.on_read = (fun a -> log := Printf.sprintf "r%d" a :: !log);
      on_write = (fun a -> log := Printf.sprintf "w%d" a :: !log);
      on_invoke = (fun s meth -> log := Printf.sprintf "i%d.%s" s meth :: !log);
      choose;
    }
  in
  Method_ir.interp m handler;
  List.rev !log

let test_interp_then_branch () =
  let m = Method_ir.make ~name:"m" ~body:body_abc in
  Alcotest.(check (list string))
    "then branch"
    [ "r0"; "w1"; "w3"; "w3"; "w3" ]
    (run_interp m ~choose:(fun _ -> true))

let test_interp_else_branch () =
  let m = Method_ir.make ~name:"m" ~body:body_abc in
  Alcotest.(check (list string))
    "else branch"
    [ "r0"; "r2"; "i1.m0"; "w3"; "w3"; "w3" ]
    (run_interp m ~choose:(fun _ -> false))

let test_interp_choose_sees_probability () =
  let m =
    Method_ir.make ~name:"m"
      ~body:[ Method_ir.If { prob_then = 0.25; then_ = []; else_ = [] } ]
  in
  let seen = ref [] in
  let handler =
    {
      Method_ir.on_read = ignore;
      on_write = ignore;
      on_invoke = (fun _ _ -> ());
      choose =
        (fun p ->
          seen := p :: !seen;
          true);
    }
  in
  Method_ir.interp m handler;
  Alcotest.(check (list (float 0.0001))) "probability passed" [ 0.25 ] !seen

(* ---------- Access analysis ---------- *)

let test_analysis_unions_branches () =
  let m = Method_ir.make ~name:"m" ~body:body_abc in
  let s = Access_analysis.analyse m in
  Alcotest.(check (list int)) "reads include writes" [ 0; 1; 2; 3 ] s.Access_analysis.read_attrs;
  Alcotest.(check (list int)) "writes" [ 1; 3 ] s.Access_analysis.write_attrs;
  Alcotest.(check bool) "updates" true s.Access_analysis.updates;
  Alcotest.(check (list (pair int string))) "invoked" [ (1, "m0") ] s.Access_analysis.invoked

let test_analysis_read_only () =
  let m = Method_ir.make ~name:"m" ~body:[ Method_ir.Read 5; Method_ir.Read 5 ] in
  let s = Access_analysis.analyse m in
  Alcotest.(check bool) "not updating" false s.Access_analysis.updates;
  Alcotest.(check (list int)) "dedup" [ 5 ] s.Access_analysis.read_attrs

let test_analysis_pages () =
  let l = Layout.create ~page_size:100 (attrs_of_sizes [ 90; 20; 100; 95 ]) in
  let m = Method_ir.make ~name:"m" ~body:[ Method_ir.Read 0; Method_ir.Write 3 ] in
  let p = Access_analysis.pages l (Access_analysis.analyse m) in
  Alcotest.(check (list int)) "access pages" [ 0; 2; 3 ] p.Access_analysis.access_pages;
  Alcotest.(check (list int)) "write pages" [ 2; 3 ] p.Access_analysis.write_pages

(* Property: prediction is conservative — whatever branches execution takes,
   every executed access is inside the predicted set. *)
let gen_stmt_list =
  let open QCheck.Gen in
  sized (fun n ->
      fix
        (fun self n ->
          let leaf =
            oneof
              [
                map (fun a -> Method_ir.Read a) (int_bound 9);
                map (fun a -> Method_ir.Write a) (int_bound 9);
              ]
          in
          if n <= 1 then list_size (int_range 0 4) leaf
          else
            list_size (int_range 0 4)
              (frequency
                 [
                   (4, leaf);
                   ( 1,
                     map2
                       (fun t e -> Method_ir.If { prob_then = 0.5; then_ = t; else_ = e })
                       (self (n / 2)) (self (n / 2)) );
                   ( 1,
                     map
                       (fun b -> Method_ir.Loop { count = 2; body = b })
                       (self (n / 2)) );
                 ]))
        n)

let qcheck_prediction_conservative =
  let arb = QCheck.make ~print:(fun _ -> "<ir>") (QCheck.Gen.pair gen_stmt_list QCheck.Gen.int) in
  QCheck.Test.make ~name:"predicted superset of actual accesses" ~count:300 arb
    (fun (body, seed) ->
      let m = Method_ir.make ~name:"m" ~body in
      let s = Access_analysis.analyse m in
      let rng = Sim.Prng.create ~seed in
      let actual_reads = ref [] and actual_writes = ref [] in
      let handler =
        {
          Method_ir.on_read = (fun a -> actual_reads := a :: !actual_reads);
          on_write = (fun a -> actual_writes := a :: !actual_writes);
          on_invoke = (fun _ _ -> ());
          choose = (fun p -> Sim.Prng.bernoulli rng p);
        }
      in
      Method_ir.interp m handler;
      List.for_all (fun a -> List.mem a s.Access_analysis.read_attrs) !actual_reads
      && List.for_all (fun a -> List.mem a s.Access_analysis.write_attrs) !actual_writes)

(* ---------- Obj_class ---------- *)

let simple_class () =
  Obj_class.define ~name:"K"
    ~attrs:(attrs_of_sizes [ 90; 20; 100 ])
    ~methods:
      [
        Method_ir.make ~name:"get" ~body:[ Method_ir.Read 0 ];
        Method_ir.make ~name:"set" ~body:[ Method_ir.Write 1 ];
      ]
    ~ref_slots:0

let test_class_compile () =
  let k = Obj_class.compile ~page_size:100 (simple_class ()) in
  Alcotest.(check int) "pages" 3 (Obj_class.page_count k);
  let get = Obj_class.find_method k "get" in
  Alcotest.(check bool) "get read-only" false get.Obj_class.summary.Access_analysis.updates;
  let set = Obj_class.find_method k "set" in
  Alcotest.(check bool) "set updates" true set.Obj_class.summary.Access_analysis.updates;
  Alcotest.(check (list string)) "method names" [ "get"; "set" ] (Obj_class.method_names k)

let test_class_uncompiled () =
  let k = simple_class () in
  Alcotest.check_raises "layout before compile"
    (Invalid_argument "Obj_class: class K not compiled") (fun () -> ignore (Obj_class.layout k))

let test_class_duplicate_method () =
  Alcotest.check_raises "dup" (Invalid_argument "Obj_class.define: duplicate method m")
    (fun () ->
      ignore
        (Obj_class.define ~name:"K" ~attrs:[||]
           ~methods:
             [ Method_ir.make ~name:"m" ~body:[]; Method_ir.make ~name:"m" ~body:[] ]
           ~ref_slots:0))

let test_class_slot_validation () =
  Alcotest.check_raises "slot out of range"
    (Invalid_argument "Obj_class.define: method m uses slot beyond ref_slots") (fun () ->
      ignore
        (Obj_class.define ~name:"K" ~attrs:[||]
           ~methods:[ Method_ir.make ~name:"m" ~body:[ Method_ir.Invoke { slot = 2; meth = "x" } ] ]
           ~ref_slots:2))

let test_class_missing_method () =
  let k = Obj_class.compile ~page_size:100 (simple_class ()) in
  Alcotest.check_raises "not found" Not_found (fun () -> ignore (Obj_class.find_method k "nope"))

(* ---------- Catalog ---------- *)

let compiled_leaf name =
  Obj_class.compile ~page_size:100
    (Obj_class.define ~name
       ~attrs:(attrs_of_sizes [ 50 ])
       ~methods:[ Method_ir.make ~name:"m0" ~body:[ Method_ir.Write 0 ] ]
       ~ref_slots:0)

let compiled_parent name =
  Obj_class.compile ~page_size:100
    (Obj_class.define ~name
       ~attrs:(attrs_of_sizes [ 50 ])
       ~methods:
         [
           Method_ir.make ~name:"m0"
             ~body:[ Method_ir.Read 0; Method_ir.Invoke { slot = 0; meth = "m0" } ];
         ]
       ~ref_slots:1)

let test_catalog_basic () =
  let cat =
    Catalog.create
      [
        { Catalog.oid = oid 0; cls = compiled_parent "P"; refs = [| oid 1 |] };
        { Catalog.oid = oid 1; cls = compiled_leaf "L"; refs = [||] };
      ]
  in
  Alcotest.(check int) "size" 2 (Catalog.size cat);
  Alcotest.(check (list int)) "oids" [ 0; 1 ] (List.map Oid.to_int (Catalog.oids cat));
  Alcotest.(check int) "resolve slot" 1 (Oid.to_int (Catalog.resolve_slot cat (oid 0) 0));
  Alcotest.(check int) "page count" 1 (Catalog.page_count cat (oid 0));
  Alcotest.(check bool) "acyclic" true (Catalog.validate_acyclic cat = Ok ());
  Alcotest.(check int) "depth" 2 (Catalog.max_invocation_depth cat);
  Alcotest.(check int) "total pages" 2 (Catalog.total_pages cat)

let test_catalog_cycle_detection () =
  let cat =
    Catalog.create
      [
        { Catalog.oid = oid 0; cls = compiled_parent "P"; refs = [| oid 1 |] };
        { Catalog.oid = oid 1; cls = compiled_parent "P2"; refs = [| oid 0 |] };
      ]
  in
  (match Catalog.validate_acyclic cat with
  | Ok () -> Alcotest.fail "expected a cycle"
  | Error cycle -> Alcotest.(check bool) "cycle nonempty" true (List.length cycle >= 2));
  Alcotest.check_raises "depth on cyclic"
    (Invalid_argument "Catalog.max_invocation_depth: catalog is cyclic") (fun () ->
      ignore (Catalog.max_invocation_depth cat))

let test_catalog_self_loop () =
  let cat =
    Catalog.create [ { Catalog.oid = oid 0; cls = compiled_parent "P"; refs = [| oid 0 |] } ]
  in
  match Catalog.validate_acyclic cat with
  | Ok () -> Alcotest.fail "self-loop must be cyclic"
  | Error cycle -> Alcotest.(check int) "self cycle" 1 (List.length cycle)

let test_catalog_validation () =
  Alcotest.check_raises "unknown ref"
    (Invalid_argument "Catalog.create: O0 references unknown O9") (fun () ->
      ignore
        (Catalog.create
           [ { Catalog.oid = oid 0; cls = compiled_parent "P"; refs = [| oid 9 |] } ]));
  Alcotest.check_raises "wrong arity"
    (Invalid_argument "Catalog.create: O0 has 0 refs, class P declares 1 slots") (fun () ->
      ignore (Catalog.create [ { Catalog.oid = oid 0; cls = compiled_parent "P"; refs = [||] } ]));
  let dup = { Catalog.oid = oid 0; cls = compiled_leaf "L"; refs = [||] } in
  Alcotest.check_raises "duplicate oid" (Invalid_argument "Catalog.create: duplicate O0")
    (fun () -> ignore (Catalog.create [ dup; dup ]))

let test_catalog_find_missing () =
  let cat = Catalog.create [ { Catalog.oid = oid 0; cls = compiled_leaf "L"; refs = [||] } ] in
  Alcotest.check_raises "missing" Not_found (fun () -> ignore (Catalog.find cat (oid 5)))

let tests =
  [
    ( "objmodel",
      [
        Alcotest.test_case "oid basics" `Quick test_oid_basics;
        Alcotest.test_case "attribute" `Quick test_attribute;
        Alcotest.test_case "layout offsets" `Quick test_layout_sequential_offsets;
        Alcotest.test_case "layout page spans" `Quick test_layout_page_spans;
        Alcotest.test_case "layout union" `Quick test_layout_union;
        Alcotest.test_case "layout empty object" `Quick test_layout_empty_object;
        Alcotest.test_case "layout bad page size" `Quick test_layout_bad_page_size;
        Alcotest.test_case "layout bad attr" `Quick test_layout_bad_attr;
        Alcotest.test_case "ir max_slot" `Quick test_ir_max_slot;
        Alcotest.test_case "ir statement count" `Quick test_ir_statement_count;
        Alcotest.test_case "interp then" `Quick test_interp_then_branch;
        Alcotest.test_case "interp else" `Quick test_interp_else_branch;
        Alcotest.test_case "interp choose prob" `Quick test_interp_choose_sees_probability;
        Alcotest.test_case "analysis unions" `Quick test_analysis_unions_branches;
        Alcotest.test_case "analysis read-only" `Quick test_analysis_read_only;
        Alcotest.test_case "analysis pages" `Quick test_analysis_pages;
        QCheck_alcotest.to_alcotest qcheck_prediction_conservative;
        Alcotest.test_case "class compile" `Quick test_class_compile;
        Alcotest.test_case "class uncompiled" `Quick test_class_uncompiled;
        Alcotest.test_case "class duplicate method" `Quick test_class_duplicate_method;
        Alcotest.test_case "class slot validation" `Quick test_class_slot_validation;
        Alcotest.test_case "class missing method" `Quick test_class_missing_method;
        Alcotest.test_case "catalog basic" `Quick test_catalog_basic;
        Alcotest.test_case "catalog cycle" `Quick test_catalog_cycle_detection;
        Alcotest.test_case "catalog self loop" `Quick test_catalog_self_loop;
        Alcotest.test_case "catalog validation" `Quick test_catalog_validation;
        Alcotest.test_case "catalog find missing" `Quick test_catalog_find_missing;
      ] );
  ]
