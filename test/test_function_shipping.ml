(* Function shipping: the per-call cost model ({!Dsm.Shipping}), the
   shipping-off byte-identity guarantee, the sweep's headline gate, and a
   crash landing on a node that is executing a shipped invocation. *)

let params = Dsm.Shipping.default_params
let page_bytes = 4096

(* ---------- cost model: unit checks ---------- *)

let decision =
  Alcotest.testable
    (fun fmt -> function
      | Dsm.Shipping.Stay -> Format.pp_print_string fmt "Stay"
      | Dsm.Shipping.Ship { site; saved_bytes } ->
          Format.fprintf fmt "Ship{site=%d; saved=%d}" site saved_bytes)
    ( = )

let decide ?(params = params) ?(fresh = fun _ -> false) ?(page_bytes = page_bytes) ~invoker
    owners =
  Dsm.Shipping.decide params ~invoker ~owners ~fresh ~page_bytes

let test_stay_when_local_or_fresh () =
  (* Everything already at the invoker: nothing to move either way. *)
  Alcotest.check decision "all local" Dsm.Shipping.Stay
    (decide ~invoker:0 [ (0, 0); (1, 0); (2, 0) ]);
  (* Remote but locally fresh pages cost nothing to "fetch" — a lease or a
     prior fetch already materialised them. *)
  Alcotest.check decision "all fresh" Dsm.Shipping.Stay
    (decide ~invoker:0 ~fresh:(fun _ -> true) [ (0, 3); (1, 3); (2, 3) ]);
  (* A method with no page prediction gives the model nothing to weigh. *)
  Alcotest.check decision "zero prediction" Dsm.Shipping.Stay (decide ~invoker:0 [])

let test_floor_blocks_single_stale_page () =
  (* One stale page is under the default min_remote_pages = 2 floor, no
     matter how expensive it is. *)
  Alcotest.check decision "below floor" Dsm.Shipping.Stay
    (decide ~invoker:0 ~page_bytes:1_000_000 [ (0, 5); (1, 0); (2, 0) ])

let test_ship_to_plurality_owner () =
  (* Three stale pages, two homed at node 2: the plurality home wins and
     only page 2 (at node 3) remains for it to pull.
       C_fetch = 2*20*2 + 0.08*3*4096           = 1063.04
       C_ship  = 20*(2+2*1) + 0.08*(256+64+4096) =  433.28  *)
  Alcotest.check decision "plurality"
    (Dsm.Shipping.Ship { site = 2; saved_bytes = (3 * page_bytes) - (256 + 64 + page_bytes) })
    (decide ~invoker:0 [ (0, 2); (1, 2); (2, 3) ])

let test_tie_breaks_to_lowest_node () =
  (* Nodes 1 and 3 each own one stale page: the tie must break to node 1
     so the verdict is deterministic across runs. *)
  Alcotest.check decision "tie -> lowest id"
    (Dsm.Shipping.Ship { site = 1; saved_bytes = (2 * page_bytes) - (256 + 64 + page_bytes) })
    (decide ~invoker:0 [ (0, 3); (1, 1) ])

let test_small_pages_stay () =
  (* With 64-byte pages the invocation envelope (256 + 64 bytes) outweighs
     the two stale pages: data shipping is the right call. *)
  Alcotest.check decision "tiny pages" Dsm.Shipping.Stay
    (decide ~invoker:0 ~page_bytes:64 [ (0, 2); (1, 2) ])

(* ---------- cost model: properties ---------- *)

(* Arbitrary predicted page map: pages 0..n-1 homed on nodes 0..7, with an
   arbitrary locally-fresh subset. *)
let owners_gen =
  QCheck2.Gen.(
    let* nodes = list_size (int_range 1 8) (int_range 0 7) in
    let* fresh = list_size (return (List.length nodes)) bool in
    let* invoker = int_range 0 7 in
    return (invoker, List.mapi (fun page node -> (page, node)) nodes, fresh))

let fresh_of flags page = List.nth flags page

let prop_single_page_never_ships =
  QCheck2.Test.make ~name:"a single-page method never ships" ~count:200
    QCheck2.Gen.(pair (int_range 0 7) (int_range 0 7))
    (fun (invoker, node) -> decide ~invoker [ (0, node) ] = Dsm.Shipping.Stay)

(* The ship region is downward-closed in the software cost: stale pages
   come from at least as many source nodes as the home's residual plus the
   home itself (residual nodes = stale nodes minus the home, plus any
   invoker-local or fresh homes), so raising sigma never flips Stay to
   Ship. *)
let prop_ship_region_downward_closed_in_sigma =
  QCheck2.Test.make ~name:"ship region downward-closed in software cost" ~count:300
    QCheck2.Gen.(triple owners_gen (float_range 0.0 100.0) (float_range 0.0 100.0))
    (fun ((invoker, owners, fresh), s1, s2) ->
      let lo, hi = (Float.min s1 s2, Float.max s1 s2) in
      let verdict sigma =
        decide
          ~params:{ params with Dsm.Shipping.software_us = sigma }
          ~invoker ~fresh:(fresh_of fresh) owners
      in
      match verdict hi with
      | Dsm.Shipping.Stay -> true
      | Dsm.Shipping.Ship _ -> (
          (* Ships under the expensive link => ships under the cheap one,
             to the same (sigma-independent) plurality site. *)
          match (verdict lo, verdict hi) with
          | Dsm.Shipping.Ship { site = a; _ }, Dsm.Shipping.Ship { site = b; _ } -> a = b
          | _ -> false))

let prop_ship_site_is_lowest_plurality_owner =
  QCheck2.Test.make ~name:"ship site is the lowest plurality owner of stale pages" ~count:300
    owners_gen
    (fun (invoker, owners, fresh) ->
      match decide ~invoker ~fresh:(fresh_of fresh) owners with
      | Dsm.Shipping.Stay -> true
      | Dsm.Shipping.Ship { site; _ } ->
          let stale =
            List.filter (fun (page, node) -> node <> invoker && not (fresh_of fresh page)) owners
          in
          let count n = List.length (List.filter (fun (_, node) -> node = n) stale) in
          count site > 0
          && List.for_all
               (fun (_, n) -> count n < count site || (count n = count site && n >= site))
               stale)

(* ---------- shipping off: byte-identity against the goldens ---------- *)

(* The same goldens test_method_cache.ml pins (captured before the cache
   subsystem existed): with shipping = Off the runtime must take the exact
   pre-shipping code path, byte for byte, on all four protocols. *)
let golden_spec =
  {
    (Workload.Scenarios.spec Workload.Scenarios.High Workload.Scenarios.Medium) with
    Workload.Spec.root_count = 40;
    seed = 42;
  }

let goldens =
  [
    (Dsm.Protocol.Cotec, (484, 1_169_012, 25968.873648));
    (Dsm.Protocol.Otec, (419, 956_560, 20047.449955));
    (Dsm.Protocol.Lotec, (370, 731_252, 19580.172744));
    (Dsm.Protocol.Rc_nested, (425, 1_606_888, 20610.322997));
  ]

let test_shipping_off_byte_identity () =
  let wl = Workload.Generator.generate golden_spec ~page_size:4096 in
  let config = { Core.Config.default with Core.Config.shipping = Dsm.Shipping.off } in
  List.iter
    (fun (protocol, (messages, bytes, completion)) ->
      let name = Format.asprintf "%a" Dsm.Protocol.pp protocol in
      let m = Experiments.Runner.metrics (Experiments.Runner.execute ~config ~protocol wl) in
      let t = Dsm.Metrics.totals m in
      Alcotest.(check int) (name ^ " messages") messages (Dsm.Metrics.total_messages m);
      Alcotest.(check int) (name ^ " bytes") bytes (Dsm.Metrics.total_bytes m);
      Alcotest.(check (float 1e-6)) (name ^ " completion") completion
        (Dsm.Metrics.completion_time_us m);
      Alcotest.(check int) (name ^ " no ships") 0 t.Dsm.Metrics.ships;
      Alcotest.(check int) (name ^ " no declines") 0 t.Dsm.Metrics.ship_declines;
      Alcotest.(check int) (name ^ " no forced dispatches") 0 t.Dsm.Metrics.ships_forced;
      Alcotest.(check int) (name ^ " no predicted savings") 0 t.Dsm.Metrics.ship_bytes_saved)
    goldens

(* ---------- the headline gate ---------- *)

(* The acceptance numbers: on the skewed workload at the cheapest
   messaging (the least favourable sigma), LOTEC with shipping moves at
   least 30% fewer bytes than its own data-ship baseline with completion
   no worse than +2%. run_case itself asserts serializability, root
   accounting, zero-counter hygiene and exact wire-ledger reconciliation
   for both rows. *)
let test_lotec_headline_gate () =
  let outcomes =
    Experiments.Function_shipping.sweep ~protocols:[ Dsm.Protocol.Lotec ] ~skews:[ 1.5 ]
      ~software_costs:[ 20.0 ] ()
  in
  match Experiments.Function_shipping.headline outcomes with
  | None -> Alcotest.fail "sweep produced no headline row"
  | Some (baseline, on, reduction, ratio) ->
      Alcotest.(check bool) "baseline never ships" true (baseline.Experiments.Function_shipping.ships = 0);
      Alcotest.(check bool) "shipping run actually ships" true
        (on.Experiments.Function_shipping.ships > 0);
      Alcotest.(check bool) "model predicts savings" true
        (on.Experiments.Function_shipping.predicted_saved_bytes > 0);
      if reduction < 30.0 then
        Alcotest.failf "bytes reduction %.1f%% misses the 30%% floor (%d vs %d bytes)" reduction
          on.Experiments.Function_shipping.bytes baseline.Experiments.Function_shipping.bytes;
      if ratio > 1.02 then
        Alcotest.failf "completion ratio %.3f exceeds the 1.02 ceiling (%.0f vs %.0f us)" ratio
          on.Experiments.Function_shipping.completion_us
          baseline.Experiments.Function_shipping.completion_us

(* ---------- crash with a shipped invocation in flight ---------- *)

(* A fail-stop crash window on a hot home node while shipping is on: some
   invocations are executing at the crashed node as sub-fibers when it
   dies. The families they belong to must be doomed (not wedged), roots
   must stay fully accounted, and the wire ledger — Ship_invoke/Ship_reply
   rows included, crashed senders suppressed — must still reconcile
   exactly. Timers are tightened like Chaos.run_crash_case so detection
   and reclamation land inside the window. *)
let test_crash_with_shipped_invocations () =
  let spec =
    {
      (Experiments.Function_shipping.default_spec ~skew:1.5) with
      Workload.Spec.root_count = 60;
    }
  in
  let crash_case =
    {
      Experiments.Chaos.cc_protocol = Dsm.Protocol.Lotec;
      cc_windows = [ (2, 10_000.0, 30_000.0) ];
      cc_gdo_replicas = 1;
      cc_drop = 0.0;
      cc_fault_seed = 1;
    }
  in
  let config =
    {
      Core.Config.default with
      Core.Config.shipping = Dsm.Shipping.On Dsm.Shipping.default_params;
      faults = Some (Experiments.Chaos.crash_fault_config crash_case);
      gdo_replicas = 1;
      request_timeout_us = 500.0;
      max_retransmits = 3;
      heartbeat_interval_us = 500.0;
      suspect_timeout_us = 1_500.0;
    }
  in
  let wl = Workload.Generator.generate spec ~page_size:config.Core.Config.page_size in
  let run = Experiments.Runner.execute ~config ~protocol:Dsm.Protocol.Lotec wl in
  let m = Experiments.Runner.metrics run in
  let t = Dsm.Metrics.totals m in
  Alcotest.(check int) "root accounting" spec.Workload.Spec.root_count
    (t.Dsm.Metrics.roots_committed + t.Dsm.Metrics.roots_aborted);
  Alcotest.(check bool) "invocations were shipped" true (t.Dsm.Metrics.ships > 0);
  Alcotest.(check bool) "the crash doomed families" true (t.Dsm.Metrics.crash_aborts > 0);
  Alcotest.(check bool) "metrics ledger balances" true (Experiments.Chaos.ledger_balanced m);
  Alcotest.(check int) "wire ledger reconciles (messages)" (Dsm.Metrics.total_messages m)
    (Dsm.Metrics.wire_messages_total m);
  Alcotest.(check int) "wire ledger reconciles (bytes)" (Dsm.Metrics.total_bytes m)
    (Dsm.Metrics.wire_bytes_total m)

let tests =
  [
    ( "function-shipping",
      [
        Alcotest.test_case "stay when local or fresh" `Quick test_stay_when_local_or_fresh;
        Alcotest.test_case "floor blocks a single stale page" `Quick
          test_floor_blocks_single_stale_page;
        Alcotest.test_case "ship to the plurality owner" `Quick test_ship_to_plurality_owner;
        Alcotest.test_case "ties break to the lowest node" `Quick test_tie_breaks_to_lowest_node;
        Alcotest.test_case "small pages stay" `Quick test_small_pages_stay;
        QCheck_alcotest.to_alcotest prop_single_page_never_ships;
        QCheck_alcotest.to_alcotest prop_ship_region_downward_closed_in_sigma;
        QCheck_alcotest.to_alcotest prop_ship_site_is_lowest_plurality_owner;
        Alcotest.test_case "shipping off is byte-identical" `Quick
          test_shipping_off_byte_identity;
        Alcotest.test_case "lotec headline gate" `Quick test_lotec_headline_gate;
        Alcotest.test_case "crash with shipped invocations in flight" `Quick
          test_crash_with_shipped_invocations;
      ] );
  ]
