(* Property tests pinning the simulator core's contracts through the
   event-pool refactor: dispatch order, Ivar/Semaphore/Mailbox waiter
   semantics, run_for clock bounds, and the double-resume guard. Plus the
   10k-waiter regression: the waiter structures used to be accidentally
   quadratic (list appends, linear suspended-mark scans), which turned
   these shapes from milliseconds into tens of seconds. *)

open Sim

(* Delays drawn from a small grid so duplicate times are common — the
   FIFO-at-equal-time (seq) ordering is the part worth stressing. *)
let delays_gen = QCheck.Gen.(list_size (int_range 1 60) (int_range 0 10))

let arb_delays =
  QCheck.make
    ~print:(fun ds -> String.concat "," (List.map string_of_int ds))
    delays_gen

(* Dispatch order is exactly the stable sort of the schedule by time:
   earlier times first, insertion order at equal times. *)
let prop_dispatch_order =
  QCheck.Test.make ~name:"dispatch order = stable sort by time" ~count:200 arb_delays
    (fun delays ->
      let e = Engine.create () in
      let fired = ref [] in
      List.iteri
        (fun i d ->
          Engine.schedule e ~delay:(float_of_int d /. 2.0) (fun () -> fired := i :: !fired))
        delays;
      Engine.run e;
      let indexed = List.mapi (fun i d -> (d, i)) delays in
      let expected =
        List.map snd (List.stable_sort (fun (a, _) (b, _) -> compare a b) indexed)
      in
      List.rev !fired = expected)

(* Ivar: every reader sees the filled value exactly once, wakes in
   suspend order, and a read after the fill completes immediately. *)
let prop_ivar_waiters =
  QCheck.Test.make ~name:"ivar: readers wake in suspend order, read-after-fill"
    ~count:100
    QCheck.(pair (int_range 0 30) small_int)
    (fun (readers, v) ->
      let e = Engine.create () in
      let iv = Engine.Ivar.create () in
      let woken = ref [] in
      for i = 1 to readers do
        Engine.spawn e (fun () ->
            let got = Engine.Ivar.read iv in
            woken := (i, got) :: !woken)
      done;
      Engine.schedule e ~delay:5.0 (fun () -> Engine.Ivar.fill iv v);
      (* A late reader starts after the fill: immediate read. *)
      Engine.schedule e ~delay:6.0 (fun () ->
          Engine.spawn e (fun () -> woken := (readers + 1, Engine.Ivar.read iv) :: !woken));
      Engine.run e;
      List.rev !woken = List.init (readers + 1) (fun i -> (i + 1, v)))

let prop_ivar_fill_once =
  QCheck.Test.make ~name:"ivar: second fill always raises" ~count:50
    QCheck.(pair small_int small_int)
    (fun (a, b) ->
      let iv = Engine.Ivar.create () in
      Engine.Ivar.fill iv a;
      match Engine.Ivar.fill iv b with
      | () -> false
      | exception Invalid_argument _ -> Engine.Ivar.peek iv = Some a)

(* Semaphore: the number of concurrently held permits never exceeds the
   permit count, and grants go to waiters in FIFO (block) order. *)
let prop_semaphore =
  QCheck.Test.make ~name:"semaphore: permits respected, FIFO grants" ~count:100
    QCheck.(pair (int_range 1 4) (int_range 1 40))
    (fun (permits, fibers) ->
      let e = Engine.create () in
      let s = Engine.Semaphore.create ~permits in
      let held = ref 0 and peak = ref 0 and grants = ref [] in
      for i = 1 to fibers do
        Engine.spawn e (fun () ->
            Engine.Semaphore.acquire s;
            grants := i :: !grants;
            incr held;
            if !held > !peak then peak := !held;
            Engine.wait 1.0;
            decr held;
            Engine.Semaphore.release s)
      done;
      Engine.run e;
      !peak <= permits
      && List.rev !grants = List.init fibers (fun i -> i + 1)
      && Engine.Semaphore.available s = permits
      && Engine.Semaphore.waiting s = 0)

(* Mailbox: values come out in put order however puts and the consumer's
   takes interleave in time — sometimes the consumer blocks, sometimes
   items buffer while it sleeps. (The mailbox is single-consumer, as the
   runtime uses it: put wakes one taker, and a looping consumer may
   drain items ahead of another taker's retry.) *)
let prop_mailbox_fifo =
  QCheck.Test.make ~name:"mailbox: FIFO under interleaved put/take" ~count:100
    QCheck.(pair arb_delays arb_delays)
    (fun (put_delays, gaps) ->
      let n = List.length put_delays in
      let e = Engine.create () in
      let mb = Engine.Mailbox.create () in
      let taken = ref [] in
      (* Values are assigned in time order of the puts, so the expected
         take order is simply 0, 1, 2, ... *)
      let next = ref 0 in
      List.iter
        (fun d ->
          Engine.schedule e ~delay:(float_of_int d) (fun () ->
              Engine.Mailbox.put mb !next;
              incr next))
        put_delays;
      let gap i =
        match List.nth_opt gaps (i mod max 1 (List.length gaps)) with
        | Some g -> float_of_int g
        | None -> 0.0
      in
      Engine.spawn e (fun () ->
          for i = 1 to n do
            taken := Engine.Mailbox.take mb :: !taken;
            if i land 1 = 0 then Engine.wait (gap i)
          done);
      Engine.run e;
      List.rev !taken = List.init n (fun i -> i) && Engine.Mailbox.length mb = 0)

(* run_for: the clock lands exactly on the deadline and only events due
   by then (inclusive) fire; a second segment picks up the rest. *)
let prop_run_for_deadline =
  QCheck.Test.make ~name:"run_for: now never passes the deadline" ~count:200
    QCheck.(triple arb_delays (int_range 0 10) (int_range 0 15))
    (fun (delays, d1, d2) ->
      let e = Engine.create () in
      let fired = ref [] in
      List.iter
        (fun d ->
          let d = float_of_int d in
          Engine.schedule e ~delay:d (fun () -> fired := d :: !fired))
        delays;
      let d1 = float_of_int d1 and d2 = float_of_int d2 in
      Engine.run_for e d1;
      let due_first = List.filter (fun d -> float_of_int d <= d1) delays in
      let ok1 =
        Engine.now e = d1
        && List.length !fired = List.length due_first
        && List.for_all (fun t -> t <= d1) !fired
      in
      Engine.run_for e d2;
      let due_both = List.filter (fun d -> float_of_int d <= d1 +. d2) delays in
      ok1
      && Engine.now e = d1 +. d2
      && List.length !fired = List.length due_both
      && List.for_all (fun t -> t <= d1 +. d2) !fired)

(* Resuming the same suspension twice always raises, whatever the delay
   between the two calls. *)
let prop_double_resume =
  QCheck.Test.make ~name:"double resume always raises" ~count:50
    QCheck.(int_range 0 10)
    (fun gap ->
      let e = Engine.create () in
      let resume = ref (fun () -> ()) in
      let outcome = ref `Unset in
      Engine.spawn e (fun () -> Engine.suspend (fun k -> resume := k));
      Engine.schedule e ~delay:1.0 (fun () -> !resume ());
      Engine.schedule e ~delay:(1.0 +. float_of_int gap) (fun () ->
          match !resume () with
          | () -> outcome := `No_raise
          | exception Invalid_argument _ -> outcome := `Raised);
      Engine.run e;
      !outcome = `Raised)

(* Regression for the quadratic waiter structures: 10k contenders on one
   semaphore plus 10k suspended readers on one ivar. The pre-refactor
   engine (waiter-list appends, linear suspended-mark scans) needed tens
   of seconds of CPU for this; the bound stays far above the fixed
   engine's cost yet well below the quadratic one. *)
let test_waiter_regression () =
  let budget_s = 5.0 in
  let t0 = Sys.time () in
  let e = Engine.create () in
  let s = Engine.Semaphore.create ~permits:1 in
  let completed = ref 0 in
  for _ = 1 to 10_000 do
    Engine.spawn e (fun () ->
        Engine.Semaphore.acquire s;
        Engine.wait 1.0;
        Engine.Semaphore.release s;
        incr completed)
  done;
  Engine.run e;
  let iv = Engine.Ivar.create () in
  for _ = 1 to 10_000 do
    Engine.spawn e (fun () ->
        ignore (Engine.Ivar.read iv);
        incr completed)
  done;
  Engine.schedule e ~delay:1.0 (fun () -> Engine.Ivar.fill iv ());
  Engine.run e;
  let elapsed = Sys.time () -. t0 in
  Alcotest.(check int) "all fibers completed" 20_000 !completed;
  if elapsed > budget_s then
    Alcotest.failf "10k-waiter workload took %.1fs CPU (budget %.1fs): waiter paths are no \
                    longer linear"
      elapsed budget_s

let tests =
  [
    ( "engine-props",
      [
        QCheck_alcotest.to_alcotest prop_dispatch_order;
        QCheck_alcotest.to_alcotest prop_ivar_waiters;
        QCheck_alcotest.to_alcotest prop_ivar_fill_once;
        QCheck_alcotest.to_alcotest prop_semaphore;
        QCheck_alcotest.to_alcotest prop_mailbox_fifo;
        QCheck_alcotest.to_alcotest prop_run_for_deadline;
        QCheck_alcotest.to_alcotest prop_double_resume;
        Alcotest.test_case "10k-waiter regression" `Quick test_waiter_regression;
      ] );
  ]
