(* Read-lease subsystem tests: the Gdo.Lease manager and cache as pure data
   structures, the runtime integration (local hits, recall-on-write,
   commit-time validation), the headline home-lock-op reduction on a
   read-dominated workload, and leases under interconnect chaos. *)

open Objmodel

let oid = Oid.of_int
let fam = Txn.Txn_id.of_int

let ttl_policy = Gdo.Lease.Fixed_ttl { ttl_us = 1000.0 }

let grant ?(mode = Txn.Lock.Read) o =
  {
    Gdo.Directory.g_oid = oid o;
    g_mode = mode;
    g_page_nodes = [| 0; 1 |];
    g_page_versions = [| 1; 1 |];
  }

(* ---------- policy ---------- *)

let test_policy_strings () =
  List.iter
    (fun (s, expect) ->
      match Gdo.Lease.policy_of_string s with
      | Ok p -> Alcotest.(check string) s expect (Gdo.Lease.policy_to_string p)
      | Error e -> Alcotest.fail e)
    [ ("off", "off"); ("none", "off"); ("ttl", "ttl"); ("ON", "ttl"); ("adaptive", "adaptive") ];
  Alcotest.(check bool) "unknown rejected" true
    (Result.is_error (Gdo.Lease.policy_of_string "sometimes"))

let test_policy_validation () =
  let bad p = Result.is_error (Gdo.Lease.validate_policy p) in
  Alcotest.(check bool) "off ok" false (bad Gdo.Lease.Off);
  Alcotest.(check bool) "ttl ok" false (bad ttl_policy);
  Alcotest.(check bool) "zero ttl" true (bad (Gdo.Lease.Fixed_ttl { ttl_us = 0.0 }));
  Alcotest.(check bool) "negative ttl" true
    (bad (Gdo.Lease.Adaptive { ttl_us = -1.0; min_read_ratio = 0.5; min_samples = 1 }));
  Alcotest.(check bool) "ratio > 1" true
    (bad (Gdo.Lease.Adaptive { ttl_us = 1.0; min_read_ratio = 1.5; min_samples = 1 }));
  Alcotest.(check bool) "zero samples" true
    (bad (Gdo.Lease.Adaptive { ttl_us = 1.0; min_read_ratio = 0.5; min_samples = 0 }))

(* ---------- home-side manager ---------- *)

let test_manager_off_inert () =
  let t = Gdo.Lease.create Gdo.Lease.Off in
  Alcotest.(check bool) "disabled" false (Gdo.Lease.enabled t);
  Alcotest.(check bool) "no lease" true
    (Gdo.Lease.lease_for_grant t (oid 1) ~node:0 ~now:0.0 ~writer_queued:false = None)

let test_manager_grant_and_renew () =
  let t = Gdo.Lease.create ttl_policy in
  (match Gdo.Lease.lease_for_grant t (oid 1) ~node:2 ~now:100.0 ~writer_queued:false with
  | Some (expires, epoch) ->
      Alcotest.(check (float 1e-9)) "expiry = now + ttl" 1100.0 expires;
      Alcotest.(check int) "epoch 0" 0 epoch
  | None -> Alcotest.fail "expected a lease");
  (* Renewal replaces, not duplicates. *)
  ignore (Gdo.Lease.lease_for_grant t (oid 1) ~node:2 ~now:500.0 ~writer_queued:false);
  Alcotest.(check (list int)) "one grant" [ 2 ] (Gdo.Lease.outstanding t (oid 1) ~now:600.0);
  (* Queued writer: no lease (it would be recalled immediately). *)
  Alcotest.(check bool) "writer queued refuses" true
    (Gdo.Lease.lease_for_grant t (oid 1) ~node:3 ~now:600.0 ~writer_queued:true = None);
  (* Expiry prunes. *)
  Alcotest.(check (list int)) "expired gone" [] (Gdo.Lease.outstanding t (oid 1) ~now:2000.0)

let test_manager_recall_lifecycle () =
  let t = Gdo.Lease.create ttl_policy in
  ignore (Gdo.Lease.lease_for_grant t (oid 1) ~node:1 ~now:0.0 ~writer_queued:false);
  ignore (Gdo.Lease.lease_for_grant t (oid 1) ~node:3 ~now:50.0 ~writer_queued:false);
  (match Gdo.Lease.begin_recall t (oid 1) ~now:100.0 ~excluded:(Some (fam 7)) with
  | `Recall { Gdo.Lease.ro_nodes; ro_epoch; ro_deadline; ro_token } ->
      Alcotest.(check (list int)) "nodes" [ 1; 3 ] ro_nodes;
      Alcotest.(check int) "epoch" 0 ro_epoch;
      Alcotest.(check (float 1e-9)) "deadline = latest expiry" 1050.0 ro_deadline;
      Alcotest.(check bool) "token visible" true
        (Gdo.Lease.recall_token t (oid 1) = Some ro_token)
  | `Clear | `In_progress -> Alcotest.fail "expected `Recall");
  Alcotest.(check bool) "in progress" true (Gdo.Lease.recall_in_progress t (oid 1));
  Alcotest.(check bool) "excluded recorded" true
    (Gdo.Lease.excluded_family t (oid 1) = Some (fam 7));
  (* No new leases while recalling. *)
  Alcotest.(check bool) "no lease mid-recall" true
    (Gdo.Lease.lease_for_grant t (oid 1) ~node:2 ~now:100.0 ~writer_queued:false = None);
  (* A second write queues behind the same recall. *)
  Alcotest.(check bool) "second recall parked" true
    (Gdo.Lease.begin_recall t (oid 1) ~now:110.0 ~excluded:None = `In_progress);
  Alcotest.(check bool) "yield 1 waiting" true
    (Gdo.Lease.note_yield t (oid 1) ~node:1 = `Waiting);
  Alcotest.(check bool) "yield 3 clears" true
    (Gdo.Lease.note_yield t (oid 1) ~node:3 = `Cleared);
  Alcotest.(check bool) "token gone" true (Gdo.Lease.recall_token t (oid 1) = None);
  Alcotest.(check bool) "late yield stale" true
    (Gdo.Lease.note_yield t (oid 1) ~node:1 = `Stale);
  (* Nothing outstanding: a fresh write sails through. *)
  Alcotest.(check bool) "clear now" true
    (Gdo.Lease.begin_recall t (oid 1) ~now:200.0 ~excluded:None = `Clear)

let test_manager_force_clear_and_epoch () =
  let t = Gdo.Lease.create ttl_policy in
  ignore (Gdo.Lease.lease_for_grant t (oid 1) ~node:1 ~now:0.0 ~writer_queued:false);
  let token =
    match Gdo.Lease.begin_recall t (oid 1) ~now:10.0 ~excluded:None with
    | `Recall r -> r.Gdo.Lease.ro_token
    | _ -> Alcotest.fail "expected `Recall"
  in
  Alcotest.(check bool) "wrong token refused" false
    (Gdo.Lease.force_clear t (oid 1) ~token:(token + 1));
  Alcotest.(check bool) "right token clears" true (Gdo.Lease.force_clear t (oid 1) ~token);
  Alcotest.(check bool) "idempotent" false (Gdo.Lease.force_clear t (oid 1) ~token);
  Alcotest.(check int) "epoch still 0" 0 (Gdo.Lease.epoch t (oid 1));
  Gdo.Lease.note_write_granted t (oid 1);
  Gdo.Lease.note_write_granted t (oid 1);
  Alcotest.(check int) "epoch bumps per write grant" 2 (Gdo.Lease.epoch t (oid 1))

let test_manager_adaptive () =
  let t =
    Gdo.Lease.create
      (Gdo.Lease.Adaptive { ttl_us = 1000.0; min_read_ratio = 0.75; min_samples = 4 })
  in
  let try_lease now =
    Gdo.Lease.lease_for_grant t (oid 1) ~node:0 ~now ~writer_queued:false <> None
  in
  Gdo.Lease.note_read t (oid 1);
  Gdo.Lease.note_read t (oid 1);
  Alcotest.(check bool) "below min_samples" false (try_lease 0.0);
  Gdo.Lease.note_read t (oid 1);
  Gdo.Lease.note_read t (oid 1);
  Alcotest.(check bool) "read-dominated leases" true (try_lease 1.0);
  (* Pile on writes until the ratio drops below the bar. *)
  Gdo.Lease.note_write t (oid 1);
  Gdo.Lease.note_write t (oid 1);
  Alcotest.(check bool) "write-heavy refuses" false (try_lease 2.0)

(* ---------- node-side cache ---------- *)

let test_cache_hit_and_expiry () =
  let c = Gdo.Lease.Cache.create () in
  Alcotest.(check bool) "miss when empty" true
    (Gdo.Lease.Cache.hit c (oid 1) ~now:0.0 = None);
  Gdo.Lease.Cache.install c (oid 1) ~grant:(grant 1) ~expires:100.0 ~epoch:1;
  Alcotest.(check bool) "hit while valid" true (Gdo.Lease.Cache.hit c (oid 1) ~now:50.0 <> None);
  Alcotest.(check bool) "miss after expiry" true
    (Gdo.Lease.Cache.hit c (oid 1) ~now:100.0 = None);
  (* Renewal at the same epoch extends the expiry. *)
  Gdo.Lease.Cache.install c (oid 1) ~grant:(grant 1) ~expires:200.0 ~epoch:1;
  Alcotest.(check bool) "hit after renewal" true
    (Gdo.Lease.Cache.hit c (oid 1) ~now:150.0 <> None);
  Gdo.Lease.Cache.drop_expired c ~now:300.0;
  Alcotest.(check int) "gc dropped it" 0 (Gdo.Lease.Cache.entry_count c)

let test_cache_recall_epoch_fence () =
  let c = Gdo.Lease.Cache.create () in
  Gdo.Lease.Cache.install c (oid 1) ~grant:(grant 1) ~expires:100.0 ~epoch:1;
  (* No readers: the recall yields immediately and drops the entry. *)
  Alcotest.(check bool) "immediate yield" true
    (Gdo.Lease.Cache.recall c (oid 1) ~epoch:1 ~excluded:None = `Yield);
  (* The fence: a retransmitted grant at the recalled epoch must not
     resurrect the lease; a later-epoch grant installs fine. *)
  Gdo.Lease.Cache.install c (oid 1) ~grant:(grant 1) ~expires:200.0 ~epoch:1;
  Alcotest.(check bool) "stale reinstall refused" true
    (Gdo.Lease.Cache.hit c (oid 1) ~now:150.0 = None);
  Gdo.Lease.Cache.install c (oid 1) ~grant:(grant 1) ~expires:200.0 ~epoch:2;
  Alcotest.(check bool) "fresh epoch installs" true
    (Gdo.Lease.Cache.hit c (oid 1) ~now:150.0 <> None);
  (* A recall for an older generation than the installed lease answers
     without touching the newer lease. *)
  Alcotest.(check bool) "old-generation recall yields" true
    (Gdo.Lease.Cache.recall c (oid 1) ~epoch:1 ~excluded:None = `Yield);
  Alcotest.(check bool) "newer lease untouched" true
    (Gdo.Lease.Cache.hit c (oid 1) ~now:150.0 <> None)

let test_cache_deferred_yield () =
  let c = Gdo.Lease.Cache.create () in
  Gdo.Lease.Cache.install c (oid 1) ~grant:(grant 1) ~expires:1000.0 ~epoch:1;
  Gdo.Lease.Cache.add_reader c (oid 1) ~family:(fam 1);
  Gdo.Lease.Cache.add_reader c (oid 1) ~family:(fam 2);
  Alcotest.(check int) "two readers" 2 (Gdo.Lease.Cache.reader_count c (oid 1));
  Alcotest.(check bool) "recall deferred" true
    (Gdo.Lease.Cache.recall c (oid 1) ~epoch:1 ~excluded:None = `Deferred);
  Alcotest.(check bool) "recalled entry stops hitting" true
    (Gdo.Lease.Cache.hit c (oid 1) ~now:10.0 = None);
  Alcotest.(check bool) "first release: still blocked" true
    (Gdo.Lease.Cache.remove_reader c (oid 1) ~family:(fam 1) = `Nothing);
  Alcotest.(check bool) "last release yields" true
    (Gdo.Lease.Cache.remove_reader c (oid 1) ~family:(fam 2) = `Yield)

let test_cache_excluded_reader () =
  let c = Gdo.Lease.Cache.create () in
  Gdo.Lease.Cache.install c (oid 1) ~grant:(grant 1) ~expires:1000.0 ~epoch:1;
  Gdo.Lease.Cache.add_reader c (oid 1) ~family:(fam 1);
  Gdo.Lease.Cache.add_reader c (oid 1) ~family:(fam 9);
  (* Family 9 is the upgrading writer whose request triggered the recall:
     it must not block its own yield. *)
  Alcotest.(check bool) "only fam 1 blocks" true
    (Gdo.Lease.Cache.recall c (oid 1) ~epoch:1 ~excluded:(Some (fam 9)) = `Deferred);
  Alcotest.(check bool) "excluded's own release does not yield" true
    (Gdo.Lease.Cache.remove_reader c (oid 1) ~family:(fam 9) = `Nothing);
  Gdo.Lease.Cache.add_reader c (oid 1) ~family:(fam 9);
  Alcotest.(check bool) "blocking reader drains: yield" true
    (Gdo.Lease.Cache.remove_reader c (oid 1) ~family:(fam 1) = `Yield)

let test_cache_validation () =
  let c = Gdo.Lease.Cache.create () in
  Gdo.Lease.Cache.install c (oid 1) ~grant:(grant 1) ~expires:100.0 ~epoch:1;
  Gdo.Lease.Cache.add_reader c (oid 1) ~family:(fam 1);
  Alcotest.(check bool) "valid while fresh" true
    (Gdo.Lease.Cache.valid c (oid 1) ~family:(fam 1) ~now:50.0);
  Alcotest.(check bool) "unknown family invalid" false
    (Gdo.Lease.Cache.valid c (oid 1) ~family:(fam 2) ~now:50.0);
  Alcotest.(check bool) "expired invalid" false
    (Gdo.Lease.Cache.valid c (oid 1) ~family:(fam 1) ~now:100.0);
  (* A superseding install dooms readers admitted under the old epoch. *)
  Gdo.Lease.Cache.install c (oid 1) ~grant:(grant 1) ~expires:300.0 ~epoch:2;
  Alcotest.(check bool) "superseded invalid" false
    (Gdo.Lease.Cache.valid c (oid 1) ~family:(fam 1) ~now:50.0)

(* ---------- runtime integration ---------- *)

let lotec_case policy read_fraction =
  { Experiments.Lease.protocol = Dsm.Protocol.Lotec; read_fraction; policy }

(* The tentpole acceptance number: on a read-dominated workload (the 0.95
   read-only-method fraction of the sweep spec runs ~89% read acquisitions),
   leases cut home-node lock operations by at least 30%. run_case itself
   asserts serializability, root accounting and zero-counter hygiene. *)
let test_home_lock_reduction () =
  let spec = Experiments.Lease.default_spec in
  let off = Experiments.Lease.run_case ~spec (lotec_case Gdo.Lease.Off 0.95) in
  let on = Experiments.Lease.run_case ~spec (lotec_case Experiments.Lease.default_policy 0.95) in
  Alcotest.(check int) "all committed (off)" spec.Workload.Spec.root_count off.committed;
  Alcotest.(check int) "all committed (on)" spec.Workload.Spec.root_count on.committed;
  Alcotest.(check bool) "leases actually hit" true (on.lease_hits > 0);
  Alcotest.(check bool) "writes actually recalled" true (on.lease_recalls > 0);
  let red = Experiments.Lease.reduction ~off ~on in
  if red > -30.0 then
    Alcotest.failf "home_lock_ops reduction %.1f%% misses the -30%% target (off %d, on %d)" red
      off.home_lock_ops on.home_lock_ops

(* Same comparison, all four protocols: leases must preserve every
   protocol's invariants and reduce home traffic on the read-heavy point. *)
let test_all_protocols_reduce () =
  List.iter
    (fun protocol ->
      let spec = Experiments.Lease.default_spec in
      let case policy = { Experiments.Lease.protocol; read_fraction = 0.95; policy } in
      let off = Experiments.Lease.run_case ~spec (case Gdo.Lease.Off) in
      let on = Experiments.Lease.run_case ~spec (case Experiments.Lease.default_policy) in
      let red = Experiments.Lease.reduction ~off ~on in
      if red >= 0.0 then
        Alcotest.failf "%s: leases did not reduce home ops (%.1f%%)"
          (Dsm.Protocol.to_string protocol) red)
    Dsm.Protocol.all

(* With the Off policy the whole subsystem must be invisible: identical
   traffic, bytes and completion to a run without the lease code paths. *)
let test_off_is_invisible () =
  let spec = { Experiments.Lease.default_spec with Workload.Spec.root_count = 40 } in
  let o = Experiments.Lease.run_case ~spec (lotec_case Gdo.Lease.Off 0.8) in
  Alcotest.(check int) "no grants" 0 o.lease_grants;
  Alcotest.(check int) "no hits" 0 o.lease_hits;
  Alcotest.(check int) "no recalls" 0 o.lease_recalls

(* Determinism: leases introduce timers and extra messages, but a repeated
   run must still be byte-identical. *)
let test_leased_run_deterministic () =
  let spec = { Experiments.Lease.default_spec with Workload.Spec.root_count = 60 } in
  let case = lotec_case Experiments.Lease.default_policy 0.9 in
  let a = Experiments.Lease.run_case ~spec case in
  let b = Experiments.Lease.run_case ~spec case in
  Alcotest.(check int) "messages" a.messages b.messages;
  Alcotest.(check int) "bytes" a.bytes b.bytes;
  Alcotest.(check int) "hits" a.lease_hits b.lease_hits;
  Alcotest.(check (float 0.0)) "completion" a.completion_us b.completion_us

(* ---------- leases under chaos ---------- *)

let chaos_spec =
  {
    Experiments.Lease.default_spec with
    Workload.Spec.root_count = 40;
    read_only_method_fraction = 0.9;
  }

let leased_config ?(windows = []) ~fault_seed ~drop ~dup ~jitter () =
  {
    Core.Config.default with
    Core.Config.lease = Experiments.Lease.default_policy;
    faults =
      Some
        {
          Sim.Fault.seed = fault_seed;
          drop_probability = drop;
          duplicate_probability = dup;
          delay_jitter_us = jitter;
          windows;
          link_windows = [];
        };
  }

(* Recalls and yields ride the reliable transport: with drops and
   duplicates injected, every chaos invariant still holds (Runner.execute
   asserts serializability; Failure fails the test). *)
let test_leases_under_faults () =
  let config = leased_config ~fault_seed:11 ~drop:0.08 ~dup:0.08 ~jitter:40.0 () in
  let wl = Workload.Generator.generate chaos_spec ~page_size:4096 in
  let run = Experiments.Runner.execute ~config ~protocol:Dsm.Protocol.Lotec wl in
  let m = Experiments.Runner.metrics run in
  let t = Dsm.Metrics.totals m in
  Alcotest.(check int) "all roots accounted" chaos_spec.Workload.Spec.root_count
    (t.Dsm.Metrics.roots_committed + t.Dsm.Metrics.roots_aborted);
  Alcotest.(check bool) "ledger balanced" true (Experiments.Chaos.ledger_balanced m);
  Alcotest.(check bool) "faults were injected" true (t.Dsm.Metrics.drops > 0);
  Alcotest.(check bool) "leases were exercised" true (t.Dsm.Metrics.lease_grants > 0)

(* Recalls racing node pause/crash windows: a recall sent into an outage is
   retransmitted (or resolved by the TTL force-clear), and the run still
   completes with a serializable history. *)
let test_leases_across_crash_windows () =
  let windows =
    [
      { Sim.Fault.w_node = 1; w_kind = Sim.Fault.Pause; w_from_us = 2_000.0; w_until_us = 7_000.0 };
      { Sim.Fault.w_node = 2; w_kind = Sim.Fault.Crash; w_from_us = 4_000.0; w_until_us = 12_000.0 };
    ]
  in
  let config = leased_config ~windows ~fault_seed:3 ~drop:0.02 ~dup:0.02 ~jitter:10.0 () in
  let wl = Workload.Generator.generate chaos_spec ~page_size:4096 in
  let run = Experiments.Runner.execute ~config ~protocol:Dsm.Protocol.Lotec wl in
  let m = Experiments.Runner.metrics run in
  let t = Dsm.Metrics.totals m in
  Alcotest.(check int) "all roots accounted" chaos_spec.Workload.Spec.root_count
    (t.Dsm.Metrics.roots_committed + t.Dsm.Metrics.roots_aborted);
  Alcotest.(check bool) "ledger balanced" true (Experiments.Chaos.ledger_balanced m);
  Alcotest.(check bool) "outage cost retransmits" true (t.Dsm.Metrics.retransmits > 0);
  Alcotest.(check bool) "leases were exercised" true (t.Dsm.Metrics.lease_grants > 0)

(* QCheck property: for arbitrary small fault rates, seeds and TTLs, every
   invariant holds with leases enabled under every protocol. *)
let prop_leased_chaos_invariants =
  let gen =
    QCheck2.Gen.(
      quad (int_range 1 1000) (float_bound_inclusive 0.1) (float_bound_inclusive 0.1)
        (float_range 2_000.0 40_000.0))
  in
  QCheck2.Test.make ~name:"lease invariants hold under faults" ~count:8 gen
    (fun (fault_seed, drop, dup, ttl_us) ->
      List.for_all
        (fun protocol ->
          let config =
            {
              (leased_config ~fault_seed ~drop ~dup ~jitter:20.0 ()) with
              Core.Config.lease = Gdo.Lease.Fixed_ttl { ttl_us };
            }
          in
          let wl = Workload.Generator.generate chaos_spec ~page_size:4096 in
          let run = Experiments.Runner.execute ~config ~protocol wl in
          let m = Experiments.Runner.metrics run in
          let t = Dsm.Metrics.totals m in
          t.Dsm.Metrics.roots_committed + t.Dsm.Metrics.roots_aborted
            = chaos_spec.Workload.Spec.root_count
          && Experiments.Chaos.ledger_balanced m)
        Dsm.Protocol.[ Otec; Lotec ])

let tests =
  [
    ( "lease",
      [
        Alcotest.test_case "policy strings" `Quick test_policy_strings;
        Alcotest.test_case "policy validation" `Quick test_policy_validation;
        Alcotest.test_case "manager off inert" `Quick test_manager_off_inert;
        Alcotest.test_case "manager grant and renew" `Quick test_manager_grant_and_renew;
        Alcotest.test_case "manager recall lifecycle" `Quick test_manager_recall_lifecycle;
        Alcotest.test_case "manager force-clear and epoch" `Quick
          test_manager_force_clear_and_epoch;
        Alcotest.test_case "manager adaptive" `Quick test_manager_adaptive;
        Alcotest.test_case "cache hit and expiry" `Quick test_cache_hit_and_expiry;
        Alcotest.test_case "cache recall epoch fence" `Quick test_cache_recall_epoch_fence;
        Alcotest.test_case "cache deferred yield" `Quick test_cache_deferred_yield;
        Alcotest.test_case "cache excluded reader" `Quick test_cache_excluded_reader;
        Alcotest.test_case "cache validation" `Quick test_cache_validation;
        Alcotest.test_case "home lock ops cut >=30%" `Quick test_home_lock_reduction;
        Alcotest.test_case "every protocol reduces" `Quick test_all_protocols_reduce;
        Alcotest.test_case "off is invisible" `Quick test_off_is_invisible;
        Alcotest.test_case "leased run deterministic" `Quick test_leased_run_deterministic;
        Alcotest.test_case "leases under faults" `Quick test_leases_under_faults;
        Alcotest.test_case "leases across crash windows" `Quick
          test_leases_across_crash_windows;
        QCheck_alcotest.to_alcotest prop_leased_chaos_invariants;
      ] );
  ]
