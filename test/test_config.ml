(* Tests for Core.Config validation. *)

let test_default_valid () =
  Alcotest.(check bool) "default" true (Core.Config.validate Core.Config.default = Ok ())

let expect_invalid name cfg =
  Alcotest.(check bool) name true (Result.is_error (Core.Config.validate cfg))

let test_invalid_fields () =
  expect_invalid "nodes" { Core.Config.default with Core.Config.node_count = 0 };
  expect_invalid "page size" { Core.Config.default with Core.Config.page_size = -1 };
  expect_invalid "bandwidth"
    {
      Core.Config.default with
      Core.Config.link = { Sim.Network.bandwidth_bps = 0.0; software_cost_us = 1.0 };
    };
  expect_invalid "software cost"
    {
      Core.Config.default with
      Core.Config.link = { Sim.Network.bandwidth_bps = 1e8; software_cost_us = -1.0 };
    };
  expect_invalid "abort probability"
    { Core.Config.default with Core.Config.abort_probability = 1.5 };
  expect_invalid "retries" { Core.Config.default with Core.Config.max_sub_retries = -1 };
  expect_invalid "backoff" { Core.Config.default with Core.Config.root_retry_backoff_us = -5.0 }

let test_pp_mentions_protocol () =
  let s = Format.asprintf "%a" Core.Config.pp Core.Config.default in
  Alcotest.(check bool) "prints" true (String.length s > 0)

let tests =
  [
    ( "config",
      [
        Alcotest.test_case "default valid" `Quick test_default_valid;
        Alcotest.test_case "invalid fields" `Quick test_invalid_fields;
        Alcotest.test_case "pp" `Quick test_pp_mentions_protocol;
      ] );
  ]
