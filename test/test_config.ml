(* Tests for Core.Config validation. *)

let test_default_valid () =
  Alcotest.(check bool) "default" true (Core.Config.validate Core.Config.default = Ok ())

let expect_invalid name cfg =
  Alcotest.(check bool) name true (Result.is_error (Core.Config.validate cfg))

let test_invalid_fields () =
  expect_invalid "nodes" { Core.Config.default with Core.Config.node_count = 0 };
  expect_invalid "page size" { Core.Config.default with Core.Config.page_size = -1 };
  expect_invalid "bandwidth"
    {
      Core.Config.default with
      Core.Config.link = { Sim.Network.bandwidth_bps = 0.0; software_cost_us = 1.0 };
    };
  expect_invalid "software cost"
    {
      Core.Config.default with
      Core.Config.link = { Sim.Network.bandwidth_bps = 1e8; software_cost_us = -1.0 };
    };
  expect_invalid "abort probability"
    { Core.Config.default with Core.Config.abort_probability = 1.5 };
  expect_invalid "retries" { Core.Config.default with Core.Config.max_sub_retries = -1 };
  expect_invalid "backoff" { Core.Config.default with Core.Config.root_retry_backoff_us = -5.0 }

let test_fault_fields () =
  expect_invalid "timeout zero" { Core.Config.default with Core.Config.request_timeout_us = 0.0 };
  expect_invalid "timeout negative"
    { Core.Config.default with Core.Config.request_timeout_us = -100.0 };
  expect_invalid "retransmits" { Core.Config.default with Core.Config.max_retransmits = -1 };
  (* An embedded fault config is validated too. *)
  expect_invalid "fault drop out of range"
    {
      Core.Config.default with
      Core.Config.faults = Some { Sim.Fault.none with Sim.Fault.drop_probability = 1.5 };
    };
  expect_invalid "fault dup out of range"
    {
      Core.Config.default with
      Core.Config.faults = Some { Sim.Fault.none with Sim.Fault.duplicate_probability = -0.1 };
    };
  expect_invalid "fault jitter negative"
    {
      Core.Config.default with
      Core.Config.faults = Some { Sim.Fault.none with Sim.Fault.delay_jitter_us = -5.0 };
    };
  expect_invalid "fault window inverted"
    {
      Core.Config.default with
      Core.Config.faults =
        Some
          {
            Sim.Fault.none with
            Sim.Fault.windows =
              [ { Sim.Fault.w_node = 0; w_kind = Sim.Fault.Pause; w_from_us = 9.0; w_until_us = 1.0 } ];
          };
    };
  let active =
    {
      Core.Config.default with
      Core.Config.faults =
        Some
          {
            Sim.Fault.seed = 3;
            drop_probability = 0.1;
            duplicate_probability = 0.1;
            delay_jitter_us = 50.0;
            windows =
              [ { Sim.Fault.w_node = 1; w_kind = Sim.Fault.Crash; w_from_us = 10.0; w_until_us = 20.0 } ];
            link_windows = [];
          };
    }
  in
  Alcotest.(check bool) "valid active faults" true (Core.Config.validate active = Ok ());
  (* pp surfaces the fault line only for an active config. *)
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  let active_s = Format.asprintf "%a" Core.Config.pp active in
  Alcotest.(check bool) "pp shows faults" true (contains active_s "faults");
  let default_s = Format.asprintf "%a" Core.Config.pp Core.Config.default in
  Alcotest.(check bool) "pp silent when fault-free" false (contains default_s "faults")

let test_pp_mentions_protocol () =
  let s = Format.asprintf "%a" Core.Config.pp Core.Config.default in
  Alcotest.(check bool) "prints" true (String.length s > 0)

let tests =
  [
    ( "config",
      [
        Alcotest.test_case "default valid" `Quick test_default_valid;
        Alcotest.test_case "invalid fields" `Quick test_invalid_fields;
        Alcotest.test_case "fault fields" `Quick test_fault_fields;
        Alcotest.test_case "pp" `Quick test_pp_mentions_protocol;
      ] );
  ]
