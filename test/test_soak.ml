(* Soak test: one large adversarial configuration exercising every feature
   at once — paper-scale contention, failure injection, optimistic
   pre-acquisition, per-class protocol overrides, shadow-page recovery,
   access skew, CPU-limited nodes and tracing — and checking the global
   invariants at the end. A regression anywhere in the stack tends to
   surface here first. *)

open Objmodel

let test_everything_at_once () =
  let spec =
    {
      Workload.Scenarios.large_high with
      Workload.Spec.root_count = 150;
      access_skew = 0.8;
      seed = 271828;
    }
  in
  let config =
    {
      Core.Config.default with
      Core.Config.abort_probability = 0.05;
      prefetch = true;
      recovery = Txn.Recovery.Shadow_paging;
      cpu_limited = true;
      trace_capacity = 50_000;
      class_protocols = [ ("C0", Dsm.Protocol.Otec); ("C1", Dsm.Protocol.Rc_nested) ];
      node_count = spec.Workload.Spec.node_count;
    }
  in
  let wl = Workload.Generator.generate spec ~page_size:config.Core.Config.page_size in
  let rt = Core.Runtime.create ~config ~catalog:wl.Workload.Generator.catalog in
  List.iter
    (fun (r : Workload.Generator.root_spec) ->
      Core.Runtime.submit rt ~at:r.at ~node:r.node ~oid:r.oid ~meth:r.meth ~seed:r.seed)
    wl.Workload.Generator.roots;
  Core.Runtime.run rt;
  let t = Dsm.Metrics.totals (Core.Runtime.metrics rt) in
  (* Every root resolved, one way or another. *)
  Alcotest.(check int) "all roots resolved" 150
    (t.Dsm.Metrics.roots_committed + t.Dsm.Metrics.roots_aborted);
  Alcotest.(check bool) "most committed" true (t.Dsm.Metrics.roots_committed >= 140);
  (* The adversarial knobs actually fired. *)
  Alcotest.(check bool) "failure injection fired" true (t.Dsm.Metrics.sub_aborts > 0);
  Alcotest.(check bool) "demand fetches fired" true (t.Dsm.Metrics.demand_fetches > 0);
  Alcotest.(check bool) "eager pushes fired (per-class RC)" true
    (t.Dsm.Metrics.eager_pushes > 0);
  (* Serializability and state hygiene. *)
  (match Core.Runtime.check_serializable rt with
  | Core.Serializability.Serializable _ -> ()
  | Core.Serializability.Cyclic _ -> Alcotest.fail "not serializable");
  let dir = Core.Runtime.directory rt in
  List.iter
    (fun o ->
      Alcotest.(check bool) "lock free" true
        (Gdo.Directory.lock_state dir o = Gdo.Directory.Free);
      Alcotest.(check int) "no waiters" 0 (Gdo.Directory.waiting_count dir o);
      let nodes, versions = Gdo.Directory.page_map dir o in
      Array.iteri
        (fun p node ->
          Alcotest.(check bool) "map consistent" true
            (Dsm.Page_store.version (Core.Runtime.store rt ~node) o ~page:p >= versions.(p)))
        nodes)
    (Catalog.oids wl.Workload.Generator.catalog);
  (* Trace captured the action. *)
  match Core.Runtime.trace rt with
  | None -> Alcotest.fail "trace expected"
  | Some tr ->
      Alcotest.(check bool) "rich trace" true (Sim.Trace.total tr > 1000)

let tests = [ ("soak", [ Alcotest.test_case "everything at once" `Slow test_everything_at_once ]) ]
