(* Partition-tolerance tests: the decorrelated retransmit backoff, the
   split-brain auditors (hand-crafted violations and a QCheck property
   over reachable directory states), quorum membership under heartbeat
   suppression, lease fencing of a falsely-declared home's successor,
   fault-free byte-identity goldens for all four protocols, and the
   nemesis harness's own invariants. *)

open Objmodel

let oid = Oid.of_int

(* ------------------------------------------------------------------ *)
(* Decorrelated retransmit backoff.                                    *)

let drain stream ~n =
  let out = Array.make n 0.0 in
  let prev = ref (Sim.Backoff.first stream) in
  for i = 0 to n - 1 do
    prev := Sim.Backoff.next stream ~prev_us:!prev;
    out.(i) <- !prev
  done;
  out

let test_backoff_decorrelated () =
  (* Sibling nodes derive different streams from the same fault seed:
     a retry storm after a heal would need identical schedules. *)
  let mk node = Sim.Backoff.stream ~seed:42 ~node ~base_us:500.0 ~cap_us:40_000.0 in
  let a = drain (mk 0) ~n:32 and b = drain (mk 1) ~n:32 in
  Alcotest.(check bool) "node streams differ" true (a <> b);
  (* Same (seed, node) reproduces the exact schedule — faulty runs stay
     deterministic. *)
  let a' = drain (mk 0) ~n:32 in
  Alcotest.(check bool) "same seed+node reproduces" true (a = a')

let test_backoff_capped () =
  let stream = Sim.Backoff.stream ~seed:7 ~node:3 ~base_us:500.0 ~cap_us:40_000.0 in
  Alcotest.(check (float 0.0)) "first is the base" 500.0 (Sim.Backoff.first stream);
  (* Even pumped from the cap itself, a draw never escapes [base, cap]. *)
  let prev = ref (Sim.Backoff.cap stream) in
  for _ = 1 to 1_000 do
    let d = Sim.Backoff.next stream ~prev_us:!prev in
    if d < 500.0 || d > 40_000.0 then
      Alcotest.failf "backoff %f escaped [500, 40000]" d;
    prev := d
  done

(* ------------------------------------------------------------------ *)
(* Membership auditor: hand-crafted logs.                              *)

let contains haystack needle =
  let h = String.length haystack and n = String.length needle in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let test_membership_audit_clean () =
  (* Newest first, as the runtime prepends: partition 2 failed over to
     node 3 at epoch 1, back to node 2 at epoch 2. *)
  let log = [ (2, 2, 2); (1, 2, 3); (0, 2, 2) ] in
  (match Core.Membership_audit.check log with
  | Ok () -> ()
  | Error vs -> Alcotest.failf "clean log rejected: %s" (String.concat "; " vs));
  match Core.Membership_audit.check [] with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "empty log rejected"

let test_membership_audit_double_acting_home () =
  (* The split-brain shape itself: nodes 1 and 3 both recorded as serving
     partition 2 within membership epoch 5. *)
  match Core.Membership_audit.check [ (5, 2, 3); (5, 2, 1) ] with
  | Ok () -> Alcotest.fail "double acting home accepted"
  | Error vs ->
      Alcotest.(check bool) "violation names the partition and both nodes" true
        (List.exists
           (fun v ->
             contains v "partition 2" && contains v "node 1" && contains v "node 3")
           vs)

let test_membership_audit_epoch_regression () =
  (* Oldest record at epoch 3, newer one at epoch 1: an acting home was
     installed under a stale view. Newest first, so [ (1,...); (3,...) ]. *)
  match Core.Membership_audit.check [ (1, 0, 2); (3, 0, 1) ] with
  | Ok () -> Alcotest.fail "epoch regression accepted"
  | Error vs ->
      Alcotest.(check bool) "violation mentions regression" true
        (List.exists (fun v -> contains v "regressed") vs)

(* ------------------------------------------------------------------ *)
(* Directory auditor: QCheck property over reachable states.           *)

let node_count = 4
let fam i = Txn.Txn_id.of_int i
let node_of_family f = Txn.Txn_id.to_int f mod node_count

(* Random acquire/release driving, the same shape as the eviction
   property in test_crash_recovery: every state reachable through the
   public API must satisfy the per-object audit. *)
let prop_reachable_directory_audits_clean =
  let gen = QCheck2.Gen.(triple (int_range 1 10_000) (int_range 2 8) (int_range 10 150)) in
  QCheck2.Test.make ~name:"reachable directory states pass the split-brain audit"
    ~count:150 gen (fun (seed, objects, ops) ->
      let gdo = Gdo.Directory.create () in
      for i = 0 to objects - 1 do
        Gdo.Directory.register_object gdo (oid i) ~pages:2 ~initial_node:(i mod node_count)
      done;
      let prng = Random.State.make [| seed |] in
      let held = Hashtbl.create 16 in
      for _ = 1 to ops do
        let f = fam (Random.State.int prng 12) in
        let o = oid (Random.State.int prng objects) in
        let mode = if Random.State.bool prng then Txn.Lock.Read else Txn.Lock.Write in
        if Random.State.int prng 4 = 0 then begin
          match Hashtbl.find_opt held (Txn.Txn_id.to_int f) with
          | Some os when os <> [] ->
              let victim = List.nth os (Random.State.int prng (List.length os)) in
              ignore (Gdo.Directory.release gdo victim ~family:f ~dirty:[]);
              Hashtbl.replace held (Txn.Txn_id.to_int f)
                (List.filter (fun o' -> o' <> victim) os)
          | _ -> ()
        end
        else
          match Gdo.Directory.acquire gdo o ~family:f ~node:(node_of_family f) ~mode () with
          | Gdo.Directory.Granted _ ->
              let os =
                Option.value (Hashtbl.find_opt held (Txn.Txn_id.to_int f)) ~default:[]
              in
              if not (List.mem o os) then Hashtbl.replace held (Txn.Txn_id.to_int f) (o :: os)
          | Gdo.Directory.Queued | Gdo.Directory.Busy | Gdo.Directory.Deadlock _ -> ()
      done;
      Gdo.Directory.audit gdo = [])

(* ------------------------------------------------------------------ *)
(* Fault-free byte-identity goldens, all four protocols.               *)

let golden_spec =
  {
    (Workload.Scenarios.spec Workload.Scenarios.High Workload.Scenarios.Medium) with
    Workload.Spec.root_count = 40;
    seed = 42;
  }

(* The membership machinery (quorum detector, epoch fencing, parking,
   backoff-armed transport) must stay completely inert on a fault-free
   run: these are the same numbers as the pre-fault-layer goldens in
   test_chaos, extended to RC-nested so all four protocols are pinned. *)
let goldens =
  [
    (Dsm.Protocol.Cotec, (484, 1_169_012, 1_119_040, 25968.873648));
    (Dsm.Protocol.Otec, (419, 956_560, 911_040, 20047.449955));
    (Dsm.Protocol.Lotec, (370, 731_252, 690_560, 19580.172744));
    (Dsm.Protocol.Rc_nested, (425, 1_606_888, 1_568_320, 20610.322997));
  ]

let test_fault_free_goldens_all_protocols () =
  let wl = Workload.Generator.generate golden_spec ~page_size:4096 in
  List.iter
    (fun (protocol, (messages, bytes, data_bytes, completion)) ->
      let name = Format.asprintf "%a" Dsm.Protocol.pp protocol in
      let run = Experiments.Runner.execute ~protocol wl in
      let m = Experiments.Runner.metrics run in
      let t = Dsm.Metrics.totals m in
      Alcotest.(check int) (name ^ " messages") messages (Dsm.Metrics.total_messages m);
      Alcotest.(check int) (name ^ " bytes") bytes (Dsm.Metrics.total_bytes m);
      Alcotest.(check int) (name ^ " data bytes") data_bytes (Dsm.Metrics.total_data_bytes m);
      Alcotest.(check (float 1e-6)) (name ^ " completion") completion
        (Dsm.Metrics.completion_time_us m);
      (* And the membership layer never woke up. *)
      Alcotest.(check int) (name ^ " no quorum votes") 0 t.Dsm.Metrics.quorum_votes;
      Alcotest.(check int) (name ^ " no declarations") 0 t.Dsm.Metrics.nodes_declared_dead;
      Alcotest.(check int) (name ^ " epoch still 0") 0
        (Core.Runtime.membership_epoch run.Experiments.Runner.runtime))
    goldens

(* ------------------------------------------------------------------ *)
(* Heartbeat suppression must not starve the quorum detector.          *)

(* Batching's heartbeat suppression skips a heartbeat when the channel
   recently carried traffic — so under a busy workload almost no explicit
   heartbeats flow, and liveness must come from the deliveries
   themselves. If delivery stopped refreshing the detectors, every
   observer would starve at once and the quorum would declare a LIVE
   node dead. Arm the membership machinery with a (harmless) slow-link
   window, tighten the timers so starvation would ripen many times over
   within the run, and assert nobody is ever declared. *)
let test_suppression_never_starves_quorum () =
  let config =
    {
      Core.Config.default with
      Core.Config.batching = Dsm.Batching.all;
      faults =
        Some
          {
            Sim.Fault.none with
            Sim.Fault.seed = 11;
            link_windows =
              [
                {
                  Sim.Fault.lw_kind =
                    Sim.Fault.Slow { slow_src = 0; slow_dst = 1; extra_us = 1.0 };
                  lw_from_us = 1_000.0;
                  lw_until_us = 30_000.0;
                };
              ];
          };
      request_timeout_us = 500.0;
      max_retransmits = 3;
      heartbeat_interval_us = 500.0;
      suspect_timeout_us = 1_500.0;
    }
  in
  let wl =
    Workload.Generator.generate Experiments.Partition.default_spec ~page_size:4096
  in
  let run = Experiments.Runner.execute ~config ~protocol:Dsm.Protocol.Lotec wl in
  let t = Dsm.Metrics.totals (Experiments.Runner.metrics run) in
  Alcotest.(check int) "no false suspicions" 0 t.Dsm.Metrics.false_suspicions;
  Alcotest.(check int) "no declarations" 0 t.Dsm.Metrics.nodes_declared_dead;
  Alcotest.(check int) "all roots committed"
    Experiments.Partition.default_spec.Workload.Spec.root_count
    t.Dsm.Metrics.roots_committed

(* ------------------------------------------------------------------ *)
(* Lease fencing of a falsely-declared home's successor.               *)

let attr size name = Attribute.make ~name ~size_bytes:size

let account_class ~page_size =
  Obj_class.compile ~page_size
    (Obj_class.define ~name:"Account"
       ~attrs:[| attr 64 "balance"; attr 64 "last_txn" |]
       ~methods:
         [
           Method_ir.make ~name:"deposit"
             ~body:[ Method_ir.Read 0; Method_ir.Write 0; Method_ir.Write 1 ];
           Method_ir.make ~name:"audit" ~body:[ Method_ir.Read 0; Method_ir.Read 1 ];
         ]
       ~ref_slots:0)

let small_catalog ~page_size =
  let acct = account_class ~page_size in
  Catalog.create
    [
      { Catalog.oid = oid 0; cls = acct; refs = [||] };
      { Catalog.oid = oid 1; cls = acct; refs = [||] };
      { Catalog.oid = oid 2; cls = acct; refs = [||] };
    ]

(* The hand-built fencing scenario: node 0 takes a 10 ms read lease on
   the object homed at node 2; node 2 is then partitioned away and
   falsely declared; a write submitted mid-fence reaches the successor,
   which must DEFER it until the lease has provably expired — serving
   early would let the leaseholder read stale data under a regime that
   no longer owns the partition. The run must still finish clean: the
   write commits after the fence, node 2 is readmitted, nobody is left
   declared or parked, and the split-brain audit is empty. *)
let test_lease_fence_defers_successor () =
  let config =
    {
      Core.Config.default with
      Core.Config.protocol = Dsm.Protocol.Lotec;
      node_count = 4;
      gdo_replicas = 1;
      lease = Gdo.Lease.Fixed_ttl { ttl_us = 10_000.0 };
      faults =
        Some
          {
            Sim.Fault.none with
            Sim.Fault.seed = 7;
            link_windows =
              [
                {
                  Sim.Fault.lw_kind = Sim.Fault.Partition [ 2 ];
                  lw_from_us = 1_000.0;
                  lw_until_us = 12_000.0;
                };
              ];
          };
      request_timeout_us = 500.0;
      max_retransmits = 3;
      heartbeat_interval_us = 500.0;
      suspect_timeout_us = 1_500.0;
    }
  in
  let rt =
    Core.Runtime.create ~config
      ~catalog:(small_catalog ~page_size:config.Core.Config.page_size)
  in
  (* Read lease on oid 2 (homed at node 2) granted to node 0 well before
     the partition opens... *)
  Core.Runtime.submit rt ~at:100.0 ~node:0 ~oid:(oid 2) ~meth:"audit" ~seed:1;
  (* ...and a write from node 1 mid-partition, after the false
     declaration (~3 ms) but inside the lease fence (~10.1 ms). *)
  Core.Runtime.submit rt ~at:5_000.0 ~node:1 ~oid:(oid 2) ~meth:"deposit" ~seed:2;
  Core.Runtime.run rt;
  let t = Dsm.Metrics.totals (Core.Runtime.metrics rt) in
  Alcotest.(check bool) "successor was fenced" true (t.Dsm.Metrics.fence_deferrals >= 1);
  Alcotest.(check int) "exactly one false declaration" 1 t.Dsm.Metrics.false_suspicions;
  Alcotest.(check int) "declared once" 1 t.Dsm.Metrics.nodes_declared_dead;
  Alcotest.(check bool) "readmitted" true (t.Dsm.Metrics.node_readmissions >= 1);
  Alcotest.(check int) "both roots committed" 2 t.Dsm.Metrics.roots_committed;
  List.iter
    (fun (r : Core.Runtime.root_result) ->
      if r.Core.Runtime.outcome <> Core.Runtime.Committed then
        Alcotest.failf "root %s gave up" r.Core.Runtime.meth)
    (Core.Runtime.results rt);
  for n = 0 to 3 do
    Alcotest.(check bool)
      (Printf.sprintf "node %d not left declared" n)
      false
      (Core.Runtime.node_declared_down rt ~node:n);
    Alcotest.(check bool)
      (Printf.sprintf "node %d not left parked" n)
      false
      (Core.Runtime.node_parked rt ~node:n)
  done;
  match Core.Runtime.audit rt with
  | [] -> ()
  | vs -> Alcotest.failf "split-brain audit: %s" (String.concat "; " vs)

(* ------------------------------------------------------------------ *)
(* Nemesis harness invariants (run_case raises on any violation).      *)

let run_nemesis schedule ~replicas =
  Experiments.Partition.run_case ~spec:Experiments.Partition.default_spec
    {
      Experiments.Partition.pc_schedule = schedule;
      pc_protocol = Dsm.Protocol.Lotec;
      pc_gdo_replicas = replicas;
      pc_fault_seed = 1;
    }

let test_nemesis_false_suspicion () =
  (* Surviving run_case already asserts accounting, the wire ledger and a
     clean audit; pin the membership outcome on top. *)
  let o = run_nemesis Experiments.Partition.false_suspicion ~replicas:1 in
  Alcotest.(check int) "one false declaration" 1
    o.Experiments.Partition.pc_declared_dead;
  Alcotest.(check int) "counted as false" 1 o.Experiments.Partition.pc_false_suspicions;
  Alcotest.(check bool) "readmitted" true (o.Experiments.Partition.pc_readmissions >= 1);
  Alcotest.(check bool) "failover happened" true
    (o.Experiments.Partition.pc_failovers >= 1);
  Alcotest.(check bool) "epoch advanced" true
    (o.Experiments.Partition.pc_membership_epoch >= 2);
  Alcotest.(check bool) "declaration latency measured" true
    (o.Experiments.Partition.pc_declaration_p50_us > 0.0)

let test_nemesis_even_split_parks_without_declaring () =
  let o = run_nemesis Experiments.Partition.even_split ~replicas:0 in
  Alcotest.(check int) "no quorum on either side" 0
    o.Experiments.Partition.pc_declared_dead;
  Alcotest.(check int) "no false suspicions" 0
    o.Experiments.Partition.pc_false_suspicions;
  Alcotest.(check bool) "both sides parked" true
    (o.Experiments.Partition.pc_node_parks >= 2)

(* ------------------------------------------------------------------ *)

let tests =
  [
  ( "partition",
    [
      Alcotest.test_case "backoff decorrelates across nodes" `Quick test_backoff_decorrelated;
      Alcotest.test_case "backoff respects base and cap" `Quick test_backoff_capped;
      Alcotest.test_case "membership audit accepts clean logs" `Quick
        test_membership_audit_clean;
      Alcotest.test_case "membership audit rejects double acting home" `Quick
        test_membership_audit_double_acting_home;
      Alcotest.test_case "membership audit rejects epoch regression" `Quick
        test_membership_audit_epoch_regression;
      QCheck_alcotest.to_alcotest prop_reachable_directory_audits_clean;
      Alcotest.test_case "fault-free goldens, all four protocols" `Quick
        test_fault_free_goldens_all_protocols;
      Alcotest.test_case "heartbeat suppression never starves the quorum" `Quick
        test_suppression_never_starves_quorum;
      Alcotest.test_case "lease fence defers the successor" `Quick
        test_lease_fence_defers_successor;
      Alcotest.test_case "nemesis: false suspicion declared and readmitted" `Quick
        test_nemesis_false_suspicion;
      Alcotest.test_case "nemesis: even split parks, never declares" `Quick
        test_nemesis_even_split_parks_without_declaring;
    ] )
  ]
