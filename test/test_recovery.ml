(* Tests for shadow-page recovery and the Recovery abstraction over both
   UNDO mechanisms. *)

open Objmodel
open Txn

let oid = Oid.of_int

(* ---------- Shadow_pages ---------- *)

let test_shadow_first_touch_wins () =
  let sp = Shadow_pages.create () in
  Shadow_pages.note_write sp ~oid:(oid 1) ~page:0 ~pre_image:3;
  Shadow_pages.note_write sp ~oid:(oid 1) ~page:0 ~pre_image:7;
  Alcotest.(check (list (pair int int))) "one shadow, first pre-image"
    [ (0, 3) ]
    (List.map (fun (_, p, v) -> (p, v)) (Shadow_pages.shadows sp));
  Alcotest.(check int) "page count" 1 (Shadow_pages.page_count sp)

let test_shadow_merge_parent_wins () =
  let parent = Shadow_pages.create () and child = Shadow_pages.create () in
  (* Parent wrote the page first: its (older) pre-image is the restore
     point. *)
  Shadow_pages.note_write parent ~oid:(oid 1) ~page:0 ~pre_image:1;
  Shadow_pages.note_write child ~oid:(oid 1) ~page:0 ~pre_image:5;
  Shadow_pages.note_write child ~oid:(oid 2) ~page:2 ~pre_image:9;
  Shadow_pages.merge_into_parent ~child ~parent;
  Alcotest.(check bool) "child emptied" true (Shadow_pages.is_empty child);
  let sorted =
    List.sort compare
      (List.map (fun (o, p, v) -> (Oid.to_int o, p, v)) (Shadow_pages.shadows parent))
  in
  Alcotest.(check (list (triple int int int))) "parent pre-image wins; new page adopted"
    [ (1, 0, 1); (2, 2, 9) ]
    sorted

let test_shadow_dirty_pages () =
  let sp = Shadow_pages.create () in
  Shadow_pages.note_write sp ~oid:(oid 1) ~page:0 ~pre_image:0;
  Shadow_pages.note_write sp ~oid:(oid 1) ~page:1 ~pre_image:0;
  Alcotest.(check int) "two dirty pages" 2 (List.length (Shadow_pages.dirty_pages sp));
  Alcotest.(check bool) "has shadow" true (Shadow_pages.has_shadow sp ~oid:(oid 1) ~page:0);
  Shadow_pages.clear sp;
  Alcotest.(check bool) "cleared" true (Shadow_pages.is_empty sp)

(* ---------- Recovery (both strategies) ---------- *)

let strategies = [ Recovery.Undo_logging; Recovery.Shadow_paging ]

let test_strategy_strings () =
  List.iter
    (fun s ->
      match Recovery.strategy_of_string (Recovery.strategy_to_string s) with
      | Ok s' -> Alcotest.(check bool) "roundtrip" true (s = s')
      | Error e -> Alcotest.fail e)
    strategies;
  Alcotest.(check bool) "unknown" true (Result.is_error (Recovery.strategy_of_string "xyz"))

(* Simulate nested writes over a page store and verify both mechanisms
   restore the identical pre-transaction state. *)
let restore_scenario strategy =
  let store = Dsm.Page_store.create ~node:0 in
  Dsm.Page_store.receive store (oid 1) ~page:0 ~version:10;
  Dsm.Page_store.receive store (oid 1) ~page:1 ~version:20;
  let parent = Recovery.create strategy and child = Recovery.create strategy in
  let write log page v =
    let prev = Dsm.Page_store.write store (oid 1) ~page ~new_version:v in
    Recovery.note_write log ~oid:(oid 1) ~page ~pre_image:prev
  in
  write parent 0 11;
  (* child writes both pages, then pre-commits into the parent *)
  write child 0 12;
  write child 1 21;
  Recovery.merge_into_parent ~child ~parent;
  (* parent writes more after inheriting *)
  write parent 1 22;
  (* Abort the parent: both pages must return to 10 / 20. *)
  List.iter
    (fun (o, page, version) -> Dsm.Page_store.restore store o ~page ~version)
    (Recovery.restore_plan parent);
  ( Dsm.Page_store.version store (oid 1) ~page:0,
    Dsm.Page_store.version store (oid 1) ~page:1 )

let test_restore_equivalence () =
  List.iter
    (fun strategy ->
      let p0, p1 = restore_scenario strategy in
      let name = Recovery.strategy_to_string strategy in
      Alcotest.(check int) (name ^ " page 0 restored") 10 p0;
      Alcotest.(check int) (name ^ " page 1 restored") 20 p1)
    strategies

let test_dirty_pages_agree () =
  List.iter
    (fun strategy ->
      let log = Recovery.create strategy in
      Recovery.note_write log ~oid:(oid 1) ~page:0 ~pre_image:0;
      Recovery.note_write log ~oid:(oid 1) ~page:0 ~pre_image:1;
      Recovery.note_write log ~oid:(oid 2) ~page:3 ~pre_image:0;
      let dirty =
        List.sort compare
          (List.map (fun (o, p) -> (Oid.to_int o, p)) (Recovery.dirty_pages log))
      in
      Alcotest.(check (list (pair int int)))
        (Recovery.strategy_to_string strategy ^ " dirty")
        [ (1, 0); (2, 3) ]
        dirty)
    strategies

let test_cost_units_differ () =
  (* Three writes to one page: the undo log replays three records, shadow
     paging reinstates a single page. *)
  let undo = Recovery.create Recovery.Undo_logging in
  let shadow = Recovery.create Recovery.Shadow_paging in
  List.iter
    (fun log ->
      Recovery.note_write log ~oid:(oid 1) ~page:0 ~pre_image:0;
      Recovery.note_write log ~oid:(oid 1) ~page:0 ~pre_image:1;
      Recovery.note_write log ~oid:(oid 1) ~page:0 ~pre_image:2)
    [ undo; shadow ];
  Alcotest.(check int) "undo replays all records" 3 (Recovery.restore_cost_units undo);
  Alcotest.(check int) "shadow reinstates one page" 1 (Recovery.restore_cost_units shadow)

let test_mixed_merge_rejected () =
  let undo = Recovery.create Recovery.Undo_logging in
  let shadow = Recovery.create Recovery.Shadow_paging in
  Alcotest.check_raises "mixed" (Invalid_argument "Recovery.merge_into_parent: mixed strategies")
    (fun () -> Recovery.merge_into_parent ~child:undo ~parent:shadow);
  (* And the other direction. *)
  Alcotest.check_raises "mixed reversed"
    (Invalid_argument "Recovery.merge_into_parent: mixed strategies") (fun () ->
      Recovery.merge_into_parent ~child:shadow ~parent:undo)

(* Pre-commit merge where the child's dirty pages partly overlap the
   parent's: on the shared page the parent's (older) pre-image must be the
   restore point; disjoint child pages are adopted. Verified through an
   actual page store for both UNDO mechanisms. *)
let overlap_scenario strategy =
  let store = Dsm.Page_store.create ~node:0 in
  Dsm.Page_store.receive store (oid 1) ~page:0 ~version:100;
  Dsm.Page_store.receive store (oid 1) ~page:1 ~version:200;
  Dsm.Page_store.receive store (oid 2) ~page:0 ~version:300;
  let parent = Recovery.create strategy and child = Recovery.create strategy in
  let write log o page v =
    let prev = Dsm.Page_store.write store (oid o) ~page ~new_version:v in
    Recovery.note_write log ~oid:(oid o) ~page ~pre_image:prev
  in
  (* Parent touches (1,0) and (1,1); child then re-writes (1,1) — the
     overlap — and newly writes (2,0). *)
  write parent 1 0 101;
  write parent 1 1 201;
  write child 1 1 202;
  write child 2 0 301;
  Recovery.merge_into_parent ~child ~parent;
  Alcotest.(check bool)
    (Recovery.strategy_to_string strategy ^ " child emptied")
    true (Recovery.is_empty child);
  let dirty =
    List.sort compare (List.map (fun (o, p) -> (Oid.to_int o, p)) (Recovery.dirty_pages parent))
  in
  Alcotest.(check (list (pair int int)))
    (Recovery.strategy_to_string strategy ^ " merged dirty set")
    [ (1, 0); (1, 1); (2, 0) ]
    dirty;
  List.iter
    (fun (o, page, version) -> Dsm.Page_store.restore store o ~page ~version)
    (Recovery.restore_plan parent);
  ( Dsm.Page_store.version store (oid 1) ~page:0,
    Dsm.Page_store.version store (oid 1) ~page:1,
    Dsm.Page_store.version store (oid 2) ~page:0 )

let test_merge_overlapping_dirty_pages () =
  List.iter
    (fun strategy ->
      let p10, p11, p20 = overlap_scenario strategy in
      let name = Recovery.strategy_to_string strategy in
      Alcotest.(check int) (name ^ " parent-only page restored") 100 p10;
      Alcotest.(check int) (name ^ " overlap: parent pre-image wins") 200 p11;
      Alcotest.(check int) (name ^ " child-only page restored") 300 p20)
    strategies

(* ---------- End-to-end: runtime under shadow paging ---------- *)

let test_runtime_with_shadow_paging () =
  let config =
    {
      Core.Config.default with
      Core.Config.recovery = Recovery.Shadow_paging;
      abort_probability = 0.3;
      node_count = 4;
    }
  in
  let spec =
    { Workload.Spec.default with Workload.Spec.object_count = 10; root_count = 30; seed = 9 }
  in
  let wl = Workload.Generator.generate spec ~page_size:config.Core.Config.page_size in
  let run = Experiments.Runner.execute ~config ~protocol:Dsm.Protocol.Lotec wl in
  let t = Dsm.Metrics.totals (Experiments.Runner.metrics run) in
  Alcotest.(check int) "all committed" 30 t.Dsm.Metrics.roots_committed;
  Alcotest.(check bool) "aborts exercised" true (t.Dsm.Metrics.sub_aborts > 0)

let test_runtime_strategies_equivalent_traffic () =
  (* Without aborts the two recovery mechanisms must not change protocol
     behaviour at all: identical traffic, identical completion. *)
  let spec =
    { Workload.Spec.default with Workload.Spec.object_count = 8; root_count = 25; seed = 4 }
  in
  let wl = Workload.Generator.generate spec ~page_size:4096 in
  let run strategy =
    let config = { Core.Config.default with Core.Config.recovery = strategy } in
    let r = Experiments.Runner.execute ~config ~protocol:Dsm.Protocol.Lotec wl in
    let m = Experiments.Runner.metrics r in
    (Dsm.Metrics.total_bytes m, Dsm.Metrics.total_messages m, Dsm.Metrics.completion_time_us m)
  in
  let b1, m1, t1 = run Recovery.Undo_logging in
  let b2, m2, t2 = run Recovery.Shadow_paging in
  Alcotest.(check int) "bytes equal" b1 b2;
  Alcotest.(check int) "messages equal" m1 m2;
  Alcotest.(check (float 0.0001)) "completion equal" t1 t2

let tests =
  [
    ( "recovery",
      [
        Alcotest.test_case "shadow first touch wins" `Quick test_shadow_first_touch_wins;
        Alcotest.test_case "shadow merge parent wins" `Quick test_shadow_merge_parent_wins;
        Alcotest.test_case "shadow dirty pages" `Quick test_shadow_dirty_pages;
        Alcotest.test_case "strategy strings" `Quick test_strategy_strings;
        Alcotest.test_case "restore equivalence" `Quick test_restore_equivalence;
        Alcotest.test_case "dirty pages agree" `Quick test_dirty_pages_agree;
        Alcotest.test_case "cost units differ" `Quick test_cost_units_differ;
        Alcotest.test_case "mixed merge rejected" `Quick test_mixed_merge_rejected;
        Alcotest.test_case "merge overlapping dirty pages" `Quick
          test_merge_overlapping_dirty_pages;
        Alcotest.test_case "runtime with shadow paging" `Quick test_runtime_with_shadow_paging;
        Alcotest.test_case "strategies equivalent traffic" `Quick
          test_runtime_strategies_equivalent_traffic;
      ] );
  ]
