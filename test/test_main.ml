(* Aggregated test entry point: every module contributes suites. *)

let () =
  Alcotest.run "lotec"
    (List.concat
       [
         Test_prng.tests;
         Test_heap.tests;
         Test_engine.tests;
         Test_engine_props.tests;
         Test_network.tests;
         Test_trace.tests;
         Test_objmodel.tests;
         Test_txn.tests;
         Test_directory.tests;
         Test_lock_model.tests;
         Test_dsm.tests;
         Test_serializability.tests;
         Test_config.tests;
         Test_recovery.tests;
         Test_runtime.tests;
         Test_runtime_edge.tests;
         Test_workload.tests;
         Test_experiments.tests;
         Test_stats.tests;
         Test_sweeps.tests;
         Test_properties.tests;
         Test_soak.tests;
         Test_edge_cases.tests;
         Test_chaos.tests;
         Test_crash_recovery.tests;
         Test_lease.tests;
         Test_method_cache.tests;
         Test_observability.tests;
         Test_batching.tests;
         Test_scale.tests;
         Test_function_shipping.tests;
         Test_escrow.tests;
         Test_partition.tests;
       ])
