(* Chaos tests: the protocols under an unreliable interconnect, plus the
   regression guarantees of the fault layer — a fault-free run is
   byte-identical to the reliable network, and any faulty run is exactly
   reproducible from its seeds. *)

let golden_spec =
  {
    (Workload.Scenarios.spec Workload.Scenarios.High Workload.Scenarios.Medium) with
    Workload.Spec.root_count = 40;
    seed = 42;
  }

(* Golden numbers captured from the fault-free simulator before the fault
   layer existed (medium-high scenario, 40 roots, seed 42, default config).
   Any drift here means the fault machinery leaked into the reliable path. *)
let goldens =
  [
    (Dsm.Protocol.Cotec, (484, 1_169_012, 1_119_040, 25968.873648));
    (Dsm.Protocol.Otec, (419, 956_560, 911_040, 20047.449955));
    (Dsm.Protocol.Lotec, (370, 731_252, 690_560, 19580.172744));
  ]

let test_fault_free_matches_golden () =
  let wl = Workload.Generator.generate golden_spec ~page_size:4096 in
  List.iter
    (fun (protocol, (messages, bytes, data_bytes, completion)) ->
      let name = Format.asprintf "%a" Dsm.Protocol.pp protocol in
      let m = Experiments.Runner.metrics (Experiments.Runner.execute ~protocol wl) in
      let t = Dsm.Metrics.totals m in
      Alcotest.(check int) (name ^ " messages") messages (Dsm.Metrics.total_messages m);
      Alcotest.(check int) (name ^ " bytes") bytes (Dsm.Metrics.total_bytes m);
      Alcotest.(check int) (name ^ " data bytes") data_bytes (Dsm.Metrics.total_data_bytes m);
      Alcotest.(check (float 1e-6)) (name ^ " completion") completion
        (Dsm.Metrics.completion_time_us m);
      Alcotest.(check int) (name ^ " committed") 40 t.Dsm.Metrics.roots_committed;
      Alcotest.(check int) (name ^ " no drops") 0 t.Dsm.Metrics.drops;
      Alcotest.(check int) (name ^ " no retransmits") 0 t.Dsm.Metrics.retransmits)
    goldens

(* An inactive fault config must take the exact fault-free code path. *)
let test_inactive_config_is_noop () =
  let wl = Workload.Generator.generate golden_spec ~page_size:4096 in
  let config =
    { Core.Config.default with Core.Config.faults = Some Sim.Fault.none }
  in
  let m =
    Experiments.Runner.metrics
      (Experiments.Runner.execute ~config ~protocol:Dsm.Protocol.Lotec wl)
  in
  Alcotest.(check int) "messages" 370 (Dsm.Metrics.total_messages m);
  Alcotest.(check (float 1e-6)) "completion" 19580.172744 (Dsm.Metrics.completion_time_us m)

let chaos_spec =
  {
    Experiments.Chaos.default_spec with
    Workload.Spec.object_count = 8;
    root_count = 15;
    node_count = 4;
  }

let faulty_config ?(windows = []) ~fault_seed ~drop ~dup ~jitter () =
  {
    Core.Config.default with
    Core.Config.faults =
      Some
        {
          Sim.Fault.seed = fault_seed;
          drop_probability = drop;
          duplicate_probability = dup;
          delay_jitter_us = jitter;
          windows;
          link_windows = [];
        };
    trace_capacity = 200_000;
  }

let run_traced config protocol =
  let wl = Workload.Generator.generate chaos_spec ~page_size:4096 in
  let run = Experiments.Runner.execute ~config ~protocol wl in
  let m = Experiments.Runner.metrics run in
  let events =
    match Core.Runtime.trace run.Experiments.Runner.runtime with
    | Some tr -> Sim.Trace.events tr
    | None -> Alcotest.fail "tracing was enabled but absent"
  in
  (m, events)

(* Two runs with identical workload + fault seeds must produce identical
   event streams — fault injection is deterministic, not merely statistically
   similar. *)
let test_faulty_run_deterministic () =
  let config = faulty_config ~fault_seed:13 ~drop:0.1 ~dup:0.1 ~jitter:50.0 () in
  let m1, ev1 = run_traced config Dsm.Protocol.Lotec in
  let m2, ev2 = run_traced config Dsm.Protocol.Lotec in
  Alcotest.(check int) "same event count" (List.length ev1) (List.length ev2);
  List.iter2
    (fun (a : Dsm.Event.t Sim.Trace.entry) (b : Dsm.Event.t Sim.Trace.entry) ->
      if a <> b then
        Alcotest.failf "trace diverged: [%f] %s vs [%f] %s" a.Sim.Trace.time
          (Format.asprintf "%a" Dsm.Event.pp a.Sim.Trace.data)
          b.Sim.Trace.time
          (Format.asprintf "%a" Dsm.Event.pp b.Sim.Trace.data))
    ev1 ev2;
  Alcotest.(check int) "same traffic" (Dsm.Metrics.total_messages m1)
    (Dsm.Metrics.total_messages m2);
  Alcotest.(check (float 0.0)) "same completion" (Dsm.Metrics.completion_time_us m1)
    (Dsm.Metrics.completion_time_us m2);
  (* A different fault seed must actually perturb the run. *)
  let config' = faulty_config ~fault_seed:14 ~drop:0.1 ~dup:0.1 ~jitter:50.0 () in
  let _, ev3 = run_traced config' Dsm.Protocol.Lotec in
  Alcotest.(check bool) "different seed diverges" true (ev1 <> ev3)

(* The harness sweep: rates x seeds x all three paper protocols. Chaos
   raises on any violated invariant, so surviving the call is the test. *)
let test_sweep_invariants () =
  let outcomes =
    Experiments.Chaos.sweep ~spec:chaos_spec
      ~rates:[ (0.0, 0.0, 0.0); (0.1, 0.1, 50.0); (0.2, 0.2, 100.0) ]
      ~fault_seeds:[ 1; 2 ] ()
  in
  (* 3 protocols x (1 fault-free + 2 rates x 2 seeds) = 15 cases. *)
  Alcotest.(check int) "case count" 15 (List.length outcomes);
  List.iter
    (fun (o : Experiments.Chaos.outcome) ->
      Alcotest.(check int)
        (Format.asprintf "%a all roots" Dsm.Protocol.pp o.Experiments.Chaos.case.protocol)
        chaos_spec.Workload.Spec.root_count
        (o.Experiments.Chaos.committed + o.Experiments.Chaos.aborted);
      if o.Experiments.Chaos.case.Experiments.Chaos.drop = 0.0 then
        Alcotest.(check int) "fault-free case clean" 0
          (o.Experiments.Chaos.drops + o.Experiments.Chaos.duplicates
         + o.Experiments.Chaos.retransmits)
      else
        Alcotest.(check bool) "faults actually injected" true (o.Experiments.Chaos.drops > 0))
    outcomes

(* Node pause and crash-restart windows in the middle of a full run: the
   transport retransmits into the outage and the run still completes. *)
let test_windows_survived () =
  let windows =
    [
      { Sim.Fault.w_node = 1; w_kind = Sim.Fault.Pause; w_from_us = 2_000.0; w_until_us = 6_000.0 };
      { Sim.Fault.w_node = 2; w_kind = Sim.Fault.Crash; w_from_us = 3_000.0; w_until_us = 9_000.0 };
    ]
  in
  let config = faulty_config ~windows ~fault_seed:5 ~drop:0.0 ~dup:0.0 ~jitter:0.0 () in
  let m, _ = run_traced config Dsm.Protocol.Lotec in
  let t = Dsm.Metrics.totals m in
  Alcotest.(check int) "all roots accounted" chaos_spec.Workload.Spec.root_count
    (t.Dsm.Metrics.roots_committed + t.Dsm.Metrics.roots_aborted);
  Alcotest.(check bool) "ledger balanced" true (Experiments.Chaos.ledger_balanced m);
  (* The crash window must have cost something: losses then retransmits. *)
  Alcotest.(check bool) "crash losses recovered" true (t.Dsm.Metrics.retransmits > 0)

(* QCheck property: for arbitrary small fault rates and seeds, every
   invariant Chaos.run_case asserts (serializability, root accounting,
   ledger balance, drained simulation) holds for every protocol. *)
let prop_chaos_invariants =
  let gen =
    QCheck2.Gen.(
      quad (int_range 1 1000) (float_bound_inclusive 0.2) (float_bound_inclusive 0.2)
        (float_bound_inclusive 100.0))
  in
  let protocols = Dsm.Protocol.[ Cotec; Otec; Lotec ] in
  QCheck2.Test.make ~name:"chaos invariants hold for rates <= 0.2" ~count:12 gen
    (fun (fault_seed, drop, dup, jitter_us) ->
      List.for_all
        (fun protocol ->
          let o =
            Experiments.Chaos.run_case ~spec:chaos_spec
              { Experiments.Chaos.protocol; drop; duplicate = dup; jitter_us; fault_seed }
          in
          o.Experiments.Chaos.committed + o.Experiments.Chaos.aborted
          = chaos_spec.Workload.Spec.root_count)
        protocols)

let tests =
  [
    ( "chaos",
      [
        Alcotest.test_case "fault-free matches golden" `Quick test_fault_free_matches_golden;
        Alcotest.test_case "inactive config is noop" `Quick test_inactive_config_is_noop;
        Alcotest.test_case "faulty run deterministic" `Quick test_faulty_run_deterministic;
        Alcotest.test_case "sweep invariants" `Quick test_sweep_invariants;
        Alcotest.test_case "pause and crash windows" `Quick test_windows_survived;
        QCheck_alcotest.to_alcotest prop_chaos_invariants;
      ] );
  ]
