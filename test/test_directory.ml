(* Tests for the GDO (Algorithm 4.2 / 4.4 logic, waits-for detection,
   page-map maintenance, copysets). *)

open Objmodel
open Txn

let oid = Oid.of_int
let fam i = Txn_id.of_int i

let make ?(pages = 4) ?(objects = 3) () =
  let d = Gdo.Directory.create () in
  for i = 0 to objects - 1 do
    Gdo.Directory.register_object d (oid i) ~pages ~initial_node:0
  done;
  d

let acquire d o ~family ~node ~mode = Gdo.Directory.acquire d (oid o) ~family ~node ~mode ()

let is_granted = function Gdo.Directory.Granted _ -> true | _ -> false
let is_queued = function Gdo.Directory.Queued -> true | _ -> false
let is_deadlock = function Gdo.Directory.Deadlock _ -> true | _ -> false
let is_busy = function Gdo.Directory.Busy -> true | _ -> false

let test_register_and_initial_map () =
  let d = make () in
  Alcotest.(check int) "objects" 3 (Gdo.Directory.object_count d);
  let nodes, versions = Gdo.Directory.page_map d (oid 0) in
  Alcotest.(check (array int)) "initial nodes" [| 0; 0; 0; 0 |] nodes;
  Alcotest.(check (array int)) "initial versions" [| 0; 0; 0; 0 |] versions;
  Alcotest.(check (list int)) "copyset" [ 0 ] (Gdo.Directory.copyset d (oid 0));
  Alcotest.check_raises "duplicate" (Invalid_argument "Directory.register_object: duplicate O0")
    (fun () -> Gdo.Directory.register_object d (oid 0) ~pages:1 ~initial_node:0)

let test_free_grant () =
  let d = make () in
  match acquire d 0 ~family:(fam 1) ~node:2 ~mode:Lock.Write with
  | Gdo.Directory.Granted g ->
      Alcotest.(check bool) "mode" true (Lock.equal g.Gdo.Directory.g_mode Lock.Write);
      Alcotest.(check bool) "state" true (Gdo.Directory.lock_state d (oid 0) = Gdo.Directory.Held_write);
      Alcotest.(check int) "one holder" 1 (List.length (Gdo.Directory.holders d (oid 0)))
  | _ -> Alcotest.fail "expected grant"

let test_concurrent_readers () =
  let d = make () in
  Alcotest.(check bool) "r1" true (is_granted (acquire d 0 ~family:(fam 1) ~node:0 ~mode:Lock.Read));
  Alcotest.(check bool) "r2" true (is_granted (acquire d 0 ~family:(fam 2) ~node:1 ~mode:Lock.Read));
  Alcotest.(check int) "read count" 2 (Gdo.Directory.read_count d (oid 0));
  (* A writer queues behind readers. *)
  Alcotest.(check bool) "writer queued" true
    (is_queued (acquire d 0 ~family:(fam 3) ~node:2 ~mode:Lock.Write));
  (* Later readers must not overtake the queued writer. *)
  Alcotest.(check bool) "reader after writer queues" true
    (is_queued (acquire d 0 ~family:(fam 4) ~node:3 ~mode:Lock.Read))

let test_writer_excludes () =
  let d = make () in
  Alcotest.(check bool) "w" true (is_granted (acquire d 0 ~family:(fam 1) ~node:0 ~mode:Lock.Write));
  Alcotest.(check bool) "reader queued" true
    (is_queued (acquire d 0 ~family:(fam 2) ~node:1 ~mode:Lock.Read));
  Alcotest.(check int) "waiting" 1 (Gdo.Directory.waiting_count d (oid 0))

let test_reentrant () =
  let d = make () in
  ignore (acquire d 0 ~family:(fam 1) ~node:0 ~mode:Lock.Write);
  Alcotest.(check bool) "re-entrant W" true
    (is_granted (acquire d 0 ~family:(fam 1) ~node:0 ~mode:Lock.Write));
  Alcotest.(check bool) "re-entrant R under W" true
    (is_granted (acquire d 0 ~family:(fam 1) ~node:0 ~mode:Lock.Read));
  Alcotest.(check int) "still one holder" 1 (List.length (Gdo.Directory.holders d (oid 0)))

let test_release_grants_next_writer () =
  let d = make () in
  ignore (acquire d 0 ~family:(fam 1) ~node:0 ~mode:Lock.Write);
  ignore (acquire d 0 ~family:(fam 2) ~node:1 ~mode:Lock.Write);
  let deliveries = Gdo.Directory.release d (oid 0) ~family:(fam 1) ~dirty:[] in
  Alcotest.(check int) "one delivery" 1 (List.length deliveries);
  let dv = List.hd deliveries in
  Alcotest.(check int) "to family 2" 2 (Txn_id.to_int dv.Gdo.Directory.d_family);
  Alcotest.(check int) "at node 1" 1 dv.Gdo.Directory.d_node;
  Alcotest.(check bool) "held write" true
    (Gdo.Directory.lock_state d (oid 0) = Gdo.Directory.Held_write)

let test_release_batches_readers () =
  let d = make () in
  ignore (acquire d 0 ~family:(fam 1) ~node:0 ~mode:Lock.Write);
  ignore (acquire d 0 ~family:(fam 2) ~node:1 ~mode:Lock.Read);
  ignore (acquire d 0 ~family:(fam 3) ~node:2 ~mode:Lock.Read);
  ignore (acquire d 0 ~family:(fam 4) ~node:3 ~mode:Lock.Write);
  let deliveries = Gdo.Directory.release d (oid 0) ~family:(fam 1) ~dirty:[] in
  (* Both readers granted together; the writer stays queued. *)
  Alcotest.(check int) "two reader grants" 2 (List.length deliveries);
  Alcotest.(check int) "read count" 2 (Gdo.Directory.read_count d (oid 0));
  Alcotest.(check int) "writer still waiting" 1 (Gdo.Directory.waiting_count d (oid 0))

let test_fifo_order () =
  let d = make () in
  ignore (acquire d 0 ~family:(fam 1) ~node:0 ~mode:Lock.Write);
  ignore (acquire d 0 ~family:(fam 2) ~node:1 ~mode:Lock.Write);
  ignore (acquire d 0 ~family:(fam 3) ~node:2 ~mode:Lock.Write);
  let d1 = Gdo.Directory.release d (oid 0) ~family:(fam 1) ~dirty:[] in
  Alcotest.(check int) "fifo: family 2 first" 2
    (Txn_id.to_int (List.hd d1).Gdo.Directory.d_family);
  let d2 = Gdo.Directory.release d (oid 0) ~family:(fam 2) ~dirty:[] in
  Alcotest.(check int) "then family 3" 3 (Txn_id.to_int (List.hd d2).Gdo.Directory.d_family)

let test_upgrade_sole_reader () =
  let d = make () in
  ignore (acquire d 0 ~family:(fam 1) ~node:0 ~mode:Lock.Read);
  Alcotest.(check bool) "sole reader upgrades" true
    (is_granted (acquire d 0 ~family:(fam 1) ~node:0 ~mode:Lock.Write));
  Alcotest.(check bool) "now W" true
    (Gdo.Directory.lock_state d (oid 0) = Gdo.Directory.Held_write)

let test_upgrade_waits_for_other_readers () =
  let d = make () in
  ignore (acquire d 0 ~family:(fam 1) ~node:0 ~mode:Lock.Read);
  ignore (acquire d 0 ~family:(fam 2) ~node:1 ~mode:Lock.Read);
  Alcotest.(check bool) "upgrade queued" true
    (is_queued (acquire d 0 ~family:(fam 1) ~node:0 ~mode:Lock.Write));
  let deliveries = Gdo.Directory.release d (oid 0) ~family:(fam 2) ~dirty:[] in
  Alcotest.(check int) "upgrade granted" 1 (List.length deliveries);
  Alcotest.(check bool) "W mode" true
    (Lock.equal (List.hd deliveries).Gdo.Directory.d_grant.Gdo.Directory.g_mode Lock.Write)

let test_upgrade_deadlock_detected () =
  let d = make () in
  ignore (acquire d 0 ~family:(fam 1) ~node:0 ~mode:Lock.Read);
  ignore (acquire d 0 ~family:(fam 2) ~node:1 ~mode:Lock.Read);
  Alcotest.(check bool) "first upgrade queues" true
    (is_queued (acquire d 0 ~family:(fam 1) ~node:0 ~mode:Lock.Write));
  (* The second upgrade closes the classic R->W cycle. *)
  Alcotest.(check bool) "second upgrade deadlocks" true
    (is_deadlock (acquire d 0 ~family:(fam 2) ~node:1 ~mode:Lock.Write))

let test_two_object_deadlock () =
  let d = make () in
  ignore (acquire d 0 ~family:(fam 1) ~node:0 ~mode:Lock.Write);
  ignore (acquire d 1 ~family:(fam 2) ~node:1 ~mode:Lock.Write);
  Alcotest.(check bool) "f1 waits on o1" true
    (is_queued (acquire d 1 ~family:(fam 1) ~node:0 ~mode:Lock.Write));
  (match acquire d 0 ~family:(fam 2) ~node:1 ~mode:Lock.Write with
  | Gdo.Directory.Deadlock cycle ->
      Alcotest.(check bool) "cycle contains both" true
        (List.exists (fun f -> Txn_id.to_int f = 1) cycle
        && List.exists (fun f -> Txn_id.to_int f = 2) cycle)
  | _ -> Alcotest.fail "expected deadlock");
  (* The refused family was not enqueued. *)
  Alcotest.(check int) "no waiter added" 0 (Gdo.Directory.waiting_count d (oid 0))

let test_three_party_deadlock () =
  let d = make () in
  ignore (acquire d 0 ~family:(fam 1) ~node:0 ~mode:Lock.Write);
  ignore (acquire d 1 ~family:(fam 2) ~node:1 ~mode:Lock.Write);
  ignore (acquire d 2 ~family:(fam 3) ~node:2 ~mode:Lock.Write);
  Alcotest.(check bool) "1 waits 2's object" true
    (is_queued (acquire d 1 ~family:(fam 1) ~node:0 ~mode:Lock.Write));
  Alcotest.(check bool) "2 waits 3's object" true
    (is_queued (acquire d 2 ~family:(fam 2) ~node:1 ~mode:Lock.Write));
  Alcotest.(check bool) "3 closing the triangle deadlocks" true
    (is_deadlock (acquire d 0 ~family:(fam 3) ~node:2 ~mode:Lock.Write))

let test_nonblocking_busy () =
  let d = make () in
  ignore (acquire d 0 ~family:(fam 1) ~node:0 ~mode:Lock.Write);
  Alcotest.(check bool) "busy, not queued" true
    (is_busy (Gdo.Directory.acquire d (oid 0) ~family:(fam 2) ~node:1 ~mode:Lock.Write ~block:false ()));
  Alcotest.(check int) "left no trace" 0 (Gdo.Directory.waiting_count d (oid 0));
  Alcotest.(check bool) "free lock still granted non-blocking" true
    (is_granted (Gdo.Directory.acquire d (oid 1) ~family:(fam 2) ~node:1 ~mode:Lock.Write ~block:false ()))

let test_dirty_updates_page_map () =
  let d = make () in
  ignore (acquire d 0 ~family:(fam 1) ~node:2 ~mode:Lock.Write);
  ignore (Gdo.Directory.release d (oid 0) ~family:(fam 1) ~dirty:[ (1, 5, 2); (3, 6, 2) ]);
  let nodes, versions = Gdo.Directory.page_map d (oid 0) in
  Alcotest.(check (array int)) "nodes updated" [| 0; 2; 0; 2 |] nodes;
  Alcotest.(check (array int)) "versions updated" [| 0; 5; 0; 6 |] versions;
  (* Stale dirty info (lower version) must not regress the map. *)
  ignore (acquire d 0 ~family:(fam 2) ~node:3 ~mode:Lock.Write);
  ignore (Gdo.Directory.release d (oid 0) ~family:(fam 2) ~dirty:[ (1, 4, 3) ]);
  let nodes2, versions2 = Gdo.Directory.page_map d (oid 0) in
  Alcotest.(check int) "node kept" 2 nodes2.(1);
  Alcotest.(check int) "version kept" 5 versions2.(1)

let test_release_not_holder_noop () =
  let d = make () in
  Alcotest.(check int) "noop" 0
    (List.length (Gdo.Directory.release d (oid 0) ~family:(fam 9) ~dirty:[]))

let test_copyset () =
  let d = make () in
  Gdo.Directory.note_cached d (oid 0) ~node:3;
  Gdo.Directory.note_cached d (oid 0) ~node:1;
  Gdo.Directory.note_cached d (oid 0) ~node:3;
  Alcotest.(check (list int)) "copyset sorted dedup" [ 0; 1; 3 ] (Gdo.Directory.copyset d (oid 0))

let test_waits_for_edges () =
  let d = make () in
  ignore (acquire d 0 ~family:(fam 1) ~node:0 ~mode:Lock.Write);
  ignore (acquire d 0 ~family:(fam 2) ~node:1 ~mode:Lock.Write);
  let edges = Gdo.Directory.waits_for_edges d in
  Alcotest.(check (list (pair int int))) "edge 2->1" [ (2, 1) ]
    (List.map (fun (a, b) -> (Txn_id.to_int a, Txn_id.to_int b)) edges);
  ignore (Gdo.Directory.release d (oid 0) ~family:(fam 1) ~dirty:[]);
  Alcotest.(check int) "edges cleared" 0 (List.length (Gdo.Directory.waits_for_edges d))

let test_grant_carries_page_map_copy () =
  let d = make () in
  match acquire d 0 ~family:(fam 1) ~node:0 ~mode:Lock.Write with
  | Gdo.Directory.Granted g ->
      (* Mutating the grant's arrays must not corrupt the directory. *)
      g.Gdo.Directory.g_page_versions.(0) <- 999;
      let _, versions = Gdo.Directory.page_map d (oid 0) in
      Alcotest.(check int) "directory unaffected" 0 versions.(0)
  | _ -> Alcotest.fail "expected grant"

(* A retransmitted blocking acquire must not enqueue the family twice: it is
   told Queued again, the wait queue stays at one entry, and the eventual
   release produces exactly one deferred grant. *)
let test_acquire_idempotent_while_queued () =
  let d = make () in
  Alcotest.(check bool) "holder" true
    (is_granted (acquire d 0 ~family:(fam 1) ~node:0 ~mode:Lock.Write));
  Alcotest.(check bool) "first request queues" true
    (is_queued (acquire d 0 ~family:(fam 2) ~node:1 ~mode:Lock.Write));
  Alcotest.(check bool) "retransmit queues again" true
    (is_queued (acquire d 0 ~family:(fam 2) ~node:1 ~mode:Lock.Write));
  Alcotest.(check int) "single wait entry" 1 (Gdo.Directory.waiting_count d (oid 0));
  let deliveries = Gdo.Directory.release d (oid 0) ~family:(fam 1) ~dirty:[] in
  Alcotest.(check int) "single deferred grant" 1 (List.length deliveries);
  Alcotest.(check bool) "granted to waiter" true
    (match deliveries with
    | [ { Gdo.Directory.d_family; _ } ] -> Txn_id.equal d_family (fam 2)
    | _ -> false)

let tests =
  [
    ( "gdo",
      [
        Alcotest.test_case "register and initial map" `Quick test_register_and_initial_map;
        Alcotest.test_case "free grant" `Quick test_free_grant;
        Alcotest.test_case "concurrent readers" `Quick test_concurrent_readers;
        Alcotest.test_case "writer excludes" `Quick test_writer_excludes;
        Alcotest.test_case "re-entrant" `Quick test_reentrant;
        Alcotest.test_case "release grants next writer" `Quick test_release_grants_next_writer;
        Alcotest.test_case "release batches readers" `Quick test_release_batches_readers;
        Alcotest.test_case "fifo order" `Quick test_fifo_order;
        Alcotest.test_case "upgrade sole reader" `Quick test_upgrade_sole_reader;
        Alcotest.test_case "upgrade waits for readers" `Quick test_upgrade_waits_for_other_readers;
        Alcotest.test_case "upgrade deadlock" `Quick test_upgrade_deadlock_detected;
        Alcotest.test_case "two-object deadlock" `Quick test_two_object_deadlock;
        Alcotest.test_case "three-party deadlock" `Quick test_three_party_deadlock;
        Alcotest.test_case "non-blocking busy" `Quick test_nonblocking_busy;
        Alcotest.test_case "dirty updates page map" `Quick test_dirty_updates_page_map;
        Alcotest.test_case "release non-holder noop" `Quick test_release_not_holder_noop;
        Alcotest.test_case "copyset" `Quick test_copyset;
        Alcotest.test_case "waits-for edges" `Quick test_waits_for_edges;
        Alcotest.test_case "grant copies page map" `Quick test_grant_carries_page_map_copy;
        Alcotest.test_case "acquire idempotent while queued" `Quick
          test_acquire_idempotent_while_queued;
      ] );
  ]
