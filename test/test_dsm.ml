(* Tests for the DSM layer: protocols, page stores, metrics. *)

open Objmodel

let oid = Oid.of_int

(* ---------- Protocol ---------- *)

let test_protocol_strings () =
  List.iter
    (fun p ->
      match Dsm.Protocol.of_string (Dsm.Protocol.to_string p) with
      | Ok p' -> Alcotest.(check bool) "roundtrip" true (Dsm.Protocol.equal p p')
      | Error e -> Alcotest.fail e)
    Dsm.Protocol.all;
  Alcotest.(check bool) "rc alias" true
    (Dsm.Protocol.of_string "rc" = Ok Dsm.Protocol.Rc_nested);
  Alcotest.(check bool) "unknown" true (Result.is_error (Dsm.Protocol.of_string "zzz"))

let test_protocol_flags () =
  Alcotest.(check bool) "rc pushes" true (Dsm.Protocol.is_eager_push Dsm.Protocol.Rc_nested);
  Alcotest.(check bool) "lotec lazy" false (Dsm.Protocol.is_eager_push Dsm.Protocol.Lotec);
  Alcotest.(check bool) "lotec demand" true (Dsm.Protocol.demand_fetch_allowed Dsm.Protocol.Lotec);
  Alcotest.(check bool) "otec no demand" false (Dsm.Protocol.demand_fetch_allowed Dsm.Protocol.Otec)

(* Transfer-set scenario: object with 6 pages.
   page:         0    1    2    3    4    5
   map node:     1    1    2    0    1    2     (acquirer = node 0)
   map version:  4    4    7    2    0    3
   local:        4    3    0    2    -    3
   stale:        -    x    x    -    x?   -     (4: local absent=-1 < 0)
   predicted:    {1, 3, 4} *)
let scenario () =
  let page_nodes = [| 1; 1; 2; 0; 1; 2 |] in
  let page_versions = [| 4; 4; 7; 2; 0; 3 |] in
  let locals = [| 4; 3; 0; 2; -1; 3 |] in
  let local_version p = locals.(p) in
  fun proto predicted ->
    Dsm.Protocol.transfer_set proto ~page_count:6 ~page_nodes ~page_versions ~local_version
      ~node:0 ~predicted

let test_transfer_cotec () =
  let ts = scenario () in
  (* Everything remote, regardless of freshness: pages 0,1,2,4,5 (3 is local). *)
  Alcotest.(check (list int)) "whole object" [ 0; 1; 2; 4; 5 ] (ts Dsm.Protocol.Cotec [])

let test_transfer_otec () =
  let ts = scenario () in
  (* Only remote AND stale: 1 (3<4), 2 (0<7), 4 (absent<0). *)
  Alcotest.(check (list int)) "stale only" [ 1; 2; 4 ] (ts Dsm.Protocol.Otec []);
  (* RC-nested behaves like OTEC at acquisition (cold pages). *)
  Alcotest.(check (list int)) "rc same" [ 1; 2; 4 ] (ts Dsm.Protocol.Rc_nested [])

let test_transfer_lotec () =
  let ts = scenario () in
  (* Stale AND predicted: {1,2,4} inter {1,3,4} = {1,4}. *)
  Alcotest.(check (list int)) "predicted stale" [ 1; 4 ] (ts Dsm.Protocol.Lotec [ 1; 3; 4 ]);
  Alcotest.(check (list int)) "empty prediction" [] (ts Dsm.Protocol.Lotec []);
  Alcotest.(check (list int)) "duplicate prediction ok" [ 1; 4 ]
    (ts Dsm.Protocol.Lotec [ 4; 1; 1; 3 ])

let test_transfer_lotec_empty_prediction () =
  (* LOTEC with an empty prediction fetches nothing at acquisition even
     when every remote page is stale — everything is left to demand
     fetches. The prediction, not staleness, drives the eager set. *)
  let page_nodes = [| 1; 2; 3; 1 |] in
  let page_versions = [| 5; 5; 5; 5 |] in
  let local_version _ = -1 in
  Alcotest.(check (list int)) "all stale, none predicted" []
    (Dsm.Protocol.transfer_set Dsm.Protocol.Lotec ~page_count:4 ~page_nodes ~page_versions
       ~local_version ~node:0 ~predicted:[]);
  (* Out-of-range prediction entries select nothing. *)
  Alcotest.(check (list int)) "prediction beyond object" []
    (Dsm.Protocol.transfer_set Dsm.Protocol.Lotec ~page_count:4 ~page_nodes ~page_versions
       ~local_version ~node:0 ~predicted:[ 7; 9 ])

let test_transfer_all_local () =
  (* Every page's newest copy already resides at the acquiring node: no
     protocol has anything to fetch (there is nowhere to fetch from),
     predictions notwithstanding. *)
  let page_nodes = [| 0; 0; 0; 0 |] in
  let page_versions = [| 3; 1; 4; 2 |] in
  let locals = [| 3; 1; 4; 2 |] in
  let local_version p = locals.(p) in
  List.iter
    (fun proto ->
      Alcotest.(check (list int))
        (Dsm.Protocol.to_string proto ^ ": all pages local")
        []
        (Dsm.Protocol.transfer_set proto ~page_count:4 ~page_nodes ~page_versions
           ~local_version ~node:0 ~predicted:[ 0; 1; 2; 3 ]))
    Dsm.Protocol.all

let test_transfer_subset_chain () =
  (* Structural property on the scenario: LOTEC <= OTEC <= COTEC. *)
  let ts = scenario () in
  let cotec = ts Dsm.Protocol.Cotec [] in
  let otec = ts Dsm.Protocol.Otec [] in
  let lotec = ts Dsm.Protocol.Lotec [ 1; 3; 4 ] in
  Alcotest.(check bool) "lotec subset otec" true (List.for_all (fun p -> List.mem p otec) lotec);
  Alcotest.(check bool) "otec subset cotec" true (List.for_all (fun p -> List.mem p cotec) otec)

let qcheck_transfer_subsets =
  let gen =
    QCheck.Gen.(
      let* pages = int_range 1 12 in
      let* nodes = array_size (return pages) (int_range 0 3) in
      let* versions = array_size (return pages) (int_range 0 9) in
      let* locals = array_size (return pages) (int_range (-1) 9) in
      let* predicted = list_size (int_range 0 pages) (int_range 0 (pages - 1)) in
      return (pages, nodes, versions, locals, predicted))
  in
  QCheck.Test.make ~name:"transfer sets are nested" ~count:300
    (QCheck.make ~print:(fun _ -> "<scenario>") gen)
    (fun (pages, nodes, versions, locals, predicted) ->
      let local_version p = locals.(p) in
      let ts proto predicted =
        Dsm.Protocol.transfer_set proto ~page_count:pages ~page_nodes:nodes
          ~page_versions:versions ~local_version ~node:0 ~predicted
      in
      let cotec = ts Dsm.Protocol.Cotec [] in
      let otec = ts Dsm.Protocol.Otec [] in
      let lotec = ts Dsm.Protocol.Lotec predicted in
      List.for_all (fun p -> List.mem p otec) lotec
      && List.for_all (fun p -> List.mem p cotec) otec
      && List.for_all (fun p -> nodes.(p) <> 0) cotec)

(* ---------- Page_store ---------- *)

let test_store_basics () =
  let s = Dsm.Page_store.create ~node:2 in
  Alcotest.(check int) "node" 2 (Dsm.Page_store.node s);
  Alcotest.(check int) "absent" Dsm.Page_store.absent (Dsm.Page_store.version s (oid 1) ~page:0);
  Dsm.Page_store.receive s (oid 1) ~page:0 ~version:3;
  Alcotest.(check int) "received" 3 (Dsm.Page_store.version s (oid 1) ~page:0)

let test_store_receive_monotonic () =
  let s = Dsm.Page_store.create ~node:0 in
  Dsm.Page_store.receive s (oid 1) ~page:0 ~version:5;
  Dsm.Page_store.receive s (oid 1) ~page:0 ~version:3;
  Alcotest.(check int) "older copy ignored" 5 (Dsm.Page_store.version s (oid 1) ~page:0);
  Dsm.Page_store.receive s (oid 1) ~page:0 ~version:8;
  Alcotest.(check int) "newer accepted" 8 (Dsm.Page_store.version s (oid 1) ~page:0)

let test_store_write_returns_prev () =
  let s = Dsm.Page_store.create ~node:0 in
  Alcotest.(check int) "first write prev absent" Dsm.Page_store.absent
    (Dsm.Page_store.write s (oid 1) ~page:0 ~new_version:1);
  Alcotest.(check int) "second write prev" 1 (Dsm.Page_store.write s (oid 1) ~page:0 ~new_version:2)

let test_store_restore () =
  let s = Dsm.Page_store.create ~node:0 in
  ignore (Dsm.Page_store.write s (oid 1) ~page:0 ~new_version:4);
  Dsm.Page_store.restore s (oid 1) ~page:0 ~version:2;
  Alcotest.(check int) "restored down" 2 (Dsm.Page_store.version s (oid 1) ~page:0);
  Dsm.Page_store.restore s (oid 1) ~page:0 ~version:Dsm.Page_store.absent;
  Alcotest.(check int) "restored to absent" Dsm.Page_store.absent
    (Dsm.Page_store.version s (oid 1) ~page:0)

let test_store_is_current () =
  let s = Dsm.Page_store.create ~node:0 in
  Dsm.Page_store.receive s (oid 1) ~page:0 ~version:5;
  Alcotest.(check bool) "current" true (Dsm.Page_store.is_current s (oid 1) ~page:0 ~newest:5);
  Alcotest.(check bool) "stale" false (Dsm.Page_store.is_current s (oid 1) ~page:0 ~newest:6)

let test_store_enumeration () =
  let s = Dsm.Page_store.create ~node:0 in
  Dsm.Page_store.receive s (oid 2) ~page:1 ~version:1;
  Dsm.Page_store.receive s (oid 2) ~page:0 ~version:2;
  Dsm.Page_store.receive s (oid 5) ~page:3 ~version:1;
  Alcotest.(check (list (pair int int))) "pages sorted" [ (0, 2); (1, 1) ]
    (Dsm.Page_store.cached_pages s (oid 2));
  Alcotest.(check (list int)) "objects sorted" [ 2; 5 ]
    (List.map Oid.to_int (Dsm.Page_store.cached_objects s))

let test_store_dump_deterministic () =
  (* The dump must be a function of the cached contents alone — never of
     hash-table iteration order, so insertion order (and the process hash
     seed) cannot leak into golden comparisons. *)
  let fill order =
    let s = Dsm.Page_store.create ~node:0 in
    List.iter (fun (o, p, v) -> Dsm.Page_store.receive s (oid o) ~page:p ~version:v) order;
    s
  in
  let contents = [ (7, 1, 3); (2, 0, 1); (7, 0, 2); (2, 2, 5); (11, 4, 1) ] in
  let a = fill contents and b = fill (List.rev contents) in
  Alcotest.(check string) "insertion order invisible" (Dsm.Page_store.dump a)
    (Dsm.Page_store.dump b);
  (* Objects ascend, pages ascend within each line. *)
  let d = Dsm.Page_store.dump a in
  let idx needle =
    let nl = String.length needle and l = String.length d in
    let rec go i = if i + nl > l then -1 else if String.sub d i nl = needle then i else go (i + 1) in
    go 0
  in
  Alcotest.(check bool) "O2 before O7 before O11" true
    (idx "O2" >= 0 && idx "O7" > idx "O2" && idx "O11" > idx "O7")

(* ---------- Metrics ---------- *)

let test_metrics_messages () =
  let m = Dsm.Metrics.create () in
  Dsm.Metrics.record_message m ~oid:(oid 1) ~kind:Sim.Network.Control ~bytes:100;
  Dsm.Metrics.record_message m ~oid:(oid 1) ~kind:Sim.Network.Data ~bytes:4000;
  Dsm.Metrics.record_message m ~oid:(oid 2) ~kind:Sim.Network.Data ~bytes:500;
  let e = Dsm.Metrics.per_object m (oid 1) in
  Alcotest.(check int) "messages" 2 e.Dsm.Metrics.messages;
  Alcotest.(check int) "control bytes" 100 e.Dsm.Metrics.control_bytes;
  Alcotest.(check int) "data bytes" 4000 e.Dsm.Metrics.data_bytes;
  Alcotest.(check int) "total bytes" 4600 (Dsm.Metrics.total_bytes m);
  Alcotest.(check int) "total data" 4500 (Dsm.Metrics.total_data_bytes m);
  Alcotest.(check int) "total messages" 3 (Dsm.Metrics.total_messages m);
  Alcotest.(check (list int)) "objects" [ 1; 2 ] (List.map Oid.to_int (Dsm.Metrics.objects m))

let test_metrics_time_model () =
  let m = Dsm.Metrics.create () in
  Dsm.Metrics.record_message m ~oid:(oid 1) ~kind:Sim.Network.Data ~bytes:1250;
  Dsm.Metrics.record_message m ~oid:(oid 1) ~kind:Sim.Network.Control ~bytes:1250;
  let link = { Sim.Network.bandwidth_bps = 1e8; software_cost_us = 20.0 } in
  (* 2 messages * 20us + 2500B * 8 / 1e8 = 40 + 200 = 240us. *)
  Alcotest.(check (float 0.001)) "object time" 240.0 (Dsm.Metrics.object_time_us m (oid 1) ~link);
  Alcotest.(check (float 0.001)) "total time" 240.0 (Dsm.Metrics.total_time_us m ~link);
  (* Faster link, higher software cost: counts dominate. *)
  let fast = { Sim.Network.bandwidth_bps = 1e9; software_cost_us = 100.0 } in
  Alcotest.(check (float 0.001)) "fast link" 220.0 (Dsm.Metrics.object_time_us m (oid 1) ~link:fast)

let test_metrics_counters () =
  let m = Dsm.Metrics.create () in
  Dsm.Metrics.incr_roots_committed m;
  Dsm.Metrics.incr_roots_committed m;
  Dsm.Metrics.incr_deadlock_aborts m;
  Dsm.Metrics.incr_sub_aborts m;
  Dsm.Metrics.incr_retries m;
  Dsm.Metrics.incr_upgrades m;
  Dsm.Metrics.record_demand_fetch m ~oid:(oid 3);
  let t = Dsm.Metrics.totals m in
  Alcotest.(check int) "committed" 2 t.Dsm.Metrics.roots_committed;
  Alcotest.(check int) "deadlocks" 1 t.Dsm.Metrics.deadlock_aborts;
  Alcotest.(check int) "sub aborts" 1 t.Dsm.Metrics.sub_aborts;
  Alcotest.(check int) "retries" 1 t.Dsm.Metrics.retries;
  Alcotest.(check int) "upgrades" 1 t.Dsm.Metrics.upgrades;
  Alcotest.(check int) "demand fetches" 1 t.Dsm.Metrics.demand_fetches

let test_metrics_size_histogram () =
  let m = Dsm.Metrics.create () in
  Dsm.Metrics.record_message m ~oid:(oid 1) ~kind:Sim.Network.Control ~bytes:100;
  Dsm.Metrics.record_message m ~oid:(oid 1) ~kind:Sim.Network.Control ~bytes:128;
  Dsm.Metrics.record_message m ~oid:(oid 1) ~kind:Sim.Network.Data ~bytes:4100;
  Dsm.Metrics.record_message m ~oid:(oid 1) ~kind:Sim.Network.Data ~bytes:50_000;
  let h = Dsm.Metrics.size_histogram m in
  Alcotest.(check int) "<=128" 2 (List.assoc 128 h);
  Alcotest.(check int) "<=8192" 1 (List.assoc 8192 h);
  Alcotest.(check int) "oversize" 1 (List.assoc max_int h);
  Alcotest.(check int) "total counted" 4 (List.fold_left (fun a (_, c) -> a + c) 0 h)

let test_metrics_am_time_model () =
  let m = Dsm.Metrics.create () in
  Dsm.Metrics.record_message m ~oid:(oid 1) ~kind:Sim.Network.Control ~bytes:1250;
  Dsm.Metrics.record_message m ~oid:(oid 1) ~kind:Sim.Network.Data ~bytes:1250;
  let link = { Sim.Network.bandwidth_bps = 1e8; software_cost_us = 20.0 } in
  (* control at 1us + data at 20us + 2500B serialisation (200us) = 221. *)
  Alcotest.(check (float 0.001)) "split costs" 221.0
    (Dsm.Metrics.object_time_us_am m (oid 1) ~link ~control_software_cost_us:1.0);
  Alcotest.(check (float 0.001)) "total matches" 221.0
    (Dsm.Metrics.total_time_us_am m ~link ~control_software_cost_us:1.0);
  (* With equal costs the AM model degenerates to the plain one. *)
  Alcotest.(check (float 0.001)) "degenerates"
    (Dsm.Metrics.object_time_us m (oid 1) ~link)
    (Dsm.Metrics.object_time_us_am m (oid 1) ~link ~control_software_cost_us:20.0)

let test_metrics_zero_object () =
  let m = Dsm.Metrics.create () in
  let e = Dsm.Metrics.per_object m (oid 9) in
  Alcotest.(check int) "zeroed" 0 e.Dsm.Metrics.messages

let tests =
  [
    ( "dsm",
      [
        Alcotest.test_case "protocol strings" `Quick test_protocol_strings;
        Alcotest.test_case "protocol flags" `Quick test_protocol_flags;
        Alcotest.test_case "transfer cotec" `Quick test_transfer_cotec;
        Alcotest.test_case "transfer otec" `Quick test_transfer_otec;
        Alcotest.test_case "transfer lotec" `Quick test_transfer_lotec;
        Alcotest.test_case "transfer lotec empty prediction" `Quick
          test_transfer_lotec_empty_prediction;
        Alcotest.test_case "transfer all pages local" `Quick test_transfer_all_local;
        Alcotest.test_case "transfer subset chain" `Quick test_transfer_subset_chain;
        QCheck_alcotest.to_alcotest qcheck_transfer_subsets;
        Alcotest.test_case "store basics" `Quick test_store_basics;
        Alcotest.test_case "store receive monotonic" `Quick test_store_receive_monotonic;
        Alcotest.test_case "store write prev" `Quick test_store_write_returns_prev;
        Alcotest.test_case "store restore" `Quick test_store_restore;
        Alcotest.test_case "store is_current" `Quick test_store_is_current;
        Alcotest.test_case "store enumeration" `Quick test_store_enumeration;
        Alcotest.test_case "store dump deterministic" `Quick test_store_dump_deterministic;
        Alcotest.test_case "metrics messages" `Quick test_metrics_messages;
        Alcotest.test_case "metrics time model" `Quick test_metrics_time_model;
        Alcotest.test_case "metrics counters" `Quick test_metrics_counters;
        Alcotest.test_case "metrics size histogram" `Quick test_metrics_size_histogram;
        Alcotest.test_case "metrics am time model" `Quick test_metrics_am_time_model;
        Alcotest.test_case "metrics zero object" `Quick test_metrics_zero_object;
      ] );
  ]
