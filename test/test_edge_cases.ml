(* Assorted edge cases across the substrate modules. *)

open Objmodel
open Sim

let oid = Oid.of_int

(* ---------- Engine ---------- *)

let test_fiber_exception_propagates () =
  let e = Engine.create () in
  Engine.spawn e (fun () -> failwith "boom");
  Alcotest.check_raises "escapes run" (Failure "boom") (fun () -> Engine.run e)

let test_spawn_inside_fiber () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.spawn e (fun () ->
      log := "outer" :: !log;
      Engine.spawn e (fun () ->
          Engine.wait 5.0;
          log := "inner" :: !log);
      Engine.wait 10.0;
      log := "outer-done" :: !log);
  Engine.run e;
  Alcotest.(check (list string)) "nested fiber ran" [ "outer"; "inner"; "outer-done" ]
    (List.rev !log)

let test_wait_zero () =
  let e = Engine.create () in
  let done_ = ref false in
  Engine.spawn e (fun () ->
      Engine.wait 0.0;
      done_ := true);
  Engine.run e;
  Alcotest.(check bool) "zero wait completes" true !done_;
  Alcotest.(check (float 1e-9)) "no time passed" 0.0 (Engine.now e)

(* ---------- Trace ---------- *)

let test_trace_capacity_one () =
  let tr = Trace.create ~capacity:1 in
  for i = 1 to 4 do
    Trace.record tr ~time:(float_of_int i) (string_of_int i)
  done;
  Alcotest.(check int) "one retained" 1 (Trace.length tr);
  Alcotest.(check int) "three dropped" 3 (Trace.dropped tr);
  Alcotest.(check (list string)) "keeps the newest" [ "4" ]
    (List.map (fun e -> e.Trace.data) (Trace.events tr))

(* ---------- Layout ---------- *)

let test_attr_spanning_three_pages () =
  let attrs = [| Attribute.make ~name:"pad" ~size_bytes:50; Attribute.make ~name:"big" ~size_bytes:220 |] in
  let l = Layout.create ~page_size:100 attrs in
  Alcotest.(check (list int)) "spans 0-2" [ 0; 1; 2 ] (Layout.pages_of_attr l 1);
  Alcotest.(check int) "three pages total" 3 (Layout.page_count l)

let test_page_size_one () =
  let l = Layout.create ~page_size:1 [| Attribute.make ~name:"x" ~size_bytes:3 |] in
  Alcotest.(check (list int)) "byte-granular pages" [ 0; 1; 2 ] (Layout.pages_of_attr l 0)

(* ---------- Method IR ---------- *)

let test_loop_zero_iterations () =
  let m =
    Method_ir.make ~name:"m" ~body:[ Method_ir.Loop { count = 0; body = [ Method_ir.Write 0 ] } ]
  in
  let writes = ref 0 in
  Method_ir.interp m
    {
      Method_ir.on_read = ignore;
      on_write = (fun _ -> incr writes);
      on_invoke = (fun _ _ -> ());
      choose = (fun _ -> true);
    };
  Alcotest.(check int) "never executed" 0 !writes;
  (* The conservative analysis still predicts the write. *)
  let s = Access_analysis.analyse m in
  Alcotest.(check (list int)) "still predicted" [ 0 ] s.Access_analysis.write_attrs

let test_nested_loops_cost () =
  let m =
    Method_ir.make ~name:"m"
      ~body:
        [
          Method_ir.Loop
            { count = 3; body = [ Method_ir.Loop { count = 2; body = [ Method_ir.Read 0 ] } ] };
        ]
  in
  (* statement_count counts the static body once: loop + loop + read = 3. *)
  Alcotest.(check int) "static count" 3 (Method_ir.statement_count m);
  let reads = ref 0 in
  Method_ir.interp m
    {
      Method_ir.on_read = (fun _ -> incr reads);
      on_write = ignore;
      on_invoke = (fun _ _ -> ());
      choose = (fun _ -> true);
    };
  Alcotest.(check int) "dynamic executions" 6 !reads

(* ---------- Catalog ---------- *)

let test_diamond_dag_depth () =
  let leaf =
    Obj_class.compile ~page_size:100
      (Obj_class.define ~name:"L"
         ~attrs:[| Attribute.make ~name:"x" ~size_bytes:10 |]
         ~methods:[ Method_ir.make ~name:"m" ~body:[ Method_ir.Read 0 ] ]
         ~ref_slots:0)
  in
  let mid =
    Obj_class.compile ~page_size:100
      (Obj_class.define ~name:"M"
         ~attrs:[||]
         ~methods:[ Method_ir.make ~name:"m" ~body:[ Method_ir.Invoke { slot = 0; meth = "m" } ] ]
         ~ref_slots:1)
  in
  let top =
    Obj_class.compile ~page_size:100
      (Obj_class.define ~name:"T"
         ~attrs:[||]
         ~methods:
           [
             Method_ir.make ~name:"m"
               ~body:
                 [
                   Method_ir.Invoke { slot = 0; meth = "m" };
                   Method_ir.Invoke { slot = 1; meth = "m" };
                 ];
           ]
         ~ref_slots:2)
  in
  (* Diamond: top -> {mid1, mid2} -> leaf. Acyclic despite the shared leaf. *)
  let cat =
    Catalog.create
      [
        { Catalog.oid = oid 0; cls = top; refs = [| oid 1; oid 2 |] };
        { Catalog.oid = oid 1; cls = mid; refs = [| oid 3 |] };
        { Catalog.oid = oid 2; cls = mid; refs = [| oid 3 |] };
        { Catalog.oid = oid 3; cls = leaf; refs = [||] };
      ]
  in
  Alcotest.(check bool) "diamond acyclic" true (Catalog.validate_acyclic cat = Ok ());
  Alcotest.(check int) "depth 3" 3 (Catalog.max_invocation_depth cat)

(* A diamond family re-acquires the shared leaf: the second touch must be a
   purely local acquisition (the family already holds the lock). *)
let test_diamond_family_reacquires_locally () =
  let leaf =
    Obj_class.compile ~page_size:4096
      (Obj_class.define ~name:"L"
         ~attrs:[| Attribute.make ~name:"x" ~size_bytes:64 |]
         ~methods:[ Method_ir.make ~name:"m" ~body:[ Method_ir.Write 0 ] ]
         ~ref_slots:0)
  in
  let top =
    Obj_class.compile ~page_size:4096
      (Obj_class.define ~name:"T" ~attrs:[||]
         ~methods:
           [
             Method_ir.make ~name:"m"
               ~body:
                 [
                   Method_ir.Invoke { slot = 0; meth = "m" };
                   Method_ir.Invoke { slot = 1; meth = "m" };
                 ];
           ]
         ~ref_slots:2)
  in
  let cat =
    Catalog.create
      [
        { Catalog.oid = oid 0; cls = top; refs = [| oid 1; oid 1 |] };
        { Catalog.oid = oid 1; cls = leaf; refs = [||] };
      ]
  in
  let rt = Core.Runtime.create ~config:Core.Config.default ~catalog:cat in
  Core.Runtime.submit rt ~at:0.0 ~node:2 ~oid:(oid 0) ~meth:"m" ~seed:1;
  Core.Runtime.run rt;
  let t = Dsm.Metrics.totals (Core.Runtime.metrics rt) in
  Alcotest.(check int) "committed" 1 t.Dsm.Metrics.roots_committed;
  (* Two global acquisitions (top + first leaf touch), one local (second
     leaf touch, granted from the family's retained lock). *)
  Alcotest.(check int) "global" 2 t.Dsm.Metrics.global_acquisitions;
  Alcotest.(check int) "local" 1 t.Dsm.Metrics.local_acquisitions

(* ---------- Network ---------- *)

let test_zero_byte_message () =
  let engine = Engine.create () in
  let net = Network.create ~engine ~node_count:2 ~link:Network.link_100mbps () in
  let got = ref false in
  Network.set_handler net ~node:1 (fun ~src:_ () -> got := true);
  Network.set_handler net ~node:0 (fun ~src:_ () -> ());
  Network.send net ~src:0 ~dst:1 ~kind:Network.Control ~bytes:0 ~tag:(-1) ();
  Engine.run engine;
  Alcotest.(check bool) "delivered" true !got;
  Alcotest.(check (float 0.001)) "software cost only" 20.0 (Engine.now engine)

(* ---------- Directory dump ---------- *)

let test_directory_dump () =
  let d = Gdo.Directory.create () in
  Gdo.Directory.register_object d (oid 3) ~pages:2 ~initial_node:0;
  ignore
    (Gdo.Directory.acquire d (oid 3) ~family:(Txn.Txn_id.of_int 9) ~node:1 ~mode:Txn.Lock.Write ());
  let s = Gdo.Directory.dump d in
  let has sub =
    let n = String.length sub and m = String.length s in
    let rec scan i = i + n <= m && (String.sub s i n = sub || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "names object" true (has "O3");
  Alcotest.(check bool) "names holder" true (has "T9@1");
  (* Free objects are omitted. *)
  Gdo.Directory.register_object d (oid 4) ~pages:1 ~initial_node:0;
  Alcotest.(check bool) "free omitted" false
    (let s = Gdo.Directory.dump d in
     let n = String.length "O4" and m = String.length s in
     let rec scan i = i + n <= m && (String.sub s i n = "O4" || scan (i + 1)) in
     scan 0)

let tests =
  [
    ( "edge-cases",
      [
        Alcotest.test_case "fiber exception propagates" `Quick test_fiber_exception_propagates;
        Alcotest.test_case "spawn inside fiber" `Quick test_spawn_inside_fiber;
        Alcotest.test_case "wait zero" `Quick test_wait_zero;
        Alcotest.test_case "trace capacity one" `Quick test_trace_capacity_one;
        Alcotest.test_case "attr spans three pages" `Quick test_attr_spanning_three_pages;
        Alcotest.test_case "page size one" `Quick test_page_size_one;
        Alcotest.test_case "loop zero iterations" `Quick test_loop_zero_iterations;
        Alcotest.test_case "nested loops" `Quick test_nested_loops_cost;
        Alcotest.test_case "diamond dag" `Quick test_diamond_dag_depth;
        Alcotest.test_case "diamond local reacquire" `Quick test_diamond_family_reacquires_locally;
        Alcotest.test_case "zero-byte message" `Quick test_zero_byte_message;
        Alcotest.test_case "directory dump" `Quick test_directory_dump;
      ] );
  ]
