(* Tests for the message-combining layer (Dsm.Batching): policy parsing
   and validation, the inert-when-off guarantee, ack piggybacking under a
   lossy interconnect, demand-fetch aggregation, same-instant release
   coalescing, heartbeat suppression under crash windows, and the exact
   wire-ledger reconciliation with riders present. *)

open Objmodel

let oid = Oid.of_int

(* ---------- policy ---------- *)

let test_policy_strings () =
  (match Dsm.Batching.of_string "off" with
  | Ok p -> Alcotest.(check bool) "off disabled" false (Dsm.Batching.enabled p)
  | Error e -> Alcotest.fail e);
  (match Dsm.Batching.of_string "all" with
  | Ok p ->
      Alcotest.(check bool) "all enabled" true (Dsm.Batching.enabled p);
      Alcotest.(check string) "round trip" "all" (Dsm.Batching.to_string p)
  | Error e -> Alcotest.fail e);
  (match Dsm.Batching.of_string "sometimes" with
  | Ok _ -> Alcotest.fail "garbage accepted"
  | Error _ -> ());
  Alcotest.(check string) "off round trip" "off" (Dsm.Batching.to_string Dsm.Batching.off)

let test_policy_validate () =
  let ok p = Alcotest.(check bool) "valid" true (Result.is_ok (Dsm.Batching.validate p)) in
  let bad p = Alcotest.(check bool) "invalid" true (Result.is_error (Dsm.Batching.validate p)) in
  ok Dsm.Batching.off;
  ok Dsm.Batching.all;
  bad { Dsm.Batching.all with Dsm.Batching.ack_flush_us = 0.0 };
  bad { Dsm.Batching.all with Dsm.Batching.ack_rider_bytes = -1 };
  bad { Dsm.Batching.all with Dsm.Batching.release_flush_us = -1.0 }

let test_config_rejects_flush_above_timeout () =
  (* A flush timer at or above the retransmit timeout would make every
     deferred ack look like a loss to its sender. *)
  let cfg =
    {
      Core.Config.default with
      Core.Config.batching =
        { Dsm.Batching.all with Dsm.Batching.ack_flush_us = 1.0e9 };
    }
  in
  Alcotest.(check bool) "rejected" true (Result.is_error (Core.Config.validate cfg))

(* ---------- full-run helpers ---------- *)

let medium_high_small roots =
  { Workload.Scenarios.medium_high with Workload.Spec.root_count = roots; seed = 42 }

let run_with ?config protocol spec =
  let config = Option.value config ~default:Core.Config.default in
  let wl = Workload.Generator.generate spec ~page_size:config.Core.Config.page_size in
  Experiments.Runner.metrics (Experiments.Runner.execute ~config ~protocol wl)

let check_reconciles m =
  Alcotest.(check int) "wire messages = network messages" (Dsm.Metrics.total_messages m)
    (Dsm.Metrics.wire_messages_total m);
  Alcotest.(check int) "wire bytes = network bytes" (Dsm.Metrics.total_bytes m)
    (Dsm.Metrics.wire_bytes_total m)

let summary m = Format.asprintf "%a" Dsm.Metrics.pp_summary m

let with_batching ?faults policy =
  { Core.Config.default with Core.Config.batching = policy; faults }

(* ---------- inert when off / fault-free ---------- *)

let test_fault_free_all_is_byte_identical () =
  (* Without a fault model there are no transport acks to defer and no
     heartbeats to suppress, fault-free LOTEC demand fetches are zero on
     this workload, and a zero-window release flush sends at the same
     instant the direct path would: a fault-free run with every feature on
     must be byte-identical to the off run. *)
  let spec = medium_high_small 40 in
  let off = run_with ~config:(with_batching Dsm.Batching.off) Dsm.Protocol.Lotec spec in
  let all = run_with ~config:(with_batching Dsm.Batching.all) Dsm.Protocol.Lotec spec in
  Alcotest.(check string) "summaries byte-identical" (summary off) (summary all);
  Alcotest.(check (float 0.0)) "same completion"
    (Dsm.Metrics.completion_time_us off)
    (Dsm.Metrics.completion_time_us all);
  Alcotest.(check int) "no riders" 0 (Dsm.Metrics.wire_riders_total all);
  check_reconciles all

let lossy_faults =
  {
    Sim.Fault.none with
    Sim.Fault.seed = 7;
    drop_probability = 0.08;
    duplicate_probability = 0.05;
    delay_jitter_us = 40.0;
  }

let test_off_under_faults_records_nothing () =
  let m =
    run_with
      ~config:(with_batching ~faults:lossy_faults Dsm.Batching.off)
      Dsm.Protocol.Lotec (medium_high_small 30)
  in
  let t = Dsm.Metrics.totals m in
  Alcotest.(check int) "no piggybacked acks" 0 t.Dsm.Metrics.acks_piggybacked;
  Alcotest.(check int) "no flushes" 0 t.Dsm.Metrics.acks_flushed;
  Alcotest.(check int) "no riders" 0 (Dsm.Metrics.wire_riders_total m);
  check_reconciles m

(* ---------- ack piggybacking ---------- *)

let test_ack_piggybacking_cuts_messages () =
  let spec = medium_high_small 30 in
  let off =
    run_with
      ~config:(with_batching ~faults:lossy_faults Dsm.Batching.off)
      Dsm.Protocol.Lotec spec
  in
  let on =
    run_with
      ~config:(with_batching ~faults:lossy_faults Dsm.Batching.all)
      Dsm.Protocol.Lotec spec
  in
  let t = Dsm.Metrics.totals on in
  Alcotest.(check bool) "acks rode payloads" true (t.Dsm.Metrics.acks_piggybacked > 0);
  Alcotest.(check bool) "fewer messages than off" true
    (Dsm.Metrics.total_messages on < Dsm.Metrics.total_messages off);
  (* Every deferred ack is accounted: it either rode a payload or went out
     in a flush. *)
  Alcotest.(check bool) "riders recorded" true (Dsm.Metrics.wire_riders_total on > 0);
  let off_t = Dsm.Metrics.totals off in
  Alcotest.(check int) "all roots still accounted"
    (off_t.Dsm.Metrics.roots_committed + off_t.Dsm.Metrics.roots_aborted)
    (t.Dsm.Metrics.roots_committed + t.Dsm.Metrics.roots_aborted);
  check_reconciles off;
  check_reconciles on

(* ---------- demand-fetch aggregation ---------- *)

(* A diamond access pattern: the driver invokes the wide object twice with
   different methods. The second invocation finds the lock already held by
   the family (no acquisition-time transfer), so its reads demand-fetch —
   one round per attribute without batching, one widened round with it. *)
let attr size name = Attribute.make ~name ~size_bytes:size

let wide_class ~page_size =
  Obj_class.compile ~page_size
    (Obj_class.define ~name:"Wide"
       ~attrs:[| attr page_size "x"; attr page_size "y"; attr page_size "z" |]
       ~methods:
         [
           Method_ir.make ~name:"mx" ~body:[ Method_ir.Read 0 ];
           Method_ir.make ~name:"myz" ~body:[ Method_ir.Read 1; Method_ir.Read 2 ];
         ]
       ~ref_slots:0)

let driver_class ~page_size =
  Obj_class.compile ~page_size
    (Obj_class.define ~name:"Driver"
       ~attrs:[| attr 64 "a" |]
       ~methods:
         [
           Method_ir.make ~name:"m"
             ~body:
               [
                 Method_ir.Invoke { slot = 0; meth = "mx" };
                 Method_ir.Invoke { slot = 0; meth = "myz" };
               ];
         ]
       ~ref_slots:1)

let diamond_catalog ~page_size =
  Catalog.create
    [
      (* oid 0 -> home 0 with two nodes; the family runs at node 1, so the
         wide object's pages start remote. *)
      { Catalog.oid = oid 0; cls = wide_class ~page_size; refs = [||] };
      { Catalog.oid = oid 1; cls = driver_class ~page_size; refs = [| oid 0 |] };
    ]

let run_diamond policy =
  let config =
    {
      Core.Config.default with
      Core.Config.protocol = Dsm.Protocol.Lotec;
      node_count = 2;
      batching = policy;
    }
  in
  let rt =
    Core.Runtime.create ~config
      ~catalog:(diamond_catalog ~page_size:config.Core.Config.page_size)
  in
  Core.Runtime.submit rt ~at:0.0 ~node:1 ~oid:(oid 1) ~meth:"m" ~seed:1;
  Core.Runtime.run rt;
  let m = Core.Runtime.metrics rt in
  Alcotest.(check int) "committed" 1 (Dsm.Metrics.totals m).Dsm.Metrics.roots_committed;
  check_reconciles m;
  m

let page_requests m =
  match
    List.find_opt (fun (w, _, _) -> w = Dsm.Wire.Page_request) (Dsm.Metrics.wire_breakdown m)
  with
  | Some (_, n, _) -> n
  | None -> 0

let test_fetch_aggregation () =
  let off = run_diamond Dsm.Batching.off in
  let off_t = Dsm.Metrics.totals off in
  (* Off: mx's acquire transfers page 0; myz re-enters the family-held lock
     without a transfer, then pays one demand round per page. *)
  Alcotest.(check int) "two demand rounds without batching" 2
    off_t.Dsm.Metrics.demand_fetches;
  Alcotest.(check int) "three page-request rounds without batching" 3 (page_requests off);
  let on = run_diamond Dsm.Batching.all in
  let on_t = Dsm.Metrics.totals on in
  Alcotest.(check int) "one widened round with batching" 1 on_t.Dsm.Metrics.demand_fetches;
  Alcotest.(check int) "one predicted page aggregated" 1 on_t.Dsm.Metrics.fetches_aggregated;
  Alcotest.(check int) "two page-request rounds with batching" 2 (page_requests on);
  Alcotest.(check bool) "fewer messages" true
    (Dsm.Metrics.total_messages on < Dsm.Metrics.total_messages off)

(* ---------- release coalescing ---------- *)

(* Two independent families, submitted together at the same node, each
   writing its own remote object homed at node 0: they commit at the same
   instant, and their per-home release batches must leave in one combined
   Release message (the zero-window flush runs after every same-instant
   commit, by engine insertion order). *)
let writer_class ~page_size =
  Obj_class.compile ~page_size
    (Obj_class.define ~name:"Cell"
       ~attrs:[| attr 64 "v" |]
       ~methods:[ Method_ir.make ~name:"set" ~body:[ Method_ir.Read 0; Method_ir.Write 0 ] ]
       ~ref_slots:0)

let caller_class ~page_size =
  Obj_class.compile ~page_size
    (Obj_class.define ~name:"Caller"
       ~attrs:[| attr 64 "a" |]
       ~methods:
         [
           Method_ir.make ~name:"go"
             ~body:[ Method_ir.Write 0; Method_ir.Invoke { slot = 0; meth = "set" } ];
         ]
       ~ref_slots:1)

let twin_catalog ~page_size =
  Catalog.create
    [
      (* Even oids home at node 0, odd at node 1 (two nodes). *)
      { Catalog.oid = oid 0; cls = writer_class ~page_size; refs = [||] };
      { Catalog.oid = oid 2; cls = writer_class ~page_size; refs = [||] };
      { Catalog.oid = oid 1; cls = caller_class ~page_size; refs = [| oid 0 |] };
      { Catalog.oid = oid 3; cls = caller_class ~page_size; refs = [| oid 2 |] };
    ]

let release_messages m =
  match
    List.find_opt (fun (w, _, _) -> w = Dsm.Wire.Release) (Dsm.Metrics.wire_breakdown m)
  with
  | Some (_, n, _) -> n
  | None -> 0

let run_twins policy =
  let config =
    {
      Core.Config.default with
      Core.Config.protocol = Dsm.Protocol.Lotec;
      node_count = 2;
      batching = policy;
    }
  in
  let rt =
    Core.Runtime.create ~config
      ~catalog:(twin_catalog ~page_size:config.Core.Config.page_size)
  in
  Core.Runtime.submit rt ~at:0.0 ~node:1 ~oid:(oid 1) ~meth:"go" ~seed:1;
  Core.Runtime.submit rt ~at:0.0 ~node:1 ~oid:(oid 3) ~meth:"go" ~seed:2;
  Core.Runtime.run rt;
  let m = Core.Runtime.metrics rt in
  Alcotest.(check int) "both committed" 2 (Dsm.Metrics.totals m).Dsm.Metrics.roots_committed;
  check_reconciles m;
  m

let test_release_coalescing () =
  let off = run_twins Dsm.Batching.off in
  Alcotest.(check int) "no coalescing off" 0
    (Dsm.Metrics.totals off).Dsm.Metrics.releases_coalesced;
  Alcotest.(check int) "two release messages off" 2 (release_messages off);
  let on = run_twins Dsm.Batching.all in
  Alcotest.(check int) "one batch coalesced" 1
    (Dsm.Metrics.totals on).Dsm.Metrics.releases_coalesced;
  Alcotest.(check int) "one combined release message" 1 (release_messages on);
  Alcotest.(check bool) "combined message is cheaper than two" true
    (Dsm.Metrics.total_bytes on < Dsm.Metrics.total_bytes off);
  (* The combined message serialises as one larger frame, so arrival times
     shift by a fraction of a percent; completion must stay in that band. *)
  let off_us = Dsm.Metrics.completion_time_us off
  and on_us = Dsm.Metrics.completion_time_us on in
  Alcotest.(check bool)
    (Printf.sprintf "completion within 1%% (%.2f vs %.2f us)" on_us off_us)
    true
    (Float.abs (on_us -. off_us) <= 0.01 *. off_us)

(* ---------- heartbeat suppression ---------- *)

let test_heartbeat_suppression_under_crash () =
  let faults =
    {
      Sim.Fault.none with
      Sim.Fault.seed = 3;
      windows =
        [ { Sim.Fault.w_node = 3; w_kind = Sim.Fault.Crash; w_from_us = 5000.0; w_until_us = 15000.0 } ];
    }
  in
  let spec = medium_high_small 40 in
  let off =
    run_with ~config:(with_batching ~faults:faults Dsm.Batching.off)
      Dsm.Protocol.Lotec spec
  in
  let on =
    run_with ~config:(with_batching ~faults:faults Dsm.Batching.all)
      Dsm.Protocol.Lotec spec
  in
  let t = Dsm.Metrics.totals on in
  Alcotest.(check bool) "heartbeats suppressed" true
    (t.Dsm.Metrics.heartbeats_suppressed > 0);
  Alcotest.(check bool) "fewer messages than off" true
    (Dsm.Metrics.total_messages on < Dsm.Metrics.total_messages off);
  (* Suppression must not break the run: every root still accounted, and
     release coalescing stood down (crash windows active). *)
  Alcotest.(check int) "all roots accounted" spec.Workload.Spec.root_count
    (t.Dsm.Metrics.roots_committed + t.Dsm.Metrics.roots_aborted);
  Alcotest.(check int) "coalescing stands down under crash" 0
    t.Dsm.Metrics.releases_coalesced;
  check_reconciles on

(* ---------- experiment sweep ---------- *)

let test_batching_sweep_headline () =
  (* The acceptance gate: on the standard workload under light loss, LOTEC
     with batching sends >= 15% fewer messages, with completion inside a
     15% band of the off run. The fault PRNG sequences diverge once message
     counts differ, and the retransmit schedule is decorrelated-jittered
     (see Sim.Backoff) — a couple of tail retransmits landing differently
     shifts completion by several percent on this 3%-loss run, so the band
     is wide; the message reduction, not completion, is the headline. *)
  let outcomes = Experiments.Batching.sweep ~protocols:[ Dsm.Protocol.Lotec ] () in
  Alcotest.(check int) "two rows" 2 (List.length outcomes);
  match Experiments.Batching.lotec_message_reduction_pct outcomes with
  | None -> Alcotest.fail "missing lotec rows"
  | Some pct ->
      Alcotest.(check bool)
        (Printf.sprintf "message reduction >= 15%% (got %+.1f%%)" pct)
        true (pct <= -15.0);
      let off = List.find (fun (o : Experiments.Batching.outcome) ->
          not (Dsm.Batching.enabled o.Experiments.Batching.case.Experiments.Batching.policy))
          outcomes
      and on = List.find (fun (o : Experiments.Batching.outcome) ->
          Dsm.Batching.enabled o.Experiments.Batching.case.Experiments.Batching.policy)
          outcomes
      in
      let slack = 1.15 *. off.Experiments.Batching.completion_us in
      Alcotest.(check bool)
        (Printf.sprintf "completion no worse (%.0f vs %.0f us)"
           on.Experiments.Batching.completion_us off.Experiments.Batching.completion_us)
        true
        (on.Experiments.Batching.completion_us <= slack);
      (* The software-cost replay: batching must win at high per-message
         cost — the paper's regime where LOTEC's message count hurts. *)
      let at sw (o : Experiments.Batching.outcome) = List.assoc sw o.Experiments.Batching.time_us in
      List.iter
        (fun sw ->
          Alcotest.(check bool)
            (Printf.sprintf "replayed time improves at sw=%g" sw)
            true
            (at sw on < at sw off))
        [ 100.0; 20.0 ]

let tests =
  [
    ( "batching",
      [
        Alcotest.test_case "policy strings" `Quick test_policy_strings;
        Alcotest.test_case "policy validate" `Quick test_policy_validate;
        Alcotest.test_case "config rejects flush above timeout" `Quick
          test_config_rejects_flush_above_timeout;
        Alcotest.test_case "fault-free all is byte-identical" `Quick
          test_fault_free_all_is_byte_identical;
        Alcotest.test_case "off under faults records nothing" `Quick
          test_off_under_faults_records_nothing;
        Alcotest.test_case "ack piggybacking cuts messages" `Quick
          test_ack_piggybacking_cuts_messages;
        Alcotest.test_case "fetch aggregation" `Quick test_fetch_aggregation;
        Alcotest.test_case "release coalescing" `Quick test_release_coalescing;
        Alcotest.test_case "heartbeat suppression under crash" `Quick
          test_heartbeat_suppression_under_crash;
        Alcotest.test_case "sweep headline reduction" `Slow test_batching_sweep_headline;
      ] );
  ]
