(* Method-result cache tests: the Dsm.Method_cache policy and per-node store
   as pure data structures, config validation (the cache requires a lease),
   the cache-off byte-identity guarantee against the pre-cache goldens for
   all four protocols, the headline hit-rate / message-reduction gates on
   the web-serving workload, and the racy paths — recalls invalidating
   in-flight cached objects, and epoch bumps inside crash windows. *)

open Objmodel

let oid = Oid.of_int
let lru capacity = Dsm.Method_cache.Lru { capacity }

(* ---------- policy ---------- *)

let test_policy_strings () =
  List.iter
    (fun (s, expect) ->
      match Dsm.Method_cache.policy_of_string s with
      | Ok p -> Alcotest.(check string) s expect (Dsm.Method_cache.policy_to_string p)
      | Error e -> Alcotest.fail e)
    [ ("off", "off"); ("none", "off"); ("on", "lru"); ("lru", "lru"); ("LRU:8", "lru") ];
  (match Dsm.Method_cache.policy_of_string "lru:8" with
  | Ok (Dsm.Method_cache.Lru { capacity }) -> Alcotest.(check int) "capacity parsed" 8 capacity
  | _ -> Alcotest.fail "lru:8 should parse");
  (match Dsm.Method_cache.policy_of_string "on" with
  | Ok (Dsm.Method_cache.Lru { capacity }) ->
      Alcotest.(check int) "default capacity" Dsm.Method_cache.default_capacity capacity
  | _ -> Alcotest.fail "on should parse as lru");
  Alcotest.(check bool) "unknown rejected" true
    (Result.is_error (Dsm.Method_cache.policy_of_string "sometimes"));
  Alcotest.(check bool) "bad capacity rejected" true
    (Result.is_error (Dsm.Method_cache.policy_of_string "lru:zero"))

let test_policy_validation () =
  let bad p = Result.is_error (Dsm.Method_cache.validate_policy p) in
  Alcotest.(check bool) "off ok" false (bad Dsm.Method_cache.off);
  Alcotest.(check bool) "lru ok" false (bad (lru 1));
  Alcotest.(check bool) "zero capacity" true (bad (lru 0));
  Alcotest.(check bool) "negative capacity" true (bad (lru (-4)));
  Alcotest.(check bool) "off disabled" false (Dsm.Method_cache.policy_enabled Dsm.Method_cache.off);
  Alcotest.(check bool) "lru enabled" true (Dsm.Method_cache.policy_enabled (lru 1));
  Alcotest.(check string) "pp shows capacity" "lru(8)"
    (Format.asprintf "%a" Dsm.Method_cache.pp_policy (lru 8))

(* ---------- per-node store ---------- *)

let reads_a = [ (0, 1); (1, 3) ]

let test_store_off_inert () =
  let t = Dsm.Method_cache.create Dsm.Method_cache.off in
  Alcotest.(check bool) "disabled" false (Dsm.Method_cache.enabled t);
  Alcotest.(check bool) "install refused" false
    (Dsm.Method_cache.install t ~oid:(oid 1) ~meth:"m1" ~versions:[| 1 |] ~reads:reads_a);
  Alcotest.(check bool) "find misses" true
    (Dsm.Method_cache.find t ~oid:(oid 1) ~meth:"m1" ~versions:[| 1 |] = None);
  Alcotest.(check int) "empty" 0 (Dsm.Method_cache.entry_count t)

let test_store_hit_and_version_eviction () =
  let t = Dsm.Method_cache.create (lru 8) in
  Alcotest.(check bool) "filled" true
    (Dsm.Method_cache.install t ~oid:(oid 1) ~meth:"m1" ~versions:[| 1; 3 |] ~reads:reads_a);
  Alcotest.(check bool) "duplicate refused" false
    (Dsm.Method_cache.install t ~oid:(oid 1) ~meth:"m1" ~versions:[| 1; 3 |] ~reads:reads_a);
  (match Dsm.Method_cache.find t ~oid:(oid 1) ~meth:"m1" ~versions:[| 1; 3 |] with
  | Some reads -> Alcotest.(check (list (pair int int))) "read log" reads_a reads
  | None -> Alcotest.fail "expected a hit");
  Alcotest.(check bool) "other method misses" true
    (Dsm.Method_cache.find t ~oid:(oid 1) ~meth:"m2" ~versions:[| 1; 3 |] = None);
  (* The lazy version-advance invalidation: a key hit at different versions
     drops the stale entry, so even the original versions miss afterwards. *)
  Alcotest.(check bool) "stale versions miss" true
    (Dsm.Method_cache.find t ~oid:(oid 1) ~meth:"m1" ~versions:[| 2; 3 |] = None);
  Alcotest.(check int) "stale entry dropped" 0 (Dsm.Method_cache.entry_count t);
  Alcotest.(check bool) "original versions also gone" true
    (Dsm.Method_cache.find t ~oid:(oid 1) ~meth:"m1" ~versions:[| 1; 3 |] = None)

let test_store_lru_eviction () =
  let t = Dsm.Method_cache.create (lru 2) in
  let install o = ignore (Dsm.Method_cache.install t ~oid:(oid o) ~meth:"m1" ~versions:[| 1 |] ~reads:reads_a) in
  install 1;
  install 2;
  (* Touch 1 so 2 becomes the LRU victim. *)
  ignore (Dsm.Method_cache.find t ~oid:(oid 1) ~meth:"m1" ~versions:[| 1 |]);
  install 3;
  Alcotest.(check int) "at capacity" 2 (Dsm.Method_cache.entry_count t);
  Alcotest.(check bool) "LRU victim evicted" true
    (Dsm.Method_cache.find t ~oid:(oid 2) ~meth:"m1" ~versions:[| 1 |] = None);
  Alcotest.(check bool) "recently used survives" true
    (Dsm.Method_cache.find t ~oid:(oid 1) ~meth:"m1" ~versions:[| 1 |] <> None);
  Alcotest.(check bool) "newcomer present" true
    (Dsm.Method_cache.find t ~oid:(oid 3) ~meth:"m1" ~versions:[| 1 |] <> None)

let test_store_invalidate_and_clear () =
  let t = Dsm.Method_cache.create (lru 8) in
  let install o m = ignore (Dsm.Method_cache.install t ~oid:(oid o) ~meth:m ~versions:[| 1 |] ~reads:reads_a) in
  install 1 "m1";
  install 1 "m2";
  install 2 "m1";
  Alcotest.(check int) "object wiped (all methods)" 2
    (Dsm.Method_cache.invalidate_object t (oid 1));
  Alcotest.(check bool) "other object untouched" true
    (Dsm.Method_cache.find t ~oid:(oid 2) ~meth:"m1" ~versions:[| 1 |] <> None);
  Alcotest.(check int) "idempotent" 0 (Dsm.Method_cache.invalidate_object t (oid 1));
  Alcotest.(check int) "clear drops the rest" 1 (Dsm.Method_cache.clear t);
  Alcotest.(check int) "empty after clear" 0 (Dsm.Method_cache.entry_count t)

(* QCheck property: under any install/find/invalidate sequence the entry
   count never exceeds the LRU capacity. *)
let prop_capacity_bound =
  let gen =
    QCheck2.Gen.(
      pair (int_range 1 6)
        (list_size (int_range 0 60) (triple (int_range 0 9) (int_range 0 3) (int_range 1 3))))
  in
  QCheck2.Test.make ~name:"method cache never exceeds capacity" ~count:50 gen
    (fun (capacity, ops) ->
      let t = Dsm.Method_cache.create (lru capacity) in
      List.for_all
        (fun (o, m, v) ->
          let meth = Printf.sprintf "m%d" m in
          (match m mod 3 with
          | 0 ->
              ignore
                (Dsm.Method_cache.install t ~oid:(oid o) ~meth ~versions:[| v |] ~reads:reads_a)
          | 1 -> ignore (Dsm.Method_cache.find t ~oid:(oid o) ~meth ~versions:[| v |])
          | _ -> ignore (Dsm.Method_cache.invalidate_object t (oid o)));
          Dsm.Method_cache.entry_count t <= capacity)
        ops)

(* ---------- config validation ---------- *)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_config_requires_lease () =
  let config = { Core.Config.default with Core.Config.method_cache = lru 8 } in
  (match Core.Config.validate config with
  | Error msg ->
      Alcotest.(check bool) "error names the lease" true
        (contains ~sub:"lease" (String.lowercase_ascii msg))
  | Ok () -> Alcotest.fail "cache without a lease must be rejected");
  let ok =
    { config with Core.Config.lease = Gdo.Lease.Fixed_ttl { ttl_us = 1000.0 } }
  in
  Alcotest.(check bool) "cache over a lease validates" true
    (Result.is_ok (Core.Config.validate ok))

(* ---------- cache off: byte-identity against the pre-cache goldens ---------- *)

let golden_spec =
  {
    (Workload.Scenarios.spec Workload.Scenarios.High Workload.Scenarios.Medium) with
    Workload.Spec.root_count = 40;
    seed = 42;
  }

(* The first three rows are the goldens from test_chaos.ml, captured before
   the cache subsystem existed; Rc_nested is recorded here for the first
   time. With method_cache = Off the runtime must be byte-identical. *)
let goldens =
  [
    (Dsm.Protocol.Cotec, (484, 1_169_012, 25968.873648));
    (Dsm.Protocol.Otec, (419, 956_560, 20047.449955));
    (Dsm.Protocol.Lotec, (370, 731_252, 19580.172744));
    (Dsm.Protocol.Rc_nested, (425, 1_606_888, 20610.322997));
  ]

let test_cache_off_byte_identity () =
  let wl = Workload.Generator.generate golden_spec ~page_size:4096 in
  let config = { Core.Config.default with Core.Config.method_cache = Dsm.Method_cache.off } in
  List.iter
    (fun (protocol, (messages, bytes, completion)) ->
      let name = Format.asprintf "%a" Dsm.Protocol.pp protocol in
      let m = Experiments.Runner.metrics (Experiments.Runner.execute ~config ~protocol wl) in
      let t = Dsm.Metrics.totals m in
      Alcotest.(check int) (name ^ " messages") messages (Dsm.Metrics.total_messages m);
      Alcotest.(check int) (name ^ " bytes") bytes (Dsm.Metrics.total_bytes m);
      Alcotest.(check (float 1e-6)) (name ^ " completion") completion
        (Dsm.Metrics.completion_time_us m);
      Alcotest.(check int) (name ^ " no cache hits") 0 t.Dsm.Metrics.cache_hits;
      Alcotest.(check int) (name ^ " no cache misses") 0 t.Dsm.Metrics.cache_misses;
      Alcotest.(check int) (name ^ " no cache fills") 0 t.Dsm.Metrics.cache_fills;
      Alcotest.(check int) (name ^ " no invalidations") 0 t.Dsm.Metrics.cache_invalidations)
    goldens

(* ---------- runtime integration: the headline gates ---------- *)

let cached_case protocol read_fraction =
  {
    Experiments.Method_cache.protocol;
    read_fraction;
    mode = Experiments.Method_cache.Cached Experiments.Method_cache.default_policy;
  }

let baseline_case protocol read_fraction =
  { Experiments.Method_cache.protocol; read_fraction; mode = Experiments.Method_cache.Baseline }

(* The acceptance numbers: on web-sessions at a 0.99 request read share,
   LOTEC with the cache serves at least half its consults from cache and
   moves at least 5x fewer messages than the everything-off baseline.
   run_case itself asserts serializability, root accounting, zero-counter
   hygiene and exact wire-ledger reconciliation. *)
let test_lotec_headline_gates () =
  let spec = Workload.Scenarios.web_sessions in
  let base =
    Experiments.Method_cache.run_case ~spec (baseline_case Dsm.Protocol.Lotec 0.99)
  in
  let on = Experiments.Method_cache.run_case ~spec (cached_case Dsm.Protocol.Lotec 0.99) in
  Alcotest.(check int) "all committed (baseline)" spec.Workload.Spec.root_count
    (base.committed + base.aborted);
  Alcotest.(check int) "all committed (cached)" spec.Workload.Spec.root_count
    (on.committed + on.aborted);
  let rate = Experiments.Method_cache.hit_rate on in
  if rate < 0.5 then
    Alcotest.failf "hit rate %.2f misses the 0.5 floor (%d hits, %d misses)" rate on.cache_hits
      on.cache_misses;
  let factor = Experiments.Method_cache.message_factor ~baseline:base ~on in
  if factor < 5.0 then
    Alcotest.failf "message factor %.2fx misses the 5x floor (%d vs %d msgs)" factor
      base.messages on.messages

(* Every protocol must keep its invariants with the cache on and actually
   use it on the read-heavy point (run_case asserts the rest). *)
let test_all_protocols_cache () =
  List.iter
    (fun protocol ->
      let o =
        Experiments.Method_cache.run_case ~spec:Workload.Scenarios.web_sessions
          (cached_case protocol 0.95)
      in
      if o.cache_hits = 0 then
        Alcotest.failf "%s: cache never hit" (Dsm.Protocol.to_string protocol))
    Dsm.Protocol.all

(* Recall racing an in-flight cached invocation: at a 0.8 read share the
   web-sessions run interleaves writes (lease recalls, epoch bumps) with a
   steady stream of cached reads, so invalidations land while cached
   invocations are outstanding. run_case asserts the committed history
   stays serializable and the wire ledger still reconciles exactly. *)
let test_recall_races_cached_reads () =
  let o =
    Experiments.Method_cache.run_case ~spec:Workload.Scenarios.web_sessions
      (cached_case Dsm.Protocol.Lotec 0.8)
  in
  Alcotest.(check bool) "cache hit under write pressure" true (o.cache_hits > 0);
  Alcotest.(check bool) "recalls invalidated entries" true (o.cache_invalidations > 0);
  Alcotest.(check bool) "writes were present" true (o.aborted + o.committed > 0 && o.cache_misses > 0)

(* Determinism: the cache adds lookups and invalidation hooks, but a
   repeated run must still be byte-identical. *)
let test_cached_run_deterministic () =
  let spec = { Workload.Scenarios.web_sessions with Workload.Spec.root_count = 200 } in
  let case = cached_case Dsm.Protocol.Lotec 0.95 in
  let a = Experiments.Method_cache.run_case ~spec case in
  let b = Experiments.Method_cache.run_case ~spec case in
  Alcotest.(check int) "messages" a.messages b.messages;
  Alcotest.(check int) "bytes" a.bytes b.bytes;
  Alcotest.(check int) "hits" a.cache_hits b.cache_hits;
  Alcotest.(check int) "fills" a.cache_fills b.cache_fills;
  Alcotest.(check int) "invalidations" a.cache_invalidations b.cache_invalidations;
  Alcotest.(check (float 0.0)) "completion" a.completion_us b.completion_us

(* ---------- cache under chaos and crash windows ---------- *)

let chaos_spec =
  {
    Workload.Scenarios.web_sessions with
    Workload.Spec.root_count = 120;
    root_update_fraction = Some 0.15;
  }

let cached_config ?(windows = []) ~fault_seed ~drop ~dup ~jitter () =
  {
    Core.Config.default with
    Core.Config.lease = Experiments.Method_cache.default_lease;
    method_cache = Experiments.Method_cache.default_policy;
    faults =
      Some
        {
          Sim.Fault.seed = fault_seed;
          drop_probability = drop;
          duplicate_probability = dup;
          delay_jitter_us = jitter;
          windows;
          link_windows = [];
        };
  }

let check_chaos_invariants name m =
  let t = Dsm.Metrics.totals m in
  Alcotest.(check int) (name ^ ": all roots accounted") chaos_spec.Workload.Spec.root_count
    (t.Dsm.Metrics.roots_committed + t.Dsm.Metrics.roots_aborted);
  Alcotest.(check bool) (name ^ ": ledger balanced") true (Experiments.Chaos.ledger_balanced m);
  Alcotest.(check int) (name ^ ": wire messages reconcile") (Dsm.Metrics.total_messages m)
    (Dsm.Metrics.wire_messages_total m);
  Alcotest.(check int) (name ^ ": wire bytes reconcile") (Dsm.Metrics.total_bytes m)
    (Dsm.Metrics.wire_bytes_total m);
  t

(* Drops and duplicates against cached reads: a duplicated recall or a
   dropped grant must never let a stale cached result commit. *)
let test_cache_under_faults () =
  let config = cached_config ~fault_seed:11 ~drop:0.06 ~dup:0.06 ~jitter:30.0 () in
  let wl = Workload.Generator.generate chaos_spec ~page_size:4096 in
  let m = Experiments.Runner.metrics (Experiments.Runner.execute ~config ~protocol:Dsm.Protocol.Lotec wl) in
  let t = check_chaos_invariants "faults" m in
  Alcotest.(check bool) "faults were injected" true (t.Dsm.Metrics.drops > 0);
  Alcotest.(check bool) "cache was exercised" true (t.Dsm.Metrics.cache_hits > 0)

(* Epoch bump during a crash window: node 2 crashes mid-run (wiping its
   cache), writes recalled during the outage bump the lease epoch, and the
   dead node's entries must not resurrect as hits after restart. *)
let test_epoch_bump_in_crash_window () =
  let windows =
    [
      { Sim.Fault.w_node = 1; w_kind = Sim.Fault.Pause; w_from_us = 2_000.0; w_until_us = 6_000.0 };
      { Sim.Fault.w_node = 2; w_kind = Sim.Fault.Crash; w_from_us = 3_000.0; w_until_us = 10_000.0 };
    ]
  in
  let config = cached_config ~windows ~fault_seed:3 ~drop:0.02 ~dup:0.02 ~jitter:10.0 () in
  let wl = Workload.Generator.generate chaos_spec ~page_size:4096 in
  let m = Experiments.Runner.metrics (Experiments.Runner.execute ~config ~protocol:Dsm.Protocol.Lotec wl) in
  let t = check_chaos_invariants "crash window" m in
  Alcotest.(check bool) "outage cost retransmits" true (t.Dsm.Metrics.retransmits > 0);
  Alcotest.(check bool) "cache survived the window" true (t.Dsm.Metrics.cache_hits > 0);
  Alcotest.(check bool) "entries were invalidated" true (t.Dsm.Metrics.cache_invalidations > 0)

(* QCheck property: arbitrary small fault rates and seeds, cache on, every
   protocol keeps root accounting and an exactly reconciled ledger. *)
let prop_cached_chaos_invariants =
  let gen =
    QCheck2.Gen.(
      triple (int_range 1 1000) (float_bound_inclusive 0.08) (float_bound_inclusive 0.08))
  in
  QCheck2.Test.make ~name:"cache invariants hold under faults" ~count:6 gen
    (fun (fault_seed, drop, dup) ->
      List.for_all
        (fun protocol ->
          let config = cached_config ~fault_seed ~drop ~dup ~jitter:20.0 () in
          let wl = Workload.Generator.generate chaos_spec ~page_size:4096 in
          let m = Experiments.Runner.metrics (Experiments.Runner.execute ~config ~protocol wl) in
          let t = Dsm.Metrics.totals m in
          t.Dsm.Metrics.roots_committed + t.Dsm.Metrics.roots_aborted
            = chaos_spec.Workload.Spec.root_count
          && Dsm.Metrics.wire_messages_total m = Dsm.Metrics.total_messages m
          && Dsm.Metrics.wire_bytes_total m = Dsm.Metrics.total_bytes m)
        Dsm.Protocol.[ Otec; Lotec ])

let tests =
  [
    ( "method-cache",
      [
        Alcotest.test_case "policy strings" `Quick test_policy_strings;
        Alcotest.test_case "policy validation" `Quick test_policy_validation;
        Alcotest.test_case "store off inert" `Quick test_store_off_inert;
        Alcotest.test_case "store hit and version eviction" `Quick
          test_store_hit_and_version_eviction;
        Alcotest.test_case "store LRU eviction" `Quick test_store_lru_eviction;
        Alcotest.test_case "store invalidate and clear" `Quick test_store_invalidate_and_clear;
        QCheck_alcotest.to_alcotest prop_capacity_bound;
        Alcotest.test_case "config requires lease" `Quick test_config_requires_lease;
        Alcotest.test_case "cache off is byte-identical" `Quick test_cache_off_byte_identity;
        Alcotest.test_case "lotec headline gates" `Quick test_lotec_headline_gates;
        Alcotest.test_case "every protocol caches" `Quick test_all_protocols_cache;
        Alcotest.test_case "recall races cached reads" `Quick test_recall_races_cached_reads;
        Alcotest.test_case "cached run deterministic" `Quick test_cached_run_deterministic;
        Alcotest.test_case "cache under faults" `Quick test_cache_under_faults;
        Alcotest.test_case "epoch bump in crash window" `Quick test_epoch_bump_in_crash_window;
        QCheck_alcotest.to_alcotest prop_cached_chaos_invariants;
      ] );
  ]
