(* Crash-recovery tests: the failure detector, dead-family eviction at the
   directory (QCheck property: no dangling residue), lease eviction, and
   full runs through Chaos.run_crash_case — crash windows, dead
   declaration, reclamation and GDO home failover, with the recovery
   invariants asserted end to end. *)

open Txn

(* ------------------------------------------------------------------ *)
(* Failure detector.                                                   *)

let test_detector_silence_and_heartbeat () =
  let d = Sim.Failure_detector.create ~node_count:4 ~timeout_us:1_000.0 in
  Sim.Failure_detector.set_self d 0;
  Alcotest.(check (list int)) "nothing suspect at start" [] (Sim.Failure_detector.suspects d ~now:500.0);
  (* Everyone starts heard-at-0: silence past the timeout suspects all peers. *)
  Alcotest.(check (list int))
    "silent peers become suspect (self excluded)" [ 1; 2; 3 ]
    (Sim.Failure_detector.suspects d ~now:1_500.0);
  Sim.Failure_detector.heartbeat d ~node:2 ~now:1_400.0;
  Alcotest.(check (list int))
    "heartbeat clears one" [ 1; 3 ]
    (Sim.Failure_detector.suspects d ~now:1_500.0);
  Alcotest.(check bool) "node 2 clean" false (Sim.Failure_detector.is_suspect d ~node:2 ~now:1_500.0)

let test_detector_hint () =
  let d = Sim.Failure_detector.create ~node_count:3 ~timeout_us:10_000.0 in
  Sim.Failure_detector.set_self d 0;
  Alcotest.(check bool) "not suspect yet" false (Sim.Failure_detector.is_suspect d ~node:1 ~now:1.0);
  Sim.Failure_detector.hint d ~node:1;
  Alcotest.(check bool)
    "transport give-up makes an immediate suspect" true
    (Sim.Failure_detector.is_suspect d ~node:1 ~now:1.0);
  Sim.Failure_detector.heartbeat d ~node:1 ~now:2.0;
  Alcotest.(check bool) "heartbeat clears the hint" false
    (Sim.Failure_detector.is_suspect d ~node:1 ~now:2.0)

(* ------------------------------------------------------------------ *)
(* Dead-family eviction at the directory: QCheck property.             *)

let oid i = Objmodel.Oid.of_int i
let fam i = Txn_id.of_int i

(* Families execute at node [id mod node_count]. *)
let node_count = 4
let node_of_family f = Txn_id.to_int f mod node_count

let build_directory ~objects ~ops ~seed =
  let gdo = Gdo.Directory.create () in
  for i = 0 to objects - 1 do
    Gdo.Directory.register_object gdo (oid i) ~pages:2 ~initial_node:(i mod node_count)
  done;
  let prng = Random.State.make [| seed |] in
  (* Random acquires and releases from a pool of families; Deadlock refusals
     and Busy results are simply skipped, exactly as the runtime would abort
     and move on. *)
  let held = Hashtbl.create 16 in
  for _ = 1 to ops do
    let f = fam (Random.State.int prng 12) in
    let o = oid (Random.State.int prng objects) in
    let mode = if Random.State.bool prng then Lock.Read else Lock.Write in
    if Random.State.int prng 4 = 0 then begin
      match Hashtbl.find_opt held (Txn_id.to_int f) with
      | Some os when os <> [] ->
          let victim = List.nth os (Random.State.int prng (List.length os)) in
          ignore (Gdo.Directory.release gdo victim ~family:f ~dirty:[]);
          Hashtbl.replace held (Txn_id.to_int f)
            (List.filter (fun o' -> o' <> victim) os)
      | _ -> ()
    end
    else
      match
        Gdo.Directory.acquire gdo o ~family:f ~node:(node_of_family f) ~mode ()
      with
      | Gdo.Directory.Granted _ ->
          let os = Option.value (Hashtbl.find_opt held (Txn_id.to_int f)) ~default:[] in
          if not (List.mem o os) then Hashtbl.replace held (Txn_id.to_int f) (o :: os)
      | Gdo.Directory.Queued | Gdo.Directory.Busy | Gdo.Directory.Deadlock _ -> ()
  done;
  gdo

(* After evicting a dead node's families: no holder, waiter or waits-for
   edge of a dead family survives anywhere, deferred grants go only to
   survivors, and a second eviction finds nothing. *)
let prop_eviction_leaves_no_residue =
  let gen = QCheck2.Gen.(triple (int_range 1 10_000) (int_range 2 8) (int_range 10 120)) in
  QCheck2.Test.make ~name:"directory eviction leaves no dead-family residue" ~count:100 gen
    (fun (seed, objects, ops) ->
      let gdo = build_directory ~objects ~ops ~seed in
      let dead_node = seed mod node_count in
      let dead f = node_of_family f = dead_node in
      let evicted, deliveries = Gdo.Directory.evict_families gdo ~dead in
      let ok_holders =
        List.for_all
          (fun i ->
            List.for_all
              (fun (h : Gdo.Directory.holder) -> not (dead h.Gdo.Directory.family))
              (Gdo.Directory.holders gdo (oid i)))
          (List.init objects (fun i -> i))
      in
      let ok_edges =
        List.for_all
          (fun (w, h) -> (not (dead w)) && not (dead h))
          (Gdo.Directory.waits_for_edges gdo)
      in
      let ok_deliveries =
        List.for_all
          (fun (d : Gdo.Directory.delivery) -> not (dead d.Gdo.Directory.d_family))
          deliveries
      in
      let evicted', deliveries' = Gdo.Directory.evict_families gdo ~dead in
      evicted >= 0 && ok_holders && ok_edges && ok_deliveries && evicted' = 0
      && deliveries' = [])

(* Page-map repointing: with a find_copy that always locates a surviving
   same-version copy, no entry points at the dead node afterwards. *)
let test_repoint_pages_total () =
  let gdo = Gdo.Directory.create () in
  for i = 0 to 5 do
    Gdo.Directory.register_object gdo (oid i) ~pages:3 ~initial_node:(i mod node_count)
  done;
  let dead_node = 2 in
  let repointed =
    Gdo.Directory.repoint_pages gdo ~dead_node ~find_copy:(fun _ ~page:_ ~version:_ ->
        Some ((dead_node + 1) mod node_count))
  in
  Alcotest.(check bool) "some entries were repointed" true (repointed > 0);
  List.iter
    (fun i ->
      let nodes, _ = Gdo.Directory.page_map gdo (oid i) in
      Array.iter
        (fun n -> Alcotest.(check bool) "no page left on the dead node" true (n <> dead_node))
        nodes)
    (List.init 6 (fun i -> i));
  (* With no surviving copy the entry must stay (the dead node's copy is
     durable and valid again after restart) — never fall back silently. *)
  let r2 =
    Gdo.Directory.repoint_pages gdo ~dead_node:((dead_node + 1) mod node_count)
      ~find_copy:(fun _ ~page:_ ~version:_ -> None)
  in
  Alcotest.(check int) "nothing repointed without a copy" 0 r2

(* Lease eviction: every lease granted to the dead node disappears. *)
let test_lease_eviction () =
  let mgr = Gdo.Lease.create (Gdo.Lease.Fixed_ttl { ttl_us = 10_000.0 }) in
  List.iter
    (fun (o, n) ->
      ignore (Gdo.Lease.lease_for_grant mgr (oid o) ~node:n ~now:0.0 ~writer_queued:false))
    [ (0, 1); (0, 2); (1, 2); (2, 3) ];
  let cleared = Gdo.Lease.evict_node mgr ~node:2 in
  Alcotest.(check (list int)) "no recall was pending, nothing cleared" []
    (List.map Objmodel.Oid.to_int cleared);
  List.iter
    (fun o ->
      Alcotest.(check bool)
        (Printf.sprintf "object %d holds no lease at node 2" o)
        false
        (List.mem 2 (Gdo.Lease.outstanding mgr (oid o) ~now:1.0)))
    [ 0; 1; 2 ];
  (* A recall waiting only on the dead node clears on eviction. *)
  ignore (Gdo.Lease.lease_for_grant mgr (oid 5) ~node:2 ~now:0.0 ~writer_queued:false);
  (match Gdo.Lease.begin_recall mgr (oid 5) ~now:1.0 ~excluded:None with
  | `Recall _ -> ()
  | `Clear | `In_progress -> Alcotest.fail "expected a recall order");
  let cleared = Gdo.Lease.evict_node mgr ~node:2 in
  Alcotest.(check (list int)) "recall cleared by eviction" [ 5 ]
    (List.map Objmodel.Oid.to_int cleared);
  Alcotest.(check bool) "no recall left in progress" false
    (Gdo.Lease.recall_in_progress mgr (oid 5))

(* ------------------------------------------------------------------ *)
(* Full runs: crash windows through the runtime.                       *)

let spec = Experiments.Chaos.default_spec

let crash_case ?(replicas = 0) ?(windows = [ (2, 3_000.0, 9_000.0) ]) protocol =
  {
    Experiments.Chaos.cc_protocol = protocol;
    cc_windows = windows;
    cc_gdo_replicas = replicas;
    cc_drop = 0.0;
    cc_fault_seed = 1;
  }

(* run_crash_case raises on any violated invariant (root accounting, exact
   wire-ledger reconciliation, ledger balance, serializability, stall), so
   most of the checking is surviving the call. *)
let test_crash_run_recovers () =
  List.iter
    (fun protocol ->
      let o = Experiments.Chaos.run_crash_case ~spec (crash_case protocol) in
      let name = Format.asprintf "%a" Dsm.Protocol.pp protocol in
      Alcotest.(check int)
        (name ^ " all roots accounted") spec.Workload.Spec.root_count
        (o.Experiments.Chaos.cc_committed + o.Experiments.Chaos.cc_aborted);
      Alcotest.(check bool) (name ^ " crash aborted some families") true
        (o.Experiments.Chaos.cc_crash_aborts > 0);
      Alcotest.(check int) (name ^ " one node declared dead") 1
        o.Experiments.Chaos.cc_declared_dead;
      Alcotest.(check bool) (name ^ " dead families reclaimed") true
        (o.Experiments.Chaos.cc_reclaimed > 0);
      Alcotest.(check int) (name ^ " no failover without replicas") 0
        o.Experiments.Chaos.cc_failovers;
      Alcotest.(check bool) (name ^ " crash-affected roots recovered") true
        (o.Experiments.Chaos.cc_recovered > 0);
      Alcotest.(check bool) (name ^ " recovery latency recorded") true
        (o.Experiments.Chaos.cc_recovery_p50_us > 0.0))
    Dsm.Protocol.[ Cotec; Otec; Lotec ]

let test_gdo_home_failover () =
  (* Node 2 is the GDO home of every object with oid mod 4 = 2; with one
     replica its partition fails over to node 3 and back at rejoin. *)
  let with_repl =
    Experiments.Chaos.run_crash_case ~spec (crash_case ~replicas:1 Dsm.Protocol.Lotec)
  in
  let without =
    Experiments.Chaos.run_crash_case ~spec (crash_case ~replicas:0 Dsm.Protocol.Lotec)
  in
  Alcotest.(check int) "exactly one failover" 1 with_repl.Experiments.Chaos.cc_failovers;
  Alcotest.(check int) "all roots commit or abort" spec.Workload.Spec.root_count
    (with_repl.Experiments.Chaos.cc_committed + with_repl.Experiments.Chaos.cc_aborted);
  (* Serving the partition from the successor instead of stalling on the
     dead home must not be slower. *)
  Alcotest.(check bool) "failover does not hurt completion" true
    (with_repl.Experiments.Chaos.cc_completion_us
    <= without.Experiments.Chaos.cc_completion_us +. 1.0)

let test_staggered_crashes () =
  let o =
    Experiments.Chaos.run_crash_case ~spec
      (crash_case ~replicas:1
         ~windows:[ (1, 2_000.0, 6_000.0); (3, 8_000.0, 13_000.0) ]
         Dsm.Protocol.Lotec)
  in
  Alcotest.(check int) "both nodes declared dead" 2 o.Experiments.Chaos.cc_declared_dead;
  Alcotest.(check int) "two failovers" 2 o.Experiments.Chaos.cc_failovers;
  Alcotest.(check int) "all roots accounted" spec.Workload.Spec.root_count
    (o.Experiments.Chaos.cc_committed + o.Experiments.Chaos.cc_aborted)

(* Crash runs are deterministic: same case, same numbers. *)
let test_crash_run_deterministic () =
  let c = crash_case ~replicas:1 Dsm.Protocol.Otec in
  let a = Experiments.Chaos.run_crash_case ~spec c in
  let b = Experiments.Chaos.run_crash_case ~spec c in
  Alcotest.(check int) "same traffic" a.Experiments.Chaos.cc_messages
    b.Experiments.Chaos.cc_messages;
  Alcotest.(check (float 0.0)) "same completion" a.Experiments.Chaos.cc_completion_us
    b.Experiments.Chaos.cc_completion_us;
  Alcotest.(check int) "same crash aborts" a.Experiments.Chaos.cc_crash_aborts
    b.Experiments.Chaos.cc_crash_aborts

(* A crash window entirely after completion must not perturb the run: the
   recovery machinery arms (heartbeats and all) but no crash ever fires
   during useful work — traffic differs only by the heartbeat/ack noise,
   while commits, aborts and crash counters stay clean. *)
let test_late_window_is_harmless () =
  let o =
    Experiments.Chaos.run_crash_case ~spec
      (crash_case ~windows:[ (2, 500_000.0, 501_000.0) ] Dsm.Protocol.Lotec)
  in
  Alcotest.(check int) "all roots committed" spec.Workload.Spec.root_count
    o.Experiments.Chaos.cc_committed;
  Alcotest.(check int) "no crash aborts" 0 o.Experiments.Chaos.cc_crash_aborts;
  Alcotest.(check int) "nobody declared dead" 0 o.Experiments.Chaos.cc_declared_dead;
  Alcotest.(check int) "no failovers" 0 o.Experiments.Chaos.cc_failovers

let tests =
  [
    ( "crash-recovery",
      [
        Alcotest.test_case "detector: silence and heartbeat" `Quick
          test_detector_silence_and_heartbeat;
        Alcotest.test_case "detector: transport hint" `Quick test_detector_hint;
        QCheck_alcotest.to_alcotest prop_eviction_leaves_no_residue;
        Alcotest.test_case "repoint pages" `Quick test_repoint_pages_total;
        Alcotest.test_case "lease eviction" `Quick test_lease_eviction;
        Alcotest.test_case "crash run recovers (all protocols)" `Quick test_crash_run_recovers;
        Alcotest.test_case "gdo home failover" `Quick test_gdo_home_failover;
        Alcotest.test_case "staggered crashes" `Quick test_staggered_crashes;
        Alcotest.test_case "crash run deterministic" `Quick test_crash_run_deterministic;
        Alcotest.test_case "late window is harmless" `Quick test_late_window_is_harmless;
      ] );
  ]
