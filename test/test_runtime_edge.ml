(* Targeted runtime scenarios: each test constructs a catalog that forces a
   specific protocol path and asserts the path's observable effects. *)

open Objmodel

let oid = Oid.of_int
let attr size name = Attribute.make ~name ~size_bytes:size

let compile = Obj_class.compile ~page_size:4096

(* A two-region object: page 0 holds [head], pages 1.. hold [tail]. Method
   [touch_head] accesses only page 0, [touch_tail] only the tail pages, and
   [touch_both] spans both. *)
let regions_class =
  compile
    (Obj_class.define ~name:"Regions"
       ~attrs:[| attr 4096 "head"; attr 8192 "tail" |]
       ~methods:
         [
           Method_ir.make ~name:"touch_head" ~body:[ Method_ir.Read 0; Method_ir.Write 0 ];
           Method_ir.make ~name:"touch_tail" ~body:[ Method_ir.Read 1; Method_ir.Write 1 ];
           Method_ir.make ~name:"touch_both"
             ~body:[ Method_ir.Read 0; Method_ir.Read 1; Method_ir.Write 1 ];
         ]
       ~ref_slots:0)

(* A driver whose method invokes [touch_head] then [touch_tail] on the same
   target: under LOTEC the global acquisition happens for [touch_head]
   (prediction = page 0 only), so [touch_tail]'s pages must demand-fetch. *)
let two_phase_driver =
  compile
    (Obj_class.define ~name:"TwoPhase" ~attrs:[||]
       ~methods:
         [
           Method_ir.make ~name:"go"
             ~body:
               [
                 Method_ir.Invoke { slot = 0; meth = "touch_head" };
                 Method_ir.Invoke { slot = 0; meth = "touch_tail" };
               ];
         ]
       ~ref_slots:1)

let make_runtime ?(config = Core.Config.default) ?(protocol = Dsm.Protocol.Lotec) catalog =
  let config = { config with Core.Config.protocol; node_count = 4 } in
  Core.Runtime.create ~config ~catalog

let totals rt = Dsm.Metrics.totals (Core.Runtime.metrics rt)

let test_demand_fetch_on_second_method () =
  let catalog =
    Catalog.create
      [
        { Catalog.oid = oid 0; cls = two_phase_driver; refs = [| oid 1 |] };
        { Catalog.oid = oid 1; cls = regions_class; refs = [||] };
      ]
  in
  (* First dirty the tail pages from another node, so they are stale at the
     driver's node when it acquires for touch_head. *)
  let rt = make_runtime catalog in
  Core.Runtime.submit rt ~at:0.0 ~node:2 ~oid:(oid 1) ~meth:"touch_tail" ~seed:1;
  Core.Runtime.submit rt ~at:5_000.0 ~node:3 ~oid:(oid 0) ~meth:"go" ~seed:2;
  Core.Runtime.run rt;
  let t = totals rt in
  Alcotest.(check int) "committed" 2 t.Dsm.Metrics.roots_committed;
  Alcotest.(check bool) "demand fetch happened" true (t.Dsm.Metrics.demand_fetches >= 1);
  (* The same run under OTEC fetches everything up front: no demand. *)
  let rt2 = make_runtime ~protocol:Dsm.Protocol.Otec catalog in
  Core.Runtime.submit rt2 ~at:0.0 ~node:2 ~oid:(oid 1) ~meth:"touch_tail" ~seed:1;
  Core.Runtime.submit rt2 ~at:5_000.0 ~node:3 ~oid:(oid 0) ~meth:"go" ~seed:2;
  Core.Runtime.run rt2;
  Alcotest.(check int) "otec: none" 0 (totals rt2).Dsm.Metrics.demand_fetches

let test_lotec_skips_unneeded_pages () =
  (* Node A dirties the tail; node B then runs touch_head. LOTEC must move
     strictly less data than OTEC for that second acquisition. *)
  let catalog = Catalog.create [ { Catalog.oid = oid 0; cls = regions_class; refs = [||] } ] in
  let run protocol =
    let rt = make_runtime ~protocol catalog in
    Core.Runtime.submit rt ~at:0.0 ~node:1 ~oid:(oid 0) ~meth:"touch_tail" ~seed:3;
    Core.Runtime.submit rt ~at:5_000.0 ~node:2 ~oid:(oid 0) ~meth:"touch_head" ~seed:4;
    Core.Runtime.run rt;
    Dsm.Metrics.total_data_bytes (Core.Runtime.metrics rt)
  in
  let lotec = run Dsm.Protocol.Lotec and otec = run Dsm.Protocol.Otec in
  Alcotest.(check bool)
    (Printf.sprintf "lotec (%d) < otec (%d)" lotec otec)
    true (lotec < otec)

let test_read_only_root_reports_no_dirty () =
  let catalog = Catalog.create [ { Catalog.oid = oid 0; cls = regions_class; refs = [||] } ] in
  let ro =
    compile
      (Obj_class.define ~name:"RO" ~attrs:[| attr 64 "x" |]
         ~methods:[ Method_ir.make ~name:"peek" ~body:[ Method_ir.Read 0 ] ]
         ~ref_slots:0)
  in
  let catalog2 =
    Catalog.create
      [
        { Catalog.oid = oid 0; cls = ro; refs = [||] };
      ]
  in
  ignore catalog;
  let rt = make_runtime catalog2 in
  Core.Runtime.submit rt ~at:0.0 ~node:1 ~oid:(oid 0) ~meth:"peek" ~seed:5;
  Core.Runtime.run rt;
  (match Core.Runtime.committed_history rt with
  | [ h ] ->
      Alcotest.(check int) "no writes" 0 (List.length h.Core.Serializability.writes);
      Alcotest.(check bool) "reads recorded" true (h.Core.Serializability.reads <> [])
  | _ -> Alcotest.fail "one family");
  (* GDO map must still say version 0 everywhere. *)
  let _, versions = Gdo.Directory.page_map (Core.Runtime.directory rt) (oid 0) in
  Alcotest.(check bool) "versions untouched" true (Array.for_all (( = ) 0) versions)

let test_multicast_push_accounting () =
  (* Warm three nodes' caches under RC-nested, then compare push bytes with
     and without multicast: the multicast run must count strictly fewer
     message bytes while leaving all caches equally fresh. *)
  let catalog = Catalog.create [ { Catalog.oid = oid 0; cls = regions_class; refs = [||] } ] in
  let run multicast =
    let config =
      { Core.Config.default with Core.Config.multicast_push = multicast; node_count = 4 }
    in
    let rt = make_runtime ~config ~protocol:Dsm.Protocol.Rc_nested catalog in
    List.iteri
      (fun i node ->
        Core.Runtime.submit rt ~at:(float_of_int (i * 5_000)) ~node ~oid:(oid 0)
          ~meth:"touch_both" ~seed:(10 + i))
      [ 0; 1; 2; 3 ];
    Core.Runtime.run rt;
    rt
  in
  let plain = run false and mc = run true in
  let bytes rt = Dsm.Metrics.total_data_bytes (Core.Runtime.metrics rt) in
  Alcotest.(check bool)
    (Printf.sprintf "multicast (%d) < unicast (%d)" (bytes mc) (bytes plain))
    true
    (bytes mc < bytes plain);
  Alcotest.(check bool) "pushes happened" true ((totals plain).Dsm.Metrics.eager_pushes >= 1);
  (* Both runs end with the same page-store contents on every node. *)
  for node = 0 to 3 do
    Alcotest.(check (list (pair int int)))
      (Printf.sprintf "node %d caches equal" node)
      (Dsm.Page_store.cached_pages (Core.Runtime.store plain ~node) (oid 0))
      (Dsm.Page_store.cached_pages (Core.Runtime.store mc ~node) (oid 0))
  done

let test_root_gives_up_when_out_of_retries () =
  (* Force guaranteed failure: abort probability 1 with no retries. *)
  let catalog = Catalog.create [ { Catalog.oid = oid 1; cls = regions_class; refs = [||] } ] in
  let driver =
    compile
      (Obj_class.define ~name:"D" ~attrs:[||]
         ~methods:
           [ Method_ir.make ~name:"go" ~body:[ Method_ir.Invoke { slot = 0; meth = "touch_head" } ] ]
         ~ref_slots:1)
  in
  let catalog =
    Catalog.create
      (Catalog.oids catalog
      |> List.map (fun o -> Catalog.find catalog o)
      |> List.cons { Catalog.oid = oid 0; cls = driver; refs = [| oid 1 |] })
  in
  let config =
    {
      Core.Config.default with
      Core.Config.abort_probability = 1.0;
      max_sub_retries = 0;
      max_root_retries = 1;
      root_retry_backoff_us = 10.0;
    }
  in
  let rt = make_runtime ~config catalog in
  Core.Runtime.submit rt ~at:0.0 ~node:1 ~oid:(oid 0) ~meth:"go" ~seed:6;
  Core.Runtime.run rt;
  (match Core.Runtime.results rt with
  | [ r ] ->
      Alcotest.(check bool) "gave up" true (r.Core.Runtime.outcome = Core.Runtime.Gave_up);
      Alcotest.(check int) "two attempts" 2 r.Core.Runtime.attempts
  | _ -> Alcotest.fail "one result");
  let t = totals rt in
  Alcotest.(check int) "counted as aborted" 1 t.Dsm.Metrics.roots_aborted;
  Alcotest.(check int) "nothing committed" 0 t.Dsm.Metrics.roots_committed;
  (* All locks must still be free: the aborts released everything. *)
  List.iter
    (fun o ->
      Alcotest.(check bool) "free" true
        (Gdo.Directory.lock_state (Core.Runtime.directory rt) o = Gdo.Directory.Free))
    (Catalog.oids catalog);
  (* And the store state must be the initial one (all writes undone). *)
  let _, versions = Gdo.Directory.page_map (Core.Runtime.directory rt) (oid 1) in
  Alcotest.(check bool) "all undone" true (Array.for_all (( = ) 0) versions)

let test_colocated_families_contend_via_gdo () =
  (* Two families on the same node contending for the same object must go
     through the GDO (Algorithm 4.1's last case) and still serialize. *)
  let catalog = Catalog.create [ { Catalog.oid = oid 0; cls = regions_class; refs = [||] } ] in
  let rt = make_runtime catalog in
  Core.Runtime.submit rt ~at:0.0 ~node:1 ~oid:(oid 0) ~meth:"touch_both" ~seed:7;
  Core.Runtime.submit rt ~at:1.0 ~node:1 ~oid:(oid 0) ~meth:"touch_both" ~seed:8;
  Core.Runtime.run rt;
  let t = totals rt in
  Alcotest.(check int) "both committed" 2 t.Dsm.Metrics.roots_committed;
  Alcotest.(check int) "two global acquisitions" 2 t.Dsm.Metrics.global_acquisitions;
  match Core.Runtime.check_serializable rt with
  | Core.Serializability.Serializable _ -> ()
  | Core.Serializability.Cyclic _ -> Alcotest.fail "not serializable"

let test_grant_bytes_scale_with_page_map () =
  (* The grant message ships the page map, so acquiring a big object costs
     more control bytes than acquiring a small one. *)
  let small =
    compile
      (Obj_class.define ~name:"S" ~attrs:[| attr 64 "x" |]
         ~methods:[ Method_ir.make ~name:"m" ~body:[ Method_ir.Write 0 ] ]
         ~ref_slots:0)
  in
  let big =
    compile
      (Obj_class.define ~name:"B"
         ~attrs:[| attr (40 * 4096) "blob" |]
         ~methods:[ Method_ir.make ~name:"m" ~body:[ Method_ir.Write 0 ] ]
         ~ref_slots:0)
  in
  let catalog =
    Catalog.create
      [
        { Catalog.oid = oid 0; cls = small; refs = [||] };
        { Catalog.oid = oid 1; cls = big; refs = [||] };
      ]
  in
  let rt = make_runtime catalog in
  (* Node 2 is home to neither object (homes are 0 and 1). *)
  Core.Runtime.submit rt ~at:0.0 ~node:2 ~oid:(oid 0) ~meth:"m" ~seed:9;
  Core.Runtime.submit rt ~at:0.0 ~node:2 ~oid:(oid 1) ~meth:"m" ~seed:10;
  Core.Runtime.run rt;
  let m = Core.Runtime.metrics rt in
  let ctrl o = (Dsm.Metrics.per_object m (oid o)).Dsm.Metrics.control_bytes in
  Alcotest.(check bool)
    (Printf.sprintf "big grant (%d) > small grant (%d)" (ctrl 1) (ctrl 0))
    true
    (ctrl 1 > ctrl 0)

(* Mutually recursive classes: A.m invokes B.m which invokes A.m... The
   reference graph is cyclic, so the static check rejects it; with the
   run-time policy the catalog is admitted and the family is rejected only
   when an execution actually recurses. *)
let recursive_catalog () =
  let ping =
    compile
      (Obj_class.define ~name:"Ping"
         ~attrs:[| attr 64 "x" |]
         ~methods:
           [
             Method_ir.make ~name:"bounce"
               ~body:[ Method_ir.Write 0; Method_ir.Invoke { slot = 0; meth = "bounce" } ];
             Method_ir.make ~name:"local" ~body:[ Method_ir.Write 0 ];
             Method_ir.make ~name:"once"
               ~body:[ Method_ir.Invoke { slot = 0; meth = "local" } ];
           ]
         ~ref_slots:1)
  in
  Catalog.create
    [
      { Catalog.oid = oid 0; cls = ping; refs = [| oid 1 |] };
      { Catalog.oid = oid 1; cls = ping; refs = [| oid 0 |] };
    ]

let test_static_recursion_rejection () =
  let catalog = recursive_catalog () in
  try
    ignore (make_runtime catalog);
    Alcotest.fail "cyclic catalog must be rejected statically"
  with Invalid_argument msg ->
    Alcotest.(check bool) "mentions recursion" true
      (String.length msg > 0
      &&
      let rec contains i =
        i + 9 <= String.length msg && (String.sub msg i 9 = "recursive" || contains (i + 1))
      in
      contains 0)

let test_runtime_recursion_detection () =
  let catalog = recursive_catalog () in
  let config =
    {
      Core.Config.default with
      Core.Config.allow_recursive_catalogs = true;
      max_root_retries = 3;
    }
  in
  let rt = make_runtime ~config catalog in
  (* "bounce" recurses O0 -> O1 -> O0: must be rejected, exactly once (no
     retries — the failure is deterministic). "once" does not recurse and
     must commit despite the cyclic catalog. *)
  Core.Runtime.submit rt ~at:0.0 ~node:1 ~oid:(oid 0) ~meth:"bounce" ~seed:20;
  Core.Runtime.submit rt ~at:10_000.0 ~node:2 ~oid:(oid 1) ~meth:"once" ~seed:21;
  Core.Runtime.run rt;
  let by_meth m =
    List.find (fun (r : Core.Runtime.root_result) -> r.Core.Runtime.meth = m)
      (Core.Runtime.results rt)
  in
  let bounce = by_meth "bounce" in
  Alcotest.(check bool) "bounce rejected" true
    (bounce.Core.Runtime.outcome = Core.Runtime.Gave_up);
  Alcotest.(check int) "no retries for deterministic failure" 1 bounce.Core.Runtime.attempts;
  let once = by_meth "once" in
  Alcotest.(check bool) "non-recursive run commits" true
    (once.Core.Runtime.outcome = Core.Runtime.Committed);
  (* The rejected family must have left no state behind. *)
  List.iter
    (fun o ->
      Alcotest.(check bool) "lock free" true
        (Gdo.Directory.lock_state (Core.Runtime.directory rt) o = Gdo.Directory.Free))
    (Catalog.oids catalog);
  match Core.Runtime.check_serializable rt with
  | Core.Serializability.Serializable _ -> ()
  | Core.Serializability.Cyclic _ -> Alcotest.fail "not serializable"

let test_runtime_recursion_undoes_writes () =
  (* bounce writes O0's page before recursing; the rejection must undo it. *)
  let catalog = recursive_catalog () in
  let config =
    { Core.Config.default with Core.Config.allow_recursive_catalogs = true }
  in
  let rt = make_runtime ~config catalog in
  Core.Runtime.submit rt ~at:0.0 ~node:1 ~oid:(oid 0) ~meth:"bounce" ~seed:22;
  Core.Runtime.run rt;
  let _, versions = Gdo.Directory.page_map (Core.Runtime.directory rt) (oid 0) in
  Alcotest.(check bool) "gdo map untouched" true (Array.for_all (( = ) 0) versions);
  (* The executing node's local store must also be back to the initial
     version (the uncommitted write was undone locally). *)
  Alcotest.(check bool) "local store undone" true
    (Dsm.Page_store.version (Core.Runtime.store rt ~node:1) (oid 0) ~page:0 <= 0)

let test_slow_link_abort_retry_race () =
  (* Regression for a message-ordering race: at 10 Mbps a small retry
     acquire used to overtake the larger in-flight release from the same
     node (latency grows with size), resurrecting a lock the GDO was about
     to free and corrupting the holder state. Channel-FIFO delivery fixes
     it; this workload (slow link + heavy failure injection + contention)
     reproduced the corruption before the fix. *)
  let spec =
    {
      Workload.Spec.default with
      Workload.Spec.object_count = 8;
      root_count = 40;
      node_count = 4;
      seed = 606;
    }
  in
  let config =
    {
      Core.Config.default with
      Core.Config.link = Sim.Network.link_10mbps;
      abort_probability = 0.25;
      node_count = 4;
    }
  in
  let wl = Workload.Generator.generate spec ~page_size:config.Core.Config.page_size in
  let run = Experiments.Runner.execute ~config ~protocol:Dsm.Protocol.Lotec wl in
  let rt = run.Experiments.Runner.runtime in
  let t = Dsm.Metrics.totals (Core.Runtime.metrics rt) in
  Alcotest.(check bool) "aborts exercised" true (t.Dsm.Metrics.sub_aborts > 0);
  Alcotest.(check int) "all resolved" 40
    (t.Dsm.Metrics.roots_committed + t.Dsm.Metrics.roots_aborted);
  List.iter
    (fun o ->
      Alcotest.(check bool) "lock state clean" true
        (Gdo.Directory.lock_state (Core.Runtime.directory rt) o = Gdo.Directory.Free
        && Gdo.Directory.holders (Core.Runtime.directory rt) o = []))
    (Catalog.oids (Core.Runtime.catalog rt))

let test_prefetch_transfer_completes_before_access () =
  (* Regression: with optimistic pre-acquisition, a child used to be granted
     the prefetched lock locally while the prefetch fiber's pages were still
     on the wire — under COTEC/OTEC (no demand fetch) the body then hit
     stale pages. Every grant path now awaits the in-flight acquisition
     transfer. Run eager protocols with prefetch under contention. *)
  let spec =
    {
      Workload.Scenarios.medium_high with
      Workload.Spec.root_count = 60;
      seed = 5;
      access_skew = 0.8;
    }
  in
  List.iter
    (fun protocol ->
      let config =
        {
          Core.Config.default with
          Core.Config.prefetch = true;
          abort_probability = 0.1;
          node_count = spec.Workload.Spec.node_count;
        }
      in
      let wl = Workload.Generator.generate spec ~page_size:config.Core.Config.page_size in
      let run = Experiments.Runner.execute ~config ~protocol wl in
      let t = Dsm.Metrics.totals (Experiments.Runner.metrics run) in
      Alcotest.(check int)
        (Format.asprintf "%a all resolved" Dsm.Protocol.pp protocol)
        60
        (t.Dsm.Metrics.roots_committed + t.Dsm.Metrics.roots_aborted);
      Alcotest.(check int)
        (Format.asprintf "%a no demand fetches" Dsm.Protocol.pp protocol)
        0 t.Dsm.Metrics.demand_fetches)
    [ Dsm.Protocol.Cotec; Dsm.Protocol.Otec ]

let test_trace_sequence_for_simple_run () =
  let catalog = Catalog.create [ { Catalog.oid = oid 0; cls = regions_class; refs = [||] } ] in
  let config = { Core.Config.default with Core.Config.trace_capacity = 1000 } in
  let rt = make_runtime ~config catalog in
  Core.Runtime.submit rt ~at:0.0 ~node:1 ~oid:(oid 0) ~meth:"touch_head" ~seed:11;
  Core.Runtime.run rt;
  match Core.Runtime.trace rt with
  | None -> Alcotest.fail "trace expected"
  | Some tr ->
      let cats =
        List.map (fun e -> Dsm.Event.category e.Sim.Trace.data) (Sim.Trace.events tr)
      in
      (* lock grant, then transfer, then commit — in that order. *)
      let index c =
        let rec find i = function
          | [] -> -1
          | x :: rest -> if x = c then i else find (i + 1) rest
        in
        find 0 cats
      in
      Alcotest.(check bool) "lock before transfer" true (index "lock" < index "transfer");
      Alcotest.(check bool) "transfer before commit" true (index "transfer" < index "commit")

let tests =
  [
    ( "runtime-edge",
      [
        Alcotest.test_case "demand fetch on second method" `Quick
          test_demand_fetch_on_second_method;
        Alcotest.test_case "lotec skips unneeded pages" `Quick test_lotec_skips_unneeded_pages;
        Alcotest.test_case "read-only root" `Quick test_read_only_root_reports_no_dirty;
        Alcotest.test_case "multicast push accounting" `Quick test_multicast_push_accounting;
        Alcotest.test_case "root gives up" `Quick test_root_gives_up_when_out_of_retries;
        Alcotest.test_case "colocated families" `Quick test_colocated_families_contend_via_gdo;
        Alcotest.test_case "grant bytes scale with map" `Quick test_grant_bytes_scale_with_page_map;
        Alcotest.test_case "static recursion rejection" `Quick test_static_recursion_rejection;
        Alcotest.test_case "runtime recursion detection" `Quick test_runtime_recursion_detection;
        Alcotest.test_case "recursion undoes writes" `Quick test_runtime_recursion_undoes_writes;
        Alcotest.test_case "slow-link abort/retry race" `Quick test_slow_link_abort_retry_race;
        Alcotest.test_case "prefetch transfer race" `Quick
          test_prefetch_transfer_completes_before_access;
        Alcotest.test_case "trace sequence" `Quick test_trace_sequence_for_simple_run;
      ] );
  ]
