(* Tests for the trace ring buffer and the engine semaphore, plus their
   runtime integrations (protocol-event tracing, CPU-limited mode). *)

open Sim

(* ---------- Trace ---------- *)

let test_trace_basic () =
  let tr = Trace.create ~capacity:10 in
  Trace.record tr ~time:1.0 "one";
  Trace.record tr ~time:2.0 "two";
  Alcotest.(check int) "length" 2 (Trace.length tr);
  Alcotest.(check int) "total" 2 (Trace.total tr);
  Alcotest.(check int) "dropped" 0 (Trace.dropped tr);
  match Trace.events tr with
  | [ e1; e2 ] ->
      Alcotest.(check string) "order" "one" e1.Trace.data;
      Alcotest.(check string) "order2" "two" e2.Trace.data
  | _ -> Alcotest.fail "two events"

let test_trace_ring_eviction () =
  let tr = Trace.create ~capacity:3 in
  for i = 1 to 5 do
    Trace.record tr ~time:(float_of_int i) (string_of_int i)
  done;
  Alcotest.(check int) "capped" 3 (Trace.length tr);
  Alcotest.(check int) "dropped" 2 (Trace.dropped tr);
  Alcotest.(check (list string)) "oldest evicted" [ "3"; "4"; "5" ]
    (List.map (fun e -> e.Trace.data) (Trace.events tr))

let test_trace_latest () =
  let tr = Trace.create ~capacity:10 in
  for i = 1 to 6 do
    Trace.record tr ~time:(float_of_int i) (string_of_int i)
  done;
  Alcotest.(check (list string)) "last two" [ "5"; "6" ]
    (List.map (fun e -> e.Trace.data) (Trace.latest tr 2));
  Alcotest.(check int) "latest more than length" 6 (List.length (Trace.latest tr 100))

let test_trace_pp_entry_and_clear () =
  let tr = Trace.create ~capacity:4 in
  Trace.record tr ~time:12.5 "lock: object 3 to T1";
  (match Trace.events tr with
  | [ e ] ->
      Alcotest.(check string) "pp" "[      12.5us] lock: object 3 to T1"
        (Format.asprintf "%a" (Trace.pp_entry Format.pp_print_string) e)
  | _ -> Alcotest.fail "one event");
  Trace.clear tr;
  Alcotest.(check int) "cleared" 0 (Trace.length tr)

let test_trace_counts () =
  let tr = Trace.create ~capacity:10 in
  List.iter (fun c -> Trace.record tr ~time:0.0 c) [ "b"; "a"; "b"; "b" ];
  Alcotest.(check (list (pair string int))) "counts" [ ("a", 1); ("b", 3) ]
    (Trace.counts tr ~label:Fun.id)

let test_trace_bad_capacity () =
  Alcotest.check_raises "zero" (Invalid_argument "Trace.create: capacity must be positive")
    (fun () -> ignore (Trace.create ~capacity:0))

(* ---------- Semaphore ---------- *)

let test_semaphore_mutual_exclusion () =
  let e = Engine.create () in
  let sem = Engine.Semaphore.create ~permits:1 in
  let active = ref 0 and max_active = ref 0 and order = ref [] in
  for i = 1 to 3 do
    Engine.spawn e (fun () ->
        Engine.Semaphore.with_permit sem (fun () ->
            incr active;
            max_active := max !max_active !active;
            order := i :: !order;
            Engine.wait 10.0;
            decr active))
  done;
  Engine.run e;
  Alcotest.(check int) "never concurrent" 1 !max_active;
  Alcotest.(check (list int)) "fifo order" [ 1; 2; 3 ] (List.rev !order);
  Alcotest.(check (float 0.001)) "serialised time" 30.0 (Engine.now e)

let test_semaphore_counting () =
  let e = Engine.create () in
  let sem = Engine.Semaphore.create ~permits:2 in
  let max_active = ref 0 and active = ref 0 in
  for _ = 1 to 4 do
    Engine.spawn e (fun () ->
        Engine.Semaphore.with_permit sem (fun () ->
            incr active;
            max_active := max !max_active !active;
            Engine.wait 10.0;
            decr active))
  done;
  Engine.run e;
  Alcotest.(check int) "two at a time" 2 !max_active;
  Alcotest.(check (float 0.001)) "two batches" 20.0 (Engine.now e);
  Alcotest.(check int) "permits restored" 2 (Engine.Semaphore.available sem)

let test_semaphore_release_guard () =
  let sem = Engine.Semaphore.create ~permits:1 in
  Alcotest.check_raises "over-release" (Invalid_argument "Semaphore.release: too many releases")
    (fun () -> Engine.Semaphore.release sem)

let test_semaphore_releases_on_exception () =
  let e = Engine.create () in
  let sem = Engine.Semaphore.create ~permits:1 in
  let second_ran = ref false in
  Engine.spawn e (fun () ->
      try Engine.Semaphore.with_permit sem (fun () -> raise Exit) with Exit -> ());
  Engine.spawn e (fun () ->
      Engine.Semaphore.with_permit sem (fun () -> second_ran := true));
  Engine.run e;
  Alcotest.(check bool) "permit recovered" true !second_ran

let test_semaphore_bad_permits () =
  Alcotest.check_raises "zero" (Invalid_argument "Semaphore.create: permits must be positive")
    (fun () -> ignore (Engine.Semaphore.create ~permits:0))

(* ---------- Runtime integration ---------- *)

let run_workload config =
  let spec =
    { Workload.Spec.default with Workload.Spec.object_count = 8; root_count = 20; seed = 2 }
  in
  let wl = Workload.Generator.generate spec ~page_size:config.Core.Config.page_size in
  Experiments.Runner.execute ~config ~protocol:Dsm.Protocol.Lotec wl

let test_runtime_tracing () =
  let config = { Core.Config.default with Core.Config.trace_capacity = 10_000 } in
  let run = run_workload config in
  match Core.Runtime.trace run.Experiments.Runner.runtime with
  | None -> Alcotest.fail "trace expected"
  | Some tr ->
      let cats = List.map fst (Sim.Trace.counts tr ~label:Dsm.Event.category) in
      Alcotest.(check bool) "has commits" true (List.mem "commit" cats);
      Alcotest.(check bool) "has locks" true (List.mem "lock" cats);
      Alcotest.(check bool) "has transfers" true (List.mem "transfer" cats);
      (* Timestamps are non-decreasing. *)
      let times = List.map (fun e -> e.Sim.Trace.time) (Sim.Trace.events tr) in
      let rec mono = function
        | a :: b :: rest -> a <= b && mono (b :: rest)
        | _ -> true
      in
      Alcotest.(check bool) "monotone timestamps" true (mono times)

let test_runtime_no_trace_by_default () =
  let run = run_workload Core.Config.default in
  Alcotest.(check bool) "no trace" true
    (Core.Runtime.trace run.Experiments.Runner.runtime = None)

let test_runtime_cpu_limited () =
  (* CPU-limited execution must still complete and be serializable, and the
     makespan cannot shrink relative to the infinite-CPU model. *)
  let free = run_workload Core.Config.default in
  let limited = run_workload { Core.Config.default with Core.Config.cpu_limited = true } in
  let time r = Dsm.Metrics.completion_time_us (Experiments.Runner.metrics r) in
  Alcotest.(check bool) "completes no faster" true (time limited >= time free);
  Alcotest.(check int) "all committed" 20
    (Dsm.Metrics.totals (Experiments.Runner.metrics limited)).Dsm.Metrics.roots_committed

let tests =
  [
    ( "trace",
      [
        Alcotest.test_case "basic" `Quick test_trace_basic;
        Alcotest.test_case "ring eviction" `Quick test_trace_ring_eviction;
        Alcotest.test_case "latest" `Quick test_trace_latest;
        Alcotest.test_case "pp entry and clear" `Quick test_trace_pp_entry_and_clear;
        Alcotest.test_case "counts" `Quick test_trace_counts;
        Alcotest.test_case "bad capacity" `Quick test_trace_bad_capacity;
        Alcotest.test_case "semaphore mutual exclusion" `Quick test_semaphore_mutual_exclusion;
        Alcotest.test_case "semaphore counting" `Quick test_semaphore_counting;
        Alcotest.test_case "semaphore release guard" `Quick test_semaphore_release_guard;
        Alcotest.test_case "semaphore exception safety" `Quick test_semaphore_releases_on_exception;
        Alcotest.test_case "semaphore bad permits" `Quick test_semaphore_bad_permits;
        Alcotest.test_case "runtime tracing" `Quick test_runtime_tracing;
        Alcotest.test_case "runtime no trace by default" `Quick test_runtime_no_trace_by_default;
        Alcotest.test_case "runtime cpu limited" `Quick test_runtime_cpu_limited;
      ] );
  ]
