(* Tests for the experiment harness: runner, figure generators, summary,
   ablations, report rendering. Uses shrunk scenarios to stay fast. *)

let small name contention size =
  (name, Workload.Scenarios.spec ~seed:11 ~root_count:30 contention size)

let test_report_render () =
  let s =
    Experiments.Report.render ~header:[ "a"; "bb" ]
      [ [ "1"; "2" ]; [ "333"; "4" ] ]
  in
  let lines = String.split_on_char '\n' s in
  Alcotest.(check int) "4 lines" 4 (List.length lines);
  Alcotest.(check bool) "right aligned" true (List.nth lines 2 = "  1   2")

let test_report_formats () =
  Alcotest.(check string) "bytes" "1,234,567" (Experiments.Report.fmt_bytes 1234567);
  Alcotest.(check string) "small bytes" "42" (Experiments.Report.fmt_bytes 42);
  Alcotest.(check string) "us" "3.1" (Experiments.Report.fmt_us 3.14);
  Alcotest.(check string) "pct" "-12.5%" (Experiments.Report.fmt_pct (-12.5))

let test_bar_chart () =
  let chart =
    Experiments.Report.bar_chart ~width:10
      [
        { Experiments.Report.group = "O1"; bars = [ ("A", 100.0); ("B", 50.0) ] };
        { Experiments.Report.group = "O2"; bars = [ ("A", 10.0); ("B", 0.0) ] };
      ]
  in
  let lines = String.split_on_char '\n' (String.trim chart) in
  Alcotest.(check int) "four bars" 4 (List.length lines);
  (* Largest value gets the full width. *)
  let first = List.hd lines in
  Alcotest.(check bool) "max bar full width" true
    (String.length (String.concat "" (String.split_on_char ' ' first)) >= 10);
  let count_hashes s = String.fold_left (fun acc c -> if c = '#' then acc + 1 else acc) 0 s in
  Alcotest.(check int) "full bar" 10 (count_hashes (List.nth lines 0));
  Alcotest.(check int) "half bar" 5 (count_hashes (List.nth lines 1));
  Alcotest.(check int) "min bar at least 1" 1 (count_hashes (List.nth lines 2));
  Alcotest.(check int) "zero bar empty" 0 (count_hashes (List.nth lines 3))

let test_fig_bytes_chart () =
  let _, spec = small "c" Workload.Scenarios.High Workload.Scenarios.Medium in
  let r = Experiments.Fig_bytes.run ~name:"chart-fig" spec in
  let s = Format.asprintf "%a" (Experiments.Fig_bytes.pp_chart ~objects:4) r in
  Alcotest.(check bool) "has bars" true (String.contains s '#');
  Alcotest.(check bool) "mentions protocols" true
    (String.length s > 0
    &&
    let rec contains i =
      i + 5 <= String.length s && (String.sub s i 5 = "LOTEC" || contains (i + 1))
    in
    contains 0)

let test_runner_executes () =
  let name, spec = small "t" Workload.Scenarios.High Workload.Scenarios.Medium in
  ignore name;
  let wl = Workload.Generator.generate spec ~page_size:4096 in
  let run = Experiments.Runner.execute ~protocol:Dsm.Protocol.Lotec wl in
  let m = Experiments.Runner.metrics run in
  Alcotest.(check int) "all roots committed" 30
    (Dsm.Metrics.totals m).Dsm.Metrics.roots_committed;
  Alcotest.(check bool) "traffic recorded" true (Dsm.Metrics.total_bytes m > 0)

let fig_result () =
  let _, spec = small "fig" Workload.Scenarios.High Workload.Scenarios.Medium in
  Experiments.Fig_bytes.run ~name:"test-fig" spec

let test_fig_bytes_structure () =
  let r = fig_result () in
  Alcotest.(check int) "three series" 3 (List.length r.Experiments.Fig_bytes.series);
  List.iter
    (fun (s : Experiments.Fig_bytes.series) ->
      Alcotest.(check int) "per-object rows" 20 (List.length s.Experiments.Fig_bytes.bytes_per_object);
      let sum = List.fold_left (fun acc (_, b) -> acc + b) 0 s.Experiments.Fig_bytes.bytes_per_object in
      Alcotest.(check bool) "object bytes bounded by total" true
        (sum <= s.Experiments.Fig_bytes.total_bytes))
    r.Experiments.Fig_bytes.series;
  (* The headline ordering. *)
  match r.Experiments.Fig_bytes.series with
  | [ c; o; l ] ->
      Alcotest.(check bool) "otec <= cotec" true
        (o.Experiments.Fig_bytes.total_bytes <= c.Experiments.Fig_bytes.total_bytes);
      Alcotest.(check bool) "lotec <= otec" true
        (l.Experiments.Fig_bytes.total_bytes <= o.Experiments.Fig_bytes.total_bytes)
  | _ -> Alcotest.fail "series order"

let test_fig_bytes_top_objects () =
  let r = fig_result () in
  let top = Experiments.Fig_bytes.top_objects r 5 in
  Alcotest.(check int) "five objects" 5 (List.length top);
  let sorted = List.sort Objmodel.Oid.compare top in
  Alcotest.(check bool) "ascending" true (top = sorted)

let test_fig_bytes_pp () =
  let r = fig_result () in
  let s = Format.asprintf "%a" Experiments.Fig_bytes.pp r in
  Alcotest.(check bool) "mentions totals" true
    (String.length s > 0
    &&
    let rec contains i =
      i + 5 <= String.length s && (String.sub s i 5 = "TOTAL" || contains (i + 1))
    in
    contains 0)

let test_fig_time_grid () =
  let r = fig_result () in
  let ft = Experiments.Fig_time.of_runs ~name:"t6" ~bandwidth_bps:1e7 r.Experiments.Fig_bytes.runs in
  Alcotest.(check int) "five software costs" 5 (List.length ft.Experiments.Fig_time.per_object);
  Alcotest.(check int) "five total cells" 5 (List.length ft.Experiments.Fig_time.totals);
  List.iter
    (fun (c : Experiments.Fig_time.cell) ->
      Alcotest.(check int) "three protocols" 3 (List.length c.Experiments.Fig_time.time_us);
      List.iter
        (fun (_, t) -> Alcotest.(check bool) "positive time" true (t > 0.0))
        c.Experiments.Fig_time.time_us)
    ft.Experiments.Fig_time.totals;
  (* Times decrease as software cost drops (same bytes, fewer overheads). *)
  let lotec_times =
    List.map (fun (c : Experiments.Fig_time.cell) ->
        List.assoc Dsm.Protocol.Lotec c.Experiments.Fig_time.time_us)
      ft.Experiments.Fig_time.totals
  in
  let rec decreasing = function
    | a :: b :: rest -> a >= b && decreasing (b :: rest)
    | _ -> true
  in
  Alcotest.(check bool) "monotone in software cost" true (decreasing lotec_times)

let test_fig_time_bandwidth_effect () =
  (* At slow links LOTEC (fewest bytes) must beat COTEC on total time. *)
  let r = fig_result () in
  let slow = Experiments.Fig_time.of_runs ~name:"slow" ~bandwidth_bps:1e7 r.Experiments.Fig_bytes.runs in
  let cell = List.hd slow.Experiments.Fig_time.totals in
  let time p = List.assoc p cell.Experiments.Fig_time.time_us in
  Alcotest.(check bool) "lotec wins at 10 Mbps" true
    (time Dsm.Protocol.Lotec < time Dsm.Protocol.Cotec)

let test_fig_time_crossover_none_or_some () =
  let r = fig_result () in
  let ft = Experiments.Fig_time.of_runs ~name:"x" ~bandwidth_bps:1e9 r.Experiments.Fig_bytes.runs in
  (* crossover returns either a grid value or None; both acceptable, but it
     must come from the grid. *)
  match Experiments.Fig_time.crossover ft ~faster:Dsm.Protocol.Lotec ~than:Dsm.Protocol.Otec with
  | None -> ()
  | Some v ->
      Alcotest.(check bool) "from grid" true (List.mem v Experiments.Fig_time.software_costs_us)

let test_summary_ratios () =
  let r = fig_result () in
  let s = Experiments.Summary.of_figures [ r ] in
  match s.Experiments.Summary.rows with
  | [ row ] ->
      Alcotest.(check bool) "otec reduction negative" true
        (row.Experiments.Summary.otec_vs_cotec_pct <= 0.0);
      Alcotest.(check bool) "lotec reduction negative" true
        (row.Experiments.Summary.lotec_vs_otec_pct <= 0.0);
      Alcotest.(check bool) "bytes ordered" true
        (row.Experiments.Summary.lotec_bytes <= row.Experiments.Summary.otec_bytes
        && row.Experiments.Summary.otec_bytes <= row.Experiments.Summary.cotec_bytes)
  | _ -> Alcotest.fail "one row"

let test_summary_skips_incomplete () =
  let _, spec = small "o" Workload.Scenarios.High Workload.Scenarios.Medium in
  let only_lotec =
    Experiments.Fig_bytes.run ~protocols:[ Dsm.Protocol.Lotec ] ~name:"partial" spec
  in
  let s = Experiments.Summary.of_figures [ only_lotec ] in
  Alcotest.(check int) "skipped" 0 (List.length s.Experiments.Summary.rows)

let test_ablation_rc () =
  let _, spec = small "rc" Workload.Scenarios.High Workload.Scenarios.Medium in
  let r = Experiments.Ablation.rc_comparison ~spec () in
  Alcotest.(check int) "five rows" 5 (List.length r.Experiments.Ablation.rows);
  let find l =
    List.find (fun (row : Experiments.Ablation.row) -> row.Experiments.Ablation.label = l)
      r.Experiments.Ablation.rows
  in
  let rc = find "RC-NESTED" and lotec = find "LOTEC" in
  Alcotest.(check bool) "rc sends more bytes" true
    (rc.Experiments.Ablation.total_bytes > lotec.Experiments.Ablation.total_bytes);
  let mc = find "RC-NESTED+multicast" in
  Alcotest.(check bool) "multicast fewer bytes than rc" true
    (mc.Experiments.Ablation.total_bytes < rc.Experiments.Ablation.total_bytes)

let test_ablation_replication () =
  let _, spec = small "rep" Workload.Scenarios.High Workload.Scenarios.Medium in
  let r = Experiments.Ablation.replication_comparison ~spec () in
  match r.Experiments.Ablation.rows with
  | [ r0; r1; r2 ] ->
      (* Each replica adds control messages, asynchronously (latency flat). *)
      Alcotest.(check bool) "messages grow" true
        (r0.Experiments.Ablation.total_messages < r1.Experiments.Ablation.total_messages
        && r1.Experiments.Ablation.total_messages < r2.Experiments.Ablation.total_messages);
      Alcotest.(check bool) "bytes grow" true
        (r0.Experiments.Ablation.total_bytes < r1.Experiments.Ablation.total_bytes);
      let flat a b = Float.abs (a -. b) /. Float.max a 1.0 < 0.02 in
      Alcotest.(check bool) "latency unaffected" true
        (flat r0.Experiments.Ablation.mean_root_latency_us
           r2.Experiments.Ablation.mean_root_latency_us)
  | _ -> Alcotest.fail "three rows"

let test_ablation_prefetch () =
  let _, spec = small "pf" Workload.Scenarios.Moderate Workload.Scenarios.Medium in
  let r = Experiments.Ablation.prefetch_comparison ~spec () in
  Alcotest.(check int) "two rows for custom spec" 2 (List.length r.Experiments.Ablation.rows);
  List.iter
    (fun (row : Experiments.Ablation.row) ->
      Alcotest.(check bool) "latency recorded" true (row.Experiments.Ablation.mean_root_latency_us > 0.0))
    r.Experiments.Ablation.rows

let tests =
  [
    ( "experiments",
      [
        Alcotest.test_case "report render" `Quick test_report_render;
        Alcotest.test_case "report formats" `Quick test_report_formats;
        Alcotest.test_case "bar chart" `Quick test_bar_chart;
        Alcotest.test_case "fig bytes chart" `Quick test_fig_bytes_chart;
        Alcotest.test_case "runner executes" `Quick test_runner_executes;
        Alcotest.test_case "fig bytes structure" `Quick test_fig_bytes_structure;
        Alcotest.test_case "fig bytes top objects" `Quick test_fig_bytes_top_objects;
        Alcotest.test_case "fig bytes pp" `Quick test_fig_bytes_pp;
        Alcotest.test_case "fig time grid" `Quick test_fig_time_grid;
        Alcotest.test_case "fig time bandwidth effect" `Quick test_fig_time_bandwidth_effect;
        Alcotest.test_case "fig time crossover" `Quick test_fig_time_crossover_none_or_some;
        Alcotest.test_case "summary ratios" `Quick test_summary_ratios;
        Alcotest.test_case "summary skips incomplete" `Quick test_summary_skips_incomplete;
        Alcotest.test_case "ablation rc" `Slow test_ablation_rc;
        Alcotest.test_case "ablation replication" `Slow test_ablation_replication;
        Alcotest.test_case "ablation prefetch" `Slow test_ablation_prefetch;
      ] );
  ]
