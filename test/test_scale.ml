(* The scale experiment: streaming-mode semantics, the engine profile
   plumbing, and the 100k-root determinism golden — the same seed must
   produce a byte-identical Dsm.Metrics summary whether or not the
   bounded-memory (streaming) mode is on, for every protocol. A
   divergence would mean either the engine refactor broke determinism at
   scale or streaming changed what a run computes. *)

let submit_all rt (wl : Workload.Generator.t) =
  List.iter
    (fun (r : Workload.Generator.root_spec) ->
      Core.Runtime.submit rt ~at:r.at ~node:r.node ~oid:r.oid ~meth:r.meth ~seed:r.seed)
    wl.Workload.Generator.roots

let run_summary ~streaming ~protocol spec =
  let config =
    {
      Core.Config.default with
      Core.Config.protocol;
      node_count = spec.Workload.Spec.node_count;
      streaming;
    }
  in
  let wl = Workload.Generator.generate spec ~page_size:config.Core.Config.page_size in
  let rt = Core.Runtime.create ~config ~catalog:wl.Workload.Generator.catalog in
  submit_all rt wl;
  Core.Runtime.run rt;
  (Format.asprintf "%a" Dsm.Metrics.pp_summary (Core.Runtime.metrics rt), rt)

(* Streaming drops per-root results and the serializability history but
   must not change anything the metrics ledger sees. *)
let test_streaming_semantics () =
  let spec = Experiments.Scale.spec_for ~roots:500 ~nodes:8 in
  let plain, rt_plain = run_summary ~streaming:false ~protocol:Dsm.Protocol.Lotec spec in
  let streamed, rt_stream = run_summary ~streaming:true ~protocol:Dsm.Protocol.Lotec spec in
  Alcotest.(check string) "summary byte-identical" plain streamed;
  Alcotest.(check int) "plain retains results" 500
    (List.length (Core.Runtime.results rt_plain));
  Alcotest.(check int) "streaming retains none" 0
    (List.length (Core.Runtime.results rt_stream));
  (match Core.Runtime.check_serializable rt_stream with
  | Core.Serializability.Serializable _ -> ()
  | Core.Serializability.Cyclic _ -> Alcotest.fail "empty history cannot be cyclic");
  match Core.Runtime.check_serializable rt_plain with
  | Core.Serializability.Serializable _ -> ()
  | Core.Serializability.Cyclic _ -> Alcotest.fail "plain run must be serializable"

let test_streaming_requires_fault_free () =
  let faults = { Sim.Fault.none with Sim.Fault.drop_probability = 0.1 } in
  let config =
    { Core.Config.default with Core.Config.streaming = true; faults = Some faults }
  in
  match Core.Config.validate config with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "streaming with faults must be rejected"

let test_forget_family () =
  let tree = Txn.Txn_tree.create () in
  let root = Txn.Txn_tree.create_root tree ~node:0 in
  let child = Txn.Txn_tree.create_child tree ~parent:root in
  let _grandchild = Txn.Txn_tree.create_child tree ~parent:child in
  let other = Txn.Txn_tree.create_root tree ~node:1 in
  Alcotest.(check int) "family of three" 3 (Txn.Txn_tree.family_size tree root);
  Txn.Txn_tree.forget_family tree root;
  Alcotest.(check int) "ids never reused" 4 (Txn.Txn_tree.count tree);
  Alcotest.(check bool) "other family intact" true (Txn.Txn_tree.is_root tree other);
  Alcotest.check_raises "forgotten id unknown"
    (Invalid_argument (Format.asprintf "Txn_tree: unknown transaction %a" Txn.Txn_id.pp root))
    (fun () -> ignore (Txn.Txn_tree.status tree root))

(* The generator's documented ascending-by-[at] contract, at a size well
   past List.init's reverse-evaluation threshold (~10k) — the original
   [List.init] construction silently handed the last root the first
   arrival time above that size, which any arrival-order consumer (the
   scale experiment's lazy feeder) turns into a thundering herd. *)
let test_roots_ascending () =
  let spec = Experiments.Scale.spec_for ~roots:20_000 ~nodes:16 in
  let wl = Workload.Generator.generate spec ~page_size:4096 in
  let ascending =
    let rec check = function
      | (a : Workload.Generator.root_spec) :: (b :: _ as rest) ->
          a.Workload.Generator.at <= b.Workload.Generator.at && check rest
      | _ -> true
    in
    check wl.Workload.Generator.roots
  in
  Alcotest.(check bool) "20k roots ascending by arrival time" true ascending;
  Alcotest.(check int) "all roots present" 20_000
    (List.length wl.Workload.Generator.roots)

(* run_point wires the profile counters through: every root accounted,
   events dispatched, and — because arrivals are fed lazily — a queue
   high-water far below the root count. *)
let test_run_point_profile () =
  let spec = Experiments.Scale.spec_for ~roots:300 ~nodes:8 in
  let row = Experiments.Scale.run_point ~protocol:Dsm.Protocol.Lotec ~spec () in
  Alcotest.(check int) "roots accounted" 300
    (row.Experiments.Scale.s_committed + row.Experiments.Scale.s_aborted);
  let p = row.Experiments.Scale.s_profile in
  Alcotest.(check bool) "events dispatched" true (p.Experiments.Scale.dispatched > 0);
  Alcotest.(check bool) "scheduled >= dispatched" true
    (p.Experiments.Scale.scheduled >= p.Experiments.Scale.dispatched);
  Alcotest.(check bool) "queue high-water positive" true (p.Experiments.Scale.max_queue > 0);
  Alcotest.(check bool) "lazy feed keeps the queue shallow" true
    (p.Experiments.Scale.max_queue < 300);
  Alcotest.(check bool) "wall clock measured" true (p.Experiments.Scale.wall_s > 0.0)

(* The micro-benchmark at toy sizes: ops accounting per component, and
   the JSON payload (with a sweep row) is well-formed. *)
let test_engine_bench_and_json () =
  let b =
    Experiments.Scale.engine_bench ~dispatch_events:1_000 ~dispatch_timers:10 ~fibers:200
      ~waiters:100 ~rounds:1 ()
  in
  Alcotest.(check int) "five components" 5 (List.length b.Experiments.Scale.rows);
  List.iter
    (fun (r : Experiments.Scale.bench_row) ->
      Alcotest.(check bool) (r.Experiments.Scale.component ^ " ops positive") true
        (r.Experiments.Scale.ops > 0 && r.Experiments.Scale.ops_per_sec > 0.0))
    b.Experiments.Scale.rows;
  let spec = Experiments.Scale.spec_for ~roots:50 ~nodes:4 in
  let row = Experiments.Scale.run_point ~protocol:Dsm.Protocol.Otec ~spec () in
  let json = Experiments.Scale.to_json ~bench:b ~scale:[ row ] () in
  match Dsm.Trace_export.validate_json json with
  | Ok () -> ()
  | Error e -> Alcotest.failf "BENCH_engine.json payload is not valid JSON: %s" e

(* The rate helper behind every ops/sec and events/sec column: a
   sub-resolution wall time must clamp instead of dividing by zero —
   regression pin for the Inf/NaN rates toy-sized benches used to print. *)
let test_per_sec_clamps () =
  Alcotest.(check (float 1e-9)) "normal rate" 500.0 (Experiments.Scale.per_sec 1000 2.0);
  Alcotest.(check (float 1e-9)) "zero ops" 0.0 (Experiments.Scale.per_sec 0 1.0);
  Alcotest.(check bool) "zero wall clamps finite" true
    (Float.is_finite (Experiments.Scale.per_sec 1000 0.0));
  Alcotest.(check bool) "negative wall clamps finite" true
    (Float.is_finite (Experiments.Scale.per_sec 1000 (-1.0)));
  Alcotest.(check bool) "zero ops, zero wall is not NaN" true
    (Experiments.Scale.per_sec 0 0.0 = 0.0)

(* The 100k-root golden. Streaming vs plain doubles as a determinism
   check: two full submissions/runs of the same seed from different
   process states must land on the identical summary string. The
   committed counts are pinned so a silent workload or scheduling drift
   fails loudly rather than shifting both runs in lockstep. *)
let committed_golden =
  [
    (Dsm.Protocol.Cotec, 100_000);
    (Dsm.Protocol.Otec, 100_000);
    (Dsm.Protocol.Lotec, 100_000);
    (Dsm.Protocol.Rc_nested, 100_000);
  ]

let test_scale_determinism () =
  let spec = Experiments.Scale.spec_for ~roots:100_000 ~nodes:64 in
  List.iter
    (fun (protocol, expect_committed) ->
      let name = Format.asprintf "%a" Dsm.Protocol.pp protocol in
      let streamed, rt = run_summary ~streaming:true ~protocol spec in
      let streamed', _ = run_summary ~streaming:true ~protocol spec in
      Alcotest.(check string) (name ^ ": summary byte-identical across runs") streamed
        streamed';
      let totals = Dsm.Metrics.totals (Core.Runtime.metrics rt) in
      Alcotest.(check int)
        (name ^ ": committed golden")
        expect_committed totals.Dsm.Metrics.roots_committed;
      Alcotest.(check int)
        (name ^ ": every root accounted")
        100_000
        (totals.Dsm.Metrics.roots_committed + totals.Dsm.Metrics.roots_aborted))
    committed_golden

let tests =
  [
    ( "scale",
      [
        Alcotest.test_case "streaming preserves the summary" `Quick test_streaming_semantics;
        Alcotest.test_case "streaming requires fault-free" `Quick
          test_streaming_requires_fault_free;
        Alcotest.test_case "forget_family" `Quick test_forget_family;
        Alcotest.test_case "roots ascending by arrival" `Quick test_roots_ascending;
        Alcotest.test_case "run_point profile" `Quick test_run_point_profile;
        Alcotest.test_case "engine bench + json" `Quick test_engine_bench_and_json;
        Alcotest.test_case "per_sec clamps" `Quick test_per_sec_clamps;
        Alcotest.test_case "100k determinism golden" `Slow test_scale_determinism;
      ] );
  ]
