(* Escrow commit: the admission test ({!Dsm.Escrow.admits}), the directory's
   delta-lock ledger (reserve/commit/abort, quota delegation, epoch-fenced
   recall), the {!Core.Serializability.check_escrow} replay checker, the
   escrow-off byte-identity guarantee, and the sweep's headline gate. *)

open Objmodel

let params = Dsm.Escrow.default_params

(* ---------- the admission test ---------- *)

let admits ?(params = params) ~value ~worst_down ~worst_up delta =
  Dsm.Escrow.admits params ~value ~worst_down ~worst_up ~delta

let test_admits_basics () =
  (* Bank shape: [0, +inf), value 1000. Any deposit fits; a withdrawal
     fits iff the worst case keeps the balance non-negative. *)
  Alcotest.(check bool) "deposit" true (admits ~value:1000 ~worst_down:0 ~worst_up:0 1);
  Alcotest.(check bool) "withdrawal" true (admits ~value:1000 ~worst_down:0 ~worst_up:0 (-1));
  Alcotest.(check bool) "drain to floor" true
    (admits ~value:1000 ~worst_down:(-999) ~worst_up:0 (-1));
  Alcotest.(check bool) "one past the floor" false
    (admits ~value:1000 ~worst_down:(-1000) ~worst_up:0 (-1));
  (* Obligations on the other side never help: a pending deposit cannot
     fund a withdrawal that would otherwise breach the floor. *)
  Alcotest.(check bool) "other side ignored" false
    (admits ~value:0 ~worst_down:0 ~worst_up:50 (-1))

let test_admits_unbounded_side_never_overflows () =
  (* upper_bound = max_int: the headroom form must stay exact (no
     overflow) with the value and outstanding raises near max_int. *)
  Alcotest.(check bool) "headroom near max_int" true
    (admits ~value:(max_int - 10) ~worst_down:0 ~worst_up:9 1);
  Alcotest.(check bool) "huge raises refused without overflow" false
    (admits ~value:(max_int - 10) ~worst_down:0 ~worst_up:(max_int / 2) 1);
  let bounded = { params with Dsm.Escrow.upper_bound = 2000 } in
  Alcotest.(check bool) "bounded ceiling holds" false
    (admits ~params:bounded ~value:1990 ~worst_down:0 ~worst_up:10 1);
  Alcotest.(check bool) "bounded ceiling admits" true
    (admits ~params:bounded ~value:1990 ~worst_down:0 ~worst_up:9 1)

let test_policy_of_string () =
  let ok = function Ok p -> p | Error e -> Alcotest.failf "parse error: %s" e in
  Alcotest.(check bool) "off" false (Dsm.Escrow.policy_enabled (ok (Dsm.Escrow.policy_of_string "off")));
  Alcotest.(check bool) "none" false (Dsm.Escrow.policy_enabled (ok (Dsm.Escrow.policy_of_string "none")));
  (match ok (Dsm.Escrow.policy_of_string "on") with
  | Dsm.Escrow.On p -> Alcotest.(check int) "default quota" params.Dsm.Escrow.local_quota p.Dsm.Escrow.local_quota
  | Dsm.Escrow.Off -> Alcotest.fail "on parsed as Off");
  (match ok (Dsm.Escrow.policy_of_string "on:4") with
  | Dsm.Escrow.On p -> Alcotest.(check int) "quota override" 4 p.Dsm.Escrow.local_quota
  | Dsm.Escrow.Off -> Alcotest.fail "on:4 parsed as Off");
  Alcotest.(check bool) "garbage rejected" true
    (Result.is_error (Dsm.Escrow.policy_of_string "sometimes"))

(* ---------- the directory's escrow ledger ---------- *)

let oid = Oid.of_int
let fam i = Txn.Txn_id.of_int i

let make_dir ?(lower = 0) ?(upper = max_int) ?(initial = 100) () =
  let d = Gdo.Directory.create () in
  Gdo.Directory.register_object d (oid 0) ~pages:2 ~initial_node:0;
  Gdo.Directory.register_escrow d (oid 0) ~lower ~upper ~initial;
  d

let is_admitted = function Gdo.Directory.Escrow_admitted -> true | _ -> false
let is_refused_bounds = function Gdo.Directory.Escrow_refused_bounds -> true | _ -> false
let is_refused_locked = function Gdo.Directory.Escrow_refused_locked -> true | _ -> false

let test_reserve_commit_abort () =
  let d = make_dir () in
  Alcotest.(check bool) "deposit admitted" true
    (is_admitted (Gdo.Directory.escrow_reserve d (oid 0) ~family:(fam 1) ~node:1 ~delta:1));
  Alcotest.(check bool) "withdrawal admitted" true
    (is_admitted (Gdo.Directory.escrow_reserve d (oid 0) ~family:(fam 2) ~node:2 ~delta:(-5)));
  (* Reservations are pending, not folded in. *)
  Alcotest.(check int) "value unchanged" 100 (Gdo.Directory.escrow_value d (oid 0));
  Alcotest.(check int) "two rows" 2 (List.length (Gdo.Directory.escrow_reservations d (oid 0)));
  ignore (Gdo.Directory.escrow_commit d (oid 0) ~family:(fam 1));
  Alcotest.(check int) "commit folds" 101 (Gdo.Directory.escrow_value d (oid 0));
  ignore (Gdo.Directory.escrow_abort d (oid 0) ~family:(fam 2));
  Alcotest.(check int) "abort drops" 101 (Gdo.Directory.escrow_value d (oid 0));
  Alcotest.(check bool) "ledger drained" false (Gdo.Directory.escrow_outstanding d (oid 0));
  (* Idempotent under retransmission. *)
  ignore (Gdo.Directory.escrow_commit d (oid 0) ~family:(fam 1));
  Alcotest.(check int) "re-commit is a no-op" 101 (Gdo.Directory.escrow_value d (oid 0))

let test_reserve_worst_case_bounds () =
  let d = make_dir ~initial:3 () in
  (* Three concurrent unit withdrawals exhaust the worst-case headroom. *)
  List.iter
    (fun i ->
      Alcotest.(check bool)
        (Printf.sprintf "withdrawal %d admitted" i)
        true
        (is_admitted (Gdo.Directory.escrow_reserve d (oid 0) ~family:(fam i) ~node:i ~delta:(-1))))
    [ 1; 2; 3 ];
  Alcotest.(check bool) "fourth refused on bounds" true
    (is_refused_bounds (Gdo.Directory.escrow_reserve d (oid 0) ~family:(fam 4) ~node:4 ~delta:(-1)));
  (* One abort restores exactly one unit of headroom. *)
  ignore (Gdo.Directory.escrow_abort d (oid 0) ~family:(fam 1));
  Alcotest.(check bool) "headroom returns" true
    (is_admitted (Gdo.Directory.escrow_reserve d (oid 0) ~family:(fam 4) ~node:4 ~delta:(-1)))

let test_reserve_refused_while_locked () =
  let d = make_dir () in
  (match
     Gdo.Directory.acquire d (oid 0) ~family:(fam 9) ~node:0 ~mode:Txn.Lock.Write ()
   with
  | Gdo.Directory.Granted _ -> ()
  | _ -> Alcotest.fail "write lock not granted on a free object");
  Alcotest.(check bool) "refused under a lock" true
    (is_refused_locked (Gdo.Directory.escrow_reserve d (oid 0) ~family:(fam 1) ~node:1 ~delta:1));
  Alcotest.(check bool) "delegation refused too" true
    (Gdo.Directory.escrow_delegate d (oid 0) ~node:1 ~up:8 ~down:8 = (0, 0));
  ignore (Gdo.Directory.release d (oid 0) ~family:(fam 9) ~dirty:[]);
  Alcotest.(check bool) "admitted once the lock drains" true
    (is_admitted (Gdo.Directory.escrow_reserve d (oid 0) ~family:(fam 1) ~node:1 ~delta:1))

let test_delegate_clamps_to_headroom () =
  let d = make_dir ~initial:5 () in
  (* Down-quota is capped by worst-case headroom above the floor; up-quota
     is unbounded here (ceiling max_int). *)
  let up, down = Gdo.Directory.escrow_delegate d (oid 0) ~node:1 ~up:16 ~down:16 in
  Alcotest.(check int) "up granted in full" 16 up;
  Alcotest.(check int) "down clamped to headroom" 5 down;
  Alcotest.(check bool) "quota row recorded" true
    (Gdo.Directory.escrow_quotas d (oid 0) = [ (1, 16, 5) ]);
  (* A second node sees no down headroom left. *)
  let _, down2 = Gdo.Directory.escrow_delegate d (oid 0) ~node:2 ~up:16 ~down:16 in
  Alcotest.(check int) "second node gets none" 0 down2;
  (* Reconcile: node 1 spent 3 down units and 2 up units, net -1. *)
  Gdo.Directory.escrow_reconcile d (oid 0) ~node:1 ~delta:(-1) ~used_up:2 ~used_down:3;
  Alcotest.(check int) "delta folded" 4 (Gdo.Directory.escrow_value d (oid 0));
  Alcotest.(check bool) "quota consumed" true
    (List.mem (1, 14, 2) (Gdo.Directory.escrow_quotas d (oid 0)));
  Alcotest.check_raises "over-spend rejected"
    (Invalid_argument "Directory: escrow quota underflow (node returned more than delegated)")
    (fun () -> Gdo.Directory.escrow_reconcile d (oid 0) ~node:1 ~delta:100 ~used_up:100 ~used_down:0)

let test_recall_epoch_fencing () =
  let d = make_dir ~initial:50 () in
  let up, down = Gdo.Directory.escrow_delegate d (oid 0) ~node:1 ~up:8 ~down:8 in
  Alcotest.(check bool) "delegated" true (up = 8 && down = 8);
  let e0 = Gdo.Directory.escrow_epoch d (oid 0) in
  let e1 = Gdo.Directory.escrow_begin_recall d (oid 0) in
  Alcotest.(check int) "epoch bumped" (e0 + 1) e1;
  (* A yield stamped with the pre-recall epoch is stale: whole call no-ops. *)
  let deliveries, carried =
    Gdo.Directory.escrow_yield d (oid 0) ~node:1 ~epoch:e0 ~delta:5 ~used_up:5 ~used_down:0
      ~carried:[]
  in
  Alcotest.(check bool) "stale yield ignored" true (deliveries = [] && carried = []);
  Alcotest.(check int) "value untouched" 50 (Gdo.Directory.escrow_value d (oid 0));
  Alcotest.(check bool) "quota still booked" true
    (Gdo.Directory.escrow_quotas d (oid 0) = [ (1, 8, 8) ]);
  (* The fresh-epoch yield lands: delta folds, quota zeroes, the carried
     family re-books as a home reservation. *)
  let _, rebooked =
    Gdo.Directory.escrow_yield d (oid 0) ~node:1 ~epoch:e1 ~delta:3 ~used_up:4 ~used_down:1
      ~carried:[ (fam 7, 2) ]
  in
  Alcotest.(check bool) "carried re-booked" true
    (List.exists (fun (f, n) -> Txn.Txn_id.to_int f = 7 && n = 2) rebooked
    || List.exists
         (fun (f, _, delta) -> Txn.Txn_id.to_int f = 7 && delta = 2)
         (Gdo.Directory.escrow_reservations d (oid 0)));
  Alcotest.(check int) "yield delta folded" 53 (Gdo.Directory.escrow_value d (oid 0));
  Alcotest.(check bool) "quota zeroed" true (Gdo.Directory.escrow_quotas d (oid 0) = []);
  ignore (Gdo.Directory.escrow_commit d (oid 0) ~family:(fam 7));
  Alcotest.(check int) "carried family commits" 55 (Gdo.Directory.escrow_value d (oid 0));
  Alcotest.(check bool) "drained" false (Gdo.Directory.escrow_outstanding d (oid 0))

(* ---------- the replay checker ---------- *)

let check ops = Core.Serializability.check_escrow ~lower:0 ~upper:1000 ~initial:100 ~ops

let test_check_escrow_accepts_clean_log () =
  let ops =
    [
      Core.Serializability.E_reserve { oid = oid 0; family = fam 1; delta = 5 };
      Core.Serializability.E_delegate { oid = oid 0; node = 2; up = 4; down = 4 };
      Core.Serializability.E_commit { oid = oid 0; family = fam 1 };
      Core.Serializability.E_local_commit { oid = oid 0; node = 2; delta = 1 };
      Core.Serializability.E_local_commit { oid = oid 0; node = 2; delta = -2 };
      Core.Serializability.E_reconcile { oid = oid 0; node = 2; delta = -1; used_up = 1; used_down = 2 };
      Core.Serializability.E_revoke { oid = oid 0; node = 2 };
    ]
  in
  match check ops with
  | Ok [ (o, final) ] ->
      Alcotest.(check int) "oid" 0 (Oid.to_int o);
      Alcotest.(check int) "final value" 104 final
  | Ok _ -> Alcotest.fail "expected exactly one escrowed object"
  | Error es -> Alcotest.failf "clean log rejected: %s" (String.concat "; " es)

let test_check_escrow_rejects_bounds_breach () =
  (* A reservation the admission test should have refused: worst case
     101 - 200 < lower bound 0. *)
  let ops =
    [
      Core.Serializability.E_reserve { oid = oid 0; family = fam 1; delta = -200 };
      Core.Serializability.E_abort { oid = oid 0; family = fam 1 };
    ]
  in
  Alcotest.(check bool) "bounds breach detected" true (Result.is_error (check ops))

let test_check_escrow_rejects_quota_overspend () =
  let ops =
    [
      Core.Serializability.E_delegate { oid = oid 0; node = 2; up = 1; down = 0 };
      Core.Serializability.E_local_commit { oid = oid 0; node = 2; delta = 1 };
      Core.Serializability.E_local_commit { oid = oid 0; node = 2; delta = 1 };
    ]
  in
  Alcotest.(check bool) "overspend detected" true (Result.is_error (check ops))

let test_check_escrow_rejects_unresolved_end_state () =
  let dangling_reserve =
    [ Core.Serializability.E_reserve { oid = oid 0; family = fam 1; delta = 1 } ]
  in
  Alcotest.(check bool) "dangling reservation detected" true
    (Result.is_error (check dangling_reserve));
  let unreconciled =
    [
      Core.Serializability.E_delegate { oid = oid 0; node = 2; up = 4; down = 0 };
      Core.Serializability.E_local_commit { oid = oid 0; node = 2; delta = 1 };
    ]
  in
  Alcotest.(check bool) "unreconciled delta detected" true (Result.is_error (check unreconciled))

(* ---------- escrow off: byte-identity against the goldens ---------- *)

(* The same pre-subsystem goldens test_method_cache.ml and
   test_function_shipping.ml pin: with escrow = Off the runtime must take
   the exact pre-escrow code path, byte for byte, on all four protocols. *)
let golden_spec =
  {
    (Workload.Scenarios.spec Workload.Scenarios.High Workload.Scenarios.Medium) with
    Workload.Spec.root_count = 40;
    seed = 42;
  }

let goldens =
  [
    (Dsm.Protocol.Cotec, (484, 1_169_012, 25968.873648));
    (Dsm.Protocol.Otec, (419, 956_560, 20047.449955));
    (Dsm.Protocol.Lotec, (370, 731_252, 19580.172744));
    (Dsm.Protocol.Rc_nested, (425, 1_606_888, 20610.322997));
  ]

let escrow_counter_sum (t : Dsm.Metrics.totals) =
  t.Dsm.Metrics.escrow_reserves + t.Dsm.Metrics.escrow_local_commits
  + t.Dsm.Metrics.escrow_reconciles + t.Dsm.Metrics.escrow_recalls
  + t.Dsm.Metrics.escrow_yields + t.Dsm.Metrics.escrow_refusals
  + t.Dsm.Metrics.escrow_quota_units

let test_escrow_off_byte_identity () =
  let wl = Workload.Generator.generate golden_spec ~page_size:4096 in
  let config = { Core.Config.default with Core.Config.escrow = Dsm.Escrow.off } in
  List.iter
    (fun (protocol, (messages, bytes, completion)) ->
      let name = Format.asprintf "%a" Dsm.Protocol.pp protocol in
      let m = Experiments.Runner.metrics (Experiments.Runner.execute ~config ~protocol wl) in
      Alcotest.(check int) (name ^ " messages") messages (Dsm.Metrics.total_messages m);
      Alcotest.(check int) (name ^ " bytes") bytes (Dsm.Metrics.total_bytes m);
      Alcotest.(check (float 1e-6)) (name ^ " completion") completion
        (Dsm.Metrics.completion_time_us m);
      Alcotest.(check int) (name ^ " all escrow counters zero") 0
        (escrow_counter_sum (Dsm.Metrics.totals m)))
    goldens

(* ---------- the headline gate ---------- *)

(* The acceptance numbers: on the hottest-skew bank workload, LOTEC with
   escrow must complete at least 25% sooner than its exclusive-locking
   baseline — with real coordination avoidance behind it (local zero-
   message commits and lazy reconciles, not just admissions). run_case
   itself asserts serializability, the escrow-ledger replay, root
   accounting, zero-counter hygiene and exact wire reconciliation for
   both rows. *)
let test_lotec_headline_gate () =
  let outcomes =
    Experiments.Escrow.sweep ~protocols:[ Dsm.Protocol.Lotec ] ~skews:[ 1.2 ] ()
  in
  match Experiments.Escrow.headline outcomes with
  | None -> Alcotest.fail "sweep produced no headline row"
  | Some (baseline, on, ratio) ->
      Alcotest.(check int) "baseline runs no escrow" 0 baseline.Experiments.Escrow.reserves;
      Alcotest.(check bool) "escrow run reserves" true (on.Experiments.Escrow.reserves > 0);
      Alcotest.(check bool) "zero-message local commits happen" true
        (on.Experiments.Escrow.local_commits > 0);
      Alcotest.(check bool) "lazy reconciles happen" true
        (on.Experiments.Escrow.reconciles > 0);
      Alcotest.(check bool) "recalls drain quotas for exclusive access" true
        (on.Experiments.Escrow.recalls > 0);
      Alcotest.(check bool) "replay reports escrowed finals" true
        (on.Experiments.Escrow.escrow_finals <> []);
      if ratio > 0.75 then
        Alcotest.failf "completion ratio %.3f misses the 0.75 ceiling (%.0f vs %.0f us)" ratio
          on.Experiments.Escrow.completion_us baseline.Experiments.Escrow.completion_us

let tests =
  [
    ( "escrow",
      [
        Alcotest.test_case "admission test basics" `Quick test_admits_basics;
        Alcotest.test_case "unbounded side never overflows" `Quick
          test_admits_unbounded_side_never_overflows;
        Alcotest.test_case "policy parsing" `Quick test_policy_of_string;
        Alcotest.test_case "reserve, commit, abort" `Quick test_reserve_commit_abort;
        Alcotest.test_case "worst-case bounds refusal" `Quick test_reserve_worst_case_bounds;
        Alcotest.test_case "refused while locked" `Quick test_reserve_refused_while_locked;
        Alcotest.test_case "delegation clamps to headroom" `Quick
          test_delegate_clamps_to_headroom;
        Alcotest.test_case "recall epoch fencing" `Quick test_recall_epoch_fencing;
        Alcotest.test_case "replay accepts a clean log" `Quick test_check_escrow_accepts_clean_log;
        Alcotest.test_case "replay rejects a bounds breach" `Quick
          test_check_escrow_rejects_bounds_breach;
        Alcotest.test_case "replay rejects quota overspend" `Quick
          test_check_escrow_rejects_quota_overspend;
        Alcotest.test_case "replay rejects unresolved end state" `Quick
          test_check_escrow_rejects_unresolved_end_state;
        Alcotest.test_case "escrow off is byte-identical" `Quick test_escrow_off_byte_identity;
        Alcotest.test_case "lotec headline gate" `Quick test_lotec_headline_gate;
      ] );
  ]
