(* Tests for the simulated interconnect. *)

open Sim

let test_transfer_time () =
  let link = { Network.bandwidth_bps = 1e8; software_cost_us = 20.0 } in
  (* 1250 bytes = 10,000 bits; at 100 Mbps that's 100 us on the wire. *)
  Alcotest.(check (float 0.001)) "sw + serialisation" 120.0 (Network.transfer_time_us link 1250);
  Alcotest.(check (float 0.001)) "zero bytes = sw only" 20.0 (Network.transfer_time_us link 0)

let test_preset_links () =
  Alcotest.(check (float 1.0)) "10 Mbps" 1e7 Network.link_10mbps.Network.bandwidth_bps;
  Alcotest.(check (float 1.0)) "100 Mbps" 1e8 Network.link_100mbps.Network.bandwidth_bps;
  Alcotest.(check (float 1.0)) "1 Gbps" 1e9 Network.link_1gbps.Network.bandwidth_bps

let make ?on_message () =
  let engine = Engine.create () in
  let net = Network.create ~engine ~node_count:3 ~link:Network.link_100mbps ?on_message () in
  (engine, net)

let test_delivery_and_latency () =
  let engine, net = make () in
  let arrived = ref (-1.0) in
  let got = ref "" in
  Network.set_handler net ~node:1 (fun ~src msg ->
      Alcotest.(check int) "src" 0 src;
      got := msg;
      arrived := Engine.now engine);
  Network.set_handler net ~node:0 (fun ~src:_ _ -> ());
  Network.set_handler net ~node:2 (fun ~src:_ _ -> ());
  Network.send net ~src:0 ~dst:1 ~kind:Network.Control ~bytes:1250 ~tag:7 "hello";
  Engine.run engine;
  Alcotest.(check string) "payload" "hello" !got;
  Alcotest.(check (float 0.001)) "latency" 120.0 !arrived

let test_stats_and_kinds () =
  let engine, net = make () in
  List.iter (fun n -> Network.set_handler net ~node:n (fun ~src:_ _ -> ())) [ 0; 1; 2 ];
  Network.send net ~src:0 ~dst:1 ~kind:Network.Control ~bytes:100 ~tag:1 "c";
  Network.send net ~src:1 ~dst:2 ~kind:Network.Data ~bytes:4000 ~tag:2 "d";
  Engine.run engine;
  let s = Network.stats net in
  Alcotest.(check int) "messages" 2 s.Network.messages;
  Alcotest.(check int) "bytes" 4100 s.Network.bytes;
  Alcotest.(check int) "control msgs" 1 s.Network.control_messages;
  Alcotest.(check int) "control bytes" 100 s.Network.control_bytes;
  Alcotest.(check int) "data msgs" 1 s.Network.data_messages;
  Alcotest.(check int) "data bytes" 4000 s.Network.data_bytes

let test_local_send_not_counted () =
  let hook_calls = ref 0 in
  let engine, net = make ~on_message:(fun ~src:_ ~dst:_ ~kind:_ ~bytes:_ ~tag:_ -> incr hook_calls) () in
  let delivered = ref false in
  Network.set_handler net ~node:0 (fun ~src:_ _ -> delivered := true);
  Network.send net ~src:0 ~dst:0 ~kind:Network.Data ~bytes:9999 ~tag:1 "self";
  Engine.run engine;
  Alcotest.(check bool) "delivered" true !delivered;
  Alcotest.(check int) "not counted" 0 (Network.stats net).Network.messages;
  Alcotest.(check int) "hook not fired" 0 !hook_calls

let test_on_message_hook () =
  let seen = ref [] in
  let engine, net =
    make ~on_message:(fun ~src ~dst ~kind:_ ~bytes ~tag -> seen := (src, dst, bytes, tag) :: !seen) ()
  in
  List.iter (fun n -> Network.set_handler net ~node:n (fun ~src:_ _ -> ())) [ 0; 1; 2 ];
  Network.send net ~src:2 ~dst:0 ~kind:Network.Data ~bytes:500 ~tag:42 "x";
  Engine.run engine;
  Alcotest.(check (list (pair (pair int int) (pair int int))))
    "hook saw message"
    [ ((2, 0), (500, 42)) ]
    (List.map (fun (a, b, c, d) -> ((a, b), (c, d))) !seen)

let test_missing_handler () =
  let engine, net = make () in
  Network.send net ~src:0 ~dst:1 ~kind:Network.Control ~bytes:10 ~tag:0 "x";
  Alcotest.check_raises "no handler" (Invalid_argument "Network: node 1 has no handler")
    (fun () -> Engine.run engine)

let test_bad_node () =
  let _, net = make () in
  Alcotest.check_raises "bad node" (Invalid_argument "Network: node id out of range") (fun () ->
      Network.send net ~src:0 ~dst:5 ~kind:Network.Control ~bytes:1 ~tag:0 "x")

let test_fifo_between_pair () =
  (* Equal-size messages between the same pair deliver in send order. *)
  let engine, net = make () in
  let got = ref [] in
  List.iter (fun n -> Network.set_handler net ~node:n (fun ~src:_ m -> got := m :: !got)) [ 0; 1; 2 ];
  List.iter
    (fun m -> Network.send net ~src:0 ~dst:1 ~kind:Network.Control ~bytes:100 ~tag:0 m)
    [ "1"; "2"; "3" ];
  Engine.run engine;
  Alcotest.(check (list string)) "in order" [ "1"; "2"; "3" ] (List.rev !got)

let test_fifo_small_does_not_overtake_large () =
  (* A later small message must not overtake an earlier large one on the
     same channel (connection FIFO), but is free to on another channel. *)
  let engine, net = make () in
  let got = ref [] in
  List.iter (fun n -> Network.set_handler net ~node:n (fun ~src:_ m -> got := m :: !got)) [ 0; 1; 2 ];
  Network.send net ~src:0 ~dst:1 ~kind:Network.Data ~bytes:1_000_000 ~tag:0 "big";
  Network.send net ~src:0 ~dst:1 ~kind:Network.Control ~bytes:10 ~tag:0 "small-same";
  Network.send net ~src:2 ~dst:1 ~kind:Network.Control ~bytes:10 ~tag:0 "small-other";
  Engine.run engine;
  Alcotest.(check (list string)) "channel fifo preserved"
    [ "small-other"; "big"; "small-same" ]
    (List.rev !got)

(* ---- fault injection ---- *)

let make_faulty ?(seed = 11) ?(drop = 0.0) ?(dup = 0.0) ?(jitter = 0.0) ?(windows = []) () =
  let faults =
    {
      Fault.seed;
      drop_probability = drop;
      duplicate_probability = dup;
      delay_jitter_us = jitter;
      windows;
      link_windows = [];
    }
  in
  let engine = Engine.create () in
  let net = Network.create ~engine ~node_count:3 ~link:Network.link_100mbps ~faults () in
  List.iter (fun n -> Network.set_handler net ~node:n (fun ~src:_ _ -> ())) [ 0; 1; 2 ];
  (engine, net)

let test_drop_all () =
  let engine, net = make_faulty ~drop:1.0 () in
  let got = ref 0 in
  Network.set_handler net ~node:1 (fun ~src:_ _ -> incr got);
  for _ = 1 to 5 do
    Network.send net ~src:0 ~dst:1 ~kind:Network.Control ~bytes:100 ~tag:0 "x"
  done;
  Engine.run engine;
  Alcotest.(check int) "nothing delivered" 0 !got;
  Alcotest.(check int) "drops counted" 5 (Network.fault_stats net).Fault.drops;
  (* Sends are still charged at send time: traffic happened, then was lost. *)
  Alcotest.(check int) "sends still counted" 5 (Network.stats net).Network.messages

let test_duplicate_all () =
  let engine, net = make_faulty ~dup:1.0 () in
  let got = ref 0 in
  Network.set_handler net ~node:1 (fun ~src:_ _ -> incr got);
  Network.send net ~src:0 ~dst:1 ~kind:Network.Control ~bytes:100 ~tag:0 "x";
  Engine.run engine;
  Alcotest.(check int) "delivered twice" 2 !got;
  Alcotest.(check int) "duplicates counted" 1 (Network.fault_stats net).Fault.duplicates

let delivery_times ~seed ~jitter n =
  let engine, net = make_faulty ~seed ~jitter () in
  let times = ref [] in
  Network.set_handler net ~node:1 (fun ~src:_ _ -> times := Engine.now engine :: !times);
  for i = 1 to n do
    Engine.schedule engine ~delay:(float_of_int i *. 10.0) (fun () ->
        Network.send net ~src:0 ~dst:1 ~kind:Network.Control ~bytes:100 ~tag:0 "x")
  done;
  Engine.run engine;
  List.rev !times

let test_jitter_deterministic () =
  let a = delivery_times ~seed:5 ~jitter:40.0 8 in
  let b = delivery_times ~seed:5 ~jitter:40.0 8 in
  Alcotest.(check (list (float 0.0))) "same seed, same schedule" a b;
  let c = delivery_times ~seed:6 ~jitter:40.0 8 in
  Alcotest.(check bool) "different seed perturbs" true (a <> c)

let test_jitter_keeps_channel_fifo () =
  (* Jitter far larger than the inter-send gap: deliveries must still come
     out in send order on the one channel. *)
  let engine, net = make_faulty ~seed:3 ~jitter:500.0 () in
  let got = ref [] in
  Network.set_handler net ~node:1 (fun ~src:_ m -> got := m :: !got);
  List.iteri
    (fun i m ->
      Engine.schedule engine ~delay:(float_of_int i) (fun () ->
          Network.send net ~src:0 ~dst:1 ~kind:Network.Control ~bytes:100 ~tag:0 m))
    [ "1"; "2"; "3"; "4"; "5" ];
  Engine.run engine;
  Alcotest.(check (list string)) "fifo under jitter" [ "1"; "2"; "3"; "4"; "5" ]
    (List.rev !got)

let test_pause_window_defers () =
  let window = { Fault.w_node = 1; w_kind = Fault.Pause; w_from_us = 0.0; w_until_us = 500.0 } in
  let engine, net = make_faulty ~windows:[ window ] () in
  let at = ref (-1.0) in
  Network.set_handler net ~node:1 (fun ~src:_ _ -> at := Engine.now engine);
  Network.send net ~src:0 ~dst:1 ~kind:Network.Control ~bytes:100 ~tag:0 "x";
  Engine.run engine;
  Alcotest.(check (float 0.001)) "deferred to window end" 500.0 !at;
  Alcotest.(check int) "defer counted" 1 (Network.fault_stats net).Fault.pause_defers;
  (* A message arriving after the window is untouched. *)
  let engine2, net2 = make_faulty ~windows:[ window ] () in
  let at2 = ref (-1.0) in
  Network.set_handler net2 ~node:1 (fun ~src:_ _ -> at2 := Engine.now engine2);
  Engine.schedule engine2 ~delay:1000.0 (fun () ->
      Network.send net2 ~src:0 ~dst:1 ~kind:Network.Control ~bytes:100 ~tag:0 "x");
  Engine.run engine2;
  Alcotest.(check (float 0.001)) "post-window undisturbed" 1028.0 !at2

let test_crash_window_drops () =
  let window = { Fault.w_node = 1; w_kind = Fault.Crash; w_from_us = 0.0; w_until_us = 500.0 } in
  let engine, net = make_faulty ~windows:[ window ] () in
  let got = ref 0 in
  Network.set_handler net ~node:1 (fun ~src:_ _ -> incr got);
  (* Arrives at 28 us — inside the crash window: lost. *)
  Network.send net ~src:0 ~dst:1 ~kind:Network.Control ~bytes:100 ~tag:0 "x";
  (* Sent at 1000, arrives after the restart: delivered. *)
  Engine.schedule engine ~delay:1000.0 (fun () ->
      Network.send net ~src:0 ~dst:1 ~kind:Network.Control ~bytes:100 ~tag:0 "y");
  Engine.run engine;
  Alcotest.(check int) "only post-restart delivery" 1 !got;
  Alcotest.(check int) "crash drop counted" 1 (Network.fault_stats net).Fault.crash_drops

let test_crash_window_self_send () =
  (* Regression: src = dst used to bypass the fault windows entirely, so a
     node "delivered" messages to itself while crashed. A self-send inside
     the node's own crash window is swallowed (and counted as a crash
     drop); one after the restart is delivered at the local cost. Local
     sends stay off the wire ledger either way. *)
  let window = { Fault.w_node = 1; w_kind = Fault.Crash; w_from_us = 0.0; w_until_us = 500.0 } in
  let engine, net = make_faulty ~windows:[ window ] () in
  let got = ref [] in
  Network.set_handler net ~node:1 (fun ~src:_ m -> got := m :: !got);
  Network.send net ~src:1 ~dst:1 ~kind:Network.Control ~bytes:50 ~tag:0 "lost";
  Engine.schedule engine ~delay:1000.0 (fun () ->
      Network.send net ~src:1 ~dst:1 ~kind:Network.Control ~bytes:50 ~tag:0 "kept");
  Engine.run engine;
  Alcotest.(check (list string)) "only the post-restart self-send" [ "kept" ] !got;
  Alcotest.(check int) "crash drop counted" 1 (Network.fault_stats net).Fault.crash_drops;
  Alcotest.(check int) "local sends never hit the wire ledger" 0
    (Network.stats net).Network.messages

let test_pause_window_self_send_defers () =
  let window = { Fault.w_node = 1; w_kind = Fault.Pause; w_from_us = 0.0; w_until_us = 300.0 } in
  let engine, net = make_faulty ~windows:[ window ] () in
  let at = ref (-1.0) in
  Network.set_handler net ~node:1 (fun ~src:_ _ -> at := Engine.now engine);
  Network.send net ~src:1 ~dst:1 ~kind:Network.Control ~bytes:50 ~tag:0 "x";
  Engine.run engine;
  Alcotest.(check (float 0.001)) "self-send deferred to window end" 300.0 !at;
  Alcotest.(check int) "defer counted" 1 (Network.fault_stats net).Fault.pause_defers

let test_pause_window_fifo_pileup () =
  (* Several messages land inside the same pause window: all are deferred
     to the same w_until_us, and the per-channel FIFO must still hand them
     over in send order (engine ties break by insertion order; the channel
     clamp never reorders). Each send is charged at send time — the pile-up
     defers delivery, not the wire accounting. *)
  let window = { Fault.w_node = 1; w_kind = Fault.Pause; w_from_us = 0.0; w_until_us = 500.0 } in
  let engine, net = make_faulty ~windows:[ window ] () in
  let got = ref [] in
  Network.set_handler net ~node:1 (fun ~src:_ m -> got := (m, Engine.now engine) :: !got);
  List.iteri
    (fun i m ->
      Engine.schedule engine ~delay:(float_of_int i *. 10.0) (fun () ->
          Network.send net ~src:0 ~dst:1 ~kind:Network.Control ~bytes:100 ~tag:0 m))
    [ "1"; "2"; "3" ];
  Engine.run engine;
  let deliveries = List.rev !got in
  Alcotest.(check (list string)) "fifo preserved through the pile-up" [ "1"; "2"; "3" ]
    (List.map fst deliveries);
  List.iter
    (fun (m, at) ->
      Alcotest.(check (float 0.001)) (Printf.sprintf "%s released at window end" m) 500.0 at)
    deliveries;
  Alcotest.(check int) "every send charged" 3 (Network.stats net).Network.messages;
  Alcotest.(check int) "every defer counted" 3 (Network.fault_stats net).Fault.pause_defers

let test_inactive_faults_identical () =
  (* A zero-rate fault config must not perturb anything — same latency as the
     plain network, injector disarmed. *)
  let engine, net = make_faulty ~drop:0.0 ~dup:0.0 ~jitter:0.0 () in
  Alcotest.(check bool) "injector disarmed" false (Network.faults_active net);
  let at = ref (-1.0) in
  Network.set_handler net ~node:1 (fun ~src:_ _ -> at := Engine.now engine);
  Network.send net ~src:0 ~dst:1 ~kind:Network.Control ~bytes:1250 ~tag:0 "x";
  Engine.run engine;
  Alcotest.(check (float 0.001)) "baseline latency" 120.0 !at;
  Alcotest.(check int) "no faults recorded" 0 (Fault.total_faults (Network.fault_stats net))

let test_fault_validate () =
  let ok c = Alcotest.(check bool) "valid" true (Result.is_ok (Fault.validate c)) in
  let bad c = Alcotest.(check bool) "invalid" true (Result.is_error (Fault.validate c)) in
  ok Fault.none;
  ok { Fault.none with Fault.drop_probability = 0.2; duplicate_probability = 1.0 };
  bad { Fault.none with Fault.drop_probability = 1.5 };
  bad { Fault.none with Fault.duplicate_probability = -0.1 };
  bad { Fault.none with Fault.delay_jitter_us = -5.0 };
  bad
    {
      Fault.none with
      Fault.windows =
        [ { Fault.w_node = 0; w_kind = Fault.Pause; w_from_us = 10.0; w_until_us = 5.0 } ];
    };
  bad
    {
      Fault.none with
      Fault.windows =
        [ { Fault.w_node = -1; w_kind = Fault.Crash; w_from_us = 0.0; w_until_us = 5.0 } ];
    }

let tests =
  [
    ( "network",
      [
        Alcotest.test_case "transfer time" `Quick test_transfer_time;
        Alcotest.test_case "preset links" `Quick test_preset_links;
        Alcotest.test_case "delivery and latency" `Quick test_delivery_and_latency;
        Alcotest.test_case "stats and kinds" `Quick test_stats_and_kinds;
        Alcotest.test_case "local send not counted" `Quick test_local_send_not_counted;
        Alcotest.test_case "on_message hook" `Quick test_on_message_hook;
        Alcotest.test_case "missing handler" `Quick test_missing_handler;
        Alcotest.test_case "bad node" `Quick test_bad_node;
        Alcotest.test_case "fifo between pair" `Quick test_fifo_between_pair;
        Alcotest.test_case "fifo no overtaking" `Quick test_fifo_small_does_not_overtake_large;
      ] );
    ( "network faults",
      [
        Alcotest.test_case "drop all" `Quick test_drop_all;
        Alcotest.test_case "duplicate all" `Quick test_duplicate_all;
        Alcotest.test_case "jitter deterministic" `Quick test_jitter_deterministic;
        Alcotest.test_case "jitter keeps channel fifo" `Quick test_jitter_keeps_channel_fifo;
        Alcotest.test_case "pause window defers" `Quick test_pause_window_defers;
        Alcotest.test_case "crash window drops" `Quick test_crash_window_drops;
        Alcotest.test_case "crash window swallows self-send" `Quick test_crash_window_self_send;
        Alcotest.test_case "pause window defers self-send" `Quick
          test_pause_window_self_send_defers;
        Alcotest.test_case "pause window fifo pile-up" `Quick test_pause_window_fifo_pileup;
        Alcotest.test_case "inactive config identical" `Quick test_inactive_faults_identical;
        Alcotest.test_case "fault validate" `Quick test_fault_validate;
      ] );
  ]
