(* Tests for the simulated interconnect. *)

open Sim

let test_transfer_time () =
  let link = { Network.bandwidth_bps = 1e8; software_cost_us = 20.0 } in
  (* 1250 bytes = 10,000 bits; at 100 Mbps that's 100 us on the wire. *)
  Alcotest.(check (float 0.001)) "sw + serialisation" 120.0 (Network.transfer_time_us link 1250);
  Alcotest.(check (float 0.001)) "zero bytes = sw only" 20.0 (Network.transfer_time_us link 0)

let test_preset_links () =
  Alcotest.(check (float 1.0)) "10 Mbps" 1e7 Network.link_10mbps.Network.bandwidth_bps;
  Alcotest.(check (float 1.0)) "100 Mbps" 1e8 Network.link_100mbps.Network.bandwidth_bps;
  Alcotest.(check (float 1.0)) "1 Gbps" 1e9 Network.link_1gbps.Network.bandwidth_bps

let make ?on_message () =
  let engine = Engine.create () in
  let net = Network.create ~engine ~node_count:3 ~link:Network.link_100mbps ?on_message () in
  (engine, net)

let test_delivery_and_latency () =
  let engine, net = make () in
  let arrived = ref (-1.0) in
  let got = ref "" in
  Network.set_handler net ~node:1 (fun ~src msg ->
      Alcotest.(check int) "src" 0 src;
      got := msg;
      arrived := Engine.now engine);
  Network.set_handler net ~node:0 (fun ~src:_ _ -> ());
  Network.set_handler net ~node:2 (fun ~src:_ _ -> ());
  Network.send net ~src:0 ~dst:1 ~kind:Network.Control ~bytes:1250 ~tag:7 "hello";
  Engine.run engine;
  Alcotest.(check string) "payload" "hello" !got;
  Alcotest.(check (float 0.001)) "latency" 120.0 !arrived

let test_stats_and_kinds () =
  let engine, net = make () in
  List.iter (fun n -> Network.set_handler net ~node:n (fun ~src:_ _ -> ())) [ 0; 1; 2 ];
  Network.send net ~src:0 ~dst:1 ~kind:Network.Control ~bytes:100 ~tag:1 "c";
  Network.send net ~src:1 ~dst:2 ~kind:Network.Data ~bytes:4000 ~tag:2 "d";
  Engine.run engine;
  let s = Network.stats net in
  Alcotest.(check int) "messages" 2 s.Network.messages;
  Alcotest.(check int) "bytes" 4100 s.Network.bytes;
  Alcotest.(check int) "control msgs" 1 s.Network.control_messages;
  Alcotest.(check int) "control bytes" 100 s.Network.control_bytes;
  Alcotest.(check int) "data msgs" 1 s.Network.data_messages;
  Alcotest.(check int) "data bytes" 4000 s.Network.data_bytes

let test_local_send_not_counted () =
  let hook_calls = ref 0 in
  let engine, net = make ~on_message:(fun ~src:_ ~dst:_ ~kind:_ ~bytes:_ ~tag:_ -> incr hook_calls) () in
  let delivered = ref false in
  Network.set_handler net ~node:0 (fun ~src:_ _ -> delivered := true);
  Network.send net ~src:0 ~dst:0 ~kind:Network.Data ~bytes:9999 ~tag:1 "self";
  Engine.run engine;
  Alcotest.(check bool) "delivered" true !delivered;
  Alcotest.(check int) "not counted" 0 (Network.stats net).Network.messages;
  Alcotest.(check int) "hook not fired" 0 !hook_calls

let test_on_message_hook () =
  let seen = ref [] in
  let engine, net =
    make ~on_message:(fun ~src ~dst ~kind:_ ~bytes ~tag -> seen := (src, dst, bytes, tag) :: !seen) ()
  in
  List.iter (fun n -> Network.set_handler net ~node:n (fun ~src:_ _ -> ())) [ 0; 1; 2 ];
  Network.send net ~src:2 ~dst:0 ~kind:Network.Data ~bytes:500 ~tag:42 "x";
  Engine.run engine;
  Alcotest.(check (list (pair (pair int int) (pair int int))))
    "hook saw message"
    [ ((2, 0), (500, 42)) ]
    (List.map (fun (a, b, c, d) -> ((a, b), (c, d))) !seen)

let test_missing_handler () =
  let engine, net = make () in
  Network.send net ~src:0 ~dst:1 ~kind:Network.Control ~bytes:10 ~tag:0 "x";
  Alcotest.check_raises "no handler" (Invalid_argument "Network: node 1 has no handler")
    (fun () -> Engine.run engine)

let test_bad_node () =
  let _, net = make () in
  Alcotest.check_raises "bad node" (Invalid_argument "Network: node id out of range") (fun () ->
      Network.send net ~src:0 ~dst:5 ~kind:Network.Control ~bytes:1 ~tag:0 "x")

let test_fifo_between_pair () =
  (* Equal-size messages between the same pair deliver in send order. *)
  let engine, net = make () in
  let got = ref [] in
  List.iter (fun n -> Network.set_handler net ~node:n (fun ~src:_ m -> got := m :: !got)) [ 0; 1; 2 ];
  List.iter
    (fun m -> Network.send net ~src:0 ~dst:1 ~kind:Network.Control ~bytes:100 ~tag:0 m)
    [ "1"; "2"; "3" ];
  Engine.run engine;
  Alcotest.(check (list string)) "in order" [ "1"; "2"; "3" ] (List.rev !got)

let test_fifo_small_does_not_overtake_large () =
  (* A later small message must not overtake an earlier large one on the
     same channel (connection FIFO), but is free to on another channel. *)
  let engine, net = make () in
  let got = ref [] in
  List.iter (fun n -> Network.set_handler net ~node:n (fun ~src:_ m -> got := m :: !got)) [ 0; 1; 2 ];
  Network.send net ~src:0 ~dst:1 ~kind:Network.Data ~bytes:1_000_000 ~tag:0 "big";
  Network.send net ~src:0 ~dst:1 ~kind:Network.Control ~bytes:10 ~tag:0 "small-same";
  Network.send net ~src:2 ~dst:1 ~kind:Network.Control ~bytes:10 ~tag:0 "small-other";
  Engine.run engine;
  Alcotest.(check (list string)) "channel fifo preserved"
    [ "small-other"; "big"; "small-same" ]
    (List.rev !got)

let tests =
  [
    ( "network",
      [
        Alcotest.test_case "transfer time" `Quick test_transfer_time;
        Alcotest.test_case "preset links" `Quick test_preset_links;
        Alcotest.test_case "delivery and latency" `Quick test_delivery_and_latency;
        Alcotest.test_case "stats and kinds" `Quick test_stats_and_kinds;
        Alcotest.test_case "local send not counted" `Quick test_local_send_not_counted;
        Alcotest.test_case "on_message hook" `Quick test_on_message_hook;
        Alcotest.test_case "missing handler" `Quick test_missing_handler;
        Alcotest.test_case "bad node" `Quick test_bad_node;
        Alcotest.test_case "fifo between pair" `Quick test_fifo_between_pair;
        Alcotest.test_case "fifo no overtaking" `Quick test_fifo_small_does_not_overtake_large;
      ] );
  ]
