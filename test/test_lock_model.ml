(* Model-based property tests for the concurrency-control core.

   Random operation sequences are applied simultaneously to the real
   implementations and to deliberately naive reference models; observable
   states must agree, and structural invariants must hold after every
   step. *)

open Objmodel
open Txn

let oid = Oid.of_int

(* ------------------------------------------------------------------ *)
(* GDO model: a trivially correct single-object lock with FIFO queue.  *)

module Gdo_model = struct
  type t = {
    mutable writer : int option;  (* family *)
    mutable readers : int list;
    mutable queue : (int * Lock.mode) list;  (* FIFO; upgrades at front *)
  }

  let create () = { writer = None; readers = []; queue = [] }

  let holds m f = m.writer = Some f || List.mem f m.readers

  (* Mirrors the directory's granting policy. Returns `Granted | `Queued. *)
  let acquire m ~family ~mode =
    match (m.writer, mode) with
    | None, _ when m.readers = [] && m.queue = [] ->
        (match mode with
        | Lock.Read -> m.readers <- [ family ]
        | Lock.Write -> m.writer <- Some family);
        `Granted
    | Some w, _ when w = family -> `Granted  (* re-entrant *)
    | None, Lock.Read when List.mem family m.readers -> `Granted
    | None, Lock.Write when m.readers = [ family ] ->
        m.readers <- [];
        m.writer <- Some family;
        `Granted  (* sole-reader upgrade *)
    | None, Lock.Read when m.queue = [] ->
        if not (List.mem family m.readers) then m.readers <- m.readers @ [ family ];
        `Granted
    | _ ->
        let upgrade = List.mem family m.readers && mode = Lock.Write in
        if upgrade then m.queue <- (family, mode) :: m.queue
        else m.queue <- m.queue @ [ (family, mode) ];
        `Queued

  let rec promote m =
    match m.queue with
    | [] -> ()
    | (f, Lock.Write) :: rest when m.writer = None && m.readers = [ f ] ->
        (* upgrade completes *)
        m.readers <- [];
        m.writer <- Some f;
        m.queue <- rest
    | (f, Lock.Write) :: rest when m.writer = None && m.readers = [] ->
        m.writer <- Some f;
        m.queue <- rest
    | (f, Lock.Read) :: rest when m.writer = None ->
        if not (List.mem f m.readers) then m.readers <- m.readers @ [ f ];
        m.queue <- rest;
        promote m
    | _ -> ()

  let release m ~family =
    if holds m family then begin
      if m.writer = Some family then m.writer <- None;
      m.readers <- List.filter (( <> ) family) m.readers;
      promote m
    end
end

let families = [ 1; 2; 3; 4 ]

type op = Acquire of int * Lock.mode | Release of int

let op_gen =
  QCheck.Gen.(
    let* f = oneofl families in
    let* kind = int_bound 2 in
    return (if kind = 0 then Release f else Acquire (f, if kind = 1 then Lock.Read else Lock.Write)))

let ops_gen = QCheck.Gen.(list_size (int_range 1 60) op_gen)

let print_ops ops =
  String.concat ";"
    (List.map
       (function
         | Acquire (f, m) -> Printf.sprintf "A%d%s" f (Format.asprintf "%a" Lock.pp m)
         | Release f -> Printf.sprintf "R%d" f)
       ops)

(* The real directory signals queue entry via Queued + deferred delivery;
   the model grants synchronously in promote. We track, per family, whether
   it currently holds according to each side, and compare after every op. *)
let run_scenario ops =
  let dir = Gdo.Directory.create () in
  Gdo.Directory.register_object dir (oid 0) ~pages:1 ~initial_node:0;
  let model = Gdo_model.create () in
  (* Families that deadlocked in the real directory get force-released in
     the model too (the runtime would abort them). *)
  let ok = ref true in
  let model_holds f = Gdo_model.holds model f in
  let real_holds f =
    List.exists
      (fun (h : Gdo.Directory.holder) -> Txn_id.to_int h.Gdo.Directory.family = f)
      (Gdo.Directory.holders dir (oid 0))
  in
  (* The runtime contract: a family blocked in the GDO queue issues no
     further operations until its deferred grant arrives. Model that by
     skipping ops of blocked families; deliveries unblock. *)
  let blocked = Hashtbl.create 8 in
  let apply_deliveries ds =
    List.iter
      (fun (d : Gdo.Directory.delivery) ->
        Hashtbl.remove blocked (Txn_id.to_int d.Gdo.Directory.d_family))
      ds
  in
  List.iter
    (fun op ->
      (match op with
      | Acquire (f, _) when Hashtbl.mem blocked f -> ()
      | Release f when Hashtbl.mem blocked f -> ()
      | Acquire (f, mode) -> (
          let family = Txn_id.of_int f in
          match Gdo.Directory.acquire dir (oid 0) ~family ~node:f ~mode () with
          | Gdo.Directory.Granted _ ->
              (match Gdo_model.acquire model ~family:f ~mode with
              | `Granted -> ()
              | `Queued -> ok := false)
          | Gdo.Directory.Queued -> (
              Hashtbl.replace blocked f ();
              match Gdo_model.acquire model ~family:f ~mode with
              | `Queued -> ()
              | `Granted -> ok := false)
          | Gdo.Directory.Busy -> ok := false
          | Gdo.Directory.Deadlock _ ->
              (* single object: only the upgrade-upgrade cycle; the victim
                 would abort, releasing its read lock on both sides. *)
              Gdo_model.release model ~family:f;
              apply_deliveries (Gdo.Directory.release dir (oid 0) ~family ~dirty:[]))
      | Release f ->
          Gdo_model.release model ~family:f;
          apply_deliveries (Gdo.Directory.release dir (oid 0) ~family:(Txn_id.of_int f) ~dirty:[]));
      (* Deferred grants in the real directory have been applied by release;
         compare holder sets. *)
      List.iter
        (fun f -> if model_holds f <> real_holds f then ok := false)
        families;
      (* Structural invariants. *)
      let holders = Gdo.Directory.holders dir (oid 0) in
      (match Gdo.Directory.lock_state dir (oid 0) with
      | Gdo.Directory.Free -> if holders <> [] then ok := false
      | Gdo.Directory.Held_write -> if List.length holders <> 1 then ok := false
      | Gdo.Directory.Held_read -> if holders = [] then ok := false);
      (* No family both holds and waits on the same object. *)
      List.iter
        (fun (w, h) -> if Txn_id.equal w h then ok := false)
        (Gdo.Directory.waits_for_edges dir))
    ops;
  !ok

let prop_gdo_matches_model =
  QCheck.Test.make ~name:"gdo agrees with reference lock model" ~count:500
    (QCheck.make ~print:print_ops ops_gen)
    run_scenario

(* ------------------------------------------------------------------ *)
(* Local_locks invariants under random intra-family sequences.          *)

(* A random family tree of depth <= 3 with <= 6 transactions; operations
   install/acquire/precommit/abort in random order, with legality enforced
   at application time (illegal ops are skipped). Invariants:
   - a transaction never both holds and retains without having had a child;
   - retainers are always family members;
   - after the root releases, the table is empty for that family. *)
let prop_local_locks_invariants =
  let gen = QCheck.Gen.(pair int (list_size (int_range 1 40) (int_bound 99))) in
  QCheck.Test.make ~name:"local lock table invariants under random ops" ~count:300
    (QCheck.make
       ~print:(fun (seed, ops) -> Printf.sprintf "seed=%d ops=%d" seed (List.length ops))
       gen)
    (fun (seed, ops) ->
      let rng = Sim.Prng.create ~seed in
      let tree = Txn_tree.create () in
      let table = Local_locks.create tree in
      let root = Txn_tree.create_root tree ~node:0 in
      let live = ref [ root ] in
      let installed = ref false in
      let ok = ref true in
      let object_ = oid 7 in
      List.iter
        (fun op_code ->
          match op_code mod 5 with
          | 0 ->
              (* spawn a child of a random live txn *)
              if List.length !live < 6 then begin
                let parent = Sim.Prng.pick_list rng !live in
                if Txn_tree.status tree parent = Txn_tree.Active then
                  live := Txn_tree.create_child tree ~parent :: !live
              end
          | 1 ->
              (* acquire (installing the family grant first if needed) *)
              let txn = Sim.Prng.pick_list rng !live in
              if Txn_tree.status tree txn = Txn_tree.Active then begin
                if not !installed then begin
                  Local_locks.install_grant table object_ ~txn ~mode:Lock.Write;
                  installed := true
                end
                else
                  ignore
                    (Local_locks.acquire table object_ ~txn ~mode:Lock.Write ~wake:(fun () -> ()))
              end
          | 2 ->
              (* precommit a random live non-root leaf *)
              let candidates =
                List.filter
                  (fun t ->
                    (not (Txn_tree.is_root tree t))
                    && Txn_tree.status tree t = Txn_tree.Active
                    && List.for_all
                         (fun c -> Txn_tree.status tree c <> Txn_tree.Active)
                         (Txn_tree.children tree t))
                  !live
              in
              if candidates <> [] then begin
                let t = Sim.Prng.pick_list rng candidates in
                Local_locks.precommit table t;
                Txn_tree.set_status tree t Txn_tree.Precommitted;
                live := List.filter (fun x -> not (Txn_id.equal x t)) !live
              end
          | 3 ->
              (* abort a random live non-root txn *)
              let candidates =
                List.filter
                  (fun t ->
                    (not (Txn_tree.is_root tree t)) && Txn_tree.status tree t = Txn_tree.Active)
                  !live
              in
              if candidates <> [] then begin
                let t = Sim.Prng.pick_list rng candidates in
                Local_locks.abort table t ~to_release:(fun _ -> installed := false);
                Txn_tree.set_status tree t Txn_tree.Aborted;
                live := List.filter (fun x -> not (Txn_id.equal x t)) !live
              end
          | _ ->
              (* invariant check: retainers are strict ancestors of nobody
                 outside the family and belong to the tree *)
              List.iter
                (fun (r, _) ->
                  if not (Txn_id.equal (Txn_tree.root_of tree r) root) then ok := false)
                (Local_locks.retainers table object_ ~family:root))
        ops;
      (* Root release always empties the family's entries. *)
      ignore (Local_locks.root_release table ~root);
      if Local_locks.objects_of_family table ~family:root <> [] then ok := false;
      !ok)

let tests =
  [
    ( "lock-model",
      [
        QCheck_alcotest.to_alcotest prop_gdo_matches_model;
        QCheck_alcotest.to_alcotest prop_local_locks_invariants;
      ] );
  ]
