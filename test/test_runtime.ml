(* Integration tests of the full runtime: nested transactions over the
   simulated cluster, all four protocols. *)

open Objmodel

let oid = Oid.of_int

(* A small banking world: two account objects (one page each) and a branch
   object whose [transfer] method invokes a withdraw and a deposit —
   a three-transaction family. *)

let attr size name = Attribute.make ~name ~size_bytes:size

let account_class ~page_size =
  Obj_class.compile ~page_size
    (Obj_class.define ~name:"Account"
       ~attrs:[| attr 64 "balance"; attr 64 "last_txn" |]
       ~methods:
         [
           Method_ir.make ~name:"deposit" ~body:[ Method_ir.Read 0; Method_ir.Write 0; Method_ir.Write 1 ];
           Method_ir.make ~name:"audit" ~body:[ Method_ir.Read 0; Method_ir.Read 1 ];
         ]
       ~ref_slots:0)

let branch_class ~page_size =
  Obj_class.compile ~page_size
    (Obj_class.define ~name:"Branch"
       ~attrs:[| attr 64 "volume" |]
       ~methods:
         [
           Method_ir.make ~name:"transfer"
             ~body:
               [
                 Method_ir.Invoke { slot = 0; meth = "deposit" };
                 Method_ir.Invoke { slot = 1; meth = "deposit" };
                 Method_ir.Write 0;
               ];
           Method_ir.make ~name:"report"
             ~body:
               [
                 Method_ir.Invoke { slot = 0; meth = "audit" };
                 Method_ir.Invoke { slot = 1; meth = "audit" };
                 Method_ir.Read 0;
               ];
         ]
       ~ref_slots:2)

let bank_catalog ~page_size =
  let acct = account_class ~page_size in
  let branch = branch_class ~page_size in
  Catalog.create
    [
      { Catalog.oid = oid 0; cls = branch; refs = [| oid 1; oid 2 |] };
      { Catalog.oid = oid 1; cls = acct; refs = [||] };
      { Catalog.oid = oid 2; cls = acct; refs = [||] };
    ]

let make_runtime ?(protocol = Dsm.Protocol.Lotec) ?(nodes = 4) ?(config = Core.Config.default)
    ?catalog () =
  let config = { config with Core.Config.protocol; node_count = nodes } in
  let catalog =
    match catalog with Some c -> c | None -> bank_catalog ~page_size:config.Core.Config.page_size
  in
  Core.Runtime.create ~config ~catalog

(* The GDO page map and the per-node stores must agree after a run: the node
   a page maps to really holds that version. *)
let check_consistency rt =
  let cat = Core.Runtime.catalog rt in
  let dir = Core.Runtime.directory rt in
  List.iter
    (fun o ->
      let nodes, versions = Gdo.Directory.page_map dir o in
      Array.iteri
        (fun p node ->
          let v = Dsm.Page_store.version (Core.Runtime.store rt ~node) o ~page:p in
          if v < versions.(p) then
            Alcotest.failf "page map says %a page %d v%d at node %d, store has v%d" Oid.pp o p
              versions.(p) node v)
        nodes)
    (Catalog.oids cat)

let check_serializable rt =
  match Core.Runtime.check_serializable rt with
  | Core.Serializability.Serializable _ -> ()
  | Core.Serializability.Cyclic _ -> Alcotest.fail "history not serializable"

let committed rt =
  (Dsm.Metrics.totals (Core.Runtime.metrics rt)).Dsm.Metrics.roots_committed

let test_single_root_commits () =
  let rt = make_runtime () in
  Core.Runtime.submit rt ~at:0.0 ~node:1 ~oid:(oid 0) ~meth:"transfer" ~seed:1;
  Core.Runtime.run rt;
  Alcotest.(check int) "committed" 1 (committed rt);
  (match Core.Runtime.results rt with
  | [ r ] ->
      Alcotest.(check bool) "outcome" true (r.Core.Runtime.outcome = Core.Runtime.Committed);
      Alcotest.(check int) "attempts" 1 r.Core.Runtime.attempts;
      Alcotest.(check bool) "time sane" true
        (r.Core.Runtime.completed_at >= r.Core.Runtime.submitted_at)
  | rs -> Alcotest.failf "expected 1 result, got %d" (List.length rs));
  check_serializable rt;
  check_consistency rt;
  (* Family of 3: root + two deposits. *)
  match Core.Runtime.committed_history rt with
  | [ h ] ->
      Alcotest.(check bool) "wrote both accounts and branch" true
        (List.length h.Core.Serializability.writes >= 3)
  | _ -> Alcotest.fail "one family expected"

let test_locks_released_after_run () =
  let rt = make_runtime () in
  Core.Runtime.submit rt ~at:0.0 ~node:1 ~oid:(oid 0) ~meth:"transfer" ~seed:1;
  Core.Runtime.run rt;
  let dir = Core.Runtime.directory rt in
  List.iter
    (fun o ->
      Alcotest.(check bool) "free" true (Gdo.Directory.lock_state dir o = Gdo.Directory.Free);
      Alcotest.(check int) "no waiters" 0 (Gdo.Directory.waiting_count dir o))
    (Catalog.oids (Core.Runtime.catalog rt))

let test_update_visible_across_nodes () =
  let rt = make_runtime () in
  Core.Runtime.submit rt ~at:0.0 ~node:0 ~oid:(oid 1) ~meth:"deposit" ~seed:1;
  Core.Runtime.submit rt ~at:10_000.0 ~node:3 ~oid:(oid 1) ~meth:"audit" ~seed:2;
  Core.Runtime.run rt;
  Alcotest.(check int) "both committed" 2 (committed rt);
  check_serializable rt;
  (* The audit family must have observed the deposit's version. *)
  let history = Core.Runtime.committed_history rt in
  let deposit = List.nth history 0 and audit = List.nth history 1 in
  let written_v =
    List.fold_left (fun acc a -> max acc a.Core.Serializability.version) 0
      deposit.Core.Serializability.writes
  in
  let read_v =
    List.fold_left (fun acc a -> max acc a.Core.Serializability.version) 0
      audit.Core.Serializability.reads
  in
  Alcotest.(check bool) "read saw write" true (read_v >= written_v && written_v > 0)

let test_conflicting_writers_serialize () =
  let rt = make_runtime () in
  for i = 0 to 5 do
    Core.Runtime.submit rt ~at:(float_of_int i) ~node:(i mod 4) ~oid:(oid 0) ~meth:"transfer"
      ~seed:(100 + i)
  done;
  Core.Runtime.run rt;
  Alcotest.(check int) "all committed" 6 (committed rt);
  check_serializable rt;
  check_consistency rt

let test_concurrent_readers_share () =
  let rt = make_runtime () in
  for i = 0 to 3 do
    Core.Runtime.submit rt ~at:0.0 ~node:i ~oid:(oid 0) ~meth:"report" ~seed:(200 + i)
  done;
  Core.Runtime.run rt;
  Alcotest.(check int) "all committed" 4 (committed rt);
  check_serializable rt

let run_protocol protocol =
  let rt = make_runtime ~protocol () in
  for i = 0 to 7 do
    Core.Runtime.submit rt ~at:(float_of_int (i * 50)) ~node:(i mod 4) ~oid:(oid 0)
      ~meth:(if i mod 3 = 0 then "report" else "transfer")
      ~seed:(300 + i)
  done;
  Core.Runtime.run rt;
  rt

let test_all_protocols_complete () =
  List.iter
    (fun protocol ->
      let rt = run_protocol protocol in
      Alcotest.(check int)
        (Format.asprintf "%a commits all" Dsm.Protocol.pp protocol)
        8 (committed rt);
      check_serializable rt;
      check_consistency rt)
    Dsm.Protocol.all

let test_no_demand_fetch_for_eager_protocols () =
  List.iter
    (fun protocol ->
      let rt = run_protocol protocol in
      let t = Dsm.Metrics.totals (Core.Runtime.metrics rt) in
      Alcotest.(check int)
        (Format.asprintf "%a demand fetches" Dsm.Protocol.pp protocol)
        0 t.Dsm.Metrics.demand_fetches)
    [ Dsm.Protocol.Cotec; Dsm.Protocol.Otec ]

let test_upgrade_deadlock_resolved () =
  (* Two symmetric families each read object 1 (via audit) then write it (via
     deposit) inside one root: classic upgrade deadlock; the victim retries
     and both commit. *)
  let page_size = Core.Config.default.Core.Config.page_size in
  (* The audited read phase loops long enough that both families hold Read
     concurrently before either requests the upgrade. *)
  let acct =
    Obj_class.compile ~page_size
      (Obj_class.define ~name:"SlowAccount"
         ~attrs:[| attr 64 "balance" |]
         ~methods:
           [
             Method_ir.make ~name:"audit"
               ~body:[ Method_ir.Loop { count = 2000; body = [ Method_ir.Read 0 ] } ];
             Method_ir.make ~name:"deposit" ~body:[ Method_ir.Write 0 ];
           ]
         ~ref_slots:0)
  in
  let driver =
    Obj_class.compile ~page_size
      (Obj_class.define ~name:"Driver" ~attrs:[||]
         ~methods:
           [
             Method_ir.make ~name:"read_then_write"
               ~body:
                 [
                   Method_ir.Invoke { slot = 0; meth = "audit" };
                   Method_ir.Invoke { slot = 0; meth = "deposit" };
                 ];
           ]
         ~ref_slots:1)
  in
  let catalog =
    Catalog.create
      [
        { Catalog.oid = oid 0; cls = driver; refs = [| oid 2 |] };
        { Catalog.oid = oid 1; cls = driver; refs = [| oid 2 |] };
        { Catalog.oid = oid 2; cls = acct; refs = [||] };
      ]
  in
  let rt = make_runtime ~catalog () in
  Core.Runtime.submit rt ~at:0.0 ~node:1 ~oid:(oid 0) ~meth:"read_then_write" ~seed:1;
  Core.Runtime.submit rt ~at:0.0 ~node:2 ~oid:(oid 1) ~meth:"read_then_write" ~seed:2;
  Core.Runtime.run rt;
  let t = Dsm.Metrics.totals (Core.Runtime.metrics rt) in
  Alcotest.(check int) "both committed" 2 (committed rt);
  Alcotest.(check bool) "a deadlock was detected and resolved" true
    (t.Dsm.Metrics.deadlock_aborts >= 1);
  Alcotest.(check bool) "upgrades happened" true (t.Dsm.Metrics.upgrades >= 1);
  check_serializable rt;
  check_consistency rt

let test_abort_injection_recovers () =
  let config = { Core.Config.default with Core.Config.abort_probability = 0.3 } in
  let rt = make_runtime ~config () in
  for i = 0 to 9 do
    Core.Runtime.submit rt ~at:(float_of_int (i * 100)) ~node:(i mod 4) ~oid:(oid 0)
      ~meth:"transfer" ~seed:(400 + i)
  done;
  Core.Runtime.run rt;
  let t = Dsm.Metrics.totals (Core.Runtime.metrics rt) in
  Alcotest.(check bool) "sub aborts happened" true (t.Dsm.Metrics.sub_aborts > 0);
  Alcotest.(check int) "all recovered" 10 (committed rt);
  check_serializable rt;
  check_consistency rt

let test_prefetch_mode () =
  let config = { Core.Config.default with Core.Config.prefetch = true } in
  let rt = make_runtime ~config () in
  for i = 0 to 7 do
    Core.Runtime.submit rt ~at:(float_of_int (i * 50)) ~node:(i mod 4) ~oid:(oid 0)
      ~meth:"transfer" ~seed:(500 + i)
  done;
  Core.Runtime.run rt;
  Alcotest.(check int) "all committed" 8 (committed rt);
  check_serializable rt;
  check_consistency rt

let test_rc_pushes () =
  let rt = make_runtime ~protocol:Dsm.Protocol.Rc_nested () in
  (* Warm two nodes' caches, then a third write triggers pushes to both. *)
  Core.Runtime.submit rt ~at:0.0 ~node:0 ~oid:(oid 1) ~meth:"deposit" ~seed:1;
  Core.Runtime.submit rt ~at:5_000.0 ~node:1 ~oid:(oid 1) ~meth:"deposit" ~seed:2;
  Core.Runtime.submit rt ~at:10_000.0 ~node:2 ~oid:(oid 1) ~meth:"deposit" ~seed:3;
  Core.Runtime.run rt;
  let t = Dsm.Metrics.totals (Core.Runtime.metrics rt) in
  Alcotest.(check bool) "eager pushes happened" true (t.Dsm.Metrics.eager_pushes >= 1);
  Alcotest.(check int) "all committed" 3 (committed rt);
  check_consistency rt

let test_determinism () =
  let run () =
    let rt = run_protocol Dsm.Protocol.Lotec in
    let m = Core.Runtime.metrics rt in
    (Dsm.Metrics.total_bytes m, Dsm.Metrics.total_messages m, Dsm.Metrics.completion_time_us m)
  in
  let b1, m1, t1 = run () and b2, m2, t2 = run () in
  Alcotest.(check int) "bytes deterministic" b1 b2;
  Alcotest.(check int) "messages deterministic" m1 m2;
  Alcotest.(check (float 0.0001)) "time deterministic" t1 t2

let test_byte_ordering_across_protocols () =
  (* The defining byte relationship of the paper, on a generated workload:
     data moved by LOTEC <= OTEC <= COTEC. *)
  let spec =
    { Workload.Spec.default with Workload.Spec.object_count = 16; root_count = 60; seed = 77 }
  in
  let wl = Workload.Generator.generate spec ~page_size:Core.Config.default.Core.Config.page_size in
  let data protocol =
    let run = Experiments.Runner.execute ~protocol wl in
    Dsm.Metrics.total_data_bytes (Experiments.Runner.metrics run)
  in
  let cotec = data Dsm.Protocol.Cotec in
  let otec = data Dsm.Protocol.Otec in
  let lotec = data Dsm.Protocol.Lotec in
  (* Cross-protocol runs take different interleavings, which adds a few
     percent of schedule noise in either direction on small workloads (see
     test_properties.ml); the paper-scale scenarios in Fig_bytes assert the
     strict ordering. *)
  Alcotest.(check bool)
    (Printf.sprintf "otec (%d) <= cotec (%d)" otec cotec)
    true (otec <= int_of_float (float_of_int cotec *. 1.05));
  Alcotest.(check bool)
    (Printf.sprintf "lotec (%d) <= otec (%d) within noise" lotec otec)
    true (lotec <= int_of_float (float_of_int otec *. 1.05))

let test_per_class_protocol_override () =
  (* Overriding every class to COTEC must reproduce uniform COTEC exactly;
     an empty override list must reproduce the default protocol. *)
  let spec =
    { Workload.Spec.default with Workload.Spec.object_count = 8; root_count = 20; seed = 3 }
  in
  let wl = Workload.Generator.generate spec ~page_size:4096 in
  let totals config protocol =
    let r = Experiments.Runner.execute ~config ~protocol wl in
    let m = Experiments.Runner.metrics r in
    (Dsm.Metrics.total_bytes m, Dsm.Metrics.total_messages m)
  in
  let uniform_cotec = totals Core.Config.default Dsm.Protocol.Cotec in
  let all_to_cotec =
    let class_protocols =
      List.init spec.Workload.Spec.object_count (fun i ->
          (Printf.sprintf "C%d" i, Dsm.Protocol.Cotec))
    in
    totals { Core.Config.default with Core.Config.class_protocols } Dsm.Protocol.Lotec
  in
  Alcotest.(check (pair int int)) "all-override equals uniform" uniform_cotec all_to_cotec;
  (* A genuine mix must still complete and serialize. *)
  let mixed =
    {
      Core.Config.default with
      Core.Config.class_protocols =
        [ ("C0", Dsm.Protocol.Cotec); ("C1", Dsm.Protocol.Rc_nested); ("C2", Dsm.Protocol.Otec) ];
    }
  in
  let r = Experiments.Runner.execute ~config:mixed ~protocol:Dsm.Protocol.Lotec wl in
  Alcotest.(check int) "mixed commits all" 20
    (Dsm.Metrics.totals (Experiments.Runner.metrics r)).Dsm.Metrics.roots_committed

let test_submit_validation () =
  let rt = make_runtime () in
  Alcotest.check_raises "bad node" (Invalid_argument "Runtime.submit: node out of range")
    (fun () -> Core.Runtime.submit rt ~at:0.0 ~node:99 ~oid:(oid 0) ~meth:"transfer" ~seed:1);
  Alcotest.check_raises "bad method" Not_found (fun () ->
      Core.Runtime.submit rt ~at:0.0 ~node:0 ~oid:(oid 0) ~meth:"nope" ~seed:1);
  Core.Runtime.run rt;
  Alcotest.check_raises "submit after run" (Invalid_argument "Runtime.submit: run already completed")
    (fun () -> Core.Runtime.submit rt ~at:0.0 ~node:0 ~oid:(oid 0) ~meth:"transfer" ~seed:1)

let test_create_validation () =
  let bad_config = { Core.Config.default with Core.Config.node_count = 0 } in
  Alcotest.check_raises "bad config" (Invalid_argument "Runtime.create: node_count must be positive")
    (fun () ->
      ignore (Core.Runtime.create ~config:bad_config ~catalog:(bank_catalog ~page_size:4096)))

let test_empty_run () =
  let rt = make_runtime () in
  Core.Runtime.run rt;
  Alcotest.(check int) "nothing committed" 0 (committed rt);
  Alcotest.(check (list unit)) "no results" []
    (List.map (fun _ -> ()) (Core.Runtime.results rt))

let test_progress_probe () =
  let rt = make_runtime () in
  Core.Runtime.submit rt ~at:0.0 ~node:0 ~oid:(oid 0) ~meth:"transfer" ~seed:9;
  Core.Runtime.run rt;
  Alcotest.(check bool) "versions advanced" true (Core.Runtime.next_version_exceeds rt 0)

let tests =
  [
    ( "runtime",
      [
        Alcotest.test_case "single root commits" `Quick test_single_root_commits;
        Alcotest.test_case "locks released" `Quick test_locks_released_after_run;
        Alcotest.test_case "update visible across nodes" `Quick test_update_visible_across_nodes;
        Alcotest.test_case "conflicting writers serialize" `Quick test_conflicting_writers_serialize;
        Alcotest.test_case "concurrent readers" `Quick test_concurrent_readers_share;
        Alcotest.test_case "all protocols complete" `Quick test_all_protocols_complete;
        Alcotest.test_case "no demand fetch for eager" `Quick test_no_demand_fetch_for_eager_protocols;
        Alcotest.test_case "upgrade deadlock resolved" `Quick test_upgrade_deadlock_resolved;
        Alcotest.test_case "abort injection recovers" `Quick test_abort_injection_recovers;
        Alcotest.test_case "prefetch mode" `Quick test_prefetch_mode;
        Alcotest.test_case "rc pushes" `Quick test_rc_pushes;
        Alcotest.test_case "determinism" `Quick test_determinism;
        Alcotest.test_case "byte ordering across protocols" `Slow test_byte_ordering_across_protocols;
        Alcotest.test_case "per-class protocol override" `Slow test_per_class_protocol_override;
        Alcotest.test_case "submit validation" `Quick test_submit_validation;
        Alcotest.test_case "create validation" `Quick test_create_validation;
        Alcotest.test_case "empty run" `Quick test_empty_run;
        Alcotest.test_case "progress probe" `Quick test_progress_probe;
      ] );
  ]
