(* Tests for the structured observability layer: HDR histogram bucketing
   and percentiles, the per-message-type wire ledger's exact reconciliation
   with the network's per-object ledger, the Chrome trace export's JSON
   well-formedness, and the guarantee that tracing never perturbs the
   simulation. *)

open Dsm

(* ---------- Histogram ---------- *)

let test_histogram_empty () =
  let h = Histogram.create () in
  Alcotest.(check int) "count" 0 (Histogram.count h);
  Alcotest.(check string) "pp" "(empty)" (Format.asprintf "%a" Histogram.pp h);
  Alcotest.(check (float 0.0)) "percentile of empty" 0.0 (Histogram.percentile h 50.0);
  Alcotest.(check (float 0.0)) "min of empty" 0.0 (Histogram.min_value h)

let test_histogram_exact_small () =
  (* Values below 64 land in exact unit buckets: nearest-rank percentiles
     are exact, not approximate. *)
  let h = Histogram.create () in
  List.iter (fun v -> Histogram.record h (float_of_int v)) [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ];
  Alcotest.(check (float 0.0)) "p50" 5.0 (Histogram.percentile h 50.0);
  Alcotest.(check (float 0.0)) "p90" 9.0 (Histogram.percentile h 90.0);
  Alcotest.(check (float 0.0)) "p99" 10.0 (Histogram.percentile h 99.0);
  Alcotest.(check (float 0.0)) "p100" 10.0 (Histogram.percentile h 100.0);
  Alcotest.(check (float 0.0)) "p0 is min" 1.0 (Histogram.percentile h 0.0);
  Alcotest.(check (float 0.0)) "min" 1.0 (Histogram.min_value h);
  Alcotest.(check (float 0.0)) "max" 10.0 (Histogram.max_value h);
  Alcotest.(check (float 1e-9)) "mean" 5.5 (Histogram.mean h)

let test_histogram_relative_error () =
  (* Above the linear region a bucket spans at most 1/32 of its value:
     reported percentiles stay within ~3.2% of the recorded value. *)
  List.iter
    (fun v ->
      let h = Histogram.create () in
      Histogram.record h v;
      let p = Histogram.percentile h 100.0 in
      let err = Float.abs (p -. v) /. v in
      if err > 1.0 /. 32.0 then
        Alcotest.failf "value %g reported as %g: relative error %.4f > 1/32" v p err)
    [ 64.0; 100.0; 1000.0; 12345.0; 1.0e6; 3.14159e8 ]

let test_histogram_negative_and_rounding () =
  let h = Histogram.create () in
  Histogram.record h (-5.0);
  (* clamped to 0 *)
  Histogram.record h 2.6;
  (* rounded to 3 *)
  Alcotest.(check int) "count" 2 (Histogram.count h);
  Alcotest.(check (float 0.0)) "min clamped" 0.0 (Histogram.min_value h);
  Alcotest.(check (float 0.5)) "max near input" 2.6 (Histogram.max_value h)

let test_histogram_percentile_domain () =
  let h = Histogram.create () in
  Histogram.record h 1.0;
  List.iter
    (fun p ->
      Alcotest.check_raises
        (Printf.sprintf "p=%g rejected" p)
        (Invalid_argument "Histogram.percentile: p outside [0,100]")
        (fun () -> ignore (Histogram.percentile h p)))
    [ -1.0; 100.5 ]

let test_histogram_extreme_values () =
  (* Regression: [record] used to overflow [int_of_float] on values beyond
     the int range (nan/inf/1e300 produce an unspecified int, which indexed
     outside the bucket array), and [percentile] could report a bucket
     midpoint above the recorded maximum. Non-finite and over-range values
     clamp to the top bucket; every percentile stays within
     [min_value, max_value]. *)
  let h = Histogram.create () in
  List.iter (Histogram.record h)
    [ Float.nan; Float.infinity; Float.neg_infinity; 1.0e300; float_of_int max_int; -1.0e300; 3.5 ];
  Alcotest.(check int) "every value counted" 7 (Histogram.count h);
  let p99 = Histogram.percentile h 99.0 and p50 = Histogram.percentile h 50.0 in
  Alcotest.(check bool) "p99 <= max" true (p99 <= Histogram.max_value h);
  Alcotest.(check bool) "p50 >= min" true (p50 >= Histogram.min_value h);
  (* A single huge value: its percentile must equal the recorded max, not
     the (larger) top-bucket midpoint. *)
  let h = Histogram.create () in
  Histogram.record h 9.0e18;
  Alcotest.(check (float 0.0)) "p100 clamped to max" (Histogram.max_value h)
    (Histogram.percentile h 100.0)

let prop_record_never_raises =
  (* Any float — finite, huge, negative, nan, inf — must be recordable, and
     percentiles must stay inside the recorded range. *)
  let special = [ Float.nan; Float.infinity; Float.neg_infinity; 1.79e308; -1.0e300 ] in
  QCheck2.Test.make ~name:"histogram record never raises, percentile in range" ~count:200
    QCheck2.Gen.(
      list_size (int_range 1 50)
        (oneof [ oneofl special; float; float_range (-1.0e9) 1.0e18 ]))
    (fun values ->
      let h = Histogram.create () in
      List.iter (Histogram.record h) values;
      let p99 = Histogram.percentile h 99.0 in
      Histogram.count h = List.length values
      && p99 <= Histogram.max_value h
      && p99 >= Histogram.min_value h)

let prop_percentiles_monotone =
  QCheck2.Test.make ~name:"histogram percentiles are monotone and bounded" ~count:100
    QCheck2.Gen.(list_size (int_range 1 200) (float_range 0.0 1.0e7))
    (fun values ->
      let h = Histogram.create () in
      List.iter (Histogram.record h) values;
      let p50 = Histogram.percentile h 50.0
      and p90 = Histogram.percentile h 90.0
      and p99 = Histogram.percentile h 99.0 in
      let lo = Histogram.min_value h
      and hi = Histogram.max_value h in
      (* Bucket midpoints can sit up to half a bucket width (~1/64 relative,
         plus rounding) outside the recorded extremes. *)
      let slack v = (v /. 32.0) +. 1.0 in
      p50 <= p90 && p90 <= p99
      && p50 >= lo -. slack lo
      && p99 <= hi +. slack hi)

(* ---------- Wire ledger reconciliation ---------- *)

let medium_high_small roots =
  { Workload.Scenarios.medium_high with Workload.Spec.root_count = roots; seed = 42 }

let run_with ?config protocol spec =
  let config = Option.value config ~default:Core.Config.default in
  let wl = Workload.Generator.generate spec ~page_size:config.Core.Config.page_size in
  Experiments.Runner.metrics (Experiments.Runner.execute ~config ~protocol wl)

let check_reconciles m =
  Alcotest.(check int) "wire messages = network messages" (Dsm.Metrics.total_messages m)
    (Dsm.Metrics.wire_messages_total m);
  Alcotest.(check int) "wire bytes = network bytes" (Dsm.Metrics.total_bytes m)
    (Dsm.Metrics.wire_bytes_total m)

let test_wire_reconciles_fault_free () =
  List.iter
    (fun protocol -> check_reconciles (run_with protocol (medium_high_small 40)))
    [ Dsm.Protocol.Cotec; Dsm.Protocol.Otec; Dsm.Protocol.Lotec; Dsm.Protocol.Rc_nested ]

let test_wire_reconciles_under_faults () =
  (* Retransmitted copies and transport acks must land in the ledger exactly
     as the network hook counts them. *)
  let faults =
    {
      Sim.Fault.none with
      Sim.Fault.seed = 7;
      drop_probability = 0.08;
      duplicate_probability = 0.05;
      delay_jitter_us = 40.0;
    }
  in
  let config = { Core.Config.default with Core.Config.faults = Some faults } in
  let m = run_with ~config Dsm.Protocol.Lotec (medium_high_small 30) in
  let totals = Dsm.Metrics.totals m in
  Alcotest.(check bool) "faults actually fired" true
    (totals.Dsm.Metrics.drops > 0 || totals.Dsm.Metrics.duplicates > 0);
  Alcotest.(check bool) "retransmissions happened" true (totals.Dsm.Metrics.retransmits > 0);
  let acks =
    match List.find_opt (fun (w, _, _) -> w = Wire.Ack) (Dsm.Metrics.wire_breakdown m) with
    | Some (_, n, _) -> n
    | None -> 0
  in
  Alcotest.(check bool) "acks recorded under faults" true (acks > 0);
  check_reconciles m

let test_wire_breakdown_rows () =
  let m = run_with Dsm.Protocol.Lotec (medium_high_small 40) in
  let b = Dsm.Metrics.wire_breakdown m in
  Alcotest.(check int) "one row per catalog type" Wire.count (List.length b);
  let find w =
    match List.find_opt (fun (w', _, _) -> w' = w) b with
    | Some (_, n, by) -> (n, by)
    | None -> Alcotest.failf "missing row %s" (Wire.to_string w)
  in
  let acq, _ = find Wire.Acquire_request in
  let grants, _ = find Wire.Grant in
  let preq, _ = find Wire.Page_request in
  let prep, prep_bytes = find Wire.Page_reply in
  Alcotest.(check bool) "acquires flowed" true (acq > 0);
  Alcotest.(check bool) "grants flowed" true (grants > 0);
  Alcotest.(check int) "page replies answer page requests" preq prep;
  Alcotest.(check bool) "page replies carry the data" true
    (prep_bytes > Dsm.Metrics.total_bytes m / 2);
  let acks, _ = find Wire.Ack in
  Alcotest.(check int) "no acks on the reliable network" 0 acks

(* The paper's headline tradeoff, per message type: on the default workload
   LOTEC sends more messages than OTEC but moves fewer consistency bytes
   (lazy fetch pulls only the pages methods touch). *)
let test_lotec_vs_otec_tradeoff () =
  match Experiments.Msg_breakdown.run ~protocols:[ Dsm.Protocol.Otec; Dsm.Protocol.Lotec ] ()
  with
  | [ otec; lotec ] ->
      Alcotest.(check bool)
        (Printf.sprintf "lotec sends more messages (%d vs %d)" lotec.Experiments.Msg_breakdown.messages
           otec.Experiments.Msg_breakdown.messages)
        true
        (lotec.Experiments.Msg_breakdown.messages > otec.Experiments.Msg_breakdown.messages);
      Alcotest.(check bool)
        (Printf.sprintf "lotec moves fewer bytes (%d vs %d)" lotec.Experiments.Msg_breakdown.bytes
           otec.Experiments.Msg_breakdown.bytes)
        true (lotec.Experiments.Msg_breakdown.bytes < otec.Experiments.Msg_breakdown.bytes)
  | _ -> Alcotest.fail "two rows expected"

(* ---------- Tracing is observation only ---------- *)

let summary m = Format.asprintf "%a" Dsm.Metrics.pp_summary m

let test_tracing_off_is_byte_identical () =
  (* A traced run and an untraced run of the same workload must agree on
     every observable metric — tracing is pure observation. The summary
     comparison is byte-level: any drift in counters, traffic or completion
     time fails. *)
  let spec = medium_high_small 40 in
  let traced =
    run_with
      ~config:{ Core.Config.default with Core.Config.trace_capacity = 100_000 }
      Dsm.Protocol.Lotec spec
  in
  let untraced = run_with Dsm.Protocol.Lotec spec in
  Alcotest.(check string) "summaries byte-identical" (summary untraced) (summary traced);
  Alcotest.(check (float 0.0)) "same completion time"
    (Dsm.Metrics.completion_time_us untraced)
    (Dsm.Metrics.completion_time_us traced)

(* ---------- Exporters ---------- *)

let traced_run spec =
  let config = { Core.Config.default with Core.Config.trace_capacity = 100_000 } in
  let wl = Workload.Generator.generate spec ~page_size:config.Core.Config.page_size in
  let run = Experiments.Runner.execute ~config ~protocol:Dsm.Protocol.Lotec wl in
  match Core.Runtime.trace run.Experiments.Runner.runtime with
  | Some tr -> (run, tr)
  | None -> Alcotest.fail "trace expected"

let test_chrome_export_well_formed () =
  let run, tr = traced_run (medium_high_small 30) in
  let node_count =
    (Core.Runtime.config run.Experiments.Runner.runtime).Core.Config.node_count
  in
  let json = Trace_export.to_chrome ~node_count (Sim.Trace.events tr) in
  (match Trace_export.validate_json json with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invalid chrome JSON: %s" e);
  (* Structural spot checks: slices were paired and every node got a track. *)
  let contains needle =
    let nl = String.length needle and l = String.length json in
    let rec go i = i + nl <= l && (String.sub json i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "has duration slices" true (contains "\"ph\": \"X\"");
  Alcotest.(check bool) "has metadata" true (contains "\"process_name\"");
  for n = 0 to node_count - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "track for node %d" n)
      true
      (contains (Printf.sprintf "\"name\": \"node %d\"" n))
  done

let test_chrome_export_deterministic () =
  (* Two identical runs must export byte-identical JSON — in particular
     the flush of unmatched span-opening events (kept in a hash table
     while the trace is scanned) must come out in sorted order, not
     hash-iteration order. A short trace ends with requests still in
     flight, so the flush path is exercised, not just the paired one. *)
  let export () =
    let run, tr = traced_run (medium_high_small 12) in
    let node_count =
      (Core.Runtime.config run.Experiments.Runner.runtime).Core.Config.node_count
    in
    Trace_export.to_chrome ~node_count (Sim.Trace.events tr)
  in
  Alcotest.(check string) "byte-identical across runs" (export ()) (export ())

let test_validate_json_rejects_garbage () =
  List.iter
    (fun (name, s) ->
      match Trace_export.validate_json s with
      | Ok () -> Alcotest.failf "%s accepted" name
      | Error _ -> ())
    [
      ("unterminated object", "{\"a\": 1");
      ("trailing garbage", "{} x");
      ("bare word", "nope");
      ("bad escape", "\"\\q\"");
      ("unquoted key", "{a: 1}");
      ("truncated number", "1.");
    ];
  List.iter
    (fun (name, s) ->
      match Trace_export.validate_json s with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s rejected: %s" name e)
    [
      ("empty object", "{}");
      ("nested", "{\"a\": [1, 2.5e-3, true, null, \"s\\u00e9\"]}");
      ("number", "-12.5e2");
    ]

let test_timeline_filters_by_family () =
  let _, tr = traced_run (medium_high_small 20) in
  (* Find a family that committed. *)
  let family =
    let rec first = function
      | [] -> Alcotest.fail "no commit event retained"
      | e :: rest -> (
          match e.Sim.Trace.data with
          | Event.Root_commit { family; _ } -> family
          | _ -> first rest)
    in
    first (Sim.Trace.events tr)
  in
  let out = Trace_export.timeline ~family (Sim.Trace.events tr) in
  let fam = Format.asprintf "%a" Txn.Txn_id.pp family in
  Alcotest.(check bool) "mentions the family" true
    (String.length out > 0
    &&
    let nl = String.length fam and l = String.length out in
    let rec go i = i + nl <= l && (String.sub out i nl = fam || go (i + 1)) in
    go 0);
  (* An unknown family gets the explanatory one-liner, not an exception. *)
  let missing = Trace_export.timeline ~family:(Txn.Txn_id.of_int 999_999) (Sim.Trace.events tr) in
  Alcotest.(check bool) "unknown family explained" true
    (String.length missing > 0 && not (String.contains missing '['))

let test_latencies_recorded () =
  let spec = medium_high_small 30 in
  let m = run_with Dsm.Protocol.Lotec spec in
  Alcotest.(check bool) "acquire latencies" true (Histogram.count (Dsm.Metrics.acquire_latency m) > 0);
  let commits = (Dsm.Metrics.totals m).Dsm.Metrics.roots_committed in
  Alcotest.(check int) "one commit latency per committed root" commits
    (Histogram.count (Dsm.Metrics.commit_latency m));
  Alcotest.(check int) "no recalls without leases" 0
    (Histogram.count (Dsm.Metrics.recall_latency m));
  Alcotest.(check bool) "acquire p50 <= p99" true
    (Histogram.percentile (Dsm.Metrics.acquire_latency m) 50.0
    <= Histogram.percentile (Dsm.Metrics.acquire_latency m) 99.0)

let tests =
  [
    ( "observability",
      [
        Alcotest.test_case "histogram empty" `Quick test_histogram_empty;
        Alcotest.test_case "histogram exact small values" `Quick test_histogram_exact_small;
        Alcotest.test_case "histogram relative error" `Quick test_histogram_relative_error;
        Alcotest.test_case "histogram clamp and round" `Quick
          test_histogram_negative_and_rounding;
        Alcotest.test_case "histogram percentile domain" `Quick test_histogram_percentile_domain;
        Alcotest.test_case "histogram extreme values" `Quick test_histogram_extreme_values;
        QCheck_alcotest.to_alcotest prop_record_never_raises;
        QCheck_alcotest.to_alcotest prop_percentiles_monotone;
        Alcotest.test_case "wire ledger reconciles" `Quick test_wire_reconciles_fault_free;
        Alcotest.test_case "wire ledger reconciles under faults" `Quick
          test_wire_reconciles_under_faults;
        Alcotest.test_case "wire breakdown rows" `Quick test_wire_breakdown_rows;
        Alcotest.test_case "lotec vs otec tradeoff" `Slow test_lotec_vs_otec_tradeoff;
        Alcotest.test_case "tracing off is byte-identical" `Quick
          test_tracing_off_is_byte_identical;
        Alcotest.test_case "chrome export well-formed" `Quick test_chrome_export_well_formed;
        Alcotest.test_case "chrome export deterministic" `Quick
          test_chrome_export_deterministic;
        Alcotest.test_case "json validator" `Quick test_validate_json_rejects_garbage;
        Alcotest.test_case "timeline filters by family" `Quick test_timeline_filters_by_family;
        Alcotest.test_case "latency histograms recorded" `Quick test_latencies_recorded;
      ] );
  ]
