(* Tests for Sim.Heap. *)

open Sim

let int_heap () = Heap.create ~cmp:Int.compare

let test_empty () =
  let h = int_heap () in
  Alcotest.(check bool) "is_empty" true (Heap.is_empty h);
  Alcotest.(check int) "length" 0 (Heap.length h);
  Alcotest.(check (option int)) "peek" None (Heap.peek h);
  Alcotest.(check (option int)) "pop" None (Heap.pop h);
  Alcotest.check_raises "pop_exn" (Invalid_argument "Heap.pop_exn: empty heap") (fun () ->
      ignore (Heap.pop_exn h))

let test_ordering () =
  let h = int_heap () in
  List.iter (Heap.push h) [ 5; 1; 4; 1; 3; 9; 2 ];
  Alcotest.(check int) "length" 7 (Heap.length h);
  Alcotest.(check (option int)) "peek" (Some 1) (Heap.peek h);
  let drained = List.init 7 (fun _ -> Heap.pop_exn h) in
  Alcotest.(check (list int)) "ascending drain" [ 1; 1; 2; 3; 4; 5; 9 ] drained;
  Alcotest.(check bool) "empty after drain" true (Heap.is_empty h)

let test_interleaved () =
  let h = int_heap () in
  Heap.push h 10;
  Heap.push h 5;
  Alcotest.(check (option int)) "pop min" (Some 5) (Heap.pop h);
  Heap.push h 1;
  Heap.push h 7;
  Alcotest.(check (option int)) "pop new min" (Some 1) (Heap.pop h);
  Alcotest.(check (option int)) "then 7" (Some 7) (Heap.pop h);
  Alcotest.(check (option int)) "then 10" (Some 10) (Heap.pop h)

let test_to_sorted_list_preserves () =
  let h = int_heap () in
  List.iter (Heap.push h) [ 3; 1; 2 ];
  Alcotest.(check (list int)) "sorted copy" [ 1; 2; 3 ] (Heap.to_sorted_list h);
  Alcotest.(check int) "heap unchanged" 3 (Heap.length h)

let test_clear () =
  let h = int_heap () in
  List.iter (Heap.push h) [ 1; 2; 3 ];
  Heap.clear h;
  Alcotest.(check bool) "cleared" true (Heap.is_empty h);
  Heap.push h 42;
  Alcotest.(check (option int)) "usable after clear" (Some 42) (Heap.pop h)

let test_custom_order () =
  let h = Heap.create ~cmp:(fun a b -> Int.compare b a) in
  List.iter (Heap.push h) [ 3; 1; 2 ];
  Alcotest.(check (option int)) "max-heap" (Some 3) (Heap.pop h)

let test_stability_via_pairs () =
  (* Events with equal keys must come out in sequence order when the
     comparison includes a tiebreaker, as the engine's does. *)
  let h =
    Heap.create ~cmp:(fun (t1, s1) (t2, s2) ->
        let c = Int.compare t1 t2 in
        if c <> 0 then c else Int.compare s1 s2)
  in
  List.iter (Heap.push h) [ (1, 0); (1, 1); (0, 2); (1, 3) ];
  let order = List.init 4 (fun _ -> Heap.pop_exn h) in
  Alcotest.(check (list (pair int int))) "fifo among equal keys"
    [ (0, 2); (1, 0); (1, 1); (1, 3) ]
    order

let test_pop_if () =
  let h = int_heap () in
  Alcotest.(check (option int)) "empty" None (Heap.pop_if h ~before:(fun _ -> true));
  List.iter (Heap.push h) [ 5; 1; 9 ];
  Alcotest.(check (option int)) "min not due" None (Heap.pop_if h ~before:(fun x -> x < 1));
  Alcotest.(check int) "nothing removed" 3 (Heap.length h);
  Alcotest.(check (option int)) "min due" (Some 1) (Heap.pop_if h ~before:(fun x -> x <= 5));
  Alcotest.(check (option int)) "next due" (Some 5) (Heap.pop_if h ~before:(fun x -> x <= 5));
  Alcotest.(check (option int)) "9 held back" None (Heap.pop_if h ~before:(fun x -> x <= 5));
  Alcotest.(check (option int)) "unconditional" (Some 9)
    (Heap.pop_if h ~before:(fun _ -> true));
  Alcotest.(check bool) "drained" true (Heap.is_empty h)

let qcheck_pop_if_agrees =
  (* pop_if ~before:p must behave exactly like peek-check-then-pop. *)
  QCheck.Test.make ~name:"pop_if = guarded pop" ~count:200
    QCheck.(pair (list small_int) small_int)
    (fun (xs, bound) ->
      let h = int_heap () and h' = int_heap () in
      List.iter (Heap.push h) xs;
      List.iter (Heap.push h') xs;
      let via_pop_if = List.init (List.length xs) (fun _ -> Heap.pop_if h ~before:(fun x -> x <= bound)) in
      let via_peek =
        List.init (List.length xs) (fun _ ->
            match Heap.peek h' with
            | Some x when x <= bound -> Heap.pop h'
            | _ -> None)
      in
      via_pop_if = via_peek && Heap.length h = Heap.length h')

let qcheck_sorted_drain =
  QCheck.Test.make ~name:"heap drains sorted" ~count:200
    QCheck.(list small_int)
    (fun xs ->
      let h = int_heap () in
      List.iter (Heap.push h) xs;
      let drained = List.init (List.length xs) (fun _ -> Heap.pop_exn h) in
      drained = List.sort Int.compare xs)

let tests =
  [
    ( "heap",
      [
        Alcotest.test_case "empty" `Quick test_empty;
        Alcotest.test_case "ordering" `Quick test_ordering;
        Alcotest.test_case "interleaved" `Quick test_interleaved;
        Alcotest.test_case "to_sorted_list" `Quick test_to_sorted_list_preserves;
        Alcotest.test_case "clear" `Quick test_clear;
        Alcotest.test_case "custom order" `Quick test_custom_order;
        Alcotest.test_case "tiebreaker order" `Quick test_stability_via_pairs;
        Alcotest.test_case "pop_if" `Quick test_pop_if;
        QCheck_alcotest.to_alcotest qcheck_pop_if_agrees;
        QCheck_alcotest.to_alcotest qcheck_sorted_drain;
      ] );
  ]
