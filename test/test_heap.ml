(* Tests for Sim.Heap. *)

open Sim

let int_heap () = Heap.create ~cmp:Int.compare

let test_empty () =
  let h = int_heap () in
  Alcotest.(check bool) "is_empty" true (Heap.is_empty h);
  Alcotest.(check int) "length" 0 (Heap.length h);
  Alcotest.(check (option int)) "peek" None (Heap.peek h);
  Alcotest.(check (option int)) "pop" None (Heap.pop h);
  Alcotest.check_raises "pop_exn" (Invalid_argument "Heap.pop_exn: empty heap") (fun () ->
      ignore (Heap.pop_exn h))

let test_ordering () =
  let h = int_heap () in
  List.iter (Heap.push h) [ 5; 1; 4; 1; 3; 9; 2 ];
  Alcotest.(check int) "length" 7 (Heap.length h);
  Alcotest.(check (option int)) "peek" (Some 1) (Heap.peek h);
  let drained = List.init 7 (fun _ -> Heap.pop_exn h) in
  Alcotest.(check (list int)) "ascending drain" [ 1; 1; 2; 3; 4; 5; 9 ] drained;
  Alcotest.(check bool) "empty after drain" true (Heap.is_empty h)

let test_interleaved () =
  let h = int_heap () in
  Heap.push h 10;
  Heap.push h 5;
  Alcotest.(check (option int)) "pop min" (Some 5) (Heap.pop h);
  Heap.push h 1;
  Heap.push h 7;
  Alcotest.(check (option int)) "pop new min" (Some 1) (Heap.pop h);
  Alcotest.(check (option int)) "then 7" (Some 7) (Heap.pop h);
  Alcotest.(check (option int)) "then 10" (Some 10) (Heap.pop h)

let test_to_sorted_list_preserves () =
  let h = int_heap () in
  List.iter (Heap.push h) [ 3; 1; 2 ];
  Alcotest.(check (list int)) "sorted copy" [ 1; 2; 3 ] (Heap.to_sorted_list h);
  Alcotest.(check int) "heap unchanged" 3 (Heap.length h)

let test_clear () =
  let h = int_heap () in
  List.iter (Heap.push h) [ 1; 2; 3 ];
  Heap.clear h;
  Alcotest.(check bool) "cleared" true (Heap.is_empty h);
  Heap.push h 42;
  Alcotest.(check (option int)) "usable after clear" (Some 42) (Heap.pop h)

let test_custom_order () =
  let h = Heap.create ~cmp:(fun a b -> Int.compare b a) in
  List.iter (Heap.push h) [ 3; 1; 2 ];
  Alcotest.(check (option int)) "max-heap" (Some 3) (Heap.pop h)

let test_stability_via_pairs () =
  (* Events with equal keys must come out in sequence order when the
     comparison includes a tiebreaker, as the engine's does. *)
  let h =
    Heap.create ~cmp:(fun (t1, s1) (t2, s2) ->
        let c = Int.compare t1 t2 in
        if c <> 0 then c else Int.compare s1 s2)
  in
  List.iter (Heap.push h) [ (1, 0); (1, 1); (0, 2); (1, 3) ];
  let order = List.init 4 (fun _ -> Heap.pop_exn h) in
  Alcotest.(check (list (pair int int))) "fifo among equal keys"
    [ (0, 2); (1, 0); (1, 1); (1, 3) ]
    order

let qcheck_sorted_drain =
  QCheck.Test.make ~name:"heap drains sorted" ~count:200
    QCheck.(list small_int)
    (fun xs ->
      let h = int_heap () in
      List.iter (Heap.push h) xs;
      let drained = List.init (List.length xs) (fun _ -> Heap.pop_exn h) in
      drained = List.sort Int.compare xs)

let tests =
  [
    ( "heap",
      [
        Alcotest.test_case "empty" `Quick test_empty;
        Alcotest.test_case "ordering" `Quick test_ordering;
        Alcotest.test_case "interleaved" `Quick test_interleaved;
        Alcotest.test_case "to_sorted_list" `Quick test_to_sorted_list_preserves;
        Alcotest.test_case "clear" `Quick test_clear;
        Alcotest.test_case "custom order" `Quick test_custom_order;
        Alcotest.test_case "tiebreaker order" `Quick test_stability_via_pairs;
        QCheck_alcotest.to_alcotest qcheck_sorted_drain;
      ] );
  ]
