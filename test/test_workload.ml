(* Tests for workload specification, generation, and scenario presets. *)

open Objmodel

let small_spec =
  { Workload.Spec.default with Workload.Spec.object_count = 10; root_count = 25; seed = 5 }

let test_spec_validation () =
  Alcotest.(check bool) "default valid" true (Workload.Spec.validate Workload.Spec.default = Ok ());
  let bad = { Workload.Spec.default with Workload.Spec.object_count = 0 } in
  Alcotest.(check bool) "zero objects invalid" true (Result.is_error (Workload.Spec.validate bad));
  let bad = { Workload.Spec.default with Workload.Spec.min_pages = 5; max_pages = 2 } in
  Alcotest.(check bool) "bad page range" true (Result.is_error (Workload.Spec.validate bad));
  let bad = { Workload.Spec.default with Workload.Spec.write_fraction = 1.5 } in
  Alcotest.(check bool) "fraction out of range" true (Result.is_error (Workload.Spec.validate bad))

let test_generate_shape () =
  let wl = Workload.Generator.generate small_spec ~page_size:4096 in
  Alcotest.(check int) "object count" 10 (Catalog.size wl.Workload.Generator.catalog);
  Alcotest.(check int) "root count" 25 (List.length wl.Workload.Generator.roots);
  Alcotest.(check bool) "acyclic" true
    (Catalog.validate_acyclic wl.Workload.Generator.catalog = Ok ())

let test_generate_page_sizes_in_range () =
  let spec = { small_spec with Workload.Spec.min_pages = 3; max_pages = 7 } in
  let wl = Workload.Generator.generate spec ~page_size:4096 in
  List.iter
    (fun o ->
      let pc = Catalog.page_count wl.Workload.Generator.catalog o in
      Alcotest.(check bool)
        (Format.asprintf "%a pages %d in [3,7]" Oid.pp o pc)
        true (pc >= 3 && pc <= 7))
    (Catalog.oids wl.Workload.Generator.catalog)

let test_generate_deterministic () =
  let w1 = Workload.Generator.generate small_spec ~page_size:4096 in
  let w2 = Workload.Generator.generate small_spec ~page_size:4096 in
  Alcotest.(check bool) "same roots" true
    (List.for_all2
       (fun (a : Workload.Generator.root_spec) (b : Workload.Generator.root_spec) ->
         a.at = b.at && a.node = b.node && Oid.equal a.oid b.oid && a.meth = b.meth
         && a.seed = b.seed)
       w1.Workload.Generator.roots w2.Workload.Generator.roots);
  (* Catalogs: same classes and refs. *)
  List.iter2
    (fun o1 o2 ->
      let i1 = Catalog.find w1.Workload.Generator.catalog o1 in
      let i2 = Catalog.find w2.Workload.Generator.catalog o2 in
      Alcotest.(check bool) "same refs" true (i1.Catalog.refs = i2.Catalog.refs);
      Alcotest.(check int) "same pages" (Obj_class.page_count i1.Catalog.cls)
        (Obj_class.page_count i2.Catalog.cls))
    (Catalog.oids w1.Workload.Generator.catalog)
    (Catalog.oids w2.Workload.Generator.catalog)

let test_generate_seed_changes_workload () =
  let w1 = Workload.Generator.generate small_spec ~page_size:4096 in
  let w2 =
    Workload.Generator.generate { small_spec with Workload.Spec.seed = 6 } ~page_size:4096
  in
  let sig_of (w : Workload.Generator.t) =
    List.map (fun (r : Workload.Generator.root_spec) -> (Oid.to_int r.oid, r.meth)) w.roots
  in
  Alcotest.(check bool) "different draws" true (sig_of w1 <> sig_of w2)

let test_roots_sorted_and_valid () =
  let wl = Workload.Generator.generate small_spec ~page_size:4096 in
  let rec check_sorted = function
    | (a : Workload.Generator.root_spec) :: (b : Workload.Generator.root_spec) :: rest ->
        Alcotest.(check bool) "ascending times" true (a.at <= b.at);
        check_sorted (b :: rest)
    | _ -> ()
  in
  check_sorted wl.Workload.Generator.roots;
  List.iter
    (fun (r : Workload.Generator.root_spec) ->
      Alcotest.(check bool) "node in range" true
        (r.node >= 0 && r.node < small_spec.Workload.Spec.node_count);
      (* Method exists on the class. *)
      ignore (Catalog.find_method wl.Workload.Generator.catalog r.oid r.meth))
    wl.Workload.Generator.roots

let test_methods_access_subsets () =
  (* The LOTEC premise: at least some methods must predict a strict subset
     of their object's pages. *)
  let spec = { small_spec with Workload.Spec.min_pages = 8; max_pages = 12 } in
  let wl = Workload.Generator.generate spec ~page_size:4096 in
  let strict_subset = ref 0 and total = ref 0 in
  List.iter
    (fun o ->
      let inst = Catalog.find wl.Workload.Generator.catalog o in
      let pages = Obj_class.page_count inst.Catalog.cls in
      List.iter
        (fun (m : Obj_class.compiled_method) ->
          incr total;
          if List.length m.Obj_class.page_summary.Access_analysis.access_pages < pages then
            incr strict_subset)
        (Obj_class.methods inst.Catalog.cls))
    (Catalog.oids wl.Workload.Generator.catalog);
  Alcotest.(check bool)
    (Printf.sprintf "%d/%d methods are strict subsets" !strict_subset !total)
    true
    (float_of_int !strict_subset > 0.5 *. float_of_int !total)

let test_every_class_has_a_writer () =
  let wl = Workload.Generator.generate small_spec ~page_size:4096 in
  List.iter
    (fun o ->
      let inst = Catalog.find wl.Workload.Generator.catalog o in
      let m0 = Obj_class.find_method inst.Catalog.cls "m0" in
      Alcotest.(check bool) "m0 updates" true m0.Obj_class.summary.Access_analysis.updates)
    (Catalog.oids wl.Workload.Generator.catalog)

let test_scenarios_match_paper () =
  let check_spec name spec objs (lo, hi) =
    Alcotest.(check int) (name ^ " objects") objs spec.Workload.Spec.object_count;
    Alcotest.(check int) (name ^ " min pages") lo spec.Workload.Spec.min_pages;
    Alcotest.(check int) (name ^ " max pages") hi spec.Workload.Spec.max_pages;
    Alcotest.(check int) (name ^ " roots") 200 spec.Workload.Spec.root_count;
    Alcotest.(check bool) (name ^ " valid") true (Workload.Spec.validate spec = Ok ())
  in
  check_spec "fig2" Workload.Scenarios.medium_high 20 (1, 5);
  check_spec "fig3" Workload.Scenarios.large_high 20 (10, 20);
  check_spec "fig4" Workload.Scenarios.medium_moderate 100 (1, 5);
  check_spec "fig5" Workload.Scenarios.large_moderate 100 (10, 20);
  (* Four paper-figure scenarios, four web-serving presets, and the escrow
     bank workload. *)
  Alcotest.(check int) "all scenarios" 9 (List.length Workload.Scenarios.all);
  List.iter
    (fun (name, spec) ->
      Alcotest.(check bool) (name ^ " valid") true (Workload.Spec.validate spec = Ok ()))
    Workload.Scenarios.all

let test_scenario_overrides () =
  let s = Workload.Scenarios.spec ~seed:7 ~root_count:10 Workload.Scenarios.High Workload.Scenarios.Medium in
  Alcotest.(check int) "seed" 7 s.Workload.Spec.seed;
  Alcotest.(check int) "roots" 10 s.Workload.Spec.root_count

let test_access_skew () =
  (* With strong skew, low-numbered objects must receive most roots; with
     zero skew the distribution is roughly uniform. *)
  let count_targets skew =
    let spec =
      { small_spec with Workload.Spec.root_count = 400; access_skew = skew; seed = 99 }
    in
    let wl = Workload.Generator.generate spec ~page_size:4096 in
    let counts = Array.make 10 0 in
    List.iter
      (fun (r : Workload.Generator.root_spec) ->
        let i = Oid.to_int r.oid in
        counts.(i) <- counts.(i) + 1)
      wl.Workload.Generator.roots;
    counts
  in
  let skewed = count_targets 1.2 in
  let uniform = count_targets 0.0 in
  Alcotest.(check bool)
    (Printf.sprintf "O0 hot under skew (%d vs %d)" skewed.(0) uniform.(0))
    true
    (skewed.(0) > 2 * uniform.(0));
  let top3 = skewed.(0) + skewed.(1) + skewed.(2) in
  Alcotest.(check bool) "top 3 objects dominate" true (top3 > 200);
  (* Zero skew keeps the historical draw sequence: generation stays
     deterministic and valid. *)
  Alcotest.(check int) "uniform total" 400 (Array.fold_left ( + ) 0 uniform);
  Alcotest.(check bool) "skew spec validates" true
    (Workload.Spec.validate { small_spec with Workload.Spec.access_skew = 1.2 } = Ok ());
  Alcotest.(check bool) "negative skew rejected" true
    (Result.is_error (Workload.Spec.validate { small_spec with Workload.Spec.access_skew = -1.0 }))

let test_skewed_workload_runs () =
  let spec = { small_spec with Workload.Spec.access_skew = 1.0 } in
  let wl = Workload.Generator.generate spec ~page_size:4096 in
  let run = Experiments.Runner.execute ~protocol:Dsm.Protocol.Lotec wl in
  Alcotest.(check int) "all committed" 25
    (Dsm.Metrics.totals (Experiments.Runner.metrics run)).Dsm.Metrics.roots_committed

let test_invalid_spec_rejected () =
  let bad = { small_spec with Workload.Spec.object_count = -1 } in
  Alcotest.check_raises "generate rejects"
    (Invalid_argument "Generator.generate: object_count must be positive") (fun () ->
      ignore (Workload.Generator.generate bad ~page_size:4096))

let tests =
  [
    ( "workload",
      [
        Alcotest.test_case "spec validation" `Quick test_spec_validation;
        Alcotest.test_case "generate shape" `Quick test_generate_shape;
        Alcotest.test_case "page sizes in range" `Quick test_generate_page_sizes_in_range;
        Alcotest.test_case "deterministic" `Quick test_generate_deterministic;
        Alcotest.test_case "seed changes workload" `Quick test_generate_seed_changes_workload;
        Alcotest.test_case "roots sorted and valid" `Quick test_roots_sorted_and_valid;
        Alcotest.test_case "methods access subsets" `Quick test_methods_access_subsets;
        Alcotest.test_case "every class has writer" `Quick test_every_class_has_a_writer;
        Alcotest.test_case "scenarios match paper" `Quick test_scenarios_match_paper;
        Alcotest.test_case "scenario overrides" `Quick test_scenario_overrides;
        Alcotest.test_case "access skew" `Quick test_access_skew;
        Alcotest.test_case "skewed workload runs" `Quick test_skewed_workload_runs;
        Alcotest.test_case "invalid spec rejected" `Quick test_invalid_spec_rejected;
      ] );
  ]
