(* Whole-system property tests: random small workloads, every protocol,
   checked against the system's global invariants. These are the paper's
   correctness claims (§4.3) exercised mechanically:

   - every committed history is conflict-serializable;
   - after a run, every GDO lock is free with no waiters (nothing leaks);
   - the GDO page map never points at a node whose store lacks the version;
   - per-acquisition data traffic keeps the LOTEC/OTEC/COTEC ordering
     within the schedule-noise bounds quantified below;
   - runs are deterministic. *)

open Objmodel

let spec_gen =
  QCheck.Gen.(
    let* seed = int_range 1 1_000_000 in
    let* object_count = int_range 3 15 in
    let* min_pages = int_range 1 4 in
    let* extra = int_range 0 6 in
    let* root_count = int_range 5 30 in
    let* node_count = int_range 2 6 in
    let* abort_pct = int_range 0 25 in
    return (seed, object_count, (min_pages, min_pages + extra), root_count, node_count, abort_pct))

let arb_spec =
  QCheck.make
    ~print:(fun (seed, oc, (lo, hi), rc, nc, ap) ->
      Printf.sprintf "seed=%d objects=%d pages=%d-%d roots=%d nodes=%d abort%%=%d" seed oc lo hi
        rc nc ap)
    spec_gen

let build (seed, object_count, (min_pages, max_pages), root_count, node_count, abort_pct) =
  let spec =
    {
      Workload.Spec.default with
      Workload.Spec.seed;
      object_count;
      min_pages;
      max_pages;
      root_count;
      node_count;
    }
  in
  let config =
    {
      Core.Config.default with
      Core.Config.node_count;
      abort_probability = float_of_int abort_pct /. 100.0;
    }
  in
  (spec, config)

let run_one ~protocol (spec, config) =
  let wl = Workload.Generator.generate spec ~page_size:config.Core.Config.page_size in
  Experiments.Runner.execute ~config ~protocol wl

let all_locks_free run =
  let rt = run.Experiments.Runner.runtime in
  let dir = Core.Runtime.directory rt in
  List.for_all
    (fun o ->
      Gdo.Directory.lock_state dir o = Gdo.Directory.Free
      && Gdo.Directory.waiting_count dir o = 0
      && Gdo.Directory.holders dir o = [])
    (Catalog.oids (Core.Runtime.catalog rt))

let page_map_consistent run =
  let rt = run.Experiments.Runner.runtime in
  let dir = Core.Runtime.directory rt in
  List.for_all
    (fun o ->
      let nodes, versions = Gdo.Directory.page_map dir o in
      Array.for_all Fun.id
        (Array.mapi
           (fun p node ->
             Dsm.Page_store.version (Core.Runtime.store rt ~node) o ~page:p >= versions.(p))
           nodes))
    (Catalog.oids (Core.Runtime.catalog rt))

(* Runner.execute already fails on non-serializable histories, so reaching
   here implies serializability; we re-check explicitly for clarity. *)
let serializable run =
  match Core.Runtime.check_serializable run.Experiments.Runner.runtime with
  | Core.Serializability.Serializable _ -> true
  | Core.Serializability.Cyclic _ -> false

let prop_invariants_all_protocols =
  QCheck.Test.make ~name:"locks free, map consistent, serializable (all protocols)" ~count:25
    arb_spec (fun params ->
      let inputs = build params in
      List.for_all
        (fun protocol ->
          let run = run_one ~protocol inputs in
          all_locks_free run && page_map_consistent run && serializable run)
        Dsm.Protocol.all)

let prop_byte_ordering =
  (* The per-acquisition subset property (LOTEC set ⊆ OTEC set ⊆ COTEC set
     for a fixed staleness snapshot) is exact and tested at the
     Protocol.transfer_set level. At the whole-system level, different
     protocols produce different interleavings on tiny high-conflict
     clusters — acquisition counts diverge, ownership ping-pongs
     differently, staleness snapshots differ — so per-run cross-protocol
     totals carry scheduling noise in both directions (observed: OTEC with
     32 acquisitions where COTEC took 28; LOTEC 10 % above OTEC per
     acquisition on a 2-node run). What must survive arbitrary schedules:
     LOTEC per acquisition never exceeds COTEC's (the headline gap is
     large), and the neighbouring comparisons hold within bounded noise.
     The exact orderings are asserted on the paper's (bigger, deterministic)
     scenarios elsewhere. *)
  QCheck.Test.make ~name:"data bytes per acquisition: ordering within noise" ~count:20
    arb_spec (fun params ->
      let spec, config = build params in
      (* Abort retries perturb schedules further; keep failure-free runs. *)
      let config = { config with Core.Config.abort_probability = 0.0 } in
      let per_acquisition protocol =
        let m = Experiments.Runner.metrics (run_one ~protocol (spec, config)) in
        let acq = (Dsm.Metrics.totals m).Dsm.Metrics.global_acquisitions in
        if acq = 0 then 0.0
        else float_of_int (Dsm.Metrics.total_data_bytes m) /. float_of_int acq
      in
      let cotec = per_acquisition Dsm.Protocol.Cotec in
      let otec = per_acquisition Dsm.Protocol.Otec in
      let lotec = per_acquisition Dsm.Protocol.Lotec in
      (* On 1-2 page objects LOTEC degenerates to OTEC exactly, and on
         2-node clusters schedule divergence alone moves per-acquisition
         averages by up to ~30 % in either direction (observed: OTEC 5 %
         above COTEC; LOTEC 29 % above OTEC with 12 % fewer acquisitions).
         No strict inequality survives adversarial interleavings at this
         scale. The margins below are regression detectors, not the paper's
         claim: a LOTEC that stopped filtering (= COTEC behaviour) would
         sit ~1.9x above OTEC and trip the 1.4 bound; the paper-scale
         strict orderings are asserted on the deterministic scenarios. *)
      lotec <= (cotec *. 1.15) +. 1.0
      && lotec <= (otec *. 1.40) +. 1.0
      && otec <= (cotec *. 1.25) +. 1.0)

let prop_deterministic =
  QCheck.Test.make ~name:"same inputs, same run" ~count:10 arb_spec (fun params ->
      let inputs = build params in
      let fingerprint () =
        let run = run_one ~protocol:Dsm.Protocol.Lotec inputs in
        let m = Experiments.Runner.metrics run in
        ( Dsm.Metrics.total_bytes m,
          Dsm.Metrics.total_messages m,
          Dsm.Metrics.completion_time_us m,
          (Dsm.Metrics.totals m).Dsm.Metrics.roots_committed )
      in
      fingerprint () = fingerprint ())

let prop_all_roots_resolve =
  QCheck.Test.make ~name:"every submitted root commits or gives up explicitly" ~count:20
    arb_spec (fun params ->
      let _, config = build params in
      let spec, _ = build params in
      let run = run_one ~protocol:Dsm.Protocol.Lotec (spec, config) in
      let results = Core.Runtime.results run.Experiments.Runner.runtime in
      List.length results = spec.Workload.Spec.root_count
      && List.for_all
           (fun (r : Core.Runtime.root_result) ->
             r.Core.Runtime.completed_at >= r.Core.Runtime.submitted_at
             && r.Core.Runtime.attempts >= 1)
           results)

let prop_demand_fetches_only_lazy =
  QCheck.Test.make ~name:"demand fetches only under lazy protocols" ~count:15 arb_spec
    (fun params ->
      let inputs = build params in
      List.for_all
        (fun protocol ->
          let run = run_one ~protocol inputs in
          let t = Dsm.Metrics.totals (Experiments.Runner.metrics run) in
          Dsm.Protocol.demand_fetch_allowed protocol || t.Dsm.Metrics.demand_fetches = 0)
        [ Dsm.Protocol.Cotec; Dsm.Protocol.Otec; Dsm.Protocol.Lotec ])

let tests =
  [
    ( "properties",
      [
        QCheck_alcotest.to_alcotest ~long:true prop_invariants_all_protocols;
        QCheck_alcotest.to_alcotest ~long:true prop_byte_ordering;
        QCheck_alcotest.to_alcotest ~long:true prop_deterministic;
        QCheck_alcotest.to_alcotest ~long:true prop_all_roots_resolve;
        QCheck_alcotest.to_alcotest ~long:true prop_demand_fetches_only_lazy;
      ] );
  ]
