(* Determinism gate, meant to run under OCAMLRUNPARAM=R (make determinism).

   Randomized hashing gives every process a different Hashtbl seed, so any
   place where hash-table iteration order leaks into simulator output —
   metrics, page-store dumps, trace exports — shows up here as a drift from
   the pinned goldens or as two in-process runs disagreeing. The pinned
   numbers below are the same pre-subsystem goldens the test suite uses
   (test_function_shipping.ml, test_escrow.ml), captured under the default
   hash seed: a pass under a random seed means no order leak on the whole
   hot path. Exits nonzero on the first mismatch. *)

let failures = ref 0

let check name ok =
  if ok then Format.printf "  ok   %s@." name
  else begin
    incr failures;
    Format.printf "  FAIL %s@." name
  end

let golden_spec =
  {
    (Workload.Scenarios.spec Workload.Scenarios.High Workload.Scenarios.Medium) with
    Workload.Spec.root_count = 40;
    seed = 42;
  }

let goldens =
  [
    (Dsm.Protocol.Cotec, (484, 1_169_012, 25968.873648));
    (Dsm.Protocol.Otec, (419, 956_560, 20047.449955));
    (Dsm.Protocol.Lotec, (370, 731_252, 19580.172744));
    (Dsm.Protocol.Rc_nested, (425, 1_606_888, 20610.322997));
  ]

let golden_metrics () =
  Format.printf "golden metrics, all four protocols:@.";
  let wl = Workload.Generator.generate golden_spec ~page_size:4096 in
  List.iter
    (fun (protocol, (messages, bytes, completion)) ->
      let name = Format.asprintf "%a" Dsm.Protocol.pp protocol in
      let m = Experiments.Runner.metrics (Experiments.Runner.execute ~protocol wl) in
      check (name ^ " messages")
        (Dsm.Metrics.total_messages m = messages);
      check (name ^ " bytes") (Dsm.Metrics.total_bytes m = bytes);
      check (name ^ " completion")
        (Float.abs (Dsm.Metrics.completion_time_us m -. completion) < 1e-6))
    goldens

let page_store_dump () =
  Format.printf "page-store dump order:@.";
  let fill order =
    let s = Dsm.Page_store.create ~node:0 in
    List.iter
      (fun (o, p, v) ->
        Dsm.Page_store.receive s (Objmodel.Oid.of_int o) ~page:p ~version:v)
      order;
    s
  in
  let contents = [ (7, 1, 3); (2, 0, 1); (7, 0, 2); (2, 2, 5); (11, 4, 1) ] in
  check "dump ignores insertion order"
    (Dsm.Page_store.dump (fill contents) = Dsm.Page_store.dump (fill (List.rev contents)))

let chrome_export () =
  Format.printf "chrome trace export:@.";
  let export () =
    let spec = { golden_spec with Workload.Spec.root_count = 12 } in
    let config = { Core.Config.default with Core.Config.trace_capacity = 100_000 } in
    let wl = Workload.Generator.generate spec ~page_size:config.Core.Config.page_size in
    let run = Experiments.Runner.execute ~config ~protocol:Dsm.Protocol.Lotec wl in
    match Core.Runtime.trace run.Experiments.Runner.runtime with
    | Some tr ->
        Dsm.Trace_export.to_chrome
          ~node_count:(Core.Runtime.config run.Experiments.Runner.runtime).Core.Config.node_count
          (Sim.Trace.events tr)
    | None -> ""
  in
  let a = export () in
  check "export is non-trivial" (String.length a > 2);
  check "byte-identical across runs" (a = export ())

let escrow_sweep () =
  (* The escrow path adds its own hash tables (ledgers, quota rows,
     recall bookkeeping); one LOTEC hot-skew case must replay to the same
     escrowed finals twice. *)
  Format.printf "escrow finals:@.";
  let run () =
    let case =
      {
        Experiments.Escrow.protocol = Dsm.Protocol.Lotec;
        skew = 1.2;
        mode = Experiments.Escrow.Escrow Experiments.Escrow.default_params;
      }
    in
    let o = Experiments.Escrow.run_case case in
    o.Experiments.Escrow.escrow_finals
  in
  let a = run () in
  check "escrow replay non-trivial" (a <> []);
  check "escrow finals identical across runs" (a = run ())

let () =
  Format.printf "determinism gate (hash seed randomized: set OCAMLRUNPARAM=R)@.";
  golden_metrics ();
  page_store_dump ();
  chrome_export ();
  escrow_sweep ();
  if !failures > 0 then begin
    Format.printf "%d determinism check(s) FAILED@." !failures;
    exit 1
  end;
  Format.printf "all determinism checks passed@."
