(* Tests for Sim.Prng: determinism, ranges, splitting, sampling. *)

open Sim

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int

let test_determinism () =
  let a = Prng.create ~seed:123 and b = Prng.create ~seed:123 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_different_seeds () =
  let a = Prng.create ~seed:1 and b = Prng.create ~seed:2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Int64.equal (Prng.bits64 a) (Prng.bits64 b) then incr same
  done;
  check bool_c "streams differ" true (!same < 4)

let test_copy () =
  let a = Prng.create ~seed:7 in
  ignore (Prng.bits64 a);
  let b = Prng.copy a in
  check Alcotest.int64 "copy continues identically" (Prng.bits64 a) (Prng.bits64 b)

let test_split_independence () =
  let a = Prng.create ~seed:99 in
  let b = Prng.split a in
  (* Drawing from the parent after the split must not change the child's
     stream relative to a fresh identical split. *)
  let a2 = Prng.create ~seed:99 in
  let b2 = Prng.split a2 in
  ignore (Prng.bits64 a2);
  check Alcotest.int64 "child stream is self-contained" (Prng.bits64 b) (Prng.bits64 b2)

let test_int_range () =
  let rng = Prng.create ~seed:5 in
  for _ = 1 to 1000 do
    let v = Prng.int rng 17 in
    check bool_c "in range" true (v >= 0 && v < 17)
  done

let test_int_rejects_nonpositive () =
  let rng = Prng.create ~seed:5 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int rng 0))

let test_int_in () =
  let rng = Prng.create ~seed:6 in
  let seen = Array.make 5 false in
  for _ = 1 to 500 do
    let v = Prng.int_in rng 3 7 in
    check bool_c "in [3,7]" true (v >= 3 && v <= 7);
    seen.(v - 3) <- true
  done;
  check bool_c "all values hit" true (Array.for_all Fun.id seen)

let test_float_range () =
  let rng = Prng.create ~seed:8 in
  for _ = 1 to 1000 do
    let v = Prng.float rng 2.5 in
    check bool_c "in [0, 2.5)" true (v >= 0.0 && v < 2.5)
  done

let test_bernoulli_extremes () =
  let rng = Prng.create ~seed:9 in
  for _ = 1 to 100 do
    check bool_c "p=0 never" false (Prng.bernoulli rng 0.0)
  done;
  for _ = 1 to 100 do
    check bool_c "p=1 always" true (Prng.bernoulli rng 1.0)
  done

let test_bernoulli_rate () =
  let rng = Prng.create ~seed:10 in
  let hits = ref 0 in
  let n = 10_000 in
  for _ = 1 to n do
    if Prng.bernoulli rng 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  check bool_c "rate near 0.3" true (rate > 0.25 && rate < 0.35)

let test_pick () =
  let rng = Prng.create ~seed:11 in
  let arr = [| 10; 20; 30 |] in
  for _ = 1 to 100 do
    check bool_c "member" true (Array.exists (( = ) (Prng.pick rng arr)) arr)
  done;
  Alcotest.check_raises "empty" (Invalid_argument "Prng.pick: empty array") (fun () ->
      ignore (Prng.pick rng [||]))

let test_shuffle_is_permutation () =
  let rng = Prng.create ~seed:12 in
  let arr = Array.init 50 Fun.id in
  Prng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  check (Alcotest.array int_c) "same elements" (Array.init 50 Fun.id) sorted

let test_sample_without_replacement () =
  let rng = Prng.create ~seed:13 in
  let s = Prng.sample_without_replacement rng 10 30 in
  check int_c "size" 10 (List.length s);
  check int_c "distinct" 10 (List.length (List.sort_uniq compare s));
  List.iter (fun v -> check bool_c "in range" true (v >= 0 && v < 30)) s;
  Alcotest.check_raises "k > n" (Invalid_argument "Prng.sample_without_replacement: k > n")
    (fun () -> ignore (Prng.sample_without_replacement rng 5 3))

let test_exponential () =
  let rng = Prng.create ~seed:14 in
  let n = 10_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    let v = Prng.exponential rng ~mean:50.0 in
    Alcotest.check bool_c "positive" true (v >= 0.0);
    sum := !sum +. v
  done;
  let mean = !sum /. float_of_int n in
  check bool_c "mean near 50" true (mean > 45.0 && mean < 55.0)

let test_geometric () =
  let rng = Prng.create ~seed:15 in
  check int_c "p=1 is 0" 0 (Prng.geometric rng ~p:1.0);
  for _ = 1 to 100 do
    check bool_c "non-negative" true (Prng.geometric rng ~p:0.3 >= 0)
  done

let test_geometric_edge_cases () =
  (* Malformed parameters must neither raise nor go negative: NaN and
     p >= 1 are the point mass at 0, p <= 0 clamps to a tiny success
     probability instead of dividing by log 1.0 = 0. *)
  let rng = Prng.create ~seed:16 in
  check int_c "NaN is 0" 0 (Prng.geometric rng ~p:Float.nan);
  check int_c "p=2 is 0" 0 (Prng.geometric rng ~p:2.0);
  check int_c "p=+inf is 0" 0 (Prng.geometric rng ~p:Float.infinity);
  check bool_c "p=0 finite non-negative" true (Prng.geometric rng ~p:0.0 >= 0);
  check bool_c "p<0 finite non-negative" true (Prng.geometric rng ~p:(-5.0) >= 0);
  check bool_c "p=-inf finite non-negative" true
    (Prng.geometric rng ~p:Float.neg_infinity >= 0)

let test_geometric_consumes_one_draw () =
  (* Every call — degenerate parameters included — consumes exactly one
     uniform draw, so a bad p cannot desynchronise the stream relative to
     a run that drew a sane p at the same point. *)
  List.iter
    (fun p ->
      let a = Prng.create ~seed:17 and b = Prng.create ~seed:17 in
      ignore (Prng.geometric a ~p);
      ignore (Prng.float b 1.0);
      check int_c
        (Printf.sprintf "stream in sync after p=%h" p)
        (Prng.int a 1_000_000) (Prng.int b 1_000_000))
    [ 0.3; 1.0; 0.0; -1.0; 2.0; Float.nan; Float.infinity ]

let qcheck_geometric_total =
  QCheck.Test.make ~name:"geometric is total and non-negative for every p" ~count:500
    QCheck.(pair small_int float)
    (fun (seed, p) ->
      let rng = Prng.create ~seed in
      Prng.geometric rng ~p >= 0)

let qcheck_int_bounds =
  QCheck.Test.make ~name:"prng int stays in bounds" ~count:200
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Prng.create ~seed in
      let v = Prng.int rng bound in
      v >= 0 && v < bound)

let tests =
  [
    ( "prng",
      [
        Alcotest.test_case "determinism" `Quick test_determinism;
        Alcotest.test_case "different seeds" `Quick test_different_seeds;
        Alcotest.test_case "copy" `Quick test_copy;
        Alcotest.test_case "split independence" `Quick test_split_independence;
        Alcotest.test_case "int range" `Quick test_int_range;
        Alcotest.test_case "int rejects non-positive" `Quick test_int_rejects_nonpositive;
        Alcotest.test_case "int_in" `Quick test_int_in;
        Alcotest.test_case "float range" `Quick test_float_range;
        Alcotest.test_case "bernoulli extremes" `Quick test_bernoulli_extremes;
        Alcotest.test_case "bernoulli rate" `Quick test_bernoulli_rate;
        Alcotest.test_case "pick" `Quick test_pick;
        Alcotest.test_case "shuffle permutation" `Quick test_shuffle_is_permutation;
        Alcotest.test_case "sample without replacement" `Quick test_sample_without_replacement;
        Alcotest.test_case "exponential mean" `Quick test_exponential;
        Alcotest.test_case "geometric" `Quick test_geometric;
        Alcotest.test_case "geometric edge cases" `Quick test_geometric_edge_cases;
        Alcotest.test_case "geometric consumes one draw" `Quick
          test_geometric_consumes_one_draw;
        QCheck_alcotest.to_alcotest qcheck_int_bounds;
        QCheck_alcotest.to_alcotest qcheck_geometric_total;
      ] );
  ]
