(* Tests for the discrete-event engine and its fiber primitives. *)

open Sim

let test_time_advances () =
  let e = Engine.create () in
  let trace = ref [] in
  Engine.schedule e ~delay:10.0 (fun () -> trace := (Engine.now e, "b") :: !trace);
  Engine.schedule e ~delay:5.0 (fun () -> trace := (Engine.now e, "a") :: !trace);
  Engine.run e;
  Alcotest.(check (list (pair (float 0.001) string)))
    "events in time order"
    [ (5.0, "a"); (10.0, "b") ]
    (List.rev !trace)

let test_same_time_fifo () =
  let e = Engine.create () in
  let trace = ref [] in
  for i = 0 to 4 do
    Engine.schedule e ~delay:1.0 (fun () -> trace := i :: !trace)
  done;
  Engine.run e;
  Alcotest.(check (list int)) "fifo at same instant" [ 0; 1; 2; 3; 4 ] (List.rev !trace)

let test_negative_delay_rejected () =
  let e = Engine.create () in
  Alcotest.check_raises "negative" (Invalid_argument "Engine.schedule: negative delay")
    (fun () -> Engine.schedule e ~delay:(-1.0) (fun () -> ()))

let test_nested_scheduling () =
  let e = Engine.create () in
  let fired = ref 0.0 in
  Engine.schedule e ~delay:3.0 (fun () ->
      Engine.schedule e ~delay:4.0 (fun () -> fired := Engine.now e));
  Engine.run e;
  Alcotest.(check (float 0.001)) "relative to firing time" 7.0 !fired

let test_fiber_wait () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.spawn e (fun () ->
      log := ("start", Engine.now e) :: !log;
      Engine.wait 10.0;
      log := ("mid", Engine.now e) :: !log;
      Engine.wait 2.5;
      log := ("end", Engine.now e) :: !log);
  Engine.run e;
  Alcotest.(check (list (pair string (float 0.001))))
    "wait advances fiber time"
    [ ("start", 0.0); ("mid", 10.0); ("end", 12.5) ]
    (List.rev !log)

let test_fiber_count () =
  let e = Engine.create () in
  Engine.spawn e (fun () -> Engine.wait 1.0);
  Engine.spawn e (fun () -> Engine.wait 2.0);
  Alcotest.(check int) "two live" 2 (Engine.fiber_count e);
  Engine.run e;
  Alcotest.(check int) "all done" 0 (Engine.fiber_count e)

let test_ivar_basic () =
  let e = Engine.create () in
  let iv = Engine.Ivar.create () in
  Alcotest.(check bool) "empty" false (Engine.Ivar.is_filled iv);
  let got = ref 0 in
  Engine.spawn e (fun () -> got := Engine.Ivar.read iv);
  Engine.schedule e ~delay:5.0 (fun () -> Engine.Ivar.fill iv 42);
  Engine.run e;
  Alcotest.(check int) "value delivered" 42 !got;
  Alcotest.(check (option int)) "peek" (Some 42) (Engine.Ivar.peek iv)

let test_ivar_read_after_fill () =
  let e = Engine.create () in
  let iv = Engine.Ivar.create () in
  Engine.Ivar.fill iv 7;
  let got = ref 0 in
  Engine.spawn e (fun () -> got := Engine.Ivar.read iv);
  Engine.run e;
  Alcotest.(check int) "immediate read" 7 !got

let test_ivar_double_fill () =
  let iv = Engine.Ivar.create () in
  Engine.Ivar.fill iv 1;
  Alcotest.check_raises "double fill" (Invalid_argument "Ivar.fill: already filled") (fun () ->
      Engine.Ivar.fill iv 2)

let test_ivar_multiple_readers () =
  let e = Engine.create () in
  let iv = Engine.Ivar.create () in
  let sum = ref 0 in
  for _ = 1 to 3 do
    Engine.spawn e (fun () -> sum := !sum + Engine.Ivar.read iv)
  done;
  Engine.schedule e ~delay:1.0 (fun () -> Engine.Ivar.fill iv 5);
  Engine.run e;
  Alcotest.(check int) "all readers woken" 15 !sum

let test_mailbox () =
  let e = Engine.create () in
  let mb = Engine.Mailbox.create () in
  let got = ref [] in
  Engine.spawn e (fun () ->
      got := Engine.Mailbox.take mb :: !got;
      got := Engine.Mailbox.take mb :: !got);
  Engine.schedule e ~delay:1.0 (fun () -> Engine.Mailbox.put mb "a");
  Engine.schedule e ~delay:2.0 (fun () -> Engine.Mailbox.put mb "b");
  Engine.run e;
  Alcotest.(check (list string)) "fifo delivery" [ "a"; "b" ] (List.rev !got)

let test_mailbox_buffered () =
  let e = Engine.create () in
  let mb = Engine.Mailbox.create () in
  Engine.Mailbox.put mb 1;
  Engine.Mailbox.put mb 2;
  Alcotest.(check int) "buffered" 2 (Engine.Mailbox.length mb);
  let got = ref [] in
  Engine.spawn e (fun () ->
      got := Engine.Mailbox.take mb :: !got;
      got := Engine.Mailbox.take mb :: !got);
  Engine.run e;
  Alcotest.(check (list int)) "drained in order" [ 1; 2 ] (List.rev !got)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec scan i = i + n <= m && (String.sub s i n = sub || scan (i + 1)) in
  scan 0

let test_stall_detection () =
  let e = Engine.create () in
  let iv : unit Engine.Ivar.t = Engine.Ivar.create () in
  Engine.spawn e ~name:"stuck" (fun () -> Engine.Ivar.read iv);
  match Engine.run e with
  | () -> Alcotest.fail "expected Stalled"
  | exception Engine.Stalled msg ->
      Alcotest.(check bool) "mentions fiber" true (contains ~sub:"stuck" msg)

let test_run_for_partial () =
  let e = Engine.create () in
  let fired = ref [] in
  Engine.schedule e ~delay:5.0 (fun () -> fired := 5 :: !fired);
  Engine.schedule e ~delay:15.0 (fun () -> fired := 15 :: !fired);
  Engine.run_for e 10.0;
  Alcotest.(check (list int)) "only first fired" [ 5 ] !fired;
  Alcotest.(check (float 0.001)) "clock at deadline" 10.0 (Engine.now e);
  Engine.run_for e 10.0;
  Alcotest.(check (list int)) "second fired" [ 15; 5 ] !fired

let test_two_fibers_interleave () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.spawn e (fun () ->
      log := "a1" :: !log;
      Engine.wait 10.0;
      log := "a2" :: !log);
  Engine.spawn e (fun () ->
      log := "b1" :: !log;
      Engine.wait 5.0;
      log := "b2" :: !log);
  Engine.run e;
  Alcotest.(check (list string)) "interleaving by time" [ "a1"; "b1"; "b2"; "a2" ]
    (List.rev !log)

let tests =
  [
    ( "engine",
      [
        Alcotest.test_case "time advances" `Quick test_time_advances;
        Alcotest.test_case "same-time fifo" `Quick test_same_time_fifo;
        Alcotest.test_case "negative delay" `Quick test_negative_delay_rejected;
        Alcotest.test_case "nested scheduling" `Quick test_nested_scheduling;
        Alcotest.test_case "fiber wait" `Quick test_fiber_wait;
        Alcotest.test_case "fiber count" `Quick test_fiber_count;
        Alcotest.test_case "ivar basic" `Quick test_ivar_basic;
        Alcotest.test_case "ivar read after fill" `Quick test_ivar_read_after_fill;
        Alcotest.test_case "ivar double fill" `Quick test_ivar_double_fill;
        Alcotest.test_case "ivar multiple readers" `Quick test_ivar_multiple_readers;
        Alcotest.test_case "mailbox blocking take" `Quick test_mailbox;
        Alcotest.test_case "mailbox buffered" `Quick test_mailbox_buffered;
        Alcotest.test_case "stall detection" `Quick test_stall_detection;
        Alcotest.test_case "run_for partial" `Quick test_run_for_partial;
        Alcotest.test_case "fibers interleave" `Quick test_two_fibers_interleave;
      ] );
  ]
