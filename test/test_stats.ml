(* Tests for the descriptive-statistics helpers and the granularity
   experiment. *)

let test_mean () =
  Alcotest.(check (float 1e-9)) "empty" 0.0 (Experiments.Stats.mean []);
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Experiments.Stats.mean [ 1.0; 2.0; 3.0; 4.0 ])

let test_stddev () =
  Alcotest.(check (float 1e-9)) "empty" 0.0 (Experiments.Stats.stddev []);
  Alcotest.(check (float 1e-9)) "singleton" 0.0 (Experiments.Stats.stddev [ 5.0 ]);
  Alcotest.(check (float 1e-6)) "known" 2.0 (Experiments.Stats.stddev [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ])

let test_percentile () =
  let xs = List.init 100 (fun i -> float_of_int (i + 1)) in
  Alcotest.(check (float 1e-9)) "p50" 50.0 (Experiments.Stats.percentile 50.0 xs);
  Alcotest.(check (float 1e-9)) "p95" 95.0 (Experiments.Stats.percentile 95.0 xs);
  Alcotest.(check (float 1e-9)) "p100" 100.0 (Experiments.Stats.percentile 100.0 xs);
  Alcotest.(check (float 1e-9)) "p0 clamps to min" 1.0 (Experiments.Stats.percentile 0.0 xs);
  Alcotest.(check (float 1e-9)) "unsorted input" 50.0
    (Experiments.Stats.percentile 50.0 (List.rev xs));
  Alcotest.(check (float 1e-9)) "empty" 0.0 (Experiments.Stats.percentile 50.0 []);
  Alcotest.check_raises "out of range" (Invalid_argument "Stats.percentile: p out of [0,100]")
    (fun () -> ignore (Experiments.Stats.percentile 120.0 xs))

let test_median () =
  Alcotest.(check (float 1e-9)) "median" 2.0 (Experiments.Stats.median [ 3.0; 1.0; 2.0 ])

let test_root_latencies () =
  let catalog =
    Objmodel.Catalog.create
      [
        {
          Objmodel.Catalog.oid = Objmodel.Oid.of_int 0;
          cls =
            Objmodel.Obj_class.compile ~page_size:4096
              (Objmodel.Obj_class.define ~name:"K"
                 ~attrs:[| Objmodel.Attribute.make ~name:"x" ~size_bytes:64 |]
                 ~methods:[ Objmodel.Method_ir.make ~name:"m" ~body:[ Objmodel.Method_ir.Write 0 ] ]
                 ~ref_slots:0);
          refs = [||];
        };
      ]
  in
  let rt = Core.Runtime.create ~config:Core.Config.default ~catalog in
  Core.Runtime.submit rt ~at:0.0 ~node:0 ~oid:(Objmodel.Oid.of_int 0) ~meth:"m" ~seed:1;
  Core.Runtime.submit rt ~at:100.0 ~node:1 ~oid:(Objmodel.Oid.of_int 0) ~meth:"m" ~seed:2;
  Core.Runtime.run rt;
  let lats = Experiments.Stats.root_latencies rt in
  Alcotest.(check int) "two latencies" 2 (List.length lats);
  List.iter (fun l -> Alcotest.(check bool) "positive" true (l > 0.0)) lats

let test_granularity_experiment () =
  let r =
    Experiments.Granularity.run ~total_pages:48 ~root_count:60 ~granularities:[ 2; 8 ] ()
  in
  Alcotest.(check int) "two rows" 2 (List.length r.Experiments.Granularity.rows);
  (match r.Experiments.Granularity.rows with
  | [ fine; coarse ] ->
      Alcotest.(check int) "fine objects" 24 fine.Experiments.Granularity.object_count;
      Alcotest.(check int) "coarse objects" 6 coarse.Experiments.Granularity.object_count;
      (* The §5.1 claim: coarser granularity -> fewer global lock ops. *)
      Alcotest.(check bool)
        (Printf.sprintf "coarse locks (%d) < fine locks (%d)"
           coarse.Experiments.Granularity.global_acquisitions
           fine.Experiments.Granularity.global_acquisitions)
        true
        (coarse.Experiments.Granularity.global_acquisitions
        < fine.Experiments.Granularity.global_acquisitions)
  | _ -> Alcotest.fail "rows");
  let s = Format.asprintf "%a" Experiments.Granularity.pp r in
  Alcotest.(check bool) "renders" true (String.length s > 0)

let test_granularity_validation () =
  Alcotest.check_raises "non-divisor"
    (Invalid_argument "Granularity.run: granularity must divide total_pages") (fun () ->
      ignore (Experiments.Granularity.run ~total_pages:10 ~granularities:[ 3 ] ()))

let tests =
  [
    ( "stats",
      [
        Alcotest.test_case "mean" `Quick test_mean;
        Alcotest.test_case "stddev" `Quick test_stddev;
        Alcotest.test_case "percentile" `Quick test_percentile;
        Alcotest.test_case "median" `Quick test_median;
        Alcotest.test_case "root latencies" `Quick test_root_latencies;
        Alcotest.test_case "granularity experiment" `Slow test_granularity_experiment;
        Alcotest.test_case "granularity validation" `Quick test_granularity_validation;
      ] );
  ]
