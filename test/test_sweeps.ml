(* Tests for the active-messages replay and the parameter sweeps. *)

let small_spec =
  { Workload.Scenarios.medium_high with Workload.Spec.root_count = 30; seed = 13 }

let test_am_margin_grows () =
  let r = Experiments.Active_messages.run ~spec:small_spec () in
  Alcotest.(check int) "four cells" 4 (List.length r.Experiments.Active_messages.cells);
  (* Cheaper control messages help LOTEC (more small messages): the margin
     over OTEC must improve (become more negative) monotonically. *)
  let margins =
    List.map
      (fun (c : Experiments.Active_messages.cell) ->
        c.Experiments.Active_messages.lotec_vs_otec_pct)
      r.Experiments.Active_messages.cells
  in
  let rec non_increasing = function
    | a :: b :: rest -> a >= b && non_increasing (b :: rest)
    | _ -> true
  in
  Alcotest.(check bool) "margin improves with cheaper control" true (non_increasing margins)

let test_am_times_positive_and_ordered () =
  let r = Experiments.Active_messages.run ~spec:small_spec () in
  List.iter
    (fun (c : Experiments.Active_messages.cell) ->
      List.iter
        (fun (_, t) -> Alcotest.(check bool) "positive" true (t > 0.0))
        c.Experiments.Active_messages.time_us;
      (* Dropping only the control cost can never slow anything down. *)
      ())
    r.Experiments.Active_messages.cells;
  match r.Experiments.Active_messages.cells with
  | first :: rest ->
      let last = List.fold_left (fun _ c -> c) first rest in
      List.iter2
        (fun (p1, t1) (p2, t2) ->
          Alcotest.(check bool) "same protocol" true (Dsm.Protocol.equal p1 p2);
          Alcotest.(check bool) "cheaper control is faster" true (t2 <= t1))
        first.Experiments.Active_messages.time_us last.Experiments.Active_messages.time_us
  | [] -> Alcotest.fail "cells"

let test_am_pp () =
  let r = Experiments.Active_messages.run ~spec:small_spec () in
  let s = Format.asprintf "%a" Experiments.Active_messages.pp r in
  Alcotest.(check bool) "renders" true (String.length s > 100)

let test_sweep_object_count () =
  let r = Experiments.Sweep.object_count_sweep ~counts:[ 10; 30 ] () in
  Alcotest.(check int) "two rows" 2 (List.length r.Experiments.Sweep.rows);
  List.iter
    (fun (row : Experiments.Sweep.row) ->
      Alcotest.(check bool) "ordering holds" true
        (row.Experiments.Sweep.lotec_bytes <= row.Experiments.Sweep.otec_bytes
        && row.Experiments.Sweep.otec_bytes <= row.Experiments.Sweep.cotec_bytes))
    r.Experiments.Sweep.rows

let test_sweep_size_gap_grows () =
  (* LOTEC's edge over OTEC must be larger on big objects than on tiny ones
     (tiny objects: the predicted set covers everything). *)
  let r = Experiments.Sweep.object_size_sweep ~sizes:[ (1, 2); (10, 20) ] () in
  match r.Experiments.Sweep.rows with
  | [ tiny; large ] ->
      Alcotest.(check bool)
        (Printf.sprintf "large gap (%.1f%%) <= tiny gap (%.1f%%)"
           large.Experiments.Sweep.lotec_vs_otec_pct tiny.Experiments.Sweep.lotec_vs_otec_pct)
        true
        (large.Experiments.Sweep.lotec_vs_otec_pct
        <= tiny.Experiments.Sweep.lotec_vs_otec_pct)
  | _ -> Alcotest.fail "two rows"

let test_sweep_txn_count_monotone_bytes () =
  let r = Experiments.Sweep.transaction_count_sweep ~counts:[ 20; 60 ] () in
  match r.Experiments.Sweep.rows with
  | [ small; big ] ->
      Alcotest.(check bool) "more txns, more traffic" true
        (big.Experiments.Sweep.cotec_bytes > small.Experiments.Sweep.cotec_bytes)
  | _ -> Alcotest.fail "two rows"

let test_throughput_protocols () =
  let r = Experiments.Throughput.protocols ~spec:small_spec () in
  Alcotest.(check int) "four rows" 4 (List.length r.Experiments.Throughput.rows);
  List.iter
    (fun (row : Experiments.Throughput.row) ->
      Alcotest.(check int) "all committed" 30 row.Experiments.Throughput.committed;
      Alcotest.(check bool) "throughput positive" true
        (row.Experiments.Throughput.throughput_tps > 0.0);
      Alcotest.(check bool) "p95 >= p50" true
        (row.Experiments.Throughput.p95_latency_us >= row.Experiments.Throughput.p50_latency_us))
    r.Experiments.Throughput.rows

let test_throughput_scaling_regimes () =
  (* Dense arrivals so the CPUs are genuinely the bottleneck in the
     cpu-bound regime. *)
  let r =
    Experiments.Throughput.scaling
      ~spec:
        {
          small_spec with
          Workload.Spec.object_count = 40;
          root_count = 60;
          arrival_mean_us = 10.0;
        }
      ~node_counts:[ 2; 8 ] ()
  in
  Alcotest.(check int) "two regimes x two sizes" 4 (List.length r.Experiments.Throughput.rows);
  let find label =
    List.find
      (fun (row : Experiments.Throughput.row) -> row.Experiments.Throughput.label = label)
      r.Experiments.Throughput.rows
  in
  (* Compute-bound work gains from more processors; communication-bound work
     loses locality. *)
  let cpu2 = find "cpu-bound, 2 nodes" and cpu8 = find "cpu-bound, 8 nodes" in
  Alcotest.(check bool)
    (Printf.sprintf "cpu-bound scales (%.0f -> %.0f txn/s)"
       cpu2.Experiments.Throughput.throughput_tps cpu8.Experiments.Throughput.throughput_tps)
    true
    (cpu8.Experiments.Throughput.throughput_tps > cpu2.Experiments.Throughput.throughput_tps);
  let comm2 = find "comm-bound, 2 nodes" and comm8 = find "comm-bound, 8 nodes" in
  Alcotest.(check bool) "comm-bound does not scale" true
    (comm8.Experiments.Throughput.throughput_tps <= comm2.Experiments.Throughput.throughput_tps);
  let s = Format.asprintf "%a" Experiments.Throughput.pp r in
  Alcotest.(check bool) "renders" true (String.length s > 100)

let test_sweep_pp () =
  let r = Experiments.Sweep.object_count_sweep ~counts:[ 10 ] () in
  let s = Format.asprintf "%a" Experiments.Sweep.pp r in
  Alcotest.(check bool) "renders" true (String.length s > 50)

let tests =
  [
    ( "sweeps",
      [
        Alcotest.test_case "am margin grows" `Slow test_am_margin_grows;
        Alcotest.test_case "am times ordered" `Slow test_am_times_positive_and_ordered;
        Alcotest.test_case "am pp" `Slow test_am_pp;
        Alcotest.test_case "object count sweep" `Slow test_sweep_object_count;
        Alcotest.test_case "size gap grows" `Slow test_sweep_size_gap_grows;
        Alcotest.test_case "txn count sweep" `Slow test_sweep_txn_count_monotone_bytes;
        Alcotest.test_case "throughput protocols" `Slow test_throughput_protocols;
        Alcotest.test_case "throughput scaling regimes" `Slow test_throughput_scaling_regimes;
        Alcotest.test_case "sweep pp" `Slow test_sweep_pp;
      ] );
  ]
