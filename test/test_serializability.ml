(* Tests for the conflict-serializability checker. *)

open Objmodel
open Txn
open Core.Serializability

let oid = Oid.of_int
let tid = Txn_id.of_int
let acc o p v = { oid = oid o; page = p; version = v }

let is_serializable = function Serializable _ -> true | Cyclic _ -> false

let test_empty_history () =
  Alcotest.(check bool) "empty ok" true (is_serializable (check []))

let test_disjoint_roots () =
  let h =
    [
      { root = tid 1; reads = [ acc 1 0 0 ]; writes = [ acc 1 0 1 ] };
      { root = tid 2; reads = [ acc 2 0 0 ]; writes = [ acc 2 0 2 ] };
    ]
  in
  Alcotest.(check bool) "disjoint ok" true (is_serializable (check h));
  Alcotest.(check int) "no edges" 0 (List.length (edges h))

let test_ww_chain () =
  let h =
    [
      { root = tid 1; reads = []; writes = [ acc 1 0 1 ] };
      { root = tid 2; reads = []; writes = [ acc 1 0 2 ] };
      { root = tid 3; reads = []; writes = [ acc 1 0 3 ] };
    ]
  in
  Alcotest.(check (list (pair int int))) "chain edges" [ (1, 2); (2, 3) ]
    (List.map (fun (a, b) -> (Txn_id.to_int a, Txn_id.to_int b)) (edges h));
  match check h with
  | Serializable order ->
      Alcotest.(check (list int)) "topological order" [ 1; 2; 3 ]
        (List.map Txn_id.to_int order)
  | Cyclic _ -> Alcotest.fail "must be serializable"

let test_wr_edge () =
  let h =
    [
      { root = tid 1; reads = []; writes = [ acc 1 0 1 ] };
      { root = tid 2; reads = [ acc 1 0 1 ]; writes = [] };
    ]
  in
  Alcotest.(check (list (pair int int))) "wr edge" [ (1, 2) ]
    (List.map (fun (a, b) -> (Txn_id.to_int a, Txn_id.to_int b)) (edges h))

let test_rw_edge () =
  let h =
    [
      { root = tid 1; reads = [ acc 1 0 0 ]; writes = [] };
      { root = tid 2; reads = []; writes = [ acc 1 0 1 ] };
    ]
  in
  Alcotest.(check (list (pair int int))) "rw edge" [ (1, 2) ]
    (List.map (fun (a, b) -> (Txn_id.to_int a, Txn_id.to_int b)) (edges h))

let test_rw_skips_to_next_version_only () =
  (* Reader of v1 precedes the writer of v2 (the next version), and v2's
     writer precedes v3's; no direct edge reader -> v3 writer is required,
     but the transitive order must hold. *)
  let h =
    [
      { root = tid 1; reads = [ acc 1 0 1 ]; writes = [] };
      { root = tid 2; reads = []; writes = [ acc 1 0 2 ] };
      { root = tid 3; reads = []; writes = [ acc 1 0 3 ] };
      { root = tid 4; reads = []; writes = [ acc 1 0 1 ] };
    ]
  in
  match check h with
  | Serializable order ->
      let pos x = ref (-1) |> fun r ->
        List.iteri (fun i t -> if Txn_id.to_int t = x then r := i) order;
        !r
  in
      Alcotest.(check bool) "reader before next writer" true (pos 1 < pos 2);
      Alcotest.(check bool) "writer order" true (pos 2 < pos 3);
      Alcotest.(check bool) "v1 writer before reader" true (pos 4 < pos 1)
  | Cyclic _ -> Alcotest.fail "must be serializable"

let test_classic_cycle () =
  (* T1 reads x then writes y; T2 reads y(old) then writes x(next): the
     textbook non-serializable interleaving. *)
  let h =
    [
      { root = tid 1; reads = [ acc 1 0 0 ]; writes = [ acc 2 0 1 ] };
      { root = tid 2; reads = [ acc 2 0 0 ]; writes = [ acc 1 0 2 ] };
    ]
  in
  match check h with
  | Cyclic cycle -> Alcotest.(check bool) "cycle found" true (List.length cycle >= 2)
  | Serializable _ -> Alcotest.fail "expected cycle"

let test_self_access_no_edge () =
  let h = [ { root = tid 1; reads = [ acc 1 0 1 ]; writes = [ acc 1 0 1 ] } ] in
  Alcotest.(check int) "no self edges" 0 (List.length (edges h));
  Alcotest.(check bool) "ok" true (is_serializable (check h))

let test_witness_order_complete () =
  let h =
    [
      { root = tid 5; reads = []; writes = [ acc 1 0 1 ] };
      { root = tid 6; reads = []; writes = [] };
    ]
  in
  match check h with
  | Serializable order -> Alcotest.(check int) "all roots in order" 2 (List.length order)
  | Cyclic _ -> Alcotest.fail "serializable"

(* Cross-check the graph-based checker against brute force: a history is
   conflict-serializable iff some permutation of the roots respects every
   conflict edge. For <= 5 random roots the permutation space is tiny. *)
let qcheck_checker_matches_brute_force =
  let gen =
    QCheck.Gen.(
      let* n_roots = int_range 1 5 in
      let* accesses =
        list_size (int_range 0 12)
          (let* root = int_bound (n_roots - 1) in
           let* page = int_bound 2 in
           let* is_write = bool in
           let* observed = int_bound 12 in
           return (root, page, is_write, observed))
      in
      return (n_roots, accesses))
  in
  let build (n_roots, accesses) =
    (* Writes produce globally unique versions per page; reads observe an
       *arbitrary* one of that page's versions (or the initial 0), so both
       serializable and cyclic histories arise. *)
    let produced = Array.make 3 [ 0 ] in
    let next = ref 0 in
    let reads = Array.make n_roots [] and writes = Array.make n_roots [] in
    List.iter
      (fun (root, page, is_write, observed) ->
        if is_write then begin
          incr next;
          produced.(page) <- !next :: produced.(page);
          writes.(root) <- { oid = oid 0; page; version = !next } :: writes.(root)
        end
        else
          let versions = produced.(page) in
          let version = List.nth versions (observed mod List.length versions) in
          reads.(root) <- { oid = oid 0; page; version } :: reads.(root))
      accesses;
    List.init n_roots (fun i -> { root = tid i; reads = reads.(i); writes = writes.(i) })
  in
  let rec permutations = function
    | [] -> [ [] ]
    | l ->
        List.concat_map
          (fun x ->
            List.map (fun p -> x :: p) (permutations (List.filter (( <> ) x) l)))
          l
  in
  QCheck.Test.make ~name:"checker agrees with brute force" ~count:300
    (QCheck.make ~print:(fun _ -> "<history>") gen)
    (fun input ->
      let history = build input in
      let es = edges history in
      let roots = List.map (fun r -> r.root) history in
      let brute =
        List.exists
          (fun perm ->
            let pos x =
              let rec find i = function
                | [] -> -1
                | y :: rest -> if Txn_id.equal x y then i else find (i + 1) rest
              in
              find 0 perm
            in
            List.for_all (fun (a, b) -> pos a < pos b) es)
          (permutations roots)
      in
      let checker = match check history with Serializable _ -> true | Cyclic _ -> false in
      brute = checker)

let tests =
  [
    ( "serializability",
      [
        Alcotest.test_case "empty" `Quick test_empty_history;
        Alcotest.test_case "disjoint" `Quick test_disjoint_roots;
        Alcotest.test_case "ww chain" `Quick test_ww_chain;
        Alcotest.test_case "wr edge" `Quick test_wr_edge;
        Alcotest.test_case "rw edge" `Quick test_rw_edge;
        Alcotest.test_case "rw next version" `Quick test_rw_skips_to_next_version_only;
        Alcotest.test_case "classic cycle" `Quick test_classic_cycle;
        Alcotest.test_case "self access" `Quick test_self_access_no_edge;
        Alcotest.test_case "witness complete" `Quick test_witness_order_complete;
        QCheck_alcotest.to_alcotest qcheck_checker_matches_brute_force;
      ] );
  ]
