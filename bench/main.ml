(* Benchmark harness: regenerates every table/figure of the paper's
   evaluation (§5) and times the simulator with Bechamel.

   Part 1 — reproduction (full scale): Figures 2-5 (bytes per shared object,
   3 protocols x 4 scenarios), Figures 6-8 (consistency time vs per-message
   software cost at 10 Mbps / 100 Mbps / 1 Gbps), the §5 headline ratio
   table, and the two future-work ablations (RC-nested, optimistic
   pre-acquisition).

   Part 2 — performance: one Bechamel Test.make per figure (reduced root
   count so each measurement iteration is sub-second), reporting the wall
   time to execute one simulated cluster run. *)

open Bechamel
open Toolkit

(* ------------------------------------------------------------------ *)
(* Part 1: the paper's numbers.                                        *)

let reproduce () =
  Format.printf "==================================================================@.";
  Format.printf "LOTEC reproduction: paper figures (PODC '99, section 5)@.";
  Format.printf "==================================================================@.@.";
  let figures, summary = Experiments.Summary.run_all () in
  List.iter (fun fb -> Format.printf "%a@." Experiments.Fig_bytes.pp fb) figures;
  (* One figure rendered the way the paper plots it. *)
  Format.printf "%a@."
    (Experiments.Fig_bytes.pp_chart ~objects:6)
    (List.hd figures);
  let fig2 = List.hd figures in
  Format.printf "%a@." Experiments.Fig_time.pp (Experiments.Fig_time.figure6 fig2);
  Format.printf "%a@." Experiments.Fig_time.pp (Experiments.Fig_time.figure7 fig2);
  Format.printf "%a@." Experiments.Fig_time.pp (Experiments.Fig_time.figure8 fig2);
  Format.printf
    "headline ratios (paper: OTEC 20-25%% below COTEC; LOTEC 5-10%% below OTEC;@.\
     \"in some cases, the difference is more dramatic\"):@.%a@."
    Experiments.Summary.pp summary;
  Format.printf "%a@." Experiments.Ablation.pp (Experiments.Ablation.rc_comparison ());
  Format.printf "%a@." Experiments.Ablation.pp (Experiments.Ablation.prefetch_comparison ());
  Format.printf "%a@." Experiments.Ablation.pp (Experiments.Ablation.per_class_comparison ());
  Format.printf "%a@." Experiments.Ablation.pp (Experiments.Ablation.replication_comparison ());
  Format.printf "%a@." Experiments.Granularity.pp (Experiments.Granularity.run ());
  Format.printf "%a@." Experiments.Active_messages.pp (Experiments.Active_messages.run ());
  List.iter
    (fun r -> Format.printf "%a@." Experiments.Sweep.pp r)
    (Experiments.Sweep.run_all ());
  Format.printf "%a@." Experiments.Throughput.pp (Experiments.Throughput.protocols ());
  Format.printf "%a@." Experiments.Throughput.pp (Experiments.Throughput.scaling ())

(* Every sweep below persists its results as a BENCH_*.json artefact. An
   entry that silently writes nothing (or an empty array) would turn the
   perf trajectory into a gap nobody notices until a regression needs the
   history — so writing is fatal-on-empty, and main() re-checks that every
   expected artefact exists and is non-empty after the entries ran. *)
let write_artifact file contents =
  if String.trim contents = "" || String.trim contents = "[\n\n]" then begin
    Format.eprintf "FATAL: bench entry wrote no data for %s@." file;
    exit 1
  end;
  let oc = open_out file in
  output_string oc contents;
  close_out oc;
  Format.printf "wrote %s (%d bytes)@.@." file (String.length contents)

(* The read-lease sweep (leases off vs TTL vs adaptive, all protocols),
   printed and also written as BENCH_lease.json so the perf trajectory is
   machine-readable across revisions. *)
let lease_json_file = "BENCH_lease.json"

let lease_sweep () =
  Format.printf "==================================================================@.";
  Format.printf "Read-lease subsystem: home-node lock traffic, leases off vs on@.";
  Format.printf "==================================================================@.@.";
  let outcomes = Experiments.Lease.sweep () in
  Format.printf "%a@." Experiments.Lease.pp_report outcomes;
  write_artifact lease_json_file (Experiments.Lease.to_json outcomes)

(* The method-result cache sweep (baseline vs lease-only vs lease+cache,
   all protocols, web-serving workload), printed and written as
   BENCH_cache.json: the machine-readable record of the hit rate and the
   message reduction the cache rides on (see EXPERIMENTS.md, "Web
   serving"). *)
let cache_json_file = "BENCH_cache.json"

let cache_sweep () =
  Format.printf "==================================================================@.";
  Format.printf "Method-result cache: web serving, baseline vs lease vs lease+cache@.";
  Format.printf "==================================================================@.@.";
  let outcomes = Experiments.Method_cache.sweep () in
  Format.printf "%a@." Experiments.Method_cache.pp_report outcomes;
  write_artifact cache_json_file (Experiments.Method_cache.to_json outcomes)

(* Per-message-type traffic breakdown (COTEC vs OTEC vs LOTEC on the
   default scenario), printed and written as BENCH_trace.json: the
   machine-readable record of the messages-vs-bytes tradeoff per wire
   message type (see OBSERVABILITY.md). *)
let trace_json_file = "BENCH_trace.json"

let msg_breakdown () =
  Format.printf "==================================================================@.";
  Format.printf "Wire-message breakdown: messages vs bytes per message type@.";
  Format.printf "==================================================================@.@.";
  let rows = Experiments.Msg_breakdown.run () in
  Format.printf "%a@." Experiments.Msg_breakdown.pp_report rows;
  write_artifact trace_json_file (Experiments.Msg_breakdown.to_json rows)

(* The message-combining sweep (protocols x batching policy under light
   loss), printed and written as BENCH_batch.json: the machine-readable
   record of how much of LOTEC's per-message overhead the combining layer
   recovers (see EXPERIMENTS.md). *)
let batch_json_file = "BENCH_batch.json"

let batching_sweep () =
  Format.printf "==================================================================@.";
  Format.printf "Message combining: ack piggybacking, fetch aggregation, coalescing@.";
  Format.printf "==================================================================@.@.";
  let outcomes = Experiments.Batching.sweep () in
  Format.printf "%a@." Experiments.Batching.pp_report outcomes;
  (match Experiments.Batching.lotec_message_reduction_pct outcomes with
  | Some pct -> Format.printf "LOTEC messages vs off: %+.1f%%@." pct
  | None -> ());
  write_artifact batch_json_file (Experiments.Batching.to_json outcomes)

(* The function-shipping sweep (protocols x locality skews x software
   costs, shipping on vs the always-data-ship baseline), printed and
   written as BENCH_ship.json: the machine-readable record of the byte
   reduction and the completion-time ratio the per-call cost model buys
   (see EXPERIMENTS.md, "Function shipping"). *)
let ship_json_file = "BENCH_ship.json"

let ship_sweep () =
  Format.printf "==================================================================@.";
  Format.printf "Function shipping: per-call cost model vs always data-ship@.";
  Format.printf "==================================================================@.@.";
  let outcomes = Experiments.Function_shipping.sweep () in
  Format.printf "%a@." Experiments.Function_shipping.pp_report outcomes;
  write_artifact ship_json_file (Experiments.Function_shipping.to_json outcomes)

(* The escrow-commit sweep (protocols x Zipf skews, escrow delta locks vs
   the exclusive-locking baseline on the bank workload), printed and
   written as BENCH_escrow.json: the machine-readable record of the
   completion-time reduction coordination-avoiding commutative commits
   buy on hot objects (see EXPERIMENTS.md, "Escrow"). *)
let escrow_json_file = "BENCH_escrow.json"

let escrow_sweep () =
  Format.printf "==================================================================@.";
  Format.printf "Escrow commit: coordination-avoiding deltas vs exclusive locking@.";
  Format.printf "==================================================================@.@.";
  let outcomes = Experiments.Escrow.sweep () in
  Format.printf "%a@." Experiments.Escrow.pp_report outcomes;
  write_artifact escrow_json_file (Experiments.Escrow.to_json outcomes)

(* The crash-recovery sweep (crash windows x protocols x replica counts),
   printed and written as BENCH_crash.json: recovery latency percentiles
   and aborted-vs-recovered counts, machine-readable across revisions. *)
let crash_json_file = "BENCH_crash.json"

let crash_chaos () =
  Format.printf "==================================================================@.";
  Format.printf "Crash recovery: fail-stop windows, reclamation, GDO failover@.";
  Format.printf "==================================================================@.@.";
  let outcomes = Experiments.Chaos.crash_sweep () in
  Format.printf "%a@." Experiments.Chaos.pp_crash_report outcomes;
  write_artifact crash_json_file (Experiments.Chaos.crash_to_json outcomes)

(* The partition / gray-failure nemesis (partition, one-way-cut and
   slow-link schedules x protocols x replica counts, no crashes),
   printed and written as BENCH_partition.json: declaration latency
   percentiles, false-suspicion / readmission counts and in-window
   availability, machine-readable across revisions. Every run asserts
   the split-brain audit and exact wire reconciliation internally. *)
let partition_json_file = "BENCH_partition.json"

let partition_nemesis () =
  Format.printf "==================================================================@.";
  Format.printf "Partition nemesis: quorum membership, fencing, readmission@.";
  Format.printf "==================================================================@.@.";
  let outcomes = Experiments.Partition.sweep () in
  Format.printf "%a@." Experiments.Partition.pp_report outcomes;
  write_artifact partition_json_file (Experiments.Partition.to_json outcomes)

(* The engine micro-benchmark (flat event pool vs the recorded
   pre-refactor baseline) plus the 100k-root scale point per protocol
   (streaming metrics), written as BENCH_engine.json: the
   machine-readable record of raw simulator speed across revisions (see
   EXPERIMENTS.md, "Scale"). The full 100k/300k/1M default sweep is
   `make scale` — the 1M x 256 points alone take several minutes each,
   too slow for the everything-bench. *)
let engine_json_file = "BENCH_engine.json"

let bench_scale_points = [ (100_000, 64) ]

let engine_scale () =
  Format.printf "==================================================================@.";
  Format.printf "Engine speed: event-pool micro-benchmark + scale sweep@.";
  Format.printf "==================================================================@.@.";
  let bench = Experiments.Scale.engine_bench () in
  Format.printf "%a@." Experiments.Scale.pp_bench bench;
  let progress (r : Experiments.Scale.scale_row) =
    Format.printf "  %-9s %8d roots x %3d nodes: %6.2f s wall, %8.0f events/sec@."
      (Format.asprintf "%a" Dsm.Protocol.pp r.Experiments.Scale.s_protocol)
      r.Experiments.Scale.s_roots r.Experiments.Scale.s_nodes
      r.Experiments.Scale.s_profile.Experiments.Scale.wall_s
      r.Experiments.Scale.s_profile.Experiments.Scale.events_per_sec
  in
  let scale = Experiments.Scale.sweep ~points:bench_scale_points ~progress () in
  Format.printf "@.%a@." Experiments.Scale.pp_sweep scale;
  write_artifact engine_json_file (Experiments.Scale.to_json ~bench ~scale ())

(* ------------------------------------------------------------------ *)
(* Part 2: Bechamel timing of the simulator itself.                    *)

let bench_scenario spec ~protocol =
  let spec = { spec with Workload.Spec.root_count = 40 } in
  let wl = Workload.Generator.generate spec ~page_size:4096 in
  fun () -> ignore (Experiments.Runner.execute ~protocol wl)

(* Same run under an unreliable interconnect: times the fault injector plus
   the reliable transport (acks, dedup, retransmit timers). *)
let bench_chaos spec ~protocol =
  let spec = { spec with Workload.Spec.root_count = 40 } in
  let wl = Workload.Generator.generate spec ~page_size:4096 in
  let faults =
    {
      Sim.Fault.none with
      Sim.Fault.seed = 7;
      drop_probability = 0.05;
      duplicate_probability = 0.05;
      delay_jitter_us = 25.0;
    }
  in
  let config = { Core.Config.default with Core.Config.faults = Some faults } in
  fun () -> ignore (Experiments.Runner.execute ~config ~protocol wl)

let fig2_spec = Workload.Scenarios.medium_high
let fig3_spec = Workload.Scenarios.large_high
let fig4_spec = Workload.Scenarios.medium_moderate
let fig5_spec = Workload.Scenarios.large_moderate

let tests =
  Test.make_grouped ~name:"lotec" ~fmt:"%s %s"
    [
      Test.make ~name:"fig2-lotec"
        (Staged.stage (bench_scenario fig2_spec ~protocol:Dsm.Protocol.Lotec));
      Test.make ~name:"fig2-otec"
        (Staged.stage (bench_scenario fig2_spec ~protocol:Dsm.Protocol.Otec));
      Test.make ~name:"fig2-cotec"
        (Staged.stage (bench_scenario fig2_spec ~protocol:Dsm.Protocol.Cotec));
      Test.make ~name:"fig3-lotec"
        (Staged.stage (bench_scenario fig3_spec ~protocol:Dsm.Protocol.Lotec));
      Test.make ~name:"fig4-lotec"
        (Staged.stage (bench_scenario fig4_spec ~protocol:Dsm.Protocol.Lotec));
      Test.make ~name:"fig5-lotec"
        (Staged.stage (bench_scenario fig5_spec ~protocol:Dsm.Protocol.Lotec));
      Test.make ~name:"fig6-8-replay"
        (Staged.stage
           (let fb =
              Experiments.Fig_bytes.run ~name:"bench"
                { fig2_spec with Workload.Spec.root_count = 40 }
            in
            fun () ->
              ignore (Experiments.Fig_time.figure6 fb);
              ignore (Experiments.Fig_time.figure7 fb);
              ignore (Experiments.Fig_time.figure8 fb)));
      Test.make ~name:"rc-nested"
        (Staged.stage (bench_scenario fig2_spec ~protocol:Dsm.Protocol.Rc_nested));
      Test.make ~name:"fig2-lotec-chaos"
        (Staged.stage (bench_chaos fig2_spec ~protocol:Dsm.Protocol.Lotec));
      Test.make ~name:"crash-lotec"
        (Staged.stage
           (let spec = Experiments.Chaos.default_spec in
            let case =
              {
                Experiments.Chaos.cc_protocol = Dsm.Protocol.Lotec;
                cc_windows = [ (2, 3_000.0, 9_000.0) ];
                cc_gdo_replicas = 1;
                cc_drop = 0.0;
                cc_fault_seed = 1;
              }
            in
            fun () -> ignore (Experiments.Chaos.run_crash_case ~spec case)));
      Test.make ~name:"lease-lotec"
        (Staged.stage
           (let spec =
              { Experiments.Lease.default_spec with Workload.Spec.root_count = 40 }
            in
            let wl = Workload.Generator.generate spec ~page_size:4096 in
            let config =
              { Core.Config.default with Core.Config.lease = Experiments.Lease.default_policy }
            in
            fun () ->
              ignore (Experiments.Runner.execute ~config ~protocol:Dsm.Protocol.Lotec wl)));
      Test.make ~name:"cache-lotec"
        (Staged.stage
           (let spec =
              { Workload.Scenarios.web_sessions with Workload.Spec.root_count = 40 }
            in
            let wl = Workload.Generator.generate spec ~page_size:4096 in
            let config =
              {
                Core.Config.default with
                Core.Config.lease = Experiments.Method_cache.default_lease;
                method_cache = Experiments.Method_cache.default_policy;
              }
            in
            fun () ->
              ignore (Experiments.Runner.execute ~config ~protocol:Dsm.Protocol.Lotec wl)));
      Test.make ~name:"batch-lotec"
        (Staged.stage
           (let spec =
              { Experiments.Batching.default_spec with Workload.Spec.root_count = 40 }
            in
            let wl = Workload.Generator.generate spec ~page_size:4096 in
            let config =
              {
                Core.Config.default with
                Core.Config.batching = Dsm.Batching.all;
                faults = Some Experiments.Batching.default_faults;
              }
            in
            fun () ->
              ignore (Experiments.Runner.execute ~config ~protocol:Dsm.Protocol.Lotec wl)));
      Test.make ~name:"escrow-lotec"
        (Staged.stage
           (let spec =
              {
                (Experiments.Escrow.default_spec ~skew:1.2) with
                Workload.Spec.root_count = 40;
              }
            in
            let wl = Workload.Generator.generate spec ~page_size:4096 in
            let config =
              {
                Core.Config.default with
                Core.Config.escrow = Dsm.Escrow.On Experiments.Escrow.default_params;
              }
            in
            fun () ->
              ignore (Experiments.Runner.execute ~config ~protocol:Dsm.Protocol.Lotec wl)));
      Test.make ~name:"ship-lotec"
        (Staged.stage
           (let spec =
              {
                (Experiments.Function_shipping.default_spec ~skew:1.5) with
                Workload.Spec.root_count = 40;
              }
            in
            let wl = Workload.Generator.generate spec ~page_size:4096 in
            let config =
              {
                Core.Config.default with
                Core.Config.shipping =
                  Dsm.Shipping.On Experiments.Function_shipping.default_params;
              }
            in
            fun () ->
              ignore (Experiments.Runner.execute ~config ~protocol:Dsm.Protocol.Lotec wl)));
    ]

let benchmark () =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 1.0) ~stabilize:false ~kde:None () in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Format.printf "==================================================================@.";
  Format.printf "Simulator performance (Bechamel, monotonic clock)@.";
  Format.printf "==================================================================@.";
  Format.printf "%-26s %14s@." "benchmark" "time/run";
  let rows = ref [] in
  Hashtbl.iter (fun name result -> rows := (name, result) :: !rows) results;
  List.iter
    (fun (name, result) ->
      match Analyze.OLS.estimates result with
      | Some [ est ] ->
          let pretty =
            if est > 1e9 then Printf.sprintf "%.2f s" (est /. 1e9)
            else if est > 1e6 then Printf.sprintf "%.2f ms" (est /. 1e6)
            else Printf.sprintf "%.2f us" (est /. 1e3)
          in
          Format.printf "%-26s %14s@." name pretty
      | _ -> Format.printf "%-26s %14s@." name "n/a")
    (List.sort (fun (a, _) (b, _) -> String.compare a b) !rows)

let () =
  reproduce ();
  lease_sweep ();
  cache_sweep ();
  batching_sweep ();
  ship_sweep ();
  escrow_sweep ();
  msg_breakdown ();
  crash_chaos ();
  partition_nemesis ();
  engine_scale ();
  (* Belt and braces over write_artifact: every entry above must have left
     a non-empty artefact on disk before the timing section runs. *)
  List.iter
    (fun file ->
      let size =
        try
          let ic = open_in file in
          let n = in_channel_length ic in
          close_in ic;
          n
        with Sys_error _ -> -1
      in
      if size <= 0 then begin
        Format.eprintf "FATAL: bench entry left %s missing or empty@." file;
        exit 1
      end)
    [
      lease_json_file; cache_json_file; batch_json_file; ship_json_file; escrow_json_file;
      trace_json_file; crash_json_file; partition_json_file; engine_json_file;
    ];
  benchmark ()
