open Txn

(** Read leases: locally cached read grants with recall-on-write.

    A {e read lease} is a home-node promise to a caching node: "until this
    lease expires or is recalled, no update lock on this object will be
    granted". While a node holds a valid lease on an object, the runtime can
    satisfy read-mode lock requests by {e new} families entirely locally —
    zero messages to the GDO home — installing the cached grant (page map
    included) in the node's local lock table. A write acquisition at the home
    first {e recalls} outstanding leases from the copyset and blocks until
    every leased node yields or the lease's logical-time TTL expires.

    The module is a pure, synchronous data structure in the style of
    {!Directory}: the home-side manager ({!t}) and the node-side cache
    ({!Cache.t}) record state and return instructions; all messaging,
    scheduling and timing lives in the runtime.

    {2 Safety argument (O2PL preserved)}

    A lease-backed read lock is invisible to the directory, so the usual
    two-phase argument is re-established by three rules:

    - {b Recall-before-write.} No write lock is granted while any lease is
      outstanding. A leased node yields only after every lease-backed reader
      (other than the excluded upgrader, see below) has released — so a
      yield carries the same "readers are done" meaning as a directory
      release.
    - {b TTL doom.} If the home stops waiting because the lease TTL expired
      (a reader still running, a yield lost beyond retransmission), the
      stranded readers are not protected any more. Every lease-backed reader
      therefore re-validates its leases at commit (and at read-to-write
      upgrade): an expired or superseded lease forces the family to abort
      and retry, keeping unprotected reads out of the committed history.
    - {b Epoch fencing.} The home stamps every lease with the object's write
      {e epoch} and bumps the epoch on every write grant. Recalls carry the
      epoch being recalled and the cache refuses to (re)install a lease at
      or below the highest recalled epoch, so a retransmitted or reordered
      grant can never resurrect a recalled lease. A reader admitted under an
      older epoch fails validation after any intervening write grant.

    The only family allowed to keep its lease-backed read across a yield is
    the {e excluded} family: the writer whose request triggered the recall
    (necessarily the first blocked writer, hence the first to be granted).
    Its read is then protected by its own impending write lock. *)

(** When (and for how long) the home grants leases. TTLs are simulated
    ("logical") microseconds. *)
type policy =
  | Off  (** never grant leases: byte-identical to the pre-lease runtime *)
  | Fixed_ttl of { ttl_us : float }
      (** lease every read grant for [ttl_us] simulated microseconds *)
  | Adaptive of { ttl_us : float; min_read_ratio : float; min_samples : int }
      (** lease only objects whose observed global-acquire read ratio is at
          least [min_read_ratio], once [min_samples] acquires were seen —
          write-heavy objects never pay the recall latency *)

val policy_enabled : policy -> bool
(** False only for {!Off}. *)

val validate_policy : policy -> (unit, string) result
(** Reject non-positive TTLs, ratios outside [0,1], negative sample counts. *)

val policy_of_string : string -> (policy, string) result
(** Parse "off", "ttl" or "adaptive" (with default parameters); [Error]
    names the valid set. *)

val policy_to_string : policy -> string
(** Inverse of {!policy_of_string} for the default shapes ("off", "ttl",
    "adaptive"); parameters are not round-tripped. *)

val pp_policy : Format.formatter -> policy -> unit
(** Display form including parameters, e.g. ["ttl(20000us)"]. *)

(** {1 Home side} *)

type t

val create : policy -> t
(** Home-side lease manager with no outstanding leases. *)

val enabled : t -> bool
(** False for {!Off}: every other operation is then a cheap no-op. *)

val note_read : t -> Objmodel.Oid.t -> unit
(** Record a read-mode global acquire reaching the home (adaptive stats). *)

val note_write : t -> Objmodel.Oid.t -> unit
(** Record a write-mode global acquire reaching the home. *)

val lease_for_grant :
  t -> Objmodel.Oid.t -> node:int -> now:float -> writer_queued:bool -> (float * int) option
(** Should a read grant to [node] carry a lease? [Some (expires, epoch)] if
    the policy admits the object, no recall is in progress and
    [writer_queued] is false (a lease granted under a queued writer would be
    recalled immediately). Records the lease as outstanding; granting again
    to the same node renews (extends) its lease. *)

val outstanding : t -> Objmodel.Oid.t -> now:float -> int list
(** Nodes holding an unexpired lease (expired entries are pruned). *)

val fence_deadline : t -> Objmodel.Oid.t -> now:float -> float
(** The latest expiry among the object's outstanding grants, or [now] if
    none. Failover fencing: a successor taking over a declared-dead home's
    partition must not grant on the object before this instant — earlier,
    a node holding one of the dead home's read leases could still be
    serving leased reads the new regime does not know about. *)

val recall_in_progress : t -> Objmodel.Oid.t -> bool
(** Whether a {!begin_recall} on the object has not yet cleared. *)

type recall_order = {
  ro_nodes : int list;  (** leased nodes to send [Lease_recall] to *)
  ro_epoch : int;  (** epoch being recalled, fencing stale re-grants *)
  ro_deadline : float;  (** latest lease expiry: force-clear no later than this *)
  ro_token : int;  (** identifies this recall to {!force_clear} *)
}

val begin_recall :
  t ->
  Objmodel.Oid.t ->
  now:float ->
  excluded:Txn_id.t option ->
  [ `Clear | `In_progress | `Recall of recall_order ]
(** Start recalling every outstanding lease, on behalf of a blocked write
    whose requesting family is [excluded]. [`Clear]: nothing outstanding,
    the write may proceed. [`In_progress]: an earlier write already started
    a recall — queue behind it. [`Recall]: send a recall to each node and
    arm a timer at [ro_deadline]. *)

val excluded_family : t -> Objmodel.Oid.t -> Txn_id.t option
(** The family the in-progress recall excludes, if any. *)

val note_yield : t -> Objmodel.Oid.t -> node:int -> [ `Cleared | `Waiting | `Stale ]
(** A [Lease_yield] arrived. [`Cleared]: that was the last awaited node —
    run the blocked writes. [`Stale]: no recall in progress (late or
    duplicated yield) — ignore. *)

val recall_token : t -> Objmodel.Oid.t -> int option
(** Token of the in-progress recall, if any. A poller armed by
    [`Recall] should stand down once the token no longer matches its
    own — the recall was resolved (or superseded) in the meantime. *)

val force_clear : t -> Objmodel.Oid.t -> token:int -> bool
(** TTL deadline fired. True iff recall [token] was still in progress: all
    remaining leases are dropped as expired and the blocked writes must be
    run (stranded readers will fail commit-time validation). *)

val evict_node : t -> node:int -> Objmodel.Oid.t list
(** Crash recovery: the node was declared dead — drop every lease granted
    to it (it can neither serve readers nor yield). Returns, ascending,
    the objects whose in-progress recall was waiting only on the dead node
    and therefore cleared: the caller must run their blocked writes, as
    after a final yield. Safe because a dead node's lease-backed readers
    died with it — nothing unprotected can reach the committed history. *)

val note_write_granted : t -> Objmodel.Oid.t -> unit
(** Bump the object's epoch: leases stamped with earlier epochs (and readers
    admitted under them) are permanently superseded. *)

val epoch : t -> Objmodel.Oid.t -> int
(** The object's current lease epoch (starts at 0, bumped per write grant). *)

(** {1 Node side} *)

module Cache : sig
  type cache

  val create : unit -> cache

  val set_on_invalidate : cache -> (Objmodel.Oid.t -> unit) -> unit
  (** Subscribe to lease invalidation: [f oid] is called whenever the cache
      learns its leased view of [oid] is over — a [Lease_recall] delivery
      (every delivery, retransmissions included), an expired entry being
      GCed by {!drop_expired}, or an epoch-superseding {!install} (a write
      was granted in between). The runtime's method-result cache
      ([Dsm.Method_cache]) hooks this to wipe the object's cached results;
      at most one subscriber is kept (the latest wins). *)

  val install :
    cache -> Objmodel.Oid.t -> grant:Directory.grant -> expires:float -> epoch:int -> unit
  (** A read grant arrived carrying a lease. Called only after the grant's
      acquisition-time page transfer has landed, so every page the cached
      page map names as local really is local. Refused (no-op) when [epoch]
      does not exceed the highest recalled epoch, or is below the installed
      entry's epoch — the epoch fence. An equal-epoch install renews the
      entry; a higher-epoch install supersedes it (existing readers keep
      their admission epoch and will fail validation). *)

  val hit : cache -> Objmodel.Oid.t -> now:float -> Directory.grant option
  (** The cached grant, when the lease is valid (present, unexpired, not
      recalled): the caller may satisfy a read-mode acquire locally. *)

  val add_reader : cache -> Objmodel.Oid.t -> family:Txn_id.t -> unit
  (** Record [family] as holding a lease-backed read (admission epoch =
      entry epoch). Call after a successful {!hit}. *)

  val remove_reader : cache -> Objmodel.Oid.t -> family:Txn_id.t -> [ `Yield | `Nothing ]
  (** The family released (commit/abort) or upgraded away its lease-backed
      read. [`Yield]: a deferred recall was waiting on this reader — send
      [Lease_yield] to the home now. *)

  val recall :
    cache -> Objmodel.Oid.t -> epoch:int -> excluded:Txn_id.t option -> [ `Yield | `Deferred ]
  (** A [Lease_recall] arrived. Marks the entry recalled (no further hits)
      and raises the recalled-epoch fence. [`Yield]: no blocking readers —
      reply immediately. [`Deferred]: readers other than [excluded] are
      still running; {!remove_reader} will surface the yield when the last
      one drains. Idempotent: a retransmitted recall on an already-yielded
      or absent entry is [`Yield] again (the home dedups). *)

  val valid : cache -> Objmodel.Oid.t -> family:Txn_id.t -> now:float -> bool
  (** Commit-time (and upgrade-time) validation of a lease-backed read:
      entry present, [family] recorded at the entry's current epoch, and the
      lease unexpired. A recalled-but-unyielded lease is still valid — the
      home is waiting on us. *)

  val reader_count : cache -> Objmodel.Oid.t -> int
  val entry_count : cache -> int

  val drop_expired : cache -> now:float -> unit
  (** GC readerless expired entries (hits already ignore them). *)
end
