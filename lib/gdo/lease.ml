open Objmodel
open Txn

(* Defaults used by policy_of_string; the CLI overrides them from flags. *)
let default_ttl_us = 20_000.0
let default_min_read_ratio = 0.6
let default_min_samples = 4

type policy =
  | Off
  | Fixed_ttl of { ttl_us : float }
  | Adaptive of { ttl_us : float; min_read_ratio : float; min_samples : int }

let policy_enabled = function Off -> false | Fixed_ttl _ | Adaptive _ -> true

let validate_policy = function
  | Off -> Ok ()
  | Fixed_ttl { ttl_us } ->
      if ttl_us > 0.0 then Ok () else Error "lease ttl_us must be positive"
  | Adaptive { ttl_us; min_read_ratio; min_samples } ->
      if ttl_us <= 0.0 then Error "lease ttl_us must be positive"
      else if min_read_ratio < 0.0 || min_read_ratio > 1.0 then
        Error "lease min_read_ratio must be in [0,1]"
      else if min_samples < 1 then Error "lease min_samples must be >= 1"
      else Ok ()

let policy_of_string s =
  match String.lowercase_ascii s with
  | "off" | "none" -> Ok Off
  | "ttl" | "on" | "fixed" -> Ok (Fixed_ttl { ttl_us = default_ttl_us })
  | "adaptive" ->
      Ok
        (Adaptive
           {
             ttl_us = default_ttl_us;
             min_read_ratio = default_min_read_ratio;
             min_samples = default_min_samples;
           })
  | other -> Error (Printf.sprintf "unknown lease policy %S (expected off|ttl|adaptive)" other)

let policy_to_string = function
  | Off -> "off"
  | Fixed_ttl _ -> "ttl"
  | Adaptive _ -> "adaptive"

let pp_policy fmt = function
  | Off -> Format.pp_print_string fmt "off"
  | Fixed_ttl { ttl_us } -> Format.fprintf fmt "ttl(%.0fus)" ttl_us
  | Adaptive { ttl_us; min_read_ratio; min_samples } ->
      Format.fprintf fmt "adaptive(%.0fus, read>=%.2f, n>=%d)" ttl_us min_read_ratio
        min_samples

(* ------------------------------------------------------------------ *)
(* Home side.                                                          *)

type recall_state = {
  r_token : int;
  mutable r_awaiting : int list;
  r_excluded : Txn_id.t option;
}

type entry = {
  mutable grants : (int * float) list;  (* node, expires *)
  mutable epoch : int;
  mutable recall : recall_state option;
  mutable reads : int;
  mutable writes : int;
}

type t = { policy : policy; entries : entry Oid.Table.t; mutable next_token : int }

let create policy = { policy; entries = Oid.Table.create 64; next_token = 0 }

let enabled t = policy_enabled t.policy

let entry t oid =
  match Oid.Table.find_opt t.entries oid with
  | Some e -> e
  | None ->
      let e = { grants = []; epoch = 0; recall = None; reads = 0; writes = 0 } in
      Oid.Table.add t.entries oid e;
      e

let note_read t oid =
  if enabled t then
    let e = entry t oid in
    e.reads <- e.reads + 1

let note_write t oid =
  if enabled t then
    let e = entry t oid in
    e.writes <- e.writes + 1

let prune e ~now = e.grants <- List.filter (fun (_, exp) -> now < exp) e.grants

let policy_admits t e =
  match t.policy with
  | Off -> false
  | Fixed_ttl _ -> true
  | Adaptive { min_read_ratio; min_samples; _ } ->
      let n = e.reads + e.writes in
      n >= min_samples && float_of_int e.reads /. float_of_int n >= min_read_ratio

let ttl_of t =
  match t.policy with
  | Off -> 0.0
  | Fixed_ttl { ttl_us } | Adaptive { ttl_us; _ } -> ttl_us

let lease_for_grant t oid ~node ~now ~writer_queued =
  if not (enabled t) then None
  else
    let e = entry t oid in
    if e.recall <> None || writer_queued || not (policy_admits t e) then None
    else begin
      let expires = now +. ttl_of t in
      e.grants <- (node, expires) :: List.remove_assoc node e.grants;
      Some (expires, e.epoch)
    end

let outstanding t oid ~now =
  match Oid.Table.find_opt t.entries oid with
  | None -> []
  | Some e ->
      prune e ~now;
      List.sort Int.compare (List.map fst e.grants)

(* Split-brain fencing (see Core.Runtime's failover): the latest expiry
   among the object's outstanding grants. A failover successor must not
   serve a dead home's partition before every lease that home granted has
   provably expired or been recalled — until then a fenced-out node could
   still be serving leased reads of the old regime. [now] when nothing is
   outstanding, so lease-off runs fence to "immediately". *)
let fence_deadline t oid ~now =
  match Oid.Table.find_opt t.entries oid with
  | None -> now
  | Some e ->
      prune e ~now;
      List.fold_left (fun acc (_, exp) -> Float.max acc exp) now e.grants

let recall_in_progress t oid =
  match Oid.Table.find_opt t.entries oid with None -> false | Some e -> e.recall <> None

let excluded_family t oid =
  match Oid.Table.find_opt t.entries oid with
  | None -> None
  | Some e -> ( match e.recall with None -> None | Some r -> r.r_excluded)

type recall_order = { ro_nodes : int list; ro_epoch : int; ro_deadline : float; ro_token : int }

let begin_recall t oid ~now ~excluded =
  let e = entry t oid in
  match e.recall with
  | Some _ -> `In_progress
  | None -> (
      prune e ~now;
      match e.grants with
      | [] -> `Clear
      | grants ->
          t.next_token <- t.next_token + 1;
          let token = t.next_token in
          let nodes = List.sort Int.compare (List.map fst grants) in
          let deadline = List.fold_left (fun acc (_, exp) -> Float.max acc exp) now grants in
          e.recall <- Some { r_token = token; r_awaiting = nodes; r_excluded = excluded };
          `Recall { ro_nodes = nodes; ro_epoch = e.epoch; ro_deadline = deadline; ro_token = token })

let note_yield t oid ~node =
  match Oid.Table.find_opt t.entries oid with
  | None -> `Stale
  | Some e -> (
      match e.recall with
      | None -> `Stale
      | Some r ->
          r.r_awaiting <- List.filter (fun n -> n <> node) r.r_awaiting;
          e.grants <- List.remove_assoc node e.grants;
          if r.r_awaiting = [] then begin
            e.recall <- None;
            e.grants <- [];
            `Cleared
          end
          else `Waiting)

let recall_token t oid =
  match Oid.Table.find_opt t.entries oid with
  | None -> None
  | Some e -> ( match e.recall with None -> None | Some r -> Some r.r_token)

let force_clear t oid ~token =
  match Oid.Table.find_opt t.entries oid with
  | None -> false
  | Some e -> (
      match e.recall with
      | Some r when r.r_token = token ->
          e.recall <- None;
          e.grants <- [];
          true
      | Some _ | None -> false)

(* Crash recovery: a node declared dead can neither use nor yield its
   leases. Drop every lease granted to it; a recall that was waiting only
   on the dead node thereby clears — the caller must run the blocked
   writes for the returned objects, exactly as after a final yield. *)
let evict_node t ~node =
  let cleared = ref [] in
  Oid.Table.iter
    (fun oid e ->
      e.grants <- List.remove_assoc node e.grants;
      match e.recall with
      | Some r when List.mem node r.r_awaiting ->
          r.r_awaiting <- List.filter (fun n -> n <> node) r.r_awaiting;
          if r.r_awaiting = [] then begin
            e.recall <- None;
            e.grants <- [];
            cleared := oid :: !cleared
          end
      | Some _ | None -> ())
    t.entries;
  List.sort Oid.compare !cleared

let note_write_granted t oid =
  if enabled t then
    let e = entry t oid in
    e.epoch <- e.epoch + 1

let epoch t oid = match Oid.Table.find_opt t.entries oid with None -> 0 | Some e -> e.epoch

(* ------------------------------------------------------------------ *)
(* Node side.                                                          *)

module Cache = struct
  type centry = {
    mutable grant : Directory.grant;
    mutable expires : float;
    mutable c_epoch : int;
    mutable readers : (Txn_id.t * int) list;  (* family, admission epoch *)
    mutable recalled : bool;
    mutable yielded : bool;
    mutable c_excluded : Txn_id.t option;
  }

  type cache = {
    c_entries : centry Oid.Table.t;
    (* Highest epoch a recall was seen for, per object; survives entry drops
       so a reordered or retransmitted grant can never resurrect a recalled
       lease (the epoch fence). *)
    recall_floor : int Oid.Table.t;
    (* Invalidation subscriber (the runtime's method-result cache): called
       with the object whenever this cache learns its leased view is over —
       recall delivery, expiry GC, epoch-superseding re-install. *)
    mutable on_invalidate : (Oid.t -> unit) option;
  }

  let create () =
    {
      c_entries = Oid.Table.create 32;
      recall_floor = Oid.Table.create 32;
      on_invalidate = None;
    }

  let set_on_invalidate c f = c.on_invalidate <- Some f

  let invalidated c oid = match c.on_invalidate with None -> () | Some f -> f oid

  let floor_of c oid =
    match Oid.Table.find_opt c.recall_floor oid with Some e -> e | None -> -1

  let install c oid ~grant ~expires ~epoch =
    if epoch > floor_of c oid then
      match Oid.Table.find_opt c.c_entries oid with
      | None ->
          Oid.Table.add c.c_entries oid
            {
              grant;
              expires;
              c_epoch = epoch;
              readers = [];
              recalled = false;
              yielded = false;
              c_excluded = None;
            }
      | Some e ->
          if epoch > e.c_epoch then begin
            (* Superseding lease from a later epoch: existing readers keep
               their admission epoch and will fail validation. The epoch
               bump means a write was granted in between — anything derived
               from the old leased view is stale. *)
            invalidated c oid;
            e.grant <- grant;
            e.expires <- expires;
            e.c_epoch <- epoch;
            e.recalled <- false;
            e.yielded <- false;
            e.c_excluded <- None
          end
          else if epoch = e.c_epoch && not e.recalled then begin
            (* Renewal. *)
            e.grant <- grant;
            e.expires <- Float.max e.expires expires
          end

  let hit c oid ~now =
    match Oid.Table.find_opt c.c_entries oid with
    | Some e when (not e.recalled) && now < e.expires -> Some e.grant
    | Some _ | None -> None

  let add_reader c oid ~family =
    match Oid.Table.find_opt c.c_entries oid with
    | None -> invalid_arg "Lease.Cache.add_reader: no cached lease"
    | Some e ->
        if not (List.mem_assoc family e.readers) then
          e.readers <- (family, e.c_epoch) :: e.readers

  let blocking_readers e =
    List.filter
      (fun (f, _) ->
        match e.c_excluded with Some x -> not (Txn_id.equal f x) | None -> true)
      e.readers

  let drop c oid = Oid.Table.remove c.c_entries oid

  let remove_reader c oid ~family =
    match Oid.Table.find_opt c.c_entries oid with
    | None -> `Nothing
    | Some e ->
        e.readers <- List.filter (fun (f, _) -> not (Txn_id.equal f family)) e.readers;
        if e.recalled && (not e.yielded) && blocking_readers e = [] then begin
          e.yielded <- true;
          if e.readers = [] then drop c oid;
          `Yield
        end
        else begin
          if e.readers = [] && e.yielded then drop c oid;
          `Nothing
        end

  let recall c oid ~epoch ~excluded =
    (* A recall means a write is imminent: whatever subscribers derived from
       the leased view must go, whether or not a lease entry survives here.
       Fired on every delivery; retransmitted recalls find nothing to drop. *)
    invalidated c oid;
    if epoch > floor_of c oid then Oid.Table.replace c.recall_floor oid epoch;
    match Oid.Table.find_opt c.c_entries oid with
    | None -> `Yield
    | Some e ->
        if e.c_epoch > epoch then
          (* Recall for an older lease generation than the one installed:
             answer it without touching the newer lease. *)
          `Yield
        else begin
          e.recalled <- true;
          e.c_excluded <- (match excluded with Some _ as x -> x | None -> e.c_excluded);
          if e.yielded then `Yield  (* retransmitted recall: re-yield, home dedups *)
          else if blocking_readers e = [] then begin
            e.yielded <- true;
            if e.readers = [] then drop c oid;
            `Yield
          end
          else `Deferred
        end

  let valid c oid ~family ~now =
    match Oid.Table.find_opt c.c_entries oid with
    | None -> false
    | Some e -> (
        match List.assoc_opt family e.readers with
        | Some admission_epoch -> admission_epoch = e.c_epoch && now < e.expires
        | None -> false)

  let reader_count c oid =
    match Oid.Table.find_opt c.c_entries oid with
    | None -> 0
    | Some e -> List.length e.readers

  let entry_count c = Oid.Table.length c.c_entries

  let drop_expired c ~now =
    let dead =
      Oid.Table.fold
        (fun oid e acc -> if e.readers = [] && now >= e.expires then oid :: acc else acc)
        c.c_entries []
    in
    List.iter
      (fun oid ->
        invalidated c oid;
        drop c oid)
      dead
end
