open Txn

(** The Global Directory of Objects (GDO).

    One entry per object, holding the lock and consistency fields of the
    paper's Figure 1:

    - [LockState] — free, held for read, held for update;
    - [ReadCount] — number of families concurrently holding read locks;
    - [HolderPtr] — the holding families (with their executing nodes);
    - [NonHoldersPtr] — FIFO of waiting families;
    - [PageMap] — per page, the node storing its most up-to-date version,
      together with that version number.

    The directory is partitioned: each object has a {e home} node, and the
    runtime routes every global lock operation to the home as a message. The
    data structure itself is therefore purely local and synchronous; all
    distribution lives in the runtime.

    Beyond the paper, the directory maintains a waits-for graph over waiting
    families and refuses (with [Deadlock]) any request whose wait would close
    a cycle — the victim family aborts and retries. It also tracks each
    object's {e copyset} (nodes caching any of its pages), which the
    RC-nested extension uses to push updates eagerly. *)

type lock_state = Free | Held_read | Held_write
(** Figure 1's LockState. "Retained" is intra-family state and lives in the
    per-site table ([Txn.Local_locks]); the GDO sees a family-held lock. *)

type holder = { family : Txn_id.t; node : int }
(** Figure 1's HolderPtr entry: a family executes at one site. *)

(** Payload of a successful (or queued-then-delivered) grant: what the GDO
    sends to the acquiring site — the holder list and the object's page
    map. *)
type grant = {
  g_oid : Objmodel.Oid.t;
  g_mode : Lock.mode;
  g_page_nodes : int array;  (** index: page; value: node with newest copy *)
  g_page_versions : int array;
}

type acquire_result =
  | Granted of grant
  | Queued  (** the caller will receive a deferred grant on release *)
  | Busy  (** non-blocking acquire refused: the lock is not free *)
  | Deadlock of Txn_id.t list
      (** granting would close a waits-for cycle (returned as the family
          cycle); the requester must abort *)

(** A deferred grant produced by a release: deliver [d_grant] to family
    [d_family] at node [d_node]. *)
type delivery = { d_family : Txn_id.t; d_node : int; d_grant : grant }

type escrow_result =
  | Escrow_admitted  (** the delta reservation is recorded; proceed without locking *)
  | Escrow_refused_bounds
      (** the worst case over outstanding reservations and delegated quota
          would breach a bound; the caller falls back to the exclusive-lock
          path (refusals never wait, so escrow adds no waits-for edges) *)
  | Escrow_refused_locked
      (** a normal lock is held on the object; commutative calls fall back
          to the exclusive-lock path until it drains *)

type t

val create : unit -> t
(** Empty directory: no objects, no waits-for edges. *)

val register_object : t -> Objmodel.Oid.t -> pages:int -> initial_node:int -> unit
(** Add an entry; all pages start at version 0 on [initial_node].
    @raise Invalid_argument on duplicate registration. *)

val acquire :
  t ->
  Objmodel.Oid.t ->
  family:Txn_id.t ->
  node:int ->
  mode:Lock.mode ->
  ?block:bool ->
  unit ->
  acquire_result
(** Algorithm 4.2 (GlobalLockAcquisition). Re-entrant acquisition by a family
    that already holds the lock in a sufficient mode returns [Granted]
    immediately. A Read→Write request by a family holding Read is treated as
    an upgrade: granted when the family is the sole reader, queued at the
    front otherwise.

    [block] (default true) selects what happens when the lock cannot be
    granted now: blocking requests join the wait queue (after the waits-for
    cycle check), non-blocking ones — used by optimistic pre-acquisition —
    get [Busy] back and leave no trace. Keeping pre-acquisition non-blocking
    preserves the soundness of enqueue-time deadlock detection: every family
    has at most one blocking wait outstanding.

    Acquisition is idempotent under retransmission: a blocking request by a
    family already in the object's wait queue returns [Queued] without
    enqueueing a second waiter, and a request by a family that already holds
    the lock in a sufficient mode is re-granted — so a duplicated or
    retransmitted acquire message never corrupts directory state. *)

val release :
  t ->
  Objmodel.Oid.t ->
  family:Txn_id.t ->
  dirty:(int * int * int) list ->
  delivery list
(** Algorithm 4.4 (GlobalLockRelease) for one object. [dirty] lists
    [(page, version, node)] updates to fold into the page map (empty on abort
    releases). Returns the deferred grants the caller must deliver.
    Releasing a lock the family does not hold is a no-op returning []. *)

val evict_families : t -> dead:(Txn_id.t -> bool) -> int * delivery list
(** Crash recovery: purge every family [dead] judges dead from every entry
    — held locks are released (no dirty pages: a dead family's writes were
    never published), wait-queue entries and their waits-for edges are
    drained — then waiters are promoted exactly as after a release, so
    queued survivors receive their deferred grants. Returns the number of
    distinct families evicted and the deliveries, in ascending-oid order.
    Idempotent: evicting already-absent families changes nothing. *)

val repoint_pages :
  t ->
  dead_node:int ->
  find_copy:(Objmodel.Oid.t -> page:int -> version:int -> int option) ->
  int
(** Crash recovery: patch page-map entries whose newest version lives on
    [dead_node] to a surviving copy of the {e same} committed version, as
    located by [find_copy] (a scan of live nodes' page stores). Falling
    back to an older version would break conflict-serializability, so an
    entry with no surviving copy is left pointing at the dead node — the
    recorded version is durable there and is served again after the
    restart. Returns the number of entries repointed. *)

val lock_state : t -> Objmodel.Oid.t -> lock_state
(** The entry's current LockState. *)

val holders : t -> Objmodel.Oid.t -> holder list
(** Current holders; empty iff {!lock_state} is [Free]. *)

val read_count : t -> Objmodel.Oid.t -> int
(** Figure 1's ReadCount: number of holders when held for read, else 0. *)

val waiting_count : t -> Objmodel.Oid.t -> int
(** Length of the NonHoldersPtr FIFO. *)

val has_queued_writer : t -> Objmodel.Oid.t -> bool
(** Is any waiter a writer (or a pending upgrade)? The lease layer refuses
    to grant new leases while one is queued — they would be recalled before
    the reader could profit. *)

val page_map : t -> Objmodel.Oid.t -> int array * int array
(** Copy of (page_nodes, page_versions). *)

val note_cached : t -> Objmodel.Oid.t -> node:int -> unit
(** Record that [node] now caches pages of the object (copyset). *)

val copyset : t -> Objmodel.Oid.t -> int list
(** Nodes caching the object, ascending. *)

val object_count : t -> int
(** Number of registered objects. *)

(** {2 Escrow delta locks}

    Escrow turns a registered object into a bounded integer quantity that
    declared-commutative methods update through {e delta reservations}
    instead of page locks (see {!Dsm.Escrow} for the policy and DESIGN.md
    "Escrow commit" for the protocol). Locks and escrow exclude each other:
    {!escrow_reserve} is refused while a normal lock is held, and a normal
    {!acquire} queues while foreign reservations or delegated quota are
    outstanding — the waiter is promoted when the escrow side drains. Escrow
    never waits, so it adds no waits-for edges and cannot deadlock. *)

val register_escrow : t -> Objmodel.Oid.t -> lower:int -> upper:int -> initial:int -> unit
(** Attach an escrow ledger (quantity [initial], invariant
    [[lower, upper]]) to a registered object.
    @raise Invalid_argument if already escrowed or [initial] is out of
    bounds. *)

val has_escrow : t -> Objmodel.Oid.t -> bool

val escrow_value : t -> Objmodel.Oid.t -> int
(** Committed quantity at the home (excludes uncommitted reservations and
    unreconciled local deltas at quota-holding nodes). *)

val escrow_reserve :
  t -> Objmodel.Oid.t -> family:Txn_id.t -> node:int -> delta:int -> escrow_result
(** The escrow admission test: record a signed [delta] reservation for
    [family] iff the quantity stays inside the bounds even when every
    outstanding same-side obligation commits. A family's reservations
    aggregate into one ledger row. *)

val escrow_commit : t -> Objmodel.Oid.t -> family:Txn_id.t -> delivery list
(** Fold [family]'s aggregated reservation into the committed quantity and
    drop it; returns deferred grants for waiters unblocked by the drain.
    A family with no reservation is a no-op (idempotent). *)

val escrow_abort : t -> Objmodel.Oid.t -> family:Txn_id.t -> delivery list
(** Drop [family]'s reservation without folding it in (abort undo), then
    promote as {!escrow_commit} does. *)

val escrow_delegate : t -> Objmodel.Oid.t -> node:int -> up:int -> down:int -> int * int
(** Delegate local-commit quota to [node]: up to [up] raise units and
    [down] lower units, each clamped to the worst-case headroom remaining.
    Returns the units actually granted. Refused entirely (0, 0) while a
    normal lock is held. *)

val escrow_reconcile :
  t -> Objmodel.Oid.t -> node:int -> delta:int -> used_up:int -> used_down:int -> unit
(** Lazy reconciliation: fold [delta] — the net of [node]'s zero-message
    local commits since its last push — into the committed quantity and
    consume the quota units they spent. Requires
    [delta = used_up - used_down].
    @raise Invalid_argument on a malformed report or quota underflow. *)

val escrow_begin_recall : t -> Objmodel.Oid.t -> int
(** Bump and return the object's escrow epoch: the fence for a quota
    recall. Yields stamped with an older epoch are stale and ignored. *)

val escrow_yield :
  t ->
  Objmodel.Oid.t ->
  node:int ->
  epoch:int ->
  delta:int ->
  used_up:int ->
  used_down:int ->
  carried:(Txn_id.t * int) list ->
  delivery list * (Txn_id.t * int) list
(** [node] surrenders its delegated quota in response to a recall: the
    final unreconciled [delta] is folded in ({!escrow_reconcile}), the
    node's remaining quota is zeroed, and [carried] — the units still held
    by the node's uncommitted families, as [(family, net delta)] rows —
    is re-booked as home reservations (always admissible: the surrendered
    quota covered them). Because the carried families are wait targets the
    queued waiters never saw, the deadlock check is re-run for each
    waiter; waiters whose wait now closes a cycle are evicted and returned
    as [(family, node)] victims for the runtime to deliver the usual
    deadlock refusal to. Then remaining waiters are promoted. A stale
    [epoch] makes the whole call a no-op returning [([], [])]. *)

val escrow_epoch : t -> Objmodel.Oid.t -> int

val escrow_outstanding : t -> Objmodel.Oid.t -> bool
(** Any uncommitted reservation or delegated quota on the object? While
    true, normal acquires queue (and the runtime recalls quotas). *)

val escrow_reservations : t -> Objmodel.Oid.t -> (Txn_id.t * int * int) list
(** Outstanding [(family, node, aggregated delta)] rows, ascending by
    family; for tests and diagnostics. *)

val escrow_quotas : t -> Objmodel.Oid.t -> (int * int * int) list
(** Outstanding delegated quota [(node, up units, down units)] rows,
    ascending by node, omitting all-zero rows. *)

val waits_for_edges : t -> (Txn_id.t * Txn_id.t) list
(** Current waits-for edges (waiting family, holding family); for tests and
    diagnostics. *)

val audit : t -> string list
(** Structural invariants every reachable directory state must satisfy —
    the split-brain auditor's per-object half: a [Held_write] entry has
    exactly one holder, a [Held_read] entry at least one, a [Free] entry
    none; no family holds an entry twice; every waiter has a matching
    waits-for edge. Returns human-readable violation descriptions, [[]]
    when clean. *)

val dump : ?partition_info:(Objmodel.Oid.t -> string) -> t -> string
(** Human-readable dump of every non-free entry (lock state, holders,
    waiters, outstanding escrow ledger) — a stall diagnostic, in ascending
    oid order with sorted sub-lists so the output is deterministic across
    hash seeds. [partition_info], when given, appends per-object membership
    state (acting home, membership epoch, lease fence) supplied by the
    runtime. *)
