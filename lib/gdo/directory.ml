open Objmodel
open Txn

type lock_state = Free | Held_read | Held_write

type holder = { family : Txn_id.t; node : int }

type grant = {
  g_oid : Oid.t;
  g_mode : Lock.mode;
  g_page_nodes : int array;
  g_page_versions : int array;
}

type acquire_result = Granted of grant | Queued | Busy | Deadlock of Txn_id.t list

type delivery = { d_family : Txn_id.t; d_node : int; d_grant : grant }

type waiter = { wt_family : Txn_id.t; wt_node : int; wt_mode : Lock.mode; wt_upgrade : bool }

type entry = {
  oid : Oid.t;
  mutable state : lock_state;
  mutable holders : holder list;  (* one writer, or >= 1 readers *)
  mutable waiting : waiter list;  (* FIFO; upgrades are inserted at the front *)
  page_nodes : int array;
  page_versions : int array;
  mutable copyset : int list;  (* ascending *)
}

type t = {
  entries : entry Oid.Table.t;
  (* family -> objects it is currently queued on. Usually a singleton (a
     family executes sequentially), but optimistic pre-acquisition can have a
     family waiting on several locks at once. *)
  mutable waiting_on : Oid.Set.t Txn_id.Map.t;
}

let create () = { entries = Oid.Table.create 128; waiting_on = Txn_id.Map.empty }

let waits_of t f =
  match Txn_id.Map.find_opt f t.waiting_on with Some s -> s | None -> Oid.Set.empty

let add_wait t f oid = t.waiting_on <- Txn_id.Map.add f (Oid.Set.add oid (waits_of t f)) t.waiting_on

let remove_wait t f oid =
  let s = Oid.Set.remove oid (waits_of t f) in
  t.waiting_on <-
    (if Oid.Set.is_empty s then Txn_id.Map.remove f t.waiting_on
     else Txn_id.Map.add f s t.waiting_on)

let register_object t oid ~pages ~initial_node =
  if Oid.Table.mem t.entries oid then
    invalid_arg (Format.asprintf "Directory.register_object: duplicate %a" Oid.pp oid);
  if pages <= 0 then invalid_arg "Directory.register_object: pages must be positive";
  Oid.Table.add t.entries oid
    {
      oid;
      state = Free;
      holders = [];
      waiting = [];
      page_nodes = Array.make pages initial_node;
      page_versions = Array.make pages 0;
      copyset = [ initial_node ];
    }

let get t oid =
  match Oid.Table.find_opt t.entries oid with
  | Some e -> e
  | None -> invalid_arg (Format.asprintf "Directory: unregistered object %a" Oid.pp oid)

let make_grant e mode =
  {
    g_oid = e.oid;
    g_mode = mode;
    g_page_nodes = Array.copy e.page_nodes;
    g_page_versions = Array.copy e.page_versions;
  }

let holds e family = List.exists (fun h -> Txn_id.equal h.family family) e.holders

(* Families that [family] would wait on if queued on [e] with [mode]. *)
let blockers e ~family ~upgrade:_ =
  List.filter_map
    (fun h -> if Txn_id.equal h.family family then None else Some h.family)
    e.holders

(* Does making [family] wait on [oid] close a cycle? Walk the dynamic
   waits-for graph: a waiting family points at the current holders of the
   object it waits on. *)
let would_deadlock t ~family ~on_oid =
  let visited = ref Txn_id.Set.empty in
  let rec reaches_requester f =
    if Txn_id.equal f family then true
    else if Txn_id.Set.mem f !visited then false
    else begin
      visited := Txn_id.Set.add f !visited;
      Oid.Set.exists
        (fun oid ->
          let e = get t oid in
          List.exists (fun h -> reaches_requester h.family) e.holders)
        (waits_of t f)
    end
  in
  let e = get t on_oid in
  let bs = blockers e ~family ~upgrade:false in
  let cycle = List.filter reaches_requester bs in
  if cycle = [] then None else Some (family :: cycle)

let enqueue t e w =
  if w.wt_upgrade then e.waiting <- w :: e.waiting else e.waiting <- e.waiting @ [ w ];
  add_wait t w.wt_family e.oid

let acquire t oid ~family ~node ~mode ?(block = true) () =
  let e = get t oid in
  let wait_or_busy ~upgrade =
    if not block then Busy
      (* Idempotence under retransmitted requests: a family already in the
         wait queue is told Queued again without a second entry (and without
         re-running the deadlock check — its wait is already recorded). *)
    else if List.exists (fun w -> Txn_id.equal w.wt_family family) e.waiting then Queued
    else
      match would_deadlock t ~family ~on_oid:oid with
      | Some cycle -> Deadlock cycle
      | None ->
          enqueue t e { wt_family = family; wt_node = node; wt_mode = mode; wt_upgrade = upgrade };
          Queued
  in
  let grant_fresh m =
    e.state <- (match m with Lock.Read -> Held_read | Lock.Write -> Held_write);
    e.holders <- e.holders @ [ { family; node } ];
    Granted (make_grant e m)
  in
  match e.state with
  | Free -> grant_fresh mode
  | Held_read when holds e family -> (
      match mode with
      | Lock.Read -> Granted (make_grant e Lock.Read)  (* re-entrant *)
      | Lock.Write ->
          (* Upgrade. Sole reader: grant. Otherwise wait at the front. *)
          if List.length e.holders = 1 then begin
            e.state <- Held_write;
            Granted (make_grant e Lock.Write)
          end
          else wait_or_busy ~upgrade:true)
  | Held_write when holds e family ->
      (* Re-entrant in either mode: Write subsumes Read. *)
      Granted (make_grant e Lock.Write)
  | Held_read when Lock.equal mode Lock.Read && e.waiting = [] ->
      (* Concurrent reading is OK — but do not overtake queued writers. *)
      e.holders <- e.holders @ [ { family; node } ];
      Granted (make_grant e Lock.Read)
  | Held_read | Held_write -> wait_or_busy ~upgrade:false

let apply_dirty e dirty =
  List.iter
    (fun (page, version, node) ->
      if page < 0 || page >= Array.length e.page_nodes then
        invalid_arg "Directory.release: dirty page out of range";
      if version > e.page_versions.(page) then begin
        e.page_versions.(page) <- version;
        e.page_nodes.(page) <- node
      end)
    dirty

(* After a release, hand the lock over per Algorithm 4.4: first a pending
   upgrade if its family is now the sole reader, then the FIFO prefix of
   compatible waiters (one writer, or a maximal batch of readers). *)
let promote t e =
  let deliveries = ref [] in
  let grant_to w mode =
    remove_wait t w.wt_family e.oid;
    (match mode with
    | Lock.Read ->
        e.state <- Held_read;
        if not (holds e w.wt_family) then
          e.holders <- e.holders @ [ { family = w.wt_family; node = w.wt_node } ]
    | Lock.Write ->
        e.state <- Held_write;
        if not (holds e w.wt_family) then
          e.holders <- e.holders @ [ { family = w.wt_family; node = w.wt_node } ]);
    deliveries :=
      { d_family = w.wt_family; d_node = w.wt_node; d_grant = make_grant e mode } :: !deliveries
  in
  let rec loop () =
    match e.waiting with
    | [] -> ()
    | w :: rest -> (
        match e.state with
        | Free ->
            e.waiting <- rest;
            grant_to w w.wt_mode;
            loop ()
        | Held_read
          when w.wt_upgrade
               && List.length e.holders = 1
               && holds e w.wt_family ->
            e.waiting <- rest;
            grant_to w Lock.Write
        | Held_read when Lock.equal w.wt_mode Lock.Read && not w.wt_upgrade ->
            e.waiting <- rest;
            grant_to w Lock.Read;
            loop ()
        | Held_read | Held_write -> ())
  in
  loop ();
  List.rev !deliveries

let release t oid ~family ~dirty =
  let e = get t oid in
  if not (holds e family) then []
  else begin
    apply_dirty e dirty;
    e.holders <- List.filter (fun h -> not (Txn_id.equal h.family family)) e.holders;
    if e.holders = [] then e.state <- Free;
    promote t e
  end

(* Crash recovery: drop every trace of the families [dead] judges dead —
   held locks, wait-queue entries and their waits-for edges — then promote,
   so queued survivors receive their deferred grants. Sorted by oid for a
   deterministic delivery order. *)
let evict_families t ~dead =
  let entries =
    Oid.Table.fold (fun _ e acc -> e :: acc) t.entries []
    |> List.sort (fun a b -> Oid.compare a.oid b.oid)
  in
  let evicted = ref Txn_id.Set.empty in
  let deliveries = ref [] in
  List.iter
    (fun e ->
      let note f = evicted := Txn_id.Set.add f !evicted in
      let doomed_holders = List.filter (fun h -> dead h.family) e.holders in
      let doomed_waiters = List.filter (fun w -> dead w.wt_family) e.waiting in
      if doomed_holders <> [] || doomed_waiters <> [] then begin
        List.iter (fun (h : holder) -> note h.family) doomed_holders;
        List.iter
          (fun w ->
            note w.wt_family;
            remove_wait t w.wt_family e.oid)
          doomed_waiters;
        e.holders <- List.filter (fun h -> not (dead h.family)) e.holders;
        e.waiting <- List.filter (fun w -> not (dead w.wt_family)) e.waiting;
        if e.holders = [] then e.state <- Free;
        deliveries := !deliveries @ promote t e
      end)
    entries;
  (Txn_id.Set.cardinal !evicted, !deliveries)

(* Crash recovery: repoint page-map entries naming [dead_node] at a
   surviving copy of the same committed version, found by [find_copy]
   (typically a scan of the live nodes' page stores). Entries with no
   surviving copy are left in place: the versions the map records are
   durable at their owner, so the rejoining node serves them again after
   restart. Returns the number of entries repointed. *)
let repoint_pages t ~dead_node ~find_copy =
  let entries =
    Oid.Table.fold (fun _ e acc -> e :: acc) t.entries []
    |> List.sort (fun a b -> Oid.compare a.oid b.oid)
  in
  let repointed = ref 0 in
  List.iter
    (fun e ->
      Array.iteri
        (fun page node ->
          if node = dead_node then
            match find_copy e.oid ~page ~version:e.page_versions.(page) with
            | Some live when live <> dead_node ->
                e.page_nodes.(page) <- live;
                incr repointed
            | Some _ | None -> ())
        e.page_nodes)
    entries;
  !repointed

let lock_state t oid = (get t oid).state
let holders t oid = (get t oid).holders

let read_count t oid =
  let e = get t oid in
  match e.state with Held_read -> List.length e.holders | _ -> 0

let waiting_count t oid = List.length (get t oid).waiting

let has_queued_writer t oid =
  List.exists
    (fun w -> w.wt_upgrade || Lock.equal w.wt_mode Lock.Write)
    (get t oid).waiting

let page_map t oid =
  let e = get t oid in
  (Array.copy e.page_nodes, Array.copy e.page_versions)

let note_cached t oid ~node =
  let e = get t oid in
  if not (List.mem node e.copyset) then e.copyset <- List.sort Int.compare (node :: e.copyset)

let copyset t oid = (get t oid).copyset

let object_count t = Oid.Table.length t.entries

(* Structural invariants every reachable directory state must satisfy;
   the split-brain auditor's per-object half. Returns human-readable
   violation descriptions, [] when clean. *)
let audit t =
  let entries =
    Oid.Table.fold (fun _ e acc -> e :: acc) t.entries []
    |> List.sort (fun a b -> Oid.compare a.oid b.oid)
  in
  List.concat_map
    (fun e ->
      let v = ref [] in
      let bad fmt = Format.kasprintf (fun s -> v := s :: !v) fmt in
      (match e.state with
      | Held_write ->
          if List.length e.holders <> 1 then
            bad "%a: Held_write with %d holders (exactly one exclusive holder required)"
              Oid.pp e.oid (List.length e.holders)
      | Held_read ->
          if e.holders = [] then bad "%a: Held_read with no holders" Oid.pp e.oid
      | Free -> if e.holders <> [] then bad "%a: Free but has holders" Oid.pp e.oid);
      let rec dup = function
        | [] -> ()
        | h :: rest ->
            if List.exists (fun h' -> Txn_id.equal h'.family h.family) rest then
              bad "%a: family %a holds twice" Oid.pp e.oid Txn_id.pp h.family;
            dup rest
      in
      dup e.holders;
      List.iter
        (fun w ->
          if not (Oid.Set.mem e.oid (waits_of t w.wt_family)) then
            bad "%a: waiter %a has no waits-for edge" Oid.pp e.oid Txn_id.pp w.wt_family)
        e.waiting;
      List.rev !v)
    entries

let dump ?partition_info t =
  let buf = Buffer.create 256 in
  let entries =
    Oid.Table.fold (fun _ e acc -> e :: acc) t.entries []
    |> List.sort (fun a b -> Oid.compare a.oid b.oid)
  in
  List.iter
    (fun e ->
      if e.state <> Free || e.waiting <> [] then begin
        let state =
          match e.state with Free -> "free" | Held_read -> "R" | Held_write -> "W"
        in
        let holders =
          String.concat ","
            (List.map
               (fun h -> Format.asprintf "%a@%d" Txn_id.pp h.family h.node)
               e.holders)
        in
        let waiters =
          String.concat ","
            (List.map
               (fun w ->
                 Format.asprintf "%a@%d:%a%s" Txn_id.pp w.wt_family w.wt_node Lock.pp w.wt_mode
                   (if w.wt_upgrade then "!" else ""))
               e.waiting)
        in
        let extra =
          match partition_info with
          | None -> ""
          | Some f -> " " ^ f e.oid
        in
        Buffer.add_string buf
          (Format.asprintf "%a: %s holders=[%s] waiting=[%s]%s\n" Oid.pp e.oid state holders
             waiters extra)
      end)
    entries;
  Buffer.contents buf

let waits_for_edges t =
  Txn_id.Map.fold
    (fun waiter oids acc ->
      Oid.Set.fold
        (fun oid acc ->
          let e = get t oid in
          List.fold_left
            (fun acc h ->
              if Txn_id.equal h.family waiter then acc else (waiter, h.family) :: acc)
            acc e.holders)
        oids acc)
    t.waiting_on []
