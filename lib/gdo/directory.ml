open Objmodel
open Txn

type lock_state = Free | Held_read | Held_write

type holder = { family : Txn_id.t; node : int }

type grant = {
  g_oid : Oid.t;
  g_mode : Lock.mode;
  g_page_nodes : int array;
  g_page_versions : int array;
}

type acquire_result = Granted of grant | Queued | Busy | Deadlock of Txn_id.t list

type delivery = { d_family : Txn_id.t; d_node : int; d_grant : grant }

type waiter = { wt_family : Txn_id.t; wt_node : int; wt_mode : Lock.mode; wt_upgrade : bool }

(* Escrow ledger of one object: the committed quantity, its invariant
   bounds, the outstanding (uncommitted) per-family delta reservations, and
   the per-node delegated quotas backing the zero-message local fast path.
   Locks and escrow exclude each other: a reservation is refused while a
   normal lock is held, and a normal acquire queues while foreign
   reservations or any delegated quota are outstanding. *)
type escrow_state = {
  mutable esc_value : int;
  esc_lower : int;
  esc_upper : int;
  (* (family, node, aggregated delta); each family appears at most once. *)
  mutable esc_res : (Txn_id.t * int * int) list;
  (* (node, remaining units), ascending by node; absent = 0. *)
  mutable esc_quota_up : (int * int) list;
  mutable esc_quota_down : (int * int) list;
  (* Bumped by begin_recall; a yield stamped with an older epoch is stale
     (the fencing mirrors lease recall). *)
  mutable esc_epoch : int;
}

type escrow_result = Escrow_admitted | Escrow_refused_bounds | Escrow_refused_locked

type entry = {
  oid : Oid.t;
  mutable state : lock_state;
  mutable holders : holder list;  (* one writer, or >= 1 readers *)
  mutable waiting : waiter list;  (* FIFO; upgrades are inserted at the front *)
  page_nodes : int array;
  page_versions : int array;
  mutable copyset : int list;  (* ascending *)
  mutable escrow : escrow_state option;
}

type t = {
  entries : entry Oid.Table.t;
  (* family -> objects it is currently queued on. Usually a singleton (a
     family executes sequentially), but optimistic pre-acquisition can have a
     family waiting on several locks at once. *)
  mutable waiting_on : Oid.Set.t Txn_id.Map.t;
}

let create () = { entries = Oid.Table.create 128; waiting_on = Txn_id.Map.empty }

let waits_of t f =
  match Txn_id.Map.find_opt f t.waiting_on with Some s -> s | None -> Oid.Set.empty

let add_wait t f oid = t.waiting_on <- Txn_id.Map.add f (Oid.Set.add oid (waits_of t f)) t.waiting_on

let remove_wait t f oid =
  let s = Oid.Set.remove oid (waits_of t f) in
  t.waiting_on <-
    (if Oid.Set.is_empty s then Txn_id.Map.remove f t.waiting_on
     else Txn_id.Map.add f s t.waiting_on)

let register_object t oid ~pages ~initial_node =
  if Oid.Table.mem t.entries oid then
    invalid_arg (Format.asprintf "Directory.register_object: duplicate %a" Oid.pp oid);
  if pages <= 0 then invalid_arg "Directory.register_object: pages must be positive";
  Oid.Table.add t.entries oid
    {
      oid;
      state = Free;
      holders = [];
      waiting = [];
      page_nodes = Array.make pages initial_node;
      page_versions = Array.make pages 0;
      copyset = [ initial_node ];
      escrow = None;
    }

let get t oid =
  match Oid.Table.find_opt t.entries oid with
  | Some e -> e
  | None -> invalid_arg (Format.asprintf "Directory: unregistered object %a" Oid.pp oid)

let make_grant e mode =
  {
    g_oid = e.oid;
    g_mode = mode;
    g_page_nodes = Array.copy e.page_nodes;
    g_page_versions = Array.copy e.page_versions;
  }

let holds e family = List.exists (fun h -> Txn_id.equal h.family family) e.holders

(* --- escrow worst-case accounting ------------------------------------- *)

let quota_sum q = List.fold_left (fun acc (_, u) -> acc + u) 0 q

(* Sum of every outstanding obligation that could still lower (raise) the
   committed quantity: uncommitted negative (positive) reservations plus
   delegated down- (up-) quota. worst_down <= 0 <= worst_up. *)
let esc_worst_down es =
  List.fold_left (fun acc (_, _, d) -> if d < 0 then acc + d else acc) 0 es.esc_res
  - quota_sum es.esc_quota_down

let esc_worst_up es =
  List.fold_left (fun acc (_, _, d) -> if d > 0 then acc + d else acc) 0 es.esc_res
  + quota_sum es.esc_quota_up

(* Headroom-form admission test (no overflow on an unbounded side). *)
let esc_admits es ~delta =
  if delta < 0 then es.esc_value + esc_worst_down es - es.esc_lower + delta >= 0
  else if delta > 0 then es.esc_upper - es.esc_value - esc_worst_up es - delta >= 0
  else true

(* Is a normal lock grant to [family] blocked by escrow state? Foreign
   reservations and any delegated quota must drain first (the runtime
   recalls quotas when a waiter queues); the family's own reservations do
   not block it — both commit together at its root commit. *)
let escrow_blocked e family =
  match e.escrow with
  | None -> false
  | Some es ->
      List.exists (fun (f, _, _) -> not (Txn_id.equal f family)) es.esc_res
      || List.exists (fun (_, u) -> u > 0) es.esc_quota_up
      || List.exists (fun (_, u) -> u > 0) es.esc_quota_down

(* Families that [family] would wait on if queued on [e] with [mode]:
   the current lock holders, plus — while the entry is escrow-blocked —
   the foreign escrow reservation families (a queued waiter cannot be
   promoted until they commit or abort, so they are real wait targets;
   a reservation family that itself waits on a lock elsewhere can close
   a cycle through them). Delegated quota has no family to point at; it
   is recalled actively, so a wait on quota always resolves. *)
let blockers e ~family ~upgrade:_ =
  let held =
    List.filter_map
      (fun h -> if Txn_id.equal h.family family then None else Some h.family)
      e.holders
  in
  let reserved =
    match e.escrow with
    | None -> []
    | Some es ->
        List.filter_map
          (fun (f, _, _) -> if Txn_id.equal f family then None else Some f)
          es.esc_res
  in
  held @ List.filter (fun f -> not (List.exists (Txn_id.equal f) held)) reserved

(* Does making [family] wait on [oid] close a cycle? Walk the dynamic
   waits-for graph: a waiting family points at the current holders — and
   escrow reservers — of the object it waits on. *)
let would_deadlock t ~family ~on_oid =
  let visited = ref Txn_id.Set.empty in
  let rec reaches_requester f =
    if Txn_id.equal f family then true
    else if Txn_id.Set.mem f !visited then false
    else begin
      visited := Txn_id.Set.add f !visited;
      Oid.Set.exists
        (fun oid ->
          let e = get t oid in
          List.exists reaches_requester (blockers e ~family:f ~upgrade:false))
        (waits_of t f)
    end
  in
  let e = get t on_oid in
  let bs = blockers e ~family ~upgrade:false in
  let cycle = List.filter reaches_requester bs in
  if cycle = [] then None else Some (family :: cycle)

let enqueue t e w =
  if w.wt_upgrade then e.waiting <- w :: e.waiting else e.waiting <- e.waiting @ [ w ];
  add_wait t w.wt_family e.oid

let acquire t oid ~family ~node ~mode ?(block = true) () =
  let e = get t oid in
  let wait_or_busy ~upgrade =
    if not block then Busy
      (* Idempotence under retransmitted requests: a family already in the
         wait queue is told Queued again without a second entry (and without
         re-running the deadlock check — its wait is already recorded). *)
    else if List.exists (fun w -> Txn_id.equal w.wt_family family) e.waiting then Queued
    else
      match would_deadlock t ~family ~on_oid:oid with
      | Some cycle -> Deadlock cycle
      | None ->
          enqueue t e { wt_family = family; wt_node = node; wt_mode = mode; wt_upgrade = upgrade };
          Queued
  in
  let grant_fresh m =
    e.state <- (match m with Lock.Read -> Held_read | Lock.Write -> Held_write);
    e.holders <- e.holders @ [ { family; node } ];
    Granted (make_grant e m)
  in
  match e.state with
  | Free when escrow_blocked e family ->
      (* Outstanding escrow work excludes a normal grant; queue behind it.
         Escrow families never wait (reservations are refused, not queued),
         so they can have no outgoing waits-for edge and no cycle can run
         through them — the deadlock check stays sound. *)
      wait_or_busy ~upgrade:false
  | Free -> grant_fresh mode
  | Held_read when holds e family -> (
      match mode with
      | Lock.Read -> Granted (make_grant e Lock.Read)  (* re-entrant *)
      | Lock.Write ->
          (* Upgrade. Sole reader: grant. Otherwise wait at the front. *)
          if List.length e.holders = 1 then begin
            e.state <- Held_write;
            Granted (make_grant e Lock.Write)
          end
          else wait_or_busy ~upgrade:true)
  | Held_write when holds e family ->
      (* Re-entrant in either mode: Write subsumes Read. *)
      Granted (make_grant e Lock.Write)
  | Held_read when Lock.equal mode Lock.Read && e.waiting = [] ->
      (* Concurrent reading is OK — but do not overtake queued writers. *)
      e.holders <- e.holders @ [ { family; node } ];
      Granted (make_grant e Lock.Read)
  | Held_read | Held_write -> wait_or_busy ~upgrade:false

let apply_dirty e dirty =
  List.iter
    (fun (page, version, node) ->
      if page < 0 || page >= Array.length e.page_nodes then
        invalid_arg "Directory.release: dirty page out of range";
      if version > e.page_versions.(page) then begin
        e.page_versions.(page) <- version;
        e.page_nodes.(page) <- node
      end)
    dirty

(* After a release, hand the lock over per Algorithm 4.4: first a pending
   upgrade if its family is now the sole reader, then the FIFO prefix of
   compatible waiters (one writer, or a maximal batch of readers). *)
let promote t e =
  let deliveries = ref [] in
  let grant_to w mode =
    remove_wait t w.wt_family e.oid;
    (match mode with
    | Lock.Read ->
        e.state <- Held_read;
        if not (holds e w.wt_family) then
          e.holders <- e.holders @ [ { family = w.wt_family; node = w.wt_node } ]
    | Lock.Write ->
        e.state <- Held_write;
        if not (holds e w.wt_family) then
          e.holders <- e.holders @ [ { family = w.wt_family; node = w.wt_node } ]);
    deliveries :=
      { d_family = w.wt_family; d_node = w.wt_node; d_grant = make_grant e mode } :: !deliveries
  in
  let rec loop () =
    match e.waiting with
    | [] -> ()
    | w :: rest -> (
        match e.state with
        | Free when escrow_blocked e w.wt_family ->
            (* Deferred until the escrow side drains (commit/abort of every
               foreign reservation, yield of every delegated quota). *)
            ()
        | Free ->
            e.waiting <- rest;
            grant_to w w.wt_mode;
            loop ()
        | Held_read
          when w.wt_upgrade
               && List.length e.holders = 1
               && holds e w.wt_family ->
            e.waiting <- rest;
            grant_to w Lock.Write
        | Held_read when Lock.equal w.wt_mode Lock.Read && not w.wt_upgrade ->
            e.waiting <- rest;
            grant_to w Lock.Read;
            loop ()
        | Held_read | Held_write -> ())
  in
  loop ();
  List.rev !deliveries

let release t oid ~family ~dirty =
  let e = get t oid in
  if not (holds e family) then []
  else begin
    apply_dirty e dirty;
    e.holders <- List.filter (fun h -> not (Txn_id.equal h.family family)) e.holders;
    if e.holders = [] then e.state <- Free;
    promote t e
  end

(* Crash recovery: drop every trace of the families [dead] judges dead —
   held locks, wait-queue entries and their waits-for edges — then promote,
   so queued survivors receive their deferred grants. Sorted by oid for a
   deterministic delivery order. *)
let evict_families t ~dead =
  let entries =
    Oid.Table.fold (fun _ e acc -> e :: acc) t.entries []
    |> List.sort (fun a b -> Oid.compare a.oid b.oid)
  in
  let evicted = ref Txn_id.Set.empty in
  let deliveries = ref [] in
  List.iter
    (fun e ->
      let note f = evicted := Txn_id.Set.add f !evicted in
      (* A dead family's escrow reservations are released un-committed, as
         its page writes are — the reserved delta was never published. *)
      (match e.escrow with
      | Some es when List.exists (fun (f, _, _) -> dead f) es.esc_res ->
          List.iter (fun (f, _, _) -> if dead f then note f) es.esc_res;
          es.esc_res <- List.filter (fun (f, _, _) -> not (dead f)) es.esc_res
      | Some _ | None -> ());
      let doomed_holders = List.filter (fun h -> dead h.family) e.holders in
      let doomed_waiters = List.filter (fun w -> dead w.wt_family) e.waiting in
      if doomed_holders <> [] || doomed_waiters <> [] then begin
        List.iter (fun (h : holder) -> note h.family) doomed_holders;
        List.iter
          (fun w ->
            note w.wt_family;
            remove_wait t w.wt_family e.oid)
          doomed_waiters;
        e.holders <- List.filter (fun h -> not (dead h.family)) e.holders;
        e.waiting <- List.filter (fun w -> not (dead w.wt_family)) e.waiting;
        if e.holders = [] then e.state <- Free;
        deliveries := !deliveries @ promote t e
      end)
    entries;
  (Txn_id.Set.cardinal !evicted, !deliveries)

(* Crash recovery: repoint page-map entries naming [dead_node] at a
   surviving copy of the same committed version, found by [find_copy]
   (typically a scan of the live nodes' page stores). Entries with no
   surviving copy are left in place: the versions the map records are
   durable at their owner, so the rejoining node serves them again after
   restart. Returns the number of entries repointed. *)
let repoint_pages t ~dead_node ~find_copy =
  let entries =
    Oid.Table.fold (fun _ e acc -> e :: acc) t.entries []
    |> List.sort (fun a b -> Oid.compare a.oid b.oid)
  in
  let repointed = ref 0 in
  List.iter
    (fun e ->
      Array.iteri
        (fun page node ->
          if node = dead_node then
            match find_copy e.oid ~page ~version:e.page_versions.(page) with
            | Some live when live <> dead_node ->
                e.page_nodes.(page) <- live;
                incr repointed
            | Some _ | None -> ())
        e.page_nodes)
    entries;
  !repointed

let lock_state t oid = (get t oid).state
let holders t oid = (get t oid).holders

let read_count t oid =
  let e = get t oid in
  match e.state with Held_read -> List.length e.holders | _ -> 0

let waiting_count t oid = List.length (get t oid).waiting

let has_queued_writer t oid =
  List.exists
    (fun w -> w.wt_upgrade || Lock.equal w.wt_mode Lock.Write)
    (get t oid).waiting

let page_map t oid =
  let e = get t oid in
  (Array.copy e.page_nodes, Array.copy e.page_versions)

let note_cached t oid ~node =
  let e = get t oid in
  if not (List.mem node e.copyset) then e.copyset <- List.sort Int.compare (node :: e.copyset)

let copyset t oid = (get t oid).copyset

let object_count t = Oid.Table.length t.entries

(* --- escrow API -------------------------------------------------------- *)

let register_escrow t oid ~lower ~upper ~initial =
  let e = get t oid in
  if e.escrow <> None then
    invalid_arg (Format.asprintf "Directory.register_escrow: duplicate %a" Oid.pp oid);
  if lower > upper || initial < lower || initial > upper then
    invalid_arg "Directory.register_escrow: initial must lie within [lower, upper]";
  e.escrow <-
    Some
      {
        esc_value = initial;
        esc_lower = lower;
        esc_upper = upper;
        esc_res = [];
        esc_quota_up = [];
        esc_quota_down = [];
        esc_epoch = 0;
      }

let esc_get t oid =
  match (get t oid).escrow with
  | Some es -> es
  | None -> invalid_arg (Format.asprintf "Directory: object %a has no escrow" Oid.pp oid)

let has_escrow t oid = (get t oid).escrow <> None
let escrow_value t oid = (esc_get t oid).esc_value
let escrow_epoch t oid = (esc_get t oid).esc_epoch

let escrow_reservations t oid =
  List.sort
    (fun (a, _, _) (b, _, _) -> Txn_id.compare a b)
    (esc_get t oid).esc_res

let escrow_quotas t oid =
  let es = esc_get t oid in
  let nodes =
    List.sort_uniq Int.compare (List.map fst es.esc_quota_up @ List.map fst es.esc_quota_down)
  in
  List.filter_map
    (fun n ->
      let up = Option.value ~default:0 (List.assoc_opt n es.esc_quota_up) in
      let down = Option.value ~default:0 (List.assoc_opt n es.esc_quota_down) in
      if up > 0 || down > 0 then Some (n, up, down) else None)
    nodes

let escrow_outstanding t oid =
  match (get t oid).escrow with
  | None -> false
  | Some es ->
      es.esc_res <> []
      || List.exists (fun (_, u) -> u > 0) es.esc_quota_up
      || List.exists (fun (_, u) -> u > 0) es.esc_quota_down

let escrow_reserve t oid ~family ~node ~delta =
  let e = get t oid in
  let es = esc_get t oid in
  (* Queued waiters also refuse: a stream of reservations must not starve
     a parked exclusive acquirer, and refusing keeps the waiters' recorded
     wait edges complete — no reservation family appears after the
     deadlock check that queued them ran (yield carry-over, the one
     exception, re-runs the check itself). *)
  if e.state <> Free || e.waiting <> [] then Escrow_refused_locked
  else if not (esc_admits es ~delta) then Escrow_refused_bounds
  else begin
    (match List.find_opt (fun (f, _, _) -> Txn_id.equal f family) es.esc_res with
    | Some (_, n, d) ->
        es.esc_res <-
          (family, n, d + delta)
          :: List.filter (fun (f, _, _) -> not (Txn_id.equal f family)) es.esc_res
    | None -> es.esc_res <- (family, node, delta) :: es.esc_res);
    Escrow_admitted
  end

let esc_drop_res es family =
  match List.find_opt (fun (f, _, _) -> Txn_id.equal f family) es.esc_res with
  | None -> None
  | Some (_, _, d) ->
      es.esc_res <- List.filter (fun (f, _, _) -> not (Txn_id.equal f family)) es.esc_res;
      Some d

let escrow_commit t oid ~family =
  let e = get t oid in
  let es = esc_get t oid in
  (match esc_drop_res es family with
  | Some d -> es.esc_value <- es.esc_value + d
  | None -> ());
  promote t e

let escrow_abort t oid ~family =
  let e = get t oid in
  let es = esc_get t oid in
  ignore (esc_drop_res es family : int option);
  promote t e

let quota_add q node units =
  let cur = Option.value ~default:0 (List.assoc_opt node q) in
  (node, cur + units) :: List.remove_assoc node q |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let quota_take q node units =
  let cur = Option.value ~default:0 (List.assoc_opt node q) in
  if units > cur then
    invalid_arg "Directory: escrow quota underflow (node returned more than delegated)";
  let rest = List.remove_assoc node q in
  if cur - units = 0 then rest
  else (node, cur - units) :: rest |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let escrow_delegate t oid ~node ~up ~down =
  let e = get t oid in
  let es = esc_get t oid in
  if e.state <> Free || up < 0 || down < 0 then (0, 0)
  else begin
    (* Clamp each side to the worst-case headroom left after every
       outstanding obligation; delegated units become part of that worst
       case, so the invariant holds even if the node spends them all. *)
    let up_avail = max 0 (es.esc_upper - es.esc_value - esc_worst_up es) in
    let down_avail = max 0 (es.esc_value + esc_worst_down es - es.esc_lower) in
    let gu = min up up_avail and gd = min down down_avail in
    if gu > 0 then es.esc_quota_up <- quota_add es.esc_quota_up node gu;
    if gd > 0 then es.esc_quota_down <- quota_add es.esc_quota_down node gd;
    (gu, gd)
  end

let escrow_reconcile t oid ~node ~delta ~used_up ~used_down =
  let es = esc_get t oid in
  if used_up < 0 || used_down < 0 || delta <> used_up - used_down then
    invalid_arg "Directory.escrow_reconcile: delta must equal used_up - used_down";
  es.esc_quota_up <- quota_take es.esc_quota_up node used_up;
  es.esc_quota_down <- quota_take es.esc_quota_down node used_down;
  es.esc_value <- es.esc_value + delta

let escrow_begin_recall t oid =
  let es = esc_get t oid in
  es.esc_epoch <- es.esc_epoch + 1;
  es.esc_epoch

let escrow_yield t oid ~node ~epoch ~delta ~used_up ~used_down ~carried =
  let e = get t oid in
  let es = esc_get t oid in
  if epoch < es.esc_epoch then ([], [])
  else begin
    escrow_reconcile t oid ~node ~delta ~used_up ~used_down;
    (* Surrendering zeroes whatever quota remains after the final
       reconcile — the node keeps nothing across a recall. *)
    es.esc_quota_up <- List.remove_assoc node es.esc_quota_up;
    es.esc_quota_down <- List.remove_assoc node es.esc_quota_down;
    (* Re-book the units still held by the node's uncommitted families as
       home reservations. Admission is guaranteed: the units were part of
       the just-surrendered quota, so worst-case headroom only improved.
       The carried families are new wait targets the queued waiters never
       saw — re-run the deadlock check for each waiter and evict those
       whose wait now closes a cycle (the runtime delivers them the usual
       deadlock refusal). *)
    List.iter
      (fun (f, d) ->
        match List.find_opt (fun (f', _, _) -> Txn_id.equal f' f) es.esc_res with
        | Some (_, n, d0) ->
            es.esc_res <-
              (f, n, d0 + d) :: List.filter (fun (f', _, _) -> not (Txn_id.equal f' f)) es.esc_res
        | None -> es.esc_res <- (f, node, d) :: es.esc_res)
      carried;
    let victims =
      if carried = [] then []
      else
        List.filter
          (fun w ->
            match would_deadlock t ~family:w.wt_family ~on_oid:oid with
            | Some _ -> true
            | None -> false)
          e.waiting
    in
    List.iter
      (fun w ->
        e.waiting <- List.filter (fun w' -> not (Txn_id.equal w'.wt_family w.wt_family)) e.waiting;
        remove_wait t w.wt_family e.oid)
      victims;
    (promote t e, List.map (fun w -> (w.wt_family, w.wt_node)) victims)
  end

(* Structural invariants every reachable directory state must satisfy;
   the split-brain auditor's per-object half. Returns human-readable
   violation descriptions, [] when clean. *)
let audit t =
  let entries =
    Oid.Table.fold (fun _ e acc -> e :: acc) t.entries []
    |> List.sort (fun a b -> Oid.compare a.oid b.oid)
  in
  List.concat_map
    (fun e ->
      let v = ref [] in
      let bad fmt = Format.kasprintf (fun s -> v := s :: !v) fmt in
      (match e.state with
      | Held_write ->
          if List.length e.holders <> 1 then
            bad "%a: Held_write with %d holders (exactly one exclusive holder required)"
              Oid.pp e.oid (List.length e.holders)
      | Held_read ->
          if e.holders = [] then bad "%a: Held_read with no holders" Oid.pp e.oid
      | Free -> if e.holders <> [] then bad "%a: Free but has holders" Oid.pp e.oid);
      let rec dup = function
        | [] -> ()
        | h :: rest ->
            if List.exists (fun h' -> Txn_id.equal h'.family h.family) rest then
              bad "%a: family %a holds twice" Oid.pp e.oid Txn_id.pp h.family;
            dup rest
      in
      dup e.holders;
      List.iter
        (fun w ->
          if not (Oid.Set.mem e.oid (waits_of t w.wt_family)) then
            bad "%a: waiter %a has no waits-for edge" Oid.pp e.oid Txn_id.pp w.wt_family)
        e.waiting;
      (match e.escrow with
      | None -> ()
      | Some es ->
          if es.esc_value < es.esc_lower || es.esc_value > es.esc_upper then
            bad "%a: escrow value %d outside [%d, %d]" Oid.pp e.oid es.esc_value es.esc_lower
              es.esc_upper;
          if es.esc_value + esc_worst_down es < es.esc_lower then
            bad "%a: escrow worst-case low breaches the floor" Oid.pp e.oid;
          if es.esc_upper - es.esc_value - esc_worst_up es < 0 then
            bad "%a: escrow worst-case high breaches the ceiling" Oid.pp e.oid;
          List.iter
            (fun (n, u) -> if u < 0 then bad "%a: negative up-quota at node %d" Oid.pp e.oid n)
            es.esc_quota_up;
          List.iter
            (fun (n, u) ->
              if u < 0 then bad "%a: negative down-quota at node %d" Oid.pp e.oid n)
            es.esc_quota_down;
          let rec dup_res = function
            | [] -> ()
            | (f, _, _) :: rest ->
                if List.exists (fun (f', _, _) -> Txn_id.equal f' f) rest then
                  bad "%a: family %a reserves twice" Oid.pp e.oid Txn_id.pp f;
                dup_res rest
          in
          dup_res es.esc_res;
          if
            e.state <> Free
            && List.exists
                 (fun (f, _, _) -> not (List.exists (fun h -> Txn_id.equal h.family f) e.holders))
                 es.esc_res
          then bad "%a: locked with foreign escrow reservations outstanding" Oid.pp e.oid);
      List.rev !v)
    entries

let dump ?partition_info t =
  let buf = Buffer.create 256 in
  let entries =
    Oid.Table.fold (fun _ e acc -> e :: acc) t.entries []
    |> List.sort (fun a b -> Oid.compare a.oid b.oid)
  in
  let esc_active e =
    match e.escrow with
    | None -> false
    | Some es -> es.esc_res <> [] || es.esc_quota_up <> [] || es.esc_quota_down <> []
  in
  List.iter
    (fun e ->
      if e.state <> Free || e.waiting <> [] || esc_active e then begin
        let state =
          match e.state with Free -> "free" | Held_read -> "R" | Held_write -> "W"
        in
        let holders =
          String.concat ","
            (List.map
               (fun h -> Format.asprintf "%a@%d" Txn_id.pp h.family h.node)
               e.holders)
        in
        let waiters =
          String.concat ","
            (List.map
               (fun w ->
                 Format.asprintf "%a@%d:%a%s" Txn_id.pp w.wt_family w.wt_node Lock.pp w.wt_mode
                   (if w.wt_upgrade then "!" else ""))
               e.waiting)
        in
        let extra =
          match partition_info with
          | None -> ""
          | Some f -> " " ^ f e.oid
        in
        let escrow =
          match e.escrow with
          | Some es when esc_active e ->
              let res =
                String.concat ","
                  (List.map
                     (fun (f, n, d) -> Format.asprintf "%a@%d:%+d" Txn_id.pp f n d)
                     (List.sort (fun (a, _, _) (b, _, _) -> Txn_id.compare a b) es.esc_res))
              in
              let quotas =
                String.concat ","
                  (List.map
                     (fun (n, up, down) -> Printf.sprintf "n%d:+%d/-%d" n up down)
                     (escrow_quotas t e.oid))
              in
              Printf.sprintf " escrow{v=%d res=[%s] quota=[%s] epoch=%d}" es.esc_value res
                quotas es.esc_epoch
          | Some _ | None -> ""
        in
        Buffer.add_string buf
          (Format.asprintf "%a: %s holders=[%s] waiting=[%s]%s%s\n" Oid.pp e.oid state holders
             waiters escrow extra)
      end)
    entries;
  Buffer.contents buf

let waits_for_edges t =
  Txn_id.Map.fold
    (fun waiter oids acc ->
      Oid.Set.fold
        (fun oid acc ->
          let e = get t oid in
          List.fold_left
            (fun acc h ->
              if Txn_id.equal h.family waiter then acc else (waiter, h.family) :: acc)
            acc e.holders)
        oids acc)
    t.waiting_on []
