(** Object identifiers.

    Objects are the unit of locking and consistency maintenance in LOTEC.
    Identifiers are dense non-negative integers assigned by the catalog. *)

type t = private int

val of_int : int -> t
(** @raise Invalid_argument on negative input. *)

val to_int : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
(** Prints in the paper's style: [O7]. *)

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
module Table : Hashtbl.S with type key = t
