type slot = int

type stmt =
  | Read of Attribute.id
  | Write of Attribute.id
  | Invoke of { slot : slot; meth : string }
  | If of { prob_then : float; then_ : stmt list; else_ : stmt list }
  | Loop of { count : int; body : stmt list }

type commutativity = Non_commuting | Increment | Decrement | Insert

type t = { name : string; body : stmt list; commutativity : commutativity }

let make ~name ~body = { name; body; commutativity = Non_commuting }
let make_commuting ~name ~commutativity ~body = { name; body; commutativity }

let commutes t = t.commutativity <> Non_commuting

let escrow_delta t =
  match t.commutativity with
  | Non_commuting -> 0
  | Increment | Insert -> 1
  | Decrement -> -1

let pp_commutativity fmt = function
  | Non_commuting -> Format.pp_print_string fmt "non-commuting"
  | Increment -> Format.pp_print_string fmt "increment"
  | Decrement -> Format.pp_print_string fmt "decrement"
  | Insert -> Format.pp_print_string fmt "insert"

let rec max_slot_block body =
  List.fold_left
    (fun acc stmt ->
      match stmt with
      | Read _ | Write _ -> acc
      | Invoke { slot; _ } -> max acc slot
      | If { then_; else_; _ } -> max acc (max (max_slot_block then_) (max_slot_block else_))
      | Loop { body; _ } -> max acc (max_slot_block body))
    (-1) body

let max_slot t = max_slot_block t.body

let rec count_block body =
  List.fold_left
    (fun acc stmt ->
      match stmt with
      | Read _ | Write _ | Invoke _ -> acc + 1
      | If { then_; else_; _ } -> acc + 1 + count_block then_ + count_block else_
      | Loop { body; _ } -> acc + 1 + count_block body)
    0 body

let statement_count t = count_block t.body

type 'a handler = {
  on_read : Attribute.id -> unit;
  on_write : Attribute.id -> unit;
  on_invoke : slot -> string -> unit;
  choose : float -> bool;
}

let interp t h =
  let rec exec_block body = List.iter exec body
  and exec = function
    | Read a -> h.on_read a
    | Write a -> h.on_write a
    | Invoke { slot; meth } -> h.on_invoke slot meth
    | If { prob_then; then_; else_ } ->
        if h.choose prob_then then exec_block then_ else exec_block else_
    | Loop { count; body } ->
        for _ = 1 to count do
          exec_block body
        done
  in
  exec_block t.body

let rec pp_block fmt body =
  List.iter
    (fun stmt ->
      match stmt with
      | Read a -> Format.fprintf fmt "read a%d; " a
      | Write a -> Format.fprintf fmt "write a%d; " a
      | Invoke { slot; meth } -> Format.fprintf fmt "invoke s%d.%s; " slot meth
      | If { prob_then; then_; else_ } ->
          Format.fprintf fmt "if(%.2f){ %a} else { %a}; " prob_then pp_block then_ pp_block else_
      | Loop { count; body } -> Format.fprintf fmt "loop(%d){ %a}; " count pp_block body)
    body

let pp fmt t =
  match t.commutativity with
  | Non_commuting -> Format.fprintf fmt "method %s { %a}" t.name pp_block t.body
  | c -> Format.fprintf fmt "method %s [%a] { %a}" t.name pp_commutativity c pp_block t.body
