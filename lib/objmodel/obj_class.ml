type compiled_method = {
  ir : Method_ir.t;
  summary : Access_analysis.summary;
  page_summary : Access_analysis.page_summary;
  cpu_statements : int;
}

type t = {
  name : string;
  attrs : Attribute.t array;
  ref_slots : int;
  method_irs : Method_ir.t list;
  compiled : compiled option;
}

and compiled = { layout : Layout.t; table : (string, compiled_method) Hashtbl.t }

let define ~name ~attrs ~methods ~ref_slots =
  if ref_slots < 0 then invalid_arg "Obj_class.define: negative ref_slots";
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (m : Method_ir.t) ->
      if Hashtbl.mem seen m.Method_ir.name then
        invalid_arg (Printf.sprintf "Obj_class.define: duplicate method %s" m.Method_ir.name);
      Hashtbl.add seen m.Method_ir.name ();
      if Method_ir.max_slot m >= ref_slots then
        invalid_arg
          (Printf.sprintf "Obj_class.define: method %s uses slot beyond ref_slots"
             m.Method_ir.name);
      let check_attr a =
        if a < 0 || a >= Array.length attrs then
          invalid_arg
            (Printf.sprintf "Obj_class.define: method %s references attribute %d out of range"
               m.Method_ir.name a)
      in
      let summary = Access_analysis.analyse m in
      List.iter check_attr summary.Access_analysis.read_attrs;
      if Method_ir.commutes m then begin
        (* Escrow-classed methods must be self-contained updates: the escrow
           protocol replaces their page locks with a delta reservation on one
           object, so a nested Invoke (a sub-transaction on another object)
           or a read-only body would escape that model. *)
        if summary.Access_analysis.invoked <> [] then
          invalid_arg
            (Printf.sprintf "Obj_class.define: commutative method %s contains Invoke"
               m.Method_ir.name);
        if not summary.Access_analysis.updates then
          invalid_arg
            (Printf.sprintf "Obj_class.define: commutative method %s never writes"
               m.Method_ir.name)
      end)
    methods;
  { name; attrs; ref_slots; method_irs = methods; compiled = None }

let compile ~page_size t =
  let layout = Layout.create ~page_size t.attrs in
  let table = Hashtbl.create 8 in
  List.iter
    (fun ir ->
      let summary = Access_analysis.analyse ir in
      let page_summary = Access_analysis.pages layout summary in
      Hashtbl.replace table ir.Method_ir.name
        { ir; summary; page_summary; cpu_statements = Method_ir.statement_count ir })
    t.method_irs;
  { t with compiled = Some { layout; table } }

let name t = t.name
let attrs t = t.attrs
let ref_slots t = t.ref_slots

let compiled_exn t =
  match t.compiled with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "Obj_class: class %s not compiled" t.name)

let layout t = (compiled_exn t).layout
let page_count t = Layout.page_count (layout t)

let find_method t m_name =
  let c = compiled_exn t in
  match Hashtbl.find_opt c.table m_name with
  | Some m -> m
  | None -> raise Not_found

let methods t =
  let c = compiled_exn t in
  Hashtbl.fold (fun _ m acc -> m :: acc) c.table []
  |> List.sort (fun a b -> compare a.ir.Method_ir.name b.ir.Method_ir.name)

let method_names t = List.map (fun m -> m.ir.Method_ir.name) (methods t)

let pp fmt t =
  Format.fprintf fmt "class %s (%d attrs, %d slots, %d methods)" t.name (Array.length t.attrs)
    t.ref_slots (List.length t.method_irs)
