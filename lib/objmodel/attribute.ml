type id = int

type t = { name : string; size_bytes : int }

let make ~name ~size_bytes =
  if size_bytes <= 0 then invalid_arg "Attribute.make: size must be positive";
  { name; size_bytes }

let pp fmt t = Format.fprintf fmt "%s:%dB" t.name t.size_bytes
