(** Conservative attribute-access analysis — "the compiler".

    LOTEC's page-transfer optimisation rests on the compiler predicting, for
    each method, which attributes the method *may* read or write. The
    prediction must be conservative: whatever control path execution takes,
    every attribute actually accessed must appear in the predicted set
    (predicted ⊇ actual). We compute this by unioning accesses over both
    branches of every [If] and treating loop bodies as executing at least
    once in the summary.

    The result is a per-method summary in both attribute terms and, given a
    layout, page terms — the latter is what the LOTEC protocol consumes. *)

type summary = {
  read_attrs : Attribute.id list;  (** ascending, deduped; includes writes *)
  write_attrs : Attribute.id list;  (** ascending, deduped *)
  invoked : (Method_ir.slot * string) list;
      (** reference slots (with method names) the method may invoke on —
          drives the optional prefetch extension *)
  updates : bool;  (** true iff [write_attrs] is non-empty: lock mode W *)
}

val analyse : Method_ir.t -> summary

type page_summary = {
  access_pages : int list;  (** pages any predicted access (R or W) touches *)
  write_pages : int list;  (** pages predicted writes touch *)
}

val pages : Layout.t -> summary -> page_summary

val pp_summary : Format.formatter -> summary -> unit
