type t = {
  page_size : int;
  offsets : int array;  (* byte offset of each attribute *)
  sizes : int array;
  total_bytes : int;
}

let create ~page_size attrs =
  if page_size <= 0 then invalid_arg "Layout.create: page_size must be positive";
  let n = Array.length attrs in
  let offsets = Array.make n 0 in
  let sizes = Array.make n 0 in
  let cursor = ref 0 in
  for i = 0 to n - 1 do
    offsets.(i) <- !cursor;
    sizes.(i) <- attrs.(i).Attribute.size_bytes;
    cursor := !cursor + attrs.(i).Attribute.size_bytes
  done;
  { page_size; offsets; sizes; total_bytes = !cursor }

let page_size t = t.page_size

let page_count t =
  if t.total_bytes = 0 then 1 else (t.total_bytes + t.page_size - 1) / t.page_size

let total_bytes t = t.total_bytes

let check_attr t a =
  if a < 0 || a >= Array.length t.offsets then invalid_arg "Layout: attribute id out of range"

let offset t a =
  check_attr t a;
  t.offsets.(a)

let pages_of_attr t a =
  check_attr t a;
  let first = t.offsets.(a) / t.page_size in
  let last = (t.offsets.(a) + t.sizes.(a) - 1) / t.page_size in
  List.init (last - first + 1) (fun i -> first + i)

let pages_of_attrs t attrs =
  let module IS = Set.Make (Int) in
  let set =
    List.fold_left (fun acc a -> List.fold_left (fun s p -> IS.add p s) acc (pages_of_attr t a))
      IS.empty attrs
  in
  IS.elements set

let attr_count t = Array.length t.offsets

let pp fmt t =
  Format.fprintf fmt "layout: %d attrs, %d bytes, %d pages of %dB" (attr_count t) t.total_bytes
    (page_count t) t.page_size
