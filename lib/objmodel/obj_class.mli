(** Class definitions and their compiled form.

    A class bundles attributes and methods. "Compiling" a class fixes the
    attribute layout for a page size and precomputes, per method, the
    conservative access summary in page terms plus the lock-acquisition and
    lock-release bracketing the paper's compiler inserts (represented here by
    the runtime consulting these summaries at method entry/exit). *)

type t

type compiled_method = {
  ir : Method_ir.t;
  summary : Access_analysis.summary;
  page_summary : Access_analysis.page_summary;
  cpu_statements : int;  (** statement count, used as execution cost *)
}

val define :
  name:string -> attrs:Attribute.t array -> methods:Method_ir.t list -> ref_slots:int -> t
(** Declare a class. [ref_slots] is the number of outgoing reference slots
    instances carry; every [Invoke] in every method must use a slot below it.
    Methods declared with a non-trivial {!Method_ir.commutativity} must be
    self-contained updates: a body that writes and contains no [Invoke].
    @raise Invalid_argument on duplicate method names, an [Invoke] slot out
    of range, or a commutative method that is read-only or nests an
    [Invoke]. *)

val compile : page_size:int -> t -> t
(** Fix the layout and compute method summaries. Idempotent. *)

val name : t -> string
val attrs : t -> Attribute.t array
val ref_slots : t -> int

val layout : t -> Layout.t
(** @raise Invalid_argument if the class has not been compiled. *)

val page_count : t -> int
(** Pages an instance spans. @raise Invalid_argument if not compiled. *)

val find_method : t -> string -> compiled_method
(** @raise Not_found if the method does not exist.
    @raise Invalid_argument if the class has not been compiled. *)

val methods : t -> compiled_method list
val method_names : t -> string list

val pp : Format.formatter -> t -> unit
