module IS = Set.Make (Int)

module SlotMeth = Set.Make (struct
  type t = int * string

  let compare = compare
end)

type summary = {
  read_attrs : Attribute.id list;
  write_attrs : Attribute.id list;
  invoked : (Method_ir.slot * string) list;
  updates : bool;
}

type acc = { reads : IS.t; writes : IS.t; invoked : SlotMeth.t }

let empty_acc = { reads = IS.empty; writes = IS.empty; invoked = SlotMeth.empty }

let rec analyse_block acc body = List.fold_left analyse_stmt acc body

and analyse_stmt acc = function
  | Method_ir.Read a -> { acc with reads = IS.add a acc.reads }
  | Method_ir.Write a -> { acc with reads = IS.add a acc.reads; writes = IS.add a acc.writes }
  | Method_ir.Invoke { slot; meth } ->
      { acc with invoked = SlotMeth.add (slot, meth) acc.invoked }
  | Method_ir.If { then_; else_; _ } ->
      (* Either side may execute: union both. *)
      analyse_block (analyse_block acc then_) else_
  | Method_ir.Loop { body; _ } ->
      (* Accesses are idempotent for set purposes: one pass suffices. *)
      analyse_block acc body

let analyse (m : Method_ir.t) =
  let acc = analyse_block empty_acc m.body in
  {
    read_attrs = IS.elements acc.reads;
    write_attrs = IS.elements acc.writes;
    invoked = SlotMeth.elements acc.invoked;
    updates = not (IS.is_empty acc.writes);
  }

type page_summary = { access_pages : int list; write_pages : int list }

let pages layout s =
  {
    access_pages = Layout.pages_of_attrs layout s.read_attrs;
    write_pages = Layout.pages_of_attrs layout s.write_attrs;
  }

let pp_summary fmt s =
  let pp_ints fmt l =
    Format.fprintf fmt "[%s]" (String.concat ";" (List.map string_of_int l))
  in
  Format.fprintf fmt "reads=%a writes=%a updates=%b" pp_ints s.read_attrs pp_ints s.write_attrs
    s.updates
