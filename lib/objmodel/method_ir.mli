(** A tiny method-body intermediate representation.

    The paper's compiler performs conservative attribute-access analysis over
    real method code; we model method bodies in an IR that exhibits exactly
    the features that make the analysis conservative — data-dependent control
    flow ([If]) and repetition ([Loop]) — plus the nested-transaction source
    of structure: [Invoke], a method call on another object, which at run
    time becomes a sub-transaction.

    Invocation targets are *reference slots*: a class declares how many
    outgoing references its instances carry, and each object instance binds
    its slots to concrete object identifiers. This keeps method bodies
    shareable between instances (as compiled code is) while letting the
    run-time object graph decide which object a sub-transaction touches. *)

type slot = int
(** Index into an instance's reference-slot array. *)

type stmt =
  | Read of Attribute.id
  | Write of Attribute.id
  | Invoke of { slot : slot; meth : string }
      (** Method call on the object bound to [slot] — a sub-transaction. *)
  | If of { prob_then : float; then_ : stmt list; else_ : stmt list }
      (** Data-dependent branch. The analysis must assume either side may
          run; at execution time the branch is chosen with probability
          [prob_then] from the transaction's random stream (standing in for
          runtime data values the compiler cannot see). *)
  | Loop of { count : int; body : stmt list }
      (** Definite iteration: the body's accesses repeat [count] times. *)

type t = {
  name : string;
  body : stmt list;
}

val make : name:string -> body:stmt list -> t

val max_slot : t -> int
(** Largest reference slot mentioned anywhere in the body, or [-1] if none.
    Used to validate instances against classes. *)

val statement_count : t -> int
(** Total statements, counting nested blocks (loop bodies once) — used as the
    method's CPU-cost measure. *)

(** Callbacks consumed by {!interp}. *)
type 'a handler = {
  on_read : Attribute.id -> unit;
  on_write : Attribute.id -> unit;
  on_invoke : slot -> string -> unit;
  choose : float -> bool;  (** branch oracle: [choose p] is the If outcome *)
}

val interp : t -> 'a handler -> unit
(** Execute the body sequentially, resolving [If] with [choose] and calling
    the callbacks in program order. [Invoke] is delegated entirely to
    [on_invoke] (which, in the runtime, starts the sub-transaction and blocks
    until it finishes). *)

val pp : Format.formatter -> t -> unit
