(** A tiny method-body intermediate representation.

    The paper's compiler performs conservative attribute-access analysis over
    real method code; we model method bodies in an IR that exhibits exactly
    the features that make the analysis conservative — data-dependent control
    flow ([If]) and repetition ([Loop]) — plus the nested-transaction source
    of structure: [Invoke], a method call on another object, which at run
    time becomes a sub-transaction.

    Invocation targets are *reference slots*: a class declares how many
    outgoing references its instances carry, and each object instance binds
    its slots to concrete object identifiers. This keeps method bodies
    shareable between instances (as compiled code is) while letting the
    run-time object graph decide which object a sub-transaction touches. *)

type slot = int
(** Index into an instance's reference-slot array. *)

type stmt =
  | Read of Attribute.id
  | Write of Attribute.id
  | Invoke of { slot : slot; meth : string }
      (** Method call on the object bound to [slot] — a sub-transaction. *)
  | If of { prob_then : float; then_ : stmt list; else_ : stmt list }
      (** Data-dependent branch. The analysis must assume either side may
          run; at execution time the branch is chosen with probability
          [prob_then] from the transaction's random stream (standing in for
          runtime data values the compiler cannot see). *)
  | Loop of { count : int; body : stmt list }
      (** Definite iteration: the body's accesses repeat [count] times. *)

type commutativity =
  | Non_commuting  (** default: the method needs ordinary exclusive/shared locks *)
  | Increment  (** adds to a counter-like object; commutes with other escrow ops *)
  | Decrement  (** subtracts from a counter-like object; commutes likewise *)
  | Insert
      (** adds an element to a set/bag-like object — modelled as a +1 on the
          object's element count, so it commutes the same way [Increment] does *)
(** Declared commutativity class of a method. Two invocations on the same
    object commute when both are escrow-classed ([Increment]/[Decrement]/
    [Insert]): the final state is independent of their order, so the escrow
    protocol may run them concurrently under delta reservations instead of
    serializing them on an exclusive lock. The declaration is trusted the way
    the paper trusts its compiler analysis — {!Obj_class.define} only checks
    the structural requirements (an updating body, no nested [Invoke]). *)

type t = {
  name : string;
  body : stmt list;
  commutativity : commutativity;
}

val make : name:string -> body:stmt list -> t
(** A [Non_commuting] method. *)

val make_commuting : name:string -> commutativity:commutativity -> body:stmt list -> t
(** A method with a declared commutativity class; see {!Obj_class.define}
    for the structural requirements it must then meet. *)

val commutes : t -> bool
(** [commutes m] is true iff [m]'s class is not [Non_commuting]. *)

val escrow_delta : t -> int
(** Signed unit delta the method applies to its object's escrowed quantity:
    [+1] for [Increment]/[Insert], [-1] for [Decrement], [0] otherwise. *)

val pp_commutativity : Format.formatter -> commutativity -> unit

val max_slot : t -> int
(** Largest reference slot mentioned anywhere in the body, or [-1] if none.
    Used to validate instances against classes. *)

val statement_count : t -> int
(** Total statements, counting nested blocks (loop bodies once) — used as the
    method's CPU-cost measure. *)

(** Callbacks consumed by {!interp}. *)
type 'a handler = {
  on_read : Attribute.id -> unit;
  on_write : Attribute.id -> unit;
  on_invoke : slot -> string -> unit;
  choose : float -> bool;  (** branch oracle: [choose p] is the If outcome *)
}

val interp : t -> 'a handler -> unit
(** Execute the body sequentially, resolving [If] with [choose] and calling
    the callbacks in program order. [Invoke] is delegated entirely to
    [on_invoke] (which, in the runtime, starts the sub-transaction and blocks
    until it finishes). *)

val pp : Format.formatter -> t -> unit
