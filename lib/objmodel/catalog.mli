(** The catalog of object instances — the static shape of the shared store.

    Each instance names its class and binds the class's reference slots to
    concrete objects. The paper precludes mutually recursive inter-object
    invocations; we enforce this statically by requiring the reference graph
    to be acyclic ({!validate_acyclic}), which guarantees no invocation chain
    can revisit an object. *)

type instance = {
  oid : Oid.t;
  cls : Obj_class.t;  (** must be compiled *)
  refs : Oid.t array;  (** slot bindings; length = class [ref_slots] *)
}

type t

val create : instance list -> t
(** @raise Invalid_argument on duplicate oids, wrong [refs] length, a
    reference to an unknown object, or an uncompiled class. *)

val find : t -> Oid.t -> instance
(** @raise Not_found *)

val size : t -> int
val oids : t -> Oid.t list
(** Ascending. *)

val page_count : t -> Oid.t -> int
(** Pages object [oid] spans. *)

val layout : t -> Oid.t -> Layout.t

val find_method : t -> Oid.t -> string -> Obj_class.compiled_method
(** Compiled method of the object's class. @raise Not_found *)

val resolve_slot : t -> Oid.t -> Method_ir.slot -> Oid.t
(** Object bound to the reference slot. *)

val validate_acyclic : t -> (unit, Oid.t list) result
(** [Ok ()] if the reference graph is a DAG; [Error cycle] gives one cycle
    (as a list of oids) otherwise. *)

val max_invocation_depth : t -> int
(** Longest reference-graph path + 1: an upper bound on transaction-tree
    depth. Only meaningful on acyclic catalogs; raises [Invalid_argument] on
    cyclic ones. *)

val total_pages : t -> int
