(** Object attributes (instance variables).

    An attribute is identified inside its class by its index in the class's
    attribute array. The layout module maps attributes to pages. *)

type id = int
(** Index of the attribute within its class. *)

type t = {
  name : string;
  size_bytes : int;  (** storage footprint in the object's representation *)
}

val make : name:string -> size_bytes:int -> t
(** @raise Invalid_argument if [size_bytes <= 0]. *)

val pp : Format.formatter -> t -> unit
