type instance = { oid : Oid.t; cls : Obj_class.t; refs : Oid.t array }

type t = { table : instance Oid.Table.t }

let create instances =
  let table = Oid.Table.create (List.length instances * 2) in
  List.iter
    (fun inst ->
      if Oid.Table.mem table inst.oid then
        invalid_arg (Format.asprintf "Catalog.create: duplicate %a" Oid.pp inst.oid);
      (* Force layout computation so uncompiled classes fail here. *)
      ignore (Obj_class.layout inst.cls);
      if Array.length inst.refs <> Obj_class.ref_slots inst.cls then
        invalid_arg
          (Format.asprintf "Catalog.create: %a has %d refs, class %s declares %d slots" Oid.pp
             inst.oid (Array.length inst.refs)
             (Obj_class.name inst.cls)
             (Obj_class.ref_slots inst.cls));
      Oid.Table.add table inst.oid inst)
    instances;
  List.iter
    (fun inst ->
      Array.iter
        (fun target ->
          if not (Oid.Table.mem table target) then
            invalid_arg
              (Format.asprintf "Catalog.create: %a references unknown %a" Oid.pp inst.oid Oid.pp
                 target))
        inst.refs)
    instances;
  { table }

let find t oid =
  match Oid.Table.find_opt t.table oid with Some i -> i | None -> raise Not_found

let size t = Oid.Table.length t.table

let oids t =
  Oid.Table.fold (fun oid _ acc -> oid :: acc) t.table [] |> List.sort Oid.compare

let page_count t oid = Obj_class.page_count (find t oid).cls
let layout t oid = Obj_class.layout (find t oid).cls
let find_method t oid m_name = Obj_class.find_method (find t oid).cls m_name

let resolve_slot t oid slot =
  let inst = find t oid in
  if slot < 0 || slot >= Array.length inst.refs then
    invalid_arg (Format.asprintf "Catalog.resolve_slot: %a slot %d out of range" Oid.pp oid slot);
  inst.refs.(slot)

(* Iterative three-colour DFS over the reference graph. *)
let validate_acyclic t =
  let module M = Oid.Map in
  let colour = ref M.empty in
  (* 0 unvisited (absent), 1 in progress, 2 done *)
  let cycle = ref None in
  let rec visit path oid =
    match !cycle with
    | Some _ -> ()
    | None -> (
        match M.find_opt oid !colour with
        | Some 2 -> ()
        | Some 1 ->
            (* Found a back edge: extract the cycle from the path. *)
            let rec take acc = function
              | [] -> acc
              | o :: rest -> if Oid.equal o oid then o :: acc else take (o :: acc) rest
            in
            cycle := Some (take [] path)
        | _ ->
            colour := M.add oid 1 !colour;
            let inst = find t oid in
            Array.iter (fun target -> visit (oid :: path) target) inst.refs;
            colour := M.add oid 2 !colour)
  in
  List.iter (fun oid -> visit [] oid) (oids t);
  match !cycle with None -> Ok () | Some c -> Error c

let max_invocation_depth t =
  (match validate_acyclic t with
  | Ok () -> ()
  | Error _ -> invalid_arg "Catalog.max_invocation_depth: catalog is cyclic");
  let module M = Oid.Map in
  let memo = ref M.empty in
  let rec depth oid =
    match M.find_opt oid !memo with
    | Some d -> d
    | None ->
        let inst = find t oid in
        let d =
          Array.fold_left (fun acc target -> max acc (1 + depth target)) 1 inst.refs
        in
        memo := M.add oid d !memo;
        d
  in
  List.fold_left (fun acc oid -> max acc (depth oid)) 0 (oids t)

let total_pages t =
  Oid.Table.fold (fun _ inst acc -> acc + Obj_class.page_count inst.cls) t.table 0
