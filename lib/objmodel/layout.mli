(** Attribute-to-page placement — the compiler's representation decision.

    The paper's LOTEC optimisation requires the compiler to know "where, in
    an object's representation in memory, each attribute is stored". This
    module performs that placement: attributes are laid out sequentially at
    byte offsets, and each attribute maps to the set of pages its extent
    touches. *)

type t

val create : page_size:int -> Attribute.t array -> t
(** Sequential placement of the attributes starting at offset 0.
    @raise Invalid_argument if [page_size <= 0]. *)

val page_size : t -> int

val page_count : t -> int
(** Number of pages the object representation spans (at least 1 even for an
    empty attribute list, since an object occupies at least a header page). *)

val total_bytes : t -> int

val offset : t -> Attribute.id -> int
(** Byte offset of the attribute. *)

val pages_of_attr : t -> Attribute.id -> int list
(** Ascending list of page indices the attribute's extent touches. *)

val pages_of_attrs : t -> Attribute.id list -> int list
(** Union of {!pages_of_attr} over a set of attributes, ascending, deduped. *)

val attr_count : t -> int

val pp : Format.formatter -> t -> unit
