open Objmodel
open Txn

exception Family_abort
(* Raised inside a family's fiber to unwind the invocation stack when the
   family must abort (deadlock victim, or a sub-transaction out of retries).
   Every enclosing invocation aborts its own transaction and re-raises; the
   root driver catches it and retries the whole family with backoff. *)

exception Recursion_rejected of Oid.t
(* Raised (when recursive catalogs are admitted) by the run-time recursion
   check: the invocation chain revisited the object. Deterministic, so the
   root driver gives up immediately instead of retrying. *)

exception Crashed_abort
(* Raised inside a family's fiber when its executing node crashed under it.
   Unlike Family_abort, the unwinding performs no undo (the crash wipe
   already restored the node's pages to their durable versions; undoing
   would resurrect uncommitted data) and sends no global releases (the
   node cannot send; the family's directory residue is reclaimed when the
   node is declared dead). The root driver waits for the node to rejoin,
   then retries the family under a fresh identity. *)

type root_outcome = Committed | Gave_up

type root_result = {
  oid : Oid.t;
  meth : string;
  node : int;
  submitted_at : float;
  completed_at : float;
  attempts : int;
  outcome : root_outcome;
}

(* Network payloads are thunks executed at the destination when the message
   is delivered; all byte/kind/tag accounting happens at send time. *)
type msg = Exec of (unit -> unit)

(* Int-keyed tables for the per-message path: monomorphic hashing and no
   tuple allocation per lookup (the polymorphic Hashtbl versions built a
   fresh (int, Txn_id.t) pair for every find/replace/remove). *)
module Itbl = Hashtbl.Make (struct
  type t = int

  let equal = Int.equal
  let hash (x : int) = x
end)

(* (object, family) packed into one int: object id in the high bits,
   family id — dense, monotonically assigned — in the low bits, so the
   identity hash above spreads buckets well. Object ids are bounded at
   [okey]'s first use per call; family ids cannot reach 2^42 in any
   feasible run. *)
let okey oid family =
  let o = Oid.to_int oid in
  if o >= 1 lsl 20 then invalid_arg "Runtime: object id exceeds the 2^20 key space";
  (o lsl 42) lor Txn_id.to_int family

type refusal =
  | Busy
  | Deadlock of Txn_id.t list
  | Crashed
      (* The operation was disrupted by a crash: the home (or requester)
         crashed under it, or the reliable transport exhausted its
         retransmit budget. The requester aborts the family and retries;
         a doomed requester unwinds with Crashed_abort instead. *)

(* A grant reply, with the lease the home attached to it when the lease
   policy admits one: (expires, epoch). The lease rides inside the grant's
   control message at no extra byte cost (two scalar fields in an
   already-sized message). *)
type reply = (Gdo.Directory.grant * (float * int) option, refusal) result

(* One outstanding page fetch (one source-node group of a fetch_groups
   call), registered so crash handling can fail it instead of letting the
   fetching fiber block forever: a crash of the source node, of the
   fetching node, or a transport give-up on either leg fills [fw_iv]. *)
type fetch_wait = {
  fw_iv : unit Sim.Engine.Ivar.t;
  fw_family : Txn_id.t;
  fw_src : int;
  mutable fw_failed : bool;
}

(* Outcome of a function-shipped invocation, carried home by Ship_reply (or
   synthesised by crash handling when the reply cannot arrive). *)
type ship_outcome =
  | Ship_ok  (* the child precommitted into the family *)
  | Ship_aborted  (* the child aborted out of retries: Family_abort *)
  | Ship_recursion of Oid.t  (* run-time recursion check fired at the site *)
  | Ship_crashed  (* a crash (or transport give-up) broke the round trip *)

(* One invoker fiber blocked on a Ship_reply, registered so crash handling
   can fail it instead of letting it block forever. *)
type ship_wait = {
  sw_iv : ship_outcome Sim.Engine.Ivar.t;
  sw_family : Txn_id.t;
  sw_site : int;
}

(* Per-family function-shipping state. [pins] fixes each invoked object's
   execution site at the family's first dispatch on it, so every later
   invocation in the family runs at the same site (one site per (family,
   object) keeps the local lock inheritance chain well-formed).
   [exec_sites] lists every node the family has executed at — the root's
   node plus each site a Ship_invoke was delivered to — with the node's
   incarnation at registration: commit/abort/purge iterate it for lock
   release, crash entry dooms the family when a member crashes, and the
   purge paths restore parked undo state only at sites whose incarnation
   is unchanged (a crashed site's wipe already discarded the writes). *)
type ship_state = {
  pins : int Oid.Table.t;
  mutable exec_sites : (int * int) list;
}

(* Node-side escrow ledger for one (node, object): the delegated quota
   still undrawn ([el_q_*]; family holds are subtracted at draw time), the
   net locally-committed delta not yet reconciled home ([el_pending]), the
   quota units those commits spent ([el_spent_*]), and the commit count
   driving the lazy-reconcile cadence. [el_epoch] is the highest recall
   epoch the node has already yielded to — the fence against duplicate or
   reordered recalls. *)
type escrow_ledger = {
  mutable el_q_up : int;
  mutable el_q_down : int;
  mutable el_pending : int;
  mutable el_spent_up : int;
  mutable el_spent_down : int;
  mutable el_commits : int;
  mutable el_epoch : int;
}

(* Per-family escrow bookkeeping, resolved at root end. [fe_home] lists
   objects with a home reservation (one Escrow_commit resolution message
   each); [fe_local] the units drawn from the root node's delegated quota
   as [(oid, up units, down units, net delta)] rows — folded into the
   ledger at commit, returned to it at abort. A quota recall moves a
   row from [fe_local] to [fe_home] (the carried re-book). *)
type fam_escrow = {
  mutable fe_home : Oid.t list;
  mutable fe_local : (Oid.t * int * int * int) list;
}

type t = {
  cfg : Config.t;
  catalog : Catalog.t;
  engine : Sim.Engine.t;
  net : msg Sim.Network.t;
  tree : Txn_tree.t;
  gdo : Gdo.Directory.t;
  stores : Dsm.Page_store.t array;
  locks : Local_locks.t array;
  metrics : Dsm.Metrics.t;
  mutable next_version : int;
  (* Deferred GDO grants: (object, family) -> ivar of the blocked acquire. *)
  pending : reply Sim.Engine.Ivar.t Itbl.t;
  (* Global acquires in flight, to serialise racing acquires (main fiber vs
     prefetch fibers) by the same family on the same object. *)
  inflight : reply Sim.Engine.Ivar.t Itbl.t;
  (* Acquisition-time page transfers in flight: with optimistic
     pre-acquisition, a child can be granted the lock locally while the
     prefetch fiber's pages are still on the wire; every grant path awaits
     this before the method body may touch the object. *)
  transfers : unit Sim.Engine.Ivar.t Itbl.t;
  (* Family grant snapshots: the page map each family received for each
     object it holds; consulted for staleness checks and demand fetches. *)
  snapshots : Gdo.Directory.grant Oid.Table.t Txn_id.Table.t;
  recovery_logs : Recovery.t Txn_id.Table.t;
  (* object each transaction's method executes on; used by the run-time
     recursion check. *)
  txn_objects : Oid.t Txn_id.Table.t;
  read_logs : Serializability.access list ref Txn_id.Table.t;
  write_logs : Serializability.access list ref Txn_id.Table.t;
  mutable history : Serializability.committed_root list;
  mutable results : root_result list;
  mutable outstanding : int;
  mutable ran : bool;
  trace : Dsm.Event.t Sim.Trace.t option;
  cpus : Sim.Engine.Semaphore.t array option;  (* one CPU per node when cpu_limited *)
  (* Reliable transport over the faulty interconnect (active only when the
     config carries an active fault model): every remote protocol message is
     sequence-numbered, acknowledged by the receiver's transport, deduplicated
     at the receiver, and retransmitted by the sender with exponential backoff
     while unacknowledged. *)
  reliable : bool;
  mutable next_mid : int;
  acked : unit Itbl.t;  (* at the sender: mids known delivered *)
  seen : unit Itbl.t;  (* at receivers: mids whose effect already ran *)
  (* Message-combining layer (see Dsm.Batching). [batch_acks] arms ack
     piggybacking (policy on AND reliable transport active — without
     faults there are no transport acks to combine); [batch_heartbeat]
     arms heartbeat suppression (policy on AND crash windows configured).
     Everything here is inert when the policy is off, keeping batching-off
     runs byte-identical to the pre-batching runtime. *)
  batching : Dsm.Batching.t;
  batch_acks : bool;
  batch_heartbeat : bool;
  (* (acking node, original sender) channel -> mids whose transport ack is
     deferred to ride the channel's next payload (or its flush timer). *)
  pending_acks : (int * int, int list ref) Hashtbl.t;
  ack_flush_armed : (int * int, unit) Hashtbl.t;
  (* (releasing node, home) -> per-family release batches parked for the
     coalescing flush, combined into a single Release message. *)
  pending_releases :
    (int * int, (Txn_id.t * (Oid.t * (int * int * int) list) list) list ref) Hashtbl.t;
  release_flush_armed : (int * int, unit) Hashtbl.t;
  (* src * node_count + dst -> time of the channel's last outbound remote
     message; lets the heartbeat tick skip recently active channels. *)
  last_traffic : float array;
  (* Read-lease subsystem (see Gdo.Lease). All four fields are inert when
     [lease_enabled] is false — the default — keeping fault-free runs
     byte-identical to the pre-lease runtime. *)
  lease_enabled : bool;
  lease_mgr : Gdo.Lease.t;  (* home-side manager (homes share the process) *)
  lease_caches : Gdo.Lease.Cache.cache array;  (* node-side, one per node *)
  (* family -> objects whose read lock is lease-backed (invisible to the
     directory), each mapped to the nodes whose lease caches back it (the
     family's node; with function shipping, possibly several execution
     sites): released locally at those nodes, validated at commit and at
     upgrade. *)
  lease_reads : int list Oid.Table.t Txn_id.Table.t;
  (* home-side: write acquisitions parked behind an in-progress lease
     recall, keyed by object; drained FIFO when the recall clears. *)
  lease_blocked : (unit -> unit) Queue.t Itbl.t;
  (* object -> simulated time its in-progress recall was issued; feeds the
     recall-to-clear latency histogram. *)
  recall_started : float Itbl.t;
  (* Method-result cache (see Dsm.Method_cache): per-node caches of
     read-only invocation read logs, consulted at invocation entry when the
     node's lease on the object is valid, invalidated through the lease
     caches' on_invalidate hooks. Inert when [cache_enabled] is false —
     the default — keeping cache-off runs byte-identical. *)
  cache_enabled : bool;
  method_caches : Dsm.Method_cache.t array;
  (* Crash-recovery subsystem. Everything below is inert when
     [crash_enabled] is false — no crash windows configured — keeping
     crash-free runs byte-identical to the pre-recovery runtime. *)
  crash_enabled : bool;
  crashed : bool array;  (* node -> currently inside a crash window *)
  incarnation : int array;  (* bumped at every rejoin; fences stragglers *)
  (* Root families whose executing node crashed under them: their fibers
     unwind with Crashed_abort at the next choke point and their directory
     residue is reclaimed at dead declaration. Never cleared — family ids
     are never reused, so doom is a permanent fence against stragglers. *)
  doomed : unit Txn_id.Table.t;
  (* Root families currently executing an attempt (registered at attempt
     start, dropped at attempt end): the set a crash entry dooms. *)
  live_roots : unit Txn_id.Table.t;
  (* (node, incarnation) pairs already declared dead, so one incarnation
     is declared (and reclaimed) at most once across all observers. *)
  declared_dead : (int * int, unit) Hashtbl.t;
  (* (observer, node, incarnation) suspicions already recorded, to trace
     each suspicion once rather than once per heartbeat tick. *)
  suspected_seen : (int * int * int, unit) Hashtbl.t;
  detectors : Sim.Failure_detector.t array;  (* one observer per node *)
  (* Partition home -> node currently serving it. Identity while the home
     is up; with [gdo_replicas > 0] a crashed home's partition is served
     by its first live ring successor until the rejoin. *)
  acting_home : int array;
  rejoin : unit Sim.Engine.Ivar.t option array;  (* filled at window end *)
  (* Quorum-membership subsystem (no ground-truth oracle): a suspicion
     becomes a declaration only when a majority of the not-yet-declared
     observers corroborate it from their own detectors. Every declaration
     or readmission bumps the membership epoch; acquisition requests are
     stamped with the sender's epoch view and refused when stale, fencing
     out the regime of a falsely-declared (partitioned, not crashed)
     home. All of it is inert when [crash_enabled] is false. *)
  mutable membership_epoch : int;  (* global; bumped per declaration/readmission *)
  epoch_view : int array;  (* node -> highest epoch it has heard of *)
  declared_down : bool array;  (* node -> currently declared dead by quorum *)
  acting_epoch : int array;  (* partition -> epoch of its last acting-home change *)
  (* node -> instant before which a successor must not serve the node's
     home partition: the latest expiry of any read lease the node granted
     (lease-expiry fencing; 0 with leases off). *)
  fence_until : float array;
  (* A node that can reach fewer than a majority of eligible peers parks:
     it refuses directory service and starts no new roots until the
     majority is reachable again (minority side of a partition). *)
  parked : bool array;
  park_ivars : unit Sim.Engine.Ivar.t option array;
  (* (suspect, incarnation) -> observers that voted; a vote is recorded
     only from an observer whose own detector suspects the node. *)
  votes : (int * int, (int, unit) Hashtbl.t) Hashtbl.t;
  (* (epoch, partition, serving) appended per acting-home change, newest
     first: the split-brain auditor's input (see Membership_audit). *)
  mutable membership_log : (int * int * int) list;
  (* Per-node decorrelated-jitter retransmit streams (see Sim.Backoff);
     draw nothing unless a retransmit timer actually fires. *)
  backoffs : Sim.Backoff.t array;
  (* Membership work done on every delivered remote message (epoch
     max-merge, readmission of a falsely-declared sender); a no-op until
     [arm_crash_machinery] installs the real hook, so fault-free runs are
     untouched. *)
  mutable deliver_hook : src:int -> dst:int -> unit;
  mutable fetch_waits : fetch_wait list;
  (* Function-shipping subsystem (see Dsm.Shipping). Everything below is
     inert when [ship_enabled] is false — the default — keeping
     shipping-off runs byte-identical to the data-shipping runtime. *)
  ship_enabled : bool;
  ship_params : Dsm.Shipping.params option;  (* Some iff [ship_enabled] *)
  ship_states : ship_state Txn_id.Table.t;  (* family -> pins + exec sites *)
  (* owner transaction -> undo state parked by its function-shipped
     descendants, one Recovery log per remote execution site. A shipped
     child cannot merge its log into a parent executing elsewhere — the
     pre-images belong to the site's store — so precommit parks it here
     (and promotes parked entries up the chain), until root commit drops
     them or an abort replays them site by site. *)
  parked_logs : (int * Recovery.t) list ref Txn_id.Table.t;
  mutable ship_waits : ship_wait list;
  (* Escrow-commit subsystem (see Dsm.Escrow). Everything below is inert
     when [escrow_enabled] is false — the default — keeping escrow-off
     runs byte-identical to the lock-only runtime. *)
  escrow_enabled : bool;
  escrow_params : Dsm.Escrow.params option;  (* Some iff [escrow_enabled] *)
  (* objects registered for escrow (their class declares a commuting
     method); the node-side test mirroring the directory's registration. *)
  escrow_oids : unit Oid.Table.t;
  escrow_ledgers : escrow_ledger Itbl.t array;  (* per node: oid -> ledger *)
  escrow_fams : fam_escrow Txn_id.Table.t;
  (* home-side: objects with a quota recall in flight, mapped to the number
     of yields still outstanding — guards against re-bumping the epoch
     under an open recall (which would strand the stale yields' quota) and
     clears exactly when the recalled epoch's last yield lands. *)
  escrow_recalling : int Itbl.t;
  (* typed op log for [Serializability.check_escrow], newest first. *)
  mutable escrow_ops : Serializability.escrow_op list;
}

let config t = t.cfg
let catalog t = t.catalog
let engine t = t.engine
let metrics t = t.metrics
let directory t = t.gdo
let store t ~node = t.stores.(node)
let trace t = t.trace
let lease_manager t = t.lease_mgr
let lease_cache t ~node = t.lease_caches.(node)
let method_cache t ~node = t.method_caches.(node)

(* The thunk keeps event construction off the tracing-off path entirely:
   with no ring configured, no allocation or formatting happens at all. *)
let record_event t ev =
  match t.trace with
  | None -> ()
  | Some tr -> Sim.Trace.record tr ~time:(Sim.Engine.now t.engine) (ev ())

(* Wire a node's method cache to its lease cache's invalidation hook: a
   lease recall, expiry or epoch-superseding re-grant wipes the object's
   cached method results. Only drops are counted — retransmitted recalls
   find nothing and stay invisible. Must be re-called whenever the node's
   lease cache is replaced (crash wipe), since the subscription lives in
   the lease cache. *)
let register_cache_invalidation t ~node =
  Gdo.Lease.Cache.set_on_invalidate t.lease_caches.(node) (fun oid ->
      let dropped = Dsm.Method_cache.invalidate_object t.method_caches.(node) oid in
      if dropped > 0 then begin
        Dsm.Metrics.add_cache_invalidations t.metrics dropped;
        record_event t (fun () ->
            Dsm.Event.Cache_invalidate { oid = Some oid; node; entries = dropped })
      end)

(* Statement execution holds the node's CPU when the CPU-limited model is
   on; waits for locks, pages and messages never do. *)
let exec_statement t ~node =
  match t.cpus with
  | None -> Sim.Engine.wait t.cfg.Config.statement_us
  | Some cpus ->
      Sim.Engine.Semaphore.with_permit cpus.(node) (fun () ->
          Sim.Engine.wait t.cfg.Config.statement_us)

(* An object's partition is fixed (oid mod node_count); the node serving
   it is the partition's acting home — the home itself except while it is
   crashed and a replica has taken over (see recompute_acting_homes). *)
let home_of t oid =
  let p = Oid.to_int oid mod t.cfg.Config.node_count in
  if t.crash_enabled then t.acting_home.(p) else p

let is_doomed t family = t.crash_enabled && Txn_id.Table.mem t.doomed family

(* Choke-point check: a fiber of a doomed family must stop mutating state
   (its node's stores and caches were wiped from under it) and must not
   start new blocking operations (its sends are suppressed). Called at
   method-statement boundaries and before page fetches. *)
let check_crashed t ~txn_root =
  if is_doomed t txn_root then raise Crashed_abort

let create ~config:cfg ~catalog =
  (match Config.validate cfg with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Runtime.create: " ^ msg));
  (if not cfg.Config.allow_recursive_catalogs then
     match Catalog.validate_acyclic catalog with
     | Ok () -> ()
     | Error cycle ->
         invalid_arg
           (Format.asprintf "Runtime.create: catalog has recursive references through %a"
              (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f " -> ") Oid.pp)
              cycle));
  let engine = Sim.Engine.create () in
  let metrics = Dsm.Metrics.create () in
  let trace =
    if cfg.Config.trace_capacity > 0 then
      Some (Sim.Trace.create ~capacity:cfg.Config.trace_capacity)
    else None
  in
  let on_message ~src:_ ~dst:_ ~kind ~bytes ~tag =
    let oid = if tag >= 0 then Oid.of_int tag else Dsm.Metrics.untagged in
    Dsm.Metrics.record_message metrics ~oid ~kind ~bytes
  in
  let on_fault ~event ~src ~dst =
    (match event with
    | Sim.Fault.Drop | Sim.Fault.Crash_drop | Sim.Fault.Partition_drop
    | Sim.Fault.Link_cut_drop ->
        Dsm.Metrics.incr_drops metrics
    | Sim.Fault.Duplicate -> Dsm.Metrics.incr_duplicates metrics
    | Sim.Fault.Pause_defer | Sim.Fault.Slow_defer -> ());
    match trace with
    | None -> ()
    | Some tr ->
        Sim.Trace.record tr ~time:(Sim.Engine.now engine)
          (Dsm.Event.Fault { fault = event; src; dst })
  in
  let net =
    Sim.Network.create ~engine ~node_count:cfg.Config.node_count ~link:cfg.Config.link
      ?faults:cfg.Config.faults ~on_fault ~on_message ()
  in
  let tree = Txn_tree.create () in
  let t =
    {
      cfg;
      catalog;
      engine;
      net;
      tree;
      gdo = Gdo.Directory.create ();
      stores = Array.init cfg.Config.node_count (fun node -> Dsm.Page_store.create ~node);
      locks = Array.init cfg.Config.node_count (fun _ -> Local_locks.create tree);
      metrics;
      next_version = 0;
      pending = Itbl.create 64;
      inflight = Itbl.create 16;
      transfers = Itbl.create 16;
      snapshots = Txn_id.Table.create 64;
      recovery_logs = Txn_id.Table.create 64;
      txn_objects = Txn_id.Table.create 64;
      read_logs = Txn_id.Table.create 64;
      write_logs = Txn_id.Table.create 64;
      history = [];
      results = [];
      outstanding = 0;
      ran = false;
      trace;
      cpus =
        (if cfg.Config.cpu_limited then
           Some
             (Array.init cfg.Config.node_count (fun _ ->
                  Sim.Engine.Semaphore.create ~permits:1))
         else None);
      reliable = Sim.Network.faults_active net;
      next_mid = 0;
      acked = Itbl.create 256;
      seen = Itbl.create 256;
      batching = cfg.Config.batching;
      batch_acks =
        cfg.Config.batching.Dsm.Batching.ack_piggyback && Sim.Network.faults_active net;
      batch_heartbeat =
        (cfg.Config.batching.Dsm.Batching.piggyback_heartbeat
        &&
        match cfg.Config.faults with
        | Some f -> Sim.Fault.has_crash_windows f || Sim.Fault.has_link_windows f
        | None -> false);
      pending_acks = Hashtbl.create 16;
      ack_flush_armed = Hashtbl.create 16;
      pending_releases = Hashtbl.create 16;
      release_flush_armed = Hashtbl.create 16;
      last_traffic = Array.make (cfg.Config.node_count * cfg.Config.node_count) neg_infinity;
      lease_enabled = Gdo.Lease.policy_enabled cfg.Config.lease;
      lease_mgr = Gdo.Lease.create cfg.Config.lease;
      lease_caches =
        Array.init cfg.Config.node_count (fun _ -> Gdo.Lease.Cache.create ());
      lease_reads = Txn_id.Table.create 64;
      lease_blocked = Itbl.create 16;
      recall_started = Itbl.create 16;
      cache_enabled = Dsm.Method_cache.policy_enabled cfg.Config.method_cache;
      method_caches =
        Array.init cfg.Config.node_count (fun _ ->
            Dsm.Method_cache.create cfg.Config.method_cache);
      (* Crash *or* link windows arm the whole failure-handling stack:
         heartbeats, detectors, quorum membership, failover. A partition
         makes messages loseable and nodes falsely suspectable, so it
         needs everything a crash does except the state wipe. *)
      crash_enabled =
        (match cfg.Config.faults with
        | Some f -> Sim.Fault.has_crash_windows f || Sim.Fault.has_link_windows f
        | None -> false);
      crashed = Array.make cfg.Config.node_count false;
      incarnation = Array.make cfg.Config.node_count 0;
      doomed = Txn_id.Table.create 16;
      live_roots = Txn_id.Table.create 16;
      declared_dead = Hashtbl.create 8;
      suspected_seen = Hashtbl.create 16;
      detectors =
        Array.init cfg.Config.node_count (fun i ->
            let d =
              Sim.Failure_detector.create ~node_count:cfg.Config.node_count
                ~timeout_us:cfg.Config.suspect_timeout_us
            in
            Sim.Failure_detector.set_self d i;
            d);
      acting_home = Array.init cfg.Config.node_count (fun i -> i);
      rejoin = Array.make cfg.Config.node_count None;
      membership_epoch = 0;
      epoch_view = Array.make cfg.Config.node_count 0;
      declared_down = Array.make cfg.Config.node_count false;
      acting_epoch = Array.make cfg.Config.node_count 0;
      fence_until = Array.make cfg.Config.node_count 0.0;
      parked = Array.make cfg.Config.node_count false;
      park_ivars = Array.make cfg.Config.node_count None;
      votes = Hashtbl.create 8;
      membership_log = [];
      backoffs =
        (let seed =
           match cfg.Config.faults with Some f -> f.Sim.Fault.seed | None -> 0
         in
         Array.init cfg.Config.node_count (fun node ->
             Sim.Backoff.stream ~seed ~node ~base_us:cfg.Config.request_timeout_us
               ~cap_us:cfg.Config.retransmit_backoff_cap_us));
      deliver_hook = (fun ~src:_ ~dst:_ -> ());
      fetch_waits = [];
      ship_enabled = Dsm.Shipping.policy_enabled cfg.Config.shipping;
      ship_params =
        (match cfg.Config.shipping with
        | Dsm.Shipping.Off -> None
        | Dsm.Shipping.On p -> Some p);
      ship_states = Txn_id.Table.create 16;
      parked_logs = Txn_id.Table.create 16;
      ship_waits = [];
      escrow_enabled = Dsm.Escrow.policy_enabled cfg.Config.escrow;
      escrow_params =
        (match cfg.Config.escrow with
        | Dsm.Escrow.Off -> None
        | Dsm.Escrow.On p -> Some p);
      escrow_oids = Oid.Table.create 16;
      escrow_ledgers = Array.init cfg.Config.node_count (fun _ -> Itbl.create 8);
      escrow_fams = Txn_id.Table.create 16;
      escrow_recalling = Itbl.create 8;
      escrow_ops = [];
    }
  in
  if t.cache_enabled then
    for node = 0 to cfg.Config.node_count - 1 do
      register_cache_invalidation t ~node
    done;
  (* Trivial dispatch: every node executes delivered thunks. With heartbeat
     piggybacking, any delivered remote message doubles as a liveness
     proof — it refreshes the receiver's failure detector exactly as a
     Heartbeat would, which is what lets the sender suppress the periodic
     one on an active channel. *)
  for node = 0 to cfg.Config.node_count - 1 do
    Sim.Network.set_handler net ~node (fun ~src (Exec f) ->
        if src <> node && not t.crashed.(node) then begin
          if t.batch_heartbeat then
            Sim.Failure_detector.heartbeat t.detectors.(node) ~node:src
              ~now:(Sim.Engine.now engine);
          (* Membership: a delivered message carries the sender's epoch
             view and is a liveness proof — it readmits a falsely-declared
             sender. No-op until the crash machinery arms the hook. *)
          t.deliver_hook ~src ~dst:node
        end;
        f ())
  done;
  (* Initial placement: all pages of every object live on its home node at
     version 0; the GDO entry lives on the same node. *)
  List.iter
    (fun oid ->
      let pages = Catalog.page_count catalog oid in
      let home = home_of t oid in
      Gdo.Directory.register_object t.gdo oid ~pages ~initial_node:home;
      for p = 0 to pages - 1 do
        Dsm.Page_store.receive t.stores.(home) oid ~page:p ~version:0
      done;
      (* Escrow registration: an object whose class declares any commuting
         method carries an escrowed quantity at its home, seeded from the
         policy's bounds. *)
      match t.escrow_params with
      | Some p
        when List.exists
               (fun (m : Obj_class.compiled_method) -> Method_ir.commutes m.Obj_class.ir)
               (Obj_class.methods (Catalog.find catalog oid).Catalog.cls) ->
          Gdo.Directory.register_escrow t.gdo oid ~lower:p.Dsm.Escrow.lower_bound
            ~upper:p.Dsm.Escrow.upper_bound ~initial:p.Dsm.Escrow.initial;
          Oid.Table.replace t.escrow_oids oid ()
      | Some _ | None -> ())
    (Catalog.oids catalog);
  t

(* Per-class protocol override (paper section 6 future work); cached per
   object since it is consulted on every access. *)
let protocol_for t oid =
  match t.cfg.Config.class_protocols with
  | [] -> t.cfg.Config.protocol
  | overrides -> (
      let cls_name = Obj_class.name (Catalog.find t.catalog oid).Catalog.cls in
      match List.assoc_opt cls_name overrides with
      | Some p -> p
      | None -> t.cfg.Config.protocol)

(* ------------------------------------------------------------------ *)
(* Message combining (see [Dsm.Batching]): deferred transport acks ride
   the channel's next payload, releases coalesce per home, heartbeats are
   suppressed by recent traffic. All of it is inert when the policy is
   off.                                                                *)

(* Channel-activity note for heartbeat suppression: any outbound remote
   message proves the sender alive to the destination (the receive
   handler feeds the failure detector on every delivery). *)
let note_traffic t ~src ~dst =
  if t.batch_heartbeat then
    t.last_traffic.((src * t.cfg.Config.node_count) + dst) <- Sim.Engine.now t.engine

let take_pending_acks t ~src ~dst =
  match Hashtbl.find_opt t.pending_acks (src, dst) with
  | None -> []
  | Some q ->
      let mids = List.rev !q in
      q := [];
      mids

(* Attach the channel's pending transport acks to an outgoing payload: the
   carrier grows by the riders' bytes and its delivery additionally marks
   the ridden mids acknowledged at the original sender. Riders are
   accounted as 0-message/+bytes ledger entries (see
   [Metrics.record_rider]) so both reconciliation invariants keep holding
   exactly. *)
let attach_ack_riders t ~src ~dst f =
  if not t.batch_acks then (0, f)
  else
    match take_pending_acks t ~src ~dst with
    | [] -> (0, f)
    | mids ->
        let k = List.length mids in
        let bytes = k * t.batching.Dsm.Batching.ack_rider_bytes in
        Dsm.Metrics.add_acks_piggybacked t.metrics k;
        Dsm.Metrics.record_rider t.metrics ~mtype:Dsm.Wire.Ack ~count:k ~bytes;
        record_event t (fun () -> Dsm.Event.Ack_piggyback { src; dst; acks = k });
        ( bytes,
          fun () ->
            List.iter (fun mid -> Itbl.replace t.acked mid ()) mids;
            f () )

(* Remote-send bookkeeping shared by [send_exec] and the reliable
   transport's (re)transmit path: the per-type ledger entry records the
   carrier's own bytes, pending acks ride along as accounted riders, and
   the traffic note feeds heartbeat suppression. *)
let wire_send t ~mtype ~src ~dst ~kind ~bytes ~tag f =
  Dsm.Metrics.record_wire t.metrics ~mtype ~bytes;
  let rider_bytes, f = attach_ack_riders t ~src ~dst f in
  note_traffic t ~src ~dst;
  Sim.Network.send t.net ~src ~dst ~kind ~bytes:(bytes + rider_bytes) ~tag (Exec f)

(* Same-node sends bypass the network's [on_message] hook, so they are
   excluded here too — the wire ledger must reconcile exactly with the
   per-object ledger that hook feeds. A crashed node sends nothing: the
   suppression sits before both accounting hooks, so the two ledgers stay
   reconciled. *)
let send_exec t ~mtype ~src ~dst ~kind ~bytes ~tag f =
  if not (t.crash_enabled && t.crashed.(src)) then begin
    if src = dst then Sim.Network.send t.net ~src ~dst ~kind ~bytes ~tag (Exec f)
    else wire_send t ~mtype ~src ~dst ~kind ~bytes ~tag f
  end

(* Flush timer: the channel saw no payload within [ack_flush_us] of its
   first deferred ack, so one standalone Ack carries the whole backlog.
   [ack_flush_us] sits well below the retransmit timeout (validated in
   [Config]), so the original senders never time out waiting for a
   deferred ack. The extra acks beyond the first are accounted as riders
   on the flush message. *)
let flush_acks t ~src ~dst =
  Hashtbl.remove t.ack_flush_armed (src, dst);
  match take_pending_acks t ~src ~dst with
  | [] -> ()
  | mids ->
      let k = List.length mids in
      Dsm.Metrics.add_acks_flushed t.metrics k;
      if k > 1 then
        Dsm.Metrics.record_rider t.metrics ~mtype:Dsm.Wire.Ack ~count:(k - 1) ~bytes:0;
      record_event t (fun () -> Dsm.Event.Ack_flush { src; dst; acks = k });
      let bytes =
        t.cfg.Config.control_msg_bytes
        + ((k - 1) * t.batching.Dsm.Batching.ack_rider_bytes)
      in
      send_exec t ~mtype:Dsm.Wire.Ack ~src ~dst ~kind:Sim.Network.Control ~bytes ~tag:(-1)
        (fun () -> List.iter (fun mid -> Itbl.replace t.acked mid ()) mids)

(* Receiver side of ack piggybacking: park the ack of [mid] on the reverse
   channel, arming its flush timer on first use. *)
let queue_ack t ~src ~dst mid =
  if not (t.crash_enabled && t.crashed.(src)) then begin
    let key = (src, dst) in
    let q =
      match Hashtbl.find_opt t.pending_acks key with
      | Some q -> q
      | None ->
          let q = ref [] in
          Hashtbl.add t.pending_acks key q;
          q
    in
    q := mid :: !q;
    if not (Hashtbl.mem t.ack_flush_armed key) then begin
      Hashtbl.replace t.ack_flush_armed key ();
      Sim.Engine.schedule t.engine ~delay:t.batching.Dsm.Batching.ack_flush_us (fun () ->
          flush_acks t ~src ~dst)
    end
  end

let tag_of oid = Oid.to_int oid

(* Reliable delivery of one protocol message over the faulty interconnect.
   The message gets a fresh sequence number; its delivery thunk first sends a
   transport-level ack back (re-acking on every delivery, since a previous
   ack may itself have been lost), then runs the effect at most once — the
   receiver's [seen] table absorbs injected duplicates and retransmissions.
   The sender retransmits until acked or out of attempts, on a capped
   decorrelated-jitter backoff timer ({!Sim.Backoff}): roughly exponential
   growth, clamped so a long partition cannot push the retry far past its
   heal, and drawn from a per-node stream so synchronized losers do not
   retry in lockstep. Without an active fault model this is exactly [send_exec]:
   no acks, no timers, no accounting difference.

   [on_abandon] runs when the transport stops trying before the message
   was acknowledged: the retransmit budget ran out (a counted give-up,
   reported to the sender's failure detector as a suspect hint), or the
   sender crashed and its unacked transport state was discarded. Callers
   use it to fail the blocked operation instead of stalling the engine. *)
let send_reliable ?(on_abandon = fun () -> ()) t ~mtype ~src ~dst ~kind ~bytes ~tag f =
  if (not t.reliable) || src = dst then send_exec t ~mtype ~src ~dst ~kind ~bytes ~tag f
  else begin
    t.next_mid <- t.next_mid + 1;
    let mid = t.next_mid in
    let inc0 = if t.crash_enabled then t.incarnation.(src) else 0 in
    let deliver () =
      (if t.batch_acks then queue_ack t ~src:dst ~dst:src mid
       else
         send_exec t ~mtype:Dsm.Wire.Ack ~src:dst ~dst:src ~kind:Sim.Network.Control
           ~bytes:t.cfg.Config.control_msg_bytes ~tag:(-1)
           (fun () -> Itbl.replace t.acked mid ()));
      if not (Itbl.mem t.seen mid) then begin
        Itbl.add t.seen mid ();
        f ()
      end
    in
    (* Retransmitted copies are charged under the original message type, one
       ledger entry per transmission — matching [on_message], which fires on
       every copy put on the wire. *)
    let transmit () = wire_send t ~mtype ~src ~dst ~kind ~bytes ~tag deliver in
    let rec arm attempt timeout =
      Sim.Engine.schedule t.engine ~delay:timeout (fun () ->
          if not (Itbl.mem t.acked mid) then begin
            if t.crash_enabled && (t.crashed.(src) || t.incarnation.(src) <> inc0) then
              (* The sender crashed since this message was sent: its unacked
                 transport state is gone. Fail the blocked operation quietly
                 (its family is doomed anyway) — no timeout accounting for a
                 timer that no longer exists. *)
              on_abandon ()
            else begin
              Dsm.Metrics.incr_timeouts t.metrics;
              if attempt < t.cfg.Config.max_retransmits then begin
                Dsm.Metrics.incr_retransmits t.metrics;
                record_event t (fun () ->
                    Dsm.Event.Retransmit
                      { mid; src; dst; attempt = attempt + 1; abandoned = false });
                transmit ();
                arm (attempt + 1) (Sim.Backoff.next t.backoffs.(src) ~prev_us:timeout)
              end
              else begin
                (* Give up: count it, hint the sender's failure detector
                   (exhausting the budget is strong evidence the peer is
                   unreachable), and fail the blocked operation — the engine
                   never hangs on an abandoned message. *)
                Dsm.Metrics.incr_give_ups t.metrics;
                Sim.Failure_detector.hint t.detectors.(src) ~node:dst;
                record_event t (fun () ->
                    Dsm.Event.Retransmit { mid; src; dst; attempt; abandoned = true });
                on_abandon ()
              end
            end
          end)
    in
    transmit ();
    arm 0 t.cfg.Config.request_timeout_us
  end

(* ------------------------------------------------------------------ *)
(* Per-transaction bookkeeping.                                        *)

let init_txn_state t txn =
  Txn_id.Table.replace t.recovery_logs txn (Recovery.create t.cfg.Config.recovery);
  Txn_id.Table.replace t.read_logs txn (ref []);
  Txn_id.Table.replace t.write_logs txn (ref [])

let recovery_of t txn = Txn_id.Table.find t.recovery_logs txn
let read_log t txn = Txn_id.Table.find t.read_logs txn
let write_log t txn = Txn_id.Table.find t.write_logs txn

let drop_txn_state t txn =
  Txn_id.Table.remove t.recovery_logs txn;
  Txn_id.Table.remove t.txn_objects txn;
  Txn_id.Table.remove t.read_logs txn;
  Txn_id.Table.remove t.write_logs txn

let family_snapshots t family =
  match Txn_id.Table.find_opt t.snapshots family with
  | Some tbl -> tbl
  | None ->
      let tbl = Oid.Table.create 8 in
      Txn_id.Table.add t.snapshots family tbl;
      tbl

let snapshot t ~family ~oid =
  match Oid.Table.find_opt (family_snapshots t family) oid with
  | Some g -> g
  | None ->
      invalid_arg
        (Format.asprintf "Runtime: family %a has no grant snapshot for %a" Txn_id.pp family
           Oid.pp oid)

let set_snapshot t ~family ~oid grant = Oid.Table.replace (family_snapshots t family) oid grant

(* ------------------------------------------------------------------ *)
(* GDO interaction (Algorithms 4.2 and 4.4, message side).             *)

let grant_bytes t pages = t.cfg.Config.control_msg_bytes + (pages * t.cfg.Config.page_map_entry_bytes)

(* Deliver a reply from the GDO home to the acquiring site. *)
let reply_from_home t ~home ~dst ~oid (iv : reply Sim.Engine.Ivar.t) (r : reply) =
  let deliver () =
    (* Under the faulty network a grant can legitimately be re-delivered
       (retransmitted reply racing its original); drop the re-delivery. On
       the reliable network a double fill is a protocol bug and still
       raises. *)
    if t.reliable && Sim.Engine.Ivar.is_filled iv then ()
    else Sim.Engine.Ivar.fill iv r
  in
  if home = dst then Sim.Engine.schedule t.engine ~delay:Sim.Network.local_delivery_cost_us deliver
  else
    let mtype, bytes =
      match r with
      | Ok (g, _) ->
          (Dsm.Wire.Grant, grant_bytes t (Array.length g.Gdo.Directory.g_page_nodes))
      | Error _ -> (Dsm.Wire.Refusal, t.cfg.Config.control_msg_bytes)
    in
    (* An abandoned reply unblocks the requester with a Crashed refusal:
       the family aborts, defensively releases the (possibly granted) lock
       and retries — rather than waiting forever on a reply that will
       never land. *)
    let on_abandon () =
      if not (Sim.Engine.Ivar.is_filled iv) then Sim.Engine.Ivar.fill iv (Error Crashed)
    in
    send_reliable ~on_abandon t ~mtype ~src:home ~dst ~kind:Sim.Network.Control ~bytes
      ~tag:(tag_of oid) deliver

(* Ship a directory mutation to the partition's replicas (paper §4.1: the
   GDO is "partitioned and replicated"). Asynchronous and fire-and-forget:
   only the traffic cost is modelled, so these stay best-effort even under
   fault injection — a lost replica update loses nothing the simulation
   tracks (directory failover is §6 future work). *)
let replicate_gdo_update t ~home ~oid =
  let n = t.cfg.Config.node_count in
  for i = 1 to t.cfg.Config.gdo_replicas do
    let replica = (home + i) mod n in
    if replica <> home then
      send_exec t ~mtype:Dsm.Wire.Gdo_replica ~src:home ~dst:replica ~kind:Sim.Network.Control
        ~bytes:t.cfg.Config.control_msg_bytes ~tag:(tag_of oid)
        (fun () -> ())
  done

(* ------------------------------------------------------------------ *)
(* Read leases (Gdo.Lease): home-side recall machinery and node-side
   cache handlers. Everything here is dead code when the lease policy is
   Off.                                                                 *)

(* Run the write acquisitions parked behind an object's recall, in arrival
   order — the first (the excluded writer) reaches the directory first and
   is therefore the first granted. *)
let drain_lease_blocked t ~oid =
  match Itbl.find_opt t.lease_blocked (Oid.to_int oid) with
  | None -> ()
  | Some q ->
      Itbl.remove t.lease_blocked (Oid.to_int oid);
      Queue.iter (fun k -> k ()) q

(* Executed at the GDO home when a Lease_yield arrives. *)
(* The recall latency span closes here (last yield) or at the TTL
   force-clear — whichever resolves the recall. *)
let note_recall_resolved t ~oid =
  match Itbl.find_opt t.recall_started (Oid.to_int oid) with
  | None -> ()
  | Some t0 ->
      Itbl.remove t.recall_started (Oid.to_int oid);
      Dsm.Metrics.record_recall_latency_us t.metrics (Sim.Engine.now t.engine -. t0)

let process_lease_yield t ~oid ~node =
  Sim.Engine.schedule t.engine ~delay:t.cfg.Config.gdo_op_us (fun () ->
      Dsm.Metrics.incr_lease_yields t.metrics;
      match Gdo.Lease.note_yield t.lease_mgr oid ~node with
      | `Cleared ->
          record_event t (fun () ->
              Dsm.Event.Lease_recall_cleared { oid; node = home_of t oid });
          note_recall_resolved t ~oid;
          drain_lease_blocked t ~oid
      | `Waiting | `Stale -> ())

(* Node-side: surrender a recalled lease. Rides the reliable transport so a
   yield survives fault injection (a lost yield is backstopped by the home's
   TTL force-clear timer either way). *)
let send_lease_yield t ~node ~oid =
  let home = home_of t oid in
  record_event t (fun () -> Dsm.Event.Lease_yield { oid; node });
  let run () = process_lease_yield t ~oid ~node in
  if home = node then
    Sim.Engine.schedule t.engine ~delay:Sim.Network.local_delivery_cost_us run
  else
    send_reliable t ~mtype:Dsm.Wire.Lease_yield ~src:node ~dst:home ~kind:Sim.Network.Control
      ~bytes:t.cfg.Config.control_msg_bytes ~tag:(tag_of oid) run

(* Executed at a leased node when a Lease_recall arrives. *)
let handle_lease_recall t ~node ~oid ~epoch ~excluded =
  match Gdo.Lease.Cache.recall t.lease_caches.(node) oid ~epoch ~excluded with
  | `Yield -> send_lease_yield t ~node ~oid
  | `Deferred ->
      record_event t (fun () ->
          Dsm.Event.Lease_deferred
            { oid; node; readers = Gdo.Lease.Cache.reader_count t.lease_caches.(node) oid })

(* Start recalling an object's outstanding leases on behalf of a blocked
   write by [excluded]. Arms the TTL force-clear timer that guarantees the
   write is eventually admitted even if yields are lost or a lease-backed
   reader is entangled in a cross-object deadlock the home cannot see. *)
let start_lease_recall t ~home ~oid ~excluded =
  let now = Sim.Engine.now t.engine in
  match Gdo.Lease.begin_recall t.lease_mgr oid ~now ~excluded with
  | `Clear -> `Clear
  | `In_progress -> `Parked
  | `Recall { Gdo.Lease.ro_nodes; ro_epoch; ro_deadline; ro_token } ->
      Dsm.Metrics.add_lease_recalls t.metrics (List.length ro_nodes);
      record_event t (fun () ->
          Dsm.Event.Lease_recall
            { oid; node = home; nodes = List.length ro_nodes; epoch = ro_epoch });
      Itbl.replace t.recall_started (Oid.to_int oid) now;
      List.iter
        (fun node ->
          let deliver () = handle_lease_recall t ~node ~oid ~epoch:ro_epoch ~excluded in
          if node = home then
            Sim.Engine.schedule t.engine ~delay:Sim.Network.local_delivery_cost_us deliver
          else
            send_reliable t ~mtype:Dsm.Wire.Lease_recall ~src:home ~dst:node
              ~kind:Sim.Network.Control ~bytes:t.cfg.Config.control_msg_bytes
              ~tag:(tag_of oid) deliver)
        ro_nodes;
      (* The force-clear backstop. A single timer at ro_deadline would keep
         the engine alive for a whole TTL after the last root finishes (the
         engine runs until its event queue drains and there is no
         cancellation), so instead poll with exponential backoff: each poll
         stands down as soon as the recall token no longer matches — the
         normal case, yields clear a recall in a couple of RTTs — and only
         a recall still pending at ro_deadline is force-cleared. *)
      let rec arm_force_clear ~delay =
        Sim.Engine.schedule t.engine ~delay (fun () ->
            if Gdo.Lease.recall_token t.lease_mgr oid = Some ro_token then begin
              if Sim.Engine.now t.engine >= ro_deadline then begin
                if Gdo.Lease.force_clear t.lease_mgr oid ~token:ro_token then begin
                  Dsm.Metrics.incr_lease_expiries t.metrics;
                  record_event t (fun () -> Dsm.Event.Lease_expired { oid; node = home });
                  note_recall_resolved t ~oid;
                  drain_lease_blocked t ~oid
                end
              end
              else
                let remaining = ro_deadline -. Sim.Engine.now t.engine in
                arm_force_clear ~delay:(Float.min (2.0 *. delay) (remaining +. 1.0))
            end)
      in
      arm_force_clear ~delay:(Float.min 500.0 (Float.max (ro_deadline -. now) 0.0 +. 1.0));
      `Parked

(* Home-side, on every grant leaving the directory: attach a lease to read
   grants the policy admits; bump the object's write epoch on write grants
   (fencing every earlier lease and the readers admitted under them). *)
let attach_lease t ~oid ~node (g : Gdo.Directory.grant) =
  if not t.lease_enabled then None
  else if Lock.equal g.Gdo.Directory.g_mode Lock.Write then begin
    Gdo.Lease.note_write_granted t.lease_mgr oid;
    None
  end
  else begin
    let lease =
      Gdo.Lease.lease_for_grant t.lease_mgr oid ~node ~now:(Sim.Engine.now t.engine)
        ~writer_queued:(Gdo.Directory.has_queued_writer t.gdo oid)
    in
    (match lease with
    | Some (_, epoch) ->
        Dsm.Metrics.incr_lease_grants t.metrics;
        record_event t (fun () -> Dsm.Event.Lease_granted { oid; node; epoch })
    | None -> ());
    lease
  end

(* A family id whose attempt already ended: a request carrying it is a
   pre-crash (or pre-give-up) straggler — family ids are never reused, so
   Aborted is a permanent fence. Only reachable under the reliable
   transport; on the perfect network no message outlives its family. *)
let family_defunct t family =
  t.reliable && Txn_tree.status t.tree family = Txn_tree.Aborted

(* ------------------------------------------------------------------ *)
(* Escrow bookkeeping helpers (see Dsm.Escrow). The ledgers and family
   records are created on demand; everything stays empty with the policy
   off.                                                                *)

let escrow_ledger t ~node oid =
  let key = Oid.to_int oid in
  match Itbl.find_opt t.escrow_ledgers.(node) key with
  | Some l -> l
  | None ->
      let l =
        {
          el_q_up = 0;
          el_q_down = 0;
          el_pending = 0;
          el_spent_up = 0;
          el_spent_down = 0;
          el_commits = 0;
          el_epoch = 0;
        }
      in
      Itbl.replace t.escrow_ledgers.(node) key l;
      l

let fam_escrow_of t family =
  match Txn_id.Table.find_opt t.escrow_fams family with
  | Some fe -> fe
  | None ->
      let fe = { fe_home = []; fe_local = [] } in
      Txn_id.Table.replace t.escrow_fams family fe;
      fe

(* The op log replayed by [Serializability.check_escrow]. Node-side
   effects (local commits, reconcile sends, recall surrenders) are logged
   when the node's ledger changes; home-side effects (reservations,
   delegations, resolutions) when the home applies them. Until an
   in-flight reconcile or yield lands, the home's view is strictly more
   conservative than the log's, so every home admission is log-admissible. *)
let record_escrow_op t op = t.escrow_ops <- op :: t.escrow_ops

(* Directory half of an acquire, shared by the direct path and the
   continuations parked behind a lease recall. *)
let rec process_acquire_core t ~home ~requester ~family ~oid ~mode ~block
    (iv : reply Sim.Engine.Ivar.t) =
  match Gdo.Directory.acquire t.gdo oid ~family ~node:requester ~mode ~block () with
  | Gdo.Directory.Granted g ->
      let lease = attach_lease t ~oid ~node:requester g in
      replicate_gdo_update t ~home ~oid;
      reply_from_home t ~home ~dst:requester ~oid iv (Ok (g, lease))
  | Gdo.Directory.Queued ->
      replicate_gdo_update t ~home ~oid;
      Itbl.replace t.pending (okey oid family) iv;
      (* A waiter queued behind outstanding escrow work: recall whatever
         quota is delegated so the queue can drain once the reservations
         resolve. *)
      if t.escrow_enabled then maybe_recall_escrow t ~home ~oid
  | Gdo.Directory.Busy -> reply_from_home t ~home ~dst:requester ~oid iv (Error Busy)
  | Gdo.Directory.Deadlock cycle ->
      reply_from_home t ~home ~dst:requester ~oid iv (Error (Deadlock cycle))

and deliver_deferred_grant t ~home (d : Gdo.Directory.delivery) =
  let oid = d.d_grant.Gdo.Directory.g_oid in
  match Itbl.find_opt t.pending (okey oid d.d_family) with
  | None -> ()  (* e.g. a test driving the directory directly *)
  | Some iv ->
      Itbl.remove t.pending (okey oid d.d_family);
      if family_defunct t d.d_family then begin
        (* The queued family aborted while waiting (transport give-up or
           crash unblocked it): hand the just-granted lock straight back
           instead of delivering it to a corpse. If the waiter is a
           function-shipped fiber that outlived the abort, fail its wait so
           it unwinds (without shipping the ivar is already filled). *)
        if not (Sim.Engine.Ivar.is_filled iv) then Sim.Engine.Ivar.fill iv (Error Crashed);
        let deliveries = Gdo.Directory.release t.gdo oid ~family:d.d_family ~dirty:[] in
        List.iter (deliver_deferred_grant t ~home) deliveries
      end
      else begin
        let lease = attach_lease t ~oid ~node:d.d_node d.d_grant in
        reply_from_home t ~home ~dst:d.d_node ~oid iv (Ok (d.d_grant, lease))
      end

(* Home side of a quota recall: bump the escrow epoch and ask every node
   holding delegated quota to surrender it. One recall runs at a time per
   object ([escrow_recalling] holds the outstanding yield count); nodes
   always answer a fresh-epoch recall, so the count reliably drains. *)
and maybe_recall_escrow t ~home ~oid =
  if Gdo.Directory.has_escrow t.gdo oid then begin
    let quotas = Gdo.Directory.escrow_quotas t.gdo oid in
    if quotas <> [] && not (Itbl.mem t.escrow_recalling (Oid.to_int oid)) then begin
      Itbl.replace t.escrow_recalling (Oid.to_int oid) (List.length quotas);
      let epoch = Gdo.Directory.escrow_begin_recall t.gdo oid in
      Dsm.Metrics.incr_escrow_recalls t.metrics;
      record_event t (fun () ->
          Dsm.Event.Escrow_recall { oid; node = home; nodes = List.length quotas; epoch });
      List.iter
        (fun (n, _, _) ->
          send_exec t ~mtype:Dsm.Wire.Escrow_recall ~src:home ~dst:n
            ~kind:Sim.Network.Control ~bytes:t.cfg.Config.control_msg_bytes ~tag:(tag_of oid)
            (fun () -> node_escrow_yield t ~node:n ~home ~oid ~epoch))
        quotas
    end
  end

(* Node side of a quota recall: surrender everything. The unreconciled
   delta goes home as a final reconcile, the units still held by
   uncommitted families are carried over to become home reservations
   (their rows move from [fe_local] to [fe_home], so their resolutions
   travel to the home), and the ledger zeroes — the fast path misses until
   a later request re-delegates. *)
and node_escrow_yield t ~node ~home ~oid ~epoch =
  let l = escrow_ledger t ~node oid in
  if epoch > l.el_epoch then begin
    l.el_epoch <- epoch;
    let carried = ref [] in
    Txn_id.Table.iter
      (fun f fe ->
        if Txn_tree.node_of t.tree f = node then
          match List.find_opt (fun (o, _, _, _) -> Oid.equal o oid) fe.fe_local with
          | Some (_, up, down, d) ->
              fe.fe_local <- List.filter (fun (o, _, _, _) -> not (Oid.equal o oid)) fe.fe_local;
              if not (List.exists (Oid.equal oid) fe.fe_home) then
                fe.fe_home <- oid :: fe.fe_home;
              carried := (f, up, down, d) :: !carried
          | None -> ())
      t.escrow_fams;
    let carried =
      List.sort (fun (a, _, _, _) (b, _, _, _) -> Txn_id.compare a b) !carried
    in
    let delta = l.el_pending and used_up = l.el_spent_up and used_down = l.el_spent_down in
    if delta <> 0 || used_up > 0 || used_down > 0 then
      record_escrow_op t (Serializability.E_reconcile { oid; node; delta; used_up; used_down });
    record_escrow_op t (Serializability.E_revoke { oid; node });
    List.iter
      (fun (f, up, down, _) ->
        if up > 0 then
          record_escrow_op t (Serializability.E_reserve { oid; family = f; delta = up });
        if down > 0 then
          record_escrow_op t (Serializability.E_reserve { oid; family = f; delta = -down }))
      carried;
    l.el_q_up <- 0;
    l.el_q_down <- 0;
    l.el_pending <- 0;
    l.el_spent_up <- 0;
    l.el_spent_down <- 0;
    l.el_commits <- 0;
    Dsm.Metrics.incr_escrow_yields t.metrics;
    record_event t (fun () -> Dsm.Event.Escrow_yield { oid; node; delta });
    let carried_net = List.map (fun (f, up, down, _) -> (f, up - down)) carried in
    let start () =
      process_escrow_yield t ~home ~oid ~node ~epoch ~delta ~used_up ~used_down
        ~carried:carried_net
    in
    if node = home then start ()
    else
      send_exec t ~mtype:Dsm.Wire.Escrow_yield ~src:node ~dst:home ~kind:Sim.Network.Control
        ~bytes:t.cfg.Config.control_msg_bytes ~tag:(tag_of oid) start
  end

(* Home receipt of a yield: reconcile, zero the node's quota, re-book the
   carried family units as home reservations, evict waiters whose wait now
   closes a cycle through a carried family (they get the usual deadlock
   refusal), and deliver any promoted grants. *)
and process_escrow_yield t ~home ~oid ~node ~epoch ~delta ~used_up ~used_down ~carried =
  Sim.Engine.schedule t.engine ~delay:t.cfg.Config.gdo_op_us (fun () ->
      let deliveries, victims =
        Gdo.Directory.escrow_yield t.gdo oid ~node ~epoch ~delta ~used_up ~used_down ~carried
      in
      (match Itbl.find_opt t.escrow_recalling (Oid.to_int oid) with
      | Some n when n <= 1 -> Itbl.remove t.escrow_recalling (Oid.to_int oid)
      | Some n -> Itbl.replace t.escrow_recalling (Oid.to_int oid) (n - 1)
      | None -> ());
      List.iter
        (fun (f, vnode) ->
          match Itbl.find_opt t.pending (okey oid f) with
          | None -> ()
          | Some iv ->
              Itbl.remove t.pending (okey oid f);
              reply_from_home t ~home ~dst:vnode ~oid iv (Error (Deadlock [ f ])))
        victims;
      List.iter (deliver_deferred_grant t ~home) deliveries)

(* Home side of a slow-path escrow reservation: run the admission test,
   and on admission ride the reply with a quota top-up toward the policy's
   [local_quota] on the requested side — the delegation that makes later
   calls at that node commit with zero messages. *)
let process_escrow_request t ~home ~requester ~family ~oid ~delta ~want_up ~want_down
    (iv : (bool * int * int) Sim.Engine.Ivar.t) =
  Sim.Engine.schedule t.engine ~delay:t.cfg.Config.gdo_op_us (fun () ->
      let result = Gdo.Directory.escrow_reserve t.gdo oid ~family ~node:requester ~delta in
      let admitted = result = Gdo.Directory.Escrow_admitted in
      record_event t (fun () ->
          Dsm.Event.Escrow_reserve { oid; family; node = requester; delta; admitted });
      let gu, gd =
        if admitted then begin
          Dsm.Metrics.incr_escrow_reserves t.metrics;
          record_escrow_op t (Serializability.E_reserve { oid; family; delta });
          let gu, gd =
            (* No delegation while a recall is draining: an in-flight yield
               zeroes the node's directory rows wholesale, so units granted
               now would be silently dropped when it lands — and the node's
               later reconcile of them would underflow the quota ledger. *)
            if
              (want_up > 0 || want_down > 0)
              && not (Itbl.mem t.escrow_recalling (Oid.to_int oid))
            then
              Gdo.Directory.escrow_delegate t.gdo oid ~node:requester ~up:want_up
                ~down:want_down
            else (0, 0)
          in
          if gu > 0 || gd > 0 then begin
            Dsm.Metrics.add_escrow_quota_units t.metrics (gu + gd);
            record_escrow_op t
              (Serializability.E_delegate { oid; node = requester; up = gu; down = gd });
            record_event t (fun () ->
                Dsm.Event.Escrow_delegate { oid; node = requester; up = gu; down = gd })
          end;
          (gu, gd)
        end
        else begin
          Dsm.Metrics.incr_escrow_refusals t.metrics;
          (0, 0)
        end
      in
      let fill () = Sim.Engine.Ivar.fill iv (admitted, gu, gd) in
      if home = requester then fill ()
      else
        send_exec t ~mtype:Dsm.Wire.Escrow_reply ~src:home ~dst:requester
          ~kind:Sim.Network.Control ~bytes:t.cfg.Config.control_msg_bytes ~tag:(tag_of oid)
          fill)

(* Fiber side of a slow-path reservation: one round trip to the home.
   Returns true when admitted; any delegated quota is installed into the
   node's ledger either way so a refused call still leaves the fast path
   armed for the next one. *)
let escrow_request t ~node ~family ~oid ~delta =
  let p = match t.escrow_params with Some p -> p | None -> assert false in
  let l = escrow_ledger t ~node oid in
  let want_up = if delta > 0 then max 0 (p.Dsm.Escrow.local_quota - l.el_q_up) else 0 in
  let want_down = if delta < 0 then max 0 (p.Dsm.Escrow.local_quota - l.el_q_down) else 0 in
  let home = home_of t oid in
  let iv = Sim.Engine.Ivar.create () in
  let epoch0 = l.el_epoch in
  let start () =
    process_escrow_request t ~home ~requester:node ~family ~oid ~delta ~want_up ~want_down iv
  in
  if home = node then start ()
  else
    send_exec t ~mtype:Dsm.Wire.Escrow_request ~src:node ~dst:home ~kind:Sim.Network.Control
      ~bytes:t.cfg.Config.control_msg_bytes ~tag:(tag_of oid) start;
  let admitted, gu, gd = Sim.Engine.Ivar.read iv in
  (* Epoch fence on the install: if a recall was processed while this fiber
     was blocked, the node has already yielded — its directory quota rows
     are wiped when that yield lands at the home, so installing the
     delegated units now would let the node spend quota the home no longer
     records (the next reconcile would underflow the quota ledger). Drop
     them; the admission itself is a home-side reservation and stays
     valid. *)
  if l.el_epoch = epoch0 then begin
    if gu > 0 then l.el_q_up <- l.el_q_up + gu;
    if gd > 0 then l.el_q_down <- l.el_q_down + gd
  end;
  if admitted then begin
    let fe = fam_escrow_of t family in
    if not (List.exists (Oid.equal oid) fe.fe_home) then fe.fe_home <- oid :: fe.fe_home
  end;
  admitted

(* Recall-before-write: a write acquisition reaching a home with leases
   outstanding (or a recall already running) parks until the recall clears.
   Only the first parked writer's family is excluded from the drain wait —
   it is the first continuation to reach the directory, so its own
   lease-backed read (if any) ends up protected by its impending write
   lock. *)
let gate_lease_write t ~home ~requester ~family ~oid ~block ~core
    (iv : reply Sim.Engine.Ivar.t) =
  let now = Sim.Engine.now t.engine in
  if
    Gdo.Lease.recall_in_progress t.lease_mgr oid
    || Gdo.Lease.outstanding t.lease_mgr oid ~now <> []
  then
    if not block then reply_from_home t ~home ~dst:requester ~oid iv (Error Busy)
    else begin
      let q =
        match Itbl.find_opt t.lease_blocked (Oid.to_int oid) with
        | Some q -> q
        | None ->
            let q = Queue.create () in
            Itbl.replace t.lease_blocked (Oid.to_int oid) q;
            q
      in
      Queue.add core q;
      match start_lease_recall t ~home ~oid ~excluded:(Some family) with
      | `Clear -> drain_lease_blocked t ~oid  (* every lease expired since the check *)
      | `Parked -> ()
    end
  else core ()

(* Executed at the GDO home when an acquire request arrives. [epoch] is
   the membership epoch stamped by the requester at send time; a request
   under a stale view — or reaching a node the current view says is not
   this partition's acting home — is refused, and the requester retries
   under the new regime. This is the request-side half of the split-brain
   fence. *)
let rec process_acquire t ~home ~requester ~family ~oid ~mode ~block ~epoch
    (iv : reply Sim.Engine.Ivar.t) =
  Sim.Engine.schedule t.engine ~delay:t.cfg.Config.gdo_op_us (fun () ->
      let p = Oid.to_int oid mod t.cfg.Config.node_count in
      (* A home that crashed between delivery and processing mutates
         nothing (its requesters were unblocked by the crash sweep); a
         request from a defunct family is fenced — nobody is waiting on
         its reply, and granting it would leak the lock forever. *)
      if t.crash_enabled && t.crashed.(home) then ()
      else if
        t.crash_enabled
        && (t.acting_home.(p) <> home
           || epoch < t.acting_epoch.(p)
           || t.declared_down.(home)
           || t.parked.(home))
      then begin
        (* Epoch fence: this node is not the partition's acting home under
           the current view, the request predates the view that installed
           the acting home, or the node is declared/parked and must not
           grant. Refuse; the requester re-routes under its caught-up
           view. *)
        Dsm.Metrics.incr_stale_epoch_rejects t.metrics;
        reply_from_home t ~home ~dst:requester ~oid iv (Error Crashed)
      end
      else if
        t.crash_enabled && home <> p
        && Sim.Engine.now t.engine < t.fence_until.(p)
      then begin
        (* Lease fence: a successor serving a dead home's partition must
           wait out every read lease the dead home granted — a stale
           lease-holder could otherwise read while the successor grants a
           conflicting write. Defer the whole acquire to the fence. *)
        Dsm.Metrics.incr_fence_deferrals t.metrics;
        let wait = t.fence_until.(p) -. Sim.Engine.now t.engine in
        Sim.Engine.schedule t.engine ~delay:wait (fun () ->
            process_acquire t ~home ~requester ~family ~oid ~mode ~block ~epoch iv)
      end
      else if family_defunct t family then begin
        (* Nothing is granted, but the requester may be a function-shipped
           fiber that outlived its family's abort (the invoker's transport
           gave up on the round trip): fail its wait so it unwinds and
           restores its writes instead of blocking forever. Without
           shipping the ivar is always already filled (the family could
           only become defunct after its one fiber was unblocked). *)
        if not (Sim.Engine.Ivar.is_filled iv) then Sim.Engine.Ivar.fill iv (Error Crashed)
      end
      else begin
        Gdo.Directory.note_cached t.gdo oid ~node:requester;
        let core () = process_acquire_core t ~home ~requester ~family ~oid ~mode ~block iv in
        if not t.lease_enabled then core ()
        else begin
          (match mode with
          | Lock.Read -> Gdo.Lease.note_read t.lease_mgr oid
          | Lock.Write -> Gdo.Lease.note_write t.lease_mgr oid);
          if Lock.equal mode Lock.Write then
            gate_lease_write t ~home ~requester ~family ~oid ~block ~core iv
          else core ()
        end
      end)

(* Executed at the GDO home when a release arrives. [items] lists the objects
   (with their dirty page info) whose home is this node; [from] is the
   releasing node, kept for the crash re-dispatch. *)
let rec process_release t ~home ~from ~family items =
  let n_items = List.length items in
  Sim.Engine.schedule t.engine ~delay:(t.cfg.Config.gdo_op_us *. float_of_int n_items)
    (fun () ->
      if t.crash_enabled && t.crashed.(home) then begin
        (* The home crashed between delivery and processing. A release must
           never be lost — the survivor's locks would leak — so re-dispatch
           it from the origin; current routing sends it to the acting
           home (or back here after the rejoin). *)
        if not t.crashed.(from) then gdo_release t ~node:from ~family items
      end
      else if
        t.crash_enabled
        && List.exists (fun (oid, _) -> home_of t oid <> home) items
      then begin
        (* Membership moved the partition between send and processing (a
           declaration or readmission re-routed it): re-dispatch from the
           origin so the release lands at the current acting home — a
           release must never be lost. *)
        if not t.crashed.(from) then gdo_release t ~node:from ~family items
      end
      else begin
        Dsm.Metrics.incr_gdo_releases t.metrics;
        List.iter
          (fun (oid, dirty) ->
            let deliveries = Gdo.Directory.release t.gdo oid ~family ~dirty in
            replicate_gdo_update t ~home ~oid;
            List.iter (deliver_deferred_grant t ~home) deliveries)
          items
      end)

(* Fire-and-forget global release of objects grouped by GDO home. [items] is
   (oid, dirty) with dirty = (page, version, node) list. An abandoned
   release message is re-dispatched rather than dropped (releases must not
   be lost); routing is re-evaluated each time, so the retry reaches the
   partition's current acting home. *)
and gdo_release t ~node ~family items =
  let by_home = Hashtbl.create 8 in
  List.iter
    (fun ((oid, _) as item) ->
      let home = home_of t oid in
      let cur = Option.value ~default:[] (Hashtbl.find_opt by_home home) in
      Hashtbl.replace by_home home (item :: cur))
    items;
  (* Ascending-home order, not hash order: the send sequence (and with it
     every downstream timestamp) must not depend on the hash seed. *)
  Hashtbl.fold (fun home items acc -> (home, items) :: acc) by_home []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  |> List.iter (fun (home, items) ->
         if home = node then process_release t ~home ~from:node ~family items
         else if t.batching.Dsm.Batching.coalesce_release && not t.crash_enabled then
           (* Under crash injection coalescing stands down: a commit's
              releases must leave the node atomically with the commit point,
              or a crash inside the flush window could swallow a committed
              family's releases and leak its locks (see [Batching]). *)
           queue_release t ~node ~home ~family items
         else send_release t ~node ~home ~family items)

(* One Release message carrying one family's per-home batch — the
   uncombined wire format. *)
and send_release t ~node ~home ~family items =
  let bytes =
    t.cfg.Config.control_msg_bytes
    + List.fold_left (fun acc (_, dirty) -> acc + 8 + (8 * List.length dirty)) 0 items
  in
  send_reliable t ~mtype:Dsm.Wire.Release ~src:node ~dst:home ~kind:Sim.Network.Control
    ~bytes ~tag:(-1)
    ~on_abandon:(fun () ->
      if not (t.crash_enabled && t.crashed.(node)) then gdo_release t ~node ~family items)
    (fun () -> process_release t ~home ~from:node ~family items)

(* Coalescing: park the family's batch and flush the channel after
   [release_flush_us]. A zero window still combines — the flush event is
   scheduled behind every already-queued event of the current instant
   (engine ties break by insertion order), so families committing at the
   same simulated time share one Release message. *)
and queue_release t ~node ~home ~family items =
  let key = (node, home) in
  let q =
    match Hashtbl.find_opt t.pending_releases key with
    | Some q -> q
    | None ->
        let q = ref [] in
        Hashtbl.add t.pending_releases key q;
        q
  in
  q := (family, items) :: !q;
  if not (Hashtbl.mem t.release_flush_armed key) then begin
    Hashtbl.replace t.release_flush_armed key ();
    Sim.Engine.schedule t.engine ~delay:t.batching.Dsm.Batching.release_flush_us (fun () ->
        flush_releases t ~node ~home)
  end

and flush_releases t ~node ~home =
  Hashtbl.remove t.release_flush_armed (node, home);
  let batches =
    match Hashtbl.find_opt t.pending_releases (node, home) with
    | None -> []
    | Some q ->
        let b = List.rev !q in
        q := [];
        b
  in
  match batches with
  | [] -> ()
  | [ (family, items) ] -> send_release t ~node ~home ~family items
  | batches ->
      let k = List.length batches in
      Dsm.Metrics.add_releases_coalesced t.metrics (k - 1);
      record_event t (fun () -> Dsm.Event.Release_coalesced { node; home; families = k });
      (* One control header for the combined message; every family beyond
         the first adds its 8-byte id on top of its items — cheaper than
         the (k-1) headers the separate sends would have paid. *)
      let bytes =
        t.cfg.Config.control_msg_bytes
        + List.fold_left
            (fun acc (_, items) ->
              List.fold_left
                (fun acc (_, dirty) -> acc + 8 + (8 * List.length dirty))
                acc items)
            0 batches
        + (8 * (k - 1))
      in
      send_reliable t ~mtype:Dsm.Wire.Release ~src:node ~dst:home ~kind:Sim.Network.Control
        ~bytes ~tag:(-1)
        ~on_abandon:(fun () ->
          if not (t.crash_enabled && t.crashed.(node)) then
            List.iter (fun (family, items) -> gdo_release t ~node ~family items) batches)
        (fun () ->
          List.iter
            (fun (family, items) -> process_release t ~home ~from:node ~family items)
            batches)

(* Fiber-side global acquisition: route to the home, block until the reply. *)
let gdo_acquire t ~node ~family ~oid ~mode ~block : reply =
  let key = okey oid family in
  match Itbl.find_opt t.inflight key with
  | Some iv -> Sim.Engine.Ivar.read iv
  | None ->
      let iv = Sim.Engine.Ivar.create () in
      Itbl.replace t.inflight key iv;
      let home = home_of t oid in
      let epoch = if t.crash_enabled then t.epoch_view.(node) else 0 in
      let start () =
        process_acquire t ~home ~requester:node ~family ~oid ~mode ~block ~epoch iv
      in
      if home = node then start ()
      else
        send_reliable t ~mtype:Dsm.Wire.Acquire_request ~src:node ~dst:home
          ~kind:Sim.Network.Control ~bytes:t.cfg.Config.control_msg_bytes ~tag:(tag_of oid)
          ~on_abandon:(fun () ->
            if not (Sim.Engine.Ivar.is_filled iv) then
              Sim.Engine.Ivar.fill iv (Error Crashed))
          start;
      let r = Sim.Engine.Ivar.read iv in
      Itbl.remove t.inflight key;
      r

(* ------------------------------------------------------------------ *)
(* Crash recovery: window entry/exit, heartbeat failure detection,
   dead-family reclamation at the directory, GDO home failover. Armed by
   [run] only when crash windows are configured, so crash-free runs are
   byte-identical to the pre-recovery runtime.                          *)

(* Conservative state reconstruction, traffic side: the successor
   re-confirms the holders of every entry of the partition it takes over.
   In-process the directory structure is shared, so only the messages are
   modelled; the genuinely ambiguous families — those of the crashed home
   itself — are aborted by the dead-family eviction. *)
let send_failover_confirms t ~home ~successor =
  let dests = Hashtbl.create 8 in
  List.iter
    (fun oid ->
      if Oid.to_int oid mod t.cfg.Config.node_count = home then
        List.iter
          (fun (h : Gdo.Directory.holder) ->
            if h.node <> successor && not t.crashed.(h.node) then Hashtbl.replace dests h.node ())
          (Gdo.Directory.holders t.gdo oid))
    (Catalog.oids t.catalog);
  (* Sorted, not hash order: the send sequence must be hash-seed
     independent. *)
  Hashtbl.fold (fun dst () acc -> dst :: acc) dests []
  |> List.sort Int.compare
  |> List.iter (fun dst ->
         send_exec t ~mtype:Dsm.Wire.Failover_confirm ~src:successor ~dst
           ~kind:Sim.Network.Control ~bytes:t.cfg.Config.control_msg_bytes ~tag:(-1)
           (fun () -> ()))

(* Re-derive, for every partition, the node currently serving it: the home
   itself while not *declared* dead; with replication, a declared home's
   first undeclared ring successor (a replica site) until the readmission
   or rejoin. Failover keys off the quorum declaration, never off ground
   truth — the gap between a crash and its declaration is a real
   availability gap, and a false declaration really does move the
   partition (the epoch fence keeps that safe). Each change stamps the
   partition with the current membership epoch and appends to the
   acting-home log the split-brain auditor checks. Survivors re-route
   through [home_of] from the next send on — the sim's stand-in for the
   client-side timeout-and-redirect a real deployment would run. *)
let recompute_acting_homes t =
  let n = t.cfg.Config.node_count in
  for p = 0 to n - 1 do
    let serving =
      if not t.declared_down.(p) then p
      else if t.cfg.Config.gdo_replicas = 0 then p
      else
        let rec scan i =
          if i > t.cfg.Config.gdo_replicas then p  (* every replica declared too *)
          else
            let c = (p + i) mod n in
            if not t.declared_down.(c) then c else scan (i + 1)
        in
        scan 1
    in
    if serving <> t.acting_home.(p) then begin
      t.acting_home.(p) <- serving;
      t.acting_epoch.(p) <- t.membership_epoch;
      t.membership_log <- (t.membership_epoch, p, serving) :: t.membership_log;
      if serving <> p then begin
        Dsm.Metrics.incr_failovers t.metrics;
        record_event t (fun () -> Dsm.Event.Failover { home = p; successor = serving });
        send_failover_confirms t ~home:p ~successor:serving
      end
      else record_event t (fun () -> Dsm.Event.Failback { home = p })
    end
  done

(* Reclaim a dead (or freshly restarted) node's residue at the directory:
   evict its doomed families — releasing held locks, draining wait-queue
   and waits-for entries, promoting queued survivors — drop its leases,
   and (while it is down) repoint page-map entries stranded on it to a
   surviving copy of the same committed version. *)
let reclaim_dead_node t ~node:s ~repoint =
  let dead f =
    Txn_id.Table.mem t.doomed f
    && (Txn_tree.node_of t.tree f = s
       ||
       (* A family rooted elsewhere but with a function-shipped executor
          registered at the dead node is just as gone. *)
       t.ship_enabled
       &&
       match Txn_id.Table.find_opt t.ship_states f with
       | Some st -> List.exists (fun (n, _) -> n = s) st.exec_sites
       | None -> false)
  in
  let evicted, deliveries = Gdo.Directory.evict_families t.gdo ~dead in
  if t.lease_enabled then
    List.iter
      (fun oid ->
        (* A recall that was waiting only on the dead node cleared: run the
           writes parked behind it, exactly as after a final yield. *)
        note_recall_resolved t ~oid;
        drain_lease_blocked t ~oid)
      (Gdo.Lease.evict_node t.lease_mgr ~node:s);
  let repointed =
    if not repoint then 0
    else
      Gdo.Directory.repoint_pages t.gdo ~dead_node:s ~find_copy:(fun oid ~page ~version ->
          let rec scan i =
            if i >= t.cfg.Config.node_count then None
            else if
              i <> s
              && (not t.crashed.(i))
              && Dsm.Page_store.version t.stores.(i) oid ~page = version
            then Some i
            else scan (i + 1)
          in
          scan 0)
  in
  if evicted > 0 || repointed > 0 then begin
    Dsm.Metrics.add_families_reclaimed t.metrics evicted;
    record_event t (fun () -> Dsm.Event.Reclaim { node = s; families = evicted; repointed })
  end;
  (* Queued survivors receive their deferred grants from the acting home. *)
  List.iter
    (fun (dv : Gdo.Directory.delivery) ->
      deliver_deferred_grant t ~home:(home_of t dv.d_grant.Gdo.Directory.g_oid) dv)
    deliveries

(* Announce the current membership epoch from [src]. The View_change
   message makes the bump explicit on the wire; every other delivered
   remote message also max-merges the sender's view at the receiver (see
   the delivery hook), so a dropped announcement only delays convergence,
   never prevents it. *)
let broadcast_view_change t ~src =
  let epoch = t.membership_epoch in
  if epoch > t.epoch_view.(src) then t.epoch_view.(src) <- epoch;
  for dst = 0 to t.cfg.Config.node_count - 1 do
    if dst <> src && not t.crashed.(dst) then
      send_exec t ~mtype:Dsm.Wire.View_change ~src ~dst ~kind:Sim.Network.Control
        ~bytes:t.cfg.Config.control_msg_bytes ~tag:(-1)
        (fun () -> if epoch > t.epoch_view.(dst) then t.epoch_view.(dst) <- epoch)
  done

(* The quorum size right now: a majority of the nodes not currently
   declared dead. Degenerate clusters (<= 2 nodes) use 1 — there is no
   third observer to corroborate, and requiring 2 of 2 would let a single
   crash block its own declaration forever. *)
let quorum t =
  let n = t.cfg.Config.node_count in
  if n <= 2 then 1
  else begin
    let live = ref 0 in
    for i = 0 to n - 1 do
      if not t.declared_down.(i) then incr live
    done;
    (!live / 2) + 1
  end

(* A quorum of live observers corroborated the suspicion: declare the
   node dead. The declaration is a membership decision, not ground truth
   — a falsely declared node (partitioned away, not crashed) is fenced
   out by the epoch bump until one of its messages is delivered again
   (see [readmit], the rejoin path that never wipes state). *)
let declare_dead t ~suspect:s ~by:o =
  let now = Sim.Engine.now t.engine in
  let inc = t.incarnation.(s) in
  Hashtbl.replace t.declared_dead (s, inc) ();
  t.declared_down.(s) <- true;
  Dsm.Metrics.incr_nodes_declared_dead t.metrics;
  (* Ground truth is consulted for METRICS ONLY — the declaration itself
     never reads [t.crashed]. *)
  if not t.crashed.(s) then Dsm.Metrics.incr_false_suspicions t.metrics;
  (* Declaration latency: from the start of the suspect's silence (the
     declarer's last liveness proof) to the quorum verdict — the window
     during which a genuinely dead node's partition is unavailable.
     First-suspicion-to-verdict would read ~0 here: detectors sweep on
     synchronized ticks, so suspicion and quorum often land in the same
     instant. *)
  Dsm.Metrics.record_declaration_latency_us t.metrics
    (now -. Sim.Failure_detector.last_heard t.detectors.(o) ~node:s);
  record_event t (fun () -> Dsm.Event.Node_dead { node = s; incarnation = inc; by = o });
  (* Gossip the final verdict as detector hints, so every survivor's view
     converges without waiting out its own timeout. A later heartbeat
     from the node clears the hint (Failure_detector.heartbeat), so a
     readmitted node does not flap. *)
  for dst = 0 to t.cfg.Config.node_count - 1 do
    if dst <> o && not t.crashed.(dst) then
      send_exec t ~mtype:Dsm.Wire.Suspect ~src:o ~dst ~kind:Sim.Network.Control
        ~bytes:t.cfg.Config.control_msg_bytes ~tag:(-1)
        (fun () -> Sim.Failure_detector.hint t.detectors.(dst) ~node:s)
  done;
  (* New membership regime: requests stamped under the old view —
     including any from the declared node itself — are refused by the
     acting homes until their senders catch up. *)
  t.membership_epoch <- t.membership_epoch + 1;
  broadcast_view_change t ~src:o;
  (* Lease-expiry fencing: the successor may serve the dead home's
     partition only once every read lease that home granted has provably
     expired or been recalled. With leases off this is [now] — no wait. *)
  let fence = ref now in
  List.iter
    (fun oid ->
      if Oid.to_int oid mod t.cfg.Config.node_count = s then
        fence := Float.max !fence (Gdo.Lease.fence_deadline t.lease_mgr oid ~now))
    (Catalog.oids t.catalog);
  t.fence_until.(s) <- !fence;
  (* Acquires already routed to partitions the dead node was serving
     would otherwise wait out the full capped retransmit schedule; fail
     them now so their families retry against the new acting homes.
     Computed against the pre-failover routing, filled after it. *)
  let stranded =
    Itbl.fold
      (fun key iv acc ->
        let oid_i = key lsr 42 in
        if t.acting_home.(oid_i mod t.cfg.Config.node_count) = s then iv :: acc else acc)
      t.inflight []
  in
  recompute_acting_homes t;
  List.iter
    (fun iv ->
      if not (Sim.Engine.Ivar.is_filled iv) then Sim.Engine.Ivar.fill iv (Error Crashed))
    stranded;
  (* Directory reclamation of the dead node's residue waits for the lease
     fence, and stands down unless the node is genuinely crashed and
     still declared under this incarnation: a live node's locks are never
     stolen, which is exactly what makes a false declaration harmless to
     safety (doomed families are the only evictees; a false declaration
     dooms nothing). *)
  let delay = Float.max t.cfg.Config.gdo_op_us (!fence -. now) in
  Sim.Engine.schedule t.engine ~delay (fun () ->
      if t.crashed.(s) && t.declared_down.(s) && t.incarnation.(s) = inc then
        reclaim_dead_node t ~node:s ~repoint:true)

(* Record [observer]'s vote that [suspect] is dead, and declare on
   quorum. A vote is recorded at most once per (suspect, incarnation,
   observer); only votes from observers not themselves declared count. *)
let record_vote t ~suspect:s ~observer:o =
  let key = (s, t.incarnation.(s)) in
  if not (Hashtbl.mem t.declared_dead key) then begin
    let tally =
      match Hashtbl.find_opt t.votes key with
      | Some tl -> tl
      | None ->
          let tl = Hashtbl.create 4 in
          Hashtbl.add t.votes key tl;
          tl
    in
    if not (Hashtbl.mem tally o) then begin
      Hashtbl.replace tally o ();
      Dsm.Metrics.incr_quorum_votes t.metrics
    end;
    let live_votes =
      Hashtbl.fold (fun ob () acc -> if t.declared_down.(ob) then acc else acc + 1) tally 0
    in
    if live_votes >= quorum t then declare_dead t ~suspect:s ~by:o
  end

(* One detector sweep for [observer]: vote for every current suspect and
   gossip the suspicion to the other live nodes. A receiver corroborates
   ONLY when its own detector independently agrees — gossip never feeds a
   detector, or a single partitioned-away observer could manufacture a
   quorum by itself. The gossip is re-sent every sweep until the
   declaration (or until the suspicion clears), so votes lost to the very
   partition under suspicion are re-offered after the heal. *)
let check_suspects t ~observer:o =
  let now = Sim.Engine.now t.engine in
  List.iter
    (fun s ->
      let inc = t.incarnation.(s) in
      let seen_key = (o, s, inc) in
      if not (Hashtbl.mem t.suspected_seen seen_key) then begin
        Hashtbl.replace t.suspected_seen seen_key ();
        record_event t (fun () -> Dsm.Event.Node_suspected { node = s; by = o })
      end;
      if not (Hashtbl.mem t.declared_dead (s, inc)) then begin
        record_vote t ~suspect:s ~observer:o;
        if not (Hashtbl.mem t.declared_dead (s, inc)) then
          for dst = 0 to t.cfg.Config.node_count - 1 do
            if dst <> o && dst <> s && not t.crashed.(dst) then
              send_exec t ~mtype:Dsm.Wire.Suspect ~src:o ~dst ~kind:Sim.Network.Control
                ~bytes:t.cfg.Config.control_msg_bytes ~tag:(-1)
                (fun () ->
                  if
                    (not t.crashed.(dst))
                    && Sim.Failure_detector.is_suspect t.detectors.(dst) ~node:s
                         ~now:(Sim.Engine.now t.engine)
                  then record_vote t ~suspect:s ~observer:dst)
          done
      end)
    (Sim.Failure_detector.suspects t.detectors.(o) ~now)

(* A message from a declared-dead, not-actually-crashed node was
   delivered: the declaration was false. Readmit the node — clear the
   declaration, bump its incarnation (the spent (node, incarnation) key
   keeps the old regime's stragglers fenced), announce a new view and
   hand its partitions back. Nothing is wiped: reclamation only ever runs
   against genuinely crashed nodes, so a false declaration costs
   availability, never state. *)
let readmit t ~node:s =
  t.declared_down.(s) <- false;
  t.incarnation.(s) <- t.incarnation.(s) + 1;
  t.fence_until.(s) <- 0.0;
  Dsm.Metrics.incr_node_readmissions t.metrics;
  record_event t (fun () ->
      Dsm.Event.Node_readmitted { node = s; incarnation = t.incarnation.(s) });
  t.membership_epoch <- t.membership_epoch + 1;
  broadcast_view_change t ~src:s;
  recompute_acting_homes t

(* Minority-side self-parking: a node whose own detector can reach fewer
   than a majority of the eligible (undeclared) nodes stops serving the
   directory and starts no new roots — it may be on the minority side of
   a partition, where continuing to grant is what the majority side's
   failover would turn into a split brain. Re-evaluated every detector
   sweep; a symmetric even split parks both sides, and everyone resumes
   at the heal. Only meaningful with >= 3 nodes: a 2-node cluster has no
   majority to protect. *)
let unpark t ~node:s =
  if t.parked.(s) then begin
    t.parked.(s) <- false;
    (match t.park_ivars.(s) with
    | Some iv ->
        t.park_ivars.(s) <- None;
        if not (Sim.Engine.Ivar.is_filled iv) then Sim.Engine.Ivar.fill iv ()
    | None -> ());
    record_event t (fun () -> Dsm.Event.Node_parked { node = s; parked = false })
  end

let update_parking t ~node:s =
  if t.cfg.Config.node_count >= 3 && (not t.crashed.(s)) && not t.declared_down.(s) then begin
    let n = t.cfg.Config.node_count in
    let now = Sim.Engine.now t.engine in
    let eligible = ref 0 in
    for i = 0 to n - 1 do
      if not t.declared_down.(i) then incr eligible
    done;
    let reachable = ref 0 in
    for i = 0 to n - 1 do
      if
        (not t.declared_down.(i))
        && (i = s || not (Sim.Failure_detector.is_suspect t.detectors.(s) ~node:i ~now))
      then incr reachable
    done;
    if !reachable < (!eligible / 2) + 1 then begin
      if not t.parked.(s) then begin
        t.parked.(s) <- true;
        t.park_ivars.(s) <- Some (Sim.Engine.Ivar.create ());
        Dsm.Metrics.incr_node_parks t.metrics;
        record_event t (fun () -> Dsm.Event.Node_parked { node = s; parked = true })
      end
    end
    else unpark t ~node:s
  end

(* Fail-stop crash: wipe the node's volatile state and unblock every
   operation that can no longer complete, so doomed fibers unwind instead
   of stalling the engine. *)
let crash_enter t ~node:d =
  record_event t (fun () -> Dsm.Event.Node_crash { node = d; incarnation = t.incarnation.(d) });
  t.crashed.(d) <- true;
  t.rejoin.(d) <- Some (Sim.Engine.Ivar.create ());
  (* Doom every family executing at the node — rooted here, or with a
     function-shipped executor registered here (its uncommitted writes in
     this store are about to be wiped): ids are never reused, so the mark
     permanently fences the family's pre-crash stragglers. *)
  Txn_id.Table.iter
    (fun f () ->
      if
        Txn_tree.node_of t.tree f = d
        || t.ship_enabled
           &&
           (match Txn_id.Table.find_opt t.ship_states f with
           | Some st -> List.exists (fun (n, _) -> n = d) st.exec_sites
           | None -> false)
      then Txn_id.Table.replace t.doomed f ())
    t.live_roots;
  (* Unblock global acquires that cannot complete: requests by doomed
     families and requests routed to this node as acting home (checked
     before the failover recompute below, matching send-time routing). *)
  let stuck =
    Itbl.fold
      (fun key iv acc ->
        let oid_i = key lsr 42 and fam = Txn_id.of_int (key land ((1 lsl 42) - 1)) in
        if
          Txn_id.Table.mem t.doomed fam
          || t.acting_home.(oid_i mod t.cfg.Config.node_count) = d
        then iv :: acc
        else acc)
      t.inflight []
  in
  List.iter
    (fun iv ->
      if not (Sim.Engine.Ivar.is_filled iv) then Sim.Engine.Ivar.fill iv (Error Crashed))
    stuck;
  (* Complete doomed families' transfer waits (awaiters re-check doom). *)
  Itbl.iter
    (fun key iv ->
      let fam = Txn_id.of_int (key land ((1 lsl 42) - 1)) in
      if Txn_id.Table.mem t.doomed fam && not (Sim.Engine.Ivar.is_filled iv) then
        Sim.Engine.Ivar.fill iv ())
    t.transfers;
  (* Fail page fetches served by the crashed node; complete those of its
     doomed families. *)
  List.iter
    (fun fw ->
      if fw.fw_src = d || Txn_id.Table.mem t.doomed fw.fw_family then begin
        if fw.fw_src = d then fw.fw_failed <- true;
        if not (Sim.Engine.Ivar.is_filled fw.fw_iv) then Sim.Engine.Ivar.fill fw.fw_iv ()
      end)
    t.fetch_waits;
  (* Fail ship round trips headed to the crashed site, and those of doomed
     families (the invoker re-checks doom when it wakes). *)
  List.iter
    (fun sw ->
      if
        (sw.sw_site = d || Txn_id.Table.mem t.doomed sw.sw_family)
        && not (Sim.Engine.Ivar.is_filled sw.sw_iv)
      then Sim.Engine.Ivar.fill sw.sw_iv Ship_crashed)
    t.ship_waits;
  (* Volatile-state loss: the page cache keeps only what the page map
     records as durable here (the node owns the newest published version);
     every other copy is gone until re-fetched. *)
  List.iter
    (fun oid ->
      let page_nodes, page_versions = Gdo.Directory.page_map t.gdo oid in
      Array.iteri
        (fun p owner ->
          if owner = d then
            Dsm.Page_store.restore t.stores.(d) oid ~page:p ~version:page_versions.(p)
          else Dsm.Page_store.restore t.stores.(d) oid ~page:p ~version:Dsm.Page_store.absent)
        page_nodes)
    (Catalog.oids t.catalog);
  (* The lease cache is volatile too, and the method cache dies with it.
     The fresh lease cache needs the invalidation hook re-wired — the
     subscription lived in the object just discarded. *)
  t.lease_caches.(d) <- Gdo.Lease.Cache.create ();
  if t.cache_enabled then begin
    let dropped = Dsm.Method_cache.clear t.method_caches.(d) in
    if dropped > 0 then begin
      Dsm.Metrics.add_cache_invalidations t.metrics dropped;
      record_event t (fun () ->
          Dsm.Event.Cache_invalidate { oid = None; node = d; entries = dropped })
    end;
    register_cache_invalidation t ~node:d
  end;
  (* So are deferred transport acks: the crashed node forgets them; the
     original senders retransmit and are re-acked after the rejoin. Armed
     flush timers fire harmlessly on the emptied channels. *)
  if t.batch_acks then
    Hashtbl.iter (fun (src, _) q -> if src = d then q := []) t.pending_acks;
  (* No failover here: the partition moves only at the quorum declaration
     (see [declare_dead]) — ground truth never drives membership. A parked
     node that crashes is force-unparked so waiters re-check and land on
     the rejoin wait instead. *)
  unpark t ~node:d

(* Window end: the node rejoins under a fresh incarnation, runs its
   restart recovery scan, and parked roots resume. *)
let crash_rejoin t ~node:d =
  t.crashed.(d) <- false;
  t.incarnation.(d) <- t.incarnation.(d) + 1;
  record_event t (fun () ->
      Dsm.Event.Node_restart { node = d; incarnation = t.incarnation.(d) });
  (* Stand-in for the rejoin announcement a restarted node would broadcast:
     refresh detector state directly so the node is neither re-declared nor
     stuck seeing everyone else as silent. *)
  let now = Sim.Engine.now t.engine in
  Array.iteri
    (fun o det -> if o <> d then Sim.Failure_detector.heartbeat det ~node:d ~now)
    t.detectors;
  for p = 0 to t.cfg.Config.node_count - 1 do
    if p <> d then Sim.Failure_detector.heartbeat t.detectors.(d) ~node:p ~now
  done;
  if t.declared_down.(d) then begin
    t.declared_down.(d) <- false;
    t.fence_until.(d) <- 0.0;
    t.membership_epoch <- t.membership_epoch + 1;
    broadcast_view_change t ~src:d
  end;
  recompute_acting_homes t;
  (* Restart recovery: if the window was shorter than the suspect timeout
     the node was never declared dead, so its doomed families' directory
     residue is still in place — the restarted node scans and evicts it.
     Pages are not repointed: this node's durable copies are live again. *)
  Sim.Engine.schedule t.engine ~delay:t.cfg.Config.gdo_op_us (fun () ->
      reclaim_dead_node t ~node:d ~repoint:false);
  match t.rejoin.(d) with
  | Some iv ->
      t.rejoin.(d) <- None;
      if not (Sim.Engine.Ivar.is_filled iv) then Sim.Engine.Ivar.fill iv ()
  | None -> ()

(* Schedule the crash windows and start the heartbeat loops. Heartbeats
   run from time 0 to a fixed horizon past the last window (plus the
   suspect timeout): late enough that any crash is detected and declared,
   bounded so the event queue drains and the run terminates. *)
let arm_crash_machinery t =
  let cfg = t.cfg in
  (* Epoch piggybacking and message-driven readmission: every delivered
     remote message max-merges the sender's membership view into the
     receiver's, and a delivery from a declared-dead node that is not in
     fact crashed is living proof the declaration was false — readmit it.
     Installed here so fault-free runs keep the inert default hook. *)
  t.deliver_hook <-
    (fun ~src ~dst ->
      if t.epoch_view.(src) > t.epoch_view.(dst) then
        t.epoch_view.(dst) <- t.epoch_view.(src);
      if t.declared_down.(src) && not t.crashed.(src) then readmit t ~node:src);
  let windows =
    match cfg.Config.faults with Some f -> Sim.Fault.crash_windows f | None -> []
  in
  let link_windows =
    match cfg.Config.faults with Some f -> f.Sim.Fault.link_windows | None -> []
  in
  List.iter
    (fun (w : Sim.Fault.window) ->
      Sim.Engine.schedule t.engine ~delay:w.Sim.Fault.w_from_us (fun () ->
          if not t.crashed.(w.Sim.Fault.w_node) then crash_enter t ~node:w.Sim.Fault.w_node);
      Sim.Engine.schedule t.engine ~delay:w.Sim.Fault.w_until_us (fun () ->
          if t.crashed.(w.Sim.Fault.w_node) then crash_rejoin t ~node:w.Sim.Fault.w_node))
    windows;
  let horizon =
    Float.max
      (List.fold_left (fun acc w -> Float.max acc w.Sim.Fault.w_until_us) 0.0 windows)
      (List.fold_left
         (fun acc (lw : Sim.Fault.link_window) -> Float.max acc lw.Sim.Fault.lw_until_us)
         0.0 link_windows)
    +. cfg.Config.suspect_timeout_us
    +. (2.0 *. cfg.Config.heartbeat_interval_us)
  in
  let n = cfg.Config.node_count in
  let rec tick s =
    Sim.Engine.schedule t.engine ~delay:cfg.Config.heartbeat_interval_us (fun () ->
        if Sim.Engine.now t.engine <= horizon then begin
          if not t.crashed.(s) then begin
            let now = Sim.Engine.now t.engine in
            for dst = 0 to n - 1 do
              if dst <> s then
                if
                  t.batch_heartbeat
                  && t.last_traffic.((s * n) + dst) > now -. cfg.Config.heartbeat_interval_us
                then begin
                  (* The channel carried a message within the last period:
                     its delivery already refreshed dst's detector (the
                     receive handler treats any delivery as a liveness
                     proof), so the periodic heartbeat is redundant.
                     Accounted as a 0-message/0-byte rider so the
                     suppression stays visible in the ledger. *)
                  Dsm.Metrics.incr_heartbeats_suppressed t.metrics;
                  Dsm.Metrics.record_rider t.metrics ~mtype:Dsm.Wire.Heartbeat ~count:1
                    ~bytes:0;
                  record_event t (fun () ->
                      Dsm.Event.Heartbeat_suppressed { src = s; dst })
                end
                else
                  send_exec t ~mtype:Dsm.Wire.Heartbeat ~src:s ~dst ~kind:Sim.Network.Control
                    ~bytes:cfg.Config.control_msg_bytes ~tag:(-1)
                    (fun () ->
                      Sim.Failure_detector.heartbeat t.detectors.(dst) ~node:s
                        ~now:(Sim.Engine.now t.engine))
            done;
            check_suspects t ~observer:s;
            update_parking t ~node:s
          end;
          tick s
        end
        else unpark t ~node:s)
  in
  for s = 0 to n - 1 do
    tick s
  done

(* ------------------------------------------------------------------ *)
(* Page movement (Algorithm 4.5 and demand fetches).                   *)

(* Group pages by the node holding their newest copy, per the grant. *)
let group_by_source ~node ~oid (grant : Gdo.Directory.grant) pages =
  let by_src = Hashtbl.create 4 in
  List.iter
    (fun p ->
      let src = grant.Gdo.Directory.g_page_nodes.(p) in
      if src = node then
        invalid_arg
          (Format.asprintf "Runtime: page %d of %a maps to the fetching node" p Oid.pp oid);
      let cur = Option.value ~default:[] (Hashtbl.find_opt by_src src) in
      Hashtbl.replace by_src src (p :: cur))
    pages;
  (* Ascending-source order, not hash order: the parallel fetches are sent
     in list order, so group order must be hash-seed independent. *)
  Hashtbl.fold (fun src ps acc -> (src, List.rev ps) :: acc) by_src []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

(* Fetch the given pages from their source nodes, in parallel, and install
   them locally. Blocks until every group has arrived — or, under crash
   injection, until the wait is failed: every group is registered in
   [t.fetch_waits] so a crash of either endpoint (or a transport give-up on
   either leg) fills its ivar instead of stalling the fiber. A failed
   fetch aborts the family: a doomed one unwinds with Crashed_abort, a
   survivor retries — by then the page map has been repointed to a live
   copy or the source has rejoined. *)
let fetch_groups t ~family ~node ~oid groups =
  check_crashed t ~txn_root:family;
  let cfg = t.cfg in
  let join =
    List.map
      (fun (src, pages) ->
        let iv = Sim.Engine.Ivar.create () in
        let fw = { fw_iv = iv; fw_family = family; fw_src = src; fw_failed = false } in
        if t.crash_enabled then t.fetch_waits <- fw :: t.fetch_waits;
        let fail () =
          fw.fw_failed <- true;
          if not (Sim.Engine.Ivar.is_filled iv) then Sim.Engine.Ivar.fill iv ()
        in
        let n_pages = List.length pages in
        let req_bytes = cfg.Config.control_msg_bytes + (4 * n_pages) in
        let reply_bytes = n_pages * (cfg.Config.page_size + cfg.Config.page_header_bytes) in
        let serve () =
          (* At the source: look the pages up, then ship them. *)
          Sim.Engine.schedule t.engine ~delay:cfg.Config.page_service_us (fun () ->
              if t.crash_enabled && t.crashed.(src) then ()
              else
                let copies =
                  List.map (fun p -> (p, Dsm.Page_store.version t.stores.(src) oid ~page:p)) pages
                in
                let install () =
                  List.iter
                    (fun (p, v) -> Dsm.Page_store.receive t.stores.(node) oid ~page:p ~version:v)
                    copies;
                  if not (Sim.Engine.Ivar.is_filled iv) then Sim.Engine.Ivar.fill iv ()
                in
                send_reliable t ~mtype:Dsm.Wire.Page_reply ~src ~dst:node ~kind:Sim.Network.Data
                  ~bytes:reply_bytes ~tag:(tag_of oid) ~on_abandon:fail install)
        in
        send_reliable t ~mtype:Dsm.Wire.Page_request ~src:node ~dst:src
          ~kind:Sim.Network.Control ~bytes:req_bytes ~tag:(tag_of oid) ~on_abandon:fail serve;
        (fw, iv))
      groups
  in
  List.iter (fun (_, iv) -> Sim.Engine.Ivar.read iv) join;
  if t.crash_enabled then begin
    t.fetch_waits <-
      List.filter (fun fw -> not (List.exists (fun (fw', _) -> fw' == fw) join)) t.fetch_waits;
    check_crashed t ~txn_root:family;
    if List.exists (fun (fw, _) -> fw.fw_failed) join then raise Family_abort
  end

(* Acquisition-time transfer: what moves depends on the protocol. *)
let transfer_on_acquire t ~family ~node ~oid ~(grant : Gdo.Directory.grant) ~predicted =
  let pages = Array.length grant.Gdo.Directory.g_page_nodes in
  let local_version p = Dsm.Page_store.version t.stores.(node) oid ~page:p in
  let set =
    Dsm.Protocol.transfer_set (protocol_for t oid) ~page_count:pages
      ~page_nodes:grant.Gdo.Directory.g_page_nodes
      ~page_versions:grant.Gdo.Directory.g_page_versions ~local_version ~node ~predicted
  in
  if set <> [] then begin
    record_event t (fun () ->
        let n = List.length set in
        Dsm.Event.Transfer
          { oid; node; pages = n;
            bytes = n * (t.cfg.Config.page_size + t.cfg.Config.page_header_bytes) });
    fetch_groups t ~family ~node ~oid (group_by_source ~node ~oid grant set)
  end

(* Make sure the pages an access touches are up to date locally, fetching on
   demand when the protocol allows it (LOTEC's lazy fetch; RC-nested cold
   pages). For COTEC/OTEC a stale page here is a protocol bug. [predicted]
   is the running method's predicted access set, used by the
   [aggregate_fetch] batching feature to widen the round. *)
let ensure_pages t ~family ~node ~oid ~predicted pages =
  let g = snapshot t ~family ~oid in
  let stale_of ps =
    List.filter
      (fun p ->
        Dsm.Page_store.version t.stores.(node) oid ~page:p
        < g.Gdo.Directory.g_page_versions.(p))
      ps
  in
  let stale = stale_of pages in
  if stale <> [] then begin
    let protocol = protocol_for t oid in
    if not (Dsm.Protocol.demand_fetch_allowed protocol) then
      failwith
        (Format.asprintf "protocol invariant violated: %a stale under %a" Oid.pp oid
           Dsm.Protocol.pp protocol);
    (* Aggregation: the method touches (at most) its predicted set, so one
       widened round replaces the per-access-group request/reply pairs the
       method would otherwise pay. A widened page is as safe to pull as a
       triggering one — staleness is judged against the same grant
       snapshot, so its newest copy is held remotely. *)
    let fetch =
      if not t.batching.Dsm.Batching.aggregate_fetch then stale
      else begin
        let extra =
          stale_of
            (List.sort_uniq Int.compare
               (List.filter (fun p -> not (List.mem p pages)) predicted))
        in
        if extra <> [] then begin
          Dsm.Metrics.add_fetches_aggregated t.metrics (List.length extra);
          record_event t (fun () ->
              Dsm.Event.Fetch_aggregated
                { oid; node;
                  pages = List.length stale + List.length extra;
                  extra = List.length extra })
        end;
        stale @ extra
      end
    in
    Dsm.Metrics.record_demand_fetch t.metrics ~oid;
    record_event t (fun () ->
        let n = List.length fetch in
        Dsm.Event.Demand_fetch
          { oid; node; pages = n;
            bytes = n * (t.cfg.Config.page_size + t.cfg.Config.page_header_bytes) });
    fetch_groups t ~family ~node ~oid (group_by_source ~node ~oid g fetch)
  end

(* ------------------------------------------------------------------ *)
(* Node-side lease bookkeeping: which of a family's read locks are
   lease-backed (the directory never saw them), and their validation at
   commit/upgrade time.                                                 *)

let family_lease_reads t family =
  match Txn_id.Table.find_opt t.lease_reads family with
  | Some tbl -> tbl
  | None ->
      let tbl = Oid.Table.create 4 in
      Txn_id.Table.add t.lease_reads family tbl;
      tbl

(* The nodes whose lease caches back the family's read on [oid] — the
   family's own site, plus (with function shipping) any shipped reader's
   execution site. A singleton whenever shipping is off. *)
let lease_nodes t ~family ~oid =
  match Txn_id.Table.find_opt t.lease_reads family with
  | Some tbl -> Option.value ~default:[] (Oid.Table.find_opt tbl oid)
  | None -> []

let mark_lease_backed t ~family ~oid ~node =
  let tbl = family_lease_reads t family in
  let cur = Option.value ~default:[] (Oid.Table.find_opt tbl oid) in
  if not (List.mem node cur) then Oid.Table.replace tbl oid (cur @ [ node ])

let unmark_lease_backed t ~family ~oid =
  match Txn_id.Table.find_opt t.lease_reads family with
  | Some tbl -> Oid.Table.remove tbl oid
  | None -> ()

(* Drop one site's backing of the read; other sites' backings remain. *)
let unmark_lease_backed_at t ~family ~oid ~node =
  match Txn_id.Table.find_opt t.lease_reads family with
  | Some tbl -> (
      match Oid.Table.find_opt tbl oid with
      | Some nodes -> (
          match List.filter (fun n -> n <> node) nodes with
          | [] -> Oid.Table.remove tbl oid
          | rest -> Oid.Table.replace tbl oid rest)
      | None -> ())
  | None -> ()

(* Satisfy a read-mode acquire from the node's lease cache, if it holds a
   valid lease on the object. *)
let lease_hit t ~node ~oid ~mode =
  if t.lease_enabled && Lock.equal mode Lock.Read then
    Gdo.Lease.Cache.hit t.lease_caches.(node) oid ~now:(Sim.Engine.now t.engine)
  else None

(* A family's lease-backed read on [oid] ended (commit, abort, or upgrade):
   drop the reader; if a deferred recall was waiting on it, yield now. *)
let lease_release t ~node ~family ~oid =
  match Gdo.Lease.Cache.remove_reader t.lease_caches.(node) oid ~family with
  | `Yield -> send_lease_yield t ~node ~oid
  | `Nothing -> ()

(* TTL doom (see Gdo.Lease): lease-backed reads are only as good as the
   lease backing them. Re-validate every one before the family commits; a
   reader whose lease expired or was superseded may have read data a writer
   has since been allowed to overwrite, so the family must abort and
   retry. *)
let validate_lease_reads t ~family =
  (not t.lease_enabled)
  ||
  match Txn_id.Table.find_opt t.lease_reads family with
  | None -> true
  | Some tbl ->
      let now = Sim.Engine.now t.engine in
      Oid.Table.fold
        (fun oid nodes ok ->
          ok
          && List.for_all
               (fun node -> Gdo.Lease.Cache.valid t.lease_caches.(node) oid ~family ~now)
               nodes)
        tbl true

let drop_lease_reads t family = Txn_id.Table.remove t.lease_reads family

(* ------------------------------------------------------------------ *)
(* Lock acquisition at method entry (Algorithm 4.1 + global path).     *)

(* Block until a concurrent fiber of the same family (a prefetch) has
   finished pulling the object's acquisition-time pages; being granted the
   lock locally does not mean the pages have landed. *)
let await_transfer t ~family ~oid =
  match Itbl.find_opt t.transfers (okey oid family) with
  | Some iv -> Sim.Engine.Ivar.read iv
  | None -> ()

(* [optimistic] marks pre-acquisition attempts: they never block at the GDO
   (Busy is a silent no-op) and never upgrade — the invoking child falls back
   to a normal acquisition later. Returns true when the lock is held on
   return. *)
let rec acquire_object t ~txn ~oid ~mode ~predicted ~optimistic =
  let node = Txn_tree.node_of t.tree txn in
  let family = Txn_tree.root_of t.tree txn in
  check_crashed t ~txn_root:family;
  (* A function-shipped fiber can outlive its family's abort (the invoker's
     transport gave up on the round trip and unwound). Stop it at the next
     acquisition so it restores its writes instead of piling on more. *)
  if t.ship_enabled && family_defunct t family then raise Family_abort;
  Sim.Engine.wait t.cfg.Config.local_lock_op_us;
  let wake_iv = Sim.Engine.Ivar.create () in
  match
    Local_locks.acquire t.locks.(node) oid ~txn ~mode ~wake:(fun () ->
        Sim.Engine.Ivar.fill wake_iv ())
  with
  | Local_locks.Granted ->
      Dsm.Metrics.incr_local_acquisitions t.metrics;
      await_transfer t ~family ~oid;
      true
  | Local_locks.Queued ->
      Dsm.Metrics.incr_local_acquisitions t.metrics;
      Sim.Engine.Ivar.read wake_iv;
      await_transfer t ~family ~oid;
      true
  | Local_locks.Needs_upgrade ->
      if optimistic then true  (* already held for Read: good enough to keep *)
      else begin
        Dsm.Metrics.incr_upgrades t.metrics;
        record_event t (fun () -> Dsm.Event.Upgrade { oid; family = txn; node });
        let t0 = Sim.Engine.now t.engine in
        match gdo_acquire t ~node ~family ~oid ~mode:Lock.Write ~block:true with
        | Ok (g, _) ->
            (match lease_nodes t ~family ~oid with
            | lnodes when t.lease_enabled && lnodes <> [] ->
                (* The read being upgraded never reached the directory: this
                   write grant is fresh, not an upgrade, and the lease that
                   protected the read must still be valid at grant time —
                   otherwise another writer was admitted in between (via TTL
                   force-clear) and the read is doomed. The just-granted
                   write lock is handed straight back so the directory is not
                   leaked across the family abort. [lnodes] are the sites
                   whose caches back the read (≠ [node] only for
                   function-shipped reads). *)
                let now = Sim.Engine.now t.engine in
                let valid =
                  List.for_all
                    (fun lnode -> Gdo.Lease.Cache.valid t.lease_caches.(lnode) oid ~family ~now)
                    lnodes
                in
                if not valid then begin
                  Dsm.Metrics.incr_lease_aborts t.metrics;
                  record_event t (fun () ->
                      Dsm.Event.Lease_abort { family = txn; node; oid = Some oid });
                  gdo_release t ~node ~family [ (oid, []) ];
                  raise Family_abort
                end;
                unmark_lease_backed t ~family ~oid;
                List.iter (fun lnode -> lease_release t ~node:lnode ~family ~oid) lnodes
            | _ -> ());
            Local_locks.upgrade_granted t.locks.(node) oid ~txn;
            Dsm.Metrics.record_acquire_latency_us t.metrics (Sim.Engine.now t.engine -. t0);
            set_snapshot t ~family ~oid g;
            await_transfer t ~family ~oid;
            true
        | Error Busy ->
            (* We shared the reply of an in-flight non-blocking prefetch;
               issue our own blocking request. *)
            acquire_object t ~txn ~oid ~mode ~predicted ~optimistic
        | Error (Deadlock _) ->
            Dsm.Metrics.incr_deadlock_aborts t.metrics;
            raise Family_abort
        | Error Crashed ->
            (* The upgrade was disrupted by a crash or transport give-up.
               The held read is released by the normal abort unwinding; a
               stale upgrade-queue entry is fenced at delivery time. *)
            if is_doomed t family then raise Crashed_abort else raise Family_abort
      end
  | Local_locks.Not_cached -> (
      match lease_hit t ~node ~oid ~mode with
      | Some g ->
          (* Valid local lease: install the cached grant without touching
             the home — zero messages. The cached page map is current (no
             write was granted while the lease is valid), so demand fetches
             through this snapshot behave exactly as under the original
             grant. *)
          Dsm.Metrics.incr_lease_hits t.metrics;
          Local_locks.install_grant t.locks.(node) oid ~txn ~mode;
          set_snapshot t ~family ~oid g;
          Gdo.Lease.Cache.add_reader t.lease_caches.(node) oid ~family;
          mark_lease_backed t ~family ~oid ~node;
          record_event t (fun () -> Dsm.Event.Lease_hit { oid; family = txn; node });
          true
      | None -> (
      Dsm.Metrics.incr_global_acquisitions t.metrics;
      let had_inflight = Itbl.mem t.inflight (okey oid family) in
      if not had_inflight then
        record_event t (fun () -> Dsm.Event.Lock_request { oid; family = txn; node; mode });
      let t0 = Sim.Engine.now t.engine in
      match gdo_acquire t ~node ~family ~oid ~mode ~block:(not optimistic) with
      | Ok (g, lease) ->
          if had_inflight then
            (* Another fiber of this family raced us and already installed
               the grant; just retry the local path. *)
            acquire_object t ~txn ~oid ~mode ~predicted ~optimistic
          else begin
            Local_locks.install_grant t.locks.(node) oid ~txn ~mode;
            Dsm.Metrics.record_acquire_latency_us t.metrics (Sim.Engine.now t.engine -. t0);
            set_snapshot t ~family ~oid g;
            Dsm.Metrics.record_acquisition t.metrics ~oid;
            record_event t (fun () -> Dsm.Event.Lock_grant { oid; family = txn; node; mode });
            let transfer_iv = Sim.Engine.Ivar.create () in
            Itbl.replace t.transfers (okey oid family) transfer_iv;
            (* A failed transfer (crash, give-up) must still complete the
               transfer ivar, or same-family fibers awaiting it stall. *)
            let finish_transfer () =
              Itbl.remove t.transfers (okey oid family);
              (* crash_enter may have completed the ivar already (doomed
                 family): waiters re-check doom, so a second fill is moot. *)
              if not (Sim.Engine.Ivar.is_filled transfer_iv) then
                Sim.Engine.Ivar.fill transfer_iv ()
            in
            (try transfer_on_acquire t ~family ~node ~oid ~grant:g ~predicted
             with e ->
               finish_transfer ();
               raise e);
            finish_transfer ();
            (* Install the piggybacked lease only now, after the grant's
               page transfer landed: a lease hit must find every page the
               cached map calls local actually present. A doomed family
               must not seed the node's post-crash fresh cache. *)
            (match lease with
            | Some (expires, epoch) when not (is_doomed t family) ->
                Gdo.Lease.Cache.install t.lease_caches.(node) oid ~grant:g ~expires ~epoch
            | Some _ | None -> ());
            true
          end
      | Error Busy ->
          record_event t (fun () ->
              Dsm.Event.Lock_refused { oid; family = txn; node; busy = true });
          if optimistic then false  (* optimistic refusal: leave it to the child *)
          else
            (* A shared in-flight prefetch reply; retry as a blocking
               request of our own. *)
            acquire_object t ~txn ~oid ~mode ~predicted ~optimistic
      | Error (Deadlock cycle) ->
          record_event t (fun () ->
              Dsm.Event.Lock_refused { oid; family = txn; node; busy = false });
          if optimistic then false
          else begin
            Dsm.Metrics.incr_deadlock_aborts t.metrics;
            record_event t (fun () ->
                Dsm.Event.Deadlock_abort { family = txn; node; cycle = List.length cycle });
            raise Family_abort
          end
      | Error Crashed ->
          if is_doomed t family then raise Crashed_abort
          else begin
            (* The acquire was disrupted (home crash or transport give-up)
               and the outcome is ambiguous: the home may have granted the
               lock into the void. Release defensively — a release of an
               unheld lock is a no-op, and a stale wait-queue entry is
               fenced by the defunct check when its grant is delivered. *)
            gdo_release t ~node ~family [ (oid, []) ];
            if optimistic then false else raise Family_abort
          end))

(* ------------------------------------------------------------------ *)
(* Function-shipping bookkeeping (see Dsm.Shipping): execution-site
   tracking, invocation pinning and parked per-site undo state. All of it
   is inert when shipping is off — no table ever gains an entry, keeping
   shipping-off runs byte-identical.                                     *)

(* The family's ship state, created at its first dispatch decision with the
   root's own node registered as the first execution site. *)
let ship_state_of t ~family ~node =
  match Txn_id.Table.find_opt t.ship_states family with
  | Some s -> s
  | None ->
      let inc = if t.crash_enabled then t.incarnation.(node) else 0 in
      let s = { pins = Oid.Table.create 8; exec_sites = [ (node, inc) ] } in
      Txn_id.Table.add t.ship_states family s;
      s

(* Register a Ship_invoke delivery site. The state already exists: the
   deciding invoker created it before sending. *)
let register_ship_site t ~family ~site =
  let s = Txn_id.Table.find t.ship_states family in
  if not (List.exists (fun (n, _) -> n = site) s.exec_sites) then begin
    let inc = if t.crash_enabled then t.incarnation.(site) else 0 in
    s.exec_sites <- s.exec_sites @ [ (site, inc) ]
  end

(* Every node the family has executed at — [node] (the caller's notion of
   the transaction's site) first, then the other registered sites. The
   completion paths iterate this for lock disposition; each per-site
   operation is a no-op at sites where the transaction holds nothing. *)
let family_exec_sites t ~family ~node =
  if not t.ship_enabled then [ node ]
  else
    match Txn_id.Table.find_opt t.ship_states family with
    | None -> [ node ]
    | Some s ->
        node :: List.filter_map (fun (n, _) -> if n = node then None else Some n) s.exec_sites

(* A registered execution site whose store still holds the family's
   uncommitted writes: not currently crashed, and at the incarnation it was
   registered under (a crashed site's wipe already discarded the writes,
   and restoring pre-images over the durable versions would resurrect
   them). *)
let intact_site t ~family ~site =
  match Txn_id.Table.find_opt t.ship_states family with
  | None -> false
  | Some s ->
      List.exists
        (fun (n, inc) ->
          n = site
          && ((not t.crash_enabled)
             || ((not t.crashed.(site)) && t.incarnation.(site) = inc)))
        s.exec_sites

let parked_of t txn =
  match Txn_id.Table.find_opt t.parked_logs txn with Some cell -> !cell | None -> []

let drop_parked t txn = Txn_id.Table.remove t.parked_logs txn

(* Park a shipped descendant's recovery log under [owner], keyed by the
   execution site whose store its pre-images belong to; a log already
   parked for the site absorbs the new one (the new log's entries are
   newer: family execution is sequential). Empty logs park nothing —
   read-only shipped children leave no undo state behind. *)
let park_log t ~owner ~site log =
  if not (Recovery.is_empty log) then begin
    let cell =
      match Txn_id.Table.find_opt t.parked_logs owner with
      | Some c -> c
      | None ->
          let c = ref [] in
          Txn_id.Table.add t.parked_logs owner c;
          c
    in
    match List.assoc_opt site !cell with
    | Some existing -> Recovery.merge_into_parent ~child:log ~parent:existing
    | None ->
        let fresh = Recovery.create t.cfg.Config.recovery in
        Recovery.merge_into_parent ~child:log ~parent:fresh;
        cell := !cell @ [ (site, fresh) ]
  end

(* Apply recovery logs over a node's store. A single log restores exactly
   as the single-site runtime always has (sequential newest-first
   application ends at the oldest pre-image per page). Several logs for one
   site — a shipped descendant wrote pages its owner also wrote, and the
   interleaving was lost when the logs were parked separately — combine
   into one oldest-pre-image-per-page plan, which is what the correctly
   interleaved single log would have produced: pre-image versions are
   drawn from a global monotone counter, so oldest = minimum. *)
let restore_logs t ~node logs =
  match logs with
  | [] -> ()
  | [ log ] ->
      List.iter
        (fun (oid, page, version) -> Dsm.Page_store.restore t.stores.(node) oid ~page ~version)
        (Recovery.restore_plan log)
  | logs ->
      let oldest = Hashtbl.create 16 in
      List.iter
        (fun log ->
          List.iter
            (fun (oid, page, version) ->
              let key = (Oid.to_int oid, page) in
              match Hashtbl.find_opt oldest key with
              | Some (_, v) when v <= version -> ()
              | Some _ | None -> Hashtbl.replace oldest key (oid, version))
            (Recovery.restore_plan log))
        logs;
      Hashtbl.iter
        (fun (_, page) (oid, version) ->
          Dsm.Page_store.restore t.stores.(node) oid ~page ~version)
        oldest

(* ------------------------------------------------------------------ *)
(* Transaction completion (Algorithm 4.3 and root paths).              *)

let precommit_txn t txn =
  let parent =
    match Txn_tree.parent t.tree txn with
    | Some p -> p
    | None -> invalid_arg "Runtime.precommit_txn: root"
  in
  let node = Txn_tree.node_of t.tree txn in
  let family = Txn_tree.root_of t.tree txn in
  Sim.Engine.wait t.cfg.Config.local_lock_op_us;
  (* The child's (and its precommitted descendants') locks may live in
     several sites' tables; the parent inherits them wherever they are. *)
  List.iter
    (fun site -> Local_locks.precommit t.locks.(site) txn)
    (family_exec_sites t ~family ~node);
  let pnode = Txn_tree.node_of t.tree parent in
  if node = pnode then
    Recovery.merge_into_parent ~child:(recovery_of t txn) ~parent:(recovery_of t parent)
  else
    (* Function-shipped child: its pre-images belong to [node]'s store and
       cannot merge into a parent log that restores at [pnode]; park them
       under the parent instead. *)
    park_log t ~owner:parent ~site:node (recovery_of t txn);
  (* Promote undo state the child's own shipped descendants parked under
     it: logs for the parent's site join the parent's own log, the rest
     stay parked (now under the parent). *)
  List.iter
    (fun (site, log) ->
      if site = pnode then Recovery.merge_into_parent ~child:log ~parent:(recovery_of t parent)
      else park_log t ~owner:parent ~site log)
    (parked_of t txn);
  drop_parked t txn;
  let rl = read_log t txn and prl = read_log t parent in
  prl := !rl @ !prl;
  let wl = write_log t txn and pwl = write_log t parent in
  pwl := !wl @ !pwl;
  Txn_tree.set_status t.tree txn Txn_tree.Precommitted;
  record_event t (fun () -> Dsm.Event.Precommit { txn; parent; node });
  drop_txn_state t txn

let undo_txn t txn =
  let node = Txn_tree.node_of t.tree txn in
  let log = recovery_of t txn in
  let parked = parked_of t txn in
  let cost =
    Recovery.restore_cost_units log
    + List.fold_left (fun acc (_, l) -> acc + Recovery.restore_cost_units l) 0 parked
  in
  if cost > 0 then Sim.Engine.wait (t.cfg.Config.undo_page_us *. float_of_int cost);
  (* The node may have crashed during the undo wait; restoring pre-images
     into the wiped store would resurrect uncommitted state over the
     durable versions, so switch to the crash unwinding instead. *)
  check_crashed t ~txn_root:(Txn_tree.root_of t.tree txn);
  if parked = [] then restore_logs t ~node [ log ]
  else begin
    (* The transaction's own log restores at its node; each parked log at
       the site its shipped descendants wrote. *)
    let sites = List.sort_uniq compare (node :: List.map fst parked) in
    List.iter
      (fun site ->
        let logs =
          (if site = node then [ log ] else [])
          @ List.filter_map (fun (s, l) -> if s = site then Some l else None) parked
        in
        restore_logs t ~node:site logs)
      sites
  end

(* Crash unwinding of one transaction level: purge local state with no
   undo (the crash wipe already reset the node's pages to their durable
   versions) and no global releases (the node cannot send — its directory
   residue is reclaimed when it is declared dead). Waking local waiters
   cascades the doom through same-node families. *)
let crashed_purge_sub t txn =
  let node = Txn_tree.node_of t.tree txn in
  let family = Txn_tree.root_of t.tree txn in
  (* With shipping, doom may have come from a crash elsewhere in the
     family's execution-site set: sites that did NOT crash still hold the
     family's uncommitted writes, which the wipe did not discard. Restore
     them here (and the parked state of shipped descendants), intact sites
     only. *)
  if t.ship_enabled then begin
    if intact_site t ~family ~site:node then restore_logs t ~node [ recovery_of t txn ];
    List.iter
      (fun (site, log) ->
        if intact_site t ~family ~site then restore_logs t ~node:site [ log ])
      (parked_of t txn);
    drop_parked t txn
  end;
  List.iter
    (fun site -> Local_locks.abort t.locks.(site) txn ~to_release:(fun _ -> ()))
    (family_exec_sites t ~family ~node);
  Txn_tree.set_status t.tree txn Txn_tree.Aborted;
  drop_txn_state t txn

let abort_sub_txn t txn =
  let node = Txn_tree.node_of t.tree txn in
  undo_txn t txn;
  Sim.Engine.wait t.cfg.Config.local_lock_op_us;
  check_crashed t ~txn_root:(Txn_tree.root_of t.tree txn);
  let family = Txn_tree.root_of t.tree txn in
  let release site oid =
    Oid.Table.remove (family_snapshots t family) oid;
    if t.lease_enabled && List.mem site (lease_nodes t ~family ~oid) then begin
      (* The directory never saw this site's read lock: release it against
         the site's lease cache only. *)
      unmark_lease_backed_at t ~family ~oid ~node:site;
      lease_release t ~node:site ~family ~oid
    end
    else gdo_release t ~node:site ~family [ (oid, []) ]
  in
  List.iter
    (fun site -> Local_locks.abort t.locks.(site) txn ~to_release:(release site))
    (family_exec_sites t ~family ~node);
  Txn_tree.set_status t.tree txn Txn_tree.Aborted;
  record_event t (fun () -> Dsm.Event.Sub_abort { txn; node });
  drop_parked t txn;
  drop_txn_state t txn

(* Dirty info for the family's release: for every page its undo log touched,
   report the final local version so the GDO page map points here. *)
let dirty_items t ~node ~root released =
  let log = recovery_of t root in
  let dirty = Recovery.dirty_pages log in
  let by_oid = Hashtbl.create 8 in
  List.iter
    (fun (oid, page) ->
      let v = Dsm.Page_store.version t.stores.(node) oid ~page in
      let cur = Option.value ~default:[] (Hashtbl.find_opt by_oid (Oid.to_int oid)) in
      Hashtbl.replace by_oid (Oid.to_int oid) ((page, v, node) :: cur))
    dirty;
  (* Locks are held to root commit (rule 2), so every dirty object must
     still be family-held — otherwise its dirty info would be lost here. *)
  List.iter
    (fun (oid, _) ->
      if not (List.exists (fun o -> Oid.to_int o = Oid.to_int oid) released) then
        failwith
          (Format.asprintf "Runtime: dirty object %a not among released locks" Oid.pp oid))
    dirty;
  List.map
    (fun oid ->
      (oid, Option.value ~default:[] (Hashtbl.find_opt by_oid (Oid.to_int oid))))
    released

(* RC-nested: push dirty pages to every caching site at root release. The
   copyset is read straight from the directory rather than shipped with the
   grant — a simulation shortcut; the value is identical to what a real
   implementation would have piggybacked, and no message cost is avoided
   (the pushes themselves are fully costed). *)
let eager_push t ~node items =
  let cfg = t.cfg in
  List.iter
    (fun (oid, dirty) ->
      if dirty <> [] then begin
        let dests = List.filter (fun d -> d <> node) (Gdo.Directory.copyset t.gdo oid) in
        if dests <> [] then begin
          let bytes =
            List.length dirty * (cfg.Config.page_size + cfg.Config.page_header_bytes)
          in
          let install dest () =
            List.iter
              (fun (page, v, _) -> Dsm.Page_store.receive t.stores.(dest) oid ~page ~version:v)
              dirty
          in
          Dsm.Metrics.incr_eager_pushes t.metrics;
          match (cfg.Config.multicast_push, dests) with
          | true, first :: rest ->
              (* One multicast message: charged once, delivered everywhere.
                 The extra recipients are installed off-network, so only the
                 charged copy is exposed to fault injection. *)
              send_reliable t ~mtype:Dsm.Wire.Eager_push ~src:node ~dst:first
                ~kind:Sim.Network.Data ~bytes ~tag:(tag_of oid) (install first);
              let delay = Sim.Network.transfer_time_us (Sim.Network.link t.net) bytes in
              List.iter
                (fun dest -> Sim.Engine.schedule t.engine ~delay (fun () -> install dest ()))
                rest
          | _ ->
              List.iter
                (fun dest ->
                  send_reliable t ~mtype:Dsm.Wire.Eager_push ~src:node ~dst:dest
                    ~kind:Sim.Network.Data ~bytes ~tag:(tag_of oid) (install dest))
                dests
        end
      end)
    items

let dedup_accesses accesses =
  let module S = Set.Make (struct
    type t = Serializability.access

    let compare = compare
  end) in
  S.elements (S.of_list accesses)

(* Split one site's released objects into lease-backed reads (released
   against the site's lease cache, no directory traffic) and directory
   locks (released globally as before). Lease-backed locks are read-only by
   construction: a write would have upgraded, and upgrading converts the
   lock to a directory lock. *)
let split_lease_released t ~site ~family released =
  if not t.lease_enabled then released
  else begin
    let leased, global =
      List.partition (fun oid -> List.mem site (lease_nodes t ~family ~oid)) released
    in
    List.iter
      (fun oid ->
        unmark_lease_backed_at t ~family ~oid ~node:site;
        lease_release t ~node:site ~family ~oid)
      leased;
    global
  end

(* Drop a completed family's function-shipping state. *)
let drop_ship_state t root =
  if t.ship_enabled then begin
    Txn_id.Table.remove t.ship_states root;
    drop_parked t root
  end

(* Push a node ledger's unreconciled local commits home: one message, the
   home folds the net delta in and retires the spent quota units. Called
   when the batch threshold is reached and at end of run. *)
let escrow_send_reconcile t ~node oid (l : escrow_ledger) =
  let delta = l.el_pending and used_up = l.el_spent_up and used_down = l.el_spent_down in
  if delta <> 0 || used_up > 0 || used_down > 0 then begin
    let commits = l.el_commits in
    record_escrow_op t (Serializability.E_reconcile { oid; node; delta; used_up; used_down });
    l.el_pending <- 0;
    l.el_spent_up <- 0;
    l.el_spent_down <- 0;
    l.el_commits <- 0;
    Dsm.Metrics.incr_escrow_reconciles t.metrics;
    record_event t (fun () -> Dsm.Event.Escrow_reconcile { oid; node; delta; commits });
    let home = home_of t oid in
    let apply () =
      Sim.Engine.schedule t.engine ~delay:t.cfg.Config.gdo_op_us (fun () ->
          Gdo.Directory.escrow_reconcile t.gdo oid ~node ~delta ~used_up ~used_down)
    in
    if home = node then apply ()
    else
      send_exec t ~mtype:Dsm.Wire.Escrow_reconcile ~src:node ~dst:home
        ~kind:Sim.Network.Control ~bytes:t.cfg.Config.control_msg_bytes ~tag:(tag_of oid)
        apply
  end

(* Root-resolution half of escrow. On commit the family's fast-path holds
   become the node's zero-message local commits (folded into the ledger,
   reconciled home lazily in batches); on abort the drawn units simply
   return to the delegated quota. Home-side reservations get one
   resolution message per object either way, so the home folds (or drops)
   the family's row and promotes any queued waiters. *)
let escrow_resolve_family t root ~node ~commit =
  match Txn_id.Table.find_opt t.escrow_fams root with
  | None -> ()
  | Some fe ->
      Txn_id.Table.remove t.escrow_fams root;
      let p = match t.escrow_params with Some p -> p | None -> assert false in
      let local = List.sort (fun (a, _, _, _) (b, _, _, _) -> Oid.compare a b) fe.fe_local in
      List.iter
        (fun (oid, up, down, nd) ->
          let l = escrow_ledger t ~node oid in
          if commit then begin
            (* Two checker ops when the family held units on both sides, so
               the replayed quota spend matches the reconcile report. *)
            if up > 0 then begin
              l.el_spent_up <- l.el_spent_up + up;
              record_escrow_op t (Serializability.E_local_commit { oid; node; delta = up })
            end;
            if down > 0 then begin
              l.el_spent_down <- l.el_spent_down + down;
              record_escrow_op t (Serializability.E_local_commit { oid; node; delta = -down })
            end;
            l.el_pending <- l.el_pending + nd;
            l.el_commits <- l.el_commits + 1;
            if l.el_commits >= p.Dsm.Escrow.reconcile_every then
              escrow_send_reconcile t ~node oid l
          end
          else begin
            l.el_q_up <- l.el_q_up + up;
            l.el_q_down <- l.el_q_down + down
          end)
        local;
      List.iter
        (fun oid ->
          let home = home_of t oid in
          let resolve () =
            Sim.Engine.schedule t.engine ~delay:t.cfg.Config.gdo_op_us (fun () ->
                let deliveries =
                  if commit then Gdo.Directory.escrow_commit t.gdo oid ~family:root
                  else Gdo.Directory.escrow_abort t.gdo oid ~family:root
                in
                record_escrow_op t
                  (if commit then Serializability.E_commit { oid; family = root }
                   else Serializability.E_abort { oid; family = root });
                List.iter (deliver_deferred_grant t ~home) deliveries)
          in
          if home = node then resolve ()
          else
            send_exec t ~mtype:Dsm.Wire.Escrow_commit ~src:node ~dst:home
              ~kind:Sim.Network.Control ~bytes:t.cfg.Config.control_msg_bytes
              ~tag:(tag_of oid) resolve)
        (List.sort Oid.compare fe.fe_home)

(* Runs entirely without yielding (waits happen at the caller, before the
   commit point), so a crash window can never tear a commit: either the
   family crash-aborts before the commit point, or every commit-side
   effect — local release, release/push sends — is issued atomically in
   simulated time. *)
let commit_root t root =
  let node = Txn_tree.node_of t.tree root in
  let released_count =
    if not t.ship_enabled then begin
      let released = Local_locks.root_release t.locks.(node) ~root in
      let released = split_lease_released t ~site:node ~family:root released in
      let items = dirty_items t ~node ~root released in
      let push_items =
        List.filter (fun (oid, _) -> Dsm.Protocol.is_eager_push (protocol_for t oid)) items
      in
      if push_items <> [] then eager_push t ~node push_items;
      gdo_release t ~node ~family:root items;
      List.length released
    end
    else begin
      (* Function shipping: the family's locks live in several sites' tables
         and its dirty pages in several sites' stores. Collect the final
         version of every dirty page across the root's own log and its
         parked per-site logs (a page written at several sites reports its
         newest version — version numbers are globally monotone), then
         release per site; an object cached at more than one site (a
         directory grant plus shipped re-acquisitions) releases globally
         once, from the first site listing it. *)
      let site_logs = (node, recovery_of t root) :: parked_of t root in
      let by_page = Hashtbl.create 16 in
      List.iter
        (fun (site, log) ->
          List.iter
            (fun (oid, page) ->
              let v = Dsm.Page_store.version t.stores.(site) oid ~page in
              match Hashtbl.find_opt by_page (Oid.to_int oid, page) with
              | Some (_, v0, _) when v0 >= v -> ()
              | Some _ | None -> Hashtbl.replace by_page (Oid.to_int oid, page) (oid, v, site))
            (Recovery.dirty_pages log))
        site_logs;
      let dirty_of oid =
        (* Ascending-page order, not hash order: the list lands in release
           messages, whose bytes must be hash-seed independent. *)
        Hashtbl.fold
          (fun (o, page) (_, v, n) acc ->
            if o = Oid.to_int oid then (page, v, n) :: acc else acc)
          by_page []
        |> List.sort (fun (a, _, _) (b, _, _) -> Int.compare a b)
      in
      let seen = Oid.Table.create 16 in
      let total = ref 0 in
      List.iter
        (fun site ->
          let released = Local_locks.root_release t.locks.(site) ~root in
          let released = split_lease_released t ~site ~family:root released in
          let released =
            List.filter
              (fun oid ->
                if Oid.Table.mem seen oid then false
                else begin
                  Oid.Table.add seen oid ();
                  true
                end)
              released
          in
          total := !total + List.length released;
          if released <> [] then begin
            let items = List.map (fun oid -> (oid, dirty_of oid)) released in
            let push_items =
              List.filter (fun (oid, _) -> Dsm.Protocol.is_eager_push (protocol_for t oid)) items
            in
            if push_items <> [] then eager_push t ~node:site push_items;
            gdo_release t ~node:site ~family:root items
          end)
        (family_exec_sites t ~family:root ~node);
      (* Locks are held to root commit (rule 2), so every dirty object must
         have been among the released locks. *)
      Hashtbl.iter
        (fun _ (oid, _, _) ->
          if not (Oid.Table.mem seen oid) then
            failwith
              (Format.asprintf "Runtime: dirty object %a not among released locks" Oid.pp oid))
        by_page;
      !total
    end
  in
  if t.escrow_enabled then escrow_resolve_family t root ~node ~commit:true;
  if t.lease_enabled then drop_lease_reads t root;
  if not t.cfg.Config.streaming then
    t.history <-
      {
        Serializability.root;
        reads = dedup_accesses !(read_log t root);
        writes = dedup_accesses !(write_log t root);
      }
      :: t.history;
  Txn_tree.set_status t.tree root Txn_tree.Committed;
  record_event t (fun () ->
      Dsm.Event.Root_commit { family = root; node; released = released_count });
  Txn_id.Table.remove t.snapshots root;
  drop_ship_state t root;
  drop_txn_state t root;
  Dsm.Metrics.incr_roots_committed t.metrics;
  (* Streaming runs are fault-free, so nothing consults a completed
     family's tree records afterwards (the defunct-family fence and crash
     reclamation, the only such readers, need the reliable transport). *)
  if t.cfg.Config.streaming then Txn_tree.forget_family t.tree root

let abort_root t root =
  let node = Txn_tree.node_of t.tree root in
  undo_txn t root;
  Sim.Engine.wait t.cfg.Config.local_lock_op_us;
  check_crashed t ~txn_root:root;
  let seen = Oid.Table.create 16 in
  List.iter
    (fun site ->
      let released = Local_locks.root_release t.locks.(site) ~root in
      let released = split_lease_released t ~site ~family:root released in
      let released =
        List.filter
          (fun oid ->
            if Oid.Table.mem seen oid then false
            else begin
              Oid.Table.add seen oid ();
              true
            end)
          released
      in
      if released <> [] then
        gdo_release t ~node:site ~family:root (List.map (fun oid -> (oid, [])) released))
    (family_exec_sites t ~family:root ~node);
  if t.escrow_enabled then escrow_resolve_family t root ~node ~commit:false;
  if t.lease_enabled then drop_lease_reads t root;
  Txn_tree.set_status t.tree root Txn_tree.Aborted;
  record_event t (fun () -> Dsm.Event.Root_abort { family = root; node });
  Txn_id.Table.remove t.snapshots root;
  if t.crash_enabled then Txn_id.Table.remove t.live_roots root;
  drop_ship_state t root;
  drop_txn_state t root;
  if t.cfg.Config.streaming then Txn_tree.forget_family t.tree root

(* Crash unwinding of a root: like [crashed_purge_sub] plus the root-level
   bookkeeping — no undo waits, no global releases (the crashed node cannot
   send; directory residue is reclaimed at dead declaration), permanent
   Aborted status (the fence against the family's pre-crash stragglers).
   With shipping, execution sites that did not crash restore the family's
   uncommitted writes from the root's remaining logs first. *)
let crashed_purge_root t root =
  let node = Txn_tree.node_of t.tree root in
  if t.ship_enabled then begin
    if intact_site t ~family:root ~site:node then restore_logs t ~node [ recovery_of t root ];
    List.iter
      (fun (site, log) ->
        if intact_site t ~family:root ~site then restore_logs t ~node:site [ log ])
      (parked_of t root)
  end;
  List.iter
    (fun site -> ignore (Local_locks.root_release t.locks.(site) ~root))
    (family_exec_sites t ~family:root ~node);
  if t.lease_enabled then drop_lease_reads t root;
  Txn_tree.set_status t.tree root Txn_tree.Aborted;
  record_event t (fun () -> Dsm.Event.Crash_abort { family = root; node });
  Dsm.Metrics.incr_crash_aborts t.metrics;
  Txn_id.Table.remove t.snapshots root;
  Txn_id.Table.remove t.live_roots root;
  (* A doomed family's exec-site record must outlive the purge: the family
     released nothing at the directory (this path sends no messages), so
     [reclaim_dead_node] is what evicts its locks — and for a family rooted
     on a live node its doom is only visible through the registered remote
     exec sites. The record persists like the doom mark itself; committed
     and normally-aborted families still drop theirs. *)
  if not (is_doomed t root) then drop_ship_state t root;
  drop_txn_state t root

(* ------------------------------------------------------------------ *)
(* Method execution.                                                   *)

let log_read t txn ~oid ~page ~version =
  let l = read_log t txn in
  l := { Serializability.oid; page; version } :: !l

let log_write t txn ~oid ~page ~version =
  let l = write_log t txn in
  l := { Serializability.oid; page; version } :: !l

(* ------------------------------------------------------------------ *)
(* Method-result cache (see Dsm.Method_cache). Only read-only leaf
   methods — no updates, no sub-invocations — are cacheable: their entire
   observable effect is the read log they produce.                      *)

let cacheable_method (cm : Obj_class.compiled_method) =
  (not cm.Obj_class.summary.Access_analysis.updates)
  && cm.Obj_class.summary.Access_analysis.invoked = []

(* The version vector the entry is keyed by: the grant's versions of the
   method's predicted read-set pages, in page order. While the lease is
   valid these are the objects' current global versions. *)
let cache_versions (cm : Obj_class.compiled_method) (g : Gdo.Directory.grant) =
  Array.of_list
    (List.map
       (fun p -> g.Gdo.Directory.g_page_versions.(p))
       cm.Obj_class.page_summary.Access_analysis.access_pages)

(* Serve a read-only leaf invocation from the node's method cache. A hit is
   a lease hit plus a body skip: the local lock is installed and the family
   registered as a lease-backed reader — so commit-time lease validation
   and recall deferral protect the cached reads exactly as they would a
   re-executed body — and the cached read log is replayed into the
   transaction. Zero messages, zero page reads, zero statement execution.
   From the lease consult to the return there is no yield, so the install
   is atomic in simulated time. Returns true when served. *)
let try_cache_serve t ~txn ~oid ~(cm : Obj_class.compiled_method) =
  if not (t.cache_enabled && cacheable_method cm) then false
  else begin
    let node = Txn_tree.node_of t.tree txn in
    let family = Txn_tree.root_of t.tree txn in
    (* The consult is charged like a local lock probe; a miss pays it on
       top of the normal acquisition (cache-off runs never reach here). *)
    Sim.Engine.wait t.cfg.Config.local_lock_op_us;
    check_crashed t ~txn_root:family;
    match Local_locks.family_mode t.locks.(node) oid ~family with
    | Some _ ->
        (* A same-family fiber (a prefetch) acquired the lock during the
           wait: the normal path will join it; not a cache miss. *)
        false
    | None -> (
        match lease_hit t ~node ~oid ~mode:Lock.Read with
        | None ->
            Dsm.Metrics.incr_cache_misses t.metrics;
            false
        | Some g -> (
            match
              Dsm.Method_cache.find t.method_caches.(node) ~oid
                ~meth:cm.Obj_class.ir.Method_ir.name ~versions:(cache_versions cm g)
            with
            | None ->
                Dsm.Metrics.incr_cache_misses t.metrics;
                false
            | Some reads ->
                Dsm.Metrics.incr_cache_hits t.metrics;
                Local_locks.install_grant t.locks.(node) oid ~txn ~mode:Lock.Read;
                set_snapshot t ~family ~oid g;
                Gdo.Lease.Cache.add_reader t.lease_caches.(node) oid ~family;
                mark_lease_backed t ~family ~oid ~node;
                List.iter (fun (page, version) -> log_read t txn ~oid ~page ~version) reads;
                record_event t (fun () ->
                    Dsm.Event.Cache_hit
                      { oid; family = txn; node; pages = List.length reads });
                true))
  end

(* Install a completed read-only leaf execution's read log, but only when
   the node's lease on the object is valid right now AND every logged read
   version matches the leased grant's page versions — the lease could have
   been recalled and re-granted at a higher epoch while the body ran, and
   an entry stored across that boundary would marry stale reads to a fresh
   version vector. Under this guard a future hit at the same vector is
   indistinguishable from re-execution. *)
let try_cache_fill t ~txn ~oid ~(cm : Obj_class.compiled_method) =
  if t.cache_enabled && cacheable_method cm then
    let node = Txn_tree.node_of t.tree txn in
    match lease_hit t ~node ~oid ~mode:Lock.Read with
    | None -> ()
    | Some g ->
        let reads =
          List.sort_uniq compare
            (List.filter_map
               (fun (a : Serializability.access) ->
                 if Oid.equal a.Serializability.oid oid then Some (a.page, a.version)
                 else None)
               !(read_log t txn))
        in
        if
          List.for_all
            (fun (page, version) -> g.Gdo.Directory.g_page_versions.(page) = version)
            reads
        then
          if
            Dsm.Method_cache.install t.method_caches.(node) ~oid
              ~meth:cm.Obj_class.ir.Method_ir.name ~versions:(cache_versions cm g) ~reads
          then begin
            Dsm.Metrics.incr_cache_fills t.metrics;
            record_event t (fun () ->
                Dsm.Event.Cache_fill { oid; node; pages = List.length reads })
          end

(* Optimistic pre-acquisition (paper §5.1): at method entry, asynchronously
   acquire — as the current transaction — the locks of the objects this
   method may invoke on, and pull their predicted pages, overlapping the
   latency with local execution. Failures are benign: the child simply
   acquires normally later. *)
let spawn_prefetches t ~txn ~oid ~(cm : Obj_class.compiled_method) =
  let node = Txn_tree.node_of t.tree txn in
  let family = Txn_tree.root_of t.tree txn in
  let targets =
    List.sort_uniq
      (fun (o1, _) (o2, _) -> Oid.compare o1 o2)
      (List.map
         (fun (slot, meth) -> (Catalog.resolve_slot t.catalog oid slot, meth))
         cm.Obj_class.summary.Access_analysis.invoked)
  in
  List.filter_map
    (fun (target, meth) ->
      match Local_locks.family_mode t.locks.(node) target ~family with
      | Some _ -> None  (* already held: nothing to hide *)
      | None ->
          let target_cm = Catalog.find_method t.catalog target meth in
          let mode =
            if target_cm.Obj_class.summary.Access_analysis.updates then Lock.Write
            else Lock.Read
          in
          let done_iv = Sim.Engine.Ivar.create () in
          Sim.Engine.spawn t.engine ~name:"prefetch" (fun () ->
              (* Crashed_abort included: the prefetch must always complete
                 its join ivar, or the main fiber could never unwind. *)
              (try
                 ignore
                   (acquire_object t ~txn ~oid:target ~mode
                      ~predicted:target_cm.Obj_class.page_summary.Access_analysis.access_pages
                      ~optimistic:true)
               with Family_abort | Crashed_abort -> ());
              Sim.Engine.Ivar.fill done_iv ());
          Some done_iv)
    targets

(* Paper (section 3.4): "verify compliance at run-time (with per-invocation
   overhead for checking proportional to the depth of transaction nesting at
   the point of invocation)". Walk the ancestor chain; charge one local op
   per level. *)
let check_no_recursion t ~parent ~target =
  let rec climb txn depth =
    (match Txn_id.Table.find_opt t.txn_objects txn with
    | Some o when Oid.equal o target -> raise (Recursion_rejected target)
    | _ -> ());
    match Txn_tree.parent t.tree txn with
    | Some p -> climb p (depth + 1)
    | None -> depth
  in
  let depth = climb parent 1 in
  Sim.Engine.wait (t.cfg.Config.local_lock_op_us *. float_of_int depth)

(* The escrow commit path for a declared-commutative invocation on an
   escrowed object: no lock, no page I/O — the method's effect is its unit
   delta, booked either against the node's delegated quota (fast path,
   zero messages) or as a home reservation (slow path, one round trip).
   The units are held by the family until the root resolves; aborts are
   family-level only (Config.validate excludes injected sub-retries with
   escrow on), so per-family tracking is exact. Returns false when escrow
   does not apply or the home refused — the caller falls back to the
   exclusive-lock path. *)
let escrow_try t ~oid ~(cm : Obj_class.compiled_method) ~node ~family =
  t.escrow_enabled
  && Method_ir.commutes cm.Obj_class.ir
  && Oid.Table.mem t.escrow_oids oid
  && begin
       let delta = Method_ir.escrow_delta cm.Obj_class.ir in
       (* The body's statements still cost CPU; they just run against the
          escrowed quantity instead of pages. *)
       for _ = 1 to Method_ir.statement_count cm.Obj_class.ir do
         exec_statement t ~node
       done;
       (* Ride out lock bursts instead of folding at the first refusal: a
          refused call that falls back grabs the write lock, which refuses
          the next reservation in turn — one statement-batch writer would
          cascade into escrow disabling itself on the hot account exactly
          when it matters. Bounded, so a real conflict still reaches the
          lock path (and its deadlock detection) quickly; each attempt
          re-checks the fast path first, since quota may have landed while
          we slept. *)
       let backoff_us = [ 100.0; 200.0; 400.0; 800.0; 1600.0 ] in
       let rec attempt backoffs =
         let l = escrow_ledger t ~node oid in
         let can_local =
           if delta > 0 then l.el_q_up >= delta else l.el_q_down >= -delta
         in
         if can_local then begin
           if delta > 0 then l.el_q_up <- l.el_q_up - delta
           else l.el_q_down <- l.el_q_down + delta;
           Dsm.Metrics.incr_escrow_local_commits t.metrics;
           record_event t (fun () ->
               Dsm.Event.Escrow_local_commit { oid; family; node; delta });
           let fe = fam_escrow_of t family in
           let up = max delta 0 and down = max (-delta) 0 in
           (match List.find_opt (fun (o, _, _, _) -> Oid.equal o oid) fe.fe_local with
           | Some (_, u, d, nd) ->
               fe.fe_local <-
                 (oid, u + up, d + down, nd + delta)
                 :: List.filter (fun (o, _, _, _) -> not (Oid.equal o oid)) fe.fe_local
           | None -> fe.fe_local <- (oid, up, down, delta) :: fe.fe_local);
           true
         end
         else if escrow_request t ~node ~family ~oid ~delta then true
         else
           match backoffs with
           | [] -> false
           | wait :: rest ->
               Sim.Engine.wait wait;
               attempt rest
       in
       attempt backoff_us
     end

let rec run_body t ~prng ~txn ~oid ~(cm : Obj_class.compiled_method) =
  let node = Txn_tree.node_of t.tree txn in
  let family = Txn_tree.root_of t.tree txn in
  Txn_id.Table.replace t.txn_objects txn oid;
  if try_cache_serve t ~txn ~oid ~cm then ()
  else if escrow_try t ~oid ~cm ~node ~family then ()
  else run_body_exec t ~prng ~txn ~oid ~cm ~node ~family

and run_body_exec t ~prng ~txn ~oid ~(cm : Obj_class.compiled_method) ~node ~family =
  let mode = if cm.Obj_class.summary.Access_analysis.updates then Lock.Write else Lock.Read in
  let (_ : bool) =
    acquire_object t ~txn ~oid ~mode
      ~predicted:cm.Obj_class.page_summary.Access_analysis.access_pages ~optimistic:false
  in
  let prefetch_joins =
    if t.cfg.Config.prefetch then spawn_prefetches t ~txn ~oid ~cm else []
  in
  let layout = Catalog.layout t.catalog oid in
  let handler =
    {
      Method_ir.on_read =
        (fun a ->
          exec_statement t ~node;
          check_crashed t ~txn_root:family;
          let pages = Layout.pages_of_attr layout a in
          ensure_pages t ~family ~node ~oid
            ~predicted:cm.Obj_class.page_summary.Access_analysis.access_pages pages;
          check_crashed t ~txn_root:family;
          List.iter
            (fun page ->
              let version = Dsm.Page_store.version t.stores.(node) oid ~page in
              log_read t txn ~oid ~page ~version)
            pages);
      on_write =
        (fun a ->
          exec_statement t ~node;
          check_crashed t ~txn_root:family;
          let pages = Layout.pages_of_attr layout a in
          ensure_pages t ~family ~node ~oid
            ~predicted:cm.Obj_class.page_summary.Access_analysis.access_pages pages;
          (* The store may have been wiped to its durable versions while
             this fiber slept: writing now would corrupt restored state. *)
          check_crashed t ~txn_root:family;
          List.iter
            (fun page ->
              t.next_version <- t.next_version + 1;
              let v = t.next_version in
              let prev = Dsm.Page_store.write t.stores.(node) oid ~page ~new_version:v in
              Recovery.note_write (recovery_of t txn) ~oid ~page ~pre_image:prev;
              log_write t txn ~oid ~page ~version:v)
            pages);
      on_invoke =
        (fun slot meth ->
          exec_statement t ~node;
          check_crashed t ~txn_root:family;
          let target = Catalog.resolve_slot t.catalog oid slot in
          if t.cfg.Config.allow_recursive_catalogs then
            check_no_recursion t ~parent:txn ~target;
          invoke_child t ~prng ~parent:txn ~oid:target ~meth);
      choose = (fun p -> Sim.Prng.bernoulli prng p);
    }
  in
  let join () = List.iter Sim.Engine.Ivar.read prefetch_joins in
  (try Method_ir.interp cm.Obj_class.ir handler
   with e ->
     join ();
     raise e);
  join ();
  try_cache_fill t ~txn ~oid ~cm

(* Method dispatch. With shipping off this is exactly the pre-shipping
   dispatch: run the child's attempts at the parent's node. With shipping
   on, the cost model (or the family's established pin for the object)
   chooses the execution site; a remote site turns the dispatch into a
   [Ship_invoke]/[Ship_reply] round trip. *)
and invoke_child t ~prng ~parent ~oid ~meth =
  if not t.ship_enabled then
    run_child_attempts t ~prng ~parent ~oid ~meth ~site:(Txn_tree.node_of t.tree parent)
  else begin
    let pnode = Txn_tree.node_of t.tree parent in
    let family = Txn_tree.root_of t.tree parent in
    check_crashed t ~txn_root:family;
    let cm = Catalog.find_method t.catalog oid meth in
    let site = decide_exec_site t ~parent ~oid ~cm in
    if site = pnode then run_child_attempts t ~prng ~parent ~oid ~meth ~site
    else ship_invocation t ~prng ~parent ~oid ~meth ~family ~site
  end

(* Run a sub-transaction at [site], retrying injected failures in place. *)
and run_child_attempts t ~prng ~parent ~oid ~meth ~site =
  let cm = Catalog.find_method t.catalog oid meth in
  let family = Txn_tree.root_of t.tree parent in
  let rec attempt k =
    let txn = Txn_tree.create_child ~node:site t.tree ~parent in
    init_txn_state t txn;
    let ok =
      try
        run_body t ~prng ~txn ~oid ~cm;
        true
      with
      | Family_abort -> (
          try
            abort_sub_txn t txn;
            false
          with Crashed_abort ->
            (* The node crashed mid-abort: finish purging this level
               without undo and keep crash-unwinding. *)
            crashed_purge_sub t txn;
            raise Crashed_abort)
      | Crashed_abort as e ->
          crashed_purge_sub t txn;
          raise e
      | Recursion_rejected _ as e ->
          (* Fatal for the whole family: undo this level, keep unwinding. *)
          (try abort_sub_txn t txn with Crashed_abort -> crashed_purge_sub t txn);
          raise e
    in
    if not ok then raise Family_abort
    else if Sim.Prng.bernoulli prng t.cfg.Config.abort_probability then begin
      (* Injected failure at completion: undo and re-execute (paper §3.2:
         failed sub-transactions may be retried without discarding the rest
         of the family). *)
      Dsm.Metrics.incr_sub_aborts t.metrics;
      (try abort_sub_txn t txn
       with Crashed_abort ->
         crashed_purge_sub t txn;
         raise Crashed_abort);
      if k < t.cfg.Config.max_sub_retries then attempt (k + 1) else raise Family_abort
    end
    else if t.ship_enabled && family_defunct t family then begin
      (* A shipped fiber whose family aborted while the body ran must not
         pre-commit into the corpse: undo this level and unwind. *)
      (try abort_sub_txn t txn with Crashed_abort -> crashed_purge_sub t txn);
      raise Family_abort
    end
    else precommit_txn t txn
  in
  attempt 0

(* Pick the execution site for an invocation of [oid]. The first dispatch
   in a family runs the cost model over the method's predicted pages and
   the GDO page map, then pins the verdict: every later invocation of the
   same object in this family joins it at the pinned site, so an object's
   locks and uncommitted pages live at one site per family. *)
and decide_exec_site t ~parent ~oid ~(cm : Obj_class.compiled_method) =
  let pnode = Txn_tree.node_of t.tree parent in
  let family = Txn_tree.root_of t.tree parent in
  let st = ship_state_of t ~family ~node:(Txn_tree.node_of t.tree family) in
  match Oid.Table.find_opt st.pins oid with
  | Some site ->
      if site <> pnode then Dsm.Metrics.incr_ships_forced t.metrics;
      site
  | None ->
      let params =
        match t.ship_params with Some p -> p | None -> assert false (* ship_enabled *)
      in
      let page_nodes, page_versions = Gdo.Directory.page_map t.gdo oid in
      let owners =
        List.map
          (fun page -> (page, page_nodes.(page)))
          cm.Obj_class.page_summary.Access_analysis.access_pages
      in
      let fresh page =
        Dsm.Page_store.version t.stores.(pnode) oid ~page >= page_versions.(page)
      in
      let page_bytes = t.cfg.Config.page_size + t.cfg.Config.page_header_bytes in
      let decision = Dsm.Shipping.decide params ~invoker:pnode ~owners ~fresh ~page_bytes in
      let site, saved_bytes =
        match decision with
        | Dsm.Shipping.Stay -> (pnode, 0)
        | Dsm.Shipping.Ship { site; saved_bytes } ->
            (* Never ship into a node inside its crash window: the model's
               page-map inputs predate the wipe. *)
            if t.crash_enabled && t.crashed.(site) then (pnode, 0)
            else (site, saved_bytes)
      in
      if site = pnode then Dsm.Metrics.incr_ship_declines t.metrics
      else begin
        Dsm.Metrics.incr_ships t.metrics;
        Dsm.Metrics.add_ship_bytes_saved t.metrics saved_bytes
      end;
      record_event t (fun () ->
          Dsm.Event.Ship_decision
            { oid; family; src = pnode; dst = site; shipped = site <> pnode; saved_bytes });
      Oid.Table.replace st.pins oid site;
      site

(* Ship the invocation: one [Ship_invoke] to [site], the child's attempts
   as a sub-fiber there (same prng, same family, unchanged O2PL rules —
   the invoker blocks on the reply, so family execution stays sequential),
   one [Ship_reply] back carrying the outcome. Crash handling mirrors a
   local child: a dead site (or transport give-up on either leg) fails the
   wait, and the invoker aborts the family — [crash_enter] dooms families
   with registered remote execution sites, so the usual crash-retry
   machinery applies. *)
and ship_invocation t ~prng ~parent ~oid ~meth ~family ~site =
  let params =
    match t.ship_params with Some p -> p | None -> assert false (* ship_enabled *)
  in
  let pnode = Txn_tree.node_of t.tree parent in
  let iv = Sim.Engine.Ivar.create () in
  let sw = { sw_iv = iv; sw_family = family; sw_site = site } in
  if t.crash_enabled then t.ship_waits <- sw :: t.ship_waits;
  let fail_wait () =
    if not (Sim.Engine.Ivar.is_filled iv) then Sim.Engine.Ivar.fill iv Ship_crashed
  in
  send_reliable t ~mtype:Dsm.Wire.Ship_invoke ~src:pnode ~dst:site ~kind:Sim.Network.Control
    ~bytes:params.Dsm.Shipping.invoke_bytes ~tag:(tag_of oid) ~on_abandon:fail_wait
    (fun () ->
      (* Delivery fences: a site inside its crash window executes nothing
         (the crash sweep fails the invoker's wait); a doomed or defunct
         family gets no zombie executor from a duplicate or straggling
         copy. *)
      if t.crash_enabled && t.crashed.(site) then ()
      else if is_doomed t family || family_defunct t family then ()
      else begin
        register_ship_site t ~family ~site;
        record_event t (fun () -> Dsm.Event.Ship_exec { oid; family; node = site });
        Sim.Engine.spawn t.engine ~name:"ship" (fun () ->
            let outcome =
              try
                run_child_attempts t ~prng ~parent ~oid ~meth ~site;
                Ship_ok
              with
              | Family_abort -> Ship_aborted
              | Crashed_abort -> Ship_crashed
              | Recursion_rejected o -> Ship_recursion o
            in
            if not (t.crash_enabled && t.crashed.(site)) then
              send_reliable t ~mtype:Dsm.Wire.Ship_reply ~src:site ~dst:pnode
                ~kind:Sim.Network.Control ~bytes:params.Dsm.Shipping.reply_bytes
                ~tag:(tag_of oid) ~on_abandon:fail_wait
                (fun () ->
                  if not (Sim.Engine.Ivar.is_filled iv) then Sim.Engine.Ivar.fill iv outcome))
      end);
  let outcome = Sim.Engine.Ivar.read iv in
  if t.crash_enabled then t.ship_waits <- List.filter (fun w -> w != sw) t.ship_waits;
  match outcome with
  | Ship_ok -> check_crashed t ~txn_root:family
  | Ship_aborted -> raise Family_abort
  | Ship_recursion o -> raise (Recursion_rejected o)
  | Ship_crashed -> if is_doomed t family then raise Crashed_abort else raise Family_abort

(* ------------------------------------------------------------------ *)
(* Root driving.                                                       *)

let submit t ~at ~node ~oid ~meth ~seed =
  if t.ran then invalid_arg "Runtime.submit: run already completed";
  if node < 0 || node >= t.cfg.Config.node_count then
    invalid_arg "Runtime.submit: node out of range";
  let cm = Catalog.find_method t.catalog oid meth in
  t.outstanding <- t.outstanding + 1;
  let name = Format.asprintf "root:%a.%s@%d" Oid.pp oid meth node in
  Sim.Engine.schedule t.engine ~delay:at (fun () ->
      Sim.Engine.spawn t.engine ~name (fun () ->
          let prng = Sim.Prng.create ~seed in
          let submitted_at = Sim.Engine.now t.engine in
          (* Time of the family's first crash abort, if any: closed into the
             recovery-latency histogram when the family finally commits. *)
          let first_crash_at = ref None in
          let rec attempt k =
            (* A node inside a crash window executes nothing, and a node
               parked on the minority side of a partition starts no new
               roots: wait out both before starting (or retrying) an
               attempt. Re-check after every wake — a park can resolve into
               a crash (and vice versa) while the fiber slept. *)
            let rec wait_ready () =
              if t.crash_enabled && t.crashed.(node) then (
                match t.rejoin.(node) with
                | Some iv ->
                    Sim.Engine.Ivar.read iv;
                    wait_ready ()
                | None -> ())
              else if t.crash_enabled && t.parked.(node) then (
                match t.park_ivars.(node) with
                | Some iv ->
                    Sim.Engine.Ivar.read iv;
                    wait_ready ()
                | None -> ())
            in
            wait_ready ();
            let root = Txn_tree.create_root t.tree ~node in
            init_txn_state t root;
            if t.crash_enabled then Txn_id.Table.replace t.live_roots root ();
            record_event t (fun () ->
                Dsm.Event.Root_begin { family = root; node; oid; attempt = k + 1 });
            let ok =
              try
                run_body t ~prng ~txn:root ~oid ~cm;
                (* TTL doom: a lease-backed read whose lease has expired or
                   been superseded is no longer protected against writers —
                   the family must retry rather than commit it. *)
                if validate_lease_reads t ~family:root then begin
                  (* Commit point: after this check the family is no longer
                     doomable and [commit_root] runs without yielding. *)
                  Sim.Engine.wait t.cfg.Config.local_lock_op_us;
                  check_crashed t ~txn_root:root;
                  if t.crash_enabled then Txn_id.Table.remove t.live_roots root;
                  commit_root t root;
                  `Committed
                end
                else begin
                  Dsm.Metrics.incr_lease_aborts t.metrics;
                  record_event t (fun () ->
                      Dsm.Event.Lease_abort { family = root; node; oid = None });
                  abort_root t root;
                  `Retry
                end
              with
              | Family_abort -> (
                  try
                    abort_root t root;
                    `Retry
                  with Crashed_abort ->
                    crashed_purge_root t root;
                    `Crashed)
              | Crashed_abort ->
                  crashed_purge_root t root;
                  `Crashed
              | Recursion_rejected target ->
                  record_event t (fun () ->
                      Dsm.Event.Recursion_reject { family = root; oid = target });
                  (try abort_root t root with Crashed_abort -> crashed_purge_root t root);
                  `Fatal
            in
            let ok =
              match ok with
              | `Crashed ->
                  if !first_crash_at = None then
                    first_crash_at := Some (Sim.Engine.now t.engine);
                  `Retry
              | (`Committed | `Retry | `Fatal) as o -> o
            in
            match ok with
            | `Committed ->
                (match !first_crash_at with
                | Some t0 ->
                    Dsm.Metrics.record_recovery_latency_us t.metrics
                      (Sim.Engine.now t.engine -. t0)
                | None -> ());
                Dsm.Metrics.record_commit_latency_us t.metrics
                  (Sim.Engine.now t.engine -. submitted_at);
                (k + 1, Committed)
            | `Fatal ->
                Dsm.Metrics.incr_roots_aborted t.metrics;
                (k + 1, Gave_up)
            | `Retry when k < t.cfg.Config.max_root_retries -> begin
              Dsm.Metrics.incr_retries t.metrics;
              let backoff =
                t.cfg.Config.root_retry_backoff_us
                *. float_of_int (1 lsl min k 6)
                *. (1.0 +. Sim.Prng.float prng 1.0)
              in
              Sim.Engine.wait backoff;
              attempt (k + 1)
            end
            | `Retry ->
                Dsm.Metrics.incr_roots_aborted t.metrics;
                (k + 1, Gave_up)
          in
          let attempts, outcome = attempt 0 in
          if not t.cfg.Config.streaming then
            t.results <-
              {
                oid;
                meth;
                node;
                submitted_at;
                completed_at = Sim.Engine.now t.engine;
                attempts;
                outcome;
              }
              :: t.results;
          t.outstanding <- t.outstanding - 1))

(* End-of-run escrow flush: every node ledger pushes its last partial
   batch home, so the run ends with no unreconciled deltas (the checker's
   end condition) and the homes report true final quantities. *)
let escrow_flush t =
  Array.iteri
    (fun node ledgers ->
      Itbl.fold (fun key l acc -> (key, l) :: acc) ledgers []
      |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
      |> List.iter (fun (key, l) -> escrow_send_reconcile t ~node (Oid.of_int key) l))
    t.escrow_ledgers

let run t =
  if t.crash_enabled && not t.ran then arm_crash_machinery t;
  Sim.Engine.run t.engine;
  if t.escrow_enabled then begin
    escrow_flush t;
    Sim.Engine.run t.engine
  end;
  t.ran <- true;
  assert (t.outstanding = 0);
  Dsm.Metrics.set_completion_time_us t.metrics (Sim.Engine.now t.engine)

let results t = List.rev t.results
let committed_history t = List.rev t.history
let escrow_ops t = List.rev t.escrow_ops

let check_escrow t =
  match t.escrow_params with
  | None -> Ok []
  | Some p ->
      Serializability.check_escrow ~lower:p.Dsm.Escrow.lower_bound
        ~upper:p.Dsm.Escrow.upper_bound ~initial:p.Dsm.Escrow.initial
        ~ops:(List.rev t.escrow_ops)
let membership_epoch t = t.membership_epoch
let membership_log t = t.membership_log
let node_declared_down t ~node = t.declared_down.(node)
let node_parked t ~node = t.parked.(node)

let audit t =
  let dir = Gdo.Directory.audit t.gdo in
  let mem =
    match Membership_audit.check t.membership_log with Ok () -> [] | Error vs -> vs
  in
  dir @ mem

let dump_directory t =
  let partition_info oid =
    let p = Oid.to_int oid mod t.cfg.Config.node_count in
    Printf.sprintf "[p%d acting=%d@e%d fence=%.0f%s%s]" p t.acting_home.(p)
      t.acting_epoch.(p) t.fence_until.(p)
      (if t.declared_down.(p) then " declared-down" else "")
      (if t.parked.(p) then " parked" else "")
  in
  Gdo.Directory.dump ~partition_info t.gdo
let check_serializable t = Serializability.check (committed_history t)
let next_version_exceeds t n = t.next_version > n
