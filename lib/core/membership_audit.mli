(** Split-brain auditor over the runtime's acting-home log.

    Quorum membership replaces ground-truth crash confirmation, so a
    false declaration is possible by design (a partitioned-away node
    looks dead). What must {e never} happen is two regimes serving the
    same directory partition under the same membership epoch — the
    split-brain the epoch/lease fencing exists to prevent. This module
    checks the log of acting-home changes the runtime appends (see
    [Runtime.membership_log]): at most one serving node per (epoch,
    partition), and epochs non-decreasing along the log.

    The per-object half of the audit — at most one exclusive holder per
    directory entry — is [Gdo.Directory.audit]. *)

val check : (int * int * int) list -> (unit, string list) result
(** [check log] over (epoch, partition, serving) records, newest first as
    the runtime accumulates them. [Ok ()] when no partition was ever
    served by two nodes within one epoch and epochs never regressed;
    otherwise every violation, described. *)
