(* The membership half of the split-brain auditor: the acting-home log is
   a sequence of (epoch, partition, serving) records appended by
   [Runtime.recompute_acting_homes] whenever a partition's acting home
   changes. Split-brain would show up here as two different nodes recorded
   as serving the same partition at the same membership epoch — two
   regimes both believing they own the directory partition. *)

let check log =
  (* Oldest first; the runtime prepends. *)
  let log = List.rev log in
  let seen = Hashtbl.create 16 in
  let violations = ref [] in
  List.iter
    (fun (epoch, partition, serving) ->
      match Hashtbl.find_opt seen (epoch, partition) with
      | Some other when other <> serving ->
          violations :=
            Printf.sprintf
              "partition %d served by both node %d and node %d at membership epoch %d"
              partition other serving epoch
            :: !violations
      | Some _ -> ()
      | None -> Hashtbl.replace seen (epoch, partition) serving)
    log;
  (* Epochs must be non-decreasing along the log: a regression would mean
     an acting home was installed under a stale view. *)
  let rec monotone last = function
    | [] -> ()
    | (epoch, partition, _) :: rest ->
        if epoch < last then
          violations :=
            Printf.sprintf "membership epoch regressed to %d at partition %d" epoch partition
            :: !violations;
        monotone (max last epoch) rest
  in
  monotone 0 log;
  match List.rev !violations with [] -> Ok () | vs -> Error vs
