open Txn

(** Conflict-serializability checking over committed root transactions.

    Nested O2PL guarantees serializable executions (paper §4.3); this module
    verifies it empirically. Page writes are globally unique version numbers,
    so the conflict graph over committed families can be rebuilt exactly:

    - {b ww}: the writer of version [v] precedes the writer of the next
      version of the same page;
    - {b wr}: the writer of version [v] precedes every family that read [v];
    - {b rw}: a family that read version [v] precedes the writer of the next
      version of the same page.

    An execution is conflict-serializable iff this graph is acyclic; the
    serialization order is any topological order. *)

type access = { oid : Objmodel.Oid.t; page : int; version : int }

type committed_root = {
  root : Txn_id.t;
  reads : access list;  (** versions observed (reads and read-before-write) *)
  writes : access list;  (** versions produced *)
}

type verdict =
  | Serializable of Txn_id.t list  (** a witness serialization order *)
  | Cyclic of Txn_id.t list  (** a conflict cycle *)

val check : committed_root list -> verdict

val edges : committed_root list -> (Txn_id.t * Txn_id.t) list
(** The conflict edges (deduplicated, no self-edges), for diagnostics. *)

(** {1 Escrow semantics}

    Escrowed objects deliberately step outside the page-version conflict
    graph: commuting deltas are admitted concurrently, so their page
    histories need not serialize. What must hold instead is O'Neil-style
    escrow correctness, checked by replaying the typed op log the runtime
    records for every escrowed object:

    - every admitted reservation passes the worst-case bounds test at the
      moment it was admitted;
    - the object's value — and its worst case over all outstanding
      reservations and delegated quota — never leaves [\[lower, upper\]];
    - local commits never exceed the node's delegated quota, and every
      reconcile reports exactly the pending delta and quota spent;
    - conservation: home value + unreconciled node deltas always equals
      [initial] + every committed delta (nothing lost, nothing doubled);
    - at end of run no reservation is unresolved and no delta unreconciled. *)

type escrow_op =
  | E_reserve of { oid : Objmodel.Oid.t; family : Txn_id.t; delta : int }
      (** the home admitted a [delta] reservation for [family] *)
  | E_commit of { oid : Objmodel.Oid.t; family : Txn_id.t }
      (** [family]'s reservation folded into the home value at root commit *)
  | E_abort of { oid : Objmodel.Oid.t; family : Txn_id.t }
      (** [family]'s reservation dropped without folding *)
  | E_delegate of { oid : Objmodel.Oid.t; node : int; up : int; down : int }
      (** the home granted [node] [up]/[down] quota units *)
  | E_local_commit of { oid : Objmodel.Oid.t; node : int; delta : int }
      (** a zero-message commit at [node] against its delegated quota *)
  | E_reconcile of {
      oid : Objmodel.Oid.t;
      node : int;
      delta : int;
      used_up : int;
      used_down : int;
    }  (** [node] pushed its pending [delta] home, consuming spent quota *)
  | E_revoke of { oid : Objmodel.Oid.t; node : int }
      (** [node]'s remaining quota was recalled (after its final reconcile) *)

val check_escrow :
  lower:int ->
  upper:int ->
  initial:int ->
  ops:escrow_op list ->
  ((Objmodel.Oid.t * int) list, string list) result
(** Replay [ops] (in simulated-time order) against the invariants above.
    [Ok finals] gives each escrowed object's final value, sorted by oid;
    [Error es] lists every violated invariant with its op index. *)
