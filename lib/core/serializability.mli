open Txn

(** Conflict-serializability checking over committed root transactions.

    Nested O2PL guarantees serializable executions (paper §4.3); this module
    verifies it empirically. Page writes are globally unique version numbers,
    so the conflict graph over committed families can be rebuilt exactly:

    - {b ww}: the writer of version [v] precedes the writer of the next
      version of the same page;
    - {b wr}: the writer of version [v] precedes every family that read [v];
    - {b rw}: a family that read version [v] precedes the writer of the next
      version of the same page.

    An execution is conflict-serializable iff this graph is acyclic; the
    serialization order is any topological order. *)

type access = { oid : Objmodel.Oid.t; page : int; version : int }

type committed_root = {
  root : Txn_id.t;
  reads : access list;  (** versions observed (reads and read-before-write) *)
  writes : access list;  (** versions produced *)
}

type verdict =
  | Serializable of Txn_id.t list  (** a witness serialization order *)
  | Cyclic of Txn_id.t list  (** a conflict cycle *)

val check : committed_root list -> verdict

val edges : committed_root list -> (Txn_id.t * Txn_id.t) list
(** The conflict edges (deduplicated, no self-edges), for diagnostics. *)
