open Objmodel
open Txn

type access = { oid : Oid.t; page : int; version : int }

type committed_root = { root : Txn_id.t; reads : access list; writes : access list }

type verdict = Serializable of Txn_id.t list | Cyclic of Txn_id.t list

module PageKey = struct
  type t = Oid.t * int

  let compare (o1, p1) (o2, p2) =
    let c = Oid.compare o1 o2 in
    if c <> 0 then c else Int.compare p1 p2
end

module PageMap = Map.Make (PageKey)

module EdgeSet = Set.Make (struct
  type t = Txn_id.t * Txn_id.t

  let compare (a1, b1) (a2, b2) =
    let c = Txn_id.compare a1 a2 in
    if c <> 0 then c else Txn_id.compare b1 b2
end)

(* For each page: the versions written (version -> writer), sorted; and the
   versions read (version -> readers). *)
let index roots =
  let writers = ref PageMap.empty in
  let readers = ref PageMap.empty in
  List.iter
    (fun r ->
      List.iter
        (fun a ->
          let key = (a.oid, a.page) in
          let cur = Option.value ~default:[] (PageMap.find_opt key !writers) in
          writers := PageMap.add key ((a.version, r.root) :: cur) !writers)
        r.writes;
      List.iter
        (fun a ->
          let key = (a.oid, a.page) in
          let cur = Option.value ~default:[] (PageMap.find_opt key !readers) in
          readers := PageMap.add key ((a.version, r.root) :: cur) !readers)
        r.reads)
    roots;
  (!writers, !readers)

let edges roots =
  let writers, readers = index roots in
  let acc = ref EdgeSet.empty in
  let add a b = if not (Txn_id.equal a b) then acc := EdgeSet.add (a, b) !acc in
  PageMap.iter
    (fun key ws ->
      let ws = List.sort (fun (v1, _) (v2, _) -> Int.compare v1 v2) ws in
      (* ww edges between consecutive writers. *)
      let rec ww = function
        | (_, w1) :: ((_, w2) :: _ as rest) ->
            add w1 w2;
            ww rest
        | _ -> ()
      in
      ww ws;
      let rs = Option.value ~default:[] (PageMap.find_opt key readers) in
      List.iter
        (fun (rv, reader) ->
          (* wr: whoever wrote version rv precedes the reader. *)
          List.iter (fun (wv, writer) -> if wv = rv then add writer reader) ws;
          (* rw: the reader precedes the writer of the next version. *)
          let next =
            List.fold_left
              (fun best (wv, writer) ->
                if wv > rv then
                  match best with
                  | Some (bv, _) when bv <= wv -> best
                  | _ -> Some (wv, writer)
                else best)
              None ws
          in
          match next with Some (_, writer) -> add reader writer | None -> ())
        rs)
    writers;
  EdgeSet.elements !acc

let check roots =
  let es = edges roots in
  let nodes = List.map (fun r -> r.root) roots in
  let succs = Txn_id.Table.create 64 in
  List.iter
    (fun (a, b) ->
      let cur = Option.value ~default:[] (Txn_id.Table.find_opt succs a) in
      Txn_id.Table.replace succs a (b :: cur))
    es;
  (* Iterative DFS with colours; produces reverse topological order or finds a
     cycle. *)
  let colour = Txn_id.Table.create 64 in
  (* 1 = in progress, 2 = done *)
  let order = ref [] in
  let cycle = ref None in
  let rec visit path n =
    if !cycle <> None then ()
    else
      match Txn_id.Table.find_opt colour n with
      | Some 2 -> ()
      | Some _ ->
          let rec take acc = function
            | [] -> acc
            | x :: rest -> if Txn_id.equal x n then x :: acc else take (x :: acc) rest
          in
          cycle := Some (take [] path)
      | None ->
          Txn_id.Table.replace colour n 1;
          List.iter (visit (n :: path)) (Option.value ~default:[] (Txn_id.Table.find_opt succs n));
          Txn_id.Table.replace colour n 2;
          order := n :: !order
  in
  List.iter (fun n -> visit [] n) nodes;
  match !cycle with Some c -> Cyclic c | None -> Serializable !order
