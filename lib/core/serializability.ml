open Objmodel
open Txn

type access = { oid : Oid.t; page : int; version : int }

type committed_root = { root : Txn_id.t; reads : access list; writes : access list }

type verdict = Serializable of Txn_id.t list | Cyclic of Txn_id.t list

module PageKey = struct
  type t = Oid.t * int

  let compare (o1, p1) (o2, p2) =
    let c = Oid.compare o1 o2 in
    if c <> 0 then c else Int.compare p1 p2
end

module PageMap = Map.Make (PageKey)

module EdgeSet = Set.Make (struct
  type t = Txn_id.t * Txn_id.t

  let compare (a1, b1) (a2, b2) =
    let c = Txn_id.compare a1 a2 in
    if c <> 0 then c else Txn_id.compare b1 b2
end)

(* For each page: the versions written (version -> writer), sorted; and the
   versions read (version -> readers). *)
let index roots =
  let writers = ref PageMap.empty in
  let readers = ref PageMap.empty in
  List.iter
    (fun r ->
      List.iter
        (fun a ->
          let key = (a.oid, a.page) in
          let cur = Option.value ~default:[] (PageMap.find_opt key !writers) in
          writers := PageMap.add key ((a.version, r.root) :: cur) !writers)
        r.writes;
      List.iter
        (fun a ->
          let key = (a.oid, a.page) in
          let cur = Option.value ~default:[] (PageMap.find_opt key !readers) in
          readers := PageMap.add key ((a.version, r.root) :: cur) !readers)
        r.reads)
    roots;
  (!writers, !readers)

let edges roots =
  let writers, readers = index roots in
  let acc = ref EdgeSet.empty in
  let add a b = if not (Txn_id.equal a b) then acc := EdgeSet.add (a, b) !acc in
  PageMap.iter
    (fun key ws ->
      let ws = List.sort (fun (v1, _) (v2, _) -> Int.compare v1 v2) ws in
      (* ww edges between consecutive writers. *)
      let rec ww = function
        | (_, w1) :: ((_, w2) :: _ as rest) ->
            add w1 w2;
            ww rest
        | _ -> ()
      in
      ww ws;
      let rs = Option.value ~default:[] (PageMap.find_opt key readers) in
      List.iter
        (fun (rv, reader) ->
          (* wr: whoever wrote version rv precedes the reader. *)
          List.iter (fun (wv, writer) -> if wv = rv then add writer reader) ws;
          (* rw: the reader precedes the writer of the next version. *)
          let next =
            List.fold_left
              (fun best (wv, writer) ->
                if wv > rv then
                  match best with
                  | Some (bv, _) when bv <= wv -> best
                  | _ -> Some (wv, writer)
                else best)
              None ws
          in
          match next with Some (_, writer) -> add reader writer | None -> ())
        rs)
    writers;
  EdgeSet.elements !acc

let check roots =
  let es = edges roots in
  let nodes = List.map (fun r -> r.root) roots in
  let succs = Txn_id.Table.create 64 in
  List.iter
    (fun (a, b) ->
      let cur = Option.value ~default:[] (Txn_id.Table.find_opt succs a) in
      Txn_id.Table.replace succs a (b :: cur))
    es;
  (* Iterative DFS with colours; produces reverse topological order or finds a
     cycle. *)
  let colour = Txn_id.Table.create 64 in
  (* 1 = in progress, 2 = done *)
  let order = ref [] in
  let cycle = ref None in
  let rec visit path n =
    if !cycle <> None then ()
    else
      match Txn_id.Table.find_opt colour n with
      | Some 2 -> ()
      | Some _ ->
          let rec take acc = function
            | [] -> acc
            | x :: rest -> if Txn_id.equal x n then x :: acc else take (x :: acc) rest
          in
          cycle := Some (take [] path)
      | None ->
          Txn_id.Table.replace colour n 1;
          List.iter (visit (n :: path)) (Option.value ~default:[] (Txn_id.Table.find_opt succs n));
          Txn_id.Table.replace colour n 2;
          order := n :: !order
  in
  List.iter (fun n -> visit [] n) nodes;
  match !cycle with Some c -> Cyclic c | None -> Serializable !order

(* --- escrow semantics -------------------------------------------------- *)

type escrow_op =
  | E_reserve of { oid : Oid.t; family : Txn_id.t; delta : int }
  | E_commit of { oid : Oid.t; family : Txn_id.t }
  | E_abort of { oid : Oid.t; family : Txn_id.t }
  | E_delegate of { oid : Oid.t; node : int; up : int; down : int }
  | E_local_commit of { oid : Oid.t; node : int; delta : int }
  | E_reconcile of { oid : Oid.t; node : int; delta : int; used_up : int; used_down : int }
  | E_revoke of { oid : Oid.t; node : int }

(* Replay state of one escrowed object: the home's committed value, the
   outstanding per-family reservations, and per node the remaining delegated
   quota plus the locally committed delta not yet reconciled home. *)
type obj_state = {
  mutable value : int;
  mutable res : (Txn_id.t * int) list;
  mutable committed : int;  (* sum of every delta committed so far *)
  nodes : (int, node_state) Hashtbl.t;
}

and node_state = {
  mutable q_up : int;
  mutable q_down : int;
  mutable pending : int;  (* net local-commit delta since the last reconcile *)
  mutable spent_up : int;  (* quota units spent since the last reconcile *)
  mutable spent_down : int;
}

let check_escrow ~lower ~upper ~initial ~ops =
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  let objects : obj_state Oid.Table.t = Oid.Table.create 16 in
  let state oid =
    match Oid.Table.find_opt objects oid with
    | Some s -> s
    | None ->
        let s = { value = initial; res = []; committed = 0; nodes = Hashtbl.create 4 } in
        Oid.Table.add objects oid s;
        s
  in
  let node_state s n =
    match Hashtbl.find_opt s.nodes n with
    | Some ns -> ns
    | None ->
        let ns = { q_up = 0; q_down = 0; pending = 0; spent_up = 0; spent_down = 0 } in
        Hashtbl.add s.nodes n ns;
        ns
  in
  let worst_down s =
    List.fold_left (fun acc (_, d) -> if d < 0 then acc + d else acc) 0 s.res
    - Hashtbl.fold (fun _ ns acc -> acc + ns.q_down) s.nodes 0
  in
  let worst_up s =
    List.fold_left (fun acc (_, d) -> if d > 0 then acc + d else acc) 0 s.res
    + Hashtbl.fold (fun _ ns acc -> acc + ns.q_up) s.nodes 0
  in
  (* Invariants that must hold after every step: the worst case over all
     outstanding obligations stays in bounds, and the home value plus the
     unreconciled node deltas equals initial + everything committed
     (conservation — no delta is lost or applied twice). *)
  let assert_state i oid s =
    if s.value < lower || s.value > upper then
      err "op %d: %a value %d outside [%d, %d]" i Oid.pp oid s.value lower upper;
    if s.value + worst_down s < lower then
      err "op %d: %a worst-case low %d breaches floor %d" i Oid.pp oid
        (s.value + worst_down s) lower;
    if upper - s.value - worst_up s < 0 then
      err "op %d: %a worst-case high %d breaches ceiling %d" i Oid.pp oid
        (s.value + worst_up s) upper;
    let pending = Hashtbl.fold (fun _ ns acc -> acc + ns.pending) s.nodes 0 in
    if s.value + pending <> initial + s.committed then
      err "op %d: %a conservation broken: value %d + pending %d <> initial %d + committed %d"
        i Oid.pp oid s.value pending initial s.committed
  in
  List.iteri
    (fun i op ->
      match op with
      | E_reserve { oid; family; delta } ->
          let s = state oid in
          (* The log only records admitted reservations; re-run the
             admission test to prove each admission was legal. *)
          let ok =
            if delta < 0 then s.value + worst_down s - lower + delta >= 0
            else if delta > 0 then upper - s.value - worst_up s - delta >= 0
            else true
          in
          if not ok then
            err "op %d: %a reservation %+d by %a was admitted but breaches a bound" i Oid.pp
              oid delta Txn_id.pp family;
          let cur = Option.value ~default:0 (List.assoc_opt family s.res) in
          s.res <- (family, cur + delta) :: List.remove_assoc family s.res;
          assert_state i oid s
      | E_commit { oid; family } -> (
          let s = state oid in
          match List.assoc_opt family s.res with
          | None -> err "op %d: %a commit by %a with no reservation" i Oid.pp oid Txn_id.pp family
          | Some d ->
              s.res <- List.remove_assoc family s.res;
              s.value <- s.value + d;
              s.committed <- s.committed + d;
              assert_state i oid s)
      | E_abort { oid; family } ->
          let s = state oid in
          if not (List.mem_assoc family s.res) then
            err "op %d: %a abort by %a with no reservation" i Oid.pp oid Txn_id.pp family
          else s.res <- List.remove_assoc family s.res;
          assert_state i oid s
      | E_delegate { oid; node; up; down } ->
          let s = state oid in
          if up < 0 || down < 0 then err "op %d: %a negative delegation" i Oid.pp oid;
          let ns = node_state s node in
          ns.q_up <- ns.q_up + up;
          ns.q_down <- ns.q_down + down;
          assert_state i oid s
      | E_local_commit { oid; node; delta } ->
          let s = state oid in
          let ns = node_state s node in
          if delta > 0 then begin
            if ns.q_up < delta then
              err "op %d: %a node %d local commit %+d exceeds up-quota %d" i Oid.pp oid node
                delta ns.q_up;
            ns.q_up <- ns.q_up - delta;
            ns.spent_up <- ns.spent_up + delta
          end
          else if delta < 0 then begin
            if ns.q_down < -delta then
              err "op %d: %a node %d local commit %+d exceeds down-quota %d" i Oid.pp oid node
                delta ns.q_down;
            ns.q_down <- ns.q_down + delta;
            ns.spent_down <- ns.spent_down - delta
          end;
          ns.pending <- ns.pending + delta;
          s.committed <- s.committed + delta;
          assert_state i oid s
      | E_reconcile { oid; node; delta; used_up; used_down } ->
          let s = state oid in
          let ns = node_state s node in
          if delta <> ns.pending then
            err "op %d: %a node %d reconciles %+d but %+d is pending" i Oid.pp oid node delta
              ns.pending;
          if used_up <> ns.spent_up || used_down <> ns.spent_down then
            err "op %d: %a node %d reports quota use %d/%d, spent %d/%d" i Oid.pp oid node
              used_up used_down ns.spent_up ns.spent_down;
          s.value <- s.value + ns.pending;
          ns.pending <- 0;
          ns.spent_up <- 0;
          ns.spent_down <- 0;
          assert_state i oid s
      | E_revoke { oid; node } ->
          let s = state oid in
          let ns = node_state s node in
          if ns.pending <> 0 then
            err "op %d: %a node %d quota revoked with %+d unreconciled" i Oid.pp oid node
              ns.pending;
          ns.q_up <- 0;
          ns.q_down <- 0;
          assert_state i oid s)
    ops;
  (* End of run: every reservation resolved, every local delta reconciled. *)
  Oid.Table.iter
    (fun oid s ->
      List.iter
        (fun (f, d) -> err "end: %a reservation %+d by %a never resolved" Oid.pp oid d Txn_id.pp f)
        s.res;
      Hashtbl.iter
        (fun n ns ->
          if ns.pending <> 0 then
            err "end: %a node %d still has %+d unreconciled" Oid.pp oid n ns.pending)
        s.nodes;
      if s.value <> initial + s.committed then
        err "end: %a final value %d <> initial %d + committed %d" Oid.pp oid s.value initial
          s.committed)
    objects;
  let finals =
    Oid.Table.fold (fun oid s acc -> (oid, s.value) :: acc) objects []
    |> List.sort (fun (a, _) (b, _) -> Oid.compare a b)
  in
  if !errors = [] then Ok finals else Error (List.rev !errors)
