(** Runtime configuration: protocol choice, cluster shape, cost model.

    All times are simulated microseconds; all sizes are bytes. The defaults
    correspond to the paper's setting: 4 KiB pages, a switched 100 Mbps
    network with 20 µs per-message software cost, and cheap local
    operations relative to messaging. *)

type t = {
  node_count : int;
  page_size : int;
  link : Sim.Network.link;
  protocol : Dsm.Protocol.t;
  class_protocols : (string * Dsm.Protocol.t) list;
      (** per-class protocol overrides, by class name — the paper's §6
          future-work extension ("different consistency protocols ... on a
          per-class basis"). Classes not listed use [protocol]. *)
  (* Message sizing. *)
  control_msg_bytes : int;  (** lock requests, page requests, acks *)
  page_header_bytes : int;  (** per-page framing in data messages *)
  page_map_entry_bytes : int;  (** per-page cost of shipping the page map in a grant *)
  gdo_replicas : int;
      (** The paper's GDO is "partitioned and replicated ... to ensure
          efficiency and reliability". Each directory mutation (lock grant,
          queue change, release) is shipped asynchronously to this many
          replica sites; 0 (default) disables replication. With crash
          windows configured the replication is {e live}: when a home
          crashes and is declared dead, its first surviving ring successor
          — a replica — takes over the partition, reconfirms holders,
          evicts the dead node's families, and serves re-routed requests
          until the home rejoins (see DESIGN.md, "Failure model &
          recovery"). With [gdo_replicas = 0] the partition is simply
          unavailable until the restart. *)
  (* Local costs. *)
  local_lock_op_us : float;
  gdo_op_us : float;  (** directory processing per lock operation *)
  statement_us : float;  (** CPU cost per executed IR statement *)
  undo_page_us : float;  (** cost of undoing one page write *)
  page_service_us : float;  (** cost for a node to serve a page request *)
  (* Failure injection and recovery policy. *)
  recovery : Txn.Recovery.strategy;  (** local UNDO mechanism: undo logs or shadow pages *)
  abort_probability : float;  (** chance an executing sub-transaction fails at its end *)
  max_sub_retries : int;  (** re-executions of a failed sub-transaction *)
  max_root_retries : int;  (** re-executions of a deadlock-aborted family *)
  root_retry_backoff_us : float;  (** base backoff, doubled per retry, jittered *)
  (* Extensions (paper §5.1 / §6). *)
  prefetch : bool;  (** optimistic pre-acquisition of sub-invocation locks *)
  multicast_push : bool;  (** RC-nested pushes charged as one multicast message *)
  (* Recursion policy (paper §3.4). *)
  allow_recursive_catalogs : bool;
      (** The paper precludes mutually recursive invocations and offers two
          enforcement alternatives. [false] (default): reject cyclic
          reference graphs statically at {!Runtime.create}. [true]: admit
          them and verify at run time — each invocation walks its ancestor
          chain (cost proportional to nesting depth, as the paper notes) and
          a family that actually recurses is aborted permanently. *)
  (* Instrumentation and execution model. *)
  trace_capacity : int;  (** > 0 keeps a ring of protocol events of that size *)
  streaming : bool;
      (** Bounded-memory mode for very large runs (the [scale] experiment):
          per-root results and the serializability history are not retained
          — aggregate {!Dsm.Metrics} counters and histograms are the only
          output — and a root family's transaction-tree records are pruned
          when the family completes, so resident memory no longer grows
          with the root count. {!Runtime.results} returns [[]],
          {!Runtime.check_serializable} trivially passes. Requires a
          fault-free run ([faults = None]): the reliable transport and
          crash recovery consult completed families' records. Off by
          default — default-config runs are byte-identical to the
          pre-streaming runtime. *)
  cpu_limited : bool;
      (** serialise statement execution on one CPU per node (off by default:
          the paper's metrics are traffic-, not CPU-bound) *)
  (* Interconnect fault injection and the runtime's reliable transport. *)
  faults : Sim.Fault.config option;
      (** [None] (default): the paper's perfectly reliable switched network.
          [Some f] with {!Sim.Fault.is_active}[ f]: the network drops,
          duplicates, jitters and window-defers messages per [f], and the
          runtime layers a reliable transport (per-message acks, receiver
          dedup, sender retransmit) over every protocol message so the run
          still completes correctly. An inactive config behaves exactly like
          [None]. *)
  request_timeout_us : float;
      (** base retransmit timer for an unacknowledged protocol message;
          subsequent retransmit delays grow by decorrelated jitter
          ({!Sim.Backoff}): drawn uniformly from [base, 3 * prev) on the
          sender's private seed-deterministic stream and clamped to
          [retransmit_backoff_cap_us]. Only used when [faults] is
          active. *)
  max_retransmits : int;
      (** retransmissions of one message before the transport gives up.
          A give-up is counted ({!Dsm.Metrics}), reported to the sender's
          failure detector as a suspect hint, and surfaced to the blocked
          operation (which aborts its family and retries) — it never
          stalls the simulation. With the default 10 and drop rates
          <= 0.2 a give-up is a ~1e-8 per-message event; crash-window
          tests lower it to exercise the recovery path. *)
  retransmit_backoff_cap_us : float;
      (** upper bound on any single retransmit delay. Uncapped exponential
          backoff pushes retries of a long partition far past its heal;
          the cap bounds the post-heal recovery latency. Must be >=
          [request_timeout_us]. *)
  heartbeat_interval_us : float;
      (** period of the liveness heartbeats every node broadcasts while
          crash windows are configured (crash-free runs send none) *)
  suspect_timeout_us : float;
      (** silence after which a peer becomes a suspect
          ([Sim.Failure_detector]); must be >= the heartbeat interval *)
  lease : Gdo.Lease.policy;
      (** Read leases: {!Gdo.Lease.Off} (default) reproduces the paper's
          protocol exactly; a TTL or adaptive policy lets the GDO home grant
          read leases alongside read grants, so repeat read acquisitions at a
          leased node complete with zero home-node messages, and write
          acquisitions first recall outstanding leases (see {!Gdo.Lease}). *)
  batching : Dsm.Batching.t;
      (** Message combining: {!Dsm.Batching.off} (default) reproduces the
          paper's per-message protocol exactly; enabling features piggybacks
          transport acks on same-channel payloads, aggregates a method's
          demand fetches, coalesces same-instant per-home releases and
          suppresses heartbeats on recently active channels (see
          {!Dsm.Batching}). When [ack_piggyback] is on, [ack_flush_us] must
          be below [request_timeout_us] so a flushed ack always beats the
          sender's retransmit timer. *)
  method_cache : Dsm.Method_cache.policy;
      (** Method-result caching: {!Dsm.Method_cache.Off} (default)
          reproduces the lease runtime exactly; an LRU policy lets a node
          serve a repeat read-only invocation from its cached read log —
          zero messages {e and} zero local page reads — whenever its read
          lease on the object is valid and the cached version vector
          matches. Requires an enabled [lease] policy: the lease's
          recall/expiry/epoch machinery is the cache's invalidation signal
          (see {!Dsm.Method_cache}). *)
  shipping : Dsm.Shipping.policy;
      (** Function shipping: {!Dsm.Shipping.Off} (default) reproduces the
          data-shipping runtime exactly; [On] runs the per-invocation cost
          model at every method dispatch and, when shipping wins, executes
          the invocation as a sub-fiber at the majority home of its
          predicted pages — one [Ship_invoke]/[Ship_reply] pair instead of
          the stale-page transfers — under the unchanged O2PL/lease/commit
          rules (see {!Dsm.Shipping}). Excludes [prefetch]: optimistic
          pre-acquisition would fetch pages to the invoker while the model
          is deciding to execute elsewhere. *)
  escrow : Dsm.Escrow.policy;
      (** Escrow commit: {!Dsm.Escrow.Off} (default) reproduces the
          exclusive-locking runtime exactly; [On] routes every invocation of
          a declared-commutative method ({!Objmodel.Method_ir.commutativity})
          through bounds-checked delta reservations at the object's GDO home
          instead of page locks, with per-node quota delegation enabling a
          zero-message local pre-commit fast path, lazily reconciled and
          epoch-fence recalled like a lease (see {!Dsm.Escrow}). Requires a
          fault-free run and undo-log recovery; excludes [prefetch] and
          [shipping]. *)
}

val default : t

val validate : t -> (unit, string) result
(** Sanity-check ranges (positive sizes, probability in [0,1], ...). *)

val pp : Format.formatter -> t -> unit
