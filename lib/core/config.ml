type t = {
  node_count : int;
  page_size : int;
  link : Sim.Network.link;
  protocol : Dsm.Protocol.t;
  class_protocols : (string * Dsm.Protocol.t) list;
  control_msg_bytes : int;
  page_header_bytes : int;
  page_map_entry_bytes : int;
  gdo_replicas : int;
  local_lock_op_us : float;
  gdo_op_us : float;
  statement_us : float;
  undo_page_us : float;
  page_service_us : float;
  recovery : Txn.Recovery.strategy;
  abort_probability : float;
  max_sub_retries : int;
  max_root_retries : int;
  root_retry_backoff_us : float;
  prefetch : bool;
  multicast_push : bool;
  allow_recursive_catalogs : bool;
  trace_capacity : int;
  streaming : bool;
  cpu_limited : bool;
  faults : Sim.Fault.config option;
  request_timeout_us : float;
  max_retransmits : int;
  retransmit_backoff_cap_us : float;
  heartbeat_interval_us : float;
  suspect_timeout_us : float;
  lease : Gdo.Lease.policy;
  batching : Dsm.Batching.t;
  method_cache : Dsm.Method_cache.policy;
  shipping : Dsm.Shipping.policy;
  escrow : Dsm.Escrow.policy;
}

let default =
  {
    node_count = 8;
    page_size = 4096;
    link = Sim.Network.link_100mbps;
    protocol = Dsm.Protocol.Lotec;
    class_protocols = [];
    control_msg_bytes = 128;
    page_header_bytes = 64;
    page_map_entry_bytes = 4;
    gdo_replicas = 0;
    local_lock_op_us = 1.0;
    gdo_op_us = 2.0;
    statement_us = 0.2;
    undo_page_us = 1.0;
    page_service_us = 1.0;
    recovery = Txn.Recovery.Undo_logging;
    abort_probability = 0.0;
    max_sub_retries = 2;
    max_root_retries = 20;
    root_retry_backoff_us = 200.0;
    prefetch = false;
    multicast_push = false;
    allow_recursive_catalogs = false;
    trace_capacity = 0;
    streaming = false;
    cpu_limited = false;
    faults = None;
    request_timeout_us = 5_000.0;
    max_retransmits = 10;
    retransmit_backoff_cap_us = 40_000.0;
    heartbeat_interval_us = 1_000.0;
    suspect_timeout_us = 4_000.0;
    lease = Gdo.Lease.Off;
    batching = Dsm.Batching.off;
    method_cache = Dsm.Method_cache.off;
    shipping = Dsm.Shipping.off;
    escrow = Dsm.Escrow.off;
  }

let validate t =
  let check cond msg = if cond then Ok () else Error msg in
  let ( let* ) = Result.bind in
  let* () = check (t.node_count > 0) "node_count must be positive" in
  let* () = check (t.page_size > 0) "page_size must be positive" in
  let* () = check (t.link.Sim.Network.bandwidth_bps > 0.0) "bandwidth must be positive" in
  let* () = check (t.link.Sim.Network.software_cost_us >= 0.0) "software cost must be >= 0" in
  let* () = check (t.control_msg_bytes > 0) "control_msg_bytes must be positive" in
  let* () = check (t.page_header_bytes >= 0) "page_header_bytes must be >= 0" in
  let* () =
    check (t.abort_probability >= 0.0 && t.abort_probability <= 1.0)
      "abort_probability must be in [0,1]"
  in
  let* () = check (t.max_sub_retries >= 0) "max_sub_retries must be >= 0" in
  let* () = check (t.max_root_retries >= 0) "max_root_retries must be >= 0" in
  let* () = check (t.root_retry_backoff_us >= 0.0) "root_retry_backoff_us must be >= 0" in
  let* () = check (t.local_lock_op_us >= 0.0) "local_lock_op_us must be >= 0" in
  let* () = check (t.gdo_op_us >= 0.0) "gdo_op_us must be >= 0" in
  let* () = check (t.statement_us >= 0.0) "statement_us must be >= 0" in
  let* () = check (t.undo_page_us >= 0.0) "undo_page_us must be >= 0" in
  let* () = check (t.page_service_us >= 0.0) "page_service_us must be >= 0" in
  let* () = check (t.page_map_entry_bytes >= 0) "page_map_entry_bytes must be >= 0" in
  let* () =
    check
      (t.gdo_replicas >= 0 && t.gdo_replicas < t.node_count)
      "gdo_replicas must be in [0, node_count)"
  in
  let* () = check (t.trace_capacity >= 0) "trace_capacity must be >= 0" in
  let* () =
    check
      ((not t.streaming) || Option.is_none t.faults)
      "streaming requires a fault-free run (faults = None)"
  in
  let* () = check (t.request_timeout_us > 0.0) "request_timeout_us must be positive" in
  let* () = check (t.max_retransmits >= 0) "max_retransmits must be >= 0" in
  let* () =
    check
      (t.retransmit_backoff_cap_us >= t.request_timeout_us)
      "retransmit_backoff_cap_us must be >= request_timeout_us"
  in
  let* () = check (t.heartbeat_interval_us > 0.0) "heartbeat_interval_us must be positive" in
  let* () =
    check
      (t.suspect_timeout_us >= t.heartbeat_interval_us)
      "suspect_timeout_us must be >= heartbeat_interval_us"
  in
  let* () = Gdo.Lease.validate_policy t.lease in
  let* () = Dsm.Batching.validate t.batching in
  let* () = Dsm.Method_cache.validate_policy t.method_cache in
  let* () =
    check
      ((not (Dsm.Method_cache.policy_enabled t.method_cache))
      || Gdo.Lease.policy_enabled t.lease)
      "method_cache requires an enabled lease policy (the lease is its invalidation signal)"
  in
  let* () =
    check
      ((not t.batching.Dsm.Batching.ack_piggyback)
      || t.batching.Dsm.Batching.ack_flush_us < t.request_timeout_us)
      "batching ack_flush_us must be below request_timeout_us"
  in
  let* () = Dsm.Shipping.validate_policy t.shipping in
  let* () =
    check
      ((not (Dsm.Shipping.policy_enabled t.shipping)) || not t.prefetch)
      "shipping excludes prefetch (optimistic pre-acquisition races the site decision)"
  in
  let* () = Dsm.Escrow.validate_policy t.escrow in
  let* () =
    check
      ((not (Dsm.Escrow.policy_enabled t.escrow)) || Option.is_none t.faults)
      "escrow requires a fault-free run (faults = None)"
  in
  let* () =
    check
      ((not (Dsm.Escrow.policy_enabled t.escrow)) || not t.prefetch)
      "escrow excludes prefetch (pre-acquisition would lock what escrow avoids locking)"
  in
  let* () =
    check
      ((not (Dsm.Escrow.policy_enabled t.escrow))
      || not (Dsm.Shipping.policy_enabled t.shipping))
      "escrow excludes shipping (a shipped commutative call would double-apply its delta)"
  in
  let* () =
    check
      ((not (Dsm.Escrow.policy_enabled t.escrow)) || t.recovery = Txn.Recovery.Undo_logging)
      "escrow requires undo-log recovery (reservations are undone, not shadowed)"
  in
  let* () =
    check
      ((not (Dsm.Escrow.policy_enabled t.escrow)) || t.abort_probability = 0.0)
      "escrow requires abort_probability = 0 (escrow holds are family-level; an \
       injected sub-retry would re-apply its delta)"
  in
  match t.faults with None -> Ok () | Some f -> Sim.Fault.validate f

let pp fmt t =
  Format.fprintf fmt
    "@[<v>protocol: %a@,nodes: %d, page: %dB@,\
     link: %.0f Mbps, sw cost %.1f us@,\
     aborts: p=%.3f (sub retries %d, root retries %d)@,\
     prefetch: %b, multicast push: %b"
    Dsm.Protocol.pp t.protocol t.node_count t.page_size
    (t.link.Sim.Network.bandwidth_bps /. 1e6)
    t.link.Sim.Network.software_cost_us t.abort_probability t.max_sub_retries
    t.max_root_retries t.prefetch t.multicast_push;
  (match t.faults with
  | Some f when Sim.Fault.is_active f ->
      Format.fprintf fmt "@,faults: %a; timeout %.0f us, max retransmits %d"
        Sim.Fault.pp_config f t.request_timeout_us t.max_retransmits;
      if Sim.Fault.has_crash_windows f then
        Format.fprintf fmt "@,failure detection: heartbeat %.0f us, suspect after %.0f us"
          t.heartbeat_interval_us t.suspect_timeout_us
  | Some _ | None -> ());
  if Gdo.Lease.policy_enabled t.lease then
    Format.fprintf fmt "@,leases: %a" Gdo.Lease.pp_policy t.lease;
  if Dsm.Batching.enabled t.batching then
    Format.fprintf fmt "@,batching: %a" Dsm.Batching.pp t.batching;
  if Dsm.Method_cache.policy_enabled t.method_cache then
    Format.fprintf fmt "@,method cache: %a" Dsm.Method_cache.pp_policy t.method_cache;
  if Dsm.Shipping.policy_enabled t.shipping then
    Format.fprintf fmt "@,shipping: %a" Dsm.Shipping.pp_policy t.shipping;
  if Dsm.Escrow.policy_enabled t.escrow then
    Format.fprintf fmt "@,escrow: %a" Dsm.Escrow.pp_policy t.escrow;
  Format.fprintf fmt "@]"
