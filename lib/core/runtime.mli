open Objmodel

(** The distributed object system: nested object transactions over DSM.

    A runtime instance is one simulated cluster execution: a set of nodes
    with page stores and local lock tables, a partitioned GDO reached by
    messages, and a consistency protocol (COTEC / OTEC / LOTEC / RC-nested)
    deciding which pages move at lock acquisition.

    Roots are submitted with {!submit} and executed as fibers when {!run}
    drives the event loop. Each root is a method invocation; nested [Invoke]
    statements become sub-transactions (closed nesting, nested O2PL).
    Deadlock-aborted families retry with backoff up to a configured limit;
    injected sub-transaction failures undo locally and retry in place.

    The paper's algorithms map to this module as follows:
    - Algorithm 4.1 LocalLockAcquisition — [acquire_object], backed by
      {!Txn.Local_locks};
    - Algorithm 4.2 GlobalLockAcquisition — the GDO-home message handler,
      backed by {!Gdo.Directory.acquire};
    - Algorithm 4.3 LocalLockRelease — pre-commit/abort/commit disposition;
    - Algorithm 4.4 GlobalLockRelease — the GDO-home release handler;
    - Algorithm 4.5 TransferOfUpdatedPages — the page-transfer engine, with
      per-protocol transfer sets from {!Dsm.Protocol.transfer_set}. *)

type t

type root_outcome =
  | Committed
  | Gave_up  (** aborted after exhausting the root retry budget *)

type root_result = {
  oid : Oid.t;
  meth : string;
  node : int;
  submitted_at : float;
  completed_at : float;
  attempts : int;  (** 1 for a first-try commit *)
  outcome : root_outcome;
}

val create : config:Config.t -> catalog:Catalog.t -> t
(** Build the cluster. Object pages initially reside, at version 0, on the
    object's home node ([oid mod node_count]); the GDO entry for an object
    lives on the same node.
    @raise Invalid_argument if the config fails {!Config.validate} or the
    catalog is not acyclic. *)

val config : t -> Config.t
val catalog : t -> Catalog.t
val engine : t -> Sim.Engine.t
val metrics : t -> Dsm.Metrics.t
val directory : t -> Gdo.Directory.t
val store : t -> node:int -> Dsm.Page_store.t

val trace : t -> Dsm.Event.t Sim.Trace.t option
(** The typed protocol-event trace, when [Config.trace_capacity > 0]. Feed
    its entries to {!Dsm.Trace_export} for the per-transaction timeline or
    the Chrome trace-event JSON export. *)

val lease_manager : t -> Gdo.Lease.t
(** The home-side lease manager (shared by all homes in-process). Inert —
    every operation a no-op — unless [Config.lease] enables a policy. *)

val lease_cache : t -> node:int -> Gdo.Lease.Cache.cache
(** [node]'s local lease cache (see {!Gdo.Lease.Cache}); for tests and
    diagnostics. *)

val method_cache : t -> node:int -> Dsm.Method_cache.t
(** [node]'s method-result cache (see {!Dsm.Method_cache}); inert — empty
    forever — unless [Config.method_cache] enables a policy. For tests and
    diagnostics. *)

val submit : t -> at:float -> node:int -> oid:Oid.t -> meth:string -> seed:int -> unit
(** Schedule a root invocation of [meth] on [oid] at node [node] and
    simulated time [at]. [seed] makes the root's private random stream
    (branch outcomes and failure injection), so a root's execution path does
    not depend on cross-family interleaving.
    @raise Not_found if the object or method does not exist.
    @raise Invalid_argument after {!run} has completed. *)

val run : t -> unit
(** Drive the simulation until all submitted roots complete; records the
    makespan in the metrics.
    @raise Sim.Engine.Stalled on an internal scheduling bug (transaction
    deadlocks are detected and resolved; they do not stall the engine). *)

val results : t -> root_result list
(** Completion records, in completion order. *)

val committed_history : t -> Serializability.committed_root list
(** Reads/writes of every committed family, for the serializability
    checker. *)

val check_serializable : t -> Serializability.verdict

val escrow_ops : t -> Serializability.escrow_op list
(** The typed escrow op log, in simulated-time order. Empty when the
    escrow policy is off (or nothing commuting ran). *)

val check_escrow : t -> ((Objmodel.Oid.t * int) list, string list) result
(** Replay {!escrow_ops} through {!Serializability.check_escrow} under the
    run's escrow bounds. [Ok []] trivially when the policy is off. *)

val membership_epoch : t -> int
(** Current membership epoch: bumped at every quorum death declaration,
    readmission, and rejoin-with-standing-declaration. 0 for fault-free
    runs. *)

val membership_log : t -> (int * int * int) list
(** Acting-home change log, {e newest first}: (membership epoch,
    partition, serving node) appended whenever a partition's acting home
    changes. Feed to {!Membership_audit.check} — or use {!audit}. *)

val node_declared_down : t -> node:int -> bool
(** Has a quorum declared [node] dead under its current incarnation (and
    no readmission or rejoin cleared it)? Membership state, not ground
    truth: true for a falsely declared live node until one of its
    messages gets through. *)

val node_parked : t -> node:int -> bool
(** Is [node] currently self-parked (its own detector reaches fewer than
    a majority of undeclared nodes)? A parked node serves no acquires and
    starts no new roots until the majority is reachable again. *)

val audit : t -> string list
(** The split-brain auditor: {!Gdo.Directory.audit} over the directory
    (at most one exclusive holder per entry, holder/waiter consistency)
    plus {!Membership_audit.check} over the acting-home log (at most one
    serving node per (epoch, partition)). Empty when clean; run after
    {!run} in nemesis tests. *)

val dump_directory : t -> string
(** {!Gdo.Directory.dump} enriched with per-object membership state:
    partition, acting home and its epoch, lease fence, declared/parked
    flags — the stall diagnostic for partition nemesis runs. *)

val next_version_exceeds : t -> int -> bool
(** True if more than [n] page versions were produced — a cheap progress
    probe for tests. *)
