(** Chaos testing: full workloads under an unreliable interconnect.

    The paper assumes a perfectly reliable switched network; {!Sim.Fault}
    relaxes that with seed-deterministic message drops, duplicates, delay
    jitter and node pause/crash windows, and the runtime layers a reliable
    transport on top. This module is the harness that checks the protocols
    survive the abuse: it sweeps fault rates × seeds × protocols over a
    workload and asserts, for every run, the invariants that hold on the
    reliable network —

    - the committed history is serializable (checked by {!Runner.execute});
    - every root is accounted for: committed + aborted = submitted;
    - the simulation drains (a stuck fiber raises {!Sim.Engine.Stalled});
    - the metrics ledger balances per object:
      [messages = control_messages + data_messages] (and likewise bytes).

    A violated invariant raises [Failure] naming the case, so the harness
    doubles as a property checker for the test suite and as a CLI command. *)

type case = {
  protocol : Dsm.Protocol.t;
  drop : float;  (** per-message loss probability *)
  duplicate : float;  (** per-message duplication probability *)
  jitter_us : float;  (** max extra delivery delay, uniform in [0, jitter] *)
  fault_seed : int;  (** PRNG seed of the fault injector (not the workload) *)
}

type outcome = {
  case : case;
  committed : int;
  aborted : int;
  messages : int;  (** total messages, including retransmissions and acks *)
  drops : int;
  duplicates : int;
  retransmits : int;
  timeouts : int;
  completion_us : float;
}

val fault_config : case -> Sim.Fault.config option
(** [None] when the case injects nothing (all rates zero) — the run then
    takes the exact fault-free code path, byte-identical to the reliable
    network. *)

val ledger_balanced : Dsm.Metrics.t -> bool
(** Per-object check that [messages = control_messages + data_messages] and
    [messages > 0 => control_bytes + data_bytes > 0], over every object with
    recorded traffic. *)

val run_case : ?config:Core.Config.t -> spec:Workload.Spec.t -> case -> outcome
(** Run [spec] (workload determinism comes from [spec.seed]) under the
    case's protocol and fault model.
    @raise Failure on any violated invariant (see above). *)

val default_spec : Workload.Spec.t
(** A small high-contention workload (few objects, few nodes) sized so a
    full sweep stays fast: fault handling is exercised by rates, not load. *)

val sweep :
  ?config:Core.Config.t ->
  ?spec:Workload.Spec.t ->
  ?protocols:Dsm.Protocol.t list ->
  ?rates:(float * float * float) list ->
  ?fault_seeds:int list ->
  unit ->
  outcome list
(** Cartesian product of protocols × (drop, duplicate, jitter) rates ×
    fault seeds over one workload. Defaults: the three paper protocols,
    rates [(0,0,0); (0.05,0.05,25); (0.1,0.1,50); (0.2,0.2,100)], seeds
    [1; 2]. Raises like {!run_case}. *)

val pp_outcome : Format.formatter -> outcome -> unit

val pp_report : Format.formatter -> outcome list -> unit
(** Table of the sweep, one row per case. *)
