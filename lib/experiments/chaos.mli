(** Chaos testing: full workloads under an unreliable interconnect.

    The paper assumes a perfectly reliable switched network; {!Sim.Fault}
    relaxes that with seed-deterministic message drops, duplicates, delay
    jitter and node pause/crash windows, and the runtime layers a reliable
    transport on top. This module is the harness that checks the protocols
    survive the abuse: it sweeps fault rates × seeds × protocols over a
    workload and asserts, for every run, the invariants that hold on the
    reliable network —

    - the committed history is serializable (checked by {!Runner.execute});
    - every root is accounted for: committed + aborted = submitted;
    - the simulation drains (a stuck fiber raises {!Sim.Engine.Stalled});
    - the metrics ledger balances per object:
      [messages = control_messages + data_messages] (and likewise bytes).

    A violated invariant raises [Failure] naming the case, so the harness
    doubles as a property checker for the test suite and as a CLI command. *)

type case = {
  protocol : Dsm.Protocol.t;
  drop : float;  (** per-message loss probability *)
  duplicate : float;  (** per-message duplication probability *)
  jitter_us : float;  (** max extra delivery delay, uniform in [0, jitter] *)
  fault_seed : int;  (** PRNG seed of the fault injector (not the workload) *)
}

type outcome = {
  case : case;
  committed : int;
  aborted : int;
  messages : int;  (** total messages, including retransmissions and acks *)
  drops : int;
  duplicates : int;
  retransmits : int;
  timeouts : int;
  completion_us : float;
}

val fault_config : case -> Sim.Fault.config option
(** [None] when the case injects nothing (all rates zero) — the run then
    takes the exact fault-free code path, byte-identical to the reliable
    network. *)

val ledger_balanced : Dsm.Metrics.t -> bool
(** Per-object check that [messages = control_messages + data_messages] and
    [messages > 0 => control_bytes + data_bytes > 0], over every object with
    recorded traffic. *)

val run_case : ?config:Core.Config.t -> spec:Workload.Spec.t -> case -> outcome
(** Run [spec] (workload determinism comes from [spec.seed]) under the
    case's protocol and fault model.
    @raise Failure on any violated invariant (see above). *)

val default_spec : Workload.Spec.t
(** A small high-contention workload (few objects, few nodes) sized so a
    full sweep stays fast: fault handling is exercised by rates, not load. *)

val sweep :
  ?config:Core.Config.t ->
  ?spec:Workload.Spec.t ->
  ?protocols:Dsm.Protocol.t list ->
  ?rates:(float * float * float) list ->
  ?fault_seeds:int list ->
  unit ->
  outcome list
(** Cartesian product of protocols × (drop, duplicate, jitter) rates ×
    fault seeds over one workload. Defaults: the three paper protocols,
    rates [(0,0,0); (0.05,0.05,25); (0.1,0.1,50); (0.2,0.2,100)], seeds
    [1; 2]. Raises like {!run_case}. *)

val pp_outcome : Format.formatter -> outcome -> unit

val pp_report : Format.formatter -> outcome list -> unit
(** Table of the sweep, one row per case. *)

(** {1 Crash chaos}

    Scheduled fail-stop crash-restart windows ({!Sim.Fault.Crash}) on top
    of the (optionally lossy) interconnect, exercising the full recovery
    path: heartbeat failure detection, dead-family lock reclamation at the
    directory, page-map repointing and — with [cc_gdo_replicas >= 1] — GDO
    home failover to the ring successor. On top of {!run_case}'s
    invariants, every crash run also asserts that the per-message-type wire
    ledger reconciles {e exactly} with the network's per-object ledger
    (crashed senders are suppressed before both hooks). *)

type crash_case = {
  cc_protocol : Dsm.Protocol.t;
  cc_windows : (int * float * float) list;
      (** crash windows as [(node, from_us, until_us)], half-open *)
  cc_gdo_replicas : int;  (** 0: a crashed home's partition is unavailable *)
  cc_drop : float;  (** additional per-message loss probability *)
  cc_fault_seed : int;
}

type crash_outcome = {
  cc_case : crash_case;
  cc_committed : int;
  cc_aborted : int;  (** permanently aborted (retry budget exhausted) *)
  cc_crash_aborts : int;  (** root families aborted by a crash (incl. retried) *)
  cc_recovered : int;  (** crash-affected roots that went on to commit *)
  cc_give_ups : int;  (** transport deliveries abandoned after max_retransmits *)
  cc_declared_dead : int;
  cc_reclaimed : int;  (** dead families evicted from the directory *)
  cc_failovers : int;
  cc_recovery_p50_us : float;  (** crash-to-recommit latency percentiles *)
  cc_recovery_p99_us : float;
  cc_messages : int;
  cc_completion_us : float;
}

val crash_fault_config : crash_case -> Sim.Fault.config
(** Fault config with the case's crash windows and drop rate. *)

val run_crash_case :
  ?config:Core.Config.t -> ?dump_stalls:bool -> spec:Workload.Spec.t -> crash_case -> crash_outcome
(** Run [spec] under the case, with recovery timers tightened (0.5 ms
    retransmit timer, 3 retransmits, 0.5 ms heartbeats, 1.5 ms suspicion)
    so detection and failover complete inside a few-millisecond window.
    [dump_stalls] prints {!Gdo.Directory.dump} to stderr if the run stalls.
    @raise Failure on any violated invariant (see above). *)

val default_crash_windows : (int * float * float) list list
(** One mid-run crash, and a staggered two-node pattern, sized against
    {!default_spec}'s makespan. *)

val crash_sweep :
  ?config:Core.Config.t ->
  ?spec:Workload.Spec.t ->
  ?protocols:Dsm.Protocol.t list ->
  ?windows:(int * float * float) list list ->
  ?replicas:int list ->
  ?fault_seeds:int list ->
  ?dump_stalls:bool ->
  unit ->
  crash_outcome list
(** Protocols × window patterns × replica counts × seeds. Defaults: the
    three paper protocols (RC-nested's eager pushes are not crash-hardened),
    {!default_crash_windows}, replicas [[0; 1]] — so the sweep covers both
    partition unavailability and live failover. Raises like
    {!run_crash_case}. *)

val crash_to_json : crash_outcome list -> string
(** JSON array, one object per outcome (the BENCH_crash.json payload). *)

val pp_crash_outcome : Format.formatter -> crash_outcome -> unit

val pp_crash_report : Format.formatter -> crash_outcome list -> unit
(** Table of the crash sweep, one row per case. *)
