type case = {
  protocol : Dsm.Protocol.t;
  read_fraction : float;
  policy : Gdo.Lease.policy;
}

type outcome = {
  case : case;
  committed : int;
  aborted : int;
  messages : int;
  bytes : int;
  home_lock_ops : int;
  lease_grants : int;
  lease_hits : int;
  lease_recalls : int;
  lease_yields : int;
  lease_expiries : int;
  lease_aborts : int;
  completion_us : float;
}

(* Few hot objects, brisk arrivals, every node submitting: the same objects
   are re-read from the same nodes by many families, which is the pattern a
   lease turns into zero-message acquisitions. The method catalog is wide
   because the generator guarantees one mutator per class (method m0) and
   picks methods uniformly — a wide catalog is what makes a high
   [read_only_method_fraction] translate into a genuinely read-dominated
   run. Four nodes keeps recall fan-out (the cost of a write to a leased
   object) small relative to per-node read reuse (the saving). *)
let default_spec =
  {
    Workload.Scenarios.medium_high with
    Workload.Spec.object_count = 8;
    root_count = 160;
    node_count = 4;
    methods_per_class = 16;
    access_skew = 0.8;
    arrival_mean_us = 120.0;
  }

(* The TTL bounds how long a recalling write can stall when a yield is
   deferred behind a still-running reader (or lost outright): long enough
   to outlive any one family — so commit-time validation rarely dooms a
   reader — but far shorter than the run, so a deferred yield costs
   milliseconds, not the makespan. *)
let default_policy = Gdo.Lease.Fixed_ttl { ttl_us = 20_000.0 }

(* Leases only for objects the home has observed to be read-dominated:
   neutral (within noise of off) on mixed workloads, close to Fixed_ttl's
   saving on read-heavy ones. *)
let default_adaptive =
  Gdo.Lease.Adaptive { ttl_us = 20_000.0; min_read_ratio = 0.85; min_samples = 8 }

let case_name c =
  Format.asprintf "%a read=%.2f policy=%s" Dsm.Protocol.pp c.protocol c.read_fraction
    (Gdo.Lease.policy_to_string c.policy)

let run_case ?(config = Core.Config.default) ~spec c =
  let spec = { spec with Workload.Spec.read_only_method_fraction = c.read_fraction } in
  let config = { config with Core.Config.lease = c.policy } in
  let wl = Workload.Generator.generate spec ~page_size:config.Core.Config.page_size in
  (* Runner.execute raises if the committed history is not serializable —
     with leases enabled that is exactly the property under test. *)
  let run = Runner.execute ~config ~protocol:c.protocol wl in
  let m = Runner.metrics run in
  let t = Dsm.Metrics.totals m in
  let fail fmt =
    Format.kasprintf (fun s -> failwith ("lease [" ^ case_name c ^ "]: " ^ s)) fmt
  in
  let submitted = spec.Workload.Spec.root_count in
  if t.Dsm.Metrics.roots_committed + t.Dsm.Metrics.roots_aborted <> submitted then
    fail "root accounting broken: %d committed + %d aborted <> %d submitted"
      t.Dsm.Metrics.roots_committed t.Dsm.Metrics.roots_aborted submitted;
  if
    (not (Gdo.Lease.policy_enabled c.policy))
    && t.Dsm.Metrics.lease_grants + t.Dsm.Metrics.lease_hits + t.Dsm.Metrics.lease_recalls
       + t.Dsm.Metrics.lease_yields + t.Dsm.Metrics.lease_aborts
       > 0
  then fail "lease counters nonzero with leases off";
  {
    case = c;
    committed = t.Dsm.Metrics.roots_committed;
    aborted = t.Dsm.Metrics.roots_aborted;
    messages = Dsm.Metrics.total_messages m;
    bytes = Dsm.Metrics.total_bytes m;
    home_lock_ops = Dsm.Metrics.home_lock_ops m;
    lease_grants = t.Dsm.Metrics.lease_grants;
    lease_hits = t.Dsm.Metrics.lease_hits;
    lease_recalls = t.Dsm.Metrics.lease_recalls;
    lease_yields = t.Dsm.Metrics.lease_yields;
    lease_expiries = t.Dsm.Metrics.lease_expiries;
    lease_aborts = t.Dsm.Metrics.lease_aborts;
    completion_us = Dsm.Metrics.completion_time_us m;
  }

let sweep ?config ?(spec = default_spec)
    ?(protocols = Dsm.Protocol.[ Cotec; Otec; Lotec; Rc_nested ])
    ?(read_fractions = [ 0.5; 0.8; 0.95 ]) ?(policies = [ default_policy; default_adaptive ])
    () =
  List.concat_map
    (fun protocol ->
      List.concat_map
        (fun read_fraction ->
          List.map
            (fun policy -> run_case ?config ~spec { protocol; read_fraction; policy })
            (Gdo.Lease.Off :: policies))
        read_fractions)
    protocols

let reduction ~off ~on =
  if off.home_lock_ops = 0 then 0.0
  else
    100.0
    *. float_of_int (on.home_lock_ops - off.home_lock_ops)
    /. float_of_int off.home_lock_ops

let pp_outcome fmt o =
  Format.fprintf fmt "%s: %d/%d committed, %d msgs, %d home ops, %d hits, %d recalls, %.0f us"
    (case_name o.case) o.committed (o.committed + o.aborted) o.messages o.home_lock_ops
    o.lease_hits o.lease_recalls o.completion_us

(* The Off row a leased row compares against: same protocol and fraction. *)
let baseline_of outcomes o =
  List.find_opt
    (fun b ->
      (not (Gdo.Lease.policy_enabled b.case.policy))
      && b.case.protocol = o.case.protocol
      && b.case.read_fraction = o.case.read_fraction)
    outcomes

let pp_report fmt outcomes =
  let header =
    [
      "protocol"; "read"; "policy"; "ok/roots"; "msgs"; "bytes"; "home ops"; "vs off";
      "hits"; "recalls"; "expiries"; "aborts"; "completion";
    ]
  in
  let rows =
    List.map
      (fun o ->
        let vs_off =
          if not (Gdo.Lease.policy_enabled o.case.policy) then "-"
          else
            match baseline_of outcomes o with
            | Some off -> Report.fmt_pct (reduction ~off ~on:o)
            | None -> "?"
        in
        [
          Format.asprintf "%a" Dsm.Protocol.pp o.case.protocol;
          Printf.sprintf "%.2f" o.case.read_fraction;
          Gdo.Lease.policy_to_string o.case.policy;
          Printf.sprintf "%d/%d" o.committed (o.committed + o.aborted);
          string_of_int o.messages;
          Report.fmt_bytes o.bytes;
          string_of_int o.home_lock_ops;
          vs_off;
          string_of_int o.lease_hits;
          string_of_int o.lease_recalls;
          string_of_int o.lease_expiries;
          string_of_int o.lease_aborts;
          Report.fmt_us o.completion_us;
        ])
      outcomes
  in
  Format.fprintf fmt "lease sweep: all invariants held@.%s@."
    (Report.render ~header
       ~align:
         [
           Report.Left; Right; Left; Right; Right; Right; Right; Right; Right; Right; Right;
           Right; Right;
         ]
       rows)

let to_json outcomes =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "[\n";
  List.iteri
    (fun i o ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Printf.sprintf
           "  {\"protocol\": %S, \"read_fraction\": %.2f, \"policy\": %S, \"committed\": %d, \
            \"aborted\": %d, \"messages\": %d, \"bytes\": %d, \"home_lock_ops\": %d, \
            \"lease_grants\": %d, \"lease_hits\": %d, \"lease_recalls\": %d, \
            \"lease_yields\": %d, \"lease_expiries\": %d, \"lease_aborts\": %d, \
            \"completion_us\": %.3f}"
           (Format.asprintf "%a" Dsm.Protocol.pp o.case.protocol)
           o.case.read_fraction
           (Gdo.Lease.policy_to_string o.case.policy)
           o.committed o.aborted o.messages o.bytes o.home_lock_ops o.lease_grants
           o.lease_hits o.lease_recalls o.lease_yields o.lease_expiries o.lease_aborts
           o.completion_us))
    outcomes;
  Buffer.add_string buf "\n]\n";
  Buffer.contents buf
