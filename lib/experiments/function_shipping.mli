(** Function shipping versus data shipping ({!Dsm.Shipping}).

    LOTEC always moves pages to the invoking site. This sweep measures what
    the per-call cost model buys on a locality-skewed nesting workload —
    multi-page objects homed on single nodes, invoked mostly from
    elsewhere — by running every case twice: shipping off (the always
    data-ship baseline) and shipping on, across protocols, locality skews
    and per-message software costs (the model's σ tracks the link). The
    headline gate, asserted by the test suite and recorded in
    [BENCH_ship.json]: LOTEC with shipping moves at least 30% fewer bytes
    than its data-ship baseline on the skewed workload, with completion
    time no worse than +2%.

    Every case also re-checks the runtime's cross-cutting invariants: root
    accounting, serializability of the committed history (via
    {!Runner.execute}), an exactly reconciling wire ledger (now including
    the [Ship_invoke]/[Ship_reply] rows), and all-zero ship counters when
    shipping is off. *)

type mode =
  | Data_ship  (** shipping off — the paper's pure data-shipping protocol *)
  | Shipping of Dsm.Shipping.params

type case = {
  protocol : Dsm.Protocol.t;
  skew : float;  (** workload [access_skew]: the locality axis *)
  software_us : float;  (** link per-message software cost; also the model's σ *)
  mode : mode;
}

type outcome = {
  case : case;
  committed : int;
  aborted : int;
  messages : int;
  bytes : int;
  ships : int;  (** cost-model verdicts that moved the invocation *)
  declines : int;  (** verdicts that kept it at the invoker *)
  forced : int;  (** dispatches bound by an earlier pin, not the model *)
  predicted_saved_bytes : int;  (** the model's own saving estimate *)
  completion_us : float;  (** simulated makespan *)
  consistency_us : float;
      (** total consistency time from the ledger replay shared with
          {!Active_messages} ([Dsm.Metrics.total_time_us_am]) *)
}

val default_spec : skew:float -> Workload.Spec.t
(** The locality-skewed nesting preset: 48 objects of 3–6 pages over 8
    nodes, methods covering most of their object, deep nesting
    ([invoke_probability] 0.75), root traffic concentrated by [skew]. *)

val default_params : Dsm.Shipping.params

val default_skews : float list
(** 0 (uniform) and 1.5 (skewed). *)

val default_software_costs : float list
(** 20 and 60 µs. *)

val case_name : case -> string
val mode_to_string : mode -> string

val bytes_reduction_pct : baseline:outcome -> on:outcome -> float
(** Positive = the shipping run moved fewer bytes. *)

val time_ratio : baseline:outcome -> on:outcome -> float
(** < 1 = the shipping run finished sooner. *)

val run_case :
  ?config:Core.Config.t -> ?spec_of_skew:(float -> Workload.Spec.t) -> case -> outcome
(** Generate the workload for the case's skew, run it, check the
    invariants above.
    @raise Failure on any invariant violation. *)

val sweep :
  ?config:Core.Config.t ->
  ?spec_of_skew:(float -> Workload.Spec.t) ->
  ?params:Dsm.Shipping.params ->
  ?protocols:Dsm.Protocol.t list ->
  ?skews:float list ->
  ?software_costs:float list ->
  unit ->
  outcome list
(** Every protocol x skew x software cost, each in both modes. *)

val baseline_of : outcome list -> outcome -> outcome option
(** The [Data_ship] row with the same protocol, skew and software cost. *)

val headline : outcome list -> (outcome * outcome * float * float) option
(** [(baseline, shipping, bytes_reduction_pct, time_ratio)] for LOTEC at
    the strongest positive skew and the cheapest messaging in the sweep —
    the least favourable σ, so the gate is won on bytes, not on an
    inflated per-message charge. [None] if the sweep ran no such case. *)

val pp_outcome : Format.formatter -> outcome -> unit
val pp_report : Format.formatter -> outcome list -> unit
val to_json : outcome list -> string
