(** Figures 6–8: total message time to maintain an object's consistency, as
    a function of per-message software cost, at 10 Mbps, 100 Mbps and 1 Gbps.

    The paper instruments the simulator and recomputes total message time for
    a grid of network parameters; we do the same by replaying each protocol's
    recorded message ledger (message and byte counts per object) through
    [count * software_cost + bytes * 8 / bandwidth]. *)

val software_costs_us : float list
(** The paper's x-axis: 100 µs, 20 µs, 5 µs, 1 µs, 500 ns. *)

type cell = { software_cost_us : float; time_us : (Dsm.Protocol.t * float) list }

type result = {
  name : string;
  bandwidth_bps : float;
  object_shown : Objmodel.Oid.t;  (** the "arbitrary shared object" plotted *)
  per_object : cell list;  (** times for [object_shown] *)
  totals : cell list;  (** same grid, summed over every object *)
}

val of_runs : name:string -> bandwidth_bps:float -> Runner.run list -> result
(** Replay ledgers of previously executed runs (one per protocol). The
    object shown is the highest-traffic object under the first run's
    protocol.
    @raise Invalid_argument on an empty run list. *)

val figure6 : Fig_bytes.result -> result
(** 10 Mbps, over the Figure 2 scenario's ledgers. *)

val figure7 : Fig_bytes.result -> result
(** 100 Mbps. *)

val figure8 : Fig_bytes.result -> result
(** 1 Gbps. *)

val crossover :
  result -> faster:Dsm.Protocol.t -> than:Dsm.Protocol.t -> float option
(** Largest software cost in the grid at which [faster] is strictly faster
    (total time) than [than], if any — locating where LOTEC's extra messages
    stop paying off. *)

val pp : Format.formatter -> result -> unit
