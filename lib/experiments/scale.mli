(** Engine-speed measurement and the million-transaction scale sweep.

    Two instruments:

    - {!engine_bench}: a pure [Sim.Engine] micro-benchmark (no DSM layers)
      exercising the hot paths of the event-pool refactor — raw dispatch,
      fiber spawn/wait churn, and the waiter-heavy Semaphore / Mailbox /
      Ivar paths that used to be accidentally quadratic. It uses only the
      public engine API, so the identical workload runs against any engine
      revision; {!baseline} records the pre-refactor numbers.

    - {!sweep}: full-stack runs of 100k-1M root transactions over 64-256
      nodes per protocol, in the runtime's streaming mode (no per-root
      result or serializability-history retention, family records pruned at
      completion) so resident memory stays bounded. *)

(** {1 Engine micro-benchmark} *)

type bench_row = { component : string; ops : int; wall_s : float; ops_per_sec : float }

val per_sec : int -> float -> float
(** [per_sec ops wall_s]: the one rate helper every report uses — [wall_s]
    is clamped to at least 1 ns, so a zero (or negative, after timer
    quantisation) interval yields a large finite rate instead of a
    division by zero or an infinity in reports and JSON. *)

type bench = {
  rows : bench_row list;
  total_ops : int;
  total_wall_s : float;
  aggregate_ops_per_sec : float;
}

val engine_bench :
  ?dispatch_events:int ->
  ?dispatch_timers:int ->
  ?fibers:int ->
  ?waiters:int ->
  ?rounds:int ->
  unit ->
  bench
(** Run every component with the given sizes (defaults match {!baseline}'s
    capture: 2M dispatch events over 10k timers, 100k fibers, 10k waiters,
    2 rounds). *)

val baseline : (string * float) list
(** Pre-refactor ops/sec per component (plus ["aggregate"]), captured with
    the default sizes on the reference machine; also stored as the artifact
    [bench/engine_baseline.json]. *)

val baseline_aggregate_ops_per_sec : float

val pp_bench : Format.formatter -> bench -> unit
(** Table with baseline and speedup columns. *)

(** {1 Run profiling} *)

type profile = {
  wall_s : float;
  dispatched : int;  (** engine events dispatched *)
  scheduled : int;  (** engine events scheduled (dispatched + cancelled-by-exit) *)
  max_queue : int;  (** high-water mark of the pending-event queue *)
  events_per_sec : float;  (** dispatched / wall_s *)
  alloc_mb : float;  (** [Gc.allocated_bytes] delta across the run, MB *)
  peak_heap_mb : float;  (** [Gc.top_heap_words] — process-lifetime high-water *)
}

val profiled : (unit -> 'a * Sim.Engine.t) -> 'a * profile
(** Time a thunk that builds {e and runs} a fresh engine, returning the
    engine so its counters can be read. The engine must be created inside
    the thunk (a fresh engine's counters start at zero, so totals are the
    run's own). *)

val pp_profile : Format.formatter -> profile -> unit

(** {1 Scale sweep} *)

type scale_row = {
  s_protocol : Dsm.Protocol.t;
  s_roots : int;
  s_nodes : int;
  s_committed : int;
  s_aborted : int;
  s_makespan_us : float;  (** simulated *)
  s_profile : profile;
}

val spec_for : roots:int -> nodes:int -> Workload.Spec.t
(** Workload shape for a scale point: 32 objects per node (constant
    density as the cluster grows), dense arrivals. *)

val run_point :
  ?config:Core.Config.t -> protocol:Dsm.Protocol.t -> spec:Workload.Spec.t -> unit -> scale_row
(** One full-stack run in streaming mode (tracing off), profiled. *)

val default_points : (int * int) list
(** [(roots, nodes)]: 100k x 64, 300k x 128, 1M x 256. *)

val sweep :
  ?config:Core.Config.t ->
  ?points:(int * int) list ->
  ?protocols:Dsm.Protocol.t list ->
  ?progress:(scale_row -> unit) ->
  unit ->
  scale_row list
(** Cartesian product of points x protocols, in order; [progress] fires
    after each completed run (the big points take minutes of wall clock). *)

val pp_sweep : Format.formatter -> scale_row list -> unit

(** {1 JSON} *)

val to_json : ?bench:bench -> ?scale:scale_row list -> unit -> string
(** The BENCH_engine.json payload: micro-benchmark rows with baseline and
    speedup, and/or the scale-sweep rows — whichever sections are given. *)
