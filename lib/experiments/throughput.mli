(** Throughput and latency (paper §2).

    "The design focus for transaction processing systems is on overall
    system throughput not individual transaction latency. ... the available
    transactions need only be distributed across the available processors to
    balance the computational load."

    Two views:
    - {!protocols}: for one cluster, committed-transaction throughput and
      root-latency distribution per protocol;
    - {!scaling}: for LOTEC, how throughput responds to cluster size under a
      fixed offered load (the distribute-across-processors claim). *)

type row = {
  label : string;
  committed : int;
  gave_up : int;
  makespan_us : float;
  throughput_tps : float;  (** committed roots per simulated second *)
  mean_latency_us : float;
  p50_latency_us : float;
  p95_latency_us : float;
}

type result = { title : string; rows : row list }

val protocols :
  ?config:Core.Config.t -> ?spec:Workload.Spec.t -> ?protocols:Dsm.Protocol.t list -> unit ->
  result
(** Default spec: the Figure 2 scenario; default protocols: all four. *)

val scaling :
  ?config:Core.Config.t -> ?spec:Workload.Spec.t -> ?node_counts:int list -> unit -> result
(** Default node counts: 2, 4, 8, 16. The workload (arrivals, objects,
    methods) is held fixed; only the cluster grows, with roots rebalanced
    round-robin over the available nodes. *)

val pp : Format.formatter -> result -> unit
