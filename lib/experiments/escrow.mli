(** Escrow commit versus exclusive locking ({!Dsm.Escrow}).

    The bank workload hammers a handful of hot accounts with declared-
    commutative unit deposits and withdrawals. Under the baseline protocols
    every one of them serializes on the account's exclusive object lock;
    with escrow delta locks they commute, and with quota delegation most of
    them commit locally with zero messages. This sweep runs every case
    twice — escrow off (the exclusive baseline) and escrow on — across
    protocols and access skews, on {!Workload.Scenarios.bank}.

    The headline gate, asserted by the test suite and recorded in
    [BENCH_escrow.json]: LOTEC with escrow completes the hottest-skew bank
    sweep at least 25% faster than its exclusive-locking baseline.

    Every case also re-checks the runtime's cross-cutting invariants: root
    accounting, serializability of the committed history and a clean escrow
    ledger replay (both via {!Runner.execute}), an exactly reconciling wire
    ledger (now including the escrow message rows), and all-zero escrow
    counters when the policy is off. *)

type mode =
  | Exclusive  (** escrow off — commuting methods serialize on write locks *)
  | Escrow of Dsm.Escrow.params

type case = {
  protocol : Dsm.Protocol.t;
  skew : float;  (** workload [access_skew]: how hot the head accounts run *)
  mode : mode;
}

type outcome = {
  case : case;
  committed : int;
  aborted : int;
  messages : int;
  bytes : int;
  reserves : int;  (** home-side escrow admissions *)
  local_commits : int;  (** zero-message fast-path commits against quota *)
  reconciles : int;  (** lazy delta pushes to the home *)
  recalls : int;  (** epoch-fenced quota recalls for exclusive access *)
  refusals : int;  (** admission tests that failed (fell back to locking) *)
  escrow_finals : (Objmodel.Oid.t * int) list;
      (** replayed final quantity per escrowed object, from
          {!Core.Runtime.check_escrow} *)
  completion_us : float;  (** simulated makespan *)
}

val default_spec : skew:float -> Workload.Spec.t
(** {!Workload.Scenarios.bank} with the given [access_skew]. *)

val default_params : Dsm.Escrow.params
val default_skews : float list
(** 0.6 (warm) and 1.2 (hot head accounts). *)

val case_name : case -> string
val mode_to_string : mode -> string

val time_ratio : baseline:outcome -> on:outcome -> float
(** < 1 = the escrow run finished sooner. *)

val run_case :
  ?config:Core.Config.t -> ?spec_of_skew:(float -> Workload.Spec.t) -> case -> outcome
(** Generate the workload for the case's skew, run it, check the
    invariants above.
    @raise Failure on any invariant violation. *)

val sweep :
  ?config:Core.Config.t ->
  ?spec_of_skew:(float -> Workload.Spec.t) ->
  ?params:Dsm.Escrow.params ->
  ?protocols:Dsm.Protocol.t list ->
  ?skews:float list ->
  unit ->
  outcome list
(** Every protocol x skew, each in both modes. *)

val baseline_of : outcome list -> outcome -> outcome option
(** The [Exclusive] row with the same protocol and skew. *)

val headline : outcome list -> (outcome * outcome * float) option
(** [(baseline, escrow, time_ratio)] for LOTEC at the strongest skew in the
    sweep — the hottest hot-account fight, where coordination avoidance has
    to show. [None] if the sweep ran no such case. *)

val pp_outcome : Format.formatter -> outcome -> unit
val pp_report : Format.formatter -> outcome list -> unit
val to_json : outcome list -> string
