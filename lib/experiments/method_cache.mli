(** Method-cache sweep: the method-result cache (see {!Dsm.Method_cache})
    against two baselines, on the web-serving workloads.

    For each protocol and read-heaviness level, the same workload runs three
    ways: [Baseline] (leases and cache off — the paper's plain protocol),
    [Lease_only] (read leases on), and [Cached] (leases {e and} the
    method-result cache on; the cache requires the lease as its
    invalidation signal, see {!Core.Config}). The sweep reports messages
    and bytes, the message-reduction factor against the matching baseline,
    the cache hit rate, and fill/invalidation counts.

    The lease does the message-elimination heavy lifting — a cache hit was
    already a zero-message acquisition under [Lease_only]. What the cache
    adds on top is skipping the method body entirely: no local page reads,
    no per-statement CPU, no lock-table churn — visible in completion
    time and in the hit-rate column rather than in messages.

    Every case re-asserts the chaos-harness invariants: the committed
    history is serializable (a cache hit must be indistinguishable from
    re-execution — checked inside {!Runner.execute}), every root is
    accounted for, cache counters are exactly zero when the cache is off,
    lease counters are exactly zero in the baseline, and the wire ledger
    reconciles exactly with the network's ledger (a cache hit sends
    nothing, so the send-time and delivery-time ledgers must still
    agree). *)

type mode =
  | Baseline  (** leases off, cache off — the paper's plain protocol *)
  | Lease_only  (** read leases on, cache off *)
  | Cached of Dsm.Method_cache.policy  (** leases on, cache on *)

type case = {
  protocol : Dsm.Protocol.t;
  read_fraction : float;
      (** request-level read share: the workload runs with
          [root_update_fraction = Some (1 - read_fraction)] *)
  mode : mode;
}

type outcome = {
  case : case;
  committed : int;
  aborted : int;
  messages : int;
  bytes : int;
  lease_hits : int;
  cache_hits : int;
  cache_misses : int;
  cache_fills : int;
  cache_invalidations : int;
  completion_us : float;
}

val default_spec : Workload.Spec.t
(** {!Workload.Scenarios.web_sessions}: tiny hot objects re-read from every
    node. [read_only_method_fraction] is overridden per case. *)

val default_lease : Gdo.Lease.policy
(** The [Fixed_ttl] policy paired with every lease-on case. *)

val default_policy : Dsm.Method_cache.policy
(** LRU at {!Dsm.Method_cache.default_capacity}. *)

val mode_to_string : mode -> string
val case_name : case -> string

val hit_rate : outcome -> float
(** [cache_hits / (cache_hits + cache_misses)], 0 when the cache was never
    consulted. *)

val message_factor : baseline:outcome -> on:outcome -> float
(** How many times fewer messages [on] moved than [baseline]; 5.0 = a 5x
    reduction. *)

val run_case :
  ?config:Core.Config.t -> ?lease:Gdo.Lease.policy -> spec:Workload.Spec.t -> case -> outcome
(** Run one case; the workload is regenerated from [spec] with the case's
    read fraction, and [config]'s lease and cache policies are replaced
    according to the case's mode.
    @raise Failure on any violated invariant (see above). *)

val sweep :
  ?config:Core.Config.t ->
  ?lease:Gdo.Lease.policy ->
  ?spec:Workload.Spec.t ->
  ?protocols:Dsm.Protocol.t list ->
  ?read_fractions:float list ->
  ?policies:Dsm.Method_cache.policy list ->
  unit ->
  outcome list
(** Cartesian product protocols × read fractions ×
    ([Baseline] + [Lease_only] + [Cached] per policy). Defaults: all four
    protocols, read fractions [[0.8; 0.95; 0.99]], policies
    [[default_policy]]. *)

val baseline_of : outcome list -> outcome -> outcome option
(** The [Baseline] row with the same protocol and read fraction. *)

val pp_outcome : Format.formatter -> outcome -> unit

val pp_report : Format.formatter -> outcome list -> unit
(** Table of the sweep; lease/cache rows show the message-reduction factor
    against the matching [Baseline] row, cache rows also the hit rate. *)

val to_json : outcome list -> string
(** The sweep as a JSON array (one object per case), for BENCH_cache.json. *)
