(** Lease sweep: the read-lease subsystem (see {!Gdo.Lease}) off vs on.

    For each protocol and each read-heaviness level, the same workload runs
    once with leases disabled and once per lease policy, and the sweep
    reports the consistency traffic (messages/bytes), completion time and —
    the headline — {e home-node lock operations}
    ({!Dsm.Metrics.home_lock_ops}: global acquisitions + upgrades + release
    batches + recall/yield traffic). On read-dominated workloads repeat
    read acquisitions are absorbed by the local lease caches, so the
    home-node figure drops sharply; on write-heavy workloads recalls claw
    the saving back — which is the trade-off the sweep quantifies.

    Every case re-asserts the chaos-harness invariants: the committed
    history is serializable (checked inside {!Runner.execute}), every root
    is accounted for, and with leases [Off] all lease counters are zero. *)

type case = {
  protocol : Dsm.Protocol.t;
  read_fraction : float;  (** the workload's [read_only_method_fraction] *)
  policy : Gdo.Lease.policy;
}

type outcome = {
  case : case;
  committed : int;
  aborted : int;
  messages : int;
  bytes : int;
  home_lock_ops : int;
  lease_grants : int;
  lease_hits : int;
  lease_recalls : int;
  lease_yields : int;
  lease_expiries : int;
  lease_aborts : int;
  completion_us : float;
}

val default_spec : Workload.Spec.t
(** A high-contention workload (few objects, default cluster) whose roots
    revisit the same objects from every node — the access pattern leases
    are built for. [read_only_method_fraction] is overridden per case. *)

val default_policy : Gdo.Lease.policy
(** [Fixed_ttl] whose TTL bounds a recalling write's worst-case stall well
    below the run length while outliving any one family. *)

val default_adaptive : Gdo.Lease.policy
(** [Adaptive] that leases only observed read-dominated objects: neutral on
    mixed workloads, near-[Fixed_ttl] savings on read-heavy ones. *)

val run_case : ?config:Core.Config.t -> spec:Workload.Spec.t -> case -> outcome
(** Run one case; the workload is regenerated from [spec] with the case's
    read fraction, and [config]'s lease policy is replaced by the case's.
    @raise Failure on any violated invariant (see above). *)

val sweep :
  ?config:Core.Config.t ->
  ?spec:Workload.Spec.t ->
  ?protocols:Dsm.Protocol.t list ->
  ?read_fractions:float list ->
  ?policies:Gdo.Lease.policy list ->
  unit ->
  outcome list
(** Cartesian product protocols × read fractions × ([Off] + [policies]).
    Defaults: all four protocols, read fractions [[0.5; 0.8; 0.95]],
    policies [[default_policy; default_adaptive]]. *)

val reduction : off:outcome -> on:outcome -> float
(** Relative change of [home_lock_ops], in percent (negative = fewer home
    operations with leases on). *)

val pp_outcome : Format.formatter -> outcome -> unit

val pp_report : Format.formatter -> outcome list -> unit
(** Table of the sweep; rows with an enabled policy also show the
    home-lock-op change against the matching [Off] row. *)

val to_json : outcome list -> string
(** The sweep as a JSON array (one object per case), for BENCH_lease.json
    style artefacts. *)
