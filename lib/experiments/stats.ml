let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
      let m = mean xs in
      let var = mean (List.map (fun x -> (x -. m) ** 2.0) xs) in
      sqrt var

let percentile p xs =
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of [0,100]";
  match xs with
  | [] -> 0.0
  | _ ->
      let sorted = List.sort Float.compare xs in
      let n = List.length sorted in
      let rank = int_of_float (Float.ceil (p /. 100.0 *. float_of_int n)) in
      let idx = max 0 (min (n - 1) (rank - 1)) in
      List.nth sorted idx

let median xs = percentile 50.0 xs

let root_latencies rt =
  List.filter_map
    (fun (r : Core.Runtime.root_result) ->
      match r.Core.Runtime.outcome with
      | Core.Runtime.Committed -> Some (r.Core.Runtime.completed_at -. r.Core.Runtime.submitted_at)
      | Core.Runtime.Gave_up -> None)
    (Core.Runtime.results rt)
