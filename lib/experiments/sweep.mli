(** Parameter sweeps over the workload dimensions the paper varied (§5):
    "We varied the number of objects, the size of the objects (in units of
    pages) and the number of transactions in order to achieve a range of
    conflict scenarios."

    Each sweep holds the other dimensions at the Figure 2 setting and
    reports total consistency bytes for COTEC/OTEC/LOTEC plus the two
    reduction ratios, showing how the protocol gaps respond to contention,
    object size and load. *)

type row = {
  label : string;  (** the swept value, e.g. "20 objects" *)
  cotec_bytes : int;
  otec_bytes : int;
  lotec_bytes : int;
  otec_vs_cotec_pct : float;
  lotec_vs_otec_pct : float;
}

type result = { dimension : string; rows : row list }

val object_count_sweep : ?config:Core.Config.t -> ?counts:int list -> unit -> result
(** Default counts: 10, 20, 50, 100, 200 — spanning the paper's high (20)
    and moderate (100) contention points. *)

val object_size_sweep : ?config:Core.Config.t -> ?sizes:(int * int) list -> unit -> result
(** Default (min,max) page ranges: (1,2), (1,5), (5,10), (10,20). *)

val transaction_count_sweep : ?config:Core.Config.t -> ?counts:int list -> unit -> result
(** Default root counts: 50, 100, 200, 400. *)

val run_all : ?config:Core.Config.t -> unit -> result list

val pp : Format.formatter -> result -> unit
