type cell = {
  control_cost_us : float;
  time_us : (Dsm.Protocol.t * float) list;
  lotec_vs_otec_pct : float;
}

type result = { bandwidth_bps : float; data_cost_us : float; cells : cell list }

let control_costs_us = [ 20.0; 5.0; 1.0; 0.5 ]

let of_runs ?(bandwidth_bps = 1e9) ?(data_cost_us = 20.0) runs =
  let link = { Sim.Network.bandwidth_bps; software_cost_us = data_cost_us } in
  let cells =
    List.map
      (fun control_cost_us ->
        let time_us =
          List.map
            (fun (run : Runner.run) ->
              ( run.Runner.protocol,
                Dsm.Metrics.total_time_us_am (Runner.metrics run) ~link
                  ~control_software_cost_us:control_cost_us ))
            runs
        in
        let margin =
          match
            ( List.assoc_opt Dsm.Protocol.Lotec time_us,
              List.assoc_opt Dsm.Protocol.Otec time_us )
          with
          | Some l, Some o when o > 0.0 -> 100.0 *. ((l -. o) /. o)
          | _ -> 0.0
        in
        { control_cost_us; time_us; lotec_vs_otec_pct = margin })
      control_costs_us
  in
  { bandwidth_bps; data_cost_us; cells }

let run ?(spec = Workload.Scenarios.medium_high) () =
  let wl = Workload.Generator.generate spec ~page_size:4096 in
  let runs =
    Runner.execute_all ~protocols:[ Dsm.Protocol.Cotec; Dsm.Protocol.Otec; Dsm.Protocol.Lotec ]
      wl
  in
  of_runs runs

let pp fmt result =
  Format.fprintf fmt
    "active messages at %.0f Mbps (data msgs stay at %.0f us; control msgs swept)@."
    (result.bandwidth_bps /. 1e6) result.data_cost_us;
  let protocols = match result.cells with [] -> [] | c :: _ -> List.map fst c.time_us in
  let header =
    ("ctrl cost us" :: List.map (fun p -> Format.asprintf "%a us" Dsm.Protocol.pp p) protocols)
    @ [ "LOTEC vs OTEC" ]
  in
  let rows =
    List.map
      (fun c ->
        (Printf.sprintf "%g" c.control_cost_us
         :: List.map
              (fun p ->
                match List.assoc_opt p c.time_us with
                | Some v -> Report.fmt_us v
                | None -> "-")
              protocols)
        @ [ Report.fmt_pct c.lotec_vs_otec_pct ])
      result.cells
  in
  Format.fprintf fmt "%s@." (Report.render ~header rows)
