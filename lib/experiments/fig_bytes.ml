open Objmodel

type series = {
  protocol : Dsm.Protocol.t;
  bytes_per_object : (Oid.t * int) list;
  total_bytes : int;
  total_messages : int;
}

type result = {
  name : string;
  spec : Workload.Spec.t;
  runs : Runner.run list;
  series : series list;
}

let default_protocols = [ Dsm.Protocol.Cotec; Dsm.Protocol.Otec; Dsm.Protocol.Lotec ]

let series_of_run (run : Runner.run) =
  let m = Runner.metrics run in
  let oids = Catalog.oids run.Runner.workload.Workload.Generator.catalog in
  let bytes_per_object =
    List.map
      (fun oid ->
        let e = Dsm.Metrics.per_object m oid in
        (oid, e.Dsm.Metrics.data_bytes + e.Dsm.Metrics.control_bytes))
      oids
  in
  {
    protocol = run.Runner.protocol;
    bytes_per_object;
    total_bytes = Dsm.Metrics.total_bytes m;
    total_messages = Dsm.Metrics.total_messages m;
  }

let run ?config ?(protocols = default_protocols) ~name spec =
  let page_size =
    match config with
    | Some c -> c.Core.Config.page_size
    | None -> Core.Config.default.Core.Config.page_size
  in
  let workload = Workload.Generator.generate spec ~page_size in
  let runs = Runner.execute_all ?config ~protocols workload in
  { name; spec; runs; series = List.map series_of_run runs }

let figure2 ?config () = run ?config ~name:"fig2: medium objects, high contention" Workload.Scenarios.medium_high
let figure3 ?config () = run ?config ~name:"fig3: large objects, high contention" Workload.Scenarios.large_high
let figure4 ?config () = run ?config ~name:"fig4: medium objects, moderate contention" Workload.Scenarios.medium_moderate
let figure5 ?config () = run ?config ~name:"fig5: large objects, moderate contention" Workload.Scenarios.large_moderate

let top_objects result n =
  match result.series with
  | [] -> []
  | base :: _ ->
      base.bytes_per_object
      |> List.sort (fun (_, b1) (_, b2) -> Int.compare b2 b1)
      |> List.filteri (fun i _ -> i < n)
      |> List.map fst
      |> List.sort Oid.compare

let pp_chart ?(objects = 8) fmt result =
  let display = top_objects result objects in
  let groups =
    List.map
      (fun oid ->
        {
          Report.group = Format.asprintf "%a" Oid.pp oid;
          bars =
            List.map
              (fun s ->
                ( Format.asprintf "%a" Dsm.Protocol.pp s.protocol,
                  float_of_int (List.assoc oid s.bytes_per_object) ))
              result.series;
        })
      display
  in
  Format.fprintf fmt "%s@.%s@." result.name
    (Report.bar_chart ~value_fmt:(fun v -> Report.fmt_bytes (int_of_float v)) groups)

let pp fmt result =
  let display = top_objects result 20 in
  let header =
    "object"
    :: List.map (fun s -> Format.asprintf "%a" Dsm.Protocol.pp s.protocol) result.series
  in
  let rows =
    List.map
      (fun oid ->
        Format.asprintf "%a" Oid.pp oid
        :: List.map
             (fun s -> Report.fmt_bytes (List.assoc oid s.bytes_per_object))
             result.series)
      display
    @ [
        "TOTAL" :: List.map (fun s -> Report.fmt_bytes s.total_bytes) result.series;
        "msgs" :: List.map (fun s -> Report.fmt_bytes s.total_messages) result.series;
      ]
  in
  Format.fprintf fmt "%s@.%s@." result.name (Report.render ~header rows)
