type row = {
  protocol : Dsm.Protocol.t;
  breakdown : (Dsm.Wire.t * int * int) list;
  messages : int;
  bytes : int;
  completion_us : float;
}

let default_protocols = [ Dsm.Protocol.Cotec; Dsm.Protocol.Otec; Dsm.Protocol.Lotec ]

let run ?(spec = Workload.Scenarios.medium_high) ?(protocols = default_protocols) () =
  let wl = Workload.Generator.generate spec ~page_size:Core.Config.default.Core.Config.page_size in
  List.map
    (fun protocol ->
      let r = Runner.execute ~protocol wl in
      let m = Runner.metrics r in
      {
        protocol;
        breakdown = Dsm.Metrics.wire_breakdown m;
        messages = Dsm.Metrics.wire_messages_total m;
        bytes = Dsm.Metrics.wire_bytes_total m;
        completion_us = Dsm.Metrics.completion_time_us m;
      })
    protocols

let pp_report fmt rows =
  Format.fprintf fmt "per-message-type traffic breakdown@.";
  Format.fprintf fmt "%-16s" "message type";
  List.iter
    (fun r ->
      Format.fprintf fmt " | %22s"
        (Format.asprintf "%a (msgs / bytes)" Dsm.Protocol.pp r.protocol))
    rows;
  Format.fprintf fmt "@.";
  List.iter
    (fun w ->
      let cells =
        List.map
          (fun r ->
            match List.find_opt (fun (w', _, _) -> w' = w) r.breakdown with
            | Some (_, m, b) -> (m, b)
            | None -> (0, 0))
          rows
      in
      if List.exists (fun (m, _) -> m > 0) cells then begin
        Format.fprintf fmt "%-16s" (Dsm.Wire.to_string w);
        List.iter (fun (m, b) -> Format.fprintf fmt " | %8d %13d" m b) cells;
        Format.fprintf fmt "@."
      end)
    Dsm.Wire.all;
  Format.fprintf fmt "%-16s" "total";
  List.iter (fun r -> Format.fprintf fmt " | %8d %13d" r.messages r.bytes) rows;
  Format.fprintf fmt "@.%-16s" "completion (us)";
  List.iter (fun r -> Format.fprintf fmt " | %22.1f" r.completion_us) rows;
  Format.fprintf fmt "@."

let to_json rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "[\n";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Printf.sprintf "  {\"protocol\": %S, \"messages\": %d, \"bytes\": %d, \
                         \"completion_us\": %.3f, \"by_type\": {"
           (Format.asprintf "%a" Dsm.Protocol.pp r.protocol)
           r.messages r.bytes r.completion_us);
      List.iteri
        (fun j (w, m, b) ->
          if j > 0 then Buffer.add_string buf ", ";
          Buffer.add_string buf
            (Printf.sprintf "%S: {\"messages\": %d, \"bytes\": %d}" (Dsm.Wire.to_string w) m b))
        r.breakdown;
      Buffer.add_string buf "}}")
    rows;
  Buffer.add_string buf "\n]\n";
  Buffer.contents buf
