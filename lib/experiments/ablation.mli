(** Ablations for the paper's future-work items (§5.1, §6).

    - {b RC-nested}: the Release-Consistency comparison the authors describe
      as "now underway" — eager pushing trades bytes for acquisition latency.
    - {b Optimistic pre-acquisition}: LOTEC with locks (and predicted pages)
      of upcoming sub-invocations acquired asynchronously at method entry,
      hiding remote lock latency behind local execution.
    - {b Multicast push}: RC-nested with the per-destination software cost
      collapsed to one message per push. *)

type row = {
  label : string;
  total_bytes : int;
  total_messages : int;
  completion_us : float;
  mean_root_latency_us : float;
}

type result = { scenario : string; rows : row list }

val rc_comparison : ?config:Core.Config.t -> ?spec:Workload.Spec.t -> unit -> result
(** COTEC/OTEC/LOTEC/RC-nested (and RC + multicast) over one scenario
    (default: Figure 2's). *)

val prefetch_comparison : ?config:Core.Config.t -> ?spec:Workload.Spec.t -> unit -> result
(** LOTEC with and without optimistic pre-acquisition (default scenario:
    Figure 3's — large objects make the hidden latency visible). *)

val replication_comparison : ?config:Core.Config.t -> ?spec:Workload.Spec.t -> unit -> result
(** LOTEC with 0/1/2 GDO replicas: the standing control-traffic cost of the
    §4.1 "partitioned and replicated" directory design. *)

val per_class_comparison : ?config:Core.Config.t -> ?spec:Workload.Spec.t -> unit -> result
(** The §6 per-class protocol extension: a heterogeneous workload (object
    sizes 1–20 pages) run uniformly under COTEC, OTEC and LOTEC, and under a
    hybrid that keeps LOTEC's lazy prediction only for classes of at least 6
    pages (where partial transfer pays) while small classes use plain OTEC
    (avoiding LOTEC's extra demand-fetch messages on objects that fit in a
    couple of pages anyway). *)

val pp : Format.formatter -> result -> unit
