(** Per-message-type traffic breakdown across protocols.

    Runs one workload under each protocol and tabulates, per protocol, the
    {!Dsm.Metrics.wire_breakdown}: how many messages of each wire type were
    sent and how many bytes they carried. This is the observability layer's
    view of the paper's central tradeoff — LOTEC "sends many more messages
    (albeit small ones)" than OTEC while moving fewer consistency bytes —
    broken down by which message types the difference comes from (see
    OBSERVABILITY.md for the worked example). *)

type row = {
  protocol : Dsm.Protocol.t;
  breakdown : (Dsm.Wire.t * int * int) list;
      (** (type, messages, bytes) per {!Dsm.Wire.all} entry, zero rows
          included *)
  messages : int;  (** total remote messages; equals the breakdown sum *)
  bytes : int;  (** total remote bytes; equals the breakdown sum *)
  completion_us : float;
}

val run :
  ?spec:Workload.Spec.t -> ?protocols:Dsm.Protocol.t list -> unit -> row list
(** One fresh runtime per protocol over the same generated workload.
    Defaults: the medium-high scenario under COTEC, OTEC and LOTEC. *)

val pp_report : Format.formatter -> row list -> unit
(** Side-by-side table: one line per wire type that any protocol used, one
    message and byte column pair per protocol, plus total lines. *)

val to_json : row list -> string
(** JSON array with one object per protocol carrying the per-type counts and
    bytes plus totals and completion time; machine-readable counterpart of
    {!pp_report} (written to BENCH_trace.json by the bench harness). *)
