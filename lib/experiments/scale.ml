(* Engine-speed measurement and the million-transaction scale sweep.

   Two instruments:

   - {!engine_bench}: a pure [Sim.Engine] micro-benchmark (no DSM layers)
     exercising the hot paths the event-pool refactor targets — raw event
     dispatch, fiber spawn/wait churn, and the waiter-heavy Semaphore /
     Mailbox / Ivar paths that used to be accidentally quadratic. It uses
     only the public engine API, so the same workload runs unchanged
     against any engine revision; [baseline] records the pre-refactor
     numbers for comparison.

   - {!sweep}: full-stack runs of 100k-1M root transactions over 64-256
     nodes per protocol, with streaming metrics (no per-root result or
     serializability-history retention) so memory stays bounded. *)

type bench_row = { component : string; ops : int; wall_s : float; ops_per_sec : float }

(* Every reported rate goes through this one clamp: a timer reading of (or
   rounding to) zero wall time must yield a large-but-finite rate, never a
   division by zero or an infinity leaking into reports and JSON. *)
let per_sec ops wall_s = float_of_int ops /. Float.max wall_s 1e-9

type bench = {
  rows : bench_row list;
  total_ops : int;
  total_wall_s : float;
  aggregate_ops_per_sec : float;
}

let timed f =
  let t0 = Unix.gettimeofday () in
  let ops = f () in
  let wall = Unix.gettimeofday () -. t0 in
  (ops, wall)

(* Raw schedule/dispatch: [timers] self-rescheduling callbacks keep the
   event queue [timers] deep while [events] callbacks fire in total. One
   op = one engine event, so this component's ops/sec IS events/sec. *)
let bench_dispatch ~events ~timers () =
  let e = Sim.Engine.create () in
  let per = events / timers in
  for _ = 1 to timers do
    let remaining = ref per in
    let rec tick () =
      if !remaining > 0 then begin
        decr remaining;
        Sim.Engine.schedule e ~delay:1.0 tick
      end
    in
    Sim.Engine.schedule e ~delay:1.0 tick
  done;
  Sim.Engine.run e;
  timers * (per + 1)

(* Fiber creation and timed sleeps: spawn cost plus the Wait effect. *)
let bench_fibers ~fibers () =
  let e = Sim.Engine.create () in
  for i = 1 to fibers do
    Sim.Engine.spawn e (fun () ->
        Sim.Engine.wait (float_of_int (i land 7));
        Sim.Engine.wait 1.0)
  done;
  Sim.Engine.run e;
  fibers

(* One permit, [waiters] contending fibers: the waiter list reaches
   [waiters] length, so any O(length) append or removal in the engine
   turns this component quadratic. One op = one acquire/release pair. *)
let bench_semaphore ~waiters ~rounds () =
  let e = Sim.Engine.create () in
  let s = Sim.Engine.Semaphore.create ~permits:1 in
  for _ = 1 to waiters do
    Sim.Engine.spawn e (fun () ->
        for _ = 1 to rounds do
          Sim.Engine.Semaphore.acquire s;
          Sim.Engine.wait 1.0;
          Sim.Engine.Semaphore.release s
        done)
  done;
  Sim.Engine.run e;
  waiters * rounds

(* [waiters] blocked takers on one mailbox, then a put storm. *)
let bench_mailbox ~waiters ~rounds () =
  let e = Sim.Engine.create () in
  let mb = Sim.Engine.Mailbox.create () in
  for _ = 1 to waiters do
    Sim.Engine.spawn e (fun () ->
        for _ = 1 to rounds do
          ignore (Sim.Engine.Mailbox.take mb)
        done)
  done;
  (* All takers block first; the puts then wake them one by one. *)
  Sim.Engine.schedule e ~delay:10.0 (fun () ->
      for i = 1 to waiters * rounds do
        Sim.Engine.Mailbox.put mb i
      done);
  Sim.Engine.run e;
  waiters * rounds

(* [waiters] readers suspended on one ivar, released by a single fill:
   exercises bulk wake-up and suspended-mark removal. *)
let bench_ivar ~waiters () =
  let e = Sim.Engine.create () in
  let iv = Sim.Engine.Ivar.create () in
  for _ = 1 to waiters do
    Sim.Engine.spawn e (fun () -> ignore (Sim.Engine.Ivar.read iv))
  done;
  Sim.Engine.schedule e ~delay:10.0 (fun () -> Sim.Engine.Ivar.fill iv 42);
  Sim.Engine.run e;
  waiters

let engine_bench ?(dispatch_events = 2_000_000) ?(dispatch_timers = 10_000)
    ?(fibers = 100_000) ?(waiters = 10_000) ?(rounds = 2) () =
  let components =
    [
      ("dispatch", bench_dispatch ~events:dispatch_events ~timers:dispatch_timers);
      ("spawn-wait", bench_fibers ~fibers);
      ("semaphore-10k", bench_semaphore ~waiters ~rounds);
      ("mailbox-10k", bench_mailbox ~waiters ~rounds);
      ("ivar-10k", bench_ivar ~waiters);
    ]
  in
  let rows =
    List.map
      (fun (component, f) ->
        let ops, wall_s = timed f in
        let wall_s = max wall_s 1e-9 in
        { component; ops; wall_s; ops_per_sec = per_sec ops wall_s })
      components
  in
  let total_ops = List.fold_left (fun acc r -> acc + r.ops) 0 rows in
  let total_wall_s = List.fold_left (fun acc r -> acc +. r.wall_s) 0.0 rows in
  {
    rows;
    total_ops;
    total_wall_s;
    aggregate_ops_per_sec = per_sec total_ops total_wall_s;
  }

(* Pre-refactor ops/sec on this machine (commit 5dd1ec4 engine: event
   records in a polymorphic heap, list-append waiters, linear-scan
   suspended marks), captured with the default engine_bench sizes. Kept
   as code so BENCH_engine.json can always report the speedup without
   carrying state between runs; bench/engine_baseline.json holds the
   same numbers as an artifact. *)
let baseline : (string * float) list =
  [
    ("dispatch", 2_028_576.0);
    ("spawn-wait", 72_898.0);
    ("semaphore-10k", 987.0);
    ("mailbox-10k", 14_454.0);
    ("ivar-10k", 10_268.0);
    ("aggregate", 86_488.0);
  ]

let baseline_aggregate_ops_per_sec =
  match List.assoc_opt "aggregate" baseline with Some v -> v | None -> 0.0

let pp_bench fmt b =
  Format.fprintf fmt "engine micro-benchmark (public Sim.Engine API)@.";
  let header = [ "component"; "ops"; "wall s"; "ops/sec"; "baseline"; "speedup" ] in
  let row r =
    let base = Option.value (List.assoc_opt r.component baseline) ~default:0.0 in
    [
      r.component;
      string_of_int r.ops;
      Printf.sprintf "%.3f" r.wall_s;
      Printf.sprintf "%.0f" r.ops_per_sec;
      (if base > 0.0 then Printf.sprintf "%.0f" base else "-");
      (if base > 0.0 then Printf.sprintf "%.1fx" (r.ops_per_sec /. base) else "-");
    ]
  in
  let agg =
    [
      "aggregate";
      string_of_int b.total_ops;
      Printf.sprintf "%.3f" b.total_wall_s;
      Printf.sprintf "%.0f" b.aggregate_ops_per_sec;
      (if baseline_aggregate_ops_per_sec > 0.0 then
         Printf.sprintf "%.0f" baseline_aggregate_ops_per_sec
       else "-");
      (if baseline_aggregate_ops_per_sec > 0.0 then
         Printf.sprintf "%.1fx" (b.aggregate_ops_per_sec /. baseline_aggregate_ops_per_sec)
       else "-");
    ]
  in
  Format.fprintf fmt "%s@."
    (Report.render ~header
       ~align:[ Report.Left; Right; Right; Right; Right; Right ]
       (List.map row b.rows @ [ agg ]))

(* ------------------------------------------------------------------ *)
(* Wall-clock / allocation / engine-counter profile of one run.        *)

type profile = {
  wall_s : float;
  dispatched : int;
  scheduled : int;
  max_queue : int;
  events_per_sec : float;
  alloc_mb : float;  (** minor words allocated during the run *)
  peak_heap_mb : float;  (** process-lifetime major-heap high-water mark *)
}

let bytes_per_word = float_of_int (Sys.word_size / 8)

let profiled f =
  let a0 = Gc.allocated_bytes () in
  let t0 = Unix.gettimeofday () in
  let x, engine = f () in
  let wall_s = max (Unix.gettimeofday () -. t0) 1e-9 in
  let s = Sim.Engine.stats engine in
  ( x,
    {
      wall_s;
      dispatched = s.Sim.Engine.dispatched;
      scheduled = s.Sim.Engine.scheduled;
      max_queue = s.Sim.Engine.max_queue;
      events_per_sec = per_sec s.Sim.Engine.dispatched wall_s;
      alloc_mb = (Gc.allocated_bytes () -. a0) /. 1e6;
      peak_heap_mb =
        float_of_int (Gc.quick_stat ()).Gc.top_heap_words *. bytes_per_word /. 1e6;
    } )

let pp_profile fmt p =
  Format.fprintf fmt
    "@[<v>engine profile:@,\
    \  wall clock        %.3f s@,\
    \  events dispatched %d (%.0f events/sec)@,\
    \  events scheduled  %d, max queue depth %d@,\
    \  allocated         %.1f MB, peak heap %.1f MB@]"
    p.wall_s p.dispatched p.events_per_sec p.scheduled p.max_queue p.alloc_mb
    p.peak_heap_mb

(* ------------------------------------------------------------------ *)
(* Full-stack scale sweep: 100k-1M roots over 64-256 nodes.            *)

type scale_row = {
  s_protocol : Dsm.Protocol.t;
  s_roots : int;
  s_nodes : int;
  s_committed : int;
  s_aborted : int;
  s_makespan_us : float;
  s_profile : profile;
}

(* Workload shape for a scale point: object population grows with the
   cluster (constant objects-per-node density, so contention does not
   concentrate as nodes are added), and the invocation tree is kept
   subcritical (2 ref slots x 0.4 invoke probability, expected branching
   0.8 < 1) so family size is bounded independent of the object count —
   per-root work stays constant as the sweep scales, which is what makes
   events/sec comparable across points. *)
let spec_for ~roots ~nodes =
  {
    Workload.Spec.default with
    Workload.Spec.root_count = roots;
    node_count = nodes;
    object_count = nodes * 32;
    arrival_mean_us = 1_000.0;
    max_ref_slots = 2;
    invoke_probability = 0.4;
  }

let run_point ?(config = Core.Config.default) ~protocol ~spec () =
  let config =
    {
      config with
      Core.Config.protocol;
      node_count = spec.Workload.Spec.node_count;
      streaming = true;
      trace_capacity = 0;
    }
  in
  let workload = Workload.Generator.generate spec ~page_size:config.Core.Config.page_size in
  let runtime, p =
    profiled (fun () ->
        let runtime =
          Core.Runtime.create ~config ~catalog:workload.Workload.Generator.catalog
        in
        (* Feed arrivals lazily — one pending feeder event instead of every
           submission pre-scheduled. At 1M roots the up-front version keeps
           a million-entry event heap alive for the whole run (every
           sift is O(log 1M)) and ~4x the resident memory; lazy feeding
           keeps the pending queue at the size of the genuinely concurrent
           work. *)
        let engine = Core.Runtime.engine runtime in
        let rec feed = function
          | [] -> ()
          | (r : Workload.Generator.root_spec) :: rest ->
              let delay = max 0.0 (r.Workload.Generator.at -. Sim.Engine.now engine) in
              Sim.Engine.schedule engine ~delay (fun () ->
                  (* [submit]'s [at] is a delay from now; the feeder event
                     already fired at the root's arrival time. *)
                  Core.Runtime.submit runtime ~at:0.0 ~node:r.node ~oid:r.oid
                    ~meth:r.meth ~seed:r.seed;
                  feed rest)
        in
        feed workload.Workload.Generator.roots;
        Core.Runtime.run runtime;
        (runtime, engine))
  in
  let totals = Dsm.Metrics.totals (Core.Runtime.metrics runtime) in
  {
    s_protocol = protocol;
    s_roots = spec.Workload.Spec.root_count;
    s_nodes = spec.Workload.Spec.node_count;
    s_committed = totals.Dsm.Metrics.roots_committed;
    s_aborted = totals.Dsm.Metrics.roots_aborted;
    s_makespan_us = Dsm.Metrics.completion_time_us (Core.Runtime.metrics runtime);
    s_profile = p;
  }

let default_points = [ (100_000, 64); (300_000, 128); (1_000_000, 256) ]

let sweep ?config ?(points = default_points) ?(protocols = Dsm.Protocol.all)
    ?(progress = fun (_ : scale_row) -> ()) () =
  List.concat_map
    (fun (roots, nodes) ->
      let spec = spec_for ~roots ~nodes in
      List.map
        (fun protocol ->
          let row = run_point ?config ~protocol ~spec () in
          progress row;
          row)
        protocols)
    points

let pp_sweep fmt rows =
  Format.fprintf fmt "scale sweep (streaming metrics, bounded memory)@.";
  let header =
    [
      "protocol"; "roots"; "nodes"; "committed"; "gave up"; "makespan"; "wall s";
      "events"; "events/sec"; "max queue"; "peak heap MB";
    ]
  in
  let row r =
    [
      Format.asprintf "%a" Dsm.Protocol.pp r.s_protocol;
      string_of_int r.s_roots;
      string_of_int r.s_nodes;
      string_of_int r.s_committed;
      string_of_int r.s_aborted;
      Report.fmt_us r.s_makespan_us;
      Printf.sprintf "%.2f" r.s_profile.wall_s;
      string_of_int r.s_profile.dispatched;
      Printf.sprintf "%.0f" r.s_profile.events_per_sec;
      string_of_int r.s_profile.max_queue;
      Printf.sprintf "%.1f" r.s_profile.peak_heap_mb;
    ]
  in
  Format.fprintf fmt "%s@."
    (Report.render ~header
       ~align:
         [
           Report.Left; Right; Right; Right; Right; Right; Right; Right; Right; Right; Right;
         ]
       (List.map row rows))

let sweep_rows_json rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "[\n";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"protocol\": %S, \"roots\": %d, \"nodes\": %d, \"committed\": %d, \
            \"gave_up\": %d, \"makespan_us\": %.1f, \"wall_s\": %.3f, \"events\": %d, \
            \"events_per_sec\": %.1f, \"max_queue\": %d, \"alloc_mb\": %.1f, \
            \"peak_heap_mb\": %.1f}"
           (Dsm.Protocol.to_string r.s_protocol)
           r.s_roots r.s_nodes r.s_committed r.s_aborted r.s_makespan_us r.s_profile.wall_s
           r.s_profile.dispatched r.s_profile.events_per_sec r.s_profile.max_queue
           r.s_profile.alloc_mb r.s_profile.peak_heap_mb))
    rows;
  Buffer.add_string buf "\n  ]";
  Buffer.contents buf

let to_json ?bench ?(scale = []) () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{";
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_string buf ",";
    Buffer.add_string buf "\n"
  in
  (match bench with
  | None -> ()
  | Some b ->
      sep ();
      Buffer.add_string buf "  \"engine_bench\": [\n";
      List.iteri
        (fun i r ->
          if i > 0 then Buffer.add_string buf ",\n";
          let base = Option.value (List.assoc_opt r.component baseline) ~default:0.0 in
          Buffer.add_string buf
            (Printf.sprintf
               "    {\"component\": %S, \"ops\": %d, \"wall_s\": %.6f, \"ops_per_sec\": %.1f, \
                \"baseline_ops_per_sec\": %.1f, \"speedup\": %.2f}"
               r.component r.ops r.wall_s r.ops_per_sec base
               (if base > 0.0 then r.ops_per_sec /. base else 0.0)))
        b.rows;
      Buffer.add_string buf "\n  ]";
      sep ();
      Buffer.add_string buf
        (Printf.sprintf
           "  \"aggregate\": {\"ops\": %d, \"wall_s\": %.6f, \"ops_per_sec\": %.1f, \
            \"baseline_ops_per_sec\": %.1f, \"speedup\": %.2f}"
           b.total_ops b.total_wall_s b.aggregate_ops_per_sec baseline_aggregate_ops_per_sec
           (if baseline_aggregate_ops_per_sec > 0.0 then
              b.aggregate_ops_per_sec /. baseline_aggregate_ops_per_sec
            else 0.0)));
  if scale <> [] then begin
    sep ();
    Buffer.add_string buf "  \"scale\": ";
    Buffer.add_string buf (sweep_rows_json scale)
  end;
  Buffer.add_string buf "\n}\n";
  Buffer.contents buf
