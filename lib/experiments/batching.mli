(** Message-combining sweep: protocols x batching policy under light
    interconnect faults, replayed over the Fig_time software-cost grid.

    LOTEC's weakness in the paper is message {e count}: it trades bytes
    for many small messages, so a high per-message software cost erodes
    its advantage (figures 6-8). The combining layer ({!Dsm.Batching})
    attacks exactly that term — this sweep measures how much of it comes
    back. Runs execute under a light drop/jitter fault model on purpose:
    transport acks only exist on a lossy interconnect (and fault-free
    LOTEC demand fetches are zero on the standard workload, because the
    predicted access sets cover the actual ones), so a fault-free sweep
    would have nothing to combine.

    Every run asserts the batching invariants and raises [Failure] on
    violation: root accounting balances, the wire ledger reconciles
    exactly with the network ledger (riders included), and a batching-off
    run records zero combining activity. *)

type case = { protocol : Dsm.Protocol.t; policy : Dsm.Batching.t }

type outcome = {
  case : case;
  committed : int;
  aborted : int;
  messages : int;  (** network messages put on the wire *)
  bytes : int;
  riders : int;  (** combined payloads that rode a carrier (see Metrics) *)
  acks_piggybacked : int;
  acks_flushed : int;
  fetches_aggregated : int;
  releases_coalesced : int;
  heartbeats_suppressed : int;
  retransmits : int;
  completion_us : float;
  time_us : (float * float) list;
      (** [(software_cost_us, replayed total message time)] over
          {!Fig_time.software_costs_us}:
          [messages * software_cost + bytes * 8 / bandwidth]. *)
}

val default_spec : Workload.Spec.t
(** {!Workload.Scenarios.medium_high}. *)

val default_faults : Sim.Fault.config
(** Light loss: drop 0.03, 30 us jitter, no crash windows, fixed seed. *)

val default_bandwidth_bps : float
(** 100 Mbps — the figure-7 regime, where software cost and serialisation
    are comparable. *)

val case_name : case -> string

val run_case :
  ?config:Core.Config.t ->
  ?bandwidth_bps:float ->
  spec:Workload.Spec.t ->
  case ->
  outcome

val sweep :
  ?config:Core.Config.t ->
  ?spec:Workload.Spec.t ->
  ?faults:Sim.Fault.config option ->
  ?bandwidth_bps:float ->
  ?protocols:Dsm.Protocol.t list ->
  ?policies:Dsm.Batching.t list ->
  unit ->
  outcome list
(** Defaults: OTEC and LOTEC, policies [[off; all]], {!default_faults}.
    [config]'s fault field is replaced by [faults]. *)

val baseline_of : outcome list -> outcome -> outcome option
(** The batching-off outcome a combined outcome compares against (same
    protocol). *)

val message_reduction : off:outcome -> on:outcome -> float
(** Percentage message-count change of [on] vs [off]; negative = fewer. *)

val lotec_message_reduction_pct : outcome list -> float option
(** The headline number: LOTEC messages, batching on vs off. [None] when
    the sweep did not include both LOTEC rows. *)

val pp_outcome : Format.formatter -> outcome -> unit

val pp_report : Format.formatter -> outcome list -> unit
(** Summary table (counts, combining counters, completion) plus the
    software-cost replay grid. *)

val to_json : outcome list -> string
