type scenario_row = {
  scenario : string;
  cotec_bytes : int;
  otec_bytes : int;
  lotec_bytes : int;
  otec_vs_cotec_pct : float;
  lotec_vs_otec_pct : float;
  cotec_messages : int;
  otec_messages : int;
  lotec_messages : int;
}

type result = { rows : scenario_row list }

let find_series (fb : Fig_bytes.result) protocol =
  List.find_opt
    (fun (s : Fig_bytes.series) -> Dsm.Protocol.equal s.Fig_bytes.protocol protocol)
    fb.Fig_bytes.series

let pct_change ~from ~to_ =
  if from = 0 then 0.0 else 100.0 *. (float_of_int (to_ - from) /. float_of_int from)

let of_figures figures =
  let rows =
    List.filter_map
      (fun (fb : Fig_bytes.result) ->
        match
          ( find_series fb Dsm.Protocol.Cotec,
            find_series fb Dsm.Protocol.Otec,
            find_series fb Dsm.Protocol.Lotec )
        with
        | Some c, Some o, Some l ->
            Some
              {
                scenario = fb.Fig_bytes.name;
                cotec_bytes = c.Fig_bytes.total_bytes;
                otec_bytes = o.Fig_bytes.total_bytes;
                lotec_bytes = l.Fig_bytes.total_bytes;
                otec_vs_cotec_pct =
                  pct_change ~from:c.Fig_bytes.total_bytes ~to_:o.Fig_bytes.total_bytes;
                lotec_vs_otec_pct =
                  pct_change ~from:o.Fig_bytes.total_bytes ~to_:l.Fig_bytes.total_bytes;
                cotec_messages = c.Fig_bytes.total_messages;
                otec_messages = o.Fig_bytes.total_messages;
                lotec_messages = l.Fig_bytes.total_messages;
              }
        | _ -> None)
      figures
  in
  { rows }

let run_all ?config () =
  let figures =
    [
      Fig_bytes.figure2 ?config ();
      Fig_bytes.figure3 ?config ();
      Fig_bytes.figure4 ?config ();
      Fig_bytes.figure5 ?config ();
    ]
  in
  (figures, of_figures figures)

let pp fmt result =
  let header =
    [ "scenario"; "COTEC B"; "OTEC B"; "LOTEC B"; "OTEC vs COTEC"; "LOTEC vs OTEC"; "msgs C/O/L" ]
  in
  let rows =
    List.map
      (fun r ->
        [
          r.scenario;
          Report.fmt_bytes r.cotec_bytes;
          Report.fmt_bytes r.otec_bytes;
          Report.fmt_bytes r.lotec_bytes;
          Report.fmt_pct r.otec_vs_cotec_pct;
          Report.fmt_pct r.lotec_vs_otec_pct;
          Printf.sprintf "%d/%d/%d" r.cotec_messages r.otec_messages r.lotec_messages;
        ])
      result.rows
  in
  Format.fprintf fmt "%s@."
    (Report.render ~header
       ~align:[ Report.Left; Right; Right; Right; Right; Right; Right ]
       rows)
