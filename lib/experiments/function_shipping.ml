type mode =
  | Data_ship  (** shipping off — the paper's pure data-shipping protocol *)
  | Shipping of Dsm.Shipping.params

type case = {
  protocol : Dsm.Protocol.t;
  skew : float;
  software_us : float;
  mode : mode;
}

type outcome = {
  case : case;
  committed : int;
  aborted : int;
  messages : int;
  bytes : int;
  ships : int;
  declines : int;
  forced : int;
  predicted_saved_bytes : int;
  completion_us : float;
  consistency_us : float;
}

(* The locality-skewed nesting preset: multi-page objects whose pages all
   start at one home node, methods that touch most of them, and deep
   nesting so a large share of invocations target objects homed away from
   the invoker — the regime where moving the method beats moving the
   pages. [skew] concentrates root traffic on the low-numbered objects,
   raising the fraction of cross-node invocations of the same hot homes. *)
let default_spec ~skew =
  {
    Workload.Spec.default with
    Workload.Spec.seed = 77;
    object_count = 48;
    min_pages = 3;
    max_pages = 6;
    root_count = 120;
    arrival_mean_us = 400.0;
    access_fraction = 0.85;
    access_density = 0.95;
    scatter_probability = 0.0;
    write_fraction = 0.3;
    branch_probability = 0.1;
    invoke_probability = 0.75;
    max_ref_slots = 3;
    read_only_method_fraction = 0.4;
    access_skew = skew;
  }

let default_params = Dsm.Shipping.default_params
let default_skews = [ 0.0; 1.5 ]
let default_software_costs = [ 20.0; 60.0 ]

let mode_to_string = function
  | Data_ship -> "data-ship"
  | Shipping _ -> "shipping"

let case_name c =
  Format.asprintf "%a skew=%.1f sw=%g mode=%s" Dsm.Protocol.pp c.protocol c.skew c.software_us
    (mode_to_string c.mode)

(* Positive = the shipping run moved fewer bytes. *)
let bytes_reduction_pct ~baseline ~on =
  if baseline.bytes = 0 then 0.0
  else 100.0 *. (1.0 -. (float_of_int on.bytes /. float_of_int baseline.bytes))

(* < 1 = the shipping run finished sooner. *)
let time_ratio ~baseline ~on =
  if baseline.completion_us = 0.0 then 1.0 else on.completion_us /. baseline.completion_us

let run_case ?(config = Core.Config.default) ?(spec_of_skew = fun skew -> default_spec ~skew)
    c =
  let spec = spec_of_skew c.skew in
  let link = { config.Core.Config.link with Sim.Network.software_cost_us = c.software_us } in
  let config =
    match c.mode with
    | Data_ship -> { config with Core.Config.link; shipping = Dsm.Shipping.off }
    | Shipping p ->
        (* The model's σ tracks the link it is costing against. *)
        {
          config with
          Core.Config.link;
          shipping = Dsm.Shipping.On { p with Dsm.Shipping.software_us = c.software_us };
        }
  in
  let wl = Workload.Generator.generate spec ~page_size:config.Core.Config.page_size in
  (* Runner.execute raises unless the committed history is serializable —
     with shipping on, that check is what pins "a shipped child is
     indistinguishable from a local one". *)
  let run = Runner.execute ~config ~protocol:c.protocol wl in
  let m = Runner.metrics run in
  let t = Dsm.Metrics.totals m in
  let fail fmt =
    Format.kasprintf (fun s -> failwith ("ship [" ^ case_name c ^ "]: " ^ s)) fmt
  in
  let submitted = spec.Workload.Spec.root_count in
  if t.Dsm.Metrics.roots_committed + t.Dsm.Metrics.roots_aborted <> submitted then
    fail "root accounting broken: %d committed + %d aborted <> %d submitted"
      t.Dsm.Metrics.roots_committed t.Dsm.Metrics.roots_aborted submitted;
  (match c.mode with
  | Shipping _ -> ()
  | Data_ship ->
      if
        t.Dsm.Metrics.ships + t.Dsm.Metrics.ship_declines + t.Dsm.Metrics.ships_forced
        + t.Dsm.Metrics.ship_bytes_saved
        > 0
      then fail "ship counters nonzero with shipping off");
  (* The wire ledger (recorded at send time, Ship_invoke/Ship_reply rows
     included) must reconcile exactly with the network's per-object
     ledger. *)
  if Dsm.Metrics.wire_messages_total m <> Dsm.Metrics.total_messages m then
    fail "wire ledger out of balance: %d wire messages <> %d network messages"
      (Dsm.Metrics.wire_messages_total m)
      (Dsm.Metrics.total_messages m);
  if Dsm.Metrics.wire_bytes_total m <> Dsm.Metrics.total_bytes m then
    fail "wire ledger out of balance: %d wire bytes <> %d network bytes"
      (Dsm.Metrics.wire_bytes_total m) (Dsm.Metrics.total_bytes m);
  {
    case = c;
    committed = t.Dsm.Metrics.roots_committed;
    aborted = t.Dsm.Metrics.roots_aborted;
    messages = Dsm.Metrics.total_messages m;
    bytes = Dsm.Metrics.total_bytes m;
    ships = t.Dsm.Metrics.ships;
    declines = t.Dsm.Metrics.ship_declines;
    forced = t.Dsm.Metrics.ships_forced;
    predicted_saved_bytes = t.Dsm.Metrics.ship_bytes_saved;
    completion_us = Dsm.Metrics.completion_time_us m;
    (* Ledger replay, shared with the active-messages experiment: total
       consistency time under the case's link (control cost = the link's
       software cost, so this is the plain replay). *)
    consistency_us =
      Dsm.Metrics.total_time_us_am m ~link ~control_software_cost_us:c.software_us;
  }

let sweep ?config ?spec_of_skew ?(params = default_params)
    ?(protocols = Dsm.Protocol.[ Cotec; Otec; Lotec; Rc_nested ])
    ?(skews = default_skews) ?(software_costs = default_software_costs) () =
  List.concat_map
    (fun protocol ->
      List.concat_map
        (fun skew ->
          List.concat_map
            (fun software_us ->
              List.map
                (fun mode ->
                  run_case ?config ?spec_of_skew { protocol; skew; software_us; mode })
                [ Data_ship; Shipping params ])
            software_costs)
        skews)
    protocols

(* The Data_ship row a shipping row compares against: same protocol, skew
   and software cost. *)
let baseline_of outcomes o =
  List.find_opt
    (fun b ->
      b.case.mode = Data_ship
      && b.case.protocol = o.case.protocol
      && b.case.skew = o.case.skew
      && b.case.software_us = o.case.software_us)
    outcomes

(* The gate row: LOTEC under shipping at the sweep's strongest skew and
   lowest software cost (the least favourable σ — shipping must win on
   bytes, not on an inflated per-message charge). *)
let headline outcomes =
  let candidates =
    List.filter
      (fun o ->
        o.case.protocol = Dsm.Protocol.Lotec
        && (match o.case.mode with Shipping _ -> true | Data_ship -> false)
        && o.case.skew > 0.0)
      outcomes
  in
  let best =
    List.fold_left
      (fun acc o ->
        match acc with
        | Some b
          when b.case.skew > o.case.skew
               || (b.case.skew = o.case.skew && b.case.software_us <= o.case.software_us) ->
            acc
        | _ -> Some o)
      None candidates
  in
  match best with
  | None -> None
  | Some on -> (
      match baseline_of outcomes on with
      | None -> None
      | Some baseline ->
          Some (baseline, on, bytes_reduction_pct ~baseline ~on, time_ratio ~baseline ~on))

let pp_outcome fmt o =
  Format.fprintf fmt "%s: %d/%d committed, %d msgs, %s, %d ships, %.0f us" (case_name o.case)
    o.committed (o.committed + o.aborted) o.messages (Report.fmt_bytes o.bytes) o.ships
    o.completion_us

let pp_report fmt outcomes =
  let header =
    [
      "protocol"; "skew"; "sw us"; "mode"; "ok/roots"; "msgs"; "bytes"; "vs base"; "ships";
      "declined"; "forced"; "pred. saved"; "completion"; "vs base";
    ]
  in
  let rows =
    List.map
      (fun o ->
        let vs_bytes, vs_time =
          match o.case.mode with
          | Data_ship -> ("-", "-")
          | Shipping _ -> (
              match baseline_of outcomes o with
              | Some b ->
                  ( Printf.sprintf "%+.1f%%" (-.bytes_reduction_pct ~baseline:b ~on:o),
                    Printf.sprintf "%+.1f%%" (100.0 *. (time_ratio ~baseline:b ~on:o -. 1.0))
                  )
              | None -> ("?", "?"))
        in
        [
          Format.asprintf "%a" Dsm.Protocol.pp o.case.protocol;
          Printf.sprintf "%.1f" o.case.skew;
          Printf.sprintf "%g" o.case.software_us;
          mode_to_string o.case.mode;
          Printf.sprintf "%d/%d" o.committed (o.committed + o.aborted);
          string_of_int o.messages;
          Report.fmt_bytes o.bytes;
          vs_bytes;
          string_of_int o.ships;
          string_of_int o.declines;
          string_of_int o.forced;
          Report.fmt_bytes o.predicted_saved_bytes;
          Report.fmt_us o.completion_us;
          vs_time;
        ])
      outcomes
  in
  Format.fprintf fmt "function-shipping sweep: all invariants held@.%s@."
    (Report.render ~header
       ~align:
         [
           Report.Left; Right; Right; Left; Right; Right; Right; Right; Right; Right; Right;
           Right; Right; Right;
         ]
       rows);
  match headline outcomes with
  | Some (_, _, reduction, ratio) ->
      Format.fprintf fmt
        "headline (LOTEC, skewed, cheapest messaging): %.1f%% fewer bytes, completion %+.1f%%@."
        reduction
        (100.0 *. (ratio -. 1.0))
  | None -> ()

let to_json outcomes =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "[\n";
  List.iteri
    (fun i o ->
      if i > 0 then Buffer.add_string buf ",\n";
      let vs_bytes, vs_time =
        match baseline_of outcomes o with
        | Some b when o.case.mode <> Data_ship ->
            ( Printf.sprintf "%.3f" (bytes_reduction_pct ~baseline:b ~on:o),
              Printf.sprintf "%.4f" (time_ratio ~baseline:b ~on:o) )
        | _ -> ("null", "null")
      in
      Buffer.add_string buf
        (Printf.sprintf
           "  {\"protocol\": %S, \"skew\": %.2f, \"software_us\": %g, \"mode\": %S, \
            \"committed\": %d, \"aborted\": %d, \"messages\": %d, \"bytes\": %d, \
            \"bytes_reduction_pct\": %s, \"time_ratio\": %s, \"ships\": %d, \"declines\": %d, \
            \"forced\": %d, \"predicted_saved_bytes\": %d, \"completion_us\": %.3f, \
            \"consistency_us\": %.3f}"
           (Format.asprintf "%a" Dsm.Protocol.pp o.case.protocol)
           o.case.skew o.case.software_us (mode_to_string o.case.mode) o.committed o.aborted
           o.messages o.bytes vs_bytes vs_time o.ships o.declines o.forced
           o.predicted_saved_bytes o.completion_us o.consistency_us))
    outcomes;
  Buffer.add_string buf "\n]\n";
  Buffer.contents buf
