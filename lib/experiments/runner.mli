(** Run a generated workload under a protocol and collect the metrics. *)

type run = {
  protocol : Dsm.Protocol.t;
  workload : Workload.Generator.t;
  runtime : Core.Runtime.t;  (** after [run] completed *)
}

val execute :
  ?config:Core.Config.t ->
  ?on_stall:(Core.Runtime.t -> unit) ->
  protocol:Dsm.Protocol.t ->
  Workload.Generator.t ->
  run
(** Build a runtime for the workload's catalog (node count taken from the
    workload spec; everything else from [config], default
    {!Core.Config.default}), submit every root, drive the simulation to
    completion, and verify the committed history is serializable and —
    when the config enables escrow — that the escrow op log replays within
    bounds ({!Core.Runtime.check_escrow}).
    [on_stall], if given, is called with the runtime when the run raises
    (e.g. {!Sim.Engine.Stalled}) before the exception propagates — a hook
    for dumping diagnostic state such as {!Gdo.Directory.dump}.
    @raise Failure if the serializability check fails — that would be a
    protocol bug, not a workload property. *)

val execute_all :
  ?config:Core.Config.t -> protocols:Dsm.Protocol.t list -> Workload.Generator.t -> run list
(** One fresh runtime per protocol over the same workload. *)

val metrics : run -> Dsm.Metrics.t
