open Objmodel

let software_costs_us = [ 100.0; 20.0; 5.0; 1.0; 0.5 ]

type cell = { software_cost_us : float; time_us : (Dsm.Protocol.t * float) list }

type result = {
  name : string;
  bandwidth_bps : float;
  object_shown : Oid.t;
  per_object : cell list;
  totals : cell list;
}

let of_runs ~name ~bandwidth_bps runs =
  (match runs with [] -> invalid_arg "Fig_time.of_runs: no runs" | _ -> ());
  let first = List.hd runs in
  let object_shown =
    let m = Runner.metrics first in
    let oids = Catalog.oids first.Runner.workload.Workload.Generator.catalog in
    let traffic oid =
      let e = Dsm.Metrics.per_object m oid in
      e.Dsm.Metrics.data_bytes + e.Dsm.Metrics.control_bytes
    in
    List.fold_left
      (fun best oid -> if traffic oid > traffic best then oid else best)
      (List.hd oids) oids
  in
  let grid time_of =
    List.map
      (fun sw ->
        let link = { Sim.Network.bandwidth_bps; software_cost_us = sw } in
        {
          software_cost_us = sw;
          time_us = List.map (fun (run : Runner.run) -> (run.Runner.protocol, time_of run link)) runs;
        })
      software_costs_us
  in
  {
    name;
    bandwidth_bps;
    object_shown;
    per_object =
      grid (fun run link -> Dsm.Metrics.object_time_us (Runner.metrics run) object_shown ~link);
    totals = grid (fun run link -> Dsm.Metrics.total_time_us (Runner.metrics run) ~link);
  }

let figure6 (fb : Fig_bytes.result) =
  of_runs ~name:"fig6: transfer time at 10 Mbps" ~bandwidth_bps:1e7 fb.Fig_bytes.runs

let figure7 (fb : Fig_bytes.result) =
  of_runs ~name:"fig7: transfer time at 100 Mbps" ~bandwidth_bps:1e8 fb.Fig_bytes.runs

let figure8 (fb : Fig_bytes.result) =
  of_runs ~name:"fig8: transfer time at 1 Gbps" ~bandwidth_bps:1e9 fb.Fig_bytes.runs

let crossover result ~faster ~than =
  List.fold_left
    (fun best cell ->
      match (List.assoc_opt faster cell.time_us, List.assoc_opt than cell.time_us) with
      | Some f, Some t when f < t -> (
          match best with
          | Some b when b >= cell.software_cost_us -> best
          | _ -> Some cell.software_cost_us)
      | _ -> best)
    None result.totals

let pp_cells fmt ~label cells protocols =
  let header =
    "sw cost (us)" :: List.map (fun p -> Format.asprintf "%a" Dsm.Protocol.pp p) protocols
  in
  let rows =
    List.map
      (fun c ->
        Printf.sprintf "%g" c.software_cost_us
        :: List.map
             (fun p ->
               match List.assoc_opt p c.time_us with
               | Some v -> Report.fmt_us v
               | None -> "-")
             protocols)
      cells
  in
  Format.fprintf fmt "%s@.%s@." label (Report.render ~header rows)

let pp fmt result =
  let protocols =
    match result.totals with [] -> [] | c :: _ -> List.map fst c.time_us
  in
  Format.fprintf fmt "%s@." result.name;
  pp_cells fmt
    ~label:(Format.asprintf "object %a (us)" Oid.pp result.object_shown)
    result.per_object protocols;
  pp_cells fmt ~label:"all objects (us)" result.totals protocols
