(** Small descriptive-statistics helpers for experiment reporting. *)

val mean : float list -> float
(** 0 on an empty list. *)

val stddev : float list -> float
(** Population standard deviation; 0 on fewer than two samples. *)

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [0,100], nearest-rank on the sorted
    sample; 0 on an empty list.
    @raise Invalid_argument if [p] is outside [0,100]. *)

val median : float list -> float

val root_latencies : Core.Runtime.t -> float list
(** Completion minus submission for every committed root, in completion
    order. *)
