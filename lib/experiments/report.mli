(** Plain-text table rendering for experiment output. *)

type align = Left | Right

val render : header:string list -> ?align:align list -> string list list -> string
(** Fixed-width table with a header rule. [align] defaults to Right for every
    column. *)

val fmt_bytes : int -> string
(** Human-ish byte count, e.g. "12,345". *)

val fmt_us : float -> string
(** Microseconds with one decimal. *)

val fmt_pct : float -> string
(** Signed percentage with one decimal, e.g. "-23.4%". *)

type bar_group = {
  group : string;  (** e.g. the object label "O13" *)
  bars : (string * float) list;  (** series label, value *)
}

val bar_chart : ?width:int -> ?value_fmt:(float -> string) -> bar_group list -> string
(** Horizontal grouped bar chart, in the spirit of the paper's figures:

    {v
    O13  COTEC  ########################################  1,157,476
         OTEC   ################  478,772
         LOTEC  ##########  303,776
    v}

    Bars are scaled to the global maximum; [width] is the longest bar
    (default 50). Zero/negative values render as empty bars. *)
