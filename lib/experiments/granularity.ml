type row = {
  object_count : int;
  pages_per_object : int;
  global_acquisitions : int;
  control_messages : int;
  control_bytes : int;
  data_bytes : int;
  completion_us : float;
  mean_latency_us : float;
  p95_latency_us : float;
}

type result = { total_pages : int; root_count : int; rows : row list }

let run ?(config = Core.Config.default) ?(total_pages = 96) ?(root_count = 120) ?(seed = 31)
    ?(granularities = [ 2; 4; 8; 16 ]) () =
  let rows =
    List.map
      (fun pages_per_object ->
        if total_pages mod pages_per_object <> 0 then
          invalid_arg "Granularity.run: granularity must divide total_pages";
        let object_count = total_pages / pages_per_object in
        let spec =
          {
            Workload.Spec.default with
            Workload.Spec.seed;
            object_count;
            min_pages = pages_per_object;
            max_pages = pages_per_object;
            root_count;
            node_count = config.Core.Config.node_count;
          }
        in
        let wl = Workload.Generator.generate spec ~page_size:config.Core.Config.page_size in
        let run = Runner.execute ~config ~protocol:Dsm.Protocol.Lotec wl in
        let m = Runner.metrics run in
        let totals = Dsm.Metrics.totals m in
        let control_messages, control_bytes =
          List.fold_left
            (fun (cm, cb) oid ->
              let e = Dsm.Metrics.per_object m oid in
              (cm + e.Dsm.Metrics.control_messages, cb + e.Dsm.Metrics.control_bytes))
            (0, 0) (Dsm.Metrics.objects m)
        in
        let latencies = Stats.root_latencies run.Runner.runtime in
        {
          object_count;
          pages_per_object;
          global_acquisitions = totals.Dsm.Metrics.global_acquisitions;
          control_messages;
          control_bytes;
          data_bytes = Dsm.Metrics.total_data_bytes m;
          completion_us = Dsm.Metrics.completion_time_us m;
          mean_latency_us = Stats.mean latencies;
          p95_latency_us = Stats.percentile 95.0 latencies;
        })
      granularities
  in
  { total_pages; root_count; rows }

let pp fmt result =
  Format.fprintf fmt
    "locking overhead vs object granularity (LOTEC, %d shared pages, %d roots)@."
    result.total_pages result.root_count;
  let header =
    [
      "objects";
      "pages/obj";
      "global locks";
      "ctrl msgs";
      "ctrl bytes";
      "data bytes";
      "mean lat us";
      "p95 lat us";
    ]
  in
  let rows =
    List.map
      (fun r ->
        [
          string_of_int r.object_count;
          string_of_int r.pages_per_object;
          string_of_int r.global_acquisitions;
          string_of_int r.control_messages;
          Report.fmt_bytes r.control_bytes;
          Report.fmt_bytes r.data_bytes;
          Report.fmt_us r.mean_latency_us;
          Report.fmt_us r.p95_latency_us;
        ])
      result.rows
  in
  Format.fprintf fmt "%s@." (Report.render ~header rows)
