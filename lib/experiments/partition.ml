(* Partition / gray-failure nemesis: scheduled network partitions,
   asymmetric cuts and slow links driven against the quorum membership
   protocol, with the split-brain auditor run over every outcome.

   Windows open at 1 ms — inside the workload's arrival span, so some
   roots are submitted mid-partition and the in-window availability
   column measures something real.

   Unlike the crash sweep ([Chaos.crash_sweep]) nothing here ever
   crashes: every node stays up and keeps executing, and any death
   declaration the quorum produces is by construction FALSE — which is
   exactly the regime the membership protocol must survive. The
   invariants asserted per case:

   - root accounting: every submitted root committed or gave up;
   - exact wire-ledger reconciliation, extra Suspect / View_change
     membership traffic included;
   - the split-brain audit ([Core.Runtime.audit]) comes back clean: at
     most one exclusive holder per directory entry, at most one serving
     node per (membership epoch, partition);
   - serializability (checked by [Runner.execute] on every run);
   - on scenarios built to force a false declaration: at least one node
     declared dead, counted as a false suspicion, and readmitted —
     message-driven, with no state wiped. *)

type schedule = {
  sched_name : string;
  sched_link_windows : Sim.Fault.link_window list;
  sched_expect_false : bool;
      (* the schedule is built to force a false declaration: assert
         declared >= 1, false_suspicions >= 1, readmissions >= 1 *)
}

type case = {
  pc_schedule : schedule;
  pc_protocol : Dsm.Protocol.t;
  pc_gdo_replicas : int;
  pc_fault_seed : int;
}

type outcome = {
  pc_case : case;
  pc_committed : int;
  pc_aborted : int;
  pc_declared_dead : int;
  pc_false_suspicions : int;
  pc_readmissions : int;
  pc_quorum_votes : int;
  pc_stale_epoch_rejects : int;
  pc_fence_deferrals : int;
  pc_node_parks : int;
  pc_failovers : int;
  pc_declaration_p50_us : float;
  pc_declaration_p99_us : float;
  pc_window_submitted : int;
      (* roots submitted while some link window was open *)
  pc_window_committed : int;  (* of those, how many eventually committed *)
  pc_membership_epoch : int;
  pc_messages : int;
  pc_completion_us : float;
}

(* ------------------------------------------------------------------ *)
(* Schedules. Timers are tightened by [run_case] (heartbeat 500 us,
   suspect timeout 1.5 ms), so windows a few milliseconds long are
   plenty for suspicion to ripen into a declaration before the heal. *)

let lw kind ~from_us ~until_us =
  { Sim.Fault.lw_kind = kind; lw_from_us = from_us; lw_until_us = until_us }

(* Node 3 cut off from the {0,1,2} majority. The majority declares it
   dead (falsely — it is parked, not crashed), fails its partition over
   when replicas are configured, and readmits it when its first
   post-heal message is delivered. *)
let minority_isolated =
  {
    sched_name = "minority-iso";
    sched_link_windows = [ lw (Sim.Fault.Partition [ 3 ]) ~from_us:1_000.0 ~until_us:7_000.0 ];
    sched_expect_false = true;
  }

(* Symmetric 2-2 split: neither side has a quorum (3 of 4), so nobody is
   declared — both sides park and the run resumes at the heal. *)
let even_split =
  {
    sched_name = "even-split";
    sched_link_windows =
      [ lw (Sim.Fault.Partition [ 0; 1 ]) ~from_us:1_000.0 ~until_us:5_000.0 ];
    sched_expect_false = false;
  }

(* Asymmetric cut 1 -> 2: node 2 stops hearing node 1 and suspects it,
   but nobody else does — a single observer cannot manufacture a quorum,
   so no declaration. *)
let one_way_cut =
  {
    sched_name = "one-way";
    sched_link_windows =
      [
        lw (Sim.Fault.One_way { cut_src = 1; cut_dst = 2 }) ~from_us:1_000.0 ~until_us:5_000.0;
      ];
    sched_expect_false = false;
  }

(* Gray failure: the 0 -> 1 link delivers, 2 ms late — beyond the
   suspect timeout, so node 1 suspects node 0 intermittently, yet the
   quorum never corroborates and no declaration happens. *)
let slow_link =
  {
    sched_name = "slow-link";
    sched_link_windows =
      [
        lw
          (Sim.Fault.Slow { slow_src = 0; slow_dst = 1; extra_us = 2_000.0 })
          ~from_us:1_000.0 ~until_us:7_000.0;
      ];
    sched_expect_false = false;
  }

(* The false-suspicion scenario of the issue, window sized so the
   declaration strictly precedes the heal: isolation ends at 4.5 ms,
   ~2 ms after the majority's detectors fire. *)
let false_suspicion =
  {
    sched_name = "false-suspicion";
    sched_link_windows = [ lw (Sim.Fault.Partition [ 2 ]) ~from_us:1_000.0 ~until_us:4_500.0 ];
    sched_expect_false = true;
  }

(* The false-suspicion scenario again, with read leases on: the isolated
   home has granted leases before the cut, so after its (false)
   declaration the successor must sit out the lease fence before serving
   — fence deferrals become visible in the metrics. *)
let false_suspicion_leased =
  {
    false_suspicion with
    sched_name = "false-susp-lease";
    (* Longer isolation than the plain scenario: the fence dissolves at
       the readmission, so the heal must come well after the successor
       has had acquires to hold at the fence. *)
    sched_link_windows = [ lw (Sim.Fault.Partition [ 2 ]) ~from_us:1_000.0 ~until_us:9_000.0 ];
  }

let default_schedules =
  [ minority_isolated; even_split; one_way_cut; slow_link; false_suspicion ]

(* ------------------------------------------------------------------ *)

let default_spec = Chaos.default_spec

let fault_config c =
  {
    Sim.Fault.none with
    Sim.Fault.seed = c.pc_fault_seed;
    link_windows = c.pc_schedule.sched_link_windows;
  }

let case_name c =
  Format.asprintf "%a %s replicas=%d fseed=%d" Dsm.Protocol.pp c.pc_protocol
    c.pc_schedule.sched_name c.pc_gdo_replicas c.pc_fault_seed

let in_some_window c at =
  List.exists
    (fun (w : Sim.Fault.link_window) ->
      at >= w.Sim.Fault.lw_from_us && at < w.Sim.Fault.lw_until_us)
    c.pc_schedule.sched_link_windows

let run_case ?(config = Core.Config.default) ?(dump_stalls = false) ~spec c =
  (* Same tightened timers as the crash sweep: detection, quorum
     agreement and failover all land well inside a few-millisecond
     window. The leased variant grants 10 ms read leases, long enough to
     straddle the declaration and force the successor onto the fence. *)
  let config =
    {
      config with
      Core.Config.faults = Some (fault_config c);
      gdo_replicas = c.pc_gdo_replicas;
      request_timeout_us = 500.0;
      max_retransmits = 3;
      heartbeat_interval_us = 500.0;
      suspect_timeout_us = 1_500.0;
      lease =
        (if c.pc_schedule.sched_name = "false-susp-lease" then
           Gdo.Lease.Fixed_ttl { ttl_us = 10_000.0 }
         else config.Core.Config.lease);
    }
  in
  let wl = Workload.Generator.generate spec ~page_size:config.Core.Config.page_size in
  let on_stall =
    if dump_stalls then
      Some
        (fun rt ->
          prerr_endline "--- directory at stall ---";
          prerr_endline (Core.Runtime.dump_directory rt))
    else None
  in
  let run = Runner.execute ~config ?on_stall ~protocol:c.pc_protocol wl in
  let m = Runner.metrics run in
  let t = Dsm.Metrics.totals m in
  let fail fmt =
    Format.kasprintf (fun s -> failwith ("partition [" ^ case_name c ^ "]: " ^ s)) fmt
  in
  let submitted = spec.Workload.Spec.root_count in
  if t.Dsm.Metrics.roots_committed + t.Dsm.Metrics.roots_aborted <> submitted then
    fail "root accounting broken: %d committed + %d aborted <> %d submitted"
      t.Dsm.Metrics.roots_committed t.Dsm.Metrics.roots_aborted submitted;
  (* Exact wire-ledger reconciliation: the membership protocol's extra
     Suspect / View_change traffic must be fully accounted. *)
  if Dsm.Metrics.wire_messages_total m <> Dsm.Metrics.total_messages m then
    fail "wire ledger out of balance: %d wire messages <> %d network messages"
      (Dsm.Metrics.wire_messages_total m)
      (Dsm.Metrics.total_messages m);
  if Dsm.Metrics.wire_bytes_total m <> Dsm.Metrics.total_bytes m then
    fail "wire ledger out of balance: %d wire bytes <> %d network bytes"
      (Dsm.Metrics.wire_bytes_total m) (Dsm.Metrics.total_bytes m);
  (* The split-brain audit: directory structure and acting-home log. *)
  (match Core.Runtime.audit run.Runner.runtime with
  | [] -> ()
  | violations -> fail "split-brain audit failed:\n  %s" (String.concat "\n  " violations));
  (* Nobody crashes in this nemesis, so every declaration is false and
     every declared node must have been readmitted by the end. *)
  if t.Dsm.Metrics.nodes_declared_dead <> t.Dsm.Metrics.false_suspicions then
    fail "%d declarations but %d counted false (no node ever crashed)"
      t.Dsm.Metrics.nodes_declared_dead t.Dsm.Metrics.false_suspicions;
  for node = 0 to spec.Workload.Spec.node_count - 1 do
    if Core.Runtime.node_declared_down run.Runner.runtime ~node then
      fail "node %d still declared dead after the run" node;
    if Core.Runtime.node_parked run.Runner.runtime ~node then
      fail "node %d still parked after the run" node
  done;
  if c.pc_schedule.sched_expect_false then begin
    if t.Dsm.Metrics.nodes_declared_dead = 0 then
      fail "schedule built to force a false declaration produced none";
    if t.Dsm.Metrics.false_suspicions = 0 then fail "false declaration not counted as such";
    if t.Dsm.Metrics.node_readmissions = 0 then fail "falsely declared node never readmitted"
  end;
  let window_submitted, window_committed =
    List.fold_left
      (fun (ws, wc) (r : Core.Runtime.root_result) ->
        if in_some_window c r.Core.Runtime.submitted_at then
          ( ws + 1,
            wc + match r.Core.Runtime.outcome with Core.Runtime.Committed -> 1 | _ -> 0 )
        else (ws, wc))
      (0, 0)
      (Core.Runtime.results run.Runner.runtime)
  in
  let dh = Dsm.Metrics.declaration_latency m in
  {
    pc_case = c;
    pc_committed = t.Dsm.Metrics.roots_committed;
    pc_aborted = t.Dsm.Metrics.roots_aborted;
    pc_declared_dead = t.Dsm.Metrics.nodes_declared_dead;
    pc_false_suspicions = t.Dsm.Metrics.false_suspicions;
    pc_readmissions = t.Dsm.Metrics.node_readmissions;
    pc_quorum_votes = t.Dsm.Metrics.quorum_votes;
    pc_stale_epoch_rejects = t.Dsm.Metrics.stale_epoch_rejects;
    pc_fence_deferrals = t.Dsm.Metrics.fence_deferrals;
    pc_node_parks = t.Dsm.Metrics.node_parks;
    pc_failovers = t.Dsm.Metrics.failovers;
    pc_declaration_p50_us = Dsm.Histogram.percentile dh 50.0;
    pc_declaration_p99_us = Dsm.Histogram.percentile dh 99.0;
    pc_window_submitted = window_submitted;
    pc_window_committed = window_committed;
    pc_membership_epoch = Core.Runtime.membership_epoch run.Runner.runtime;
    pc_messages = Dsm.Metrics.total_messages m;
    pc_completion_us = Dsm.Metrics.completion_time_us m;
  }

let sweep ?config ?(spec = default_spec) ?(schedules = default_schedules)
    ?(protocols = Dsm.Protocol.[ Cotec; Otec; Lotec ]) ?(replicas = [ 0; 1 ])
    ?(fault_seeds = [ 1 ]) ?dump_stalls () =
  (* The leased fence scenario rides along on the replicated columns
     only: without a successor there is nobody to hold at the fence. *)
  let schedules =
    if List.exists (fun r -> r > 0) replicas then schedules @ [ false_suspicion_leased ]
    else schedules
  in
  List.concat_map
    (fun pc_protocol ->
      List.concat_map
        (fun pc_schedule ->
          let replicas =
            if pc_schedule.sched_name = "false-susp-lease" then
              List.filter (fun r -> r > 0) replicas
            else replicas
          in
          List.concat_map
            (fun pc_gdo_replicas ->
              List.map
                (fun pc_fault_seed ->
                  run_case ?config ?dump_stalls ~spec
                    { pc_schedule; pc_protocol; pc_gdo_replicas; pc_fault_seed })
                fault_seeds)
            replicas)
        schedules)
    protocols

(* ------------------------------------------------------------------ *)

let to_json outcomes =
  let b = Buffer.create 1024 in
  Buffer.add_string b "[\n";
  List.iteri
    (fun i o ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b
        (Printf.sprintf
           "  {\"protocol\": \"%s\", \"schedule\": \"%s\", \"gdo_replicas\": %d, \
            \"fault_seed\": %d, \"committed\": %d, \"aborted\": %d, \"declared_dead\": %d, \
            \"false_suspicions\": %d, \"readmissions\": %d, \"quorum_votes\": %d, \
            \"stale_epoch_rejects\": %d, \"fence_deferrals\": %d, \"node_parks\": %d, \
            \"failovers\": %d, \"declaration_p50_us\": %.1f, \"declaration_p99_us\": %.1f, \
            \"window_submitted\": %d, \"window_committed\": %d, \"membership_epoch\": %d, \
            \"messages\": %d, \"completion_us\": %.1f}"
           (Format.asprintf "%a" Dsm.Protocol.pp o.pc_case.pc_protocol)
           o.pc_case.pc_schedule.sched_name o.pc_case.pc_gdo_replicas o.pc_case.pc_fault_seed
           o.pc_committed o.pc_aborted o.pc_declared_dead o.pc_false_suspicions
           o.pc_readmissions o.pc_quorum_votes o.pc_stale_epoch_rejects o.pc_fence_deferrals
           o.pc_node_parks o.pc_failovers o.pc_declaration_p50_us o.pc_declaration_p99_us
           o.pc_window_submitted o.pc_window_committed o.pc_membership_epoch o.pc_messages
           o.pc_completion_us))
    outcomes;
  Buffer.add_string b "\n]\n";
  Buffer.contents b

let pp_outcome fmt o =
  Format.fprintf fmt
    "%s: %d/%d committed, %d declared (%d false, %d readmitted), %d parks, %d failovers, \
     %.0f us"
    (case_name o.pc_case) o.pc_committed
    (o.pc_committed + o.pc_aborted)
    o.pc_declared_dead o.pc_false_suspicions o.pc_readmissions o.pc_node_parks o.pc_failovers
    o.pc_completion_us

let pp_report fmt outcomes =
  let header =
    [
      "protocol"; "schedule"; "repl"; "ok/roots"; "win-ok"; "dead"; "false"; "readmit";
      "votes"; "stale-rej"; "fence"; "parks"; "failover"; "decl-p50"; "completion";
    ]
  in
  let rows =
    List.map
      (fun o ->
        [
          Format.asprintf "%a" Dsm.Protocol.pp o.pc_case.pc_protocol;
          o.pc_case.pc_schedule.sched_name;
          string_of_int o.pc_case.pc_gdo_replicas;
          Printf.sprintf "%d/%d" o.pc_committed (o.pc_committed + o.pc_aborted);
          Printf.sprintf "%d/%d" o.pc_window_committed o.pc_window_submitted;
          string_of_int o.pc_declared_dead;
          string_of_int o.pc_false_suspicions;
          string_of_int o.pc_readmissions;
          string_of_int o.pc_quorum_votes;
          string_of_int o.pc_stale_epoch_rejects;
          string_of_int o.pc_fence_deferrals;
          string_of_int o.pc_node_parks;
          string_of_int o.pc_failovers;
          Report.fmt_us o.pc_declaration_p50_us;
          Report.fmt_us o.pc_completion_us;
        ])
      outcomes
  in
  Format.fprintf fmt "partition nemesis: all invariants held (split-brain audit clean)@.%s@."
    (Report.render ~header
       ~align:
         [
           Report.Left; Left; Right; Right; Right; Right; Right; Right; Right; Right; Right;
           Right; Right; Right; Right;
         ]
       rows)
