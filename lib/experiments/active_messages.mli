(** Active messaging on gigabit networks (paper §6 future work).

    The paper concludes that at 1 Gbps "any LOTEC implementation will also
    have to incorporate extremely efficient message transmission protocols"
    and names "the integration of active messages into LOTEC" as the way to
    get there. Active messages cut the software cost of small
    handler-dispatched messages — exactly the control messages (lock
    requests/grants, page requests) that LOTEC sends more of than OTEC.

    The experiment replays one workload's ledgers at 1 Gbps with the data
    software cost held at the conventional 20 µs and the control software
    cost swept downward, showing LOTEC's margin over OTEC recovering as
    messaging gets cheaper. The ledger replay itself
    ({!Dsm.Metrics.total_time_us_am}) is shared with the
    {!Function_shipping} sweep, which uses it to price each case's traffic
    under the same link model the shipping cost model reasons about. *)

type cell = {
  control_cost_us : float;
  time_us : (Dsm.Protocol.t * float) list;  (** total consistency time *)
  lotec_vs_otec_pct : float;  (** negative = LOTEC faster *)
}

type result = {
  bandwidth_bps : float;
  data_cost_us : float;
  cells : cell list;
}

val control_costs_us : float list
(** 20, 5, 1, 0.5 µs. *)

val of_runs :
  ?bandwidth_bps:float -> ?data_cost_us:float -> Runner.run list -> result
(** Defaults: 1 Gbps, 20 µs data cost. Requires OTEC and LOTEC among the
    runs for the margin column (cells are still produced otherwise, with a
    0 margin). *)

val run : ?spec:Workload.Spec.t -> unit -> result
(** Execute the Figure 2 scenario (or [spec]) under COTEC/OTEC/LOTEC and
    replay. *)

val pp : Format.formatter -> result -> unit
