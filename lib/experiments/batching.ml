type case = { protocol : Dsm.Protocol.t; policy : Dsm.Batching.t }

type outcome = {
  case : case;
  committed : int;
  aborted : int;
  messages : int;
  bytes : int;
  riders : int;
  acks_piggybacked : int;
  acks_flushed : int;
  fetches_aggregated : int;
  releases_coalesced : int;
  heartbeats_suppressed : int;
  retransmits : int;
  completion_us : float;
  time_us : (float * float) list;
      (* (software_cost_us, replayed total message time) over the Fig_time
         grid: messages * software_cost + bytes * 8 / bandwidth. *)
}

(* The standard scenario, under light interconnect faults. The fault model
   matters: without it the transport sends no acks (there is nothing to
   lose), and on this workload LOTEC's predicted access sets cover the
   actual ones, so fault-free demand fetches are zero — ack piggybacking,
   the headline saving, only exists on a lossy interconnect, which is also
   the regime the paper's software-cost argument is about. *)
let default_spec = Workload.Scenarios.medium_high

let default_faults =
  {
    Sim.Fault.seed = 1;
    drop_probability = 0.03;
    duplicate_probability = 0.0;
    delay_jitter_us = 30.0;
    windows = [];
    link_windows = [];
  }

let default_bandwidth_bps = 1e8

let case_name c =
  Format.asprintf "%a/%s" Dsm.Protocol.pp c.protocol (Dsm.Batching.to_string c.policy)

let run_case ?(config = Core.Config.default) ?(bandwidth_bps = default_bandwidth_bps) ~spec c =
  let config = { config with Core.Config.batching = c.policy } in
  let wl = Workload.Generator.generate spec ~page_size:config.Core.Config.page_size in
  let run = Runner.execute ~config ~protocol:c.protocol wl in
  let m = Runner.metrics run in
  let t = Dsm.Metrics.totals m in
  let fail fmt =
    Format.kasprintf (fun s -> failwith ("batching [" ^ case_name c ^ "]: " ^ s)) fmt
  in
  let submitted = spec.Workload.Spec.root_count in
  if t.Dsm.Metrics.roots_committed + t.Dsm.Metrics.roots_aborted <> submitted then
    fail "root accounting broken: %d committed + %d aborted <> %d submitted"
      t.Dsm.Metrics.roots_committed t.Dsm.Metrics.roots_aborted submitted;
  (* The wire ledger must reconcile exactly, riders included: combining
     messages must never lose accounting. *)
  if Dsm.Metrics.wire_messages_total m <> Dsm.Metrics.total_messages m then
    fail "wire ledger message total %d <> network total %d"
      (Dsm.Metrics.wire_messages_total m) (Dsm.Metrics.total_messages m);
  if Dsm.Metrics.wire_bytes_total m <> Dsm.Metrics.total_bytes m then
    fail "wire ledger byte total %d <> network total %d" (Dsm.Metrics.wire_bytes_total m)
      (Dsm.Metrics.total_bytes m);
  let combined =
    t.Dsm.Metrics.acks_piggybacked + t.Dsm.Metrics.acks_flushed
    + t.Dsm.Metrics.fetches_aggregated + t.Dsm.Metrics.releases_coalesced
    + t.Dsm.Metrics.heartbeats_suppressed
  in
  if (not (Dsm.Batching.enabled c.policy)) && combined + Dsm.Metrics.wire_riders_total m > 0
  then fail "batching counters nonzero with batching off";
  {
    case = c;
    committed = t.Dsm.Metrics.roots_committed;
    aborted = t.Dsm.Metrics.roots_aborted;
    messages = Dsm.Metrics.total_messages m;
    bytes = Dsm.Metrics.total_bytes m;
    riders = Dsm.Metrics.wire_riders_total m;
    acks_piggybacked = t.Dsm.Metrics.acks_piggybacked;
    acks_flushed = t.Dsm.Metrics.acks_flushed;
    fetches_aggregated = t.Dsm.Metrics.fetches_aggregated;
    releases_coalesced = t.Dsm.Metrics.releases_coalesced;
    heartbeats_suppressed = t.Dsm.Metrics.heartbeats_suppressed;
    retransmits = t.Dsm.Metrics.retransmits;
    completion_us = Dsm.Metrics.completion_time_us m;
    time_us =
      List.map
        (fun sw ->
          let link = { Sim.Network.bandwidth_bps; software_cost_us = sw } in
          (sw, Dsm.Metrics.total_time_us m ~link))
        Fig_time.software_costs_us;
  }

let sweep ?(config = Core.Config.default) ?(spec = default_spec)
    ?(faults = Some default_faults) ?bandwidth_bps
    ?(protocols = Dsm.Protocol.[ Otec; Lotec ])
    ?(policies = Dsm.Batching.[ off; all ]) () =
  let config = { config with Core.Config.faults } in
  List.concat_map
    (fun protocol ->
      List.map
        (fun policy -> run_case ~config ?bandwidth_bps ~spec { protocol; policy })
        policies)
    protocols

(* The batching-off row a combined row compares against (same protocol). *)
let baseline_of outcomes o =
  List.find_opt
    (fun b ->
      (not (Dsm.Batching.enabled b.case.policy)) && b.case.protocol = o.case.protocol)
    outcomes

let message_reduction ~off ~on =
  if off.messages = 0 then 0.0
  else 100.0 *. float_of_int (on.messages - off.messages) /. float_of_int off.messages

(* Headline gate: LOTEC's message count with batching on vs off. Negative
   means a reduction. *)
let lotec_message_reduction_pct outcomes =
  let lotec p o = o.case.protocol = Dsm.Protocol.Lotec && Dsm.Batching.enabled o.case.policy = p in
  match (List.find_opt (lotec true) outcomes, List.find_opt (lotec false) outcomes) with
  | Some on, Some off -> Some (message_reduction ~off ~on)
  | _ -> None

let pp_outcome fmt o =
  Format.fprintf fmt "%s: %d/%d committed, %d msgs (+%d riders), %d bytes, %.0f us"
    (case_name o.case) o.committed (o.committed + o.aborted) o.messages o.riders o.bytes
    o.completion_us

let pp_report fmt outcomes =
  let header =
    [
      "protocol"; "batching"; "ok/roots"; "msgs"; "vs off"; "bytes"; "riders"; "piggy";
      "flushed"; "fetch+"; "coalesced"; "hb-"; "completion";
    ]
  in
  let rows =
    List.map
      (fun o ->
        let vs_off =
          if not (Dsm.Batching.enabled o.case.policy) then "-"
          else
            match baseline_of outcomes o with
            | Some off -> Report.fmt_pct (message_reduction ~off ~on:o)
            | None -> "?"
        in
        [
          Format.asprintf "%a" Dsm.Protocol.pp o.case.protocol;
          Dsm.Batching.to_string o.case.policy;
          Printf.sprintf "%d/%d" o.committed (o.committed + o.aborted);
          string_of_int o.messages;
          vs_off;
          Report.fmt_bytes o.bytes;
          string_of_int o.riders;
          string_of_int o.acks_piggybacked;
          string_of_int o.acks_flushed;
          string_of_int o.fetches_aggregated;
          string_of_int o.releases_coalesced;
          string_of_int o.heartbeats_suppressed;
          Report.fmt_us o.completion_us;
        ])
      outcomes
  in
  Format.fprintf fmt "batching sweep: all invariants held@.%s@."
    (Report.render ~header
       ~align:
         [
           Report.Left; Left; Right; Right; Right; Right; Right; Right; Right; Right; Right;
           Right; Right;
         ]
       rows);
  (* The Fig_time replay: per-message software cost x the measured ledgers.
     This is where combining pays — at high software cost the per-message
     overhead dominates, which is exactly LOTEC's weakness in the paper. *)
  let header = "sw cost (us)" :: List.map (fun o -> case_name o.case) outcomes in
  let rows =
    List.map
      (fun sw ->
        Printf.sprintf "%g" sw
        :: List.map
             (fun o -> Report.fmt_us (List.assoc sw o.time_us))
             outcomes)
      Fig_time.software_costs_us
  in
  Format.fprintf fmt "@.message time replay at %g Mbps:@.%s@."
    (default_bandwidth_bps /. 1e6)
    (Report.render ~header
       ~align:(Report.Right :: List.map (fun _ -> Report.Right) outcomes)
       rows)

let to_json outcomes =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "[\n";
  List.iteri
    (fun i o ->
      if i > 0 then Buffer.add_string buf ",\n";
      let grid =
        String.concat ", "
          (List.map
             (fun (sw, t) ->
               Printf.sprintf "{\"software_cost_us\": %g, \"total_time_us\": %.3f}" sw t)
             o.time_us)
      in
      Buffer.add_string buf
        (Printf.sprintf
           "  {\"protocol\": %S, \"batching\": %S, \"committed\": %d, \"aborted\": %d, \
            \"messages\": %d, \"bytes\": %d, \"riders\": %d, \"acks_piggybacked\": %d, \
            \"acks_flushed\": %d, \"fetches_aggregated\": %d, \"releases_coalesced\": %d, \
            \"heartbeats_suppressed\": %d, \"retransmits\": %d, \"completion_us\": %.3f, \
            \"time_replay\": [%s]}"
           (Format.asprintf "%a" Dsm.Protocol.pp o.case.protocol)
           (Dsm.Batching.to_string o.case.policy)
           o.committed o.aborted o.messages o.bytes o.riders o.acks_piggybacked
           o.acks_flushed o.fetches_aggregated o.releases_coalesced o.heartbeats_suppressed
           o.retransmits o.completion_us grid))
    outcomes;
  Buffer.add_string buf "\n]\n";
  Buffer.contents buf
