(** Partition / gray-failure nemesis for the quorum membership protocol.

    Scheduled network partitions, asymmetric one-way cuts and slow-link
    (gray failure) windows — no crashes — driven across protocols and
    replication settings. Since every node stays up, any death
    declaration the quorum produces is false by construction, which is
    precisely the regime split-brain-safe failover must survive: the
    falsely declared node is fenced by the membership epoch, readmitted
    by message delivery, and nothing it holds is ever reclaimed.

    Every case asserts, fail-loud: exact root accounting, exact wire
    ledger reconciliation (membership traffic included), a clean
    split-brain audit ({!Core.Runtime.audit}), serializability, no node
    left declared or parked at the end, and — on schedules built to
    force a false declaration — that a declaration, false-suspicion
    count and readmission all actually happened. *)

type schedule = {
  sched_name : string;
  sched_link_windows : Sim.Fault.link_window list;
  sched_expect_false : bool;
      (** assert declared/false/readmitted >= 1 on this schedule *)
}

val minority_isolated : schedule
(** Node 3 split from the {0,1,2} majority long enough to be declared,
    failed over (with replicas), parked, and readmitted at the heal. *)

val even_split : schedule
(** Symmetric 2-2 split: no quorum on either side, so no declaration —
    both sides park until the heal. *)

val one_way_cut : schedule
(** Asymmetric 1 -> 2 cut: a single suspecting observer cannot reach
    quorum, so no declaration. *)

val slow_link : schedule
(** Gray failure: 0 -> 1 delivers 2 ms late — suspicion without quorum,
    no declaration. *)

val false_suspicion : schedule
(** The issue's false-suspicion scenario: a healthy home isolated just
    long enough that the declaration strictly precedes the heal. *)

val false_suspicion_leased : schedule
(** {!false_suspicion} with 10 ms read leases on (replicas >= 1): the
    successor of the falsely declared home must wait out the lease fence
    before serving — fence deferrals show up in the metrics. Not in
    {!default_schedules}; the sweep adds it for the replicated column. *)

val default_schedules : schedule list

type case = {
  pc_schedule : schedule;
  pc_protocol : Dsm.Protocol.t;
  pc_gdo_replicas : int;
  pc_fault_seed : int;
}

type outcome = {
  pc_case : case;
  pc_committed : int;
  pc_aborted : int;
  pc_declared_dead : int;
  pc_false_suspicions : int;
  pc_readmissions : int;
  pc_quorum_votes : int;
  pc_stale_epoch_rejects : int;
  pc_fence_deferrals : int;
  pc_node_parks : int;
  pc_failovers : int;
  pc_declaration_p50_us : float;
  pc_declaration_p99_us : float;
  pc_window_submitted : int;
      (** roots submitted while some link window was open *)
  pc_window_committed : int;  (** of those, how many eventually committed *)
  pc_membership_epoch : int;
  pc_messages : int;
  pc_completion_us : float;
}

val default_spec : Workload.Spec.t

val run_case :
  ?config:Core.Config.t -> ?dump_stalls:bool -> spec:Workload.Spec.t -> case -> outcome
(** One nemesis run, with detection/membership timers tightened so a
    few-millisecond window suffices for declaration and failover.
    @raise Failure on any violated invariant (see module doc). *)

val sweep :
  ?config:Core.Config.t ->
  ?spec:Workload.Spec.t ->
  ?schedules:schedule list ->
  ?protocols:Dsm.Protocol.t list ->
  ?replicas:int list ->
  ?fault_seeds:int list ->
  ?dump_stalls:bool ->
  unit ->
  outcome list
(** The full grid: schedules x protocols x replica counts x fault seeds.
    Defaults: {!default_schedules}, COTEC/OTEC/LOTEC, replicas [0; 1],
    one seed. *)

val to_json : outcome list -> string
(** JSON array, one object per outcome — the BENCH_partition.json shape. *)

val pp_outcome : Format.formatter -> outcome -> unit
val pp_report : Format.formatter -> outcome list -> unit
