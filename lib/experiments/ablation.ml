type row = {
  label : string;
  total_bytes : int;
  total_messages : int;
  completion_us : float;
  mean_root_latency_us : float;
}

type result = { scenario : string; rows : row list }

let mean_root_latency runtime =
  let results = Core.Runtime.results runtime in
  let committed =
    List.filter (fun r -> r.Core.Runtime.outcome = Core.Runtime.Committed) results
  in
  match committed with
  | [] -> 0.0
  | _ ->
      let sum =
        List.fold_left
          (fun acc (r : Core.Runtime.root_result) ->
            acc +. (r.Core.Runtime.completed_at -. r.Core.Runtime.submitted_at))
          0.0 committed
      in
      sum /. float_of_int (List.length committed)

let row_of_run ~label (run : Runner.run) =
  let m = Runner.metrics run in
  {
    label;
    total_bytes = Dsm.Metrics.total_bytes m;
    total_messages = Dsm.Metrics.total_messages m;
    completion_us = Dsm.Metrics.completion_time_us m;
    mean_root_latency_us = mean_root_latency run.Runner.runtime;
  }

let rc_comparison ?(config = Core.Config.default) ?(spec = Workload.Scenarios.medium_high) () =
  let workload = Workload.Generator.generate spec ~page_size:config.Core.Config.page_size in
  let label protocol = Format.asprintf "%a" Dsm.Protocol.pp protocol in
  let plain =
    List.map
      (fun protocol ->
        row_of_run ~label:(label protocol) (Runner.execute ~config ~protocol workload))
      Dsm.Protocol.all
  in
  let multicast =
    let config = { config with Core.Config.multicast_push = true } in
    row_of_run ~label:"RC-NESTED+multicast"
      (Runner.execute ~config ~protocol:Dsm.Protocol.Rc_nested workload)
  in
  { scenario = "rc ablation: medium objects, high contention"; rows = plain @ [ multicast ] }

(* Optimistic pre-acquisition hides remote lock latency when locks are
   likely free; under heavy conflict the extra optimistic W locks backfire.
   Show both regimes. *)
let prefetch_low_contention_spec =
  {
    Workload.Scenarios.large_moderate with
    Workload.Spec.root_count = 60;
    arrival_mean_us = 500.0;
  }

let prefetch_comparison ?(config = Core.Config.default) ?spec () =
  let pair label spec =
    let workload = Workload.Generator.generate spec ~page_size:config.Core.Config.page_size in
    let base =
      row_of_run ~label:(label ^ " LOTEC")
        (Runner.execute ~config ~protocol:Dsm.Protocol.Lotec workload)
    in
    let pre =
      let config = { config with Core.Config.prefetch = true } in
      row_of_run ~label:(label ^ " LOTEC+prefetch")
        (Runner.execute ~config ~protocol:Dsm.Protocol.Lotec workload)
    in
    [ base; pre ]
  in
  let rows =
    match spec with
    | Some s -> pair "custom" s
    | None ->
        pair "low-contention" prefetch_low_contention_spec
        @ pair "high-contention" Workload.Scenarios.large_high
  in
  { scenario = "prefetch ablation (optimistic pre-acquisition)"; rows }

(* GDO replication cost (paper §4.1: the directory is "partitioned and
   replicated"): what reliability's standing traffic costs under LOTEC. *)
let replication_comparison ?(config = Core.Config.default)
    ?(spec = Workload.Scenarios.medium_high) () =
  let workload = Workload.Generator.generate spec ~page_size:config.Core.Config.page_size in
  let rows =
    List.map
      (fun replicas ->
        let config = { config with Core.Config.gdo_replicas = replicas } in
        row_of_run
          ~label:(Printf.sprintf "LOTEC, %d GDO replica(s)" replicas)
          (Runner.execute ~config ~protocol:Dsm.Protocol.Lotec workload))
      [ 0; 1; 2 ]
  in
  { scenario = "gdo replication ablation: medium objects, high contention"; rows }

let per_class_comparison ?(config = Core.Config.default) ?spec () =
  let spec =
    match spec with
    | Some s -> s
    | None ->
        {
          Workload.Spec.default with
          Workload.Spec.seed = 23;
          object_count = 30;
          min_pages = 1;
          max_pages = 20;
          root_count = 120;
        }
  in
  let workload = Workload.Generator.generate spec ~page_size:config.Core.Config.page_size in
  let uniform =
    List.map
      (fun protocol ->
        row_of_run
          ~label:(Format.asprintf "uniform %a" Dsm.Protocol.pp protocol)
          (Runner.execute ~config ~protocol workload))
      [ Dsm.Protocol.Cotec; Dsm.Protocol.Otec; Dsm.Protocol.Lotec ]
  in
  let hybrid =
    let catalog = workload.Workload.Generator.catalog in
    let class_protocols =
      List.filter_map
        (fun oid ->
          let inst = Objmodel.Catalog.find catalog oid in
          let cls = inst.Objmodel.Catalog.cls in
          if Objmodel.Obj_class.page_count cls < 6 then
            Some (Objmodel.Obj_class.name cls, Dsm.Protocol.Otec)
          else None)
        (Objmodel.Catalog.oids catalog)
    in
    let config = { config with Core.Config.class_protocols } in
    row_of_run
      ~label:(Printf.sprintf "hybrid (%d small classes on OTEC)" (List.length class_protocols))
      (Runner.execute ~config ~protocol:Dsm.Protocol.Lotec workload)
  in
  { scenario = "per-class protocol ablation (heterogeneous 1-20 page objects)";
    rows = uniform @ [ hybrid ] }

let pp fmt result =
  let header = [ "variant"; "bytes"; "messages"; "completion us"; "mean root us" ] in
  let rows =
    List.map
      (fun r ->
        [
          r.label;
          Report.fmt_bytes r.total_bytes;
          string_of_int r.total_messages;
          Report.fmt_us r.completion_us;
          Report.fmt_us r.mean_root_latency_us;
        ])
      result.rows
  in
  Format.fprintf fmt "%s@.%s@." result.scenario
    (Report.render ~header ~align:[ Report.Left; Right; Right; Right; Right ] rows)
