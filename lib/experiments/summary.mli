(** The paper's headline numbers (§5 text): across the conflict scenarios,
    OTEC sends ~20–25 % fewer consistency bytes than COTEC, and LOTEC a
    further ~5–10 % fewer than OTEC, while sending more (small) messages. *)

type scenario_row = {
  scenario : string;
  cotec_bytes : int;
  otec_bytes : int;
  lotec_bytes : int;
  otec_vs_cotec_pct : float;  (** negative = OTEC sends less *)
  lotec_vs_otec_pct : float;
  cotec_messages : int;
  otec_messages : int;
  lotec_messages : int;
}

type result = { rows : scenario_row list }

val of_figures : Fig_bytes.result list -> result
(** Build the ratio table from already-executed byte figures. Figures whose
    series do not include all of COTEC/OTEC/LOTEC are skipped. *)

val run_all : ?config:Core.Config.t -> unit -> Fig_bytes.result list * result
(** Execute Figures 2–5 and summarise them. *)

val pp : Format.formatter -> result -> unit
