type mode =
  | Baseline  (** leases off, cache off — the paper's plain protocol *)
  | Lease_only
  | Cached of Dsm.Method_cache.policy

type case = {
  protocol : Dsm.Protocol.t;
  read_fraction : float;
  mode : mode;
}

type outcome = {
  case : case;
  committed : int;
  aborted : int;
  messages : int;
  bytes : int;
  lease_hits : int;
  cache_hits : int;
  cache_misses : int;
  cache_fills : int;
  cache_invalidations : int;
  completion_us : float;
}

(* The web-sessions preset: tiny hot objects re-read from every node, almost
   no writers. Repeat invocations hit the same (oid, method) pairs at an
   unchanged version vector — exactly what the method cache serves. *)
let default_spec = Workload.Scenarios.web_sessions

(* Lease policy paired with every cache-on (and lease-only) case. Same
   reasoning as the lease sweep's default — the TTL bounds a deferred
   yield well below the makespan — but longer: web runs are read-dominated
   enough that expiry-and-re-grant churn on hot objects, not write stalls,
   is the binding cost. *)
let default_lease = Gdo.Lease.Fixed_ttl { ttl_us = 60_000.0 }

let default_policy = Dsm.Method_cache.Lru { capacity = Dsm.Method_cache.default_capacity }

let mode_to_string = function
  | Baseline -> "baseline"
  | Lease_only -> "lease"
  | Cached p -> "cache:" ^ Dsm.Method_cache.policy_to_string p

let case_name c =
  Format.asprintf "%a read=%.2f mode=%s" Dsm.Protocol.pp c.protocol c.read_fraction
    (mode_to_string c.mode)

let hit_rate o =
  let consults = o.cache_hits + o.cache_misses in
  if consults = 0 then 0.0 else float_of_int o.cache_hits /. float_of_int consults

(* Message-reduction factor against the everything-off baseline: 5.0 means
   the protocol moved 5x fewer messages than it does bare. *)
let message_factor ~baseline ~on =
  if on.messages = 0 then Float.infinity
  else float_of_int baseline.messages /. float_of_int on.messages

let run_case ?(config = Core.Config.default) ?(lease = default_lease) ~spec c =
  (* The sweep axis is the request-level read share: [1 - read_fraction] of
     roots hit the writer endpoint (see {!Workload.Spec.root_update_fraction}).
     The web specs make every non-writer method read-only, so this is the
     whole read/write mix. *)
  let spec =
    { spec with Workload.Spec.root_update_fraction = Some (1.0 -. c.read_fraction) }
  in
  let config =
    match c.mode with
    | Baseline ->
        { config with Core.Config.lease = Gdo.Lease.Off; method_cache = Dsm.Method_cache.off }
    | Lease_only ->
        { config with Core.Config.lease; method_cache = Dsm.Method_cache.off }
    | Cached policy -> { config with Core.Config.lease; method_cache = policy }
  in
  let wl = Workload.Generator.generate spec ~page_size:config.Core.Config.page_size in
  (* Runner.execute raises if the committed history is not serializable —
     with the cache on, that check is what pins "a hit is indistinguishable
     from re-execution". *)
  let run = Runner.execute ~config ~protocol:c.protocol wl in
  let m = Runner.metrics run in
  let t = Dsm.Metrics.totals m in
  let fail fmt =
    Format.kasprintf (fun s -> failwith ("cache [" ^ case_name c ^ "]: " ^ s)) fmt
  in
  let submitted = spec.Workload.Spec.root_count in
  if t.Dsm.Metrics.roots_committed + t.Dsm.Metrics.roots_aborted <> submitted then
    fail "root accounting broken: %d committed + %d aborted <> %d submitted"
      t.Dsm.Metrics.roots_committed t.Dsm.Metrics.roots_aborted submitted;
  (match c.mode with
  | Cached _ -> ()
  | Baseline | Lease_only ->
      if
        t.Dsm.Metrics.cache_hits + t.Dsm.Metrics.cache_misses + t.Dsm.Metrics.cache_fills
        + t.Dsm.Metrics.cache_invalidations
        > 0
      then fail "cache counters nonzero with the cache off");
  (match c.mode with
  | Baseline ->
      if
        t.Dsm.Metrics.lease_grants + t.Dsm.Metrics.lease_hits + t.Dsm.Metrics.lease_recalls
        + t.Dsm.Metrics.lease_yields + t.Dsm.Metrics.lease_aborts
        > 0
      then fail "lease counters nonzero in the baseline"
  | Lease_only | Cached _ -> ());
  (* A cache hit sends nothing — the wire ledger (recorded at send time)
     must still reconcile exactly with the network's per-object ledger. *)
  if Dsm.Metrics.wire_messages_total m <> Dsm.Metrics.total_messages m then
    fail "wire ledger out of balance: %d wire messages <> %d network messages"
      (Dsm.Metrics.wire_messages_total m)
      (Dsm.Metrics.total_messages m);
  if Dsm.Metrics.wire_bytes_total m <> Dsm.Metrics.total_bytes m then
    fail "wire ledger out of balance: %d wire bytes <> %d network bytes"
      (Dsm.Metrics.wire_bytes_total m) (Dsm.Metrics.total_bytes m);
  {
    case = c;
    committed = t.Dsm.Metrics.roots_committed;
    aborted = t.Dsm.Metrics.roots_aborted;
    messages = Dsm.Metrics.total_messages m;
    bytes = Dsm.Metrics.total_bytes m;
    lease_hits = t.Dsm.Metrics.lease_hits;
    cache_hits = t.Dsm.Metrics.cache_hits;
    cache_misses = t.Dsm.Metrics.cache_misses;
    cache_fills = t.Dsm.Metrics.cache_fills;
    cache_invalidations = t.Dsm.Metrics.cache_invalidations;
    completion_us = Dsm.Metrics.completion_time_us m;
  }

let sweep ?config ?lease ?(spec = default_spec)
    ?(protocols = Dsm.Protocol.[ Cotec; Otec; Lotec; Rc_nested ])
    ?(read_fractions = [ 0.8; 0.95; 0.99 ]) ?(policies = [ default_policy ]) () =
  let modes = Baseline :: Lease_only :: List.map (fun p -> Cached p) policies in
  List.concat_map
    (fun protocol ->
      List.concat_map
        (fun read_fraction ->
          List.map
            (fun mode -> run_case ?config ?lease ~spec { protocol; read_fraction; mode })
            modes)
        read_fractions)
    protocols

(* The Baseline row a lease/cache row compares against: same protocol and
   fraction. *)
let baseline_of outcomes o =
  List.find_opt
    (fun b ->
      b.case.mode = Baseline
      && b.case.protocol = o.case.protocol
      && b.case.read_fraction = o.case.read_fraction)
    outcomes

let pp_outcome fmt o =
  Format.fprintf fmt "%s: %d/%d committed, %d msgs, %d hits / %d misses, %.0f us"
    (case_name o.case) o.committed (o.committed + o.aborted) o.messages o.cache_hits
    o.cache_misses o.completion_us

let pp_report fmt outcomes =
  let header =
    [
      "protocol"; "read"; "mode"; "ok/roots"; "msgs"; "vs base"; "bytes"; "lease hits";
      "cache hits"; "hit rate"; "fills"; "invals"; "completion";
    ]
  in
  let rows =
    List.map
      (fun o ->
        let vs_base =
          match o.case.mode with
          | Baseline -> "-"
          | Lease_only | Cached _ -> (
              match baseline_of outcomes o with
              | Some b -> Printf.sprintf "%.1fx" (message_factor ~baseline:b ~on:o)
              | None -> "?")
        in
        let rate =
          match o.case.mode with
          | Cached _ -> Printf.sprintf "%.0f%%" (100.0 *. hit_rate o)
          | Baseline | Lease_only -> "-"
        in
        [
          Format.asprintf "%a" Dsm.Protocol.pp o.case.protocol;
          Printf.sprintf "%.2f" o.case.read_fraction;
          mode_to_string o.case.mode;
          Printf.sprintf "%d/%d" o.committed (o.committed + o.aborted);
          string_of_int o.messages;
          vs_base;
          Report.fmt_bytes o.bytes;
          string_of_int o.lease_hits;
          string_of_int o.cache_hits;
          rate;
          string_of_int o.cache_fills;
          string_of_int o.cache_invalidations;
          Report.fmt_us o.completion_us;
        ])
      outcomes
  in
  Format.fprintf fmt "method-cache sweep: all invariants held@.%s@."
    (Report.render ~header
       ~align:
         [
           Report.Left; Right; Left; Right; Right; Right; Right; Right; Right; Right; Right;
           Right; Right;
         ]
       rows)

let to_json outcomes =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "[\n";
  List.iteri
    (fun i o ->
      if i > 0 then Buffer.add_string buf ",\n";
      let vs_base =
        match baseline_of outcomes o with
        | Some b when o.case.mode <> Baseline ->
            Printf.sprintf "%.3f" (message_factor ~baseline:b ~on:o)
        | _ -> "null"
      in
      Buffer.add_string buf
        (Printf.sprintf
           "  {\"protocol\": %S, \"read_fraction\": %.2f, \"mode\": %S, \"committed\": %d, \
            \"aborted\": %d, \"messages\": %d, \"bytes\": %d, \"message_factor_vs_baseline\": \
            %s, \"lease_hits\": %d, \"cache_hits\": %d, \"cache_misses\": %d, \"hit_rate\": \
            %.3f, \"cache_fills\": %d, \"cache_invalidations\": %d, \"completion_us\": %.3f}"
           (Format.asprintf "%a" Dsm.Protocol.pp o.case.protocol)
           o.case.read_fraction (mode_to_string o.case.mode) o.committed o.aborted o.messages
           o.bytes vs_base o.lease_hits o.cache_hits o.cache_misses (hit_rate o) o.cache_fills
           o.cache_invalidations o.completion_us))
    outcomes;
  Buffer.add_string buf "\n]\n";
  Buffer.contents buf
