(** Locking overhead versus object granularity (paper §5.1).

    "The LOTEC protocol, as described, has a natural preference for
    coarse-grained concurrency since the larger objects are, the fewer lock
    operations are necessary. ... Heavily object-based environments can
    sometimes aggregate related small objects into larger objects for the
    purpose of decreasing the cost of concurrency control and consistency
    maintenance. While this is not optimal for all applications..."

    The experiment holds the total shared state fixed (in pages) and the
    transaction load fixed, while varying how the state is partitioned into
    lockable objects — from many small objects to a few large ones — and
    reports, under LOTEC:

    - global lock operations and their control traffic (drops with
      aggregation: the §5.1 benefit);
    - root-transaction latency (eventually rises with aggregation: the
      false-contention cost of locking unrelated data together).  *)

type row = {
  object_count : int;
  pages_per_object : int;
  global_acquisitions : int;
  control_messages : int;
  control_bytes : int;
  data_bytes : int;
  completion_us : float;
  mean_latency_us : float;
  p95_latency_us : float;
}

type result = { total_pages : int; root_count : int; rows : row list }

val run :
  ?config:Core.Config.t ->
  ?total_pages:int ->
  ?root_count:int ->
  ?seed:int ->
  ?granularities:int list ->
  unit ->
  result
(** [granularities] lists pages-per-object values; each must divide
    [total_pages] (default 96 pages; granularities 2, 4, 8, 16). *)

val pp : Format.formatter -> result -> unit
