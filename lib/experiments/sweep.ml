type row = {
  label : string;
  cotec_bytes : int;
  otec_bytes : int;
  lotec_bytes : int;
  otec_vs_cotec_pct : float;
  lotec_vs_otec_pct : float;
}

type result = { dimension : string; rows : row list }

let pct ~from ~to_ =
  if from = 0 then 0.0 else 100.0 *. float_of_int (to_ - from) /. float_of_int from

let measure ~config ~label spec =
  let wl = Workload.Generator.generate spec ~page_size:config.Core.Config.page_size in
  let bytes protocol =
    Dsm.Metrics.total_bytes (Runner.metrics (Runner.execute ~config ~protocol wl))
  in
  let cotec = bytes Dsm.Protocol.Cotec in
  let otec = bytes Dsm.Protocol.Otec in
  let lotec = bytes Dsm.Protocol.Lotec in
  {
    label;
    cotec_bytes = cotec;
    otec_bytes = otec;
    lotec_bytes = lotec;
    otec_vs_cotec_pct = pct ~from:cotec ~to_:otec;
    lotec_vs_otec_pct = pct ~from:otec ~to_:lotec;
  }

let base = Workload.Scenarios.medium_high

let object_count_sweep ?(config = Core.Config.default) ?(counts = [ 10; 20; 50; 100; 200 ]) () =
  let rows =
    List.map
      (fun n ->
        measure ~config
          ~label:(Printf.sprintf "%d objects" n)
          { base with Workload.Spec.object_count = n })
      counts
  in
  { dimension = "object count (contention)"; rows }

let object_size_sweep ?(config = Core.Config.default)
    ?(sizes = [ (1, 2); (1, 5); (5, 10); (10, 20) ]) () =
  let rows =
    List.map
      (fun (lo, hi) ->
        measure ~config
          ~label:(Printf.sprintf "%d-%d pages" lo hi)
          { base with Workload.Spec.min_pages = lo; max_pages = hi })
      sizes
  in
  { dimension = "object size (pages)"; rows }

let transaction_count_sweep ?(config = Core.Config.default) ?(counts = [ 50; 100; 200; 400 ]) ()
    =
  let rows =
    List.map
      (fun n ->
        measure ~config
          ~label:(Printf.sprintf "%d roots" n)
          { base with Workload.Spec.root_count = n })
      counts
  in
  { dimension = "transaction count"; rows }

let run_all ?config () =
  [
    object_count_sweep ?config ();
    object_size_sweep ?config ();
    transaction_count_sweep ?config ();
  ]

let pp fmt result =
  Format.fprintf fmt "sweep: %s@." result.dimension;
  let header =
    [ "setting"; "COTEC B"; "OTEC B"; "LOTEC B"; "OTEC vs COTEC"; "LOTEC vs OTEC" ]
  in
  let rows =
    List.map
      (fun r ->
        [
          r.label;
          Report.fmt_bytes r.cotec_bytes;
          Report.fmt_bytes r.otec_bytes;
          Report.fmt_bytes r.lotec_bytes;
          Report.fmt_pct r.otec_vs_cotec_pct;
          Report.fmt_pct r.lotec_vs_otec_pct;
        ])
      result.rows
  in
  Format.fprintf fmt "%s@."
    (Report.render ~header ~align:[ Report.Left; Right; Right; Right; Right; Right ] rows)
