type row = {
  label : string;
  committed : int;
  gave_up : int;
  makespan_us : float;
  throughput_tps : float;
  mean_latency_us : float;
  p50_latency_us : float;
  p95_latency_us : float;
}

type result = { title : string; rows : row list }

let row_of_run ~label (run : Runner.run) =
  let m = Runner.metrics run in
  let totals = Dsm.Metrics.totals m in
  let makespan = Dsm.Metrics.completion_time_us m in
  let latencies = Stats.root_latencies run.Runner.runtime in
  {
    label;
    committed = totals.Dsm.Metrics.roots_committed;
    gave_up = totals.Dsm.Metrics.roots_aborted;
    makespan_us = makespan;
    throughput_tps =
      (if makespan > 0.0 then float_of_int totals.Dsm.Metrics.roots_committed /. makespan *. 1e6
       else 0.0);
    mean_latency_us = Stats.mean latencies;
    p50_latency_us = Stats.median latencies;
    p95_latency_us = Stats.percentile 95.0 latencies;
  }

let protocols ?(config = Core.Config.default) ?(spec = Workload.Scenarios.medium_high)
    ?(protocols = Dsm.Protocol.all) () =
  let workload = Workload.Generator.generate spec ~page_size:config.Core.Config.page_size in
  let rows =
    List.map
      (fun protocol ->
        row_of_run
          ~label:(Format.asprintf "%a" Dsm.Protocol.pp protocol)
          (Runner.execute ~config ~protocol workload))
      protocols
  in
  { title = "throughput and latency per protocol"; rows }

(* Two regimes. The paper's premise (§2) is that transaction processing is
   bound by the *volume* of computation, so spreading families over more
   processors raises throughput — that only shows when CPUs are a modelled,
   contended resource and method execution is non-trivial. The
   communication-bound rows (default cost model: ~0.2 µs per statement,
   free CPUs) show the opposite force: more nodes means less locality and
   more consistency traffic. *)
let scaling ?(config = Core.Config.default)
    ?(spec =
      (* Dense arrivals: the offered load must exceed what a couple of CPUs
         can absorb, or there is nothing for extra processors to pick up. *)
      { Workload.Scenarios.medium_moderate with Workload.Spec.arrival_mean_us = 15.0 })
    ?(node_counts = [ 2; 4; 8; 16 ]) () =
  let run_at ~label ~config node_count =
    let spec = { spec with Workload.Spec.node_count } in
    let workload = Workload.Generator.generate spec ~page_size:config.Core.Config.page_size in
    let config = { config with Core.Config.node_count } in
    row_of_run
      ~label:(Printf.sprintf "%s, %d nodes" label node_count)
      (Runner.execute ~config ~protocol:Dsm.Protocol.Lotec workload)
  in
  let communication_bound =
    List.map (run_at ~label:"comm-bound" ~config) node_counts
  in
  let compute_bound =
    let config =
      { config with Core.Config.cpu_limited = true; statement_us = 50.0 }
    in
    List.map (run_at ~label:"cpu-bound" ~config) node_counts
  in
  {
    title = "LOTEC throughput vs cluster size (fixed offered load, both regimes)";
    rows = compute_bound @ communication_bound;
  }

let pp fmt result =
  Format.fprintf fmt "%s@." result.title;
  let header =
    [ "variant"; "committed"; "gave up"; "makespan us"; "txn/s"; "mean lat"; "p50"; "p95" ]
  in
  let rows =
    List.map
      (fun r ->
        [
          r.label;
          string_of_int r.committed;
          string_of_int r.gave_up;
          Report.fmt_us r.makespan_us;
          Printf.sprintf "%.1f" r.throughput_tps;
          Report.fmt_us r.mean_latency_us;
          Report.fmt_us r.p50_latency_us;
          Report.fmt_us r.p95_latency_us;
        ])
      result.rows
  in
  Format.fprintf fmt "%s@."
    (Report.render ~header
       ~align:[ Report.Left; Right; Right; Right; Right; Right; Right; Right ]
       rows)
