(** Figures 2–5: bytes transferred per shared object under COTEC, OTEC and
    LOTEC.

    Each figure runs one workload scenario once per protocol (fresh cluster,
    identical workload and seeds) and reports, per object, the bytes that
    moved to maintain its consistency — page data plus the object-tagged
    control traffic (lock and page-request messages). *)

type series = {
  protocol : Dsm.Protocol.t;
  bytes_per_object : (Objmodel.Oid.t * int) list;  (** ascending by oid *)
  total_bytes : int;
  total_messages : int;
}

type result = {
  name : string;
  spec : Workload.Spec.t;
  runs : Runner.run list;  (** kept so Figures 6–8 can replay the ledgers *)
  series : series list;  (** one per protocol, in the order requested *)
}

val default_protocols : Dsm.Protocol.t list
(** COTEC, OTEC, LOTEC — the paper's three. *)

val run :
  ?config:Core.Config.t ->
  ?protocols:Dsm.Protocol.t list ->
  name:string ->
  Workload.Spec.t ->
  result

val figure2 : ?config:Core.Config.t -> unit -> result
val figure3 : ?config:Core.Config.t -> unit -> result
val figure4 : ?config:Core.Config.t -> unit -> result
val figure5 : ?config:Core.Config.t -> unit -> result

val top_objects : result -> int -> Objmodel.Oid.t list
(** The [n] objects with the most baseline (first-series) traffic, ascending
    by oid — the "selected shared objects" shown on a figure's x-axis. *)

val pp : Format.formatter -> result -> unit
(** Paper-style table: one row per displayed object, one column per
    protocol, plus totals. *)

val pp_chart : ?objects:int -> Format.formatter -> result -> unit
(** ASCII grouped bar chart of the figure — the form the paper actually
    plots. Shows the [objects] highest-traffic objects (default 8). *)
