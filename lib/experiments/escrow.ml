type mode =
  | Exclusive  (** escrow off — commuting methods serialize on write locks *)
  | Escrow of Dsm.Escrow.params

type case = { protocol : Dsm.Protocol.t; skew : float; mode : mode }

type outcome = {
  case : case;
  committed : int;
  aborted : int;
  messages : int;
  bytes : int;
  reserves : int;
  local_commits : int;
  reconciles : int;
  recalls : int;
  refusals : int;
  escrow_finals : (Objmodel.Oid.t * int) list;
  completion_us : float;
}

(* The hot-account preset: {!Workload.Scenarios.bank} with the sweep's
   skew — the only axis the experiment varies about the workload. *)
let default_spec ~skew = { Workload.Scenarios.bank with Workload.Spec.access_skew = skew }

let default_params = Dsm.Escrow.default_params
let default_skews = [ 0.6; 1.2 ]

let mode_to_string = function Exclusive -> "exclusive" | Escrow _ -> "escrow"

let case_name c =
  Format.asprintf "%a skew=%.1f mode=%s" Dsm.Protocol.pp c.protocol c.skew
    (mode_to_string c.mode)

(* < 1 = the escrow run finished sooner. *)
let time_ratio ~baseline ~on =
  if baseline.completion_us = 0.0 then 1.0 else on.completion_us /. baseline.completion_us

let run_case ?(config = Core.Config.default) ?(spec_of_skew = fun skew -> default_spec ~skew)
    c =
  let spec = spec_of_skew c.skew in
  let config =
    match c.mode with
    | Exclusive -> { config with Core.Config.escrow = Dsm.Escrow.off }
    | Escrow p -> { config with Core.Config.escrow = Dsm.Escrow.On p }
  in
  let wl = Workload.Generator.generate spec ~page_size:config.Core.Config.page_size in
  (* Runner.execute raises unless the committed history is serializable AND
     the escrow op log replays clean — the two halves of correctness for an
     escrow run. *)
  let run = Runner.execute ~config ~protocol:c.protocol wl in
  let m = Runner.metrics run in
  let t = Dsm.Metrics.totals m in
  let fail fmt =
    Format.kasprintf (fun s -> failwith ("escrow [" ^ case_name c ^ "]: " ^ s)) fmt
  in
  let submitted = spec.Workload.Spec.root_count in
  if t.Dsm.Metrics.roots_committed + t.Dsm.Metrics.roots_aborted <> submitted then
    fail "root accounting broken: %d committed + %d aborted <> %d submitted"
      t.Dsm.Metrics.roots_committed t.Dsm.Metrics.roots_aborted submitted;
  (match c.mode with
  | Escrow _ -> ()
  | Exclusive ->
      if
        t.Dsm.Metrics.escrow_reserves + t.Dsm.Metrics.escrow_local_commits
        + t.Dsm.Metrics.escrow_reconciles + t.Dsm.Metrics.escrow_recalls
        + t.Dsm.Metrics.escrow_yields + t.Dsm.Metrics.escrow_refusals
        + t.Dsm.Metrics.escrow_quota_units
        > 0
      then fail "escrow counters nonzero with escrow off");
  (* The wire ledger (escrow message rows included) must reconcile exactly
     with the network's per-object ledger. *)
  if Dsm.Metrics.wire_messages_total m <> Dsm.Metrics.total_messages m then
    fail "wire ledger out of balance: %d wire messages <> %d network messages"
      (Dsm.Metrics.wire_messages_total m)
      (Dsm.Metrics.total_messages m);
  if Dsm.Metrics.wire_bytes_total m <> Dsm.Metrics.total_bytes m then
    fail "wire ledger out of balance: %d wire bytes <> %d network bytes"
      (Dsm.Metrics.wire_bytes_total m) (Dsm.Metrics.total_bytes m);
  let escrow_finals =
    match Core.Runtime.check_escrow run.Runner.runtime with
    | Ok finals -> finals
    | Error _ -> assert false (* Runner.execute already raised *)
  in
  {
    case = c;
    committed = t.Dsm.Metrics.roots_committed;
    aborted = t.Dsm.Metrics.roots_aborted;
    messages = Dsm.Metrics.total_messages m;
    bytes = Dsm.Metrics.total_bytes m;
    reserves = t.Dsm.Metrics.escrow_reserves;
    local_commits = t.Dsm.Metrics.escrow_local_commits;
    reconciles = t.Dsm.Metrics.escrow_reconciles;
    recalls = t.Dsm.Metrics.escrow_recalls;
    refusals = t.Dsm.Metrics.escrow_refusals;
    escrow_finals;
    completion_us = Dsm.Metrics.completion_time_us m;
  }

let sweep ?config ?spec_of_skew ?(params = default_params)
    ?(protocols = Dsm.Protocol.[ Cotec; Otec; Lotec; Rc_nested ])
    ?(skews = default_skews) () =
  List.concat_map
    (fun protocol ->
      List.concat_map
        (fun skew ->
          List.map
            (fun mode -> run_case ?config ?spec_of_skew { protocol; skew; mode })
            [ Exclusive; Escrow params ])
        skews)
    protocols

(* The Exclusive row an escrow row compares against: same protocol and
   skew. *)
let baseline_of outcomes o =
  List.find_opt
    (fun b ->
      b.case.mode = Exclusive
      && b.case.protocol = o.case.protocol
      && b.case.skew = o.case.skew)
    outcomes

(* The gate row: LOTEC under escrow at the sweep's strongest skew — the
   hottest hot-account fight, where coordination avoidance must show. *)
let headline outcomes =
  let candidates =
    List.filter
      (fun o ->
        o.case.protocol = Dsm.Protocol.Lotec
        && (match o.case.mode with Escrow _ -> true | Exclusive -> false))
      outcomes
  in
  let best =
    List.fold_left
      (fun acc o ->
        match acc with Some b when b.case.skew >= o.case.skew -> acc | _ -> Some o)
      None candidates
  in
  match best with
  | None -> None
  | Some on -> (
      match baseline_of outcomes on with
      | None -> None
      | Some baseline -> Some (baseline, on, time_ratio ~baseline ~on))

let pp_outcome fmt o =
  Format.fprintf fmt "%s: %d/%d committed, %d msgs, %s, %d local commits, %.0f us"
    (case_name o.case) o.committed (o.committed + o.aborted) o.messages
    (Report.fmt_bytes o.bytes) o.local_commits o.completion_us

let pp_report fmt outcomes =
  let header =
    [
      "protocol"; "skew"; "mode"; "ok/roots"; "msgs"; "bytes"; "reserves"; "local";
      "reconciles"; "recalls"; "refused"; "completion"; "vs base";
    ]
  in
  let rows =
    List.map
      (fun o ->
        let vs_time =
          match o.case.mode with
          | Exclusive -> "-"
          | Escrow _ -> (
              match baseline_of outcomes o with
              | Some b ->
                  Printf.sprintf "%+.1f%%" (100.0 *. (time_ratio ~baseline:b ~on:o -. 1.0))
              | None -> "?")
        in
        [
          Format.asprintf "%a" Dsm.Protocol.pp o.case.protocol;
          Printf.sprintf "%.1f" o.case.skew;
          mode_to_string o.case.mode;
          Printf.sprintf "%d/%d" o.committed (o.committed + o.aborted);
          string_of_int o.messages;
          Report.fmt_bytes o.bytes;
          string_of_int o.reserves;
          string_of_int o.local_commits;
          string_of_int o.reconciles;
          string_of_int o.recalls;
          string_of_int o.refusals;
          Report.fmt_us o.completion_us;
          vs_time;
        ])
      outcomes
  in
  Format.fprintf fmt "escrow sweep: all invariants held@.%s@."
    (Report.render ~header
       ~align:
         [
           Report.Left; Right; Left; Right; Right; Right; Right; Right; Right; Right; Right;
           Right; Right;
         ]
       rows);
  match headline outcomes with
  | Some (_, _, ratio) ->
      Format.fprintf fmt "headline (LOTEC, hottest skew): completion %+.1f%% vs exclusive@."
        (100.0 *. (ratio -. 1.0))
  | None -> ()

let to_json outcomes =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "[\n";
  List.iteri
    (fun i o ->
      if i > 0 then Buffer.add_string buf ",\n";
      let vs_time =
        match baseline_of outcomes o with
        | Some b when o.case.mode <> Exclusive -> time_ratio ~baseline:b ~on:o
        | _ -> 1.0
      in
      Buffer.add_string buf
        (Printf.sprintf
           "  {\"protocol\": %S, \"skew\": %.2f, \"mode\": %S, \"committed\": %d, \
            \"aborted\": %d, \"messages\": %d, \"bytes\": %d, \"reserves\": %d, \
            \"local_commits\": %d, \"reconciles\": %d, \"recalls\": %d, \"refusals\": %d, \
            \"completion_us\": %.1f, \"time_ratio_vs_exclusive\": %.4f}"
           (Format.asprintf "%a" Dsm.Protocol.pp o.case.protocol)
           o.case.skew (mode_to_string o.case.mode) o.committed o.aborted o.messages o.bytes
           o.reserves o.local_commits o.reconciles o.recalls o.refusals o.completion_us
           vs_time))
    outcomes;
  Buffer.add_string buf "\n]\n";
  Buffer.contents buf
