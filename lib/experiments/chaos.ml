type case = {
  protocol : Dsm.Protocol.t;
  drop : float;
  duplicate : float;
  jitter_us : float;
  fault_seed : int;
}

type outcome = {
  case : case;
  committed : int;
  aborted : int;
  messages : int;
  drops : int;
  duplicates : int;
  retransmits : int;
  timeouts : int;
  completion_us : float;
}

let fault_config c =
  let fc =
    {
      Sim.Fault.none with
      Sim.Fault.seed = c.fault_seed;
      drop_probability = c.drop;
      duplicate_probability = c.duplicate;
      delay_jitter_us = c.jitter_us;
    }
  in
  if Sim.Fault.is_active fc then Some fc else None

let ledger_balanced m =
  List.for_all
    (fun oid ->
      let o = Dsm.Metrics.per_object m oid in
      o.Dsm.Metrics.messages = o.Dsm.Metrics.control_messages + o.Dsm.Metrics.data_messages
      && (o.Dsm.Metrics.messages = 0 || o.Dsm.Metrics.control_bytes + o.Dsm.Metrics.data_bytes > 0))
    (Dsm.Metrics.objects m)

let case_name c =
  Format.asprintf "%a drop=%.2f dup=%.2f jitter=%.0fus fseed=%d" Dsm.Protocol.pp c.protocol
    c.drop c.duplicate c.jitter_us c.fault_seed

let run_case ?(config = Core.Config.default) ~spec c =
  let config = { config with Core.Config.faults = fault_config c } in
  let wl = Workload.Generator.generate spec ~page_size:config.Core.Config.page_size in
  (* Runner.execute raises on a serializability violation; Engine.Stalled
     escapes from Runtime.run if a fiber never drains. *)
  let run = Runner.execute ~config ~protocol:c.protocol wl in
  let m = Runner.metrics run in
  let t = Dsm.Metrics.totals m in
  let fail fmt =
    Format.kasprintf (fun s -> failwith ("chaos [" ^ case_name c ^ "]: " ^ s)) fmt
  in
  let submitted = spec.Workload.Spec.root_count in
  if t.Dsm.Metrics.roots_committed + t.Dsm.Metrics.roots_aborted <> submitted then
    fail "root accounting broken: %d committed + %d aborted <> %d submitted"
      t.Dsm.Metrics.roots_committed t.Dsm.Metrics.roots_aborted submitted;
  if not (ledger_balanced m) then fail "metrics ledger out of balance";
  {
    case = c;
    committed = t.Dsm.Metrics.roots_committed;
    aborted = t.Dsm.Metrics.roots_aborted;
    messages = Dsm.Metrics.total_messages m;
    drops = t.Dsm.Metrics.drops;
    duplicates = t.Dsm.Metrics.duplicates;
    retransmits = t.Dsm.Metrics.retransmits;
    timeouts = t.Dsm.Metrics.timeouts;
    completion_us = Dsm.Metrics.completion_time_us m;
  }

let default_spec =
  {
    Workload.Scenarios.medium_high with
    Workload.Spec.object_count = 10;
    root_count = 25;
    node_count = 4;
  }

let default_rates = [ (0.0, 0.0, 0.0); (0.05, 0.05, 25.0); (0.1, 0.1, 50.0); (0.2, 0.2, 100.0) ]

let sweep ?config ?(spec = default_spec)
    ?(protocols = Dsm.Protocol.[ Cotec; Otec; Lotec ]) ?(rates = default_rates)
    ?(fault_seeds = [ 1; 2 ]) () =
  List.concat_map
    (fun protocol ->
      List.concat_map
        (fun (drop, duplicate, jitter_us) ->
          (* A fault-free case is seed-independent: run it once. *)
          let seeds =
            if drop = 0.0 && duplicate = 0.0 && jitter_us = 0.0 then [ List.hd fault_seeds ]
            else fault_seeds
          in
          List.map
            (fun fault_seed ->
              run_case ?config ~spec { protocol; drop; duplicate; jitter_us; fault_seed })
            seeds)
        rates)
    protocols

(* ------------------------------------------------------------------ *)
(* Crash chaos: scheduled fail-stop crash-restart windows on top of the
   (optionally lossy) interconnect, exercising the full recovery path —
   failure detection, dead-family reclamation, GDO home failover.       *)

type crash_case = {
  cc_protocol : Dsm.Protocol.t;
  cc_windows : (int * float * float) list;
  cc_gdo_replicas : int;
  cc_drop : float;
  cc_fault_seed : int;
}

type crash_outcome = {
  cc_case : crash_case;
  cc_committed : int;
  cc_aborted : int;
  cc_crash_aborts : int;
  cc_recovered : int;
  cc_give_ups : int;
  cc_declared_dead : int;
  cc_reclaimed : int;
  cc_failovers : int;
  cc_recovery_p50_us : float;
  cc_recovery_p99_us : float;
  cc_messages : int;
  cc_completion_us : float;
}

let crash_fault_config c =
  let windows =
    List.map
      (fun (node, from_us, until_us) ->
        {
          Sim.Fault.w_node = node;
          w_kind = Sim.Fault.Crash;
          w_from_us = from_us;
          w_until_us = until_us;
        })
      c.cc_windows
  in
  {
    Sim.Fault.none with
    Sim.Fault.seed = c.cc_fault_seed;
    drop_probability = c.cc_drop;
    windows;
  }

let crash_case_name c =
  let windows =
    String.concat ","
      (List.map (fun (n, f, u) -> Printf.sprintf "%d:%.0f-%.0f" n f u) c.cc_windows)
  in
  Format.asprintf "%a crash=[%s] replicas=%d drop=%.2f fseed=%d" Dsm.Protocol.pp c.cc_protocol
    windows c.cc_gdo_replicas c.cc_drop c.cc_fault_seed

let run_crash_case ?(config = Core.Config.default) ?(dump_stalls = false) ~spec c =
  (* Timers tightened so detection, declaration and failover all land well
     inside a few-millisecond crash window: a sender gives up on a crashed
     peer after ~3.5 ms (0.5 + 1 + 2), a silent peer is declared dead
     ~2 ms into the window. *)
  let config =
    {
      config with
      Core.Config.faults = Some (crash_fault_config c);
      gdo_replicas = c.cc_gdo_replicas;
      request_timeout_us = 500.0;
      max_retransmits = 3;
      heartbeat_interval_us = 500.0;
      suspect_timeout_us = 1_500.0;
    }
  in
  let wl = Workload.Generator.generate spec ~page_size:config.Core.Config.page_size in
  let on_stall =
    if dump_stalls then
      Some
        (fun rt ->
          prerr_endline "--- directory at stall ---";
          prerr_endline (Gdo.Directory.dump (Core.Runtime.directory rt)))
    else None
  in
  let run = Runner.execute ~config ?on_stall ~protocol:c.cc_protocol wl in
  let m = Runner.metrics run in
  let t = Dsm.Metrics.totals m in
  let fail fmt =
    Format.kasprintf (fun s -> failwith ("crash-chaos [" ^ crash_case_name c ^ "]: " ^ s)) fmt
  in
  let submitted = spec.Workload.Spec.root_count in
  if t.Dsm.Metrics.roots_committed + t.Dsm.Metrics.roots_aborted <> submitted then
    fail "root accounting broken: %d committed + %d aborted <> %d submitted"
      t.Dsm.Metrics.roots_committed t.Dsm.Metrics.roots_aborted submitted;
  if not (ledger_balanced m) then fail "metrics ledger out of balance";
  (* The wire ledger (recorded at send time, crashed senders suppressed)
     must reconcile exactly with the network hook's per-object ledger. *)
  if Dsm.Metrics.wire_messages_total m <> Dsm.Metrics.total_messages m then
    fail "wire ledger out of balance: %d wire messages <> %d network messages"
      (Dsm.Metrics.wire_messages_total m)
      (Dsm.Metrics.total_messages m);
  if Dsm.Metrics.wire_bytes_total m <> Dsm.Metrics.total_bytes m then
    fail "wire ledger out of balance: %d wire bytes <> %d network bytes"
      (Dsm.Metrics.wire_bytes_total m) (Dsm.Metrics.total_bytes m);
  let rh = Dsm.Metrics.recovery_latency m in
  {
    cc_case = c;
    cc_committed = t.Dsm.Metrics.roots_committed;
    cc_aborted = t.Dsm.Metrics.roots_aborted;
    cc_crash_aborts = t.Dsm.Metrics.crash_aborts;
    cc_recovered = Dsm.Histogram.count rh;
    cc_give_ups = t.Dsm.Metrics.give_ups;
    cc_declared_dead = t.Dsm.Metrics.nodes_declared_dead;
    cc_reclaimed = t.Dsm.Metrics.families_reclaimed;
    cc_failovers = t.Dsm.Metrics.failovers;
    cc_recovery_p50_us = Dsm.Histogram.percentile rh 50.0;
    cc_recovery_p99_us = Dsm.Histogram.percentile rh 99.0;
    cc_messages = Dsm.Metrics.total_messages m;
    cc_completion_us = Dsm.Metrics.completion_time_us m;
  }

(* Default windows against [default_spec]'s ~20-26 ms fault-free makespan:
   one mid-run crash, and a staggered pair leaving a quorum up throughout.
   Every node is the GDO home of some partition (home = oid mod nodes), so
   any crash exercises home unavailability; with replicas >= 1 it exercises
   failover and failback instead. *)
let default_crash_windows = [ [ (2, 3_000.0, 9_000.0) ]; [ (1, 2_000.0, 6_000.0); (3, 8_000.0, 13_000.0) ] ]

let crash_sweep ?config ?(spec = default_spec)
    ?(protocols = Dsm.Protocol.[ Cotec; Otec; Lotec ]) ?(windows = default_crash_windows)
    ?(replicas = [ 0; 1 ]) ?(fault_seeds = [ 1 ]) ?dump_stalls () =
  List.concat_map
    (fun cc_protocol ->
      List.concat_map
        (fun cc_windows ->
          List.concat_map
            (fun cc_gdo_replicas ->
              List.map
                (fun cc_fault_seed ->
                  run_crash_case ?config ?dump_stalls ~spec
                    { cc_protocol; cc_windows; cc_gdo_replicas; cc_drop = 0.0; cc_fault_seed })
                fault_seeds)
            replicas)
        windows)
    protocols

let crash_to_json outcomes =
  let b = Buffer.create 1024 in
  Buffer.add_string b "[\n";
  List.iteri
    (fun i o ->
      if i > 0 then Buffer.add_string b ",\n";
      let windows =
        String.concat ","
          (List.map
             (fun (n, f, u) -> Printf.sprintf "[%d,%.0f,%.0f]" n f u)
             o.cc_case.cc_windows)
      in
      Buffer.add_string b
        (Printf.sprintf
           "  {\"protocol\": \"%s\", \"windows\": [%s], \"gdo_replicas\": %d, \"drop\": \
            %.3f, \"fault_seed\": %d, \"committed\": %d, \"aborted\": %d, \"crash_aborts\": \
            %d, \"recovered\": %d, \"give_ups\": %d, \"nodes_declared_dead\": %d, \
            \"families_reclaimed\": %d, \"failovers\": %d, \"recovery_p50_us\": %.1f, \
            \"recovery_p99_us\": %.1f, \"messages\": %d, \"completion_us\": %.1f}"
           (Format.asprintf "%a" Dsm.Protocol.pp o.cc_case.cc_protocol)
           windows o.cc_case.cc_gdo_replicas o.cc_case.cc_drop o.cc_case.cc_fault_seed
           o.cc_committed o.cc_aborted o.cc_crash_aborts o.cc_recovered o.cc_give_ups
           o.cc_declared_dead o.cc_reclaimed o.cc_failovers o.cc_recovery_p50_us
           o.cc_recovery_p99_us o.cc_messages o.cc_completion_us))
    outcomes;
  Buffer.add_string b "\n]\n";
  Buffer.contents b

let pp_crash_outcome fmt o =
  Format.fprintf fmt
    "%s: %d/%d committed (%d crash-aborted, %d recovered), %d dead, %d reclaimed, %d \
     failovers, recovery p50 %.0f us"
    (crash_case_name o.cc_case) o.cc_committed
    (o.cc_committed + o.cc_aborted)
    o.cc_crash_aborts o.cc_recovered o.cc_declared_dead o.cc_reclaimed o.cc_failovers
    o.cc_recovery_p50_us

let pp_crash_report fmt outcomes =
  let header =
    [
      "protocol"; "windows"; "repl"; "ok/roots"; "crash-ab"; "recov"; "dead"; "reclaim";
      "failover"; "rec-p50"; "rec-p99"; "completion";
    ]
  in
  let rows =
    List.map
      (fun o ->
        [
          Format.asprintf "%a" Dsm.Protocol.pp o.cc_case.cc_protocol;
          String.concat ","
            (List.map
               (fun (n, f, u) -> Printf.sprintf "%d:%.0f-%.0f" n f u)
               o.cc_case.cc_windows);
          string_of_int o.cc_case.cc_gdo_replicas;
          Printf.sprintf "%d/%d" o.cc_committed (o.cc_committed + o.cc_aborted);
          string_of_int o.cc_crash_aborts;
          string_of_int o.cc_recovered;
          string_of_int o.cc_declared_dead;
          string_of_int o.cc_reclaimed;
          string_of_int o.cc_failovers;
          Report.fmt_us o.cc_recovery_p50_us;
          Report.fmt_us o.cc_recovery_p99_us;
          Report.fmt_us o.cc_completion_us;
        ])
      outcomes
  in
  Format.fprintf fmt "crash chaos: all invariants held@.%s@."
    (Report.render ~header
       ~align:
         [
           Report.Left; Left; Right; Right; Right; Right; Right; Right; Right; Right; Right;
           Right;
         ]
       rows)

let pp_outcome fmt o =
  Format.fprintf fmt "%s: %d/%d committed, %d msgs, %d drops, %d dups, %d rexmit, %.0f us"
    (case_name o.case) o.committed (o.committed + o.aborted) o.messages o.drops o.duplicates
    o.retransmits o.completion_us

let pp_report fmt outcomes =
  let header =
    [
      "protocol"; "drop"; "dup"; "jitter"; "fseed"; "ok/roots"; "msgs"; "drops"; "dups";
      "rexmit"; "completion";
    ]
  in
  let rows =
    List.map
      (fun o ->
        [
          Format.asprintf "%a" Dsm.Protocol.pp o.case.protocol;
          Printf.sprintf "%.2f" o.case.drop;
          Printf.sprintf "%.2f" o.case.duplicate;
          Printf.sprintf "%.0f" o.case.jitter_us;
          string_of_int o.case.fault_seed;
          Printf.sprintf "%d/%d" o.committed (o.committed + o.aborted);
          string_of_int o.messages;
          string_of_int o.drops;
          string_of_int o.duplicates;
          string_of_int o.retransmits;
          Report.fmt_us o.completion_us;
        ])
      outcomes
  in
  Format.fprintf fmt "chaos sweep: all invariants held@.%s@."
    (Report.render ~header
       ~align:
         [
           Report.Left; Right; Right; Right; Right; Right; Right; Right; Right; Right; Right;
         ]
       rows)
