type case = {
  protocol : Dsm.Protocol.t;
  drop : float;
  duplicate : float;
  jitter_us : float;
  fault_seed : int;
}

type outcome = {
  case : case;
  committed : int;
  aborted : int;
  messages : int;
  drops : int;
  duplicates : int;
  retransmits : int;
  timeouts : int;
  completion_us : float;
}

let fault_config c =
  let fc =
    {
      Sim.Fault.none with
      Sim.Fault.seed = c.fault_seed;
      drop_probability = c.drop;
      duplicate_probability = c.duplicate;
      delay_jitter_us = c.jitter_us;
    }
  in
  if Sim.Fault.is_active fc then Some fc else None

let ledger_balanced m =
  List.for_all
    (fun oid ->
      let o = Dsm.Metrics.per_object m oid in
      o.Dsm.Metrics.messages = o.Dsm.Metrics.control_messages + o.Dsm.Metrics.data_messages
      && (o.Dsm.Metrics.messages = 0 || o.Dsm.Metrics.control_bytes + o.Dsm.Metrics.data_bytes > 0))
    (Dsm.Metrics.objects m)

let case_name c =
  Format.asprintf "%a drop=%.2f dup=%.2f jitter=%.0fus fseed=%d" Dsm.Protocol.pp c.protocol
    c.drop c.duplicate c.jitter_us c.fault_seed

let run_case ?(config = Core.Config.default) ~spec c =
  let config = { config with Core.Config.faults = fault_config c } in
  let wl = Workload.Generator.generate spec ~page_size:config.Core.Config.page_size in
  (* Runner.execute raises on a serializability violation; Engine.Stalled
     escapes from Runtime.run if a fiber never drains. *)
  let run = Runner.execute ~config ~protocol:c.protocol wl in
  let m = Runner.metrics run in
  let t = Dsm.Metrics.totals m in
  let fail fmt =
    Format.kasprintf (fun s -> failwith ("chaos [" ^ case_name c ^ "]: " ^ s)) fmt
  in
  let submitted = spec.Workload.Spec.root_count in
  if t.Dsm.Metrics.roots_committed + t.Dsm.Metrics.roots_aborted <> submitted then
    fail "root accounting broken: %d committed + %d aborted <> %d submitted"
      t.Dsm.Metrics.roots_committed t.Dsm.Metrics.roots_aborted submitted;
  if not (ledger_balanced m) then fail "metrics ledger out of balance";
  {
    case = c;
    committed = t.Dsm.Metrics.roots_committed;
    aborted = t.Dsm.Metrics.roots_aborted;
    messages = Dsm.Metrics.total_messages m;
    drops = t.Dsm.Metrics.drops;
    duplicates = t.Dsm.Metrics.duplicates;
    retransmits = t.Dsm.Metrics.retransmits;
    timeouts = t.Dsm.Metrics.timeouts;
    completion_us = Dsm.Metrics.completion_time_us m;
  }

let default_spec =
  {
    Workload.Scenarios.medium_high with
    Workload.Spec.object_count = 10;
    root_count = 25;
    node_count = 4;
  }

let default_rates = [ (0.0, 0.0, 0.0); (0.05, 0.05, 25.0); (0.1, 0.1, 50.0); (0.2, 0.2, 100.0) ]

let sweep ?config ?(spec = default_spec)
    ?(protocols = Dsm.Protocol.[ Cotec; Otec; Lotec ]) ?(rates = default_rates)
    ?(fault_seeds = [ 1; 2 ]) () =
  List.concat_map
    (fun protocol ->
      List.concat_map
        (fun (drop, duplicate, jitter_us) ->
          (* A fault-free case is seed-independent: run it once. *)
          let seeds =
            if drop = 0.0 && duplicate = 0.0 && jitter_us = 0.0 then [ List.hd fault_seeds ]
            else fault_seeds
          in
          List.map
            (fun fault_seed ->
              run_case ?config ~spec { protocol; drop; duplicate; jitter_us; fault_seed })
            seeds)
        rates)
    protocols

let pp_outcome fmt o =
  Format.fprintf fmt "%s: %d/%d committed, %d msgs, %d drops, %d dups, %d rexmit, %.0f us"
    (case_name o.case) o.committed (o.committed + o.aborted) o.messages o.drops o.duplicates
    o.retransmits o.completion_us

let pp_report fmt outcomes =
  let header =
    [
      "protocol"; "drop"; "dup"; "jitter"; "fseed"; "ok/roots"; "msgs"; "drops"; "dups";
      "rexmit"; "completion";
    ]
  in
  let rows =
    List.map
      (fun o ->
        [
          Format.asprintf "%a" Dsm.Protocol.pp o.case.protocol;
          Printf.sprintf "%.2f" o.case.drop;
          Printf.sprintf "%.2f" o.case.duplicate;
          Printf.sprintf "%.0f" o.case.jitter_us;
          string_of_int o.case.fault_seed;
          Printf.sprintf "%d/%d" o.committed (o.committed + o.aborted);
          string_of_int o.messages;
          string_of_int o.drops;
          string_of_int o.duplicates;
          string_of_int o.retransmits;
          Report.fmt_us o.completion_us;
        ])
      outcomes
  in
  Format.fprintf fmt "chaos sweep: all invariants held@.%s@."
    (Report.render ~header
       ~align:
         [
           Report.Left; Right; Right; Right; Right; Right; Right; Right; Right; Right; Right;
         ]
       rows)
