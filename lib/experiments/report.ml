type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render ~header ?align rows =
  let cols = List.length header in
  let aligns =
    match align with
    | Some a when List.length a = cols -> a
    | _ -> List.init cols (fun _ -> Right)
  in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun acc row -> max acc (String.length (List.nth row i)))
          (String.length h) rows)
      header
  in
  let render_row cells =
    String.concat "  "
      (List.map2 (fun (w, a) c -> pad a w c) (List.combine widths aligns) cells)
  in
  let rule = String.concat "  " (List.map (fun w -> String.make w '-') widths) in
  String.concat "\n" (render_row header :: rule :: List.map render_row rows)

let fmt_bytes n =
  let s = string_of_int n in
  let len = String.length s in
  let buf = Buffer.create (len + (len / 3)) in
  String.iteri
    (fun i c ->
      if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char buf ',';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf

let fmt_us v = Printf.sprintf "%.1f" v

let fmt_pct v = Printf.sprintf "%+.1f%%" v

type bar_group = { group : string; bars : (string * float) list }

let bar_chart ?(width = 50) ?(value_fmt = fun v -> Printf.sprintf "%.0f" v) groups =
  let max_value =
    List.fold_left
      (fun acc g -> List.fold_left (fun acc (_, v) -> Float.max acc v) acc g.bars)
      0.0 groups
  in
  let group_w = List.fold_left (fun acc g -> max acc (String.length g.group)) 0 groups in
  let series_w =
    List.fold_left
      (fun acc g -> List.fold_left (fun acc (s, _) -> max acc (String.length s)) acc g.bars)
      0 groups
  in
  let buf = Buffer.create 1024 in
  List.iter
    (fun g ->
      List.iteri
        (fun i (series, v) ->
          let bar_len =
            if max_value <= 0.0 || v <= 0.0 then 0
            else max 1 (int_of_float (Float.round (v /. max_value *. float_of_int width)))
          in
          Buffer.add_string buf
            (Printf.sprintf "%-*s  %-*s  %s  %s\n" group_w
               (if i = 0 then g.group else "")
               series_w series (String.make bar_len '#') (value_fmt v)))
        g.bars)
    groups;
  Buffer.contents buf
