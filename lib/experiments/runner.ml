type run = {
  protocol : Dsm.Protocol.t;
  workload : Workload.Generator.t;
  runtime : Core.Runtime.t;
}

let execute ?(config = Core.Config.default) ?on_stall ~protocol
    (workload : Workload.Generator.t) =
  let cfg =
    {
      config with
      Core.Config.protocol;
      node_count = workload.Workload.Generator.spec.Workload.Spec.node_count;
    }
  in
  let runtime = Core.Runtime.create ~config:cfg ~catalog:workload.Workload.Generator.catalog in
  List.iter
    (fun (r : Workload.Generator.root_spec) ->
      Core.Runtime.submit runtime ~at:r.at ~node:r.node ~oid:r.oid ~meth:r.meth ~seed:r.seed)
    workload.Workload.Generator.roots;
  (match on_stall with
  | None -> Core.Runtime.run runtime
  | Some hook -> (
      (* Diagnostic hook: let the caller inspect the runtime (e.g. dump the
         directory) before the failure propagates. *)
      try Core.Runtime.run runtime
      with e ->
        hook runtime;
        raise e));
  (match Core.Runtime.check_serializable runtime with
  | Core.Serializability.Serializable _ -> ()
  | Core.Serializability.Cyclic cycle ->
      failwith
        (Format.asprintf "serializability violation under %a: cycle %a" Dsm.Protocol.pp protocol
           (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f " -> ")
              Txn.Txn_id.pp)
           cycle));
  (* Escrow runs trade page-level serializability on the escrowed objects
     for the replayed ledger invariants; trivially Ok with the policy off. *)
  (match Core.Runtime.check_escrow runtime with
  | Ok _ -> ()
  | Error errs ->
      failwith
        (Format.asprintf "escrow violation under %a:@,%a" Dsm.Protocol.pp protocol
           (Format.pp_print_list ~pp_sep:Format.pp_print_newline Format.pp_print_string)
           (List.filteri (fun i _ -> i < 5) errs)));
  { protocol; workload; runtime }

let execute_all ?config ~protocols workload =
  List.map (fun protocol -> execute ?config ~protocol workload) protocols

let metrics run = Core.Runtime.metrics run.runtime
