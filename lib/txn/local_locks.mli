(** Per-site lock table for nested O2PL — the local halves of the paper's
    Algorithms 4.1 (LocalLockAcquisition) and 4.3 (LocalLockRelease).

    The locally cached portion of a GDO entry is the list of transactions
    from the family currently holding the object's lock. This table manages
    that cached state for every family executing at one site:

    - which families hold an object's global lock here, and in what mode;
    - within a family, which transactions hold and which retain the lock;
    - intra-family waiters.

    Lock-disposition rules implemented (paper §4.1):
    + a transaction may acquire a lock if no conflicting holder exists and
      every retainer is one of its ancestors;
    + on pre-commit, the parent inherits and retains all of the child's held
      and retained locks;
    + on abort, held/retained locks are released, except those also retained
      by an ancestor, who continues to retain them;
    + on root commit, everything is released (globally, by the caller).

    The permissive ancestor-hold rule (needed by the optimistic
    pre-acquisition extension, and matching the paper's second alternative
    for recursive invocations) is built in: holders that are ancestors of the
    requester never conflict with it. *)

type t

(** Outcome of a local acquisition attempt. *)
type outcome =
  | Granted
  | Queued  (** conflicting intra-family holder; the wake callback fires on grant *)
  | Not_cached  (** this family holds nothing on the object: go to the GDO *)
  | Needs_upgrade
      (** the family's global lock is Read but Write was requested: an
          upgrade must be negotiated with the GDO *)

val create : Txn_tree.t -> t

val acquire :
  t -> Objmodel.Oid.t -> txn:Txn_id.t -> mode:Lock.mode -> wake:(unit -> unit) -> outcome
(** Attempt local acquisition for [txn]'s family. On [Granted], the holder
    list is updated. On [Queued], [wake] fires when the lock is later granted
    (the holder list is updated before the callback runs). On [Not_cached] /
    [Needs_upgrade], nothing is recorded: the caller must go global and then
    call {!install_grant} / {!upgrade_granted}. *)

val install_grant : t -> Objmodel.Oid.t -> txn:Txn_id.t -> mode:Lock.mode -> unit
(** Record a fresh global grant for [txn]'s family: creates the cached entry
    with [txn] as sole holder. *)

val upgrade_granted : t -> Objmodel.Oid.t -> txn:Txn_id.t -> unit
(** Record a successful global Read→Write upgrade; [txn] becomes a Write
    holder. *)

val family_mode : t -> Objmodel.Oid.t -> family:Txn_id.t -> Lock.mode option
(** Mode of the family's cached global lock on the object, if any. *)

val held_mode : t -> Objmodel.Oid.t -> txn:Txn_id.t -> Lock.mode option
(** Mode in which [txn] itself currently holds the object, if at all. *)

val retainers : t -> Objmodel.Oid.t -> family:Txn_id.t -> (Txn_id.t * Lock.mode) list
(** Transactions of the family retaining (not holding) the object's lock,
    with the mode each retains — the ancestors consulted by the
    acquisition rule. *)

val precommit : t -> Txn_id.t -> unit
(** Child pre-commit: every lock [txn] holds or retains moves to its parent
    as a retained lock; intra-family waiters that become grantable are woken.
    @raise Invalid_argument on a root transaction. *)

val abort : t -> Txn_id.t -> to_release:(Objmodel.Oid.t -> unit) -> unit
(** Abort disposition for [txn]'s locks. For each object [txn] held or
    retained: if an ancestor retains it, the ancestor keeps it; otherwise, if
    the family no longer has any holder, retainer, or waiter on the object,
    the cached entry is dropped and [to_release] is called (the caller
    releases the lock globally). Waiters that become grantable are woken. *)

val root_release : t -> root:Txn_id.t -> Objmodel.Oid.t list
(** Root commit (or root abort, after undo): drop every cached entry of the
    family and return the objects whose global locks must be released,
    paired with nothing — dirty-page data is the caller's concern. *)

val objects_of_family : t -> family:Txn_id.t -> Objmodel.Oid.t list
(** Objects on which the family currently holds a cached global lock. *)
