(** Per-transaction undo logs over the page-version model.

    Page contents are modelled as version numbers; a write records the page's
    previous version so an abort can restore it. Undo is purely local — no
    network communication is required (paper §4.1, LocalLockRelease note).

    Closed-nesting disposition mirrors lock inheritance: when a
    sub-transaction pre-commits, its records are merged into its parent
    (the parent now owns responsibility for undoing them if it later
    aborts); when it aborts, its records are replayed newest-first and
    discarded. *)

type record = {
  oid : Objmodel.Oid.t;
  page : int;
  prev_version : int;  (** version the page had at this node before the write *)
}

type t

val create : unit -> t

val record : t -> oid:Objmodel.Oid.t -> page:int -> prev_version:int -> unit
(** Append a write record (newest first). *)

val merge_into_parent : child:t -> parent:t -> unit
(** Pre-commit: move the child's records into the parent, keeping the
    child's records newer than everything already in the parent. The child
    log becomes empty. *)

val entries_newest_first : t -> record list
(** All records, newest first — the order in which undo must be applied. *)

val dirty_pages : t -> (Objmodel.Oid.t * int) list
(** Deduplicated (object, page) pairs written under this log, in no
    particular order. At root commit this is the family's dirty-page set. *)

val is_empty : t -> bool

val length : t -> int
(** Number of write records (one per write, not per distinct page). *)

val clear : t -> unit
(** Drop every record (commit: nothing left to undo). *)
