(** Shadow-page recovery — the paper's alternative to undo logs (§4.1:
    "the UNDO operations ... may be done using either local UNDO logs or
    shadow pages. In either case, no network communication is required.")

    Instead of logging every write, a transaction snapshots a page's
    pre-image the {e first} time it touches the page; an abort restores the
    snapshots, a pre-commit hands them to the parent (who keeps its own
    older snapshot when both have one — the parent's pre-image is the
    correct restore point for the merged transaction). Compared to an undo
    log this stores one entry per touched page rather than one per write,
    at the cost of a lookup per write. *)

type t

val create : unit -> t

val note_write : t -> oid:Objmodel.Oid.t -> page:int -> pre_image:int -> unit
(** Record the pre-image unless a shadow for the page already exists. Call
    before (or with) every page write with the page's current version. *)

val has_shadow : t -> oid:Objmodel.Oid.t -> page:int -> bool

val merge_into_parent : child:t -> parent:t -> unit
(** Pre-commit: the parent adopts the child's shadows for pages it has not
    itself shadowed; its own (older) shadows win otherwise. The child
    becomes empty. *)

val shadows : t -> (Objmodel.Oid.t * int * int) list
(** All (object, page, pre-image version) snapshots, unordered — exactly
    what an abort must restore. *)

val dirty_pages : t -> (Objmodel.Oid.t * int) list
(** Pages shadowed (= pages written by this transaction or its committed
    descendants). *)

val page_count : t -> int
(** Number of pages currently shadowed. *)

val is_empty : t -> bool

val clear : t -> unit
(** Drop every shadow (commit: the pre-images are no longer needed). *)
