open Objmodel

module Key = struct
  type t = Oid.t * int

  let equal (o1, p1) (o2, p2) = Oid.equal o1 o2 && Int.equal p1 p2
  let hash = Hashtbl.hash
end

module Tbl = Hashtbl.Make (Key)

type t = { shadows : int Tbl.t }

let create () = { shadows = Tbl.create 16 }

let note_write t ~oid ~page ~pre_image =
  if not (Tbl.mem t.shadows (oid, page)) then Tbl.add t.shadows (oid, page) pre_image

let has_shadow t ~oid ~page = Tbl.mem t.shadows (oid, page)

let merge_into_parent ~child ~parent =
  Tbl.iter
    (fun key pre ->
      if not (Tbl.mem parent.shadows key) then Tbl.add parent.shadows key pre)
    child.shadows;
  Tbl.reset child.shadows

let shadows t = Tbl.fold (fun (oid, page) pre acc -> (oid, page, pre) :: acc) t.shadows []

let dirty_pages t = Tbl.fold (fun key _ acc -> key :: acc) t.shadows []

let page_count t = Tbl.length t.shadows
let is_empty t = Tbl.length t.shadows = 0
let clear t = Tbl.reset t.shadows
