(** Transaction trees and families (Moss-style closed nesting).

    A user-invoked method starts a root transaction; each nested invocation
    starts a sub-transaction whose parent is the invoker. All transactions
    sharing a root form a family. A family ordinarily executes at a single
    site; with function shipping enabled ([Dsm.Shipping]) a sub-transaction
    may execute at a different node than its parent — {!create_child}'s
    [?node] records where.

    The tree also records each transaction's life-cycle status. A
    sub-transaction that finishes successfully {e pre-commits} — its effects
    remain provisional and its locks are inherited by its parent; only root
    commit makes the family's effects durable and its locks available to
    other families. *)

type status =
  | Active
  | Precommitted  (** sub-transaction finished; locks inherited by parent *)
  | Committed  (** root committed: family effects final *)
  | Aborted

type t

val create : unit -> t

val create_root : t -> node:int -> Txn_id.t
(** New root transaction (its own family), executing at [node]. *)

val create_child : ?node:int -> t -> parent:Txn_id.t -> Txn_id.t
(** New sub-transaction of [parent], executing at [node] (default: the
    parent's node — a function-shipped invocation passes the remote
    execution site). @raise Invalid_argument if the parent is not
    [Active]. *)

val parent : t -> Txn_id.t -> Txn_id.t option
(** [None] for roots. *)

val root_of : t -> Txn_id.t -> Txn_id.t
(** The family (root) of a transaction; identity on roots. *)

val node_of : t -> Txn_id.t -> int
(** Site at which the transaction executes (the family's site, unless the
    transaction was function-shipped elsewhere). *)

val depth : t -> Txn_id.t -> int
(** 0 for roots. *)

val status : t -> Txn_id.t -> status
val set_status : t -> Txn_id.t -> status -> unit

val is_root : t -> Txn_id.t -> bool

val same_family : t -> Txn_id.t -> Txn_id.t -> bool

val is_strict_ancestor : t -> ancestor:Txn_id.t -> Txn_id.t -> bool
(** [is_strict_ancestor t ~ancestor x]: is [ancestor] a proper ancestor of
    [x] in the transaction tree? *)

val is_ancestor_or_self : t -> ancestor:Txn_id.t -> Txn_id.t -> bool

val children : t -> Txn_id.t -> Txn_id.t list
(** Direct children, in creation order. *)

val family_size : t -> Txn_id.t -> int
(** Number of transactions in the family of the given root (inclusive). *)

val count : t -> int
(** Total transactions ever created (unaffected by {!forget_family}). *)

val forget_family : t -> Txn_id.t -> unit
(** Drop the records of a completed family — the root and every
    descendant — so long runs need not retain every transaction ever
    created (the runtime's streaming mode). Ids are never reused, so
    forgetting cannot resurrect one; querying a forgotten id afterwards
    raises like any unknown id. *)
