(** Lock modes — multiple readers / single writer, per-object (the paper's
    chosen granularity). *)

type mode = Read | Write

val conflicts : mode -> mode -> bool
(** Read/Read is compatible; every other pairing conflicts. *)

val stronger_or_equal : mode -> mode -> bool
(** [stronger_or_equal a b]: does holding [a] subsume a request for [b]? *)

val max : mode -> mode -> mode
val equal : mode -> mode -> bool
val pp : Format.formatter -> mode -> unit
