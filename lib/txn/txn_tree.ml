type status = Active | Precommitted | Committed | Aborted

type record = {
  parent : Txn_id.t option;
  root : Txn_id.t;
  node : int;
  depth : int;
  mutable status : status;
  mutable children : Txn_id.t list;  (* reverse creation order *)
}

type t = { mutable next : int; table : record Txn_id.Table.t }

let create () = { next = 0; table = Txn_id.Table.create 256 }

let fresh t =
  let id = Txn_id.of_int t.next in
  t.next <- t.next + 1;
  id

let get t id =
  match Txn_id.Table.find_opt t.table id with
  | Some r -> r
  | None -> invalid_arg (Format.asprintf "Txn_tree: unknown transaction %a" Txn_id.pp id)

let create_root t ~node =
  let id = fresh t in
  Txn_id.Table.add t.table id
    { parent = None; root = id; node; depth = 0; status = Active; children = [] };
  id

let create_child ?node t ~parent =
  let p = get t parent in
  if p.status <> Active then
    invalid_arg
      (Format.asprintf "Txn_tree.create_child: parent %a is not active" Txn_id.pp parent);
  let id = fresh t in
  Txn_id.Table.add t.table id
    {
      parent = Some parent;
      root = p.root;
      node = Option.value node ~default:p.node;
      depth = p.depth + 1;
      status = Active;
      children = [];
    };
  p.children <- id :: p.children;
  id

let parent t id = (get t id).parent
let root_of t id = (get t id).root
let node_of t id = (get t id).node
let depth t id = (get t id).depth
let status t id = (get t id).status
let set_status t id s = (get t id).status <- s
let is_root t id = (get t id).parent = None
let same_family t a b = Txn_id.equal (root_of t a) (root_of t b)

let is_strict_ancestor t ~ancestor x =
  let rec climb cur =
    match (get t cur).parent with
    | None -> false
    | Some p -> Txn_id.equal p ancestor || climb p
  in
  climb x

let is_ancestor_or_self t ~ancestor x =
  Txn_id.equal ancestor x || is_strict_ancestor t ~ancestor x

let children t id = List.rev (get t id).children

let family_size t root =
  let rec count id = List.fold_left (fun acc c -> acc + count c) 1 (get t id).children in
  count root

let count t = t.next

let forget_family t root =
  (* Ids are never reused ([next] keeps counting), so dropping the records
     frees their memory without weakening the no-reuse fence. *)
  let rec drop id =
    match Txn_id.Table.find_opt t.table id with
    | None -> ()
    | Some r ->
        List.iter drop r.children;
        Txn_id.Table.remove t.table id
  in
  drop root
