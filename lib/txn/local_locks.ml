open Objmodel

type waiter = { w_txn : Txn_id.t; w_mode : Lock.mode; w_wake : unit -> unit }

(* Cached state of one family's global lock on one object. *)
type family_entry = {
  f_root : Txn_id.t;
  mutable f_mode : Lock.mode;  (* mode the GDO granted to this family *)
  mutable holders : (Txn_id.t * Lock.mode) list;
  mutable retained : (Txn_id.t * Lock.mode) list;
  mutable waiters : waiter list;  (* FIFO: append at tail *)
}

type outcome = Granted | Queued | Not_cached | Needs_upgrade

type t = {
  tree : Txn_tree.t;
  (* An object may be cached by several co-located families simultaneously
     (concurrent global readers), hence a list. *)
  entries : family_entry list ref Oid.Table.t;
}

let create tree = { tree; entries = Oid.Table.create 128 }

let entries_for t oid =
  match Oid.Table.find_opt t.entries oid with
  | Some l -> l
  | None ->
      let l = ref [] in
      Oid.Table.add t.entries oid l;
      l

let find_family_entry t oid ~family =
  match Oid.Table.find_opt t.entries oid with
  | None -> None
  | Some l -> List.find_opt (fun e -> Txn_id.equal e.f_root family) !l

(* Rule 1, with the permissive ancestor-hold extension: [txn] may take the
   lock if (a) every retainer is an ancestor of [txn], and (b) no
   *non-ancestor* holder conflicts with the requested mode. *)
let grantable t e ~txn ~mode =
  let is_anc other = Txn_tree.is_strict_ancestor t.tree ~ancestor:other txn in
  List.for_all (fun (r, _) -> is_anc r) e.retained
  && List.for_all
       (fun (h, hm) -> Txn_id.equal h txn || is_anc h || not (Lock.conflicts hm mode))
       e.holders

let add_holder e txn mode =
  (* A transaction re-acquiring in a stronger mode replaces its entry. *)
  let rest = List.filter (fun (h, _) -> not (Txn_id.equal h txn)) e.holders in
  let prev_mode =
    List.assoc_opt txn (List.filter (fun (h, _) -> Txn_id.equal h txn) e.holders)
  in
  let mode = match prev_mode with Some m -> Lock.max m mode | None -> mode in
  e.holders <- (txn, mode) :: rest

let wake_grantable t e =
  (* Grant to waiters (FIFO) while the head is grantable. *)
  let rec loop () =
    match e.waiters with
    | [] -> ()
    | w :: rest ->
        if grantable t e ~txn:w.w_txn ~mode:w.w_mode then begin
          e.waiters <- rest;
          add_holder e w.w_txn w.w_mode;
          w.w_wake ();
          loop ()
        end
  in
  loop ()

let acquire t oid ~txn ~mode ~wake =
  let family = Txn_tree.root_of t.tree txn in
  match find_family_entry t oid ~family with
  | None -> Not_cached
  | Some e ->
      if Lock.equal mode Lock.Write && Lock.equal e.f_mode Lock.Read then Needs_upgrade
      else if grantable t e ~txn ~mode then begin
        add_holder e txn mode;
        Granted
      end
      else begin
        e.waiters <- e.waiters @ [ { w_txn = txn; w_mode = mode; w_wake = wake } ];
        Queued
      end

let install_grant t oid ~txn ~mode =
  let family = Txn_tree.root_of t.tree txn in
  (match find_family_entry t oid ~family with
  | Some _ -> invalid_arg "Local_locks.install_grant: family already caches this object"
  | None -> ());
  let l = entries_for t oid in
  l := { f_root = family; f_mode = mode; holders = [ (txn, mode) ]; retained = []; waiters = [] }
       :: !l

let upgrade_granted t oid ~txn =
  let family = Txn_tree.root_of t.tree txn in
  match find_family_entry t oid ~family with
  | None -> invalid_arg "Local_locks.upgrade_granted: no cached entry"
  | Some e ->
      e.f_mode <- Lock.Write;
      add_holder e txn Lock.Write

let family_mode t oid ~family =
  match find_family_entry t oid ~family with None -> None | Some e -> Some e.f_mode

let held_mode t oid ~txn =
  let family = Txn_tree.root_of t.tree txn in
  match find_family_entry t oid ~family with
  | None -> None
  | Some e ->
      List.fold_left
        (fun acc (h, m) -> if Txn_id.equal h txn then Some m else acc)
        None e.holders

let retainers t oid ~family =
  match find_family_entry t oid ~family with None -> [] | Some e -> e.retained

(* Iterate over every entry belonging to [family]. *)
let iter_family_entries t ~family f =
  Oid.Table.iter
    (fun oid l -> List.iter (fun e -> if Txn_id.equal e.f_root family then f oid e) !l)
    t.entries

let add_retained e txn mode =
  let prev = List.assoc_opt txn e.retained in
  let rest = List.filter (fun (r, _) -> not (Txn_id.equal r txn)) e.retained in
  let mode = match prev with Some m -> Lock.max m mode | None -> mode in
  e.retained <- (txn, mode) :: rest

let precommit t txn =
  let parent =
    match Txn_tree.parent t.tree txn with
    | Some p -> p
    | None -> invalid_arg "Local_locks.precommit: root transactions use root_release"
  in
  let family = Txn_tree.root_of t.tree txn in
  iter_family_entries t ~family (fun _oid e ->
      let held = List.filter (fun (h, _) -> Txn_id.equal h txn) e.holders in
      let kept = List.filter (fun (r, _) -> not (Txn_id.equal r txn)) e.retained in
      let mine = List.filter (fun (r, _) -> Txn_id.equal r txn) e.retained in
      if held <> [] || mine <> [] then begin
        e.holders <- List.filter (fun (h, _) -> not (Txn_id.equal h txn)) e.holders;
        e.retained <- kept;
        List.iter (fun (_, m) -> add_retained e parent m) held;
        List.iter (fun (_, m) -> add_retained e parent m) mine;
        wake_grantable t e
      end)

let abort t txn ~to_release =
  let family = Txn_tree.root_of t.tree txn in
  let empty_objects = ref [] in
  iter_family_entries t ~family (fun oid e ->
      let involved =
        List.exists (fun (h, _) -> Txn_id.equal h txn) e.holders
        || List.exists (fun (r, _) -> Txn_id.equal r txn) e.retained
      in
      if involved then begin
        e.holders <- List.filter (fun (h, _) -> not (Txn_id.equal h txn)) e.holders;
        e.retained <- List.filter (fun (r, _) -> not (Txn_id.equal r txn)) e.retained;
        (* An ancestor who retains keeps retaining: nothing to do — its entry
           is untouched. If the family no longer has any interest, the global
           lock goes back to the GDO. *)
        if e.holders = [] && e.retained = [] && e.waiters = [] then
          empty_objects := oid :: !empty_objects
        else wake_grantable t e
      end);
  List.iter
    (fun oid ->
      let l = entries_for t oid in
      l := List.filter (fun e -> not (Txn_id.equal e.f_root family)) !l;
      to_release oid)
    !empty_objects

let root_release t ~root =
  let released = ref [] in
  iter_family_entries t ~family:root (fun oid _ -> released := oid :: !released);
  List.iter
    (fun oid ->
      let l = entries_for t oid in
      l := List.filter (fun e -> not (Txn_id.equal e.f_root root)) !l)
    !released;
  List.sort_uniq Oid.compare !released

let objects_of_family t ~family =
  let acc = ref [] in
  iter_family_entries t ~family (fun oid _ -> acc := oid :: !acc);
  List.sort_uniq Oid.compare !acc
