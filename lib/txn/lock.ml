type mode = Read | Write

let conflicts a b = match (a, b) with Read, Read -> false | _ -> true

let stronger_or_equal a b = match (a, b) with Write, _ -> true | Read, Read -> true | Read, Write -> false

let max a b = match (a, b) with Read, Read -> Read | _ -> Write

let equal a b = match (a, b) with Read, Read | Write, Write -> true | _ -> false

let pp fmt = function Read -> Format.pp_print_string fmt "R" | Write -> Format.pp_print_string fmt "W"
