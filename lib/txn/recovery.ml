type strategy = Undo_logging | Shadow_paging

let strategy_of_string s =
  match String.lowercase_ascii s with
  | "undo" | "undo-log" | "undo_logging" -> Ok Undo_logging
  | "shadow" | "shadow-pages" | "shadow_paging" -> Ok Shadow_paging
  | other -> Error (Printf.sprintf "unknown recovery strategy %S (expected undo|shadow)" other)

let strategy_to_string = function Undo_logging -> "undo" | Shadow_paging -> "shadow"

type t = Undo of Undo_log.t | Shadow of Shadow_pages.t

let create = function
  | Undo_logging -> Undo (Undo_log.create ())
  | Shadow_paging -> Shadow (Shadow_pages.create ())

let note_write t ~oid ~page ~pre_image =
  match t with
  | Undo log -> Undo_log.record log ~oid ~page ~prev_version:pre_image
  | Shadow sp -> Shadow_pages.note_write sp ~oid ~page ~pre_image

let merge_into_parent ~child ~parent =
  match (child, parent) with
  | Undo c, Undo p -> Undo_log.merge_into_parent ~child:c ~parent:p
  | Shadow c, Shadow p -> Shadow_pages.merge_into_parent ~child:c ~parent:p
  | _ -> invalid_arg "Recovery.merge_into_parent: mixed strategies"

let restore_plan = function
  | Undo log ->
      List.map
        (fun (r : Undo_log.record) -> (r.Undo_log.oid, r.Undo_log.page, r.Undo_log.prev_version))
        (Undo_log.entries_newest_first log)
  | Shadow sp -> Shadow_pages.shadows sp

let restore_cost_units = function
  | Undo log -> Undo_log.length log
  | Shadow sp -> Shadow_pages.page_count sp

let dirty_pages = function
  | Undo log -> Undo_log.dirty_pages log
  | Shadow sp -> Shadow_pages.dirty_pages sp

let is_empty = function
  | Undo log -> Undo_log.is_empty log
  | Shadow sp -> Shadow_pages.is_empty sp

let clear = function Undo log -> Undo_log.clear log | Shadow sp -> Shadow_pages.clear sp
