(** Per-transaction recovery state, abstracting over the paper's two local
    UNDO mechanisms: undo logs and shadow pages (§4.1). Both record enough
    to restore every page the transaction (and its pre-committed
    descendants) wrote; they differ in bookkeeping — a log entry per write
    versus a snapshot per first-touched page. *)

type strategy = Undo_logging | Shadow_paging

val strategy_of_string : string -> (strategy, string) result
val strategy_to_string : strategy -> string

type t

val create : strategy -> t

val note_write : t -> oid:Objmodel.Oid.t -> page:int -> pre_image:int -> unit
(** Record that the transaction is writing the page whose current (about to
    be overwritten) version is [pre_image]. *)

val merge_into_parent : child:t -> parent:t -> unit
(** Pre-commit disposition; the child becomes empty.
    @raise Invalid_argument if the two use different strategies. *)

val restore_plan : t -> (Objmodel.Oid.t * int * int) list
(** The (object, page, version) restores an abort must apply, in order.
    Applying them sequentially over a page store returns every touched page
    to its pre-transaction version. *)

val restore_cost_units : t -> int
(** Work units an abort costs: log entries replayed, or shadow pages
    reinstated. *)

val dirty_pages : t -> (Objmodel.Oid.t * int) list
(** Deduplicated pages written — the dirty-page info piggybacked on the
    family's global release. *)

val is_empty : t -> bool
val clear : t -> unit
