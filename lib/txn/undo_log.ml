open Objmodel

type record = { oid : Oid.t; page : int; prev_version : int }

type t = { mutable records : record list (* newest first *) }

let create () = { records = [] }

let record t ~oid ~page ~prev_version = t.records <- { oid; page; prev_version } :: t.records

let merge_into_parent ~child ~parent =
  parent.records <- child.records @ parent.records;
  child.records <- []

let entries_newest_first t = t.records

let dirty_pages t =
  let module PS = Set.Make (struct
    type t = Oid.t * int

    let compare (o1, p1) (o2, p2) =
      let c = Oid.compare o1 o2 in
      if c <> 0 then c else Int.compare p1 p2
  end) in
  let set = List.fold_left (fun acc r -> PS.add (r.oid, r.page) acc) PS.empty t.records in
  PS.elements set

let is_empty t = t.records = []
let length t = List.length t.records
let clear t = t.records <- []
