(** Transaction identifiers.

    Every method invocation is a transaction; identifiers are unique across
    the whole simulated system and never reused (a retried root is a new
    transaction). *)

type t = private int

val of_int : int -> t
val to_int : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
module Table : Hashtbl.S with type key = t
