type t = {
  timeout_us : float;
  last_heard : float array;
  hinted : bool array;
  mutable self : int option;
}

let create ~node_count ~timeout_us =
  if node_count <= 0 then invalid_arg "Failure_detector.create: node_count must be positive";
  if timeout_us <= 0.0 then invalid_arg "Failure_detector.create: timeout_us must be positive";
  {
    timeout_us;
    last_heard = Array.make node_count 0.0;
    hinted = Array.make node_count false;
    self = None;
  }

let heartbeat t ~node ~now =
  if now >= t.last_heard.(node) then begin
    t.last_heard.(node) <- now;
    t.hinted.(node) <- false
  end

let hint t ~node = t.hinted.(node) <- true

let is_suspect t ~node ~now =
  t.hinted.(node) || now -. t.last_heard.(node) > t.timeout_us

let suspects t ~now =
  let out = ref [] in
  for node = Array.length t.last_heard - 1 downto 0 do
    if t.self <> Some node && is_suspect t ~node ~now then out := node :: !out
  done;
  !out

let last_heard t ~node = t.last_heard.(node)
let node_count t = Array.length t.last_heard
let self t = t.self
let set_self t node = t.self <- Some node
