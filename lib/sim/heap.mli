(** Array-based binary min-heap, specialised by a user ordering.

    Used as the event queue of the discrete-event engine; kept polymorphic so
    tests and other substrates can reuse it. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** Empty heap ordered by [cmp] (minimum first). *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Minimum element without removing it. *)

val pop : 'a t -> 'a option
(** Remove and return the minimum element. *)

val pop_if : 'a t -> before:('a -> bool) -> 'a option
(** [pop_if t ~before] removes and returns the minimum element if
    [before] holds for it, examining the root only once — the
    peek-then-pop idiom without the second root comparison. Returns
    [None] (leaving the heap unchanged) when the heap is empty or the
    predicate rejects the minimum. *)

val pop_exn : 'a t -> 'a
(** @raise Invalid_argument on an empty heap. *)

val clear : 'a t -> unit

val to_sorted_list : 'a t -> 'a list
(** Drain a copy of the heap in ascending order (the heap is unchanged). *)
