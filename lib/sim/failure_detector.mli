(** Heartbeat-based failure detection state for one observer node.

    Each node keeps one detector instance recording, per peer, the
    simulated time of the last heartbeat heard from it. A peer becomes a
    {e suspect} when no heartbeat has arrived for longer than the
    configured timeout, or when the reliable transport gave up delivering
    to it ({!hint} — exhausting [max_retransmits] is strong evidence the
    peer is unreachable).

    The module is a pure data structure in the style of [Gdo.Directory]:
    it records observations and answers queries; all messaging, timer
    scheduling and the actual dead-declaration protocol live in the
    runtime. Because the simulation has ground truth about crashes, the
    runtime confirms every suspicion against the node's real state before
    declaring it dead — modelling an eventually-perfect failure detector
    (◊P): suspicions may be raised about slow-but-live peers, but no live
    peer is ever {e declared} dead (see DESIGN.md, "Failure model &
    recovery"). *)

type t

val create : node_count:int -> timeout_us:float -> t
(** Fresh detector for an observer among [node_count] nodes. Every peer
    starts as heard-from at time 0, so nothing is suspect before
    [timeout_us] of silence has elapsed.
    @raise Invalid_argument on a non-positive node count or timeout. *)

val heartbeat : t -> node:int -> now:float -> unit
(** A heartbeat from [node] arrived at [now]: it is alive — clear any
    standing suspicion (including transport hints). Times are monotonic
    per the simulation clock; an out-of-order observation is ignored. *)

val hint : t -> node:int -> unit
(** The transport exhausted its retransmit budget against [node]: mark it
    immediately suspect without waiting for the heartbeat timeout. The
    hint stands until the next {!heartbeat} from the node. *)

val is_suspect : t -> node:int -> now:float -> bool
(** [node] is hinted, or silent for strictly longer than the timeout. *)

val suspects : t -> now:float -> int list
(** All suspect peers in ascending node order (deterministic iteration
    for the declaration protocol). The observer itself is never listed. *)

val last_heard : t -> node:int -> float
(** Time of the last liveness proof received from [node] (0 if never) —
    the start of its current silence, for declaration-latency metrics. *)

val node_count : t -> int
val self : t -> int option

val set_self : t -> int -> unit
(** Record which node this detector observes for; that node is excluded
    from {!suspects}. *)
