type window_kind = Pause | Crash

type window = {
  w_node : int;
  w_kind : window_kind;
  w_from_us : float;
  w_until_us : float;
}

type link_kind =
  | Partition of int list
  | One_way of { cut_src : int; cut_dst : int }
  | Slow of { slow_src : int; slow_dst : int; extra_us : float }

type link_window = {
  lw_kind : link_kind;
  lw_from_us : float;
  lw_until_us : float;
}

type config = {
  seed : int;
  drop_probability : float;
  duplicate_probability : float;
  delay_jitter_us : float;
  windows : window list;
  link_windows : link_window list;
}

let none =
  {
    seed = 0;
    drop_probability = 0.0;
    duplicate_probability = 0.0;
    delay_jitter_us = 0.0;
    windows = [];
    link_windows = [];
  }

let is_active c =
  c.drop_probability > 0.0
  || c.duplicate_probability > 0.0
  || c.delay_jitter_us > 0.0
  || c.windows <> []
  || c.link_windows <> []

let validate c =
  let check cond msg = if cond then Ok () else Error msg in
  let ( let* ) = Result.bind in
  let prob name v = check (v >= 0.0 && v <= 1.0) (name ^ " must be in [0,1]") in
  let* () = prob "drop_probability" c.drop_probability in
  let* () = prob "duplicate_probability" c.duplicate_probability in
  let* () = check (c.delay_jitter_us >= 0.0) "delay_jitter_us must be >= 0" in
  let* () =
    List.fold_left
      (fun acc w ->
        let* () = acc in
        let* () = check (w.w_node >= 0) "fault window node must be >= 0" in
        let* () = check (w.w_from_us >= 0.0) "fault window start must be >= 0" in
        check (w.w_until_us >= w.w_from_us) "fault window must not end before it starts")
      (Ok ()) c.windows
  in
  List.fold_left
    (fun acc lw ->
      let* () = acc in
      let* () =
        check (lw.lw_from_us >= 0.0) "link window start must be >= 0"
      in
      let* () =
        check (lw.lw_until_us >= lw.lw_from_us)
          "link window must not end before it starts"
      in
      match lw.lw_kind with
      | Partition group ->
          let* () = check (group <> []) "partition group must be non-empty" in
          check (List.for_all (fun n -> n >= 0) group)
            "partition group nodes must be >= 0"
      | One_way { cut_src; cut_dst } ->
          let* () =
            check (cut_src >= 0 && cut_dst >= 0) "link cut nodes must be >= 0"
          in
          check (cut_src <> cut_dst) "link cut endpoints must differ"
      | Slow { slow_src; slow_dst; extra_us } ->
          let* () =
            check (slow_src >= 0 && slow_dst >= 0) "slow link nodes must be >= 0"
          in
          let* () = check (slow_src <> slow_dst) "slow link endpoints must differ" in
          check (extra_us >= 0.0) "slow link extra delay must be >= 0")
    (Ok ()) c.link_windows

let crash_windows c = List.filter (fun w -> w.w_kind = Crash) c.windows
let has_crash_windows c = List.exists (fun w -> w.w_kind = Crash) c.windows
let has_link_windows c = c.link_windows <> []

type event =
  | Drop
  | Duplicate
  | Crash_drop
  | Pause_defer
  | Partition_drop
  | Link_cut_drop
  | Slow_defer

let event_to_string = function
  | Drop -> "drop"
  | Duplicate -> "duplicate"
  | Crash_drop -> "crash-drop"
  | Pause_defer -> "pause-defer"
  | Partition_drop -> "partition-drop"
  | Link_cut_drop -> "link-cut-drop"
  | Slow_defer -> "slow-defer"

type stats = {
  mutable drops : int;
  mutable duplicates : int;
  mutable crash_drops : int;
  mutable pause_defers : int;
  mutable partition_drops : int;
  mutable link_cut_drops : int;
  mutable slow_defers : int;
}

let zero_stats () =
  {
    drops = 0;
    duplicates = 0;
    crash_drops = 0;
    pause_defers = 0;
    partition_drops = 0;
    link_cut_drops = 0;
    slow_defers = 0;
  }

let count s = function
  | Drop -> s.drops <- s.drops + 1
  | Duplicate -> s.duplicates <- s.duplicates + 1
  | Crash_drop -> s.crash_drops <- s.crash_drops + 1
  | Pause_defer -> s.pause_defers <- s.pause_defers + 1
  | Partition_drop -> s.partition_drops <- s.partition_drops + 1
  | Link_cut_drop -> s.link_cut_drops <- s.link_cut_drops + 1
  | Slow_defer -> s.slow_defers <- s.slow_defers + 1

let total_faults s =
  s.drops + s.duplicates + s.crash_drops + s.pause_defers + s.partition_drops
  + s.link_cut_drops + s.slow_defers

let pp_config fmt c =
  Format.fprintf fmt
    "drop %.3f, dup %.3f, jitter %.1f us, %d window(s), %d link window(s) (seed %d)"
    c.drop_probability c.duplicate_probability c.delay_jitter_us
    (List.length c.windows)
    (List.length c.link_windows)
    c.seed
