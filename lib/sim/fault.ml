type window_kind = Pause | Crash

type window = {
  w_node : int;
  w_kind : window_kind;
  w_from_us : float;
  w_until_us : float;
}

type config = {
  seed : int;
  drop_probability : float;
  duplicate_probability : float;
  delay_jitter_us : float;
  windows : window list;
}

let none =
  {
    seed = 0;
    drop_probability = 0.0;
    duplicate_probability = 0.0;
    delay_jitter_us = 0.0;
    windows = [];
  }

let is_active c =
  c.drop_probability > 0.0
  || c.duplicate_probability > 0.0
  || c.delay_jitter_us > 0.0
  || c.windows <> []

let validate c =
  let check cond msg = if cond then Ok () else Error msg in
  let ( let* ) = Result.bind in
  let prob name v = check (v >= 0.0 && v <= 1.0) (name ^ " must be in [0,1]") in
  let* () = prob "drop_probability" c.drop_probability in
  let* () = prob "duplicate_probability" c.duplicate_probability in
  let* () = check (c.delay_jitter_us >= 0.0) "delay_jitter_us must be >= 0" in
  List.fold_left
    (fun acc w ->
      let* () = acc in
      let* () = check (w.w_node >= 0) "fault window node must be >= 0" in
      let* () = check (w.w_from_us >= 0.0) "fault window start must be >= 0" in
      check (w.w_until_us >= w.w_from_us) "fault window must not end before it starts")
    (Ok ()) c.windows

let crash_windows c = List.filter (fun w -> w.w_kind = Crash) c.windows
let has_crash_windows c = List.exists (fun w -> w.w_kind = Crash) c.windows

type event = Drop | Duplicate | Crash_drop | Pause_defer

let event_to_string = function
  | Drop -> "drop"
  | Duplicate -> "duplicate"
  | Crash_drop -> "crash-drop"
  | Pause_defer -> "pause-defer"

type stats = {
  mutable drops : int;
  mutable duplicates : int;
  mutable crash_drops : int;
  mutable pause_defers : int;
}

let zero_stats () = { drops = 0; duplicates = 0; crash_drops = 0; pause_defers = 0 }

let count s = function
  | Drop -> s.drops <- s.drops + 1
  | Duplicate -> s.duplicates <- s.duplicates + 1
  | Crash_drop -> s.crash_drops <- s.crash_drops + 1
  | Pause_defer -> s.pause_defers <- s.pause_defers + 1

let total_faults s = s.drops + s.duplicates + s.crash_drops + s.pause_defers

let pp_config fmt c =
  Format.fprintf fmt "drop %.3f, dup %.3f, jitter %.1f us, %d window(s) (seed %d)"
    c.drop_probability c.duplicate_probability c.delay_jitter_us (List.length c.windows)
    c.seed
