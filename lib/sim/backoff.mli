(** Capped, decorrelated retransmit backoff.

    Plain exponential backoff has two failure modes under a partition: the
    delay doubles without bound (a long outage pushes the next retry far
    past the heal), and every node that lost a message at the same instant
    retries at the same instant — a synchronized retry storm when the link
    heals. This module implements the standard fix, "decorrelated jitter"
    (AWS Architecture Blog, 2015): each retry delay is drawn uniformly from
    [base, 3 * prev) and clamped to a cap, from a per-node PRNG stream
    derived from the fault seed. Growth stays roughly exponential in
    expectation, the cap bounds the post-heal recovery time, and no two
    nodes share a retry schedule.

    Streams are seed-deterministic: the same (seed, node) pair always
    yields the same schedule, so faulty runs stay exactly reproducible.
    The transport only consults this module when reliable delivery is
    armed, so fault-free runs draw nothing and remain byte-identical. *)

type t

val stream : seed:int -> node:int -> base_us:float -> cap_us:float -> t
(** [stream ~seed ~node ~base_us ~cap_us] derives the node's private
    backoff stream. The node id is mixed into the seed (splitmix64 gamma)
    so sibling streams decorrelate in every bit.
    @raise Invalid_argument if [base_us <= 0] or [cap_us < base_us]. *)

val next : t -> prev_us:float -> float
(** [next t ~prev_us] draws the delay to wait after a retransmit whose
    previous delay was [prev_us]: uniform in [base, max base (3 * prev)),
    clamped to the cap. *)

val first : t -> float
(** The initial (pre-retransmit) timeout: the configured base. *)

val cap : t -> float
(** The configured cap. *)
