type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let s = bits64 t in
  { state = mix s }

let copy t = { state = t.state }

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  let mask = Int64.of_int max_int in
  let v = Int64.to_int (Int64.logand (bits64 t) mask) in
  v mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Prng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 random bits scaled into [0, 1). *)
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (v /. 9007199254740992.0)

let bool t = Int64.logand (bits64 t) 1L = 1L

let bernoulli t p = float t 1.0 < p

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Prng.pick: empty array";
  arr.(int t (Array.length arr))

let pick_list t l =
  match l with
  | [] -> invalid_arg "Prng.pick_list: empty list"
  | _ -> List.nth l (int t (List.length l))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample_without_replacement t k n =
  if k > n then invalid_arg "Prng.sample_without_replacement: k > n";
  let arr = Array.init n (fun i -> i) in
  shuffle t arr;
  Array.to_list (Array.sub arr 0 k)

let exponential t ~mean =
  let u = 1.0 -. float t 1.0 in
  -. mean *. log u

let geometric t ~p =
  (* Total over all float inputs, always consuming exactly one draw, so a
     malformed parameter can neither raise nor desynchronise the stream:
     NaN and p >= 1 degenerate to the point mass at 0; p <= 0 clamps to a
     tiny success probability (log 1.0 = 0 would otherwise divide by
     zero); a non-finite or negative quotient clamps to 0 and an
     overflowing one to max_int. *)
  let p = if Float.is_nan p then 1.0 else Float.min 1.0 (Float.max 1e-12 p) in
  let u = 1.0 -. float t 1.0 in
  if p >= 1.0 then 0
  else
    let x = Float.floor (log u /. log (1.0 -. p)) in
    if Float.is_nan x || x < 0.0 then 0
    else if x >= float_of_int max_int then max_int
    else int_of_float x
