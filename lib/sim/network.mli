(** Simulated cluster interconnect.

    Models a switched (collision-free) network, as in the paper's target
    environment: each message experiences a fixed per-message software cost
    (protocol-stack overhead at the endpoints) plus a serialisation term
    [size_bytes * 8 / bandwidth]. There is no link contention — the paper's
    system-area-network assumption.

    Nodes are dense integer identifiers [0 .. node_count - 1]. Each node
    registers a handler for incoming one-way messages; request/reply
    interactions are built above this in the runtime using
    {!Engine.Ivar}s. The network is polymorphic in the payload type ['msg]
    so the runtime supplies its own message variant. *)

type 'msg t

(** Link parameters. *)
type link = {
  bandwidth_bps : float;  (** bits per second, e.g. 1e8 for 100 Mbps *)
  software_cost_us : float;  (** per-message startup overhead, microseconds *)
}

val link_10mbps : link
val link_100mbps : link
val link_1gbps : link
(** The three networks of Figures 6–8, with the paper's default 20 µs
    software cost. *)

val transfer_time_us : link -> int -> float
(** [transfer_time_us link bytes] is the end-to-end latency of one message of
    [bytes] bytes: software cost plus serialisation time. Exposed so
    experiments can replay a message ledger through alternative link
    parameters (Figures 6–8). *)

(** Classification recorded with every message, used by the metrics layer to
    attribute traffic. *)
type kind =
  | Control  (** lock requests/grants/releases, directory traffic *)
  | Data  (** page payloads *)

type stats = {
  mutable messages : int;
  mutable bytes : int;
  mutable control_messages : int;
  mutable control_bytes : int;
  mutable data_messages : int;
  mutable data_bytes : int;
}

val create :
  engine:Engine.t ->
  node_count:int ->
  link:link ->
  ?faults:Fault.config ->
  ?on_fault:(event:Fault.event -> src:int -> dst:int -> unit) ->
  ?on_message:(src:int -> dst:int -> kind:kind -> bytes:int -> tag:int -> unit) ->
  unit ->
  'msg t
(** [create ~engine ~node_count ~link ()] builds the interconnect. The
    optional [on_message] hook fires once per remote message sent (at send
    time); the DSM metrics ledger uses it to attribute traffic to objects —
    [tag] carries the object identifier (or [-1] for untagged traffic).

    [faults] arms the fault injector (see {!Fault}): remote messages may be
    dropped, duplicated, jittered, deferred past a node pause window, lost
    to a node crash window, lost crossing a partition or one-way link cut,
    or delayed by a slow-link window, with any randomness drawn from a
    dedicated PRNG seeded from the config so runs stay reproducible. An inactive config
    ({!Fault.is_active} [= false]) is equivalent to no config at all — the
    reliable code path runs and no random bits are drawn. [on_fault] fires
    once per injected fault event (also tallied in {!fault_stats}).
    @raise Invalid_argument if an active [faults] config fails
    {!Fault.validate}. *)

val node_count : _ t -> int
val link : _ t -> link
val stats : _ t -> stats

val fault_stats : _ t -> Fault.stats
(** Injected-fault tallies; all zero when no active fault config. *)

val faults_active : _ t -> bool
(** Whether an active fault config was installed at {!create} time. *)

val set_handler : 'msg t -> node:int -> (src:int -> 'msg -> unit) -> unit
(** Install the message handler for [node]. Handlers run as plain callbacks
    when the message is delivered and must not block; they may spawn
    fibers. *)

val send : 'msg t -> src:int -> dst:int -> kind:kind -> bytes:int -> tag:int -> 'msg -> unit
(** One-way message, delivered to the destination handler after the link
    latency. Same-node sends ([src = dst]) are delivered after a negligible
    local-delivery cost and are neither counted in {!stats} nor reported to
    [on_message]. They are exempt from drops, duplicates and jitter (no
    wire is traversed, and no random bits are drawn) but {e not} from the
    node's own fault windows: a self-send into the node's crash window is
    swallowed (counted as a crash drop), one into a pause window is
    deferred to the window's end.

    Delivery is FIFO per ordered (src, dst) pair, as a connection-oriented
    transport provides: a later, smaller message never overtakes an earlier,
    larger one on the same channel. (Without this, a lock re-acquisition
    could overtake the in-flight release it must follow.) Messages between
    different pairs are independent. Fault injection preserves the channel
    FIFO: jittered, deferred and duplicated deliveries are clamped to the
    channel's latest scheduled arrival, so faults delay or lose messages but
    never reorder a channel. *)

val local_delivery_cost_us : float
(** Cost charged for a same-node "message" (a local procedure call). *)
