(** Bounded in-memory event tracing.

    A ring buffer of timestamped, categorised events. The runtime records
    protocol-level events (lock grants, transfers, commits, aborts) into a
    trace when one is configured; the CLI's [trace] command prints the tail
    of a run's timeline. Bounded capacity keeps long simulations from
    accumulating unbounded state — the oldest events are dropped and
    counted. *)

type event = { time : float; category : string; detail : string }

type t

val create : capacity:int -> t
(** @raise Invalid_argument if [capacity <= 0]. *)

val record : t -> time:float -> category:string -> detail:string -> unit

val recordf :
  t -> time:float -> category:string -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Formatted variant; the detail string is only built if the trace has
    capacity (it always does — the ring overwrites — so this is purely a
    convenience). *)

val events : t -> event list
(** Retained events, oldest first. *)

val latest : t -> int -> event list
(** The last [n] events, oldest first. *)

val length : t -> int
(** Events currently retained (≤ capacity). *)

val dropped : t -> int
(** Events evicted by the ring so far. *)

val total : t -> int
(** Events ever recorded. *)

val clear : t -> unit

val categories : t -> (string * int) list
(** Retained event counts per category, sorted by name. *)

val pp_event : Format.formatter -> event -> unit
(** ["[   123.4us] lock: ..."]. *)
