(** Bounded in-memory event tracing.

    A ring buffer of timestamped entries, polymorphic in the event payload:
    the simulation layer provides the ring mechanics, the layers above
    provide the event type (the runtime records typed {e protocol} events —
    see [Dsm.Event] — and the CLI's [trace] command renders the tail of a
    run's timeline from them). Bounded capacity keeps long simulations from
    accumulating unbounded state — the oldest entries are overwritten and
    counted as dropped. *)

type 'a entry = { time : float; data : 'a }
(** One recorded event: simulated timestamp (microseconds) plus payload. *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument if [capacity <= 0]. *)

val record : 'a t -> time:float -> 'a -> unit
(** Append an entry, overwriting the oldest once the ring is full. The
    payload is taken as-is; callers that build payloads lazily should guard
    on the trace's presence themselves (see [Core.Runtime]'s
    [record_event]). *)

val events : 'a t -> 'a entry list
(** Retained entries, oldest first. *)

val latest : 'a t -> int -> 'a entry list
(** The last [n] entries, oldest first. *)

val length : 'a t -> int
(** Entries currently retained (≤ capacity). *)

val dropped : 'a t -> int
(** Entries evicted by the ring so far. *)

val total : 'a t -> int
(** Entries ever recorded. *)

val clear : 'a t -> unit

val counts : 'a t -> label:('a -> string) -> (string * int) list
(** Retained entry counts grouped by [label], sorted by label. *)

val pp_entry :
  (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a entry -> unit
(** [pp_entry pp_data fmt e] prints ["[   123.4us] <data>"] with [pp_data]
    rendering the payload. *)
