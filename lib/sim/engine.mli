(** Discrete-event simulation engine with lightweight processes.

    Time is simulated and measured in microseconds (float). Processes
    ("fibers") are written as ordinary sequential OCaml code; blocking
    operations ([wait], [Ivar.read], [Mailbox.take]) are implemented with
    OCaml 5 effect handlers, so a fiber suspends without tying up the host
    thread and is resumed by the engine when its wake-up condition fires.

    The engine is single-threaded and deterministic: events scheduled for the
    same instant fire in scheduling order. *)

type t

exception Stalled of string
(** Raised by {!run} when fibers remain suspended but no event can ever wake
    them — a simulation-level deadlock (distinct from the transaction-level
    deadlocks the DSM layer detects and resolves). *)

val create : unit -> t

val now : t -> float
(** Current simulated time in microseconds. *)

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** [schedule t ~delay f] runs [f] at [now t +. delay]. [delay] must be
    non-negative. [f] runs as a plain callback, not a fiber: it must not
    block. *)

val spawn : t -> ?name:string -> (unit -> unit) -> unit
(** [spawn t f] starts a new fiber executing [f] at the current time. The
    fiber may call the blocking operations below. An exception escaping a
    fiber aborts the whole simulation run. *)

val wait : float -> unit
(** Suspend the calling fiber for the given number of microseconds.
    Must be called from within a fiber. *)

val suspend : ((unit -> unit) -> unit) -> unit
(** [suspend register] blocks the calling fiber and passes its wake-up
    callback to [register]; invoking the callback schedules the fiber to
    resume at the then-current time. The low-level primitive beneath
    {!Ivar.read}, {!Semaphore.acquire} and {!Mailbox.take}. Must be called
    from within a fiber.
    @raise Invalid_argument if the wake-up callback is invoked twice. *)

val fiber_count : t -> int
(** Number of fibers spawned and not yet finished. *)

val run : t -> unit
(** Process events until the queue is empty. If fibers are still suspended
    when the queue drains, raises {!Stalled} with a description of the stuck
    fibers.

    @raise Stalled see above. *)

val run_for : t -> float -> unit
(** [run_for t d] processes events up to time [now t +. d], then stops
    (suspended fibers are left suspended; no stall check). *)

(** Profiling counters, maintained unconditionally (they are a handful of
    integer stores per event). *)
type stats = {
  dispatched : int;  (** events executed since {!create} *)
  scheduled : int;  (** events enqueued since {!create} *)
  pending : int;  (** events currently in the queue *)
  max_queue : int;  (** high-water mark of the event queue *)
}

val stats : t -> stats

(** Write-once cells: the unit of fiber synchronisation. *)
module Ivar : sig
  type 'a t

  val create : unit -> 'a t

  val is_filled : 'a t -> bool

  val peek : 'a t -> 'a option

  val fill : 'a t -> 'a -> unit
  (** Fill the cell and schedule every waiting fiber to resume at the current
      time. @raise Invalid_argument if already filled. *)

  val read : 'a t -> 'a
  (** Return the value, suspending the calling fiber until the cell is
      filled. Must be called from within a fiber. *)
end

(** Counting semaphores over fibers — model shared resources such as a
    node's CPU. FIFO handoff: permits go to waiters in arrival order. *)
module Semaphore : sig
  type t

  val create : permits:int -> t
  (** @raise Invalid_argument if [permits <= 0]. *)

  val acquire : t -> unit
  (** Take a permit, suspending the calling fiber while none is free. Must
      be called from within a fiber. *)

  val release : t -> unit
  (** Return a permit; wakes the longest-waiting fiber if any.
      @raise Invalid_argument when releasing above the initial permit
      count. *)

  val with_permit : t -> (unit -> 'a) -> 'a
  (** [with_permit s f] brackets [f] with acquire/release, releasing on
      exceptions too. *)

  val available : t -> int
  val waiting : t -> int
end

(** Unbounded FIFO queues with blocking take. *)
module Mailbox : sig
  type 'a t

  val create : unit -> 'a t

  val put : 'a t -> 'a -> unit
  (** Enqueue a value; wakes one blocked taker if any. *)

  val take : 'a t -> 'a
  (** Dequeue, suspending the calling fiber while the mailbox is empty. *)

  val length : 'a t -> int
end
