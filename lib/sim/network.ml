type link = { bandwidth_bps : float; software_cost_us : float }

let default_software_cost_us = 20.0

let link_10mbps = { bandwidth_bps = 1e7; software_cost_us = default_software_cost_us }
let link_100mbps = { bandwidth_bps = 1e8; software_cost_us = default_software_cost_us }
let link_1gbps = { bandwidth_bps = 1e9; software_cost_us = default_software_cost_us }

let transfer_time_us link bytes =
  link.software_cost_us +. (float_of_int bytes *. 8.0 /. link.bandwidth_bps *. 1e6)

type kind = Control | Data

type stats = {
  mutable messages : int;
  mutable bytes : int;
  mutable control_messages : int;
  mutable control_bytes : int;
  mutable data_messages : int;
  mutable data_bytes : int;
}

type 'msg t = {
  engine : Engine.t;
  node_count : int;
  link : link;
  handlers : (src:int -> 'msg -> unit) option array;
  stats : stats;
  on_message : (src:int -> dst:int -> kind:kind -> bytes:int -> tag:int -> unit) option;
  (* FIFO channels: absolute delivery time of the last message per ordered
     (src, dst) pair; a later send never arrives before it. *)
  last_delivery : float array;
  (* Fault injection: present only when the config is active, so a run
     without faults draws nothing from any PRNG and schedules exactly the
     events the reliable network would. Windows are kept sorted by start
     time so a pause deferral only ever lands in a later window. *)
  faults : (Fault.config * Prng.t) option;
  fault_stats : Fault.stats;
  on_fault : (event:Fault.event -> src:int -> dst:int -> unit) option;
}

let local_delivery_cost_us = 0.1

let create ~engine ~node_count ~link ?faults ?on_fault ?on_message () =
  if node_count <= 0 then invalid_arg "Network.create: node_count must be positive";
  let faults =
    match faults with
    | Some fc when Fault.is_active fc ->
        (match Fault.validate fc with
        | Ok () -> ()
        | Error msg -> invalid_arg ("Network.create: " ^ msg));
        let fc =
          {
            fc with
            Fault.windows =
              List.sort
                (fun a b -> Float.compare a.Fault.w_from_us b.Fault.w_from_us)
                fc.Fault.windows;
            Fault.link_windows =
              List.sort
                (fun a b -> Float.compare a.Fault.lw_from_us b.Fault.lw_from_us)
                fc.Fault.link_windows;
          }
        in
        Some (fc, Prng.create ~seed:fc.Fault.seed)
    | Some _ | None -> None
  in
  {
    engine;
    node_count;
    link;
    handlers = Array.make node_count None;
    stats =
      {
        messages = 0;
        bytes = 0;
        control_messages = 0;
        control_bytes = 0;
        data_messages = 0;
        data_bytes = 0;
      };
    on_message;
    last_delivery = Array.make (node_count * node_count) neg_infinity;
    faults;
    fault_stats = Fault.zero_stats ();
    on_fault;
  }

let node_count t = t.node_count
let link t = t.link
let stats t = t.stats
let fault_stats t = t.fault_stats
let faults_active t = t.faults <> None

let check_node t node =
  if node < 0 || node >= t.node_count then invalid_arg "Network: node id out of range"

let set_handler t ~node handler =
  check_node t node;
  t.handlers.(node) <- Some handler

let deliver t ~src ~dst msg =
  match t.handlers.(dst) with
  | None -> invalid_arg (Printf.sprintf "Network: node %d has no handler" dst)
  | Some h -> h ~src msg

let record_fault t ~event ~src ~dst =
  Fault.count t.fault_stats event;
  match t.on_fault with Some f -> f ~event ~src ~dst | None -> ()

(* Route [arrival] through the destination's scheduled windows: pause windows
   defer it to their end (rescanning only later windows — the list is sorted
   by start), a crash window swallows the message. *)
let rec through_windows t ~src ~dst arrival = function
  | [] -> Some arrival
  | w :: rest ->
      if w.Fault.w_node = dst && arrival >= w.Fault.w_from_us && arrival < w.Fault.w_until_us
      then
        match w.Fault.w_kind with
        | Fault.Crash ->
            record_fault t ~event:Fault.Crash_drop ~src ~dst;
            None
        | Fault.Pause ->
            record_fault t ~event:Fault.Pause_defer ~src ~dst;
            through_windows t ~src ~dst w.Fault.w_until_us rest
      else through_windows t ~src ~dst arrival rest

(* Route [arrival] through the scheduled link windows: a partition window
   swallows messages crossing the split (one endpoint in the group, the other
   out), a one-way cut swallows messages on its directed link, and a slow-link
   window adds a fixed extra delay (the message survives and is later clamped
   to the channel FIFO). The list is sorted by start time, so a slow-delayed
   arrival only ever lands in a later window. No randomness is drawn. *)
let rec through_link_windows t ~src ~dst arrival = function
  | [] -> Some arrival
  | lw :: rest ->
      if arrival >= lw.Fault.lw_from_us && arrival < lw.Fault.lw_until_us then
        match lw.Fault.lw_kind with
        | Fault.Partition group ->
            if List.mem src group <> List.mem dst group then begin
              record_fault t ~event:Fault.Partition_drop ~src ~dst;
              None
            end
            else through_link_windows t ~src ~dst arrival rest
        | Fault.One_way { cut_src; cut_dst } ->
            if src = cut_src && dst = cut_dst then begin
              record_fault t ~event:Fault.Link_cut_drop ~src ~dst;
              None
            end
            else through_link_windows t ~src ~dst arrival rest
        | Fault.Slow { slow_src; slow_dst; extra_us } ->
            if src = slow_src && dst = slow_dst then begin
              record_fault t ~event:Fault.Slow_defer ~src ~dst;
              through_link_windows t ~src ~dst (arrival +. extra_us) rest
            end
            else through_link_windows t ~src ~dst arrival rest
      else through_link_windows t ~src ~dst arrival rest

(* Schedule one (possibly perturbed) delivery and keep the channel FIFO: the
   recorded last-delivery time only moves forward, and every arrival is
   clamped to it, so jitter and duplicates never reorder a channel. *)
let schedule_delivery t ~src ~dst ~channel ~arrival msg =
  let arrival = Float.max arrival t.last_delivery.(channel) in
  t.last_delivery.(channel) <- arrival;
  let now = Engine.now t.engine in
  Engine.schedule t.engine ~delay:(arrival -. now) (fun () -> deliver t ~src ~dst msg)

let inject t ~fc ~prng ~src ~dst ~channel ~base_arrival msg =
  if fc.Fault.drop_probability > 0.0 && Prng.bernoulli prng fc.Fault.drop_probability then
    record_fault t ~event:Fault.Drop ~src ~dst
  else begin
    let jitter () =
      if fc.Fault.delay_jitter_us > 0.0 then Prng.float prng fc.Fault.delay_jitter_us
      else 0.0
    in
    (* One fault pipeline per delivery attempt: jitter, then the link
       windows (partition / cut / slow), then the destination's node
       windows. Link windows see the jittered arrival so a partition that
       opens mid-flight catches messages already on the wire. *)
    let route arrival =
      match through_link_windows t ~src ~dst arrival fc.Fault.link_windows with
      | None -> None
      | Some arrival -> through_windows t ~src ~dst arrival fc.Fault.windows
    in
    (match route (base_arrival +. jitter ()) with
    | Some arrival -> schedule_delivery t ~src ~dst ~channel ~arrival msg
    | None -> ());
    if
      fc.Fault.duplicate_probability > 0.0
      && Prng.bernoulli prng fc.Fault.duplicate_probability
    then begin
      record_fault t ~event:Fault.Duplicate ~src ~dst;
      match route (base_arrival +. jitter ()) with
      | Some arrival -> schedule_delivery t ~src ~dst ~channel ~arrival msg
      | None -> ()
    end
  end

let send t ~src ~dst ~kind ~bytes ~tag msg =
  check_node t src;
  check_node t dst;
  if src = dst then begin
    (* Local deliveries are free of wire accounting and never dropped,
       duplicated or jittered — but a node inside one of its own fault
       windows is as unavailable to itself as to its peers: a crash window
       swallows the self-send, a pause window defers it. Without this a
       node would "deliver" self-messages while crashed. No PRNG is
       consulted, so fault-free runs stay byte-identical. *)
    let arrival = Engine.now t.engine +. local_delivery_cost_us in
    match t.faults with
    | None ->
        Engine.schedule t.engine ~delay:local_delivery_cost_us (fun () ->
            deliver t ~src ~dst msg)
    | Some (fc, _) -> (
        match through_windows t ~src ~dst arrival fc.Fault.windows with
        | Some arrival ->
            Engine.schedule t.engine
              ~delay:(arrival -. Engine.now t.engine)
              (fun () -> deliver t ~src ~dst msg)
        | None -> ())
  end
  else begin
    let s = t.stats in
    s.messages <- s.messages + 1;
    s.bytes <- s.bytes + bytes;
    (match kind with
    | Control ->
        s.control_messages <- s.control_messages + 1;
        s.control_bytes <- s.control_bytes + bytes
    | Data ->
        s.data_messages <- s.data_messages + 1;
        s.data_bytes <- s.data_bytes + bytes);
    (match t.on_message with Some f -> f ~src ~dst ~kind ~bytes ~tag | None -> ());
    let now = Engine.now t.engine in
    let channel = (src * t.node_count) + dst in
    let base_arrival = now +. transfer_time_us t.link bytes in
    match t.faults with
    | None -> schedule_delivery t ~src ~dst ~channel ~arrival:base_arrival msg
    | Some (fc, prng) -> inject t ~fc ~prng ~src ~dst ~channel ~base_arrival msg
  end
