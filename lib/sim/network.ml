type link = { bandwidth_bps : float; software_cost_us : float }

let default_software_cost_us = 20.0

let link_10mbps = { bandwidth_bps = 1e7; software_cost_us = default_software_cost_us }
let link_100mbps = { bandwidth_bps = 1e8; software_cost_us = default_software_cost_us }
let link_1gbps = { bandwidth_bps = 1e9; software_cost_us = default_software_cost_us }

let transfer_time_us link bytes =
  link.software_cost_us +. (float_of_int bytes *. 8.0 /. link.bandwidth_bps *. 1e6)

type kind = Control | Data

type stats = {
  mutable messages : int;
  mutable bytes : int;
  mutable control_messages : int;
  mutable control_bytes : int;
  mutable data_messages : int;
  mutable data_bytes : int;
}

type 'msg t = {
  engine : Engine.t;
  node_count : int;
  link : link;
  handlers : (src:int -> 'msg -> unit) option array;
  stats : stats;
  on_message : (src:int -> dst:int -> kind:kind -> bytes:int -> tag:int -> unit) option;
  (* FIFO channels: absolute delivery time of the last message per ordered
     (src, dst) pair; a later send never arrives before it. *)
  last_delivery : float array;
}

let local_delivery_cost_us = 0.1

let create ~engine ~node_count ~link ?on_message () =
  if node_count <= 0 then invalid_arg "Network.create: node_count must be positive";
  {
    engine;
    node_count;
    link;
    handlers = Array.make node_count None;
    stats =
      {
        messages = 0;
        bytes = 0;
        control_messages = 0;
        control_bytes = 0;
        data_messages = 0;
        data_bytes = 0;
      };
    on_message;
    last_delivery = Array.make (node_count * node_count) neg_infinity;
  }

let node_count t = t.node_count
let link t = t.link
let stats t = t.stats

let check_node t node =
  if node < 0 || node >= t.node_count then invalid_arg "Network: node id out of range"

let set_handler t ~node handler =
  check_node t node;
  t.handlers.(node) <- Some handler

let deliver t ~src ~dst msg =
  match t.handlers.(dst) with
  | None -> invalid_arg (Printf.sprintf "Network: node %d has no handler" dst)
  | Some h -> h ~src msg

let send t ~src ~dst ~kind ~bytes ~tag msg =
  check_node t src;
  check_node t dst;
  if src = dst then
    Engine.schedule t.engine ~delay:local_delivery_cost_us (fun () -> deliver t ~src ~dst msg)
  else begin
    let s = t.stats in
    s.messages <- s.messages + 1;
    s.bytes <- s.bytes + bytes;
    (match kind with
    | Control ->
        s.control_messages <- s.control_messages + 1;
        s.control_bytes <- s.control_bytes + bytes
    | Data ->
        s.data_messages <- s.data_messages + 1;
        s.data_bytes <- s.data_bytes + bytes);
    (match t.on_message with Some f -> f ~src ~dst ~kind ~bytes ~tag | None -> ());
    let now = Engine.now t.engine in
    let channel = (src * t.node_count) + dst in
    let arrival =
      Float.max (now +. transfer_time_us t.link bytes) t.last_delivery.(channel)
    in
    t.last_delivery.(channel) <- arrival;
    Engine.schedule t.engine ~delay:(arrival -. now) (fun () -> deliver t ~src ~dst msg)
  end
