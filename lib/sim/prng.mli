(** Deterministic, splittable pseudo-random number generator.

    Based on splitmix64. Every source of randomness in the repository goes
    through this module so that simulations and workloads are exactly
    reproducible from a single integer seed. *)

type t

val create : seed:int -> t
(** [create ~seed] makes an independent generator from [seed]. *)

val split : t -> t
(** [split t] derives a new generator whose stream is independent of
    subsequent draws from [t]. Used to give each workload component its own
    stream. *)

val copy : t -> t
(** [copy t] duplicates the current state (same future stream). *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound); [bound] must be > 0. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] draws uniformly from the inclusive range [lo, hi]. *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [0, bound). *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli t p] is true with probability [p]. *)

val pick : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val pick_list : t -> 'a list -> 'a
(** Uniform choice from a non-empty list. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample_without_replacement : t -> int -> int -> int list
(** [sample_without_replacement t k n] draws [k] distinct integers from
    [0, n). Requires [k <= n]. Result is in random order. *)

val exponential : t -> mean:float -> float
(** Exponential variate with the given mean (inter-arrival times). *)

val geometric : t -> p:float -> int
(** Number of failures before first success. Total: [p] is clamped to
    [[1e-12, 1]] (NaN degenerates to 1, i.e. always 0), the result is
    clamped to [[0, max_int]], and exactly one draw is consumed for every
    input — a malformed [p] can neither raise nor shift the stream. *)
